#pragma once
// AMR3D mini-app (§IV-A): tree-based structured adaptive mesh refinement
// running a first-order upwind 3-D advection, with blocks as chares addressed
// by bit-vector oct-tree indices.
//
// Runtime features exercised exactly as the paper describes:
//   * blocks are a chare array with custom (bit-vector) indices; parents and
//     neighbors are computed by local bit operations (§IV-A-1);
//   * mesh restructuring inserts/deletes chares dynamically and uses
//     quiescence detection so the whole phase needs O(1) global collectives
//     (§IV-A-4) and O(#blocks/P) memory per PE;
//   * per-step AtSync load balancing (DistributedLB in Fig 8);
//   * blocks are fully PUPable, so double in-memory checkpointing works.
//
// Mesh invariant: every block face has a uniform *relative* neighbor level in
// {-1, 0, +1} (2:1 balance).  The restructuring protocol keeps it:
//   phase A (desire):   blocks evaluate the refinement criterion and send
//                       their desire to face neighbors and their sibling
//                       leader;  [QD]
//   phase B (finalize): blocks combine desires into final decisions under the
//                       2:1 rules and broadcast them to face neighbors, which
//                       update their face maps;  [QD]
//   phase C (apply):    refining blocks insert 8 children and destroy
//                       themselves; coarsening octets ship their data to a
//                       freshly inserted parent;  [QD]
// Domain is periodic; velocity components are positive, so each block needs
// ghosts on its three low faces only.
//
// Known limitation: with several simultaneous refine+coarsen fronts a face
// map can transiently disagree with the post-apply mesh, leaving a handful of
// ghost messages parked at the location manager (they are conservative
// duplicates; runs complete and mass stays within tolerance).  The exact
// Charm++ AMR implements the same exchange with additional rounds; see
// Langer et al., SBAC-PAD'12.

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "runtime/charm.hpp"

namespace charm::amr {

struct Params {
  int block = 8;            ///< B: each block holds a B^3 field
  int min_depth = 2;        ///< uniform starting depth (8^min_depth blocks)
  int max_depth = 4;
  double cfl = 0.4;
  std::array<double, 3> velocity{1.0, 0.6, 0.3};  ///< positive components
  double refine_threshold = 0.5;   ///< max field value in block triggers refine
  double coarsen_threshold = 0.12;
  double cell_cost = 4e-9;  ///< charged seconds per cell per sweep
  std::uint64_t seed = 5;
};

}  // namespace charm::amr

namespace pup {
template <>
struct AsBytes<charm::amr::Params> : std::true_type {};
}  // namespace pup

namespace charm::amr {

/// Coordinates of an octree node at its own depth (bit de-interleave).
std::array<int, 3> coords_of(const BitIndex& ix);
BitIndex index_at(int depth, int x, int y, int z);
/// Same-depth face neighbor with periodic wrap.  dim in 0..2, dir in {-1,+1}.
BitIndex face_neighbor(const BitIndex& ix, int dim, int dir);

struct StepMsg {
  int steps = 0;
  template <class P>
  void pup(P& p) {
    p | steps;
  }
};

struct FaceMsg {
  int step = 0;
  int dim = 0;             ///< which axis this ghost is for
  std::uint8_t sender_depth = 0;
  std::uint64_t sender_bits = 0;
  int n = 0;               ///< face is n x n at sender resolution
  std::vector<double> plane;
  template <class P>
  void pup(P& p) {
    p | step;
    p | dim;
    p | sender_depth;
    p | sender_bits;
    p | n;
    p | plane;
  }
};

struct DesireMsg {
  std::uint8_t from_depth = 0;
  std::uint64_t from_bits = 0;
  int delta = 0;  ///< wanted level change (-1, 0, +1)
  template <class P>
  void pup(P& p) {
    p | from_depth;
    p | from_bits;
    p | delta;
  }
};

struct DecisionMsg {
  std::uint8_t from_depth = 0;
  std::uint64_t from_bits = 0;
  int delta = 0;  ///< final level change
  template <class P>
  void pup(P& p) {
    p | from_depth;
    p | from_bits;
    p | delta;
  }
};

struct ChildCtorMsg {
  Params params{};
  CollectionId col = -1;
  std::uint8_t depth = 0;
  std::uint64_t bits = 0;
  int step = 0;
  std::array<std::int8_t, 6> face_rel{};
  std::vector<double> field;  ///< B^3, already interpolated for this child
  template <class P>
  void pup(P& p) {
    p | params;
    p | col;
    p | depth;
    p | bits;
    p | step;
    p | face_rel;
    p | field;
  }
};

struct ChildDataMsg {
  int octant = 0;
  std::array<std::int8_t, 6> face_rel{};  ///< child's external face levels
  std::vector<double> field;              ///< child's B^3 field
  template <class P>
  void pup(P& p) {
    p | octant;
    p | face_rel;
    p | field;
  }
};

class Block : public charm::ArrayElement<Block, BitIndex> {
 public:
  Block() = default;
  explicit Block(const ChildCtorMsg& m);

  // stepping
  void begin(const StepMsg& m);
  void face(const FaceMsg& m);
  void resume_from_sync() override;

  // restructuring (phase entries are broadcast by the Mesh driver; the rest
  // are point-to-point protocol messages)
  void decide();                        // phase A: evaluate + send desires
  void desire(const DesireMsg& m);      // face neighbors' desires
  void finalize();                      // phase B1: refine decisions + votes
  void vote(const DesireMsg& m);        // octet leader tallies coarsen votes
  void resolve_coarsen();               // phase B2: leaders resolve octets
  void group_go(const DesireMsg& m);    // leader -> siblings: coarsen
  void decision(const DecisionMsg& m);  // neighbors' final level changes
  void apply();                         // phase C: insert children / parent
  void child_data(const ChildDataMsg& m);

  std::array<double, 3> lb_coords() const override;
  void pup(pup::Er& p) override;

  int depth() const { return index().depth; }
  double mass() const;
  double max_gradient() const;
  const std::vector<double>& field() const { return field_; }
  int step() const { return step_; }

  static Callback chunk_cb;  ///< per-chunk completion reduction target

  // test/debug introspection
  int dbg_expected() const { return faces_expected_; }
  int dbg_seen() const { return faces_seen_; }
  std::size_t dbg_early() const { return early_.size(); }

 private:
  friend class Mesh;
  void start_step();
  void sweep();
  void send_desires(int delta);
  std::vector<BitIndex> face_targets(int dim, int dir) const;
  /// Targets under an explicit face map (restructure phases must address the
  /// PRE-apply block set even after decisions updated the live map).
  std::vector<BitIndex> face_targets_under(int dim, int dir,
                                           const std::array<std::int8_t, 6>& rel) const;
  int expected_faces(int dim) const;
  void init_field();

  Params p_{};
  ArrayProxy<Block, BitIndex> blocks_;
  std::vector<double> field_;  ///< B^3, x fastest
  std::array<std::int8_t, 6> face_rel_{};  ///< faces: (-x,+x,-y,+y,-z,+z)
  int step_ = 0;
  int target_ = 0;
  int faces_expected_ = 0;
  int faces_seen_ = 0;
  std::array<std::vector<double>, 3> ghost_;  ///< assembled low-face ghosts
  std::map<int, std::vector<FaceMsg>> early_;

  // restructure state
  int my_desire_ = 0;
  int my_delta_ = 0;
  bool sibling_veto_ = false;      ///< a sibling does not want to coarsen
  int coarsen_votes_ = 0;          ///< leader: siblings wanting to coarsen
  int votes_seen_ = 0;
  std::map<std::uint64_t, int> nb_desire_;  ///< keyed by (depth,bits) ident
  int children_received_ = 0;
  std::array<bool, 6> face_applied_{};  ///< decision dedupe per restructure
  std::array<std::int8_t, 6> rel_at_decide_{};  ///< map snapshot for phases A-B2
};

/// Driver: owns the block array and sequences step chunks + restructuring.
class Mesh {
 public:
  Mesh(Runtime& rt, Params p);

  /// Run `chunks` rounds of (`steps_per_chunk` advection steps, then one
  /// restructuring pass); `done` fires at the end.
  void run(int chunks, int steps_per_chunk, Callback done);

  ArrayProxy<Block, BitIndex> blocks() const { return blocks_; }
  std::int64_t nblocks() const;
  double total_mass() const;  ///< volume-weighted integral of the field
  int max_depth_present() const;
  int min_depth_present() const;
  int restructures() const { return restructures_; }

 private:
  void chunk_finished();
  void restructure_then_continue();

  Runtime& rt_;
  Params p_;
  ArrayProxy<Block, BitIndex> blocks_;
  int chunks_left_ = 0;
  int steps_per_chunk_ = 0;
  Callback done_;
  int restructures_ = 0;
};

}  // namespace charm::amr

namespace pup {
template <>
struct MemCopyable<charm::amr::StepMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(int);
};
}  // namespace pup

