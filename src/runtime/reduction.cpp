// Reductions over collections.
//
// Semantics are exact: contributions are combined as they arrive and a
// reduction completes when every element of the collection has contributed to
// that sequence number.  Elements contribute in program order; each element's
// n-th contribution joins the collection's n-th reduction.
//
// Two topologies (DESIGN.md §10):
//
//  * kFlat (seed behavior, byte-stable figure stats): contributions combine
//    at a central slot and the cost of the k-ary combine tree is *modeled*
//    as a critical-path wave after the last contribution.
//
//  * kTree: contributions combine into a per-PE partial; once every element
//    has contributed the wave is frozen and each partial routes up a k-ary
//    spanning tree (arity = tree_fanout, root = PE 0) as a real counted
//    message, combining per level, until rank 0 holds the full result and
//    invokes the callback.  Only PEs that hold partials — and their
//    ancestors — participate, so a reduction contributed from one PE costs
//    O(depth) messages, not O(P).
//
// Contribution buffers are pooled (NumsPool / PayloadPool) and map nodes are
// recycled, so steady-state POD sum/min/max reductions allocate nothing
// (operator-new-counting gate in tests/core/test_queues.cpp).

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "runtime/runtime.hpp"
#include "runtime/spanning_tree.hpp"

namespace charm {

namespace {

/// Elementwise combine of `nums` into `slot` (slot.has_nums already true).
/// Matches the seed's widening rule: the slot grows to the widest
/// contribution seen, missing entries treated as 0.
void combine_nums(ReduxSlot& slot, const std::vector<double>& nums) {
  if (nums.size() > slot.nums.size()) slot.nums.resize(nums.size(), 0.0);
  for (std::size_t i = 0; i < nums.size(); ++i) {
    switch (slot.op) {
      case ReduceOp::kSum: slot.nums[i] += nums[i]; break;
      case ReduceOp::kMin: slot.nums[i] = std::min(slot.nums[i], nums[i]); break;
      case ReduceOp::kMax: slot.nums[i] = std::max(slot.nums[i], nums[i]); break;
    }
  }
}

/// First numeric contribution adopts the buffer and the op; later ones
/// combine elementwise.
void absorb_nums(ReduxSlot& slot, std::vector<double>&& nums, ReduceOp op,
                 Runtime& rt) {
  if (!slot.has_nums) {
    rt.release_nums(std::move(slot.nums));  // recycled slot may hold capacity
    slot.nums = std::move(nums);
    slot.has_nums = true;
    slot.op = op;
  } else {
    combine_nums(slot, nums);
    rt.release_nums(std::move(nums));
  }
}

/// Scalar combine-in-place: identical result to absorbing a one-element
/// vector, but the value lands in a pooled buffer with no vector built at
/// the call site.
void absorb_scalar(ReduxSlot& slot, double value, ReduceOp op, Runtime& rt) {
  if (!slot.has_nums) {
    if (slot.nums.capacity() == 0) slot.nums = rt.acquire_nums(1);
    slot.nums.clear();
    slot.nums.push_back(value);
    slot.has_nums = true;
    slot.op = op;
    return;
  }
  if (slot.nums.empty()) slot.nums.resize(1, 0.0);
  switch (slot.op) {
    case ReduceOp::kSum: slot.nums[0] += value; break;
    case ReduceOp::kMin: slot.nums[0] = std::min(slot.nums[0], value); break;
    case ReduceOp::kMax: slot.nums[0] = std::max(slot.nums[0], value); break;
  }
}

/// Resets a recycled slot to its freshly-constructed state.  nums keeps its
/// (pooled) capacity; chunks and cb were moved out / dropped at completion.
void reset_slot(ReduxSlot& slot) {
  slot.count = 0;
  slot.has_nums = false;
  slot.op = ReduceOp::kSum;
  slot.nums.clear();
  slot.chunks.clear();
  slot.cb = Callback{};
  slot.last_contribution = 0;
  slot.wave_remaining = 0;
}

/// Modeled wire size of a partial-combine message body (seq + count + op /
/// flags + the combined payload).
std::size_t partial_body_bytes(const ReduxSlot& part) {
  std::size_t body = 24 + 8 * part.nums.size();
  for (const std::vector<std::byte>& chunk : part.chunks)
    body += 8 + chunk.size();
  return body;
}

}  // namespace

ReduxSlot& Runtime::redux_slot(Collection& c, std::uint64_t seq) {
  auto it = c.redux.find(seq);
  if (it != c.redux.end()) return it->second;
  if (c.redux_spare) {
    c.redux_spare.key() = seq;
    reset_slot(c.redux_spare.mapped());
    return c.redux.insert(std::move(c.redux_spare)).position->second;
  }
  return c.redux[seq];
}

ReduxSlot& Runtime::partial_slot(Collection& c, int pe, std::uint64_t seq) {
  PeLocal& pl = c.local(pe);
  auto it = pl.partial.find(seq);
  if (it != pl.partial.end()) return it->second;
  if (pl.partial_spare) {
    pl.partial_spare.key() = seq;
    reset_slot(pl.partial_spare.mapped());
    return pl.partial.insert(std::move(pl.partial_spare)).position->second;
  }
  return pl.partial[seq];
}

void Runtime::contribute(ArrayElementBase& elem, std::vector<double> nums, bool has_nums,
                         ReduceOp op, std::vector<std::byte> chunk, bool has_chunk,
                         const Callback& cb) {
  Collection& c = collection(elem.col_);
  if (c.total_elements <= 0)
    throw std::logic_error("contribute on an empty collection");

  const std::uint64_t seq = elem.redux_seq_++;
  charge(cfg_.contribute_cost);

  if (tree_collectives()) {
    ReduxSlot& part = partial_slot(c, elem.pe_, seq);
    if (has_nums) absorb_nums(part, std::move(nums), op, *this);
    if (has_chunk) part.chunks.push_back(std::move(chunk));
    ++part.count;
    note_tree_contribution(c, seq, cb);
    return;
  }

  ReduxSlot& slot = redux_slot(c, seq);
  if (has_nums) absorb_nums(slot, std::move(nums), op, *this);
  if (has_chunk) slot.chunks.push_back(std::move(chunk));
  if (cb.valid()) slot.cb = cb;
  ++slot.count;
  slot.last_contribution = now();

  if (slot.count >= c.total_elements) complete_reduction(c, seq);
}

void Runtime::contribute_scalar(ArrayElementBase& elem, double value, ReduceOp op,
                                const Callback& cb) {
  Collection& c = collection(elem.col_);
  if (c.total_elements <= 0)
    throw std::logic_error("contribute on an empty collection");

  const std::uint64_t seq = elem.redux_seq_++;
  charge(cfg_.contribute_cost);

  if (tree_collectives()) {
    ReduxSlot& part = partial_slot(c, elem.pe_, seq);
    absorb_scalar(part, value, op, *this);
    ++part.count;
    note_tree_contribution(c, seq, cb);
    return;
  }

  ReduxSlot& slot = redux_slot(c, seq);
  absorb_scalar(slot, value, op, *this);
  if (cb.valid()) slot.cb = cb;
  ++slot.count;
  slot.last_contribution = now();

  if (slot.count >= c.total_elements) complete_reduction(c, seq);
}

void Runtime::complete_reduction(Collection& c, std::uint64_t seq) {
  c.redux_floor = std::max(c.redux_floor, seq + 1);
  auto node = c.redux.extract(seq);
  ReduxSlot& slot = node.mapped();
  ReductionResult result;
  result.nums = std::move(slot.nums);
  result.chunks = std::move(slot.chunks);
  const Callback cb = slot.cb;
  slot.cb = Callback{};
  c.redux_spare = std::move(node);  // recycle the map node

  // Critical-path cost of the combine tree after the last contribution.
  // The result moves straight into the completion closure (no shared_ptr
  // box; sim::Handler is move-only).
  const double delay = tree_wave_latency();
  ++outstanding_;
  ++msgs_sent_;
  machine_.post(0, now() + delay, [this, cb, result = std::move(result)]() mutable {
    if (cb.valid()) cb.invoke(*this, std::move(result));
    note_message_done();
  });
}

// ---- tree up-sweep (DESIGN.md §10) -------------------------------------------

void Runtime::note_tree_contribution(Collection& c, std::uint64_t seq,
                                     const Callback& cb) {
  ReduxSlot& g = redux_slot(c, seq);
  if (cb.valid()) g.cb = cb;
  ++g.count;
  g.last_contribution = now();
  if (g.count >= c.total_elements) start_tree_upsweep(c, seq);
}

void Runtime::start_tree_upsweep(Collection& c, std::uint64_t seq) {
  // Freeze: every element has contributed, so the set of PEs holding
  // partials is final.  Advance the floor exactly like the flat path and
  // retire the global bookkeeping slot.
  c.redux_floor = std::max(c.redux_floor, seq + 1);
  auto node = c.redux.extract(seq);
  const Callback cb = node.mapped().cb;
  node.mapped().cb = Callback{};
  c.redux_spare = std::move(node);

  const SpanningTree tree(active_pes_, /*root=*/0, cfg_.tree_fanout);
  const int P = active_pes_;
  redux_on_path_.assign(static_cast<std::size_t>(P), 0);

  // Mark every PE holding a partial, plus its ancestors up to rank 0.
  // Reduction ranks are the PE numbers themselves (root 0, where flat
  // completions fire), so rel == abs here.
  for (int p = 0; p < P; ++p) {
    const PeLocal* pl = c.local_if(p);
    if (pl == nullptr || pl->partial.find(seq) == pl->partial.end()) continue;
    for (int r = p;;) {
      if (redux_on_path_[static_cast<std::size_t>(r)]) break;
      redux_on_path_[static_cast<std::size_t>(r)] = 1;
      if (r == 0) break;
      r = tree.parent(r);
    }
  }

  // Arm every participant with the number of child partials it must absorb;
  // sources (no on-path children) launch immediately via a kick posted to
  // their own PE so the partial departs from where the data lives.  The
  // kick keeps QD open by hand — timer posts are not counted.
  for (int r = 0; r < P; ++r) {
    if (!redux_on_path_[static_cast<std::size_t>(r)]) continue;
    ReduxSlot& part = partial_slot(c, r, seq);
    if (r == 0) part.cb = cb;  // rank 0's slot carries the callback
    int kids = 0;
    for (int i = 1; i <= tree.arity; ++i) {
      const long child = tree.child(r, i);
      if (child < P && redux_on_path_[static_cast<std::size_t>(child)]) ++kids;
    }
    part.wave_remaining = kids;
    if (kids == 0) {
      const CollectionId col = c.id;
      ++outstanding_;
      machine_.post(r, now(), [this, col, seq, r]() {
        send_tree_partial(col, seq, r);
        note_message_done();
      });
    }
  }
}

void Runtime::send_tree_partial(CollectionId col, std::uint64_t seq, int rank) {
  Collection& c = collection(col);
  if (rank == 0) {
    complete_tree_root(c, seq);
    return;
  }
  const SpanningTree tree(active_pes_, /*root=*/0, cfg_.tree_fanout);
  const int parent = tree.parent(rank);
  PeLocal& pl = c.local(rank);
  auto node = pl.partial.extract(seq);
  if (!node) return;  // cleared mid-wave (FT rollback)
  ReduxSlot& part = node.mapped();
  const std::int64_t count = part.count;
  const bool has_nums = part.has_nums;
  const ReduceOp op = part.op;
  const std::size_t body = partial_body_bytes(part);
  std::vector<double> nums = std::move(part.nums);
  std::vector<std::vector<std::byte>> chunks = std::move(part.chunks);
  part.cb = Callback{};
  pl.partial_spare = std::move(node);

  ++redux_partials_sent_;
  if (introspect::Monitor* mon = machine_.metrics())
    mon->on_collective(body + Envelope::kHeaderBytes);
  send_control(parent, body,
               [this, col, seq, count, has_nums, op, nums = std::move(nums),
                chunks = std::move(chunks)]() mutable {
                 tree_partial_arrive(col, seq, count, has_nums, op,
                                     std::move(nums), std::move(chunks));
               });
}

void Runtime::tree_partial_arrive(CollectionId col, std::uint64_t seq,
                                  std::int64_t count, bool has_nums, ReduceOp op,
                                  std::vector<double>&& nums,
                                  std::vector<std::vector<std::byte>>&& chunks) {
  Collection& c = collection(col);
  const int rank = machine_.current_pe();
  ReduxSlot& part = partial_slot(c, rank, seq);
  charge(cfg_.contribute_cost);  // per-level combine work
  part.count += count;
  if (has_nums) {
    absorb_nums(part, std::move(nums), op, *this);
  } else {
    release_nums(std::move(nums));
  }
  for (std::vector<std::byte>& chunk : chunks)
    part.chunks.push_back(std::move(chunk));
  // A partial arriving outside an armed wave (state cleared by an FT
  // rollback mid-flight) parks here until the next clear_reductions.
  if (--part.wave_remaining == 0) send_tree_partial(col, seq, rank);
}

void Runtime::complete_tree_root(Collection& c, std::uint64_t seq) {
  PeLocal& pl = c.local(0);
  auto node = pl.partial.extract(seq);
  if (!node) return;  // cleared mid-wave (FT rollback)
  ReduxSlot& part = node.mapped();
  ReductionResult result;
  result.nums = std::move(part.nums);
  result.chunks = std::move(part.chunks);
  const Callback cb = part.cb;
  part.cb = Callback{};
  pl.partial_spare = std::move(node);
  if (cb.valid()) cb.invoke(*this, std::move(result));
}

void Runtime::clear_reductions(CollectionId col) {
  // FT rollback: in-flight slots are dropped and the floor resets; restored
  // elements carry their own (mutually consistent) checkpointed sequence.
  // Per-PE partial combines — including waves an LB migration or failure
  // left mid-flight — are released too, or a stale partial would combine
  // into a later reduction that reuses its sequence number.
  Collection& c = collection(col);
  for (auto& [seq, slot] : c.redux) {
    release_nums(std::move(slot.nums));
    for (std::vector<std::byte>& chunk : slot.chunks)
      release_payload(std::move(chunk));
  }
  c.redux.clear();
  c.pe.for_each_touched([this](std::size_t, PeLocal& pl) {
    for (auto& [seq, part] : pl.partial) {
      release_nums(std::move(part.nums));
      for (std::vector<std::byte>& chunk : part.chunks)
        release_payload(std::move(chunk));
    }
    pl.partial.clear();
  });
  c.redux_floor = 0;
}

}  // namespace charm
