#pragma once
// Grapevine-style distributed load balancing decisions (§IV-A-2 uses a
// distributed strategy on AMR at 128K PEs; see Menon & Kale, SC'13).
//
// Each overloaded PE knows only the global average (one allreduce) and probes
// a few random PEs; transfers flow from overloaded PEs to accepting
// underloaded ones.  The decision algorithm is computed exactly; the manager
// models the allreduce latency and the probe message traffic.

#include <cstdint>

#include "lb/strategy.hpp"

namespace charm::lb {

struct GossipParams {
  double overload_tol = 1.03;  ///< overloaded when load > avg * tol
  int probes_per_pe = 4;       ///< random targets each overloaded PE probes
};

struct GossipResult {
  std::vector<Migration> migrations;
  int probes = 0;  ///< probe messages issued (for traffic modeling)
};

GossipResult gossip_assign(const Stats& stats, std::uint64_t seed,
                           const GossipParams& params = {});

}  // namespace charm::lb
