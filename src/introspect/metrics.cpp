#include "introspect/metrics.hpp"

#include <stdexcept>

#include "runtime/runtime.hpp"
#include "runtime/spanning_tree.hpp"
#include "sim/machine.hpp"
#include "stats/json_export.hpp"

namespace introspect {

namespace {
/// Modeled payload of a summary partial: (max, sum, count) as three words.
constexpr std::size_t kSummaryPartialBytes = 24;
}  // namespace

const char* journal_kind_name(JournalKind k) {
  switch (k) {
    case JournalKind::kLbRound:
      return "lb_round";
    case JournalKind::kCheckpoint:
      return "checkpoint";
    case JournalKind::kRestore:
      return "restore";
    case JournalKind::kFailure:
      return "failure";
    case JournalKind::kShrink:
      return "shrink";
    case JournalKind::kExpand:
      return "expand";
  }
  return "?";
}

void Monitor::attach(sim::Machine& m) {
  detach();
  machine_ = &m;
  reset(m.npes());
  m.set_metrics(this);
}

void Monitor::detach() {
  if (machine_ != nullptr) {
    machine_->set_metrics(nullptr);
    machine_ = nullptr;
  }
}

void Monitor::set_interval(double dt) {
  interval_ = dt > 0 ? dt : 0;
  sample_k_ = 0;
  next_boundary_ = interval_;
}

void Monitor::reset(int npes) {
  pes_.reset(static_cast<std::size_t>(npes));
  entry_loads_.clear();
  busy_ = exec_ = 0;
  execs_ = msgs_ = bytes_ = coll_msgs_ = coll_bytes_ = 0;
  last_msgs_ = last_bytes_ = 0;
  cur_ready_ = ready_hwm_w_ = 0;
  last_evq_ = evq_hwm_w_ = 0;
  last_time_ = 0;
  sample_k_ = 0;
  next_boundary_ = interval_;
  samples_.clear();
  samples_.reserve(kSampleReserve);
  dropped_samples_ = 0;
  journal_.clear();
  journal_.reserve(64);
  summary_ = SummaryWave{};
  last_summary_ = ClusterSummary{};
  summary_partials_ = 0;
}

double Monitor::imbalance() const {
  // Touched-only fold, averaged over the configured P: untouched PEs hold
  // busy = 0, so max and sum match the dense scan exactly.
  double mx = 0, sum = 0;
  pes_.for_each_touched([&](std::size_t, const PeCounters& pc) {
    if (pc.busy > mx) mx = pc.busy;
    sum += pc.busy;
  });
  const double avg =
      pes_.size() == 0 ? 0 : sum / static_cast<double>(pes_.size());
  return avg > 0 ? mx / avg : 0;
}

void Monitor::on_entry(int pe, int col, int ep, double dt) {
  PeCounters& pc = pes_.ref(static_cast<std::size_t>(pe));
  pc.busy += dt;
  busy_ += dt;
  // First use of a (col, ep) key allocates its map node; every later
  // invocation updates in place, keeping the steady state allocation-free.
  EntryLoad& l = entry_loads_[{col, ep}];
  ++l.calls;
  l.total += dt;
  l.ewma = l.calls == 1 ? dt : kEwmaAlpha * dt + (1.0 - kEwmaAlpha) * l.ewma;
}

void Monitor::sample_up_to(double now) {
  // Emit every boundary at or before `now`.  Boundaries are computed as
  // k·interval (not by accumulation), so timestamps carry no FP drift and a
  // long event gap yields one sample per crossed boundary with identical
  // counter values — the timeline stays strictly monotone either way.
  while (next_boundary_ <= now) {
    record_sample(next_boundary_);
    ++sample_k_;
    next_boundary_ = interval_ * static_cast<double>(sample_k_ + 1);
  }
}

void Monitor::record_sample(double t) {
  if (samples_.size() >= kSampleCap) {
    ++dropped_samples_;
  } else {
    Sample s;
    s.t = t;
    double mx = 0, sum = 0;
    pes_.for_each_touched([&](std::size_t, const PeCounters& pc) {
      if (pc.busy > mx) mx = pc.busy;
      sum += pc.busy;
    });
    const double avg =
        pes_.size() == 0 ? 0 : sum / static_cast<double>(pes_.size());
    s.busy_max = mx;
    s.busy_avg = avg;
    s.lambda = avg > 0 ? mx / avg : 0;
    s.busy = busy_;
    s.exec = exec_;
    s.execs = execs_;
    s.msgs = msgs_;
    s.bytes = bytes_;
    s.coll_msgs = coll_msgs_;
    s.coll_bytes = coll_bytes_;
    s.msg_rate = static_cast<double>(msgs_ - last_msgs_) / interval_;
    s.byte_rate = static_cast<double>(bytes_ - last_bytes_) / interval_;
    s.ready = cur_ready_;
    s.ready_hwm = ready_hwm_w_;
    s.evq = last_evq_;
    s.evq_hwm = evq_hwm_w_;
    samples_.push_back(s);
  }
  // Start the next window: rates rebase, watermarks restart at the current
  // instantaneous depths (so hwm >= instantaneous holds at every sample).
  last_msgs_ = msgs_;
  last_bytes_ = bytes_;
  ready_hwm_w_ = cur_ready_;
  evq_hwm_w_ = last_evq_;
}

// ---- opt-in tree summary ----------------------------------------------------

void Monitor::request_summary(charm::Runtime& rt, SummaryFn done) {
  if (summary_.active)
    throw std::logic_error("introspect::Monitor::request_summary: wave already in flight");
  const int P = rt.active_pes();
  summary_.active = true;
  summary_.npes = P;
  summary_.arity = rt.config().tree_fanout < 2 ? 2 : rt.config().tree_fanout;
  summary_.done = std::move(done);
  summary_.max.assign(static_cast<std::size_t>(P), 0.0);
  summary_.sum.assign(static_cast<std::size_t>(P), 0.0);
  summary_.cnt.assign(static_cast<std::size_t>(P), 0);
  summary_.pending.assign(static_cast<std::size_t>(P), 0);
  const charm::SpanningTree tree(P, 0, summary_.arity);
  for (int r = 0; r < P; ++r)
    summary_.pending[static_cast<std::size_t>(r)] = tree.num_children(r);
  // Kick every leaf on its own PE; interior ranks fire when their last child
  // partial arrives.  All traffic is real counted control messages.
  charm::Runtime* prt = &rt;
  for (int r = 0; r < P; ++r) {
    if (summary_.pending[static_cast<std::size_t>(r)] == 0)
      rt.on_pe(tree.abs(r), [this, prt, r]() { summary_ready(*prt, r); });
  }
}

void Monitor::summary_ready(charm::Runtime& rt, int rank) {
  const charm::SpanningTree tree(summary_.npes, 0, summary_.arity);
  // Fold this rank's own live busy into the subtree accumulator.
  const double b = pes_.at_or_default(static_cast<std::size_t>(tree.abs(rank))).busy;
  auto& mx = summary_.max[static_cast<std::size_t>(rank)];
  if (b > mx) mx = b;
  summary_.sum[static_cast<std::size_t>(rank)] += b;
  summary_.cnt[static_cast<std::size_t>(rank)] += 1;

  if (rank == 0) {
    ClusterSummary s;
    s.t = rt.now();
    s.pes = summary_.npes;
    s.busy_max = summary_.max[0];
    s.busy_avg = summary_.cnt[0] > 0
                     ? summary_.sum[0] / static_cast<double>(summary_.cnt[0])
                     : 0;
    s.lambda = s.busy_avg > 0 ? s.busy_max / s.busy_avg : 0;
    last_summary_ = s;
    summary_.active = false;
    SummaryFn done = std::move(summary_.done);
    summary_.done = nullptr;
    if (done) done(s);
    return;
  }
  const int parent = tree.parent(rank);
  const double pm = summary_.max[static_cast<std::size_t>(rank)];
  const double ps = summary_.sum[static_cast<std::size_t>(rank)];
  const int pc = summary_.cnt[static_cast<std::size_t>(rank)];
  ++summary_partials_;
  charm::Runtime* prt = &rt;
  rt.send_control(tree.abs(parent), kSummaryPartialBytes,
                  [this, prt, parent, pm, ps, pc]() {
                    summary_arrive(*prt, parent, pm, ps, pc);
                  });
}

void Monitor::summary_arrive(charm::Runtime& rt, int rank, double mx, double sm,
                             int ct) {
  auto& acc = summary_.max[static_cast<std::size_t>(rank)];
  if (mx > acc) acc = mx;
  summary_.sum[static_cast<std::size_t>(rank)] += sm;
  summary_.cnt[static_cast<std::size_t>(rank)] += ct;
  if (--summary_.pending[static_cast<std::size_t>(rank)] == 0)
    summary_ready(rt, rank);
}

// ---- export -----------------------------------------------------------------

void Monitor::fill_export(stats::MetricsMeta& out) const {
  out.enabled = true;
  out.interval = interval_;
  out.samples.clear();
  out.samples.reserve(samples_.size());
  for (const Sample& s : samples_) {
    stats::MetricsSample m;
    m.t = s.t;
    m.busy_max = s.busy_max;
    m.busy_avg = s.busy_avg;
    m.lambda = s.lambda;
    m.busy = s.busy;
    m.exec = s.exec;
    m.execs = s.execs;
    m.msgs = s.msgs;
    m.bytes = s.bytes;
    m.coll_msgs = s.coll_msgs;
    m.coll_bytes = s.coll_bytes;
    m.msg_rate = s.msg_rate;
    m.byte_rate = s.byte_rate;
    m.ready = s.ready;
    m.ready_hwm = s.ready_hwm;
    m.evq = s.evq;
    m.evq_hwm = s.evq_hwm;
    out.samples.push_back(m);
  }
  out.journal.clear();
  out.journal.reserve(journal_.size());
  for (const JournalEvent& e : journal_) {
    stats::MetricsJournalRow row;
    row.t = e.t;
    row.kind = journal_kind_name(e.kind);
    row.aux = e.aux;
    row.value = e.value;
    out.journal.push_back(std::move(row));
  }
}

}  // namespace introspect
