#pragma once
// TRAM: Topological Routing and Aggregation Module (§III-F, Fig 15b).
//
// Fine-grained messages (data items) destined for chare array elements are
// buffered per *peer* — any PE reachable by traveling along a single
// dimension of the machine's torus — and shipped as one combined message when
// a buffer fills.  Items whose destination is not a peer are routed through
// intermediate peers dimension by dimension, so buffer space is
// O(peers) = O(sum of dims), not O(P), and items with different destinations
// share sub-paths.
//
// Typed facade:
//   charm::tram::Stream<&Lp::recv_event> stream(rt, lps, {.buffer_items=64});
//   stream.send(dest_index, event);            // from any handler
//   stream.flush_all();                        // end of phase (then QD)

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/proxy.hpp"
#include "runtime/runtime.hpp"

namespace charm::tram {

struct Params {
  std::size_t buffer_items = 64;  ///< flush threshold per peer buffer
  std::size_t item_overhead = 8;  ///< modeled per-item framing bytes
};

/// Type-erased aggregation core (one per stream, state partitioned per PE).
class Core {
 public:
  Core(Runtime& rt, CollectionId target, Params params);

  /// Insert an item from the currently executing PE.
  void insert(const ObjIndex& dest_idx, EntryId ep, std::vector<std::byte> payload);

  /// Flush every buffer on every PE and cascade through intermediate hops
  /// (phase end).  Completion is observable via Runtime::start_quiescence.
  void flush_all();

  Runtime& rt() const { return rt_; }

  std::uint64_t items_inserted() const { return items_; }
  std::uint64_t batches_sent() const { return batches_; }
  /// Mean items per batch — the aggregation factor TRAM achieves.
  double aggregation() const {
    return batches_ ? static_cast<double>(routed_items_) / static_cast<double>(batches_) : 0.0;
  }

 private:
  struct Item {
    ObjIndex idx{};
    EntryId ep = -1;
    int dest_pe = 0;
    std::vector<std::byte> payload;
  };
  struct PeState {
    std::unordered_map<int, std::vector<Item>> buffers;  // keyed by peer PE
  };

  void insert_on(int pe, Item item, bool flush_through);
  void flush_buffer(int pe, int peer, bool flush_through);
  void flush_pe(int pe, bool flush_through);
  void deliver_batch(int pe, std::shared_ptr<std::vector<Item>> items, bool flush_through);

  Runtime& rt_;
  CollectionId col_;
  Params params_;
  std::vector<PeState> pes_;
  std::uint64_t items_ = 0;
  std::uint64_t routed_items_ = 0;
  std::uint64_t batches_ = 0;
};

/// Typed stream bound to one entry method of a chare array.
template <auto Mfp>
class Stream {
  using Traits = detail::MfpTraits<decltype(Mfp)>;

 public:
  using Element = typename Traits::Chare;
  using Item = typename Traits::Argument;

  template <class Ix>
  Stream(Runtime& rt, const ArrayProxy<Element, Ix>& target, Params params = {})
      : core_(std::make_shared<Core>(rt, target.id(), params)) {}

  template <class Ix>
  void send(const Ix& dest, const Item& item) const {
    core_->insert(IndexTraits<Ix>::encode(dest), Registry::entry_of<Mfp>(),
                  core_->rt().pack_pooled(const_cast<Item&>(item)));
  }

  void flush_all() const { core_->flush_all(); }
  const Core& core() const { return *core_; }

 private:
  std::shared_ptr<Core> core_;
};

}  // namespace charm::tram
