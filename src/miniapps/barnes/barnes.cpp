#include "miniapps/barnes/barnes.hpp"

#include <algorithm>
#include <cmath>

namespace charm::barnes {

Callback Piece::phase_cb;

Piece::Piece(const Params& p, ArrayProxy<Piece, std::int32_t> pieces)
    : p_(p), pieces_(pieces) {}

int Piece::owner_of(const Body& b) const {
  const int n = p_.pieces_per_dim;
  auto cell = [&](double v) {
    return std::clamp(static_cast<int>(v * n), 0, n - 1);
  };
  return cell(b.x) + n * (cell(b.y) + n * cell(b.z));
}

void Piece::exchange() {
  // DD: ship bodies that drifted out of our region to their owners.
  std::map<int, std::vector<Body>> out;
  std::vector<Body> keep;
  const int me = static_cast<int>(index());
  for (const Body& b : bodies_) {
    const int owner = owner_of(b);
    if (owner == me) {
      keep.push_back(b);
    } else {
      out[owner].push_back(b);
    }
  }
  bodies_ = std::move(keep);
  for (auto& [owner, bs] : out) {
    BodiesMsg m;
    m.from = me;
    m.bodies = std::move(bs);
    pieces_[static_cast<std::int32_t>(owner)].send<&Piece::take_bodies>(m);
  }
  charm::charge(0.1e-6 + 5e-9 * static_cast<double>(bodies_.size()));
}

void Piece::take_bodies(const BodiesMsg& m) {
  bodies_.insert(bodies_.end(), m.bodies.begin(), m.bodies.end());
}

void Piece::build(const StartMsg&) {
  // TB: local center of mass + bounding radius, contributed for the gather.
  PieceSummary s;
  s.piece = static_cast<std::int32_t>(index());
  s.count = static_cast<std::int32_t>(bodies_.size());
  for (const Body& b : bodies_) {
    s.mass += b.m;
    s.cx += b.m * b.x;
    s.cy += b.m * b.y;
    s.cz += b.m * b.z;
  }
  if (s.mass > 0) {
    s.cx /= s.mass;
    s.cy /= s.mass;
    s.cz /= s.mass;
  }
  for (const Body& b : bodies_) {
    const double dx = b.x - s.cx, dy = b.y - s.cy, dz = b.z - s.cz;
    s.radius = std::max(s.radius, std::sqrt(dx * dx + dy * dy + dz * dz));
  }
  charm::charge(0.2e-6 + 10e-9 * static_cast<double>(bodies_.size()));
  contribute_bytes(pup::to_bytes(s), phase_cb);
}

void Piece::gravity(const SummariesMsg& m) {
  all_ = m.all;
  acc_.assign(bodies_.size() * 3, 0.0);
  gravity_active_ = true;
  replies_expected_ = 0;
  replies_seen_ = 0;

  const int me = static_cast<int>(index());
  PieceSummary mine{};
  for (const PieceSummary& s : all_)
    if (s.piece == me) mine = s;

  // Self-interactions: exact pairwise.
  const double eps2 = p_.soften * p_.soften;
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    for (std::size_t j = i + 1; j < bodies_.size(); ++j) {
      const double dx = bodies_[j].x - bodies_[i].x;
      const double dy = bodies_[j].y - bodies_[i].y;
      const double dz = bodies_[j].z - bodies_[i].z;
      const double r2 = dx * dx + dy * dy + dz * dz + eps2;
      const double inv = 1.0 / (r2 * std::sqrt(r2));
      acc_[3 * i] += bodies_[j].m * dx * inv;
      acc_[3 * i + 1] += bodies_[j].m * dy * inv;
      acc_[3 * i + 2] += bodies_[j].m * dz * inv;
      acc_[3 * j] -= bodies_[i].m * dx * inv;
      acc_[3 * j + 1] -= bodies_[i].m * dy * inv;
      acc_[3 * j + 2] -= bodies_[i].m * dz * inv;
    }
  }
  direct_pairs_ += bodies_.size() * (bodies_.size() + 1) / 2;
  charm::charge(p_.pair_cost * static_cast<double>(bodies_.size() * bodies_.size() / 2));

  for (const PieceSummary& s : all_) {
    if (s.piece == me || s.count == 0) continue;
    const double dx = s.cx - mine.cx, dy = s.cy - mine.cy, dz = s.cz - mine.cz;
    const double d = std::sqrt(dx * dx + dy * dy + dz * dz) + 1e-12;
    if ((s.radius + mine.radius) / d < p_.theta) {
      // Far: monopole on each local body.
      for (std::size_t i = 0; i < bodies_.size(); ++i) {
        const double bx = s.cx - bodies_[i].x;
        const double by = s.cy - bodies_[i].y;
        const double bz = s.cz - bodies_[i].z;
        const double r2 = bx * bx + by * by + bz * bz + eps2;
        const double inv = 1.0 / (r2 * std::sqrt(r2));
        acc_[3 * i] += s.mass * bx * inv;
        acc_[3 * i + 1] += s.mass * by * inv;
        acc_[3 * i + 2] += s.mass * bz * inv;
      }
      charm::charge(p_.mono_cost * static_cast<double>(bodies_.size()));
    } else {
      // Near: remote data request; replies are prioritized over other work.
      ++replies_expected_;
      RequestMsg rq;
      rq.from = me;
      pieces_[s.piece].send<&Piece::request>(rq, kHighPriority);
    }
  }
  maybe_finish_gravity();
}

void Piece::request(const RequestMsg& m) {
  BodiesMsg out;
  out.from = static_cast<std::int32_t>(index());
  out.bodies = bodies_;
  charm::charge(0.2e-6);
  // Remote data replies carry high priority (§IV-C-2): requesters are stalled.
  pieces_[m.from].send<&Piece::reply>(out, kHighPriority);
}

void Piece::accumulate_direct(const std::vector<Body>& other) {
  const double eps2 = p_.soften * p_.soften;
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    for (const Body& o : other) {
      const double dx = o.x - bodies_[i].x;
      const double dy = o.y - bodies_[i].y;
      const double dz = o.z - bodies_[i].z;
      const double r2 = dx * dx + dy * dy + dz * dz + eps2;
      const double inv = 1.0 / (r2 * std::sqrt(r2));
      acc_[3 * i] += o.m * dx * inv;
      acc_[3 * i + 1] += o.m * dy * inv;
      acc_[3 * i + 2] += o.m * dz * inv;
    }
  }
  direct_pairs_ += bodies_.size() * other.size();
  // One-sided evaluation (only our accelerations): half the arithmetic of a
  // symmetric pair update, so charge pair_cost/2 per (i,j).
  charm::charge(0.5 * p_.pair_cost * static_cast<double>(bodies_.size() * other.size()));
}

void Piece::reply(const BodiesMsg& m) {
  accumulate_direct(m.bodies);
  ++replies_seen_;
  maybe_finish_gravity();
}

void Piece::maybe_finish_gravity() {
  if (!gravity_active_ || replies_seen_ < replies_expected_) return;
  gravity_active_ = false;
  contribute(phase_cb);
}

void Piece::integrate(const StartMsg&) {
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    Body& b = bodies_[i];
    b.vx += acc_[3 * i] * p_.dt;
    b.vy += acc_[3 * i + 1] * p_.dt;
    b.vz += acc_[3 * i + 2] * p_.dt;
    b.x = std::clamp(b.x + b.vx * p_.dt, 0.0, 1.0 - 1e-9);
    b.y = std::clamp(b.y + b.vy * p_.dt, 0.0, 1.0 - 1e-9);
    b.z = std::clamp(b.z + b.vz * p_.dt, 0.0, 1.0 - 1e-9);
  }
  charm::charge(0.1e-6 + 5e-9 * static_cast<double>(bodies_.size()));
  at_sync();
}

void Piece::resume_from_sync() { contribute(phase_cb); }

std::array<double, 3> Piece::lb_coords() const {
  // ORB balances by particle center of mass.
  std::array<double, 3> c{0.5, 0.5, 0.5};
  if (!bodies_.empty()) {
    c = {0, 0, 0};
    for (const Body& b : bodies_) {
      c[0] += b.x;
      c[1] += b.y;
      c[2] += b.z;
    }
    for (double& v : c) v /= static_cast<double>(bodies_.size());
  }
  return c;
}

void Piece::pup(pup::Er& p) {
  ArrayElementBase::pup(p);
  p | p_;
  p | pieces_;
  p | bodies_;
  p | acc_;
  std::uint64_t n = all_.size();
  p | n;
  if (p.unpacking()) all_.resize(static_cast<std::size_t>(n));
  pup::PUParray(p, all_.data(), all_.size());
  p | replies_expected_;
  p | replies_seen_;
  p | gravity_active_;
  p | direct_pairs_;
}

// ---- Simulation ------------------------------------------------------------------------

Simulation::Simulation(Runtime& rt, Params p) : rt_(rt), p_(p) {
  pieces_ = ArrayProxy<Piece, std::int32_t>::create(rt);
  const int n = p.pieces_per_dim;
  const int total = n * n * n;
  const int P = rt.active_pes();
  for (int i = 0; i < total; ++i)
    pieces_.seed(static_cast<std::int32_t>(i),
                 static_cast<int>(static_cast<long>(i) * P / total), p_, pieces_);

  // Plummer-like clustered distribution around the domain center.
  sim::Rng rng(p.seed);
  std::vector<std::vector<Body>> per_piece(static_cast<std::size_t>(total));
  for (int i = 0; i < p.nparticles; ++i) {
    Body b;
    const double u = rng.next_double();
    const double r = 0.08 * p.concentration /
                     std::sqrt(std::max(1e-9, std::pow(u, -2.0 / 3.0) - 1.0));
    const double ct = 2 * rng.next_double() - 1;
    const double st = std::sqrt(std::max(0.0, 1 - ct * ct));
    const double ph = 6.283185307179586 * rng.next_double();
    b.x = std::clamp(p.cx + r * st * std::cos(ph), 0.0, 1.0 - 1e-9);
    b.y = std::clamp(p.cy + r * st * std::sin(ph), 0.0, 1.0 - 1e-9);
    b.z = std::clamp(p.cz + r * ct, 0.0, 1.0 - 1e-9);
    b.vx = (rng.next_double() - 0.5) * 0.01;
    b.vy = (rng.next_double() - 0.5) * 0.01;
    b.vz = (rng.next_double() - 0.5) * 0.01;
    b.m = 1.0 / p.nparticles;
    auto cell = [&](double v) { return std::clamp(static_cast<int>(v * n), 0, n - 1); };
    per_piece[static_cast<std::size_t>(cell(b.x) + n * (cell(b.y) + n * cell(b.z)))]
        .push_back(b);
  }
  Collection& c = rt.collection(pieces_.id());
  for (int i = 0; i < total; ++i) {
    for (int pe = 0; pe < rt.npes(); ++pe) {
      if (auto* found = c.find(pe, IndexTraits<std::int32_t>::encode(i))) {
        static_cast<Piece*>(found)->seed_bodies(std::move(per_piece[static_cast<std::size_t>(i)]));
        break;
      }
    }
  }
  rt.lb().register_collection(pieces_.id());
}

int Simulation::npieces() const {
  return p_.pieces_per_dim * p_.pieces_per_dim * p_.pieces_per_dim;
}

std::size_t Simulation::total_bodies() const {
  std::size_t n = 0;
  Collection& c = rt_.collection(pieces_.id());
  for (int pe = 0; pe < rt_.npes(); ++pe)
    for (auto& [ix, obj] : c.local(pe).elems)
      n += static_cast<Piece*>(obj.get())->bodies().size();
  return n;
}

std::array<double, 3> Simulation::total_momentum() const {
  std::array<double, 3> m{0, 0, 0};
  Collection& c = rt_.collection(pieces_.id());
  for (int pe = 0; pe < rt_.npes(); ++pe) {
    for (auto& [ix, obj] : c.local(pe).elems) {
      for (const Body& b : static_cast<Piece*>(obj.get())->bodies()) {
        m[0] += b.m * b.vx;
        m[1] += b.m * b.vy;
        m[2] += b.m * b.vz;
      }
    }
  }
  return m;
}

void Simulation::run(int steps, Callback done) {
  steps_left_ = steps;
  done_ = std::move(done);
  start_step();
}

void Simulation::start_step() {
  current_ = PhaseTimes{};
  phase_start_ = rt_.now();
  pieces_.broadcast<&Piece::exchange>();
  rt_.start_quiescence(
      Callback::to_function([this](ReductionResult&&) { after_dd(); }));
}

void Simulation::after_dd() {
  current_.dd = rt_.now() - phase_start_;
  phase_start_ = rt_.now();
  Piece::phase_cb = Callback::to_function(
      [this](ReductionResult&& r) { after_tb(std::move(r.chunks)); });
  pieces_.broadcast<&Piece::build>(StartMsg{});
}

void Simulation::after_tb(std::vector<std::vector<std::byte>> chunks) {
  current_.tb = rt_.now() - phase_start_;
  phase_start_ = rt_.now();
  SummariesMsg m;
  for (auto& c : chunks) {
    PieceSummary s;
    pup::from_bytes(c, s);
    m.all.push_back(s);
  }
  std::sort(m.all.begin(), m.all.end(),
            [](const PieceSummary& a, const PieceSummary& b) { return a.piece < b.piece; });
  Piece::phase_cb =
      Callback::to_function([this](ReductionResult&&) { after_gravity(); });
  pieces_.broadcast<&Piece::gravity>(m);
}

void Simulation::after_gravity() {
  current_.gravity = rt_.now() - phase_start_;
  phase_start_ = rt_.now();
  Piece::phase_cb = Callback::to_function([this](ReductionResult&&) { after_lb(); });
  pieces_.broadcast<&Piece::integrate>(StartMsg{});
}

void Simulation::after_lb() {
  current_.lb = rt_.now() - phase_start_;
  current_.total = current_.dd + current_.tb + current_.gravity + current_.lb;
  times_.push_back(current_);
  if (--steps_left_ > 0) {
    start_step();
  } else {
    done_.invoke(rt_, ReductionResult{});
  }
}

}  // namespace charm::barnes
