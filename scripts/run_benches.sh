#!/usr/bin/env bash
# Runs every figure-reproduction bench plus the micro-benchmarks, mirroring
#   for b in build/bench/*; do $b; done
# but skipping CMake bookkeeping entries.  Output goes to stdout; tee it into
# bench_output.txt for the EXPERIMENTS.md record.
set -u
cd "$(dirname "$0")/.."
for b in build/bench/fig* build/bench/ablation_* build/bench/micro_*; do
  [ -x "$b" ] || continue
  echo "### $b"
  "$b" || echo "### $b FAILED (exit $?)"
done
