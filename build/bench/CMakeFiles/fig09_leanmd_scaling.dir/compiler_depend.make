# Empty compiler generated dependencies file for fig09_leanmd_scaling.
# This may be replaced when dependencies are built.
