# Empty dependencies file for leanmd_mini.
# This may be replaced when dependencies are built.
