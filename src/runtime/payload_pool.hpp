#pragma once
// Free-list pool recycling std::vector<std::byte> capacity across messages.
//
// Every point send packs its argument into a payload vector, ships it inside
// an Envelope, and unpacks it at the destination — after which the vector
// dies.  Without pooling that is one allocation and one free per message.
// The pool keeps dead payload buffers (their capacity, not their contents)
// on a LIFO free list; the next send reuses the hottest buffer, so the
// steady state allocates nothing as long as payloads fit the retained
// capacity (kSmallBytes after first reuse).
//
// The pool never shrinks a buffer and never zeroes memory — callers receive
// an *empty* vector with capacity >= their reservation and append into it.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace charm {

class PayloadPool {
 public:
  /// Buffers are grown to at least this capacity when recycled, so any
  /// payload up to kSmallBytes is served allocation-free after the pool
  /// warms up (the "small size class").
  static constexpr std::size_t kSmallBytes = 1024;
  /// Buffers with more capacity than this are freed rather than retained
  /// (one giant checkpoint payload must not pin memory forever).
  static constexpr std::size_t kMaxRetainedBytes = 1 << 16;
  /// Upper bound on retained buffers.  Sized for a burst handler that sends
  /// a few thousand messages in one go — they are all in flight (holding
  /// pool buffers) before the first delivery releases one, and the *next*
  /// burst should still be served allocation-free.  Worst case pinned
  /// memory: kMaxFreeBuffers * kSmallBytes = 4 MiB.
  static constexpr std::size_t kMaxFreeBuffers = 4096;

  /// Returns an empty vector with capacity >= reserve_bytes.
  std::vector<std::byte> acquire(std::size_t reserve_bytes) {
    if (!free_.empty()) {
      std::vector<std::byte> buf = std::move(free_.back());
      free_.pop_back();
      if (buf.capacity() < reserve_bytes) {
        ++grows_;
        buf.reserve(reserve_bytes);
      } else {
        ++hits_;
      }
      return buf;
    }
    ++misses_;
    std::vector<std::byte> buf;
    buf.reserve(reserve_bytes);
    return buf;
  }

  /// Hands a dead payload's capacity back to the pool.
  void release(std::vector<std::byte>&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > kMaxRetainedBytes ||
        free_.size() >= kMaxFreeBuffers) {
      return;  // let the vector free itself
    }
    buf.clear();
    if (buf.capacity() < kSmallBytes) buf.reserve(kSmallBytes);
    free_.push_back(std::move(buf));
  }

  // Diagnostics (tests assert the steady state stops missing).
  std::size_t free_buffers() const { return free_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t grows() const { return grows_; }

 private:
  std::vector<std::vector<std::byte>> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t grows_ = 0;
};

}  // namespace charm
