// Barnes-Hut and LULESH-proxy tests.

#include <gtest/gtest.h>

#include <cmath>

#include "miniapps/barnes/barnes.hpp"
#include "miniapps/lulesh/lulesh.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;

using charmtest::Harness;

barnes::Params small_barnes() {
  barnes::Params p;
  p.pieces_per_dim = 3;
  p.nparticles = 600;
  return p;
}

TEST(Barnes, RunsAndConservesParticleCount) {
  Harness h(4);
  barnes::Simulation sim(h.rt, small_barnes());
  EXPECT_EQ(sim.total_bodies(), 600u);
  bool done = false;
  h.rt.on_pe(0, [&] {
    sim.run(3, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(sim.total_bodies(), 600u);
  ASSERT_EQ(sim.phase_times().size(), 3u);
}

TEST(Barnes, PhaseBreakdownIsMeasured) {
  Harness h(4);
  barnes::Simulation sim(h.rt, small_barnes());
  bool done = false;
  h.rt.on_pe(0, [&] {
    sim.run(2, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  for (const auto& t : sim.phase_times()) {
    EXPECT_GT(t.tb, 0);
    EXPECT_GT(t.gravity, 0);
    EXPECT_GT(t.lb, 0);
    EXPECT_GT(t.gravity, t.tb) << "gravity should dominate tree build";
    EXPECT_NEAR(t.total, t.dd + t.tb + t.gravity + t.lb, 1e-12);
  }
}

TEST(Barnes, GravityApproximatesDirectSummation) {
  // Compare the theta-opening simulation force integration against direct
  // O(N^2) on the same initial condition: velocities after one step should
  // agree within the monopole approximation tolerance.
  barnes::Params p = small_barnes();
  p.nparticles = 200;
  p.theta = 0.2;  // strict opening: mostly direct interactions
  Harness h(2);
  barnes::Simulation sim(h.rt, p);
  // Gather the initial bodies.
  std::vector<barnes::Body> init;
  {
    Collection& c = h.rt.collection(sim.pieces().id());
    for (int pe = 0; pe < h.rt.npes(); ++pe)
      for (auto& [ix, obj] : c.local(pe).elems)
        for (const auto& b : static_cast<barnes::Piece*>(obj.get())->bodies())
          init.push_back(b);
  }
  bool done = false;
  h.rt.on_pe(0, [&] {
    sim.run(1, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);

  // Direct reference for total kinetic energy change direction.
  double ref_ke = 0;
  const double eps2 = p.soften * p.soften;
  for (std::size_t i = 0; i < init.size(); ++i) {
    double ax = 0, ay = 0, az = 0;
    for (std::size_t j = 0; j < init.size(); ++j) {
      if (i == j) continue;
      const double dx = init[j].x - init[i].x;
      const double dy = init[j].y - init[i].y;
      const double dz = init[j].z - init[i].z;
      const double r2 = dx * dx + dy * dy + dz * dz + eps2;
      const double inv = 1.0 / (r2 * std::sqrt(r2));
      ax += init[j].m * dx * inv;
      ay += init[j].m * dy * inv;
      az += init[j].m * dz * inv;
    }
    const double vx = init[i].vx + ax * p.dt;
    const double vy = init[i].vy + ay * p.dt;
    const double vz = init[i].vz + az * p.dt;
    ref_ke += 0.5 * init[i].m * (vx * vx + vy * vy + vz * vz);
  }
  double sim_ke = 0;
  Collection& c = h.rt.collection(sim.pieces().id());
  for (int pe = 0; pe < h.rt.npes(); ++pe)
    for (auto& [ix, obj] : c.local(pe).elems)
      for (const auto& b : static_cast<barnes::Piece*>(obj.get())->bodies())
        sim_ke += 0.5 * b.m * (b.vx * b.vx + b.vy * b.vy + b.vz * b.vz);
  EXPECT_NEAR(sim_ke, ref_ke, std::abs(ref_ke) * 0.05)
      << "theta=0.2 walk should be close to direct summation";
}

TEST(Barnes, OverdecompositionBeatsOnePiecePerPe) {
  auto run = [](int pieces_per_dim, bool with_lb) {
    Harness h(8);
    barnes::Params p;
    p.pieces_per_dim = pieces_per_dim;
    p.nparticles = 6000;  // enough per-piece compute that overheads don't dominate
    barnes::Simulation sim(h.rt, p);
    if (with_lb) {
      h.rt.lb().set_strategy(lb::make_orb());
      h.rt.lb().set_period(2);
    }
    bool done = false;
    h.rt.on_pe(0, [&] {
      sim.run(6, Callback::to_function([&](ReductionResult&&) { done = true; }));
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return h.machine.max_pe_clock();
  };
  // The paper's Fig 12 comparison: over-decomposed pieces balanced with ORB
  // ("500m") vs one piece per PE ("500m_NO").  The paper reports ~40%; our
  // piece-pair gravity approximation narrows the gap (EXPERIMENTS.md), so the
  // assertion is directional.
  EXPECT_LT(run(4, true), run(2, false));
}

TEST(Barnes, OrbLbImprovesClusteredRun) {
  auto run = [](bool with_lb) {
    Harness h(8);
    barnes::Params p;
    p.pieces_per_dim = 4;
    p.nparticles = 1500;
    p.concentration = 0.6;
    barnes::Simulation sim(h.rt, p);
    if (with_lb) {
      h.rt.lb().set_strategy(lb::make_orb());
      h.rt.lb().set_period(2);
    }
    bool done = false;
    h.rt.on_pe(0, [&] {
      sim.run(6, Callback::to_function([&](ReductionResult&&) { done = true; }));
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return h.machine.max_pe_clock();
  };
  EXPECT_LT(run(true), run(false));
}

// ---- LULESH proxy -----------------------------------------------------------------

TEST(Lulesh, RunsAndIsDeterministic) {
  auto run = [](int npes) {
    Harness h(npes);
    lulesh::Config cfg;
    cfg.ranks_per_dim = 2;
    cfg.elems_per_dim = 6;
    cfg.iterations = 5;
    lulesh::Stats out;
    bool done = false;
    lulesh::run(h.rt, cfg, {}, [&](const lulesh::Stats& s) {
      out = s;
      done = true;
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return out;
  };
  const auto a = run(2);
  const auto b = run(8);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum) << "physics independent of PE count";
  EXPECT_GT(a.halo_messages, 0u);
}

TEST(Lulesh, VirtualizationImprovesCacheBoundRun) {
  // Same 4^3=64-rank job; with 8 PEs each rank's working set is the same, but
  // the modeled cache effect needs the per-rank working set to shrink...
  // Virtualization enters through the config: smaller subdomains per rank at
  // the same total size.  v=1: 2^3 ranks with 16^3 elements each on 8 PEs;
  // v=8: 4^3 ranks with 8^3 elements each on the same 8 PEs.
  auto run = [](int ranks_dim, int elems_dim) {
    Harness h(8);
    lulesh::Config cfg;
    cfg.ranks_per_dim = ranks_dim;
    cfg.elems_per_dim = elems_dim;
    cfg.iterations = 6;
    cfg.migrate_every = 0;
    cfg.bytes_per_elem = 2400;
    lulesh::Stats out;
    ampi::Options opts;
    opts.cache_bytes = 4e6;  // 16^3 * 2400B ~ 9.8MB spills; 8^3 ~ 1.2MB fits
    lulesh::run(h.rt, cfg, opts, [&](const lulesh::Stats& s) { out = s; });
    h.machine.run();
    return out.elapsed;
  };
  const double t_v1 = run(2, 16);
  const double t_v8 = run(4, 8);
  EXPECT_LT(t_v8, t_v1 * 0.85)
      << "8-way virtualization should fit the cache and run faster (Fig 14)";
}

TEST(Lulesh, MigrationFixesRegionImbalance) {
  auto run = [](int migrate_every) {
    Harness h(4);
    lulesh::Config cfg;
    cfg.ranks_per_dim = 2;
    cfg.elems_per_dim = 8;
    cfg.iterations = 12;
    cfg.migrate_every = migrate_every;
    cfg.region_factor = 6.0;
    lulesh::Stats out;
    lulesh::run(h.rt, cfg, {}, [&](const lulesh::Stats& s) { out = s; });
    if (migrate_every > 0) {
      Runtime::current().lb().set_strategy(lb::make_greedy());
      Runtime::current().lb().set_period(2);
    }
    h.machine.run();
    return out.elapsed;
  };
  EXPECT_LT(run(3), run(0));
}

TEST(Lulesh, NonCubicPeCountsWork) {
  // 27 ranks on 5 PEs: virtualization frees the user from cubic core counts.
  Harness h(5);
  lulesh::Config cfg;
  cfg.ranks_per_dim = 3;
  cfg.elems_per_dim = 6;
  cfg.iterations = 4;
  bool done = false;
  lulesh::run(h.rt, cfg, {}, [&](const lulesh::Stats&) { done = true; });
  h.machine.run();
  EXPECT_TRUE(done);
}

}  // namespace
