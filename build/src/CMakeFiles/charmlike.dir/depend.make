# Empty dependencies file for charmlike.
# This may be replaced when dependencies are built.
