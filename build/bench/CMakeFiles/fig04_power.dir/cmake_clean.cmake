file(REMOVE_RECURSE
  "CMakeFiles/fig04_power.dir/fig04_power.cpp.o"
  "CMakeFiles/fig04_power.dir/fig04_power.cpp.o.d"
  "fig04_power"
  "fig04_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
