// Whole-run determinism regression: two in-process executions of the same
// configuration must agree *exactly* — final virtual times, event counts,
// message statistics, and trace summaries.  Guards the emulator's core
// contract (DESIGN.md §1): identical seeds and configs give bit-identical
// runs, which is what the resilience harness and every figure script rely on.
//
// The two configurations replicate the smoke setups of bench/fig10 (LeanMD
// checkpoint + failure + restart) and bench/fig16 (Stencil2D under
// interference with periodic LB).

#include <gtest/gtest.h>

#include <cstdint>

#include "ft/mem_checkpoint.hpp"
#include "lb/manager.hpp"
#include "miniapps/leanmd/leanmd.hpp"
#include "miniapps/stencil/stencil.hpp"
#include "runtime/charm.hpp"
#include "trace/summary.hpp"
#include "trace/trace.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;
using charmtest::Harness;

struct Fingerprint {
  double final_time = 0;
  double makespan = 0;
  std::uint64_t events = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  // Trace-derived:
  double span = 0;
  double busy = 0;
  std::uint64_t sends = 0;
  std::uint64_t send_bytes = 0;
  double latency = 0;

  void take_trace(const trace::Tracer& tr, int npes) {
    const trace::Summary s = trace::summarize(tr, npes);
    span = s.span;
    busy = s.total_busy();
    sends = s.messages.sends;
    send_bytes = s.messages.bytes;
    latency = s.messages.total_latency;
  }
};

void expect_identical(const Fingerprint& a, const Fingerprint& b) {
  EXPECT_EQ(a.final_time, b.final_time);  // exact, not approximate
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.msgs, b.msgs);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.busy, b.busy);
  EXPECT_EQ(a.sends, b.sends);
  EXPECT_EQ(a.send_bytes, b.send_bytes);
  EXPECT_EQ(a.latency, b.latency);
}

// ---- fig10 smoke analog: LeanMD + checkpoint + failure + restart -------------

Fingerprint run_leanmd_ckpt() {
  const int npes = 8;
  Harness h(npes);
  trace::Tracer tracer;
  h.machine.set_tracer(&tracer);
  leanmd::Params p;
  p.nx = p.ny = p.nz = 3;
  p.atoms_per_cell = 12;
  p.epsilon = 1e-6;
  leanmd::Simulation sim(h.rt, p);
  ft::MemCheckpointer ckpt(h.rt);
  bool done = false;
  h.rt.on_pe(0, [&] {
    sim.run(2, Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        ckpt.fail_and_recover(npes - 1, Callback::to_function([&](ReductionResult&&) {
          sim.run(1, Callback::to_function([&](ReductionResult&&) { done = true; }));
        }));
      }));
    }));
  });
  h.machine.run();
  EXPECT_TRUE(done);

  Fingerprint f;
  f.final_time = h.machine.time();
  f.makespan = h.machine.max_pe_clock();
  f.events = h.machine.events_processed();
  f.msgs = h.rt.messages_sent();
  f.bytes = h.rt.bytes_sent();
  f.take_trace(tracer, npes);
  return f;
}

TEST(Determinism, LeanmdCheckpointRestartRunsAreIdentical) {
  const Fingerprint a = run_leanmd_ckpt();
  const Fingerprint b = run_leanmd_ckpt();
  expect_identical(a, b);
  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.final_time, 0.0);
}

// ---- fig16 smoke analog: Stencil2D + interference + periodic LB --------------

Fingerprint run_stencil_interference() {
  const int npes = 16;
  Harness h(npes, sim::NetworkParams::cloud_ethernet());
  trace::Tracer tracer;
  h.machine.set_tracer(&tracer);
  stencil::Params p;
  p.grid = 256;
  p.tiles_x = p.tiles_y = 8;
  p.cell_cost = 3e-9;
  stencil::Sim sim(h.rt, p);
  h.rt.lb().set_strategy(lb::make_greedy());
  h.rt.lb().set_period(10);

  bool done = false;
  h.rt.on_pe(0, [&] {
    sim.run(15, Callback::to_function([&](ReductionResult&&) {
      // Interfering VM lands on PE 5 (fig16's mechanism).
      h.machine.pe(5).set_freq(0.45);
      sim.run(25, Callback::to_function([&](ReductionResult&&) { done = true; }));
    }));
  });
  h.machine.run();
  EXPECT_TRUE(done);

  Fingerprint f;
  f.final_time = h.machine.time();
  f.makespan = h.machine.max_pe_clock();
  f.events = h.machine.events_processed();
  f.msgs = h.rt.messages_sent();
  f.bytes = h.rt.bytes_sent();
  f.take_trace(tracer, npes);
  return f;
}

TEST(Determinism, StencilInterferenceLbRunsAreIdentical) {
  const Fingerprint a = run_stencil_interference();
  const Fingerprint b = run_stencil_interference();
  expect_identical(a, b);
  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.sends, 0u);
}

// Tracing itself must not perturb the simulation: with the tracer detached,
// the run lands on the same final virtual time.
TEST(Determinism, TracingDoesNotPerturbVirtualTime) {
  auto run = [](bool traced) {
    const int npes = 8;
    Harness h(npes);
    trace::Tracer tracer;
    if (traced) h.machine.set_tracer(&tracer);
    leanmd::Params p;
    p.nx = p.ny = p.nz = 3;
    p.atoms_per_cell = 8;
    leanmd::Simulation sim(h.rt, p);
    bool done = false;
    h.rt.on_pe(0, [&] {
      sim.run(3, Callback::to_function([&](ReductionResult&&) { done = true; }));
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return h.machine.time();
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
