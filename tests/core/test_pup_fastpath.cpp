// Fast-path vs legacy-path PUP equivalence.
//
// The devirtualized single-pass helpers (pup::to_bytes / pack_append /
// from_bytes) and the mem_copyable memcpy collapse must produce byte streams
// identical to the original virtual walk (operator| through a pup::Er&,
// every bytes() call dispatched virtually).  This suite round-trips every
// message type in the repo through both paths, in both directions, with
// randomized contents.
//
// Also pins the mem_copyable trait itself: every opted-in type must really
// be padding-free (the opt-in static_asserts fire at compile time; the
// asserts here document which types are expected on which path).

#include <gtest/gtest.h>

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "ampi/ampi.hpp"
#include "miniapps/amr/amr.hpp"
#include "miniapps/barnes/barnes.hpp"
#include "miniapps/leanmd/leanmd.hpp"
#include "miniapps/pdes/pdes.hpp"
#include "miniapps/stencil/stencil.hpp"
#include "pup/pup.hpp"
#include "runtime/callback.hpp"
#include "runtime/index.hpp"
#include "sort/sorting.hpp"

namespace {

using namespace charm;

// ---- trait pins -------------------------------------------------------------

// RawPuppable types qualify automatically: their walk is already one
// bytes(sizeof(T)) call.
static_assert(pup::mem_copyable<int>);
static_assert(pup::mem_copyable<double>);
static_assert(pup::mem_copyable<charm::Index2D>);
static_assert(pup::mem_copyable<charm::barnes::Body>);
static_assert(pup::mem_copyable<charm::leanmd::Atom>);

// Opted-in aggregates: each opt-in carries a kFieldBytes == sizeof(T)
// compile-time proof that the field walk covers every byte (no padding).
static_assert(pup::mem_copyable<charm::ObjIndex>);
static_assert(pup::mem_copyable<charm::pdes::EventMsg>);
static_assert(pup::mem_copyable<charm::pdes::WindowMsg>);
static_assert(pup::mem_copyable<charm::stencil::StartMsg>);
static_assert(pup::mem_copyable<charm::barnes::StartMsg>);
static_assert(pup::mem_copyable<charm::barnes::RequestMsg>);
static_assert(pup::mem_copyable<charm::leanmd::StartMsg>);
static_assert(pup::mem_copyable<charm::amr::StepMsg>);
static_assert(pup::mem_copyable<charm::sortlib::StartMsg>);

// Not eligible: variable-size members, or padded aggregates that were
// (correctly) never opted in.
static_assert(!pup::mem_copyable<std::string>);
static_assert(!pup::mem_copyable<std::vector<double>>);
static_assert(!pup::mem_copyable<charm::stencil::GhostMsg>);
static_assert(!pup::mem_copyable<charm::amr::DesireMsg>);  // uint8+uint64: padded
static_assert(!pup::mem_copyable<charm::ReductionResult>);

// ---- legacy path ------------------------------------------------------------

// Packs through a pup::Er& so every dispatch in the walk is virtual — this is
// exactly the pre-fast-path code path, kept as the compatibility shim.
template <class T>
std::vector<std::byte> legacy_pack(const T& v) {
  T& mv = const_cast<T&>(v);
  pup::Sizer s;
  pup::Er& se = s;
  se | mv;
  std::vector<std::byte> out;
  out.reserve(s.size());
  pup::Packer pk(out);
  pup::Er& pe = pk;
  pe | mv;
  return out;
}

template <class T>
void legacy_unpack(const std::vector<std::byte>& buf, T& v) {
  pup::Unpacker u(buf.data(), buf.size());
  pup::Er& ue = u;
  ue | v;
}

// Round-trips `v` through both paths and cross-checks the byte streams.
// Value equality is checked by re-packing (avoids requiring operator== on
// every message type).
template <class T>
void expect_equiv(const T& v) {
  const std::vector<std::byte> fast = pup::to_bytes(v);
  const std::vector<std::byte> legacy = legacy_pack(v);
  ASSERT_EQ(fast.size(), legacy.size());
  EXPECT_TRUE(fast == legacy) << "fast and legacy byte streams differ";
  EXPECT_EQ(pup::size_of(v), fast.size());

  // fast bytes -> legacy unpacker -> fast packer
  T from_fast{};
  legacy_unpack(fast, from_fast);
  EXPECT_TRUE(pup::to_bytes(from_fast) == fast);

  // legacy bytes -> fast unpacker -> legacy packer
  T from_legacy{};
  pup::from_bytes(legacy, from_legacy);
  EXPECT_TRUE(legacy_pack(from_legacy) == legacy);
}

std::mt19937 rng(20260806);

double rnd() { return std::uniform_real_distribution<double>(-1e6, 1e6)(rng); }
int rint(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng); }

std::vector<double> rvec(std::size_t max_n) {
  std::vector<double> v(static_cast<std::size_t>(rint(0, static_cast<int>(max_n))));
  for (double& x : v) x = rnd();
  return v;
}

std::string rstr(std::size_t max_n) {
  std::string s(static_cast<std::size_t>(rint(0, static_cast<int>(max_n))), '\0');
  for (char& c : s) c = static_cast<char>(rint(32, 126));
  return s;
}

// ---- the suite --------------------------------------------------------------

constexpr int kRounds = 25;

TEST(PupFastPath, MemCopyableMessages) {
  for (int i = 0; i < kRounds; ++i) {
    expect_equiv(charm::ObjIndex{static_cast<std::uint64_t>(rng()),
                                 static_cast<std::uint64_t>(rng())});
    expect_equiv(charm::pdes::EventMsg{rnd()});
    expect_equiv(charm::pdes::WindowMsg{rnd()});
    expect_equiv(charm::stencil::StartMsg{rint(0, 1 << 20)});
    expect_equiv(charm::barnes::StartMsg{rint(0, 1 << 20)});
    expect_equiv(charm::barnes::RequestMsg{rint(-5, 500)});
    expect_equiv(charm::leanmd::StartMsg{rint(0, 1 << 20)});
    expect_equiv(charm::amr::StepMsg{rint(0, 1 << 20)});
    expect_equiv(charm::sortlib::StartMsg{rint(0, 1 << 20)});
  }
}

TEST(PupFastPath, StencilAndPdes) {
  for (int i = 0; i < kRounds; ++i) {
    charm::stencil::GhostMsg g;
    g.iter = rint(0, 1000);
    g.side = rint(0, 3);
    g.strip = rvec(64);
    expect_equiv(g);
  }
}

TEST(PupFastPath, Barnes) {
  for (int i = 0; i < kRounds; ++i) {
    charm::barnes::BodiesMsg b;
    b.from = rint(0, 63);
    b.bodies.resize(static_cast<std::size_t>(rint(0, 16)));
    for (auto& body : b.bodies) {
      body.x = rnd();
      body.y = rnd();
      body.z = rnd();
      body.vx = rnd();
      body.vy = rnd();
      body.vz = rnd();
      body.m = rnd();
    }
    expect_equiv(b);

    charm::barnes::SummariesMsg s;
    s.all.resize(static_cast<std::size_t>(rint(0, 8)));
    for (auto& sum : s.all) {
      sum.piece = rint(0, 63);
      sum.cx = rnd();
      sum.cy = rnd();
      sum.cz = rnd();
      sum.mass = rnd();
      sum.radius = rnd();
      sum.count = rint(0, 1000);
    }
    expect_equiv(s);
  }
}

TEST(PupFastPath, Leanmd) {
  for (int i = 0; i < kRounds; ++i) {
    charm::leanmd::PositionsMsg p;
    p.from[0] = static_cast<std::int16_t>(rint(-8, 8));
    p.from[1] = static_cast<std::int16_t>(rint(-8, 8));
    p.from[2] = static_cast<std::int16_t>(rint(-8, 8));
    p.step = rint(0, 1000);
    p.atoms.resize(static_cast<std::size_t>(rint(0, 12)));
    for (auto& a : p.atoms) {
      a.x = rnd();
      a.y = rnd();
      a.z = rnd();
      a.vx = rnd();
      a.vy = rnd();
      a.vz = rnd();
    }
    expect_equiv(p);

    charm::leanmd::ForcesMsg f;
    f.step = rint(0, 1000);
    f.f = rvec(36);
    expect_equiv(f);

    charm::leanmd::AtomsMsg am;
    am.step = rint(0, 1000);
    am.atoms.resize(static_cast<std::size_t>(rint(0, 12)));
    for (auto& a : am.atoms) {
      a.x = rnd();
      a.vx = rnd();
    }
    expect_equiv(am);
  }
}

TEST(PupFastPath, Amr) {
  for (int i = 0; i < kRounds; ++i) {
    charm::amr::FaceMsg fm;
    fm.step = rint(0, 100);
    fm.dim = rint(0, 2);
    fm.sender_depth = static_cast<std::uint8_t>(rint(0, 7));
    fm.sender_bits = static_cast<std::uint64_t>(rng());
    fm.n = rint(1, 8);
    fm.plane = rvec(64);
    expect_equiv(fm);

    charm::amr::DesireMsg dm;
    dm.from_depth = static_cast<std::uint8_t>(rint(0, 7));
    dm.from_bits = static_cast<std::uint64_t>(rng());
    dm.delta = rint(-1, 1);
    expect_equiv(dm);

    charm::amr::DecisionMsg cm;
    cm.from_depth = static_cast<std::uint8_t>(rint(0, 7));
    cm.from_bits = static_cast<std::uint64_t>(rng());
    cm.delta = rint(-1, 1);
    expect_equiv(cm);

    charm::amr::ChildCtorMsg cc;
    cc.col = rint(0, 7);
    cc.depth = static_cast<std::uint8_t>(rint(0, 7));
    cc.bits = static_cast<std::uint64_t>(rng());
    cc.step = rint(0, 100);
    for (auto& r : cc.face_rel) r = static_cast<std::int8_t>(rint(-1, 1));
    cc.field = rvec(27);
    expect_equiv(cc);

    charm::amr::ChildDataMsg cd;
    cd.octant = rint(0, 7);
    for (auto& r : cd.face_rel) r = static_cast<std::int8_t>(rint(-1, 1));
    cd.field = rvec(27);
    expect_equiv(cd);
  }
}

TEST(PupFastPath, SortAndAmpi) {
  for (int i = 0; i < kRounds; ++i) {
    charm::sortlib::KeysMsg k;
    k.from = rint(0, 63);
    k.keys.resize(static_cast<std::size_t>(rint(0, 32)));
    for (auto& key : k.keys) key = static_cast<std::uint64_t>(rng());
    expect_equiv(k);

    charm::sortlib::SplitterMsg sp;
    sp.splitters.resize(static_cast<std::size_t>(rint(0, 16)));
    for (auto& s : sp.splitters) s = static_cast<std::uint64_t>(rng());
    expect_equiv(sp);

    charm::ampi::Wire w;
    w.src = rint(0, 63);
    w.tag = rint(0, 1000);
    w.data.resize(static_cast<std::size_t>(rint(0, 64)));
    for (auto& b : w.data) b = static_cast<std::byte>(rint(0, 255));
    expect_equiv(w);
  }
}

TEST(PupFastPath, ReductionResult) {
  for (int i = 0; i < kRounds; ++i) {
    charm::ReductionResult r;
    r.nums = rvec(8);
    r.chunks.resize(static_cast<std::size_t>(rint(0, 4)));
    for (auto& c : r.chunks) {
      c.resize(static_cast<std::size_t>(rint(0, 32)));
      for (auto& b : c) b = static_cast<std::byte>(rint(0, 255));
    }
    expect_equiv(r);
  }
}

// Every stdlib overload in pup.hpp, exercised through one composite struct.
struct KitchenSink {
  std::string name;
  std::vector<std::string> tags;
  std::map<std::string, int> table;
  std::set<int> ids;
  std::optional<double> maybe;
  std::pair<int, double> pr{};
  std::deque<int> dq;
  std::vector<bool> bits;
  std::array<std::int16_t, 4> quad{};
  template <class P>
  void pup(P& p) {
    p | name;
    p | tags;
    p | table;
    p | ids;
    p | maybe;
    p | pr;
    p | dq;
    p | bits;
    p | quad;
  }
};

TEST(PupFastPath, StdlibOverloads) {
  for (int i = 0; i < kRounds; ++i) {
    KitchenSink k;
    k.name = rstr(24);
    for (int t = rint(0, 5); t > 0; --t) k.tags.push_back(rstr(12));
    for (int t = rint(0, 5); t > 0; --t) k.table[rstr(8)] = rint(-100, 100);
    for (int t = rint(0, 8); t > 0; --t) k.ids.insert(rint(-1000, 1000));
    if (rint(0, 1) != 0) k.maybe = rnd();
    k.pr = {rint(-5, 5), rnd()};
    for (int t = rint(0, 6); t > 0; --t) k.dq.push_back(rint(-50, 50));
    for (int t = rint(0, 19); t > 0; --t) k.bits.push_back(rint(0, 1) != 0);
    for (auto& q : k.quad) q = static_cast<std::int16_t>(rint(-300, 300));
    expect_equiv(k);
  }
}

TEST(PupFastPath, FromBytesUnderrunThrows) {
  const auto bytes = pup::to_bytes(charm::pdes::EventMsg{1.0});
  charm::pdes::EventMsg out;
  EXPECT_THROW(pup::from_bytes(bytes.data(), bytes.size() - 1, out),
               std::out_of_range);
}

}  // namespace
