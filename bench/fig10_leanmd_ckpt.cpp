// Fig 10: LeanMD double in-memory checkpoint and restart times for two
// system sizes vs PE count (paper: 2.8M / 1.6M atoms; checkpoint falls with
// PEs, restart grows slightly with PEs due to recovery barriers).
//
// With --mtbf=SEC the bench instead runs LeanMD under ft::ResilientDriver
// while sim::FaultInjector kills PEs at random (seeded) times: the run rolls
// back to the last double in-memory checkpoint after each failure, replays,
// and completes.  Combine with --trace=FILE to see the failure / restore
// phase spans in the Chrome trace.

#include "bench_common.hpp"
#include "ft/mem_checkpoint.hpp"
#include "ft/resilient_driver.hpp"
#include "miniapps/leanmd/leanmd.hpp"
#include "sim/fault_injector.hpp"

namespace {

using namespace charm;

std::pair<double, double> times(int npes, int cells_per_dim) {
  sim::Machine m(bench::machine_config(npes));
  bench::attach_trace(m);
  Runtime rt(m);
  leanmd::Params p;
  p.nx = p.ny = p.nz = static_cast<std::int16_t>(cells_per_dim);
  p.atoms_per_cell = 24;
  p.epsilon = 1e-6;
  leanmd::Simulation sim(rt, p);
  ft::MemCheckpointer ckpt(rt);
  double t_ckpt = -1, t_restart = -1;
  rt.on_pe(0, [&] {
    sim.run(2, Callback::to_function([&](ReductionResult&&) {
      const double t0 = charm::now();
      ckpt.checkpoint(Callback::to_function([&, t0](ReductionResult&&) {
        t_ckpt = charm::now() - t0;
        const double t1 = charm::now();
        ckpt.fail_and_recover(npes - 1, Callback::to_function([&, t1](ReductionResult&&) {
          t_restart = charm::now() - t1;
          rt.exit();
        }));
      }));
    }));
  });
  m.run();
  return {t_ckpt, t_restart};
}

/// --mtbf mode: LeanMD to completion under random PE failures.
int run_resilient(int npes, int total_steps, int ckpt_period) {
  sim::Machine m(bench::machine_config(npes));
  bench::attach_trace(m);
  Runtime rt(m);
  leanmd::Params p;
  p.nx = p.ny = p.nz = bench::smoke() ? 4 : 6;
  p.atoms_per_cell = 24;
  p.epsilon = 1e-6;
  leanmd::Simulation sim(rt, p);

  sim::FaultConfig fcfg;
  fcfg.mode = sim::FaultMode::kMtbf;
  fcfg.mtbf = bench::options().mtbf;
  fcfg.seed = bench::options().fault_seed;
  fcfg.max_failures = bench::options().failures;
  const ft::MemCkptParams ckpt_params;
  // Keep consecutive failures out of each other's detection window: two dead
  // PEs in one burst can be buddies, which double checkpointing cannot survive.
  fcfg.min_gap = 2.5 * ckpt_params.detect_delay;
  sim::FaultInjector fi(fcfg);
  ft::MemCheckpointer ckpt(rt, ckpt_params);
  ckpt.attach_injector(fi);

  bool finished = false;
  ft::ResilientDriver drv(
      rt, ckpt,
      [&](int step, std::function<void()> boundary) {
        // Arm the injector only once the initial checkpoint has committed; a
        // failure with no checkpoint to fall back to is (rightly) fatal.
        if (step == 1) m.set_fault_injector(&fi);
        sim.run(1, Callback::to_function(
                       [boundary = std::move(boundary)](ReductionResult&&) { boundary(); }));
      },
      total_steps, ckpt_period);
  rt.on_pe(0, [&] {
    drv.start(Callback::to_function([&](ReductionResult&&) {
      finished = true;
      m.set_fault_injector(nullptr);
    }));
  });
  m.run();

  bench::columns({"PEs", "steps", "failures", "recoveries", "replayed", "makespan_ms"});
  bench::row({static_cast<double>(npes), static_cast<double>(drv.steps_completed()),
              static_cast<double>(fi.failures_injected()),
              static_cast<double>(ckpt.recoveries_completed()),
              static_cast<double>(drv.steps_replayed()), m.max_pe_clock() * 1e3});
  if (!fi.log().empty()) {
    bench::note("failure schedule (seed " +
                std::to_string(bench::options().fault_seed) + "):");
    std::printf("%s", fi.format_log().c_str());
  }
  if (!finished) {
    std::fprintf(stderr, "resilient run did not complete\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  if (bench::options().mtbf > 0) {
    bench::header("Figure 10 (resilience mode)",
                  "LeanMD under injected PE failures, checkpoint/rollback/replay");
    const int rc = run_resilient(bench::smoke() ? 8 : 32,
                                 bench::cap_steps(20, 6), /*ckpt_period=*/2);
    if (rc != 0) return rc;
    const int frc = bench::finish();
    return frc;
  }
  bench::header("Figure 10", "LeanMD in-memory checkpoint/restart, two system sizes");
  bench::columns({"PEs", "big_ckpt_ms", "small_ckpt_ms", "big_restart_ms", "small_restart_ms"});
  for (int p : bench::pe_series({8, 16, 32, 64})) {
    auto [cb, rb] = times(p, 8);  // "2.8M-atom" analogue
    auto [cs, rs] = times(p, 6);  // "1.6M-atom" analogue
    bench::row({static_cast<double>(p), cb * 1e3, cs * 1e3, rb * 1e3, rs * 1e3});
  }
  bench::note("paper shape: checkpoint time falls with PEs (less data per PE, 43ms->33ms);");
  bench::note("restart time creeps up with PEs (recovery barriers, 66ms->139ms)");
  return bench::finish();
}
