// Incremental LB decision loop oracles (DESIGN.md §13).
//
// The load database must stay bit-identical to a from-scratch rebuild after
// ANY churn sequence — load updates, migrations, dynamic insert/destroy,
// checkpoint-restore sweeps and shrink/expand — and the indexed strategy
// paths must pick exactly the migrations the pre-database algorithms pick.
// Everything here compares with ==, never with tolerances: the contract is
// byte-stability of every checked-in benchmark figure.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <numeric>
#include <vector>

#include "ft/mem_checkpoint.hpp"
#include "lb/load_db.hpp"
#include "runtime/charm.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;
using charmtest::Harness;

std::uint64_t mix(std::uint64_t x) {  // splitmix64
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// ---- exact-compare helpers ---------------------------------------------------

::testing::AssertionResult chares_equal(const std::vector<lb::ChareInfo>& a,
                                        const std::vector<lb::ChareInfo>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "chare count " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const lb::ChareInfo& x = a[i];
    const lb::ChareInfo& y = b[i];
    if (x.col != y.col || !(x.idx == y.idx))
      return ::testing::AssertionFailure() << "identity mismatch at rank " << i;
    if (x.pe != y.pe)
      return ::testing::AssertionFailure()
             << "pe mismatch at rank " << i << ": " << x.pe << " vs " << y.pe;
    if (x.work != y.work)
      return ::testing::AssertionFailure()
             << "work mismatch at rank " << i << ": " << x.work << " vs " << y.work;
    if (x.migratable != y.migratable)
      return ::testing::AssertionFailure() << "migratable mismatch at rank " << i;
    if (x.coords != y.coords)
      return ::testing::AssertionFailure() << "coords mismatch at rank " << i;
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult migs_equal(const std::vector<lb::Migration>& a,
                                      const std::vector<lb::Migration>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "migration count " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].col != b[i].col || !(a[i].idx == b[i].idx) || a[i].from != b[i].from ||
        a[i].to != b[i].to)
      return ::testing::AssertionFailure()
             << "migration " << i << " differs: (" << a[i].idx.a << "," << a[i].idx.b
             << ") " << a[i].from << "->" << a[i].to << " vs (" << b[i].idx.a << ","
             << b[i].idx.b << ") " << b[i].from << "->" << b[i].to;
  }
  return ::testing::AssertionSuccess();
}

/// Recomputes every aux field from the chare list alone (same fold orders the
/// database uses) and compares exactly.
void expect_aux_consistent(const lb::Stats& st) {
  const lb::StatsAux& aux = st.aux;
  ASSERT_TRUE(aux.valid);

  std::vector<int> pes;
  for (const auto& c : st.chares) pes.push_back(c.pe);
  std::sort(pes.begin(), pes.end());
  pes.erase(std::unique(pes.begin(), pes.end()), pes.end());
  EXPECT_EQ(aux.pes, pes);
  EXPECT_EQ(aux.max_hosting_pe, pes.empty() ? -1 : pes.back());

  double total = 0.0;
  for (const auto& c : st.chares) total += c.work;
  EXPECT_EQ(aux.total_work, total);

  ASSERT_EQ(aux.bucket_off.size(), pes.size() + 1);
  ASSERT_EQ(aux.done_all.size(), pes.size());
  ASSERT_EQ(aux.done_nonmig.size(), pes.size());
  for (std::size_t k = 0; k < pes.size(); ++k) {
    std::vector<std::uint32_t> want;
    for (std::uint32_t r = 0; r < st.chares.size(); ++r)
      if (st.chares[r].pe == pes[k]) want.push_back(r);
    const std::vector<std::uint32_t> got(aux.bucket_ranks.begin() + aux.bucket_off[k],
                                         aux.bucket_ranks.begin() + aux.bucket_off[k + 1]);
    EXPECT_EQ(got, want) << "bucket for pe " << pes[k];
    const double sp = st.pe_speed[static_cast<std::size_t>(pes[k])];
    double da = 0.0;
    double dn = 0.0;
    for (std::uint32_t r : want) {
      da += st.chares[r].work / sp;
      if (!st.chares[r].migratable) dn += st.chares[r].work / sp;
    }
    EXPECT_EQ(aux.done_all[k], da) << "done_all for pe " << pes[k];
    EXPECT_EQ(aux.done_nonmig[k], dn) << "done_nonmig for pe " << pes[k];
  }

  std::vector<std::uint32_t> desc;
  for (std::uint32_t r = 0; r < st.chares.size(); ++r)
    if (st.chares[r].migratable) desc.push_back(r);
  std::sort(desc.begin(), desc.end(), [&](std::uint32_t x, std::uint32_t y) {
    if (st.chares[x].work != st.chares[y].work)
      return st.chares[x].work > st.chares[y].work;
    return x < y;
  });
  EXPECT_EQ(aux.desc_by_work, desc);
}

/// Every strategy must decide identically from the indexed snapshot and from
/// the same chare list with the aux block cleared (the pre-database rebuild
/// algorithms, kept verbatim).
void expect_same_decisions(const lb::Stats& st) {
  lb::Stats cleared = st;
  cleared.aux = lb::StatsAux{};
  const auto check = [&](const char* name, auto factory, auto... args) {
    const std::vector<lb::Migration> fast = factory(args...)->assign(st);
    const std::vector<lb::Migration> slow = factory(args...)->assign(cleared);
    EXPECT_TRUE(migs_equal(fast, slow)) << "strategy " << name;
  };
  check("greedy", [] { return lb::make_greedy(); });
  check("refine(1.05)", [](double t) { return lb::make_refine(t); }, 1.05);
  check("refine(1.4)", [](double t) { return lb::make_refine(t); }, 1.4);
  check("hybrid", [] { return lb::make_hybrid(); });
}

// ---- SpeedMap exactness ------------------------------------------------------

TEST(SpeedMap, ReadsMatchDenseVector) {
  const std::vector<double> dense{1.0, 0.5, 1.0, 2.0, 0.3};
  lb::SpeedMap sm = dense;
  for (std::size_t pe = 0; pe < dense.size(); ++pe) EXPECT_EQ(sm[pe], dense[pe]);
  EXPECT_EQ(sm[dense.size() + 7], 1.0);  // beyond the dense range: default
  EXPECT_EQ(sm.entries().size(), 3u);    // only the non-unit speeds are stored
}

TEST(SpeedMap, SetAndUnsetStaySparse) {
  lb::SpeedMap sm;
  sm.set(5, 0.5);
  sm.set(2, 2.0);
  EXPECT_EQ(sm[2], 2.0);
  EXPECT_EQ(sm[5], 0.5);
  EXPECT_EQ(sm.entries().size(), 2u);
  sm.set(5, 1.0);  // back to default erases the entry
  EXPECT_EQ(sm[5], 1.0);
  EXPECT_EQ(sm.entries().size(), 1u);
}

TEST(SpeedMap, SumFirstMatchesAccumulateBitwise) {
  const std::array<double, 8> pool{1.0, 1.0, 1.0, 1.0, 0.5, 0.25, 2.0, 0.3};
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    std::vector<double> dense(static_cast<std::size_t>(mix(seed) % 24));
    for (std::size_t i = 0; i < dense.size(); ++i)
      dense[i] = pool[mix(seed ^ (i + 1)) % pool.size()];
    const lb::SpeedMap sm = dense;
    // Also probe past the dense range, where the map extends with 1.0 runs.
    std::vector<double> ext = dense;
    ext.resize(dense.size() + 5, 1.0);
    for (std::size_t n = 0; n <= ext.size(); ++n) {
      const double want = std::accumulate(ext.begin(), ext.begin() + n, 0.0);
      EXPECT_EQ(sm.sum_first(static_cast<int>(n)), want)
          << "seed " << seed << " n " << n;
    }
  }
}

// ---- standalone LoadDb churn fuzz vs a shadow model --------------------------

struct ShadowEntry {
  CollectionId col = 0;
  ObjIndex idx{};
  int pe = 0;
  double raw = 0;
  bool elem_mig = true;
  std::array<double, 3> coords{};
  std::uint32_t slot = lb::LoadDb::kNoSlot;
};

lb::Stats reference_stats(const std::vector<ShadowEntry>& live, int npes,
                          const lb::SpeedMap& sp) {
  lb::Stats s;
  s.npes = npes;
  s.pe_speed = sp;
  for (const ShadowEntry& e : live) {
    lb::ChareInfo c;
    c.col = e.col;
    c.idx = e.idx;
    c.pe = e.pe;
    c.work = e.raw * sp[static_cast<std::size_t>(e.pe)];
    c.migratable = e.elem_mig;
    c.coords = e.coords;
    s.chares.push_back(c);
  }
  std::sort(s.chares.begin(), s.chares.end(),
            [](const lb::ChareInfo& a, const lb::ChareInfo& b) {
              if (a.col != b.col) return a.col < b.col;
              if (a.idx.a != b.idx.a) return a.idx.a < b.idx.a;
              return a.idx.b < b.idx.b;
            });
  return s;
}

void run_churn_fuzz(std::uint64_t seed) {
  constexpr int kMaxPe = 8;
  const std::array<double, 4> freqs{1.0, 0.5, 0.25, 2.0};  // dyadic: exact sums
  lb::LoadDb db;
  std::vector<ShadowEntry> live;
  std::map<int, double> speeds;
  std::uint64_t key = 0;
  std::uint64_t ctr = 0;
  const auto rnd = [&] { return mix(seed ^ ++ctr); };
  // Dyadic loads (k/256) keep every per-PE sum exact, so the shadow model can
  // compare round aggregates with == regardless of accumulation order.
  const auto dyadic_load = [&] { return static_cast<double>(rnd() % 1024) / 256.0; };

  for (int round = 0; round < 36; ++round) {
    // Every few rounds restrict churn to load updates and DVFS events: with no
    // membership change AND the previous snapshot recycled below, these rounds
    // take the patched-copy path instead of the full rebuild/copy path.
    const bool steady = round % 4 == 1;
    const int ops = 1 + static_cast<int>(rnd() % 40);
    for (int op = 0; op < ops; ++op) {
      int sel = static_cast<int>(rnd() % 100);
      if (steady) sel = sel < 70 ? sel % 30 : 85 + sel % 8;
      if (sel < 30 && !live.empty()) {  // AtSync load update
        ShadowEntry& e = live[rnd() % live.size()];
        e.raw = dyadic_load();
        db.update_load(e.slot, e.raw);
      } else if (sel < 55) {  // creation
        ShadowEntry e;
        e.col = static_cast<CollectionId>(rnd() % 2);
        e.idx = ObjIndex{++key, rnd() % 4};
        e.pe = static_cast<int>(rnd() % kMaxPe);
        e.raw = dyadic_load();
        e.elem_mig = rnd() % 8 != 0;
        e.coords = {static_cast<double>(key), static_cast<double>(e.pe), 0.0};
        e.slot = db.add(e.col, e.idx, e.pe, e.raw, e.elem_mig, /*col_migratable=*/true,
                        e.coords, /*elem=*/nullptr);
        live.push_back(e);
      } else if (sel < 70 && !live.empty()) {  // destruction
        const std::size_t i = rnd() % live.size();
        db.remove(live[i].slot);
        live[i] = live.back();
        live.pop_back();
      } else if (sel < 85 && !live.empty()) {  // migration: remove + fresh slot
        ShadowEntry& e = live[rnd() % live.size()];
        db.remove(e.slot);
        e.pe = static_cast<int>(rnd() % kMaxPe);
        e.slot = db.add(e.col, e.idx, e.pe, e.raw, e.elem_mig, true, e.coords, nullptr);
      } else if (sel < 93) {  // DVFS event
        const int pe = static_cast<int>(rnd() % kMaxPe);
        const double f = freqs[rnd() % freqs.size()];
        if (f == 1.0)
          speeds.erase(pe);
        else
          speeds[pe] = f;
      }
    }
    ASSERT_EQ(db.size(), static_cast<std::int64_t>(live.size()));

    lb::SpeedMap sp;
    for (const auto& [pe, f] : speeds) sp.set(pe, f);
    const int npes = 1 + static_cast<int>(rnd() % kMaxPe);  // sometimes < max pe

    // Round statistics before the snapshot (round_complete reads them first).
    const lb::LoadDb::RoundAggregates agg = db.round_aggregates(npes, sp);
    {
      std::vector<double> per_pe(static_cast<std::size_t>(kMaxPe), 0.0);
      for (const ShadowEntry& e : live) per_pe[static_cast<std::size_t>(e.pe)] += e.raw;
      double mx = 0.0;
      double sum = 0.0;
      double work = 0.0;
      for (int pe = 0; pe < kMaxPe; ++pe) {
        work += per_pe[static_cast<std::size_t>(pe)] * sp[static_cast<std::size_t>(pe)];
        if (pe >= npes) continue;
        sum += per_pe[static_cast<std::size_t>(pe)];
        mx = std::max(mx, per_pe[static_cast<std::size_t>(pe)]);
      }
      EXPECT_EQ(agg.max_load, mx) << "round " << round;
      EXPECT_EQ(agg.avg_load, sum / npes) << "round " << round;
      EXPECT_EQ(agg.avg_work, work / npes) << "round " << round;
    }

    lb::Stats st = db.snapshot(npes, sp);
    const lb::Stats ref = reference_stats(live, npes, sp);
    ASSERT_TRUE(chares_equal(st.chares, ref.chares)) << "round " << round;
    EXPECT_TRUE(st.pe_speed == sp);
    EXPECT_EQ(st.npes, npes);
    expect_aux_consistent(st);
    expect_same_decisions(st);

    if (round % 7 == 3) {  // snapshots with no intervening churn are idempotent
      const lb::Stats st_copy = st;
      // Recycling first makes the second snapshot patch the buffer in place
      // (zero changed chares) — it must still equal the full-copy snapshot.
      db.recycle(std::move(st));
      lb::Stats again = db.snapshot(npes, sp);
      ASSERT_TRUE(chares_equal(again.chares, st_copy.chares));
      EXPECT_EQ(again.aux.desc_by_work, st_copy.aux.desc_by_work);
      EXPECT_EQ(again.aux.total_work, st_copy.aux.total_work);
      db.recycle(std::move(again));
    } else {
      // Hand the buffer back the way the LB manager does each round, so the
      // next snapshot exercises the generation-tagged patch path whenever the
      // round happened to have no membership churn.
      db.recycle(std::move(st));
    }
  }
  EXPECT_GT(db.counters().snapshots, 0);
  EXPECT_GT(db.counters().structural_rebuilds, 0);
  EXPECT_GT(db.counters().dirty_flushed, 0);
  EXPECT_GT(db.counters().patched_copies, 0)
      << "steady rounds should have exercised the patched-copy path";
}

TEST(LoadDbFuzz, ChurnMatchesRebuildBitwise) {
  for (std::uint64_t seed : {0x1234ull, 0xbeefull, 0x77aa55ull}) {
    SCOPED_TRACE(seed);
    run_churn_fuzz(seed);
  }
}

TEST(LoadDbFuzz, EmptyAndRefilledDatabase) {
  lb::LoadDb db;
  const lb::SpeedMap sp;
  lb::Stats st = db.snapshot(4, sp);
  EXPECT_TRUE(st.chares.empty());
  EXPECT_EQ(st.aux.max_hosting_pe, -1);
  EXPECT_EQ(st.aux.total_work, 0.0);
  const auto agg0 = db.round_aggregates(4, sp);
  EXPECT_EQ(agg0.max_load, 0.0);
  EXPECT_EQ(agg0.avg_load, 0.0);

  // Fill, drain completely, refill with free-list reuse: slot recycling must
  // not leak stale cache entries into the next snapshot.
  std::vector<std::uint32_t> slots;
  for (std::uint64_t i = 0; i < 16; ++i)
    slots.push_back(db.add(0, ObjIndex{i, 0}, static_cast<int>(i % 4),
                           static_cast<double>(i) / 4.0, true, true, {}, nullptr));
  (void)db.snapshot(4, sp);
  for (std::uint32_t s : slots) db.remove(s);
  st = db.snapshot(4, sp);
  EXPECT_TRUE(st.chares.empty());
  EXPECT_EQ(db.size(), 0);
  for (std::uint64_t i = 100; i < 110; ++i)
    db.add(0, ObjIndex{i, 0}, 1, 0.5, true, true, {}, nullptr);
  st = db.snapshot(4, sp);
  EXPECT_EQ(st.chares.size(), 10u);
  expect_aux_consistent(st);
}

TEST(LoadDb, AddThenRemoveBetweenSnapshotsNeverSurfaces) {
  lb::LoadDb db;
  const lb::SpeedMap sp;
  db.add(0, ObjIndex{1, 0}, 0, 1.0, true, true, {}, nullptr);
  const std::uint32_t ghost = db.add(0, ObjIndex{2, 0}, 1, 2.0, true, true, {}, nullptr);
  db.remove(ghost);  // lived and died between snapshots
  const lb::Stats st = db.snapshot(2, sp);
  ASSERT_EQ(st.chares.size(), 1u);
  EXPECT_EQ(st.chares[0].idx.a, 1u);
  expect_aux_consistent(st);
}

// ---- runtime-level oracles ---------------------------------------------------

struct IterMsg {
  int remaining = 0;
  void pup(pup::Er& p) { p | remaining; }
};

}  // namespace

namespace pup {
/// One int field, no padding: a single memcpy is the exact field walk.
template <>
struct MemCopyable<IterMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(int);
};
}  // namespace pup

namespace {

/// AtSync worker with hash-driven dyadic loads; optionally migrates itself
/// mid-protocol (deferred to handler end, i.e. after its sync was counted).
template <bool SelfMigrate>
class ChurnWorkerT : public charm::ArrayElement<ChurnWorkerT<SelfMigrate>, std::int32_t> {
 public:
  int pending = 0;
  int iters = 0;

  void step(const IterMsg& m) {
    pending = m.remaining;
    const std::uint64_t r = mix(0x51ull ^ (static_cast<std::uint64_t>(this->index()) << 16) ^
                                static_cast<std::uint64_t>(m.remaining));
    charm::charge(static_cast<double>(r % 512 + 1) / 4096.0);
    ++iters;
    if (SelfMigrate && (r >> 16) % 4 == 0)
      this->migrate_to(static_cast<int>((r >> 24) %
                                        static_cast<std::uint64_t>(charm::Runtime::current().npes())));
    this->at_sync();
  }
  void resume_from_sync() override {
    if (pending > 0) {
      charm::ArrayProxy<ChurnWorkerT> self(this->collection_id());
      self[this->index()].template send<&ChurnWorkerT::step>(IterMsg{pending - 1});
    }
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | pending;
    p | iters;
  }
};

using MigWorker = ChurnWorkerT<true>;
using SteadyWorker = ChurnWorkerT<false>;

void expect_snapshot_matches_rebuild(Runtime& rt) {
  lb::Stats snap = rt.lb().snapshot_stats(rt.active_pes());
  const lb::Stats reb = rt.lb().rebuild_stats(rt.active_pes());
  EXPECT_EQ(snap.npes, reb.npes);
  EXPECT_TRUE(snap.pe_speed == reb.pe_speed);
  ASSERT_TRUE(chares_equal(snap.chares, reb.chares));
  expect_aux_consistent(snap);
  expect_same_decisions(snap);
}

TEST(IncrementalOracle, SelfMigrationChurnMatchesRebuild) {
  Harness h(6);
  h.machine.pe(5).set_freq(0.5);
  h.machine.pe(2).set_freq(2.0);
  auto arr = ArrayProxy<MigWorker>::create(h.rt);
  for (int i = 0; i < 24; ++i) arr.seed(i, i % 6);
  h.rt.lb().register_collection(arr.id());
  int checks = 0;
  // The advisor runs at the round barrier — every element synced, nothing
  // migrating — which is exactly where snapshot and rebuild must agree.
  h.rt.lb().set_advisor([&](const std::vector<lb::RoundInfo>&, const lb::RoundInfo&) {
    expect_snapshot_matches_rebuild(h.rt);
    ++checks;
    return false;
  });
  h.rt.on_pe(0, [&] { arr.broadcast<&MigWorker::step>(IterMsg{11}); });
  h.machine.run();
  EXPECT_EQ(h.rt.lb().rounds_completed(), 12);
  EXPECT_EQ(checks, 12);
  const auto& ctr = h.rt.lb().db_counters();
  EXPECT_GE(ctr.adds, 24);
  EXPECT_GT(ctr.removes, 0) << "self-migrations should have churned slots";
}

TEST(IncrementalOracle, StrategyRoundsKeepDatabaseConsistent) {
  Harness h(8);
  h.machine.pe(7).set_freq(0.5);
  auto arr = ArrayProxy<SteadyWorker>::create(h.rt);
  // Skewed start so refine has real work to move.
  for (int i = 0; i < 32; ++i) arr.seed(i, i < 16 ? 0 : i % 8);
  h.rt.lb().register_collection(arr.id());
  h.rt.lb().set_strategy(lb::make_refine(1.05));
  int checks = 0;
  h.rt.lb().set_advisor([&](const std::vector<lb::RoundInfo>&, const lb::RoundInfo& cur) {
    expect_snapshot_matches_rebuild(h.rt);
    ++checks;
    return cur.round % 2 == 0;  // balance every other round
  });
  h.rt.on_pe(0, [&] { arr.broadcast<&SteadyWorker::step>(IterMsg{9}); });
  h.machine.run();
  EXPECT_EQ(h.rt.lb().rounds_completed(), 10);
  EXPECT_EQ(checks, 10);
  EXPECT_GE(h.rt.lb().lb_invocations(), 5);
  int migrations = 0;
  for (const auto& r : h.rt.lb().history()) migrations += r.migrations;
  EXPECT_GT(migrations, 0) << "LB-driven migrations must flow through the db hooks";
}

struct SpawnMsg {
  std::int32_t parent = 0;
  void pup(pup::Er& p) { p | parent; }
};
struct PhaseMsg {
  int phase = 0;
  void pup(pup::Er& p) { p | phase; }
};

}  // namespace

namespace pup {
template <>
struct MemCopyable<SpawnMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(std::int32_t);
};
template <>
struct MemCopyable<PhaseMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(int);
};
}  // namespace pup

namespace {

/// Message-driven churn with no AtSync protocol: migrations, dynamic inserts
/// (spawned elements get indexes >= 100) and destroys, all hash-decided.
class DynWorker : public charm::ArrayElement<DynWorker, std::int32_t> {
 public:
  DynWorker() = default;
  explicit DynWorker(const SpawnMsg&) {}

  void prime(const PhaseMsg&) {  // one clean round to set nonzero round loads
    const std::uint64_t r = mix(0x77ull ^ static_cast<std::uint64_t>(index()));
    charm::charge(static_cast<double>(r % 512 + 1) / 4096.0);
    at_sync();
  }
  void kick(const PhaseMsg& m) {
    const std::uint64_t r = mix(0xabcdull ^ (static_cast<std::uint64_t>(index()) << 10) ^
                                static_cast<std::uint64_t>(m.phase));
    const auto npes = static_cast<std::uint64_t>(charm::Runtime::current().npes());
    const int sel = static_cast<int>(r % 100);
    if (sel < 20 && index() >= 100) {
      charm::Runtime::current().destroy_self();
      return;
    }
    if (sel < 50) migrate_to(static_cast<int>((r >> 8) % npes));
    if (sel >= 50 && sel < 75 && index() < 16) {
      charm::ArrayProxy<DynWorker> self(collection_id());
      self.insert(100 + index() * 8 + m.phase, SpawnMsg{index()},
                  static_cast<int>((r >> 16) % npes));
    }
  }
  void pup(pup::Er& p) override { ArrayElementBase::pup(p); }
};

TEST(IncrementalOracle, InsertDestroyChurnMatchesRebuild) {
  Harness h(4);
  h.machine.pe(1).set_freq(0.5);
  auto arr = ArrayProxy<DynWorker>::create(h.rt);
  for (int i = 0; i < 16; ++i) arr.seed(i, i % 4);
  h.rt.lb().register_collection(arr.id());
  h.rt.on_pe(0, [&] { arr.broadcast<&DynWorker::prime>(PhaseMsg{}); });
  h.machine.run();
  EXPECT_EQ(h.rt.lb().rounds_completed(), 1);
  expect_snapshot_matches_rebuild(h.rt);
  for (int phase = 0; phase < 6; ++phase) {
    SCOPED_TRACE(phase);
    h.rt.on_pe(0, [&, phase] { arr.broadcast<&DynWorker::kick>(PhaseMsg{phase}); });
    h.machine.run();
    expect_snapshot_matches_rebuild(h.rt);
  }
  EXPECT_GT(h.rt.collection(arr.id()).total_elements, 0);
  const auto& ctr = h.rt.lb().db_counters();
  EXPECT_GT(ctr.adds, 16) << "dynamic inserts should have registered";
  EXPECT_GT(ctr.removes, 0) << "destroys/migrations should have unregistered";
}

TEST(IncrementalOracle, FailAndRecoverRestoresDatabase) {
  Harness h(6);
  auto arr = ArrayProxy<SteadyWorker>::create(h.rt);
  for (int i = 0; i < 18; ++i) arr.seed(i, i % 6);
  h.rt.lb().register_collection(arr.id());
  h.rt.lb().set_strategy(lb::make_greedy());
  h.rt.lb().set_period(2);
  // Drive six rounds (greedy runs at rounds 2/4/6) so the database has seen
  // load updates and LB migrations before the checkpoint.
  h.rt.on_pe(0, [&] { arr.broadcast<&SteadyWorker::step>(IterMsg{5}); });
  h.machine.run();
  EXPECT_EQ(h.rt.lb().rounds_completed(), 6);
  // Checkpoint at the idle step boundary, then lose PE 3 and recover.
  ft::MemCheckpointer ckpt(h.rt);
  bool recovered = false;
  h.rt.on_pe(0, [&] {
    ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
      ckpt.fail_and_recover(3, Callback::to_function([&](ReductionResult&&) {
        recovered = true;
      }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(recovered);
  // The restore sweep extracted every element (remove hooks) and re-seeded
  // the survivors (add hooks); the database must match a fresh rebuild.
  expect_snapshot_matches_rebuild(h.rt);
  // And the AtSync protocol keeps working on the restored database.
  h.rt.on_pe(0, [&] { arr.broadcast<&SteadyWorker::step>(IterMsg{3}); });
  h.machine.run();
  EXPECT_GE(h.rt.lb().rounds_completed(), 10);
  expect_snapshot_matches_rebuild(h.rt);
}

TEST(IncrementalOracle, ShrinkExpandReconfigKeepsDatabaseConsistent) {
  Harness h(8);
  auto arr = ArrayProxy<SteadyWorker>::create(h.rt);
  for (int i = 0; i < 32; ++i) arr.seed(i, i % 8);
  h.rt.lb().register_collection(arr.id());
  h.rt.lb().set_strategy(lb::make_greedy());
  bool shrunk = false;
  bool expanded = false;
  h.rt.on_pe(0, [&] {
    arr.broadcast<&SteadyWorker::step>(IterMsg{3});
    h.rt.lb().request_reconfig(3, 1e-4, Callback::to_function([&](ReductionResult&&) {
      shrunk = true;
      EXPECT_EQ(h.rt.active_pes(), 3);
      expect_snapshot_matches_rebuild(h.rt);
      for (const auto& c : h.rt.lb().snapshot_stats(3).chares) EXPECT_LT(c.pe, 3);
      h.rt.lb().request_reconfig(8, 1e-4, Callback::to_function([&](ReductionResult&&) {
        expanded = true;
      }));
    }));
  });
  h.machine.run();
  EXPECT_TRUE(shrunk);
  EXPECT_TRUE(expanded);
  EXPECT_EQ(h.rt.active_pes(), 8);
  expect_snapshot_matches_rebuild(h.rt);
}

TEST(IncrementalOracle, ShrinkTargetSnapshotUsesRebuildPath) {
  // A snapshot targeting fewer PEs than chares currently occupy must keep the
  // old clamp semantics: the aux guard (max_hosting_pe >= npes) sends both
  // paths through the verbatim rebuild algorithms.
  Harness h(4);
  auto arr = ArrayProxy<SteadyWorker>::create(h.rt);
  for (int i = 0; i < 12; ++i) arr.seed(i, i % 4);
  h.rt.lb().register_collection(arr.id());
  h.rt.on_pe(0, [&] { arr.broadcast<&SteadyWorker::step>(IterMsg{0}); });
  h.machine.run();
  lb::Stats st = h.rt.lb().snapshot_stats(2);  // chares still live on PEs 0..3
  ASSERT_TRUE(st.aux.valid);
  EXPECT_EQ(st.aux.max_hosting_pe, 3);
  const lb::Stats reb = h.rt.lb().rebuild_stats(2);
  ASSERT_TRUE(chares_equal(st.chares, reb.chares));
  expect_same_decisions(st);
}

}  // namespace
