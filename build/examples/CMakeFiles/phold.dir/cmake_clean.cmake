file(REMOVE_RECURSE
  "CMakeFiles/phold.dir/phold.cpp.o"
  "CMakeFiles/phold.dir/phold.cpp.o.d"
  "phold"
  "phold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
