# Empty compiler generated dependencies file for fig04_power.
# This may be replaced when dependencies are built.
