#pragma once
// PDES mini-app (§IV-E): parallel discrete event simulation under the YAWNS
// windowed conservative protocol, benchmarked with PHOLD.
//
// Phases alternate exactly as the paper describes: a window calculation (a
// global min-reduction over each LP's earliest pending timestamp) and an
// execution phase (every event with ts < GVT + lookahead runs; each spawns a
// successor at ts + lookahead + Exp(mean) on a random LP).  Generated events
// travel either as direct point sends or through TRAM (Fig 15b); quiescence
// detection separates the phases.

#include <cstdint>
#include <optional>
#include <vector>

#include "runtime/charm.hpp"
#include "tram/tram.hpp"

namespace charm::pdes {

struct Params {
  int nlps = 256;
  int initial_events_per_lp = 32;
  double lookahead = 1.0;
  double mean_delay = 1.0;       ///< exponential extra delay
  double event_cost = 1.5e-6;    ///< charged seconds per executed event
  bool use_tram = false;
  std::size_t tram_buffer = 64;
  std::uint64_t seed = 99;
};

struct EventMsg {
  double ts = 0;
  template <class P>
  void pup(P& p) {
    p | ts;
  }
};

struct WindowMsg {
  double gvt = 0;
  template <class P>
  void pup(P& p) {
    p | gvt;
  }
};

class Lp : public charm::ArrayElement<Lp, std::int32_t> {
 public:
  Lp() = default;
  Lp(const Params& p, ArrayProxy<Lp, std::int32_t> lps);

  void seed_events(const WindowMsg&);
  void recv_event(const EventMsg& m);
  void report_min(const WindowMsg&);
  void execute_window(const WindowMsg& m);
  void pup(pup::Er& p) override;

  std::uint64_t executed() const { return executed_; }

  static Callback window_cb;  ///< min-reduction target (Engine phase driver)
  static std::optional<tram::Stream<&Lp::recv_event>> tram_stream;

 private:
  void emit(double ts);
  double next_ts() const;

  Params p_{};
  ArrayProxy<Lp, std::int32_t> lps_;
  std::vector<double> heap_;  ///< min-heap of pending event timestamps
  sim::Rng rng_;
  std::uint64_t executed_ = 0;
};

/// Drives YAWNS windows until virtual-event-time `end_time`.
class Engine {
 public:
  Engine(Runtime& rt, Params p);
  ~Engine();

  void run_until(double end_time, Callback done);

  std::uint64_t total_executed() const;
  int windows() const { return windows_; }
  ArrayProxy<Lp, std::int32_t> lps() const { return lps_; }

 private:
  void window_complete(double gvt_min);

  Runtime& rt_;
  Params p_;
  ArrayProxy<Lp, std::int32_t> lps_;
  double end_time_ = 0;
  Callback done_;
  int windows_ = 0;
};

}  // namespace charm::pdes

namespace pup {
template <>
struct AsBytes<charm::pdes::Params> : std::true_type {};
template <>
struct MemCopyable<charm::pdes::EventMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(double);
};
template <>
struct MemCopyable<charm::pdes::WindowMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(double);
};
}  // namespace pup
