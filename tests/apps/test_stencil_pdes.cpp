// Stencil2D and PDES mini-app tests.

#include <gtest/gtest.h>

#include "miniapps/pdes/pdes.hpp"
#include "miniapps/stencil/stencil.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;

using charmtest::Harness;

// ---- Stencil2D ---------------------------------------------------------------

TEST(Stencil, JacobiConverges) {
  Harness h(4);
  stencil::Params p;
  p.grid = 64;
  p.tiles_x = p.tiles_y = 4;
  stencil::Sim sim(h.rt, p);
  double first = -1, last = -1;
  bool done = false;
  h.rt.on_pe(0, [&] {
    sim.run(5, Callback::to_function([&](ReductionResult&& r) {
      first = r.num(0);
      sim.run(40, Callback::to_function([&](ReductionResult&& r2) {
        last = r2.num(0);
        done = true;
      }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  EXPECT_GT(first, 0);
  EXPECT_LT(last, first) << "Jacobi update magnitude must shrink";
}

TEST(Stencil, DeterministicAcrossPeCounts) {
  auto run = [](int npes) {
    Harness h(npes);
    stencil::Params p;
    p.grid = 32;
    p.tiles_x = p.tiles_y = 4;
    stencil::Sim sim(h.rt, p);
    bool done = false;
    h.rt.on_pe(0, [&] {
      sim.run(10, Callback::to_function([&](ReductionResult&&) { done = true; }));
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return sim.global_delta();
  };
  EXPECT_DOUBLE_EQ(run(1), run(5));
}

TEST(Stencil, InterferenceSlowsIterationsAndLbRecovers) {
  // The Fig 16 mechanism in miniature.
  auto run = [](bool with_lb) {
    Harness h(8);
    stencil::Params p;
    p.grid = 128;
    p.tiles_x = p.tiles_y = 8;
    p.cell_cost = 40e-9;
    stencil::Sim sim(h.rt, p);
    if (with_lb) {
      h.rt.lb().set_strategy(lb::make_greedy());
      h.rt.lb().set_period(10);
    }
    bool done = false;
    h.rt.on_pe(0, [&] {
      // Interfering VM lands on PE 3 immediately: 0.4x effective speed.
      h.machine.pe(3).set_freq(0.4);
      sim.run(60, Callback::to_function([&](ReductionResult&&) { done = true; }));
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return h.machine.max_pe_clock();
  };
  const double t_lb = run(true);
  const double t_nolb = run(false);
  EXPECT_LT(t_lb, t_nolb * 0.9)
      << "speed-aware LB must migrate work off the interfered PE";
}

// ---- PDES / PHOLD ---------------------------------------------------------------

TEST(Pdes, ExecutesEventsInWindows) {
  Harness h(4);
  pdes::Params p;
  p.nlps = 64;
  p.initial_events_per_lp = 8;
  pdes::Engine eng(h.rt, p);
  bool done = false;
  h.rt.on_pe(0, [&] {
    eng.run_until(10.0, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  EXPECT_GT(eng.windows(), 3);
  EXPECT_GT(eng.total_executed(), 500u);
}

TEST(Pdes, PholdPopulationIsStable) {
  // PHOLD conserves the event population: every execution spawns exactly one
  // successor, so executed events ~= windows * population in steady state.
  Harness h(2);
  pdes::Params p;
  p.nlps = 32;
  p.initial_events_per_lp = 4;
  pdes::Engine eng(h.rt, p);
  bool done = false;
  h.rt.on_pe(0, [&] {
    eng.run_until(20.0, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  // All seeded events execute eventually; populations never die out.
  EXPECT_GT(eng.total_executed(), static_cast<std::uint64_t>(32 * 4 * 5));
}

TEST(Pdes, TramAndDirectExecuteSameEventCount) {
  auto run = [](bool tram) {
    Harness h(8);
    pdes::Params p;
    p.nlps = 64;
    p.initial_events_per_lp = 16;
    p.use_tram = tram;
    p.tram_buffer = 16;
    pdes::Engine eng(h.rt, p);
    bool done = false;
    h.rt.on_pe(0, [&] {
      eng.run_until(8.0, Callback::to_function([&](ReductionResult&&) { done = true; }));
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return eng.total_executed();
  };
  const auto direct = run(false);
  const auto tram = run(true);
  EXPECT_EQ(direct, tram) << "transport must not change simulation semantics";
}

TEST(Pdes, TramWinsAtHighEventVolume) {
  auto rate = [](bool tram, int events_per_lp) {
    Harness h(8);
    pdes::Params p;
    p.nlps = 128;
    p.initial_events_per_lp = events_per_lp;
    p.use_tram = tram;
    p.tram_buffer = 64;
    pdes::Engine eng(h.rt, p);
    h.rt.on_pe(0, [&] { eng.run_until(6.0, Callback::ignore()); });
    h.machine.run();
    return static_cast<double>(eng.total_executed()) / h.machine.max_pe_clock();
  };
  // High volume: aggregation pays (Fig 15b's right side).
  EXPECT_GT(rate(true, 64), rate(false, 64));
}

TEST(Pdes, OverdecompositionRaisesEventRate) {
  auto rate = [](int nlps) {
    Harness h(4);
    pdes::Params p;
    p.nlps = nlps;
    p.initial_events_per_lp = 16;
    pdes::Engine eng(h.rt, p);
    h.rt.on_pe(0, [&] { eng.run_until(6.0, Callback::ignore()); });
    h.machine.run();
    return static_cast<double>(eng.total_executed()) / h.machine.max_pe_clock();
  };
  // More LPs per PE => more useful work per window barrier (Fig 15a).
  EXPECT_GT(rate(256), rate(16));
}

}  // namespace
