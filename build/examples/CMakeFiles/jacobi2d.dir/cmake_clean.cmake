file(REMOVE_RECURSE
  "CMakeFiles/jacobi2d.dir/jacobi2d.cpp.o"
  "CMakeFiles/jacobi2d.dir/jacobi2d.cpp.o.d"
  "jacobi2d"
  "jacobi2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
