# Empty dependencies file for fig10_leanmd_ckpt.
# This may be replaced when dependencies are built.
