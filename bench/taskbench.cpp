// Task Bench overhead surface: a parameterized dependency-graph sweep over
// (pattern x grain x machine size x transport), Task Bench-style (PAPERS.md,
// arXiv 2207.12127).  Each cell runs the graph through the normal runtime
// paths and reports achieved vs ideal makespan; the derived per-task overhead
// is the CI-gated regression surface (DESIGN.md §8).
//
// Usage: taskbench [--smoke] [--pattern=NAME] [--grain=SEC] [--npes=N]
//                  [--transport=point|tram] [--stats=FILE] [--trace=FILE]
// The filter flags restrict the sweep to matching cells (0 / "" = no filter);
// --smoke shrinks graph sizes, not the sweep shape, so the gated surface
// keeps >= 4 patterns x >= 3 grains x >= 2 machine sizes in CI.

#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "taskbench/taskbench.hpp"

namespace {

using charm::taskbench::CellResult;
using charm::taskbench::Params;
using charm::taskbench::Pattern;

struct Filter {
  std::string pattern;    ///< "" = all
  std::string transport;  ///< "" = both
  double grain = 0;       ///< 0 = all
  int npes = 0;           ///< 0 = all
};

Filter& filter() {
  static Filter f;
  return f;
}

const bench::detail::FlagSpec kTaskbenchFlags[] = {
    {"--pattern", "NAME", "expects stencil_1d|fft|tree|sweep|random",
     [](const char* v) {
       Pattern p;
       if (!charm::taskbench::parse_pattern(v, &p)) return false;
       filter().pattern = v;
       return true;
     }},
    {"--transport", "KIND", "expects point|tram",
     [](const char* v) {
       if (std::strcmp(v, "point") != 0 && std::strcmp(v, "tram") != 0) return false;
       filter().transport = v;
       return true;
     }},
    {"--grain", "SEC", "needs a positive virtual-seconds grain",
     [](const char* v) {
       filter().grain = std::strtod(v, nullptr);
       return filter().grain > 0;
     }},
    {"--npes", "N", "needs a positive PE count",
     [](const char* v) {
       filter().npes = std::atoi(v);
       return filter().npes > 0;
     }},
};

bool close_enough(double a, double b) {
  return a == b || (a > 0 && b > 0 && a / b > 0.999 && b / a > 0.999);
}

// Trace the small-P columns only ("sweep wide, trace narrow", same pattern
// as bench/scale.cpp): the per-PE usage sections of the stats JSON keep a
// dense few-PE shape, while the 64K-PE column still contributes its
// deterministic taskbench[] rows — a traced 64K-PE cell would emit ~65K
// per-PE rows (tens of MB of JSON) for a graph that occupies a few dozen.
constexpr int kMaxTracedPes = 64;

CellResult run_cell(const Params& p, int npes) {
  sim::Machine m(bench::machine_config(npes));
  if (npes <= kMaxTracedPes) bench::attach_trace(m);
  charm::Runtime rt(m);
  return charm::taskbench::run_cell(rt, p);
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv, kTaskbenchFlags,
                        sizeof(kTaskbenchFlags) / sizeof(kTaskbenchFlags[0])) != 0)
    return 1;

  const bool smoke = bench::smoke();
  // Smoke shrinks the per-cell graph, never the sweep shape: CI gates the
  // same (pattern x grain x P x transport) surface the full run covers.
  // The 64K-PE column exercises first-touch paging (DESIGN.md §12): the
  // graph occupies O(width) PEs, so the other ~65K virtual PEs must cost
  // nothing — before lazy state this column alone would dominate the sweep's
  // memory and setup time.
  const int width = smoke ? 48 : 128;
  const int steps = smoke ? 12 : 24;
  const std::vector<double> grains =
      smoke ? std::vector<double>{1e-6, 1e-5, 1e-4}
            : std::vector<double>{1e-7, 1e-6, 1e-5, 1e-4};
  const std::vector<int> pes = smoke ? std::vector<int>{4, 8, 65536}
                                     : std::vector<int>{4, 8, 16, 65536};
  const Pattern patterns[] = {Pattern::kStencil1D, Pattern::kFft, Pattern::kTree,
                              Pattern::kSweep, Pattern::kRandom};
  const char* transports[] = {"point", "tram"};

  for (Pattern pat : patterns) {
    if (!filter().pattern.empty() &&
        filter().pattern != charm::taskbench::to_string(pat))
      continue;
    bench::header("taskbench",
                  std::string("dependency-graph overhead surface, pattern ") +
                      charm::taskbench::to_string(pat));
    bench::columns({"tram", "PEs", "grain_us", "makespan_ms", "efficiency",
                    "ovhd_ns/task"});
    for (const char* transport : transports) {
      if (!filter().transport.empty() && filter().transport != transport) continue;
      for (int npes : pes) {
        if (filter().npes != 0 && filter().npes != npes) continue;
        for (double grain : grains) {
          if (filter().grain != 0 && !close_enough(filter().grain, grain)) continue;
          Params p;
          p.pattern = pat;
          p.width = width;
          p.steps = steps;
          p.grain = grain;
          p.payload_doubles = 8;
          p.fanout = 4;
          p.seed = 1;
          p.use_tram = std::strcmp(transport, "tram") == 0;
          p.tram_buffer = 8;
          const CellResult r = run_cell(p, npes);
          if (!r.complete()) {
            std::fprintf(stderr,
                         "taskbench: cell %s/%s P=%d grain=%g incomplete: "
                         "executed %g/%llu inputs %g/%llu\n",
                         charm::taskbench::to_string(pat), transport, npes, grain,
                         r.executed, static_cast<unsigned long long>(r.tasks),
                         r.inputs, static_cast<unsigned long long>(r.edges));
            return 1;
          }
          bench::row({p.use_tram ? 1.0 : 0.0, static_cast<double>(npes), grain * 1e6,
                      r.makespan * 1e3, r.efficiency, r.overhead_per_task * 1e9});
          stats::TaskbenchCell cell;
          cell.pattern = charm::taskbench::to_string(pat);
          cell.transport = transport;
          cell.npes = npes;
          cell.width = p.width;
          cell.steps = p.steps;
          cell.grain = p.grain;
          cell.payload_doubles = p.payload_doubles;
          cell.fanout = p.fanout;
          cell.seed = p.seed;
          cell.tasks = r.tasks;
          cell.edges = r.edges;
          cell.msgs = r.msgs;
          cell.bytes = r.bytes;
          cell.makespan = r.makespan;
          cell.ideal = r.ideal;
          cell.efficiency = r.efficiency;
          cell.overhead_per_task = r.overhead_per_task;
          cell.tram_aggregation = r.tram_aggregation;
          bench::taskbench_cells().push_back(std::move(cell));
        }
      }
    }
  }
  if (bench::taskbench_cells().empty()) {
    std::fprintf(stderr, "taskbench: the filters matched no sweep cells\n");
    return 1;
  }
  bench::note("overhead_per_task = (makespan - ideal) * P / tasks; ideal = grain * steps * ceil(width/P)");
  bench::note("paper-adjacent shape (Task Bench): efficiency -> 1 as grain grows; overhead exposes the runtime's per-message cost");
  return bench::finish();
}
