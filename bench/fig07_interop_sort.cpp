// Fig 7: CHARM interop — per-step global sorting implemented as an "MPI"
// bulk-synchronous multiway-merge sort vs. the Charm++ HistSort library,
// against the useful computation per step.
//
// The paper: at 4096 cores, the MPI sort consumed 23% of step time; after
// offloading to the Charm++ sorting library via interoperation, 2%.  We sweep
// PE counts and print the per-step time of the useful computation and of each
// sort; the expected *shape* is the merge-sort share growing with P while the
// HistSort share stays flat.

#include "bench_common.hpp"
#include "sort/sorting.hpp"

namespace {

double time_sort(int npes, bool hist, std::size_t keys_per_pe) {
  using namespace charm;
  sim::Machine m(bench::machine_config(npes, sim::NetworkParams::cray_gemini()));
  bench::attach_trace(m);
  Runtime rt(m);
  sortlib::SortParams sp;
  sp.samples_per_pe = 0;  // baseline ships all keys to the root
  sortlib::Library lib(rt, sp);
  lib.fill_random(1234, keys_per_pe);
  double t0 = 0, t1 = -1;
  rt.on_pe(0, [&] {
    t0 = charm::now();
    auto cb = Callback::to_function([&](ReductionResult&&) { t1 = charm::now(); });
    if (hist) {
      lib.hist_sort(cb);
    } else {
      lib.merge_sort(cb);
    }
  });
  m.run();
  if (!lib.validate()) std::printf("   WARNING: sort output not globally sorted!\n");
  return t1 - t0;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 7",
                "CHARM: useful computation vs MPI multiway-merge sort vs Charm++ HistSort");
  bench::columns({"PEs", "useful_ms", "merge_ms", "hist_ms", "merge_share%", "hist_share%"});

  const std::size_t keys_per_pe = 2048;
  // "Useful computation" per step, weak-scaled like CHARM's hydro phase.
  const double useful_s = 30e-3;

  for (int p : bench::pe_series({8, 32, 128, 512})) {
    const double merge = time_sort(p, /*hist=*/false, keys_per_pe);
    const double hist = time_sort(p, /*hist=*/true, keys_per_pe);
    bench::row({static_cast<double>(p), useful_s * 1e3, merge * 1e3, hist * 1e3,
                100.0 * merge / (useful_s + merge), 100.0 * hist / (useful_s + hist)});
  }
  bench::note("paper shape: MPI sort share grows with PEs (23% @4096), HistSort stays ~flat (2%)");
  return bench::finish();
}
