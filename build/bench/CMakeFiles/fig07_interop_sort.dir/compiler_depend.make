# Empty compiler generated dependencies file for fig07_interop_sort.
# This may be replaced when dependencies are built.
