#pragma once
// MetaLB: automated load-balancing invocation (§III-A / Menon et al., IEEE
// Cluster'12; used as "MetaTemp" in Fig 4).  Instead of a fixed period, the
// advisor triggers the balancer when the modeled benefit of rebalancing over
// a lookahead horizon exceeds the measured cost of the last LB round.

#include "lb/manager.hpp"

namespace trace {
class Tracer;
}

namespace charm::lb {

struct MetaParams {
  double imbalance_tol = 1.08;   ///< ignore imbalance below max/avg = tol
  double horizon_rounds = 20;    ///< rounds over which the benefit accrues
  double default_lb_cost = 5e-3; ///< cost estimate before any LB has run (s)
  int min_gap = 2;               ///< min rounds between LB invocations
  double min_busy_fraction = 0.25;  ///< trace-aware veto threshold (see below)
};

Advisor make_meta_advisor(MetaParams params = {});

/// Trace-aware MetaLB: the same benefit/cost policy, additionally consulting
/// the machine's trace summary.  When runtime overhead (scheduling alphas,
/// broadcast forwarding, reduction combines) dominates — entry-method work
/// below `min_busy_fraction` of executed time — the advisor vetoes the
/// round: migrating application work cannot recover time the runtime itself
/// is spending.  `npes` is the traced machine's PE count.
Advisor make_meta_advisor(MetaParams params, const trace::Tracer* tracer, int npes);

}  // namespace charm::lb
