#include "lb/load_db.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "runtime/chare.hpp"

namespace charm::lb {

namespace {

// Canonical chare order — must match the sort the old collect_stats applied.
bool key_less(CollectionId ac, const ObjIndex& ai, CollectionId bc, const ObjIndex& bi) {
  if (ac != bc) return ac < bc;
  if (ai.a != bi.a) return ai.a < bi.a;
  return ai.b < bi.b;
}

}  // namespace

std::uint32_t LoadDb::add(CollectionId col, ObjIndex idx, int pe, double round_load,
                          bool elem_migratable, bool col_migratable,
                          const std::array<double, 3>& coords, const ArrayElementBase* elem) {
  std::uint32_t id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    hot_.emplace_back();
  }
  Slot& s = slots_[id];
  Hot& h = hot_[id];
  s.col = col;
  s.idx = idx;
  s.pe = pe;
  h.raw = round_load;
  s.rank = kNoRank;
  h.elem = elem;
  s.coords = coords;
  s.elem_migratable = elem_migratable;
  s.col_migratable = col_migratable;
  s.present = true;
  Bucket& b = pe_[pe];
  b.raw_sum += round_load;
  s.bucket = &b;
  if (!s.pending) {
    s.pending = true;
    pending_add_.push_back(id);
  }
  mark_dirty(id);
  membership_dirty_ = true;
  ++live_;
  ++counters_.adds;
  return id;
}

void LoadDb::remove(std::uint32_t slot) {
  Slot& s = slots_[slot];
  assert(s.present);
  s.bucket->raw_sum -= hot_[slot].raw;
  if (s.rank != kNoRank) rank_slot_[s.rank] = kNoSlot;  // tombstone until rebuild
  s.present = false;
  hot_[slot].elem = nullptr;
  free_.push_back(slot);
  membership_dirty_ = true;
  --live_;
  ++counters_.removes;
}

void LoadDb::update_load_dirty(std::uint32_t slot, double round_load) {
  Slot& s = slots_[slot];
  Hot& h = hot_[slot];
  if (round_load == h.raw) {
    // The measurement is bit-identical to the stored one.  If the element's
    // other strategy-visible state (coords, migratability) also matches, the
    // flush pass would be a no-op — skip the dirty mark so a steady chare
    // costs nothing at the next snapshot.  The element is parked at its sync
    // barrier between this call and the snapshot, so the compared state
    // cannot change in between.  (Synthetic elem == nullptr slots already
    // returned from the inline fast path.)
    if (h.elem != nullptr && h.elem->lb_coords() == s.coords &&
        h.elem->migratable() == s.elem_migratable)
      return;
  }
  s.bucket->raw_sum += round_load - h.raw;
  h.raw = round_load;
  mark_dirty(slot);
}

void LoadDb::mark_dirty(std::uint32_t id) {
  Slot& s = slots_[id];
  if (s.dirty) return;
  s.dirty = true;
  dirty_.push_back(id);
}

void LoadDb::mark_repair(std::uint32_t rank) {
  if (repair_mark_[rank] == repair_epoch_) return;
  repair_mark_[rank] = repair_epoch_;
  repair_ranks_.push_back(rank);
  // Capture the entry's current (= old) index key.  Every cached-work change
  // goes through a mark, so an in-index entry's packed key always equals
  // works_[rank] at mark time; the steady repair path uses these keys to
  // drop re-ranked entries with a sequential sweep instead of a per-survivor
  // random lookup.  (Callers must mark BEFORE overwriting the cached work.)
  repair_old_.push_back({works_[rank], rank});
}

LoadDb::RoundAggregates LoadDb::round_aggregates(int active_pes,
                                                 const SpeedMap& speed) const {
  RoundAggregates a;
  if (active_pes <= 0) return a;
  double mx = 0.0;
  bool any = false;
  int hosting_below = 0;
  double sum = 0.0;
  double total_work = 0.0;
  for (const auto& [pe, b] : pe_) {
    total_work += b.raw_sum * speed[static_cast<std::size_t>(pe)];
    if (pe >= active_pes) continue;  // beyond-active hosts count toward work only
    ++hosting_below;
    sum += b.raw_sum;  // adding the skipped PEs' exact 0.0 would be a no-op
    if (!any || b.raw_sum > mx) {
      mx = b.raw_sum;
      any = true;
    }
  }
  if (hosting_below < active_pes && (!any || mx < 0.0)) mx = 0.0;  // idle PEs read 0.0
  a.max_load = any || hosting_below < active_pes ? mx : 0.0;
  a.avg_load = sum / active_pes;
  a.avg_work = total_work / active_pes;
  return a;
}

void LoadDb::structural_rebuild() {
  ++counters_.structural_rebuilds;
  membership_dirty_ = false;

  // Collect surviving pending adds (a slot added and removed between
  // snapshots never reaches the cache; duplicate queue entries from free-list
  // reuse dedupe through the per-slot flag).
  std::vector<std::uint32_t>& adds = rebuild_adds_;
  adds.clear();
  adds.reserve(pending_add_.size());
  for (std::uint32_t id : pending_add_) {
    Slot& s = slots_[id];
    if (s.present && s.pending) adds.push_back(id);
    s.pending = false;
  }
  pending_add_.clear();
  std::sort(adds.begin(), adds.end(), [&](std::uint32_t x, std::uint32_t y) {
    return key_less(slots_[x].col, slots_[x].idx, slots_[y].col, slots_[y].idx);
  });

  // Compact tombstones out of the old cache and merge the sorted adds in —
  // one pass, no full re-sort.  (col, idx) keys are unique among live slots:
  // a migration removes the departing slot before the arrival is added.
  // Output goes to retained ping-pong buffers (swapped in at the end) so a
  // churn-heavy workload does not reallocate the cache every round.
  const std::size_t old_n = cache_.size();
  remap_.assign(old_n, kNoRank);
  std::vector<ChareInfo>& new_cache = cache_alt_;
  std::vector<double>& new_works = works_alt_;
  std::vector<unsigned char>& new_mig = mig_alt_;
  std::vector<std::uint32_t>& new_rank_slot = rank_slot_alt_;
  std::vector<std::uint32_t>& new_ranks = rebuild_fresh_;
  new_cache.clear();
  new_works.clear();
  new_mig.clear();
  new_rank_slot.clear();
  new_ranks.clear();
  new_cache.reserve(static_cast<std::size_t>(live_));
  new_works.reserve(static_cast<std::size_t>(live_));
  new_mig.reserve(static_cast<std::size_t>(live_));
  new_rank_slot.reserve(static_cast<std::size_t>(live_));
  new_ranks.reserve(adds.size());
  std::size_t i = 0;
  std::size_t j = 0;
  auto skip_dead = [&]() {
    while (i < old_n && rank_slot_[i] == kNoSlot) ++i;
  };
  skip_dead();
  while (i < old_n || j < adds.size()) {
    bool take_old;
    if (i == old_n) {
      take_old = false;
    } else if (j == adds.size()) {
      take_old = true;
    } else {
      const ChareInfo& oc = cache_[i];
      const Slot& ns = slots_[adds[j]];
      take_old = key_less(oc.col, oc.idx, ns.col, ns.idx);
    }
    const auto rank = static_cast<std::uint32_t>(new_cache.size());
    if (take_old) {
      remap_[i] = rank;
      slots_[rank_slot_[i]].rank = rank;
      new_cache.push_back(cache_[i]);
      new_works.push_back(works_[i]);
      new_mig.push_back(mig_[i]);
      new_rank_slot.push_back(rank_slot_[i]);
      ++i;
      skip_dead();
    } else {
      Slot& s = slots_[adds[j]];
      s.rank = rank;
      ChareInfo ci;
      ci.col = s.col;
      ci.idx = s.idx;
      ci.pe = s.pe;
      ci.work = 0.0;  // the slot is dirty; the flush pass sets the real work
      ci.migratable = s.elem_migratable && s.col_migratable;
      ci.coords = s.coords;
      new_cache.push_back(ci);
      new_works.push_back(ci.work);
      new_mig.push_back(ci.migratable ? 1 : 0);
      new_rank_slot.push_back(adds[j]);
      new_ranks.push_back(rank);
      ++j;
    }
  }
  cache_.swap(new_cache);
  works_.swap(new_works);
  mig_.swap(new_mig);
  rank_slot_.swap(new_rank_slot);

  // Rebuild the per-PE buckets in one ascending walk; recomputing raw_sum
  // here also resets any accumulated incremental rounding drift.
  for (auto& [pe, b] : pe_) {
    (void)pe;
    b.ranks.clear();
    b.raw_sum = 0.0;
    b.work_stale = true;
  }
  for (std::uint32_t rank = 0; rank < cache_.size(); ++rank) {
    Slot& s = slots_[rank_slot_[rank]];
    s.bucket->ranks.push_back(rank);
    s.bucket->raw_sum += hot_[rank_slot_[rank]].raw;
  }
  for (auto it = pe_.begin(); it != pe_.end();) {
    it = it->second.ranks.empty() ? pe_.erase(it) : std::next(it);
  }

  if (repair_mark_.size() < cache_.size()) repair_mark_.resize(cache_.size(), 0);
  for (std::uint32_t r : new_ranks) mark_repair(r);
}

void LoadDb::flush_dirty(const SpeedMap& speed) {
  for (std::uint32_t id : dirty_) {
    Slot& s = slots_[id];
    s.dirty = false;
    if (!s.present) continue;
    ++counters_.dirty_flushed;
    const Hot& h = hot_[id];
    if (h.elem) {
      // Re-read mutable element state exactly where the old rebuild read it.
      s.coords = h.elem->lb_coords();
      s.elem_migratable = h.elem->migratable();
    }
    ChareInfo& ci = cache_[s.rank];
    const double w = h.raw * speed[static_cast<std::size_t>(s.pe)];
    const bool mig = s.elem_migratable && s.col_migratable;
    if (w != ci.work || mig != ci.migratable) {
      mark_repair(s.rank);
      s.bucket->work_stale = true;
    }
    ci.work = w;
    ci.migratable = mig;
    ci.coords = s.coords;
    works_[s.rank] = w;
    mig_[s.rank] = mig ? 1 : 0;
    changed_ranks_.push_back(s.rank);
  }
  dirty_.clear();
}

void LoadDb::flush_speed_changes(const SpeedMap& speed) {
  if (speed == speed_) return;
  // A PE whose speed changed invalidates the cached work of every chare it
  // hosts, dirty or not.
  auto handle = [&](int pe) {
    auto it = pe_.find(pe);
    if (it == pe_.end()) return;
    Bucket& b = it->second;
    b.work_stale = true;
    const double sp = speed[static_cast<std::size_t>(pe)];
    for (std::uint32_t r : b.ranks) {
      const double w = hot_[rank_slot_[r]].raw * sp;
      ChareInfo& ci = cache_[r];
      if (w != ci.work) {
        mark_repair(r);  // before the overwrite: the mark captures the old key
        ci.work = w;
        works_[r] = w;
        changed_ranks_.push_back(r);
      }
    }
  };
  const auto& a = speed_.entries();
  const auto& b = speed.entries();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].first < b[j].first)) {
      handle(a[i++].first);
    } else if (i == a.size() || b[j].first < a[i].first) {
      handle(b[j++].first);
    } else {
      if (a[i].second != b[j].second) handle(a[i].first);
      ++i;
      ++j;
    }
  }
  speed_ = speed;
}

void LoadDb::recompute_bucket_done(const SpeedMap& speed) {
  for (auto& [pe, b] : pe_) {
    if (!b.work_stale) continue;
    b.work_stale = false;
    const double sp = speed[static_cast<std::size_t>(pe)];
    b.done_all = 0.0;
    b.done_nonmig = 0.0;
    // Canonical bucket order: a PE's completion sum sees exactly the addend
    // sequence the from-scratch strategy loops accumulate for that PE, so the
    // cached value is bit-identical to theirs.  w / 1.0 == w bitwise for
    // every double, so default-speed PEs (the common case) skip the divide.
    if (sp == 1.0) {
      for (std::uint32_t r : b.ranks) {
        const double w = works_[r];
        b.done_all += w;
        if (!mig_[r]) b.done_nonmig += w;
      }
    } else {
      for (std::uint32_t r : b.ranks) {
        const double w = works_[r];
        b.done_all += w / sp;
        if (!mig_[r]) b.done_nonmig += w / sp;
      }
    }
  }
}

void LoadDb::repair_desc_index(bool had_rebuild) {
  if (repair_ranks_.empty() && !had_rebuild) return;
  auto desc_cmp = [](const WorkEntry& a, const WorkEntry& b) {
    if (a.work != b.work) return a.work > b.work;
    return a.rank < b.rank;
  };
  std::vector<WorkEntry>& fresh = fresh_;
  fresh.clear();
  fresh.reserve(repair_ranks_.size());
  for (std::uint32_t r : repair_ranks_)
    if (mig_[r]) fresh.push_back({works_[r], r});
  std::sort(fresh.begin(), fresh.end(), desc_cmp);

  std::size_t kept = 0;
  if (!had_rebuild) {
    // Steady path (no membership churn): entries whose work and migratability
    // are unchanged are already in order, so one sequential sweep drops the
    // re-ranked entries — matched against their old keys, sorted into the
    // index's own order — while merging the re-sorted fresh run in the same
    // output pass.  No per-entry random lookups.  A marked key that was never
    // in the index (a non-migratable chare) matches nothing and is passed
    // over as the sweep crosses its sort position.
    std::vector<WorkEntry>& marked = survivors_;
    marked = repair_old_;
    std::sort(marked.begin(), marked.end(), desc_cmp);
    // Sentinels sorting after every real entry (-inf work, impossible rank)
    // let the sweep drop the bounds checks; raw-pointer output drops the
    // push_back capacity checks.  The sweep is the repair's O(n) inner loop —
    // every removed branch counts.
    const WorkEntry sentinel{-std::numeric_limits<double>::infinity(), kNoRank};
    marked.push_back(sentinel);
    fresh.push_back(sentinel);
    // Grow-then-shrink keeps merged_ at its high-water size across rounds, so
    // the resize below extends by at most the fresh count (the two swapped
    // buffers would otherwise leapfrog each other's capacity and reallocate
    // every round).
    const std::size_t cap = desc_index_.size() + fresh.size();
    if (merged_.size() < cap) merged_.resize(cap);
    const WorkEntry* mp = marked.data();
    const WorkEntry* fp = fresh.data();
    const WorkEntry* fend = fp + fresh.size() - 1;  // stop before the sentinel
    WorkEntry* out = merged_.data();
    for (const WorkEntry& e : desc_index_) {
      while (desc_cmp(*mp, e)) ++mp;
      if (mp->rank == e.rank && mp->work == e.work) {
        ++mp;
        continue;  // re-ranked: its fresh entry (if still migratable) re-inserts it
      }
      while (desc_cmp(*fp, e)) *out++ = *fp++;
      *out++ = e;
    }
    while (fp != fend) *out++ = *fp++;
    fresh.pop_back();  // drop the sentinel (the counters below test emptiness)
    merged_.resize(static_cast<std::size_t>(out - merged_.data()));
    kept = merged_.size() - fresh.size();
    desc_index_.swap(merged_);
  } else {
    // Rebuild path: ranks moved, so remap the surviving run (monotone — order
    // is preserved) and merge the fresh run against it.  Merging two runs
    // sorted by the same strict total order (ranks are unique) yields exactly
    // the full sort's sequence.
    std::vector<WorkEntry>& survivors = survivors_;
    survivors.clear();
    survivors.reserve(desc_index_.size());
    for (const WorkEntry& e : desc_index_) {
      const std::uint32_t r = e.rank < remap_.size() ? remap_[e.rank] : kNoRank;
      if (r == kNoRank) continue;
      if (repair_mark_[r] == repair_epoch_) continue;
      survivors.push_back({e.work, r});
    }
    kept = survivors.size();
    merged_.resize(survivors.size() + fresh.size());
    std::merge(survivors.begin(), survivors.end(), fresh.begin(), fresh.end(), merged_.begin(),
               desc_cmp);
    desc_index_.swap(merged_);
  }
  repair_ranks_.clear();
  repair_old_.clear();
  if (!fresh.empty()) {
    if (kept == 0)
      ++counters_.index_full_sorts;
    else
      ++counters_.index_merge_repairs;
  }
}

Stats LoadDb::snapshot(int target_pes, const SpeedMap& speed) {
  ++counters_.snapshots;
  if (++repair_epoch_ == 0) {
    std::fill(repair_mark_.begin(), repair_mark_.end(), 0u);
    repair_epoch_ = 1;
  }
  changed_ranks_.clear();
  const bool had_rebuild = membership_dirty_;
  if (had_rebuild) structural_rebuild();
  if (repair_mark_.size() < cache_.size()) repair_mark_.resize(cache_.size(), 0);
  flush_dirty(speed);
  flush_speed_changes(speed);
  recompute_bucket_done(speed);
  // The canonical-order left fold matches the rebuild strategies' total; it
  // cannot be repaired incrementally in exact FP, but it is O(n) adds over
  // the packed works array.
  total_work_ = 0.0;
  for (const double w : works_) total_work_ += w;
  repair_desc_index(had_rebuild);

  // Build into the recycled snapshot (if the consumer returned one): clearing
  // keeps capacity, so steady-state rounds copy into existing storage instead
  // of growing megabytes of fresh vectors.  Better: when the buffer's
  // generation tag proves it is exactly last round's snapshot and membership
  // did not churn, its chares/bucket layout already match everything that
  // didn't change this round — patch the changed chares and refill only the
  // per-PE sums instead of re-copying O(n) records.
  Stats st = std::move(scratch_stats_);
  scratch_stats_ = Stats{};
  ++snap_gen_;
  // The tag folds this instance's address into the generation so a buffer
  // recycled across LoadDb instances can never pass as "last round's
  // snapshot" by counter coincidence.  (Patching vs full-copying produces
  // identical values, so the address dependence is not observable.)
  const std::uint64_t tag =
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(this)) *
      0x9e3779b97f4a7c15ull;
  const bool patch = !had_rebuild && scratch_gen_ != 0 &&
                     scratch_gen_ == (tag ^ (snap_gen_ - 1)) &&
                     st.chares.size() == cache_.size();
  scratch_gen_ = 0;
  st.npes = target_pes;
  st.pe_speed = speed;
  StatsAux& aux = st.aux;
  aux.valid = true;
  aux.db_gen = tag ^ snap_gen_;
  aux.total_work = total_work_;
  aux.max_hosting_pe = pe_.empty() ? -1 : pe_.rbegin()->first;
  if (patch) {
    // changed_ranks_ lists every chare rewritten by this round's flush passes
    // (duplicates are harmless); aux.pes/bucket_off/bucket_ranks only change
    // across structural rebuilds, which force the full path.
    ++counters_.patched_copies;
    for (std::uint32_t r : changed_ranks_) st.chares[r] = cache_[r];
    aux.done_all.clear();
    aux.done_nonmig.clear();
    for (const auto& [pe, b] : pe_) {
      (void)pe;
      aux.done_all.push_back(b.done_all);
      aux.done_nonmig.push_back(b.done_nonmig);
    }
  } else {
    st.chares = cache_;
    aux.pes.clear();
    aux.done_all.clear();
    aux.done_nonmig.clear();
    aux.bucket_off.clear();
    aux.bucket_ranks.clear();
    aux.pes.reserve(pe_.size());
    aux.done_all.reserve(pe_.size());
    aux.done_nonmig.reserve(pe_.size());
    aux.bucket_off.reserve(pe_.size() + 1);
    aux.bucket_ranks.reserve(cache_.size());
    aux.bucket_off.push_back(0);
    for (const auto& [pe, b] : pe_) {
      aux.pes.push_back(pe);
      aux.done_all.push_back(b.done_all);
      aux.done_nonmig.push_back(b.done_nonmig);
      aux.bucket_ranks.insert(aux.bucket_ranks.end(), b.ranks.begin(), b.ranks.end());
      aux.bucket_off.push_back(static_cast<std::uint32_t>(aux.bucket_ranks.size()));
    }
  }
  aux.desc_by_work.resize(desc_index_.size());
  for (std::size_t k = 0; k < desc_index_.size(); ++k) aux.desc_by_work[k] = desc_index_[k].rank;
  return st;
}

}  // namespace charm::lb
