#pragma once
// Time-profile aggregation over a trace log: Projections' "time profile"
// view (the instrument behind the paper's Fig 11), binning each PE's virtual
// time into fixed intervals and splitting every interval into
//
//   busy     — time inside entry-method invocations (application work)
//   overhead — scheduler/runtime time: handler execution outside any entry
//              method (message scheduling alphas, broadcast forwarding,
//              reduction combines, runtime bookkeeping)
//   idle     — no handler executing
//
// Fractions are of the bin width, so busy + overhead + idle == 1 per bin.

#include <vector>

#include "trace/trace.hpp"

namespace trace {

struct ProfileBin {
  double busy = 0;      ///< fraction of the bin inside entry methods
  double overhead = 0;  ///< fraction executing but outside entry methods
  double idle = 0;      ///< fraction with no handler running
};

struct TimeProfile {
  double t0 = 0;         ///< profile start (virtual seconds)
  double t1 = 0;         ///< profile end (virtual seconds)
  double bin_width = 0;  ///< (t1 - t0) / nbins
  int nbins = 0;
  int npes = 0;
  std::vector<ProfileBin> pe_bins;  ///< [pe * nbins + bin]
  std::vector<ProfileBin> mean;     ///< per-bin average over PEs

  const ProfileBin& at(int pe, int bin) const {
    return pe_bins[static_cast<std::size_t>(pe) * static_cast<std::size_t>(nbins) +
                   static_cast<std::size_t>(bin)];
  }
};

/// Builds the profile from a trace log.  `t_end` < 0 means "until the last
/// recorded exec span ends" (the makespan of the traced run).
TimeProfile build_time_profile(const std::vector<Event>& events, int npes, int nbins,
                               double t_end = -1.0);

inline TimeProfile build_time_profile(const Tracer& tracer, int npes, int nbins,
                                      double t_end = -1.0) {
  return build_time_profile(tracer.events(), npes, nbins, t_end);
}

}  // namespace trace
