// AMPI example: an "MPI program" estimating pi, run as 32 virtualized ranks
// on 4 emulated PEs — user-level threads, blocking collectives, migration.

#include <cstdio>

#include "ampi/ampi.hpp"

using namespace charm;

int main() {
  sim::MachineConfig cfg;
  cfg.npes = 4;
  sim::Machine machine(cfg);
  Runtime rt(machine);

  const int nranks = 32;
  double pi_estimate = 0;

  ampi::World world(rt, nranks, [&](ampi::Comm& comm) {
    // Monte-Carlo pi, deterministic per rank.
    sim::Rng rng(sim::derive_seed(99, static_cast<std::uint64_t>(comm.rank())));
    const int samples = 20000;
    int inside = 0;
    for (int s = 0; s < samples; ++s) {
      const double x = rng.next_double(), y = rng.next_double();
      if (x * x + y * y <= 1.0) ++inside;
    }
    comm.charge(samples * 5e-9);  // model the sampling work

    // Rank 0 is 4x slower this phase (pretend data imbalance); migrate lets
    // the balancer react.
    if (comm.rank() % 8 == 0) comm.charge(samples * 15e-9);
    comm.migrate();

    const double total =
        comm.allreduce(static_cast<double>(inside), ReduceOp::kSum);
    if (comm.rank() == 0) {
      pi_estimate = 4.0 * total / (static_cast<double>(nranks) * samples);
    }
    comm.barrier();
  });

  rt.lb().set_strategy(lb::make_greedy());
  rt.lb().set_period(1);

  bool done = false;
  rt.on_pe(0, [&] {
    world.start(Callback::to_function([&](ReductionResult&&) {
      done = true;
      rt.exit();
    }));
  });
  machine.run();

  std::printf("done=%d  pi ~ %.6f  (32 ranks on 4 PEs, ULT stacks migrated by the LB)\n",
              done ? 1 : 0, pi_estimate);
  std::printf("virtual time: %.3f ms; LB invocations: %d\n", machine.max_pe_clock() * 1e3,
              rt.lb().lb_invocations());
  return 0;
}
