// Reductions over collections.
//
// Semantics are exact (contributions are combined as they arrive, completion
// fires when every element of the collection has contributed to that sequence
// number); the *cost* of the k-ary combine tree is modeled as a critical-path
// wave after the last contribution (DESIGN.md §5).  Elements contribute in
// program order; each element's n-th contribution joins the collection's n-th
// reduction.

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "runtime/runtime.hpp"

namespace charm {

void Runtime::contribute(ArrayElementBase& elem, std::vector<double> nums, bool has_nums,
                         ReduceOp op, std::vector<std::byte> chunk, bool has_chunk,
                         const Callback& cb) {
  Collection& c = collection(elem.col_);
  if (c.total_elements <= 0)
    throw std::logic_error("contribute on an empty collection");

  const std::uint64_t seq = elem.redux_seq_++;
  Collection::ReduxSlot& slot = c.redux[seq];
  charge(cfg_.contribute_cost);

  if (has_nums) {
    if (!slot.has_nums) {
      slot.nums = std::move(nums);
      slot.has_nums = true;
      slot.op = op;
    } else {
      if (nums.size() > slot.nums.size()) slot.nums.resize(nums.size(), 0.0);
      for (std::size_t i = 0; i < nums.size(); ++i) {
        switch (slot.op) {
          case ReduceOp::kSum: slot.nums[i] += nums[i]; break;
          case ReduceOp::kMin: slot.nums[i] = std::min(slot.nums[i], nums[i]); break;
          case ReduceOp::kMax: slot.nums[i] = std::max(slot.nums[i], nums[i]); break;
        }
      }
    }
  }
  if (has_chunk) slot.chunks.push_back(std::move(chunk));
  if (cb.valid()) slot.cb = cb;
  ++slot.count;
  slot.last_contribution = now();

  if (slot.count >= c.total_elements) complete_reduction(c, seq);
}

void Runtime::complete_reduction(Collection& c, std::uint64_t seq) {
  c.redux_floor = std::max(c.redux_floor, seq + 1);
  auto node = c.redux.extract(seq);
  Collection::ReduxSlot& slot = node.mapped();
  ReductionResult result;
  result.nums = std::move(slot.nums);
  result.chunks = std::move(slot.chunks);
  const Callback cb = slot.cb;

  // Critical-path cost of the combine tree after the last contribution.
  // The result moves straight into the completion closure (no shared_ptr
  // box; sim::Handler is move-only).
  const double delay = tree_wave_latency();
  ++outstanding_;
  ++msgs_sent_;
  machine_.post(0, now() + delay, [this, cb, result = std::move(result)]() mutable {
    if (cb.valid()) cb.invoke(*this, std::move(result));
    note_message_done();
  });
}

void Runtime::clear_reductions(CollectionId col) {
  // FT rollback: in-flight slots are dropped and the floor resets; restored
  // elements carry their own (mutually consistent) checkpointed sequence.
  collection(col).redux.clear();
  collection(col).redux_floor = 0;
}

}  // namespace charm
