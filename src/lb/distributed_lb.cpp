#include "lb/distributed.hpp"

#include <algorithm>
#include <numeric>

#include "sim/rng.hpp"

namespace charm::lb {

GossipResult gossip_assign(const Stats& s, std::uint64_t seed, const GossipParams& p) {
  GossipResult result;
  const auto n = static_cast<std::size_t>(s.npes);

  std::vector<double> load(n, 0.0);
  std::vector<std::vector<std::size_t>> on_pe(n);
  for (std::size_t i = 0; i < s.chares.size(); ++i) {
    const ChareInfo& c = s.chares[i];
    const auto pe = static_cast<std::size_t>(std::min(c.pe, s.npes - 1));
    load[pe] += c.work / s.pe_speed[pe];
    if (c.migratable) on_pe[pe].push_back(i);
  }
  const double avg = std::accumulate(load.begin(), load.end(), 0.0) / s.npes;
  if (avg <= 0) return result;

  // Largest chares first so a single transfer makes real progress.
  for (auto& lst : on_pe) {
    std::sort(lst.begin(), lst.end(), [&](std::size_t a, std::size_t b) {
      if (s.chares[a].work != s.chares[b].work) return s.chares[a].work > s.chares[b].work;
      return a < b;
    });
  }

  sim::Rng rng(seed);
  for (std::size_t pe = 0; pe < n; ++pe) {
    if (load[pe] <= avg * p.overload_tol) continue;
    // Probe a handful of random PEs; each accepting target takes chares until
    // it reaches the average or we run out of excess.
    for (int probe = 0; probe < p.probes_per_pe && load[pe] > avg * p.overload_tol; ++probe) {
      const auto target = static_cast<std::size_t>(rng.next_below(n));
      ++result.probes;
      if (target == pe || load[target] >= avg) continue;  // probe declined
      auto& lst = on_pe[pe];
      for (auto it = lst.begin(); it != lst.end() && load[pe] > avg * p.overload_tol;) {
        const std::size_t id = *it;
        const double dt_src = s.chares[id].work / s.pe_speed[pe];
        const double dt_dst = s.chares[id].work / s.pe_speed[target];
        // Accept when the target stays strictly below the source's current
        // load (work-stealing improvement criterion); otherwise try smaller.
        if (load[target] + dt_dst >= load[pe]) {
          ++it;
          continue;
        }
        result.migrations.push_back(Migration{s.chares[id].col, s.chares[id].idx,
                                              static_cast<int>(pe), static_cast<int>(target)});
        load[pe] -= dt_src;
        load[target] += dt_dst;
        it = lst.erase(it);
      }
    }
  }
  return result;
}

}  // namespace charm::lb
