#pragma once
// User-level threads for AMPI ranks (§II-D: "AMPI ... uses light-weight
// user-level threads instead of OS processes").
//
// Implemented with POSIX ucontext; stacks are heap-allocated, so moving a
// rank between the emulator's PEs is a pointer handoff (the single-process
// stand-in for AMPI's isomalloc stack migration; DESIGN.md §1).

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace charm::ampi {

class Ult {
 public:
  explicit Ult(std::size_t stack_bytes = 256 * 1024);
  ~Ult() = default;
  Ult(const Ult&) = delete;
  Ult& operator=(const Ult&) = delete;

  /// Arms the thread with its body; does not run it.
  void start(std::function<void()> fn);

  /// Switch from the scheduler into the thread until it yields or returns.
  /// Returns true while the thread has more work (i.e. it yielded).
  bool resume();

  /// Called from inside the thread: switch back to the scheduler.
  void yield();

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  std::size_t stack_bytes() const { return stack_.size(); }

 private:
  static void trampoline(unsigned int hi, unsigned int lo);
  void body();

  std::vector<std::byte> stack_;
  ucontext_t ctx_{};
  ucontext_t sched_{};
  std::function<void()> fn_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace charm::ampi
