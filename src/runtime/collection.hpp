#pragma once
// Internal per-collection state: element storage, the distributed location
// directory (home tables + caches), and reduction slots.
//
// Memory is logically partitioned per PE: a PE's handler only touches its own
// PeLocal block; cross-PE effects travel as messages.  This is what makes the
// emulation faithful to the paper's distributed location manager (§II-D):
// each PE holds O(local elements + homes hashed to it), never O(total).

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/callback.hpp"
#include "runtime/chare.hpp"
#include "runtime/envelope.hpp"
#include "runtime/types.hpp"
#include "sim/paged_table.hpp"

namespace charm {

/// Home-table record: the authoritative location of one element.
struct HomeRecord {
  int location = kInvalidPe;
  bool in_transit = false;
  std::uint32_t arrived_epoch = 0;       ///< last migration epoch seen complete
  std::vector<Envelope> buffered;        ///< messages parked during migration
};

/// One reduction's combined state.  Used both as the collection-global slot
/// (flat combine / tree bookkeeping) and as a per-PE partial combine under
/// tree collectives (DESIGN.md §10).
struct ReduxSlot {
  std::int64_t count = 0;
  bool has_nums = false;
  ReduceOp op = ReduceOp::kSum;
  std::vector<double> nums;
  std::vector<std::vector<std::byte>> chunks;
  Callback cb;
  Time last_contribution = 0;
  /// Tree up-sweep: child partials still expected before this PE forwards
  /// its combined partial to its parent (0 outside an active wave).
  std::int32_t wave_remaining = 0;
};

using ReduxMap = std::unordered_map<std::uint64_t, ReduxSlot>;

struct PeLocal {
  std::unordered_map<ObjIndex, std::unique_ptr<ArrayElementBase>, ObjIndexHash> elems;
  std::unordered_map<ObjIndex, HomeRecord, ObjIndexHash> home;
  std::unordered_map<ObjIndex, int, ObjIndexHash> loc_cache;
  /// Per-PE partial combines under tree collectives, keyed by sequence.
  ReduxMap partial;
  /// Recycled map node: the steady state extracts one partial per wave and
  /// reuses its node for the next, so tree reductions allocate nothing.
  ReduxMap::node_type partial_spare;
};

/// A chare array or group instance.
class Collection {
 public:
  using ReduxSlot = charm::ReduxSlot;

  CollectionId id = -1;
  ChareTypeId type = -1;
  bool migratable = true;
  bool raw_move = false;   ///< move live objects without PUP (AMPI ranks)
  bool is_group = false;
  bool checkpointable = true;  ///< included in FT checkpoints (groups are not)
  bool record_comm = false;  ///< record element-to-element comm edges for LB

  /// Per-PE blocks, paged on first touch: a PE that never hosts an element,
  /// home record, or cache entry for this collection costs zero bytes
  /// (DESIGN.md §12).  An untouched block reads as empty maps — identical to
  /// what a dense table held before any message reached that PE.
  sim::PagedTable<PeLocal> pe;
  std::int64_t total_elements = 0;

  /// In-flight reductions keyed by sequence number.
  ReduxMap redux;
  /// Recycled map node (see PeLocal::partial_spare).
  ReduxMap::node_type redux_spare;
  /// Reduction number newly created elements join: dynamically inserted
  /// chares (AMR refinement) must not restart at sequence 0 while existing
  /// chares are at N, or collection-wide reductions would never complete.
  std::uint64_t redux_floor = 0;

  explicit Collection(int npes) : pe(static_cast<std::size_t>(npes)) {}

  /// Mutable access; materializes the PE's block on first touch.
  PeLocal& local(int p) { return pe.ref(static_cast<std::size_t>(p)); }

  /// Touched block or nullptr; never materializes.  Read paths (location
  /// cache probes, broadcast leg scans, LB/FT sweeps) use this so a lookup
  /// on a never-touched PE stays zero-byte.
  PeLocal* local_if(int p) { return pe.probe(static_cast<std::size_t>(p)); }
  const PeLocal* local_if(int p) const { return pe.probe(static_cast<std::size_t>(p)); }

  ArrayElementBase* find(int p, const ObjIndex& ix) {
    PeLocal* pl = local_if(p);
    if (pl == nullptr) return nullptr;
    auto it = pl->elems.find(ix);
    return it == pl->elems.end() ? nullptr : it->second.get();
  }
};

}  // namespace charm
