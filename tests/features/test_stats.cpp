// Stats subsystem tests: hand-computed usage attribution and critical path,
// byte-determinism of the JSON export (same seed ⇒ identical bytes), and the
// accounting invariants fuzzed over several machine configurations
// (Σ per-PE busy == trace summary busy, comm-matrix row sums == per-PE bytes
// sent, critical path ≤ makespan, phase coverage of the whole run).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "runtime/charm.hpp"
#include "stats/critical_path.hpp"
#include "stats/json.hpp"
#include "stats/json_export.hpp"
#include "stats/report.hpp"
#include "trace/summary.hpp"
#include "trace/trace.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;
using charmtest::Harness;

// ---- hand-computed collection ------------------------------------------------

TEST(Stats, HandComputedUsageAttribution) {
  trace::Tracer t;
  // PE0: one exec span [0,1] containing two entries; 0.3 of runtime gap.
  t.entry(0, /*col=*/2, /*ep=*/1, 0.1, 0.3);
  t.entry(0, 2, 2, 0.4, 0.9);
  t.exec(0, 0.0, 1.0, 128);
  // PE1: a pure-runtime span (no entries).
  t.exec(1, 0.2, 0.5, 0);

  const stats::Report r = stats::collect(t, 2);
  ASSERT_EQ(r.entries.size(), 3u);  // (-1,-1,pe1), (2,1,pe0), (2,2,pe0)

  const stats::EntryUsage& rt_row = r.entries[0];
  EXPECT_EQ(rt_row.col, -1);
  EXPECT_EQ(rt_row.pe, 1);
  EXPECT_EQ(rt_row.calls, 1u);
  EXPECT_NEAR(rt_row.exec, 0.3, 1e-12);
  EXPECT_EQ(rt_row.busy, 0.0);

  const stats::EntryUsage& e1 = r.entries[1];
  EXPECT_EQ(e1.col, 2);
  EXPECT_EQ(e1.ep, 1);
  EXPECT_NEAR(e1.busy, 0.2, 1e-12);
  // Exec attribution: own busy + half the 0.3 busy/exec gap.
  EXPECT_NEAR(e1.exec, 0.2 + 0.15, 1e-12);
  EXPECT_NEAR(e1.grain_min, 0.2, 1e-12);
  EXPECT_NEAR(e1.grain_max, 0.2, 1e-12);

  const stats::EntryUsage& e2 = r.entries[2];
  EXPECT_NEAR(e2.busy, 0.5, 1e-12);
  EXPECT_NEAR(e2.exec, 0.5 + 0.15, 1e-12);

  // Attribution conserves exec time: Σ entry exec == Σ PE exec.
  double entry_exec = 0;
  for (const auto& u : r.entries) entry_exec += u.exec;
  EXPECT_NEAR(entry_exec, r.total_exec(), 1e-12);

  EXPECT_NEAR(r.makespan, 1.0, 1e-12);
  EXPECT_NEAR(r.pes[0].busy, 0.7, 1e-12);
  EXPECT_NEAR(r.pes[0].exec, 1.0, 1e-12);
  EXPECT_NEAR(r.pes[1].idle, 1.0 - 0.3, 1e-12);
}

TEST(Stats, HandComputedCommMatrixAndHistograms) {
  trace::Tracer t;
  t.send(0, 1, /*bytes=*/64, /*hops=*/2, 0.0, 0.25);
  t.send(0, 1, 100, 2, 0.1, 0.35);
  t.send(1, 0, 7, 1, 0.2, 0.4);
  t.send(0, 0, 0, 0, 0.3, 0.3);
  t.recv(1, 0, 64, 0.25, 0.30);

  const stats::Report r = stats::collect(t, 2);
  ASSERT_EQ(r.comm.size(), 3u);  // sorted (src, dst): (0,0), (0,1), (1,0)
  EXPECT_EQ(r.comm[0].src, 0);
  EXPECT_EQ(r.comm[0].dst, 0);
  EXPECT_EQ(r.comm[0].bytes, 0u);
  EXPECT_EQ(r.comm[1].dst, 1);
  EXPECT_EQ(r.comm[1].msgs, 2u);
  EXPECT_EQ(r.comm[1].bytes, 164u);
  EXPECT_EQ(r.comm[2].src, 1);
  EXPECT_EQ(r.comm[2].bytes, 7u);

  EXPECT_EQ(r.pes[0].msgs_sent, 3u);
  EXPECT_EQ(r.pes[0].bytes_sent, 164u);
  EXPECT_EQ(r.pes[1].bytes_sent, 7u);
  EXPECT_EQ(r.pes[1].msgs_recv, 1u);
  EXPECT_NEAR(r.pes[1].queue_wait, 0.05, 1e-12);

  // size_log2: 0 -> bucket 0; 7 -> bucket 3; 64 -> bucket 7; 100 -> bucket 7.
  EXPECT_EQ(r.messages.size_log2.total, 4u);
  EXPECT_EQ(r.messages.size_log2.count(0), 1u);
  EXPECT_EQ(r.messages.size_log2.count(3), 1u);
  EXPECT_EQ(r.messages.size_log2.count(7), 2u);
  // hops_log2: 0 -> 0; 1 -> 1; 2 -> 2 (twice).
  EXPECT_EQ(r.messages.hops_log2.count(2), 2u);
  EXPECT_EQ(r.messages.hops, 5u);
}

TEST(Stats, HandComputedCriticalPath) {
  trace::Tracer t;
  // PE0 executes [0,1]; at 0.5 it sends a message (latency 0.2) that PE1
  // services at 0.8 for 0.5s.  Chain: 0.5 into the sender + 0.2 network +
  // 0.5 execution = 1.2, longer than either span alone.
  t.recv(0, 0, 0, 0.0, 0.0);
  t.send(0, 1, 64, 1, 0.5, 0.7);
  t.exec(0, 0.0, 1.0, 0);
  t.recv(1, 0, 64, 0.7, 0.8);
  t.exec(1, 0.8, 1.3, 64);

  const stats::CriticalPathStats cp = stats::critical_path(t.events(), 2);
  EXPECT_EQ(cp.edges_matched, 1u);
  EXPECT_NEAR(cp.length, 1.2, 1e-12);
  EXPECT_NEAR(cp.work, 1.0, 1e-12);
  EXPECT_NEAR(cp.comm, 0.2, 1e-12);
  EXPECT_EQ(cp.nodes, 2u);
}

// ---- a deterministic chatter workload for real-run checks --------------------

constexpr int kElems = 16;

struct WorkMsg {
  std::uint32_t seed = 0;
  std::int32_t hops = 0;
  void pup(pup::Er& p) {
    p | seed;
    p | hops;
  }
};

class Chatter : public charm::ArrayElement<Chatter, std::int32_t> {
 public:
  void chat(const WorkMsg& m) {
    const std::uint32_t s = m.seed * 1664525u + 1013904223u;
    charge((1.0 + static_cast<double>(s >> 28)) * 1e-6);
    if (m.hops > 0) {
      ArrayProxy<Chatter> arr(collection_id());
      arr[static_cast<std::int32_t>(s % kElems)].send<&Chatter::chat>(
          WorkMsg{s, m.hops - 1});
    }
  }
  void pup(pup::Er& p) override { ArrayElementBase::pup(p); }
};

/// Runs the chatter workload on a fresh machine and returns the trace.
void run_chatter(int npes, sim::NetworkParams net, std::uint32_t seed, int chains,
                 int hops, trace::Tracer& tracer, double* makespan = nullptr) {
  Harness h(npes, net);
  h.machine.set_tracer(&tracer);
  auto arr = ArrayProxy<Chatter>::create(h.rt);
  for (int i = 0; i < kElems; ++i) arr.seed(i, i % npes);
  h.rt.on_pe(0, [&] {
    for (int c = 0; c < chains; ++c) {
      arr[c % kElems].send<&Chatter::chat>(WorkMsg{seed + 0x9e3779b9u * static_cast<std::uint32_t>(c), hops});
    }
  });
  h.machine.run();
  if (makespan != nullptr) *makespan = h.machine.max_pe_clock();
}

stats::ExportMeta test_meta() {
  stats::ExportMeta meta;
  meta.bench = "test_stats";
  meta.smoke = true;
  return meta;
}

// ---- determinism -------------------------------------------------------------

TEST(Stats, SameSeedProducesByteIdenticalJson) {
  std::string json[2];
  for (int run = 0; run < 2; ++run) {
    trace::Tracer t;
    run_chatter(4, sim::NetworkParams{}, /*seed=*/7, /*chains=*/6, /*hops=*/40, t);
    json[run] = stats::to_json(stats::collect(t, 4), test_meta());
  }
  EXPECT_GT(json[0].size(), 0u);
  EXPECT_EQ(json[0], json[1]) << "same seed must produce byte-identical stats JSON";
}

TEST(Stats, DifferentSeedProducesDifferentJson) {
  std::string json[2];
  for (int run = 0; run < 2; ++run) {
    trace::Tracer t;
    run_chatter(4, sim::NetworkParams{}, /*seed=*/run == 0 ? 7 : 8, 6, 40, t);
    json[run] = stats::to_json(stats::collect(t, 4), test_meta());
  }
  EXPECT_NE(json[0], json[1]);
}

// ---- invariants fuzzed over machine configs ----------------------------------

TEST(Stats, InvariantsHoldAcrossMachineConfigs) {
  struct Config {
    int npes;
    sim::NetworkParams net;
    std::uint32_t seed;
    int chains;
    int hops;
  };
  const Config configs[] = {
      {2, sim::NetworkParams{}, 1, 3, 30},
      {4, sim::NetworkParams::bluegene_q(), 2, 6, 50},
      {5, sim::NetworkParams::cloud_ethernet(), 3, 4, 25},
      {8, sim::NetworkParams::cray_gemini(), 4, 8, 40},
  };
  for (const Config& cfg : configs) {
    SCOPED_TRACE("npes=" + std::to_string(cfg.npes) + " seed=" + std::to_string(cfg.seed));
    trace::Tracer t;
    double makespan = 0;
    run_chatter(cfg.npes, cfg.net, cfg.seed, cfg.chains, cfg.hops, t, &makespan);
    const stats::Report r = stats::collect(t, cfg.npes);
    const trace::Summary s = trace::summarize(t, cfg.npes);

    // Busy/exec totals must agree with the PR-1 summary, PE for PE.
    ASSERT_EQ(r.pes.size(), s.pes.size());
    for (int pe = 0; pe < cfg.npes; ++pe) {
      const auto i = static_cast<std::size_t>(pe);
      EXPECT_NEAR(r.pes[i].busy, s.pes[i].busy, 1e-15);
      EXPECT_NEAR(r.pes[i].exec, s.pes[i].exec, 1e-15);
      EXPECT_EQ(r.pes[i].execs, s.pes[i].execs);
    }
    EXPECT_NEAR(r.total_busy(), s.total_busy(), 1e-12);
    EXPECT_NEAR(r.makespan, makespan, 1e-12);

    // Comm-matrix row sums == per-PE sent bytes/messages; column sums are
    // bounded by received bytes (messages to failed/never-serviced PEs keep
    // recv below send, never above).
    std::vector<std::uint64_t> row_bytes(static_cast<std::size_t>(cfg.npes), 0);
    std::vector<std::uint64_t> row_msgs(static_cast<std::size_t>(cfg.npes), 0);
    std::uint64_t cell_bytes = 0;
    for (const stats::CommCell& c : r.comm) {
      row_bytes[static_cast<std::size_t>(c.src)] += c.bytes;
      row_msgs[static_cast<std::size_t>(c.src)] += c.msgs;
      cell_bytes += c.bytes;
    }
    for (int pe = 0; pe < cfg.npes; ++pe) {
      const auto i = static_cast<std::size_t>(pe);
      EXPECT_EQ(row_bytes[i], r.pes[i].bytes_sent) << "pe " << pe;
      EXPECT_EQ(row_msgs[i], r.pes[i].msgs_sent) << "pe " << pe;
    }
    EXPECT_EQ(cell_bytes, r.messages.bytes);
    EXPECT_EQ(r.messages.size_log2.total, r.messages.sends);
    EXPECT_EQ(r.messages.hops_log2.total, r.messages.sends);

    // Entry attribution conserves both busy and exec time.
    double entry_busy = 0, entry_exec = 0;
    for (const stats::EntryUsage& u : r.entries) {
      entry_busy += u.busy;
      entry_exec += u.exec;
      EXPECT_LE(u.grain_min, u.grain_max);
    }
    EXPECT_NEAR(entry_busy, r.total_busy(), 1e-12);
    EXPECT_NEAR(entry_exec, r.total_exec(), 1e-12);

    // Phases tile [0, makespan] and conserve busy time.
    ASSERT_FALSE(r.phases.empty());
    EXPECT_EQ(r.phases.front().t0, 0.0);
    EXPECT_NEAR(r.phases.back().t1, r.makespan, 1e-12);
    double phase_busy = 0;
    for (std::size_t i = 0; i < r.phases.size(); ++i) {
      if (i > 0) {
        EXPECT_EQ(r.phases[i].t0, r.phases[i - 1].t1);
      }
      phase_busy += r.phases[i].busy;
    }
    EXPECT_NEAR(phase_busy, r.total_busy(), 1e-9);

    // Critical path: a real dependency chain, bounded by the makespan.
    EXPECT_GT(r.critical_path.length, 0.0);
    EXPECT_LE(r.critical_path.length, r.makespan + 1e-12);
    EXPECT_NEAR(r.critical_path.work + r.critical_path.comm, r.critical_path.length, 1e-12);
    EXPECT_GT(r.critical_path.nodes, 1u);
    EXPECT_GT(r.critical_path.edges_matched, 0u);
  }
}

// ---- JSON export / parser round trip -----------------------------------------

TEST(Stats, ExportedJsonParsesAndMatchesReport) {
  trace::Tracer t;
  run_chatter(4, sim::NetworkParams{}, 11, 5, 30, t);
  const stats::Report r = stats::collect(t, 4);
  stats::ExportMeta meta = test_meta();
  stats::SeriesTable table;
  table.title = "t";
  table.columns = {"PEs", "ms"};
  table.rows = {{4, 1.25}, {8, 0.5}};
  meta.series.push_back(table);
  meta.notes.push_back("a \"quoted\" note");
  const std::string body = stats::to_json(r, meta);

  stats::json::Value doc;
  std::string err;
  ASSERT_TRUE(stats::json::parse(body, doc, &err)) << err;
  EXPECT_EQ(doc.str("schema"), stats::kSchemaName);
  EXPECT_EQ(doc.num("version"), stats::kSchemaVersion);
  EXPECT_EQ(doc.str("bench"), "test_stats");
  EXPECT_EQ(static_cast<int>(doc.num("npes")), 4);
  EXPECT_EQ(doc.num("makespan"), r.makespan) << "numbers must round-trip exactly";
  ASSERT_NE(doc.find("pes"), nullptr);
  EXPECT_EQ(doc.find("pes")->array.size(), 4u);
  ASSERT_NE(doc.find("entries"), nullptr);
  EXPECT_EQ(doc.find("entries")->array.size(), r.entries.size());
  const stats::json::Value* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->array.size(), 1u);
  EXPECT_EQ(series->array[0].find("rows")->array[0].array[1].number, 1.25);
  EXPECT_EQ(doc.find("notes")->array[0].string, "a \"quoted\" note");
  const stats::json::Value* cp = doc.find("critical_path");
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->num("length"), r.critical_path.length);
}

TEST(StatsJson, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -1.5, 0.1, 1e-9, 3.14159265358979, 1.0 / 3.0, 6.02e23}) {
    const std::string s = stats::json::format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(stats::json::format_double(0.0), "0");
  EXPECT_EQ(stats::json::format_double(-0.0), "0");
  EXPECT_EQ(stats::json::format_double(0.25), "0.25");
}

// ---- phase segmentation on a real LB run -------------------------------------

struct IterMsg {
  int remaining = 0;
  void pup(pup::Er& p) { p | remaining; }
};

class SyncWorker : public charm::ArrayElement<SyncWorker, std::int32_t> {
 public:
  int pending = 0;
  void step(const IterMsg& m) {
    pending = m.remaining;
    charm::charge((1 + index() % 3) * 1e-4);
    at_sync();
  }
  void resume_from_sync() override {
    if (pending > 0) {
      charm::ArrayProxy<SyncWorker> self(collection_id());
      self[index()].send<&SyncWorker::step>(IterMsg{pending - 1});
    }
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | pending;
  }
};

TEST(Stats, LbRunProducesPhaseSegments) {
  trace::Tracer tracer;
  {
    Harness h(4);
    h.machine.set_tracer(&tracer);
    auto arr = ArrayProxy<SyncWorker>::create(h.rt);
    for (int i = 0; i < 8; ++i) arr.seed(i, i % 4);
    h.rt.lb().register_collection(arr.id());
    h.rt.lb().set_strategy(lb::make_greedy());
    h.rt.lb().set_period(2);
    h.rt.on_pe(0, [&] { arr.broadcast<&SyncWorker::step>(IterMsg{6}); });
    h.machine.run();
  }
  const stats::Report r = stats::collect(tracer, 4);
  // Every completed LB round ends a segment, so there are at least two, and
  // all segments after the first are labeled by the phase that opened them.
  ASSERT_GE(r.phases.size(), 2u);
  EXPECT_EQ(r.phases.front().name, "start");
  for (std::size_t i = 1; i < r.phases.size(); ++i) EXPECT_EQ(r.phases[i].name, "lb_step");
  double busy = 0;
  for (const auto& ph : r.phases) busy += ph.busy;
  EXPECT_NEAR(busy, r.total_busy(), 1e-9);
}

}  // namespace
