#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/machine.hpp"

namespace sim {

void FaultInjector::configure(FaultConfig cfg) {
  cfg_ = std::move(cfg);
  std::sort(cfg_.fixed.begin(), cfg_.fixed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  rng_ = Rng(cfg_.seed);
  fixed_cursor_ = 0;
  scheduled_ = false;
  scheduled_time_ = 0;
  scheduled_victim_ = -1;
  armed_oneshot_ = false;
  budget_used_ = 0;
  log_.clear();
  record_of_pe_.clear();
  schedule_next(cfg_.start_after);
}

void FaultInjector::schedule_next(Time after) {
  scheduled_ = false;
  scheduled_victim_ = -1;
  switch (cfg_.mode) {
    case FaultMode::kOff:
      return;
    case FaultMode::kFixed:
      if (fixed_cursor_ < cfg_.fixed.size()) {
        scheduled_time_ = std::max(cfg_.fixed[fixed_cursor_].first, after);
        scheduled_victim_ = cfg_.fixed[fixed_cursor_].second;
        ++fixed_cursor_;
        scheduled_ = true;
      }
      return;
    case FaultMode::kMtbf:
    case FaultMode::kNemesis:
      if (cfg_.mtbf > 0) {
        scheduled_time_ =
            std::max(after, cfg_.start_after) + rng_.next_exponential(cfg_.mtbf);
        scheduled_ = true;
      }
      return;
  }
}

void FaultInjector::arm(Time t, int victim) {
  if (armed_oneshot_ && armed_time_ <= t) return;  // earlier strike already armed
  armed_oneshot_ = true;
  armed_time_ = t;
  armed_victim_ = victim;
}

void FaultInjector::notify_checkpoint_begin(Time now) {
  if (cfg_.mode != FaultMode::kNemesis || !cfg_.strike_mid_checkpoint) return;
  if (budget_used_ >= cfg_.max_failures || now < cfg_.start_after) return;
  arm(now + cfg_.strike_delay);
}

void FaultInjector::notify_lb_begin(Time now) {
  if (cfg_.mode != FaultMode::kNemesis || !cfg_.strike_mid_lb) return;
  if (budget_used_ >= cfg_.max_failures || now < cfg_.start_after) return;
  arm(now + cfg_.strike_delay);
}

bool FaultInjector::armed() const {
  if (cfg_.mode == FaultMode::kOff) return false;
  if (budget_used_ >= cfg_.max_failures) return false;
  return scheduled_ || armed_oneshot_;
}

Time FaultInjector::next_time() const {
  if (armed_oneshot_ && (!scheduled_ || armed_time_ <= scheduled_time_))
    return armed_time_;
  return scheduled_time_;
}

int FaultInjector::choose_victim(const Machine& m) {
  const bool from_oneshot =
      armed_oneshot_ && (!scheduled_ || armed_time_ <= scheduled_time_);
  const int wanted = from_oneshot ? armed_victim_ : scheduled_victim_;

  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(m.npes()));
  for (int pe = 0; pe < m.npes(); ++pe)
    if (!m.pe_failed(pe)) alive.push_back(pe);
  if (alive.empty()) return -1;

  if (wanted >= 0) {
    // Explicit victim; if it is already down, take the next live PE.
    for (int k = 0; k < m.npes(); ++k) {
      const int cand = (wanted + k) % m.npes();
      if (!m.pe_failed(cand)) return cand;
    }
    return -1;
  }

  if (cfg_.mode == FaultMode::kNemesis) {
    // Busiest live PE: most accumulated busy time, then longest ready queue,
    // then lowest id.  Busy time is the stable load signal; queue length
    // fluctuates with broadcast fan-out.  All inputs are deterministic
    // simulator state.
    int best = alive[0];
    for (int pe : alive) {
      const Pe& a = m.pe(pe);
      const Pe& b = m.pe(best);
      if (a.busy_time() > b.busy_time() ||
          (a.busy_time() == b.busy_time() && a.queue_length() > b.queue_length()))
        best = pe;
    }
    return best;
  }

  return alive[static_cast<std::size_t>(rng_.next_below(alive.size()))];
}

void FaultInjector::skip() {
  ++budget_used_;
  const bool from_oneshot =
      armed_oneshot_ && (!scheduled_ || armed_time_ <= scheduled_time_);
  if (from_oneshot) {
    armed_oneshot_ = false;
  } else {
    schedule_next(scheduled_time_);
  }
}

void FaultInjector::committed(const FaultRecord& rec) {
  ++budget_used_;
  const bool from_oneshot =
      armed_oneshot_ && (!scheduled_ || armed_time_ <= scheduled_time_);
  if (from_oneshot) {
    armed_oneshot_ = false;
  } else {
    schedule_next(std::max(rec.time + cfg_.min_gap, scheduled_time_));
  }

  FaultRecord stored = rec;
  stored.ordinal = static_cast<int>(log_.size());
  log_.push_back(stored);
  if (rec.pe >= 0) {
    if (record_of_pe_.size() <= static_cast<std::size_t>(rec.pe))
      record_of_pe_.resize(static_cast<std::size_t>(rec.pe) + 1, -1);
    record_of_pe_[static_cast<std::size_t>(rec.pe)] = stored.ordinal;
  }
  if (listener_) listener_(log_.back());
}

void FaultInjector::note_inflight(int pe, bool redirected) {
  if (pe < 0 || static_cast<std::size_t>(pe) >= record_of_pe_.size()) return;
  const int ord = record_of_pe_[static_cast<std::size_t>(pe)];
  if (ord < 0) return;
  FaultRecord& r = log_[static_cast<std::size_t>(ord)];
  if (redirected) {
    ++r.redirected_inflight;
  } else {
    ++r.dropped_inflight;
  }
}

std::string FaultInjector::format_log() const {
  std::string out;
  char line[160];
  for (const FaultRecord& r : log_) {
    std::snprintf(line, sizeof(line),
                  "#%d t=%.17g pe=%d ready=%llu dropped=%llu redirected=%llu\n",
                  r.ordinal, r.time, r.pe,
                  static_cast<unsigned long long>(r.dropped_ready),
                  static_cast<unsigned long long>(r.dropped_inflight),
                  static_cast<unsigned long long>(r.redirected_inflight));
    out += line;
  }
  return out;
}

}  // namespace sim
