# Empty dependencies file for fig12_barnes.
# This may be replaced when dependencies are built.
