// Ablation: the LB strategy suite on one imbalanced workload.
//
// Same clustered LeanMD configuration for every strategy; reports makespan,
// number of migrations, and the post-balance imbalance the runtime measured.
// This is the "which balancer should I use" table the paper's §III-A implies:
// Greedy balances best but migrates everything; Refine preserves locality;
// Hybrid approximates Greedy hierarchically; DistributedLB trades balance
// quality for O(1) decision state per PE.

#include "bench_common.hpp"
#include "miniapps/leanmd/leanmd.hpp"

namespace {

using namespace charm;

struct Outcome {
  double makespan = 0;
  int migrations = 0;
  double final_imbalance = 1.0;
};

Outcome run_with(const char* which) {
  sim::Machine m(bench::machine_config(16));
  bench::attach_trace(m);
  Runtime rt(m);
  leanmd::Params p;
  p.nx = p.ny = p.nz = 5;
  p.atoms_per_cell = 24;
  p.pair_cost = 25e-9;
  p.clustering = 2.5;
  p.epsilon = 1e-6;
  leanmd::Simulation sim(rt, p);

  const std::string s = which;
  if (s == "Greedy") {
    rt.lb().set_strategy(lb::make_greedy());
  } else if (s == "Refine") {
    rt.lb().set_strategy(lb::make_refine(1.05));
  } else if (s == "Hybrid") {
    rt.lb().set_strategy(lb::make_hybrid());
  } else if (s == "Orb") {
    rt.lb().set_strategy(lb::make_orb());
  } else if (s == "Distributed") {
    rt.lb().use_distributed(true);
  }
  if (s != "NoLB") rt.lb().set_period(4);

  bool done = false;
  rt.on_pe(0, [&] {
    sim.run(bench::cap_steps(12, 5), Callback::to_function([&](ReductionResult&&) {
      done = true;
      rt.exit();
    }));
  });
  m.run();

  Outcome out;
  out.makespan = m.max_pe_clock();
  for (const auto& r : rt.lb().history()) {
    out.migrations += r.migrations;
    if (r.avg_load > 0) out.final_imbalance = r.max_load / r.avg_load;
  }
  if (!done) std::printf("   WARNING: %s run did not complete\n", which);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Ablation", "LB strategies on clustered LeanMD (16 PEs, 125 cells)");
  std::printf("%16s%16s%16s%16s\n", "strategy", "makespan_s", "migrations", "final_imb");
  for (const char* s : {"NoLB", "Greedy", "Refine", "Hybrid", "Orb", "Distributed"}) {
    const Outcome o = run_with(s);
    std::printf("%16s%16.4f%16d%16.3f\n", s, o.makespan, o.migrations, o.final_imbalance);
  }
  bench::note("expected: every strategy beats NoLB; Refine moves far fewer chares than Greedy;");
  bench::note("Distributed lands between Refine and Greedy with no central state");
  return bench::finish();
}
