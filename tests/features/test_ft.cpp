// Fault tolerance tests: disk checkpoint/restart on a different PE count,
// double in-memory checkpointing, failure injection and rollback recovery.

#include <gtest/gtest.h>

#include <cstdio>

#include "ft/checkpoint.hpp"
#include "ft/mem_checkpoint.hpp"
#include "runtime/charm.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;

struct Msg {
  int v = 0;
  void pup(pup::Er& p) { p | v; }
};

class Cell : public charm::ArrayElement<Cell, std::int32_t> {
 public:
  std::vector<double> data;
  int steps = 0;

  void init() {
    data.assign(64, static_cast<double>(index()));
  }
  void work(const Msg& m) {
    steps += m.v;
    for (auto& d : data) d += 1.0;
    charm::charge(1e-6);
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | data;
    p | steps;
  }
};

using charmtest::Harness;

Cell* find_cell(Runtime& rt, CollectionId col, std::int32_t ix, int* pe_out = nullptr) {
  for (int pe = 0; pe < rt.npes(); ++pe) {
    auto* f = rt.collection(col).find(pe, IndexTraits<std::int32_t>::encode(ix));
    if (f) {
      if (pe_out) *pe_out = pe;
      return static_cast<Cell*>(f);
    }
  }
  return nullptr;
}

const char* kCkptPath = "/tmp/charmlike_test.ckpt";

TEST(DiskCheckpoint, RestartOnDifferentPeCountPreservesState) {
  const int n = 24;
  {
    Harness h(6);
    auto arr = ArrayProxy<Cell>::create(h.rt);
    for (int i = 0; i < n; ++i) arr.seed(i, i % 6);
    bool ckpt_done = false;
    h.rt.on_pe(0, [&] {
      arr.broadcast<&Cell::init>();
      arr.broadcast<&Cell::work>(Msg{3});
      arr.broadcast<&Cell::work>(Msg{4});
      // Checkpoint at the step boundary: wait until the work has landed.
      h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
        ft::checkpoint_to_file(h.rt, kCkptPath,
                               Callback::to_function([&](ReductionResult&&) {
                                 ckpt_done = true;
                               }));
      }));
    });
    h.machine.run();
    ASSERT_TRUE(ckpt_done);
  }
  {
    // Restart on 4 PEs (original run used 6).
    Harness h(4);
    auto arr = ArrayProxy<Cell>::create(h.rt);
    const std::size_t restored = ft::restart_from_file(h.rt, kCkptPath);
    EXPECT_EQ(restored, static_cast<std::size_t>(n));
    EXPECT_EQ(h.rt.collection(arr.id()).total_elements, n);
    for (int i = 0; i < n; ++i) {
      Cell* c = find_cell(h.rt, arr.id(), i);
      ASSERT_NE(c, nullptr) << i;
      EXPECT_EQ(c->steps, 7);
      ASSERT_EQ(c->data.size(), 64u);
      EXPECT_EQ(c->data[0], static_cast<double>(i) + 2.0);
    }
    // Restarted elements are fully functional.
    h.rt.on_pe(0, [&] { arr.broadcast<&Cell::work>(Msg{1}); });
    h.machine.run();
    EXPECT_EQ(find_cell(h.rt, arr.id(), 0)->steps, 8);
  }
  std::remove(kCkptPath);
}

TEST(DiskCheckpoint, CheckpointTimeScalesWithDataPerPe) {
  auto ckpt_time = [](int npes) {
    Harness h(npes);
    auto arr = ArrayProxy<Cell>::create(h.rt);
    for (int i = 0; i < 64; ++i) arr.seed(i, i % npes);
    double t0 = 0, t1 = -1;
    h.rt.on_pe(0, [&] {
      arr.broadcast<&Cell::init>();
      h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
        t0 = charm::now();
        ft::checkpoint_to_file(h.rt, kCkptPath,
                               Callback::to_function([&](ReductionResult&&) {
                                 t1 = charm::now();
                               }));
      }));
    });
    h.machine.run();
    return t1 - t0;
  };
  // More PEs => less data per PE => faster parallel checkpoint (Fig 8 right).
  EXPECT_GT(ckpt_time(2), ckpt_time(16));
  std::remove(kCkptPath);
}

TEST(MemCheckpoint, CheckpointAndRecoverFromFailure) {
  Harness h(6);
  auto arr = ArrayProxy<Cell>::create(h.rt);
  for (int i = 0; i < 18; ++i) arr.seed(i, i % 6);
  ft::MemCheckpointer ckpt(h.rt);
  bool recovered = false;

  h.rt.on_pe(0, [&] {
    arr.broadcast<&Cell::init>();
    arr.broadcast<&Cell::work>(Msg{5});
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        // Progress AFTER the checkpoint: must be rolled back on recovery.
        arr.broadcast<&Cell::work>(Msg{100});
        h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
          ckpt.fail_and_recover(3, Callback::to_function([&](ReductionResult&&) {
            recovered = true;
          }));
        }));
      }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(recovered);
  EXPECT_GT(ckpt.checkpoint_bytes(), 0u);

  // Every element must exist and reflect the checkpointed state (steps == 5),
  // not the post-checkpoint progress.
  for (int i = 0; i < 18; ++i) {
    Cell* c = find_cell(h.rt, arr.id(), i);
    ASSERT_NE(c, nullptr) << i;
    EXPECT_EQ(c->steps, 5) << "element " << i << " was not rolled back";
  }
  // The recovered system is functional: run more work.
  h.machine.resume();
  h.rt.on_pe(0, [&] { arr.broadcast<&Cell::work>(Msg{1}); });
  h.machine.run();
  EXPECT_EQ(find_cell(h.rt, arr.id(), 7)->steps, 6);
}

TEST(MemCheckpoint, VictimElementsRestoredFromBuddy) {
  Harness h(4);
  auto arr = ArrayProxy<Cell>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i % 4);
  ft::MemCheckpointer ckpt(h.rt);
  bool recovered = false;
  std::vector<std::int32_t> victims_elements;
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Cell::init>();
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        for (auto& [ix, obj] : h.rt.collection(arr.id()).local(2).elems)
          victims_elements.push_back(IndexTraits<std::int32_t>::decode(ix));
        ckpt.fail_and_recover(2, Callback::to_function([&](ReductionResult&&) {
          recovered = true;
        }));
      }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(recovered);
  ASSERT_FALSE(victims_elements.empty());
  for (std::int32_t ix : victims_elements) {
    int pe = -1;
    Cell* c = find_cell(h.rt, arr.id(), ix, &pe);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(pe, 2) << "restored onto the replacement PE";
    EXPECT_EQ(c->data[0], static_cast<double>(ix));
  }
}

TEST(MemCheckpoint, FailWithoutCheckpointThrows) {
  Harness h(2);
  ft::MemCheckpointer ckpt(h.rt);
  EXPECT_THROW(ckpt.fail_and_recover(0, Callback::ignore()), std::logic_error);
}

TEST(MemCheckpoint, InMemoryFasterThanDisk) {
  // The motivation for double in-memory checkpointing (§III-B).
  Harness h(4);
  auto arr = ArrayProxy<Cell>::create(h.rt);
  for (int i = 0; i < 32; ++i) arr.seed(i, i % 4);
  ft::MemCheckpointer mem(h.rt);
  double t_mem = -1, t_disk = -1, t0 = 0;
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Cell::init>();
    t0 = charm::now();
    mem.checkpoint(Callback::to_function([&](ReductionResult&&) {
      t_mem = charm::now() - t0;
      const double t1 = charm::now();
      ft::checkpoint_to_file(h.rt, kCkptPath,
                             Callback::to_function([&, t1](ReductionResult&&) {
                               t_disk = charm::now() - t1;
                             }));
    }));
  });
  h.machine.run();
  ASSERT_GT(t_mem, 0);
  ASSERT_GT(t_disk, 0);
  EXPECT_LT(t_mem, t_disk);
  std::remove(kCkptPath);
}

TEST(MemCheckpoint, BackToBackFailuresCoalesceIntoOneRecovery) {
  // A second fail_and_recover before the first detection window closes must
  // extend the pending recovery, and both victims must come back in one
  // combined restore (each callback still fires).
  Harness h(6);
  auto arr = ArrayProxy<Cell>::create(h.rt);
  for (int i = 0; i < 18; ++i) arr.seed(i, i % 6);
  ft::MemCheckpointer ckpt(h.rt);
  int recovered = 0;
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Cell::init>();
    arr.broadcast<&Cell::work>(Msg{5});
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        ckpt.fail_and_recover(1, Callback::to_function([&](ReductionResult&&) {
          ++recovered;
        }));
        // Non-adjacent second victim, same detection window.
        ckpt.fail_and_recover(4, Callback::to_function([&](ReductionResult&&) {
          ++recovered;
        }));
        EXPECT_TRUE(ckpt.recovery_pending());
      }));
    }));
  });
  h.machine.run();
  EXPECT_EQ(recovered, 2);
  EXPECT_EQ(ckpt.recoveries_completed(), 1);
  ASSERT_EQ(ckpt.recovery_log().size(), 1u);
  EXPECT_EQ(ckpt.recovery_log()[0].victims, (std::vector<int>{1, 4}));
  for (int i = 0; i < 18; ++i) {
    Cell* c = find_cell(h.rt, arr.id(), i);
    ASSERT_NE(c, nullptr) << i;
    EXPECT_EQ(c->steps, 5);
  }
}

TEST(MemCheckpoint, VictimEqualBuddyOfPriorVictimRecoversAfterReReplication) {
  // PE 3 is the buddy holding PE 2's checkpoint copies.  After PE 2's
  // recovery completes, the lost double copies are re-replicated, so PE 3
  // failing next is still recoverable.
  Harness h(6);
  auto arr = ArrayProxy<Cell>::create(h.rt);
  for (int i = 0; i < 18; ++i) arr.seed(i, i % 6);
  ft::MemCheckpointer ckpt(h.rt);
  bool second_recovered = false;
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Cell::init>();
    arr.broadcast<&Cell::work>(Msg{5});
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        ckpt.fail_and_recover(2, Callback::to_function([&](ReductionResult&&) {
          ckpt.fail_and_recover(3, Callback::to_function([&](ReductionResult&&) {
            second_recovered = true;
          }));
        }));
      }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(second_recovered);
  EXPECT_EQ(ckpt.recoveries_completed(), 2);
  for (int i = 0; i < 18; ++i) {
    Cell* c = find_cell(h.rt, arr.id(), i);
    ASSERT_NE(c, nullptr) << i;
    EXPECT_EQ(c->steps, 5) << "element " << i << " not rolled back correctly";
  }
}

TEST(MemCheckpoint, SimultaneousAdjacentFailuresAreCleanlyUnrecoverable) {
  // Victim and its buddy in the same detection window: the only copy of the
  // first victim's state is gone.  Must be a clean error, not UB or a hang.
  Harness h(6);
  auto arr = ArrayProxy<Cell>::create(h.rt);
  for (int i = 0; i < 18; ++i) arr.seed(i, i % 6);
  ft::MemCheckpointer ckpt(h.rt);
  bool threw = false;
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Cell::init>();
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        ckpt.fail_and_recover(2, Callback::ignore());
        try {
          ckpt.fail_and_recover(3, Callback::ignore());
        } catch (const std::runtime_error&) {
          threw = true;
        }
      }));
    }));
  });
  h.machine.run();
  EXPECT_TRUE(threw);
}

// Parameterized: recovery works no matter which PE dies.
class FailAnyPe : public ::testing::TestWithParam<int> {};

TEST_P(FailAnyPe, RecoveryRestoresFullElementSet) {
  const int victim = GetParam();
  Harness h(5);
  auto arr = ArrayProxy<Cell>::create(h.rt);
  for (int i = 0; i < 20; ++i) arr.seed(i, i % 5);
  ft::MemCheckpointer ckpt(h.rt);
  bool recovered = false;
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Cell::init>();
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        ckpt.fail_and_recover(victim, Callback::to_function([&](ReductionResult&&) {
          recovered = true;
        }));
      }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(recovered);
  EXPECT_EQ(h.rt.collection(arr.id()).total_elements, 20);
  for (int i = 0; i < 20; ++i) EXPECT_NE(find_cell(h.rt, arr.id(), i), nullptr) << i;
}

INSTANTIATE_TEST_SUITE_P(Victims, FailAnyPe, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
