// Sorting library demo: the asynchronous histogram sort vs the synchronous
// multiway-merge baseline on the same data, with validation.

#include <cstdio>

#include "sort/sorting.hpp"

using namespace charm;

namespace {

double run_sort(bool hist, int npes, std::size_t keys_per_pe) {
  sim::MachineConfig cfg;
  cfg.npes = npes;
  sim::Machine machine(cfg);
  Runtime rt(machine);
  sortlib::Library lib(rt);
  lib.fill_random(7, keys_per_pe);
  double t0 = 0, t1 = -1;
  rt.on_pe(0, [&] {
    t0 = charm::now();
    auto cb = Callback::to_function([&](ReductionResult&&) {
      t1 = charm::now();
      rt.exit();
    });
    if (hist) {
      lib.hist_sort(cb);
    } else {
      lib.merge_sort(cb);
    }
  });
  machine.run();
  std::printf("%-10s P=%3d keys=%7llu sorted=%s  time=%8.3f ms\n",
              hist ? "histsort" : "mergesort", npes,
              static_cast<unsigned long long>(lib.total_keys()),
              lib.validate() ? "yes" : "NO!", (t1 - t0) * 1e3);
  return t1 - t0;
}

}  // namespace

int main() {
  std::printf("async histogram sort vs bulk-synchronous merge sort (root bottleneck):\n");
  for (int p : {4, 16, 64, 256}) {
    const double merge = run_sort(false, p, 2048);
    const double hist = run_sort(true, p, 2048);
    std::printf("           -> at P=%d, histsort is %.2fx faster\n", p, merge / hist);
  }
  return 0;
}
