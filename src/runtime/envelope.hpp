#pragma once
// Message envelope: everything the runtime needs to route an entry-method
// invocation to a (possibly migrating) chare.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/index.hpp"
#include "runtime/types.hpp"

namespace charm {

struct Envelope {
  enum class Kind : std::uint8_t {
    kPoint,   ///< entry-method invocation on one element
    kCreate,  ///< dynamic element insertion
  };

  Kind kind = Kind::kPoint;
  CollectionId col = -1;
  ObjIndex idx{};
  EntryId ep = -1;
  CreatorId creator = -1;
  int priority = kDefaultPriority;

  // Source identity: PE for cache updates, element for the LB comm graph.
  int src_pe = kInvalidPe;
  CollectionId src_col = -1;
  ObjIndex src_idx{};
  bool has_src_elem = false;

  int fwd_hops = 0;  ///< times this envelope was location-forwarded

  std::vector<std::byte> payload;

  /// Modeled fixed header footprint, also charged for header-only control
  /// and broadcast messages that never materialize an Envelope.
  static constexpr std::size_t kHeaderBytes = 48;

  /// Modeled wire footprint: payload plus the fixed header.
  std::size_t wire_size() const { return payload.size() + kHeaderBytes; }
};

}  // namespace charm
