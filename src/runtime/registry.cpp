#include "runtime/registry.hpp"

namespace charm {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

ChareTypeId Registry::add_type(ChareTypeInfo info) {
  types_.push_back(info);
  return static_cast<ChareTypeId>(types_.size() - 1);
}

EntryId Registry::add_entry(EntryInfo info) {
  entries_.push_back(info);
  return static_cast<EntryId>(entries_.size() - 1);
}

CreatorId Registry::add_creator(CreatorInfo info) {
  creators_.push_back(info);
  return static_cast<CreatorId>(creators_.size() - 1);
}

}  // namespace charm
