#pragma once
// Versioned, byte-deterministic JSON export of a stats::Report — the
// `BENCH_<fig>.json` files that record the perf trajectory.  The schema
// (DESIGN.md §6) has a fixed key order, sorted arrays, and canonical number
// formatting, so identical runs produce identical bytes; CI diffs them and
// `scripts/check_stats_schema.py` validates the shape.

#include <functional>
#include <string>
#include <vector>

#include "stats/report.hpp"

namespace stats {

inline constexpr const char* kSchemaName = "charmlike-stats";
inline constexpr int kSchemaVersion = 1;

/// One printed bench table (the series the paper plots).
struct SeriesTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;
};

/// Labels (col, ep) keys; ep == -1 covers broadcast_apply deliveries and
/// col == -1 the synthetic pure-runtime key.
using EntryLabeler = std::function<std::string(int col, int ep)>;

/// One (pattern x grain x P) cell of a taskbench overhead-surface sweep
/// (DESIGN.md §8).  The identity keys (pattern..seed) name the cell; the
/// rest are the measured surface: achieved vs ideal makespan and the derived
/// per-task overhead, plus message/byte counters for the cell's traffic.
struct TaskbenchCell {
  std::string pattern;    ///< stencil_1d / fft / tree / sweep / random
  std::string transport;  ///< "point" or "tram"
  int npes = 0;
  int width = 0;
  int steps = 0;
  double grain = 0;
  int payload_doubles = 0;
  int fanout = 0;
  std::uint64_t seed = 0;
  std::uint64_t tasks = 0;
  std::uint64_t edges = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double makespan = 0;
  double ideal = 0;
  double efficiency = 0;
  double overhead_per_task = 0;
  double tram_aggregation = 0;
};

/// One cell of the collectives micro-bench sweep (DESIGN.md §10).  The
/// identity keys (topology..payload_doubles) name the cell; the rest are the
/// measured cost of a broadcast → contribute → completion round under that
/// topology: virtual time per round plus the message/byte/partial-send
/// counters the spanning tree generates.
struct CollectivesCell {
  std::string topology;   ///< "flat" or "tree"
  int arity = 0;          ///< tree fanout k; 0 under flat
  int npes = 0;
  int elements = 0;
  int rounds = 0;
  int payload_doubles = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t partial_sends = 0;  ///< tree partial-combine messages
  double makespan = 0;
  double time_per_round = 0;
};

/// One live-introspection timeline sample (DESIGN.md §11); mirrors
/// introspect::Sample field-for-field so the exporter stays decoupled from
/// the monitor.  Cumulative fields are since-attach totals, `*_hwm` high
/// watermarks over the sample window, rates window deltas over the interval.
struct MetricsSample {
  double t = 0;
  double busy_max = 0;
  double busy_avg = 0;
  double lambda = 0;
  double busy = 0;
  double exec = 0;
  std::uint64_t execs = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t coll_msgs = 0;
  std::uint64_t coll_bytes = 0;
  double msg_rate = 0;
  double byte_rate = 0;
  std::uint64_t ready = 0;
  std::uint64_t ready_hwm = 0;
  std::uint64_t evq = 0;
  std::uint64_t evq_hwm = 0;
};

/// One decision-journal row (LB round, checkpoint, restore, failure,
/// shrink/expand) tagged onto the same timeline.
struct MetricsJournalRow {
  double t = 0;
  std::string kind;
  int aux = 0;
  double value = 0;
};

/// Live-metrics block; emitted as "metrics_interval"/"timeseries"/"journal"
/// sections only when `enabled` (so metrics-off output is byte-identical to
/// the pre-metrics schema).
struct MetricsMeta {
  bool enabled = false;
  double interval = 0;
  std::vector<MetricsSample> samples;
  std::vector<MetricsJournalRow> journal;
};

struct ExportMeta {
  std::string bench;  ///< binary name, e.g. "fig11_namd_profiles"
  bool smoke = false;
  std::vector<SeriesTable> series;
  std::vector<std::string> notes;
  /// Overhead-surface cells; emitted as a "taskbench" section when non-empty
  /// (only the taskbench bench fills this, so figure JSON is unchanged).
  std::vector<TaskbenchCell> taskbench;
  /// Collective-tree sweep cells; emitted as a "collectives" section when
  /// non-empty (only the collectives bench fills this).
  std::vector<CollectivesCell> collectives;
  /// Live-introspection timeline; emitted when metrics.enabled (--metrics).
  MetricsMeta metrics;
  EntryLabeler label;  ///< optional; default "col<c>.ep<e>" / "runtime"
};

std::string to_json(const Report& r, const ExportMeta& meta);

/// Returns false when the file cannot be written.
bool write_json_file(const Report& r, const ExportMeta& meta, const std::string& path);

}  // namespace stats
