#pragma once
// Double in-memory checkpoint and restart (§III-B; Zheng, Shi & Kale,
// FTC-Charm++, Cluster'04).
//
// CkStartMemCheckpoint: each PE PUPs its chares into its own memory AND into
// a buddy PE's memory.  On a process failure, the buddy's copies restore the
// failed PE's chares onto the replacement, and every chare rolls back to the
// last checkpoint; the application then continues.
//
// Failure injection discards the victim PE's chares and drops its queued
// messages; the same PE slot then plays the role of the replacement process
// (DESIGN.md §1).

#include <cstdint>
#include <vector>

#include "runtime/callback.hpp"
#include "runtime/runtime.hpp"

namespace charm::ft {

struct MemCkptParams {
  double pack_bw = 6.0e9;        ///< local PUP/copy bandwidth (B/s)
  double detect_delay = 10e-3;   ///< failure detection time before recovery (s)
  double barrier_count = 3.0;    ///< restart barriers (paper: "several")
};

class MemCheckpointer {
 public:
  explicit MemCheckpointer(Runtime& rt, MemCkptParams params = {});

  /// CkStartMemCheckpoint(callback).
  void checkpoint(Callback done);

  /// Kill PE `victim`, run the recovery protocol, roll every chare back to
  /// the last checkpoint, then invoke `done`.
  void fail_and_recover(int victim, Callback done);

  std::uint64_t checkpoint_bytes() const { return total_bytes_; }
  int checkpoints_taken() const { return checkpoints_; }

 private:
  struct Copy {
    CollectionId col = -1;
    ObjIndex idx{};
    int pe = 0;  ///< owner PE at checkpoint time
    std::vector<std::byte> bytes;
  };

  void restore_all(Callback done);

  Runtime& rt_;
  MemCkptParams params_;
  // local_[p]: copies of p's elements held in p's memory.
  // buddy_[b]: copies of ((b-1+P)%P)'s elements held in b's memory.
  std::vector<std::vector<Copy>> local_;
  std::vector<std::vector<Copy>> buddy_;
  std::uint64_t total_bytes_ = 0;
  int checkpoints_ = 0;
  int failed_pe_ = kInvalidPe;
  double recover_begin_ = 0;  ///< failure time, for the trace restore span
};

}  // namespace charm::ft
