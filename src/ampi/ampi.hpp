#pragma once
// Adaptive MPI (§II-D, §IV-D): MPI-style ranks as migratable user-level
// threads on top of the charmlike runtime.
//
//   ampi::World world(rt, /*nranks=*/64, [](ampi::Comm& comm) {
//     double dt = comm.allreduce(local_dt, charm::ReduceOp::kMin);
//     comm.send_value(right, 0, halo);
//     auto in = comm.recv_value<Halo>(left, 0);
//     comm.migrate();   // MPI_Migrate(): AtSync load balancing point
//   });
//   world.start(done_cb);
//
// Virtualization: run more ranks than PEs and the runtime overlaps their
// communication and computation; migrate() lets the LB framework move ranks.
// Rank state (the ULT stack) is handed over raw on migration — the
// single-process stand-in for isomalloc (DESIGN.md §1).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ampi/ult.hpp"
#include "runtime/charm.hpp"

namespace charm::ampi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

struct Options {
  std::size_t stack_bytes = 128 * 1024;
  /// Working-set cache model for charge_kernel (Fig 14; DESIGN.md §1):
  /// modeled aggregate cache per node and the slowdown when the working set
  /// spills out of it.
  double cache_bytes = 36e6;
  double miss_penalty = 1.5;
};

class Rank;

/// The handle rank code uses for communication (an MPI_COMM_WORLD stand-in).
class Comm {
 public:
  int rank() const;
  int size() const;

  void send(int dst, int tag, std::vector<std::byte> data);
  template <class T>
  void send_value(int dst, int tag, const T& v) {
    send(dst, tag, pup::to_bytes(v));
  }

  /// Blocking receive with kAnySource / kAnyTag wildcards.
  std::vector<std::byte> recv(int src, int tag, int* actual_src = nullptr,
                              int* actual_tag = nullptr);
  template <class T>
  T recv_value(int src, int tag) {
    T v{};
    pup::from_bytes(recv(src, tag), v);
    return v;
  }

  void barrier();
  double allreduce(double v, ReduceOp op);
  std::vector<double> allreduce(std::vector<double> v, ReduceOp op);

  /// MPI_Migrate(): hand control to the load balancer (AtSync semantics).
  void migrate();

  /// Charge compute work (virtual seconds at nominal frequency).
  void charge(double seconds);
  /// Charge a kernel with the working-set cache model: the effective cost is
  /// base * (1 + miss_penalty * miss_fraction(working_set)).
  void charge_kernel(double base_seconds, double working_set_bytes);

  double now() const;

 private:
  friend class Rank;
  explicit Comm(Rank* r) : r_(r) {}
  Rank* r_;
};

using MainFn = std::function<void(Comm&)>;

namespace detail {
struct WorldState {
  int nranks = 0;
  Options opts;
  MainFn main;
  int finished = 0;
  Callback on_complete;
  CollectionId col = -1;
};
}  // namespace detail

/// Driver-side world: creates the rank array and launches rank main functions.
class World {
 public:
  World(Runtime& rt, int nranks, MainFn main, Options opts = {});

  /// Launch every rank; `on_complete` fires after all rank mains return.
  void start(Callback on_complete = Callback::ignore());

  CollectionId collection() const { return state_->col; }
  int nranks() const { return state_->nranks; }
  /// PE a rank starts on (blocked mapping).
  int initial_pe(int rank) const;

 private:
  Runtime& rt_;
  std::shared_ptr<detail::WorldState> state_;
};

/// Message on the wire between ranks.
struct Wire {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> data;
  template <class P>
  void pup(P& p) {
    p | src;
    p | tag;
    p | data;
  }
};

struct StartMsg {
  int dummy = 0;
  template <class P>
  void pup(P& p) {
    p | dummy;
  }
};

/// The rank chare.  Public only because the registry needs the type; user
/// code interacts through Comm.
class Rank : public charm::ArrayElement<Rank, std::int32_t> {
 public:
  Rank() = default;
  Rank(std::shared_ptr<detail::WorldState> state);

  void begin(const StartMsg&);
  void deliver(const Wire& w);
  void redux_done(const ReductionResult& r);
  void resume_from_sync() override;
  std::size_t migration_bytes() const override;

  void pup(pup::Er& p) override;  // raw-move collection: never byte-migrated

 private:
  friend class Comm;

  void run_ult();
  std::optional<Wire> match(int src, int tag);

  std::shared_ptr<detail::WorldState> state_;
  std::unique_ptr<Ult> ult_;
  Comm comm_{this};
  std::deque<Wire> inbox_;
  bool waiting_recv_ = false;
  int want_src_ = kAnySource;
  int want_tag_ = kAnyTag;
  bool waiting_redux_ = false;
  ReductionResult redux_result_;
  bool waiting_resume_ = false;
};

}  // namespace charm::ampi
