#pragma once
// UniqueFn: a move-only replacement for std::function<void()> on the
// messaging hot path.
//
// Why not std::function?  Every message handler the runtime creates closes
// over an Envelope (~100 bytes).  std::function's small-buffer optimization
// tops out at two pointers, so each such closure costs one heap allocation at
// send time and one free at delivery — per message.  UniqueFn removes both:
//
//   * Inline storage of kInlineBytes (64): small closures (timer thunks,
//     control messages, driver lambdas) live inside the Event itself and are
//     moved by value when the event heap sifts.
//   * Larger closures are placed in fixed-size blocks drawn from a
//     thread-local free list (size classes 128 B through 2 KiB).  Blocks are
//     recycled when the closure is destroyed, so the steady state performs
//     zero heap allocations, and moving a boxed closure is a pointer swap —
//     heap sifts never copy a large closure.
//   * Move-only: closures may own their payload (an Envelope moved straight
//     into the capture) instead of sharing it through a shared_ptr box.
//
// The block cache is thread-local because the emulator is sequential; it
// survives Machine/Runtime teardown, so closures destroyed late (pending
// events in a stopped machine) can always return their block.

#include <cstddef>
#include <functional>  // std::bad_function_call
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sim {

namespace detail {

/// Recycling allocator for closure blocks: five size classes, LIFO free
/// lists, bounded retention.  Anything larger falls through to operator new.
class BlockCache {
 public:
  static constexpr std::size_t kNumClasses = 5;
  /// The two large classes exist for the typed same-PE send path, whose
  /// closures embed the message argument by value (zero-allocation guarantee
  /// covers payloads up to 1 KiB plus capture overhead).
  static constexpr std::size_t kClassBytes[kNumClasses] = {128, 256, 512, 1024, 2048};
  /// Retention bound per class.  A burst handler can put a few thousand
  /// closures in flight before the first one is destroyed, and the next
  /// burst should be served entirely from the cache.  The large classes
  /// retain fewer blocks to bound pinned memory (worst case pinned:
  /// 4096 * (128+256+512) + 2048 * (1024+2048) bytes ≈ 9.5 MiB).
  static constexpr std::size_t kMaxFreePerClass[kNumClasses] = {4096, 4096, 4096,
                                                               2048, 2048};

  static void* acquire(std::size_t bytes) {
    const int cls = class_of(bytes);
    if (cls < 0) return ::operator new(bytes);
    auto& list = instance().free_[static_cast<std::size_t>(cls)];
    if (!list.empty()) {
      void* p = list.back().release();
      list.pop_back();
      return p;
    }
    return ::operator new(kClassBytes[cls]);
  }

  static void release(void* p, std::size_t bytes) {
    const int cls = class_of(bytes);
    if (cls < 0) {
      ::operator delete(p);
      return;
    }
    auto& list = instance().free_[static_cast<std::size_t>(cls)];
    if (list.size() >= kMaxFreePerClass[static_cast<std::size_t>(cls)]) {
      ::operator delete(p);
      return;
    }
    list.emplace_back(p);
  }

  /// Blocks currently cached (test/diagnostic hook).
  static std::size_t cached_blocks() {
    std::size_t n = 0;
    for (const auto& l : instance().free_) n += l.size();
    return n;
  }

 private:
  struct OpDelete {
    void operator()(void* p) const { ::operator delete(p); }
  };
  using Block = std::unique_ptr<void, OpDelete>;

  static int class_of(std::size_t bytes) {
    for (int c = 0; c < static_cast<int>(kNumClasses); ++c)
      if (bytes <= kClassBytes[c]) return c;
    return -1;
  }
  static BlockCache& instance() {
    thread_local BlockCache cache;
    return cache;
  }

  std::vector<Block> free_[kNumClasses];
};

}  // namespace detail

class UniqueFn {
 public:
  /// Closures up to this size are stored inline in the UniqueFn itself.
  static constexpr std::size_t kInlineBytes = 64;

  UniqueFn() = default;
  UniqueFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, UniqueFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  UniqueFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      void* block = detail::BlockCache::acquire(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(f));
      boxed_ = block;
      ops_ = &boxed_ops<Fn>;
    }
  }

  UniqueFn(UniqueFn&& other) noexcept { steal(other); }

  UniqueFn& operator=(UniqueFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  UniqueFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  UniqueFn(const UniqueFn&) = delete;
  UniqueFn& operator=(const UniqueFn&) = delete;

  ~UniqueFn() { reset(); }

  void operator()() {
    if (ops_ == nullptr) throw std::bad_function_call();
    ops_->invoke(slot());
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the held closure (if any), returning boxed storage to the
  /// block cache; the wrapper becomes empty.
  void reset() noexcept {
    if (ops_ == nullptr) return;
    if (boxed_ != nullptr) {
      ops_->destroy(boxed_);
      detail::BlockCache::release(boxed_, ops_->size);
    } else {
      ops_->destroy(storage_);
    }
    ops_ = nullptr;
    boxed_ = nullptr;
  }

  /// True when the held closure lives in the inline buffer (test hook).
  bool is_inline() const { return ops_ != nullptr && boxed_ == nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void*);
    std::size_t size;
  };

  template <class Fn>
  static constexpr Ops inline_ops{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      sizeof(Fn)};

  template <class Fn>
  static constexpr Ops boxed_ops{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      /*relocate=*/nullptr,  // boxed closures move by pointer, never relocate
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      sizeof(Fn)};

  void* slot() { return boxed_ != nullptr ? boxed_ : static_cast<void*>(storage_); }

  void steal(UniqueFn& other) noexcept {
    ops_ = other.ops_;
    boxed_ = other.boxed_;
    if (ops_ != nullptr && boxed_ == nullptr)
      ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
    other.boxed_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
  void* boxed_ = nullptr;
};

}  // namespace sim
