file(REMOVE_RECURSE
  "libcharmlike.a"
)
