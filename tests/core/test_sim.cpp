// Machine emulator unit tests: event ordering, charging, priorities,
// frequency scaling, network delays, and determinism.

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace {

sim::MachineConfig cfg(int npes) {
  sim::MachineConfig c;
  c.npes = npes;
  return c;
}

TEST(Machine, PostAndRunExecutesHandlers) {
  sim::Machine m(cfg(2));
  int hits = 0;
  m.post(0, 0.0, [&] { ++hits; });
  m.post(1, 1.0, [&] { ++hits; });
  m.run();
  EXPECT_EQ(hits, 2);
  EXPECT_GE(m.time(), 1.0);
}

TEST(Machine, ChargeAdvancesPeClock) {
  sim::Machine m(cfg(1));
  m.post(0, 0.0, [&] { m.charge(1e-3); });
  m.run();
  EXPECT_GE(m.pe(0).clock(), 1e-3);
  EXPECT_GE(m.pe(0).busy_time(), 1e-3);
}

TEST(Machine, FrequencyScalesCharges) {
  sim::Machine a(cfg(1)), b(cfg(1));
  b.pe(0).set_freq(0.5);
  for (sim::Machine* m : {&a, &b}) {
    m->post(0, 0.0, [m] { m->charge(1e-3); });
    m->run();
  }
  // Half frequency => twice the virtual time for the same work.
  EXPECT_NEAR(b.pe(0).busy_time() - a.pe(0).busy_time(), a.pe(0).busy_time(), 1e-9);
}

TEST(Machine, BusyPeSerializesWork) {
  sim::Machine m(cfg(1));
  std::vector<double> starts;
  for (int i = 0; i < 3; ++i) {
    m.post(0, 0.0, [&] {
      starts.push_back(m.now());
      m.charge(1e-3);
    });
  }
  m.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_GE(starts[1], starts[0] + 1e-3);
  EXPECT_GE(starts[2], starts[1] + 1e-3);
}

TEST(Machine, PriorityOrdersReadyQueue) {
  sim::Machine m(cfg(1));
  std::vector<int> order;
  // First handler occupies the PE; the next two arrive while busy and must
  // run in priority order regardless of arrival order.
  m.post(0, 0.0, [&] { m.charge(1e-3); });
  m.post(0, 1e-6, [&] { order.push_back(1); }, /*priority=*/5);
  m.post(0, 2e-6, [&] { order.push_back(2); }, /*priority=*/-5);
  m.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // higher priority (lower value) first
  EXPECT_EQ(order[1], 1);
}

TEST(Machine, SendDelaysScaleWithSizeAndDistance) {
  sim::MachineConfig c = cfg(64);
  c.net.use_topology = true;
  sim::Machine m(c);
  double t_small = 0, t_big = 0;
  m.post(0, 0.0, [&] {
    m.send(63, 64, 0, [&] { t_small = m.now(); });
    m.send(63, 1 << 20, 0, [&] { t_big = m.now(); });
  });
  m.run();
  EXPECT_GT(t_small, 0);
  const double payload_time = (1 << 20) / c.net.bandwidth;
  EXPECT_GE(t_big, t_small + payload_time * 0.5);
}

TEST(Machine, SelfSendIsCheap) {
  sim::Machine m(cfg(4));
  double t_self = 0, t_remote = 0;
  m.post(0, 0.0, [&] {
    m.send(0, 64, 0, [&] { t_self = m.now(); });
    m.send(3, 64, 0, [&] { t_remote = m.now(); });
  });
  m.run();
  EXPECT_LT(t_self, t_remote);
}

TEST(Machine, StopHaltsProcessing) {
  sim::Machine m(cfg(1));
  int hits = 0;
  m.post(0, 0.0, [&] {
    ++hits;
    m.stop();
  });
  m.post(0, 1.0, [&] { ++hits; });
  m.run();
  EXPECT_EQ(hits, 1);
}

TEST(Machine, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Machine m(cfg(8));
    double final_t = 0;
    for (int i = 0; i < 8; ++i) {
      m.post(i, 0.0, [&m, i] {
        m.charge(1e-6 * (i + 1));
        m.send((i + 3) % 8, 128, 0, [&m] { m.charge(2e-6); });
      });
    }
    m.run();
    final_t = m.max_pe_clock();
    return final_t;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Machine, ResumeAfterStopContinues) {
  sim::Machine m(cfg(1));
  int hits = 0;
  m.post(0, 0.0, [&] {
    ++hits;
    m.stop();
  });
  m.post(0, 1.0, [&] { ++hits; });
  m.run();
  EXPECT_EQ(hits, 1);
  m.resume();
  m.run();
  EXPECT_EQ(hits, 2);
}

}  // namespace
