#pragma once
// Persistent, incrementally-maintained chare load database (DESIGN.md §13).
//
// The paper's §III-A framework works because the RTS maintains the load
// database *continuously*; this class is that database.  The LB manager feeds
// it O(1) events — element added/removed (seed, migration, destroy,
// checkpoint-restore extraction, shrink/expand rebuild) and per-AtSync load
// updates — and a strategy round reads a Stats snapshot in O(dirty) instead
// of re-walking and re-sorting every chare on every touched PE.
//
// Maintained state:
//  - stable slots (free-listed) holding each live element's identity, hosting
//    PE, and last synced round load; elements carry their slot id in a
//    transient, never-pup'd field;
//  - a dirty-slot set: only slots whose load/coords/migratability may have
//    changed since the last snapshot are re-read at the next one;
//  - per-hosting-PE buckets with a live raw-load sum (round statistics come
//    from these without any scan) plus cached completion sums in canonical
//    bucket order (exactly the per-PE partial sums the from-scratch strategy
//    paths accumulate, so snapshots are bit-identical to rebuilds);
//  - the canonical (col, idx)-ordered ChareInfo cache and a sorted-by-work
//    index over migratable chares, both repaired incrementally: membership
//    churn is batched and merged (no full re-sort) and the work index is
//    repaired by merging the re-ranked entries into the surviving run.
//
// Bit-identity contract: snapshot() must equal the old collect_stats rebuild
// byte-for-byte — same chare order, same FP work values, same aggregate
// accumulation order wherever a strategy can observe it.  The incremental-vs-
// rebuild oracle fuzz (tests/features/test_lb_incremental.cpp) enforces this.

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "lb/strategy.hpp"

namespace charm {
class ArrayElementBase;
}

namespace charm::lb {

class LoadDb {
 public:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kNoRank = 0xffffffffu;

  /// Deterministic event/maintenance counters (virtual-time simulation makes
  /// them reproducible across hosts; the ablation stats report them).
  struct Counters {
    std::int64_t adds = 0;
    std::int64_t removes = 0;
    std::int64_t load_updates = 0;
    std::int64_t snapshots = 0;
    std::int64_t structural_rebuilds = 0;  ///< snapshots with membership churn
    std::int64_t dirty_flushed = 0;        ///< slot reads across all snapshots
    std::int64_t index_merge_repairs = 0;  ///< work-index repaired by merge
    std::int64_t index_full_sorts = 0;     ///< repairs with no surviving run
    std::int64_t patched_copies = 0;       ///< snapshots patched into a recycled buffer
  };

  /// Registers a live element; O(1) amortized.  `elem` may be null (synthetic
  /// feeds: benchmarks, oracle fuzz) — then `coords`/`elem_migratable` are
  /// authoritative instead of being re-read from the element at snapshots.
  std::uint32_t add(CollectionId col, ObjIndex idx, int pe, double round_load,
                    bool elem_migratable, bool col_migratable,
                    const std::array<double, 3>& coords, const ArrayElementBase* elem);

  /// Unregisters a slot (migration departure, destroy, restore sweep); O(1).
  void remove(std::uint32_t slot);

  /// Records the element's new round load at its AtSync; O(1) plus marking
  /// the slot dirty.  A chare whose load (and, for live elements, coords and
  /// migratability) is bit-identical to the stored state is NOT dirtied —
  /// steady chares cost nothing at the next snapshot.  This is the
  /// per-element-per-round hot path, so the steady case stays inline.
  void update_load(std::uint32_t slot, double round_load) {
    const Hot& h = hot_[slot];
    ++counters_.load_updates;
    if (round_load == h.raw && h.elem == nullptr) return;
    update_load_dirty(slot, round_load);
  }

  std::int64_t size() const { return live_; }
  bool has_pending_membership() const { return membership_dirty_; }

  /// Round statistics for round_complete(): max/avg of per-PE raw load over
  /// active PEs, and average frequency-scaled work.  O(hosting PEs), no
  /// per-chare scan.  PEs hosting nothing contribute exactly 0.0, as the old
  /// dense scan saw them.
  struct RoundAggregates {
    double max_load = 0;
    double avg_load = 0;
    double avg_work = 0;
  };
  RoundAggregates round_aggregates(int active_pes, const SpeedMap& speed) const;

  /// Produces the strategy input: flushes membership churn and dirty slots,
  /// repairs the aggregates and the work index, and returns a self-contained
  /// Stats (chares in canonical order + valid aux block).  Cost O(churn +
  /// dirty + hosting PEs), not O(all chares) — except the total-work fold and
  /// the value copy into the Stats, which are inherently O(n).
  Stats snapshot(int target_pes, const SpeedMap& speed);

  /// Returns a consumed snapshot's buffers for reuse: the next snapshot()
  /// fills the recycled capacity instead of growing fresh vectors — and, when
  /// the buffer is verifiably last round's snapshot (generation tag) and no
  /// membership churn happened, patches only the changed chares instead of
  /// re-copying the whole array.  Purely a copy/allocation optimization —
  /// snapshots are value-identical either way.
  void recycle(Stats&& st) {
    scratch_gen_ = st.aux.valid ? st.aux.db_gen : 0;
    scratch_stats_ = std::move(st);
  }

  const Counters& counters() const { return counters_; }

 private:
  struct Bucket {
    double raw_sum = 0;      ///< live sum of member round loads (round stats)
    double done_all = 0;     ///< cached sum(work/speed), canonical bucket order
    double done_nonmig = 0;  ///< same, non-migratable members only
    bool work_stale = true;  ///< done_* need recomputation at next snapshot
    std::vector<std::uint32_t> ranks;  ///< member ranks, canonical order
  };

  /// Per-slot state the per-round hot paths touch: the last synced round load
  /// and the element pointer (null for synthetic feeds).  Packed 16 bytes per
  /// slot so the update_load sweep streams ~6x less memory than walking the
  /// full Slot records.
  struct Hot {
    double raw = 0;  ///< last synced round load (virtual seconds on the PE)
    const ArrayElementBase* elem = nullptr;
  };

  struct Slot {
    Bucket* bucket = nullptr;  ///< stable: map nodes don't move
    CollectionId col = -1;
    ObjIndex idx{};
    int pe = 0;
    std::uint32_t rank = kNoRank;  ///< position in cache_; kNoRank while pending
    std::array<double, 3> coords{};
    bool elem_migratable = true;
    bool col_migratable = true;
    bool present = false;
    bool pending = false;  ///< added since the last structural rebuild
    bool dirty = false;    ///< queued in dirty_
  };

  void update_load_dirty(std::uint32_t slot, double round_load);
  void mark_dirty(std::uint32_t id);
  void mark_repair(std::uint32_t rank);
  void structural_rebuild();
  void flush_speed_changes(const SpeedMap& speed);
  void flush_dirty(const SpeedMap& speed);
  void recompute_bucket_done(const SpeedMap& speed);
  void repair_desc_index(bool had_rebuild);

  std::vector<Slot> slots_;
  std::vector<Hot> hot_;  ///< parallel to slots_ (update_load fast path)
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> dirty_;        ///< slot ids, dedup'd via Slot::dirty
  std::vector<std::uint32_t> pending_add_;  ///< slot ids, dedup'd via Slot::pending
  std::int64_t live_ = 0;
  bool membership_dirty_ = false;

  /// Work-order index entry: packs the sort key with the rank so the repair
  /// passes stream sequentially instead of chasing cache_ for every compare.
  struct WorkEntry {
    double work = 0;
    std::uint32_t rank = 0;
  };

  std::vector<ChareInfo> cache_;            ///< canonical (col, idx) order
  // Packed mirrors of cache_[r].work / cache_[r].migratable, updated at every
  // write site so the O(n) folds (total work, bucket completion sums, index
  // key reads) stream 8/1 bytes per chare instead of the full ChareInfo.
  // Values are bit-identical to the cache by construction.
  std::vector<double> works_;               ///< parallel to cache_
  std::vector<unsigned char> mig_;          ///< parallel to cache_
  std::vector<std::uint32_t> rank_slot_;    ///< rank -> slot id (kNoSlot = tombstone)
  std::vector<WorkEntry> desc_index_;       ///< migratable, (work desc, rank asc)
  std::map<int, Bucket> pe_;                ///< hosting PEs only, ascending
  SpeedMap speed_;                          ///< speeds the cached works were computed with
  double total_work_ = 0;                   ///< canonical-order left fold over cache_

  // Scratch for snapshot passes (kept to avoid per-round allocation).
  std::vector<std::uint32_t> remap_;        ///< old rank -> new rank after a rebuild
  std::vector<std::uint32_t> repair_ranks_; ///< ranks whose index position changed
  std::vector<std::uint32_t> repair_mark_;  ///< epoch stamp per rank (dedupe)
  std::uint32_t repair_epoch_ = 0;
  std::vector<WorkEntry> repair_old_;       ///< marked entries' old index keys
  std::vector<WorkEntry> survivors_;        ///< index-repair: unchanged sorted run
  std::vector<WorkEntry> fresh_;            ///< index-repair: re-ranked entries
  std::vector<WorkEntry> merged_;           ///< index-repair: merge output (swapped in)
  std::vector<ChareInfo> cache_alt_;        ///< rebuild ping-pong buffer for cache_
  std::vector<double> works_alt_;           ///< rebuild ping-pong for works_
  std::vector<unsigned char> mig_alt_;      ///< rebuild ping-pong for mig_
  std::vector<std::uint32_t> rank_slot_alt_;   ///< rebuild ping-pong for rank_slot_
  std::vector<std::uint32_t> rebuild_adds_;    ///< rebuild: surviving pending adds
  std::vector<std::uint32_t> rebuild_fresh_;   ///< rebuild: new ranks to repair
  std::vector<std::uint32_t> changed_ranks_;   ///< chares rewritten this snapshot
  Stats scratch_stats_;                     ///< recycled snapshot buffers
  std::uint64_t snap_gen_ = 0;              ///< generation stamped into snapshots
  std::uint64_t scratch_gen_ = 0;           ///< scratch buffer's generation (0 = unknown)

  Counters counters_;
};

}  // namespace charm::lb
