// PHOLD example: parallel discrete event simulation with the YAWNS
// conservative protocol, with and without TRAM message aggregation.

#include <cstdio>

#include "miniapps/pdes/pdes.hpp"

using namespace charm;

int main() {
  for (const bool use_tram : {false, true}) {
    sim::MachineConfig cfg;
    cfg.npes = 16;
    sim::Machine machine(cfg);
    Runtime rt(machine);

    pdes::Params p;
    p.nlps = 16 * 128;
    p.initial_events_per_lp = 48;
    p.use_tram = use_tram;
    p.tram_buffer = 64;
    pdes::Engine eng(rt, p);

    rt.on_pe(0, [&] { eng.run_until(5.0, Callback::ignore()); });
    machine.run();

    std::printf("%-8s %6d LPs, %3d windows, %9llu events, rate %.2fM events/s, %llu msgs\n",
                use_tram ? "TRAM" : "direct", p.nlps, eng.windows(),
                static_cast<unsigned long long>(eng.total_executed()),
                static_cast<double>(eng.total_executed()) / machine.max_pe_clock() / 1e6,
                static_cast<unsigned long long>(rt.messages_sent()));
  }
  std::printf("(TRAM batches fine-grained events along the torus; fewer, bigger messages)\n");
  return 0;
}
