#pragma once
// The emulated parallel machine: P virtual PEs with virtual clocks, a global
// deterministic event list, per-PE prioritized ready queues, and an
// alpha/beta/per-hop network model over a 3-D torus.
//
// Execution model:
//   * A *message* is an opaque handler plus a payload size and a priority.
//   * Delivery: the message departs its source when the sending handler has
//     accumulated that much virtual work, transits the network
//     (latency + bytes/bandwidth + hops * per_hop), then waits in the
//     destination PE's priority queue until the PE is free.
//   * Handlers advance their PE's clock by calling charge(seconds); charges
//     are divided by the PE's current frequency scale, which is how DVFS,
//     cloud heterogeneity, and interference enter the model.
//
// The emulator is sequential and fully deterministic (see DESIGN.md §1 for
// why this substitution preserves the paper's scaling behaviour).

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/paged_table.hpp"
#include "sim/ready_queue.hpp"
#include "sim/topology.hpp"

namespace trace {
class Tracer;
}

namespace introspect {
class Monitor;
}

namespace sim {

class FaultInjector;
struct FaultRecord;

struct MachineConfig {
  int npes = 1;
  NetworkParams net{};
  int pes_per_chip = 4;  ///< grouping used by the power/thermal module
};

/// One emulated processing element.
class Pe {
 public:
  Time clock() const { return clock_; }
  /// Frequency scale: 1.0 = nominal.  Charged work is divided by this.
  double freq() const { return freq_; }
  void set_freq(double f) { freq_ = f; }
  /// Cumulative busy virtual time (for utilization/efficiency accounting).
  double busy_time() const { return busy_; }
  std::uint64_t executed() const { return executed_; }
  std::size_t queue_length() const { return ready_.size(); }
  /// True while the PE is quarantined by fault injection.
  bool failed() const { return failed_; }

  /// Host bytes held by this PE's ready queue (memory accounting only).
  std::size_t ready_memory_bytes() const { return ready_.memory_bytes(); }

 private:
  friend class Machine;

  Time clock_ = 0;
  double freq_ = 1.0;
  double busy_ = 0;
  std::uint64_t executed_ = 0;
  bool exec_pending_ = false;
  bool failed_ = false;
  ReadyQueue ready_;
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg);
  /// Tells an attached metrics monitor the machine is gone so a long-lived
  /// monitor never dereferences a destroyed machine on its next attach().
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int npes() const { return cfg_.npes; }
  /// Mutable PE access materializes the PE's page on first touch.
  Pe& pe(int i) { return pes_.ref(static_cast<std::size_t>(i)); }
  /// Const access never materializes: an untouched PE reads as the default
  /// state (clock 0, frequency 1.0, alive) — exactly what a dense table
  /// held before any event reached it.
  const Pe& pe(int i) const { return pes_.at_or_default(static_cast<std::size_t>(i)); }

  /// PEs whose state has materialized (first-touch census); untouched PEs
  /// cost zero bytes beyond one page pointer per 64 slots.
  std::size_t touched_pes() const { return pes_.touched(); }
  /// Visits materialized PEs in ascending order as (pe, const Pe&); untouched
  /// PEs hold default state (freq 1.0), so touched-only iteration suffices to
  /// collect every non-default speed without a dense O(P) walk.
  template <class F>
  void for_each_touched_pe(F&& f) const {
    pes_.for_each_touched(
        [&](std::size_t pe, const Pe& p) { f(static_cast<int>(pe), p); });
  }
  /// Host bytes resident in per-PE state (PE pages + ready-queue storage).
  std::size_t pe_state_bytes() const;
  /// Host bytes resident in the global event list (heap + slot arena).
  std::size_t event_queue_bytes() const { return queue_.memory_bytes(); }
  const Torus3D& topology() const { return topo_; }
  const NetworkModel& network() const { return net_; }
  const MachineConfig& config() const { return cfg_; }

  // ---- handler-context API -------------------------------------------------

  /// True while a handler is executing.
  bool in_handler() const { return ctx_.pe >= 0; }
  /// PE whose handler is currently executing (-1 outside handlers).
  int current_pe() const { return ctx_.pe; }
  /// Current virtual time: handler start + accumulated charges, or the global
  /// event time outside handlers.
  Time now() const { return in_handler() ? ctx_.start + ctx_.elapsed : time_; }

  /// Advance the executing PE's clock by `seconds` of nominal-frequency work.
  void charge(double seconds);

  /// Virtual time accumulated so far by the executing handler (0 outside).
  double handler_elapsed() const { return ctx_.elapsed; }

  /// Send a message from the executing PE (or, outside a handler, inject at
  /// the current global time from `src_override`).  Lower priority values are
  /// scheduled first at the destination.
  void send(int dst, std::size_t bytes, int priority, Handler fn,
            int src_override = -1);

  /// Deliver `fn` to `pe` at absolute virtual time `at` (timer/bootstrap).
  void post(int pe, Time at, Handler fn, int priority = 0);

  // ---- control ---------------------------------------------------------

  /// Process events until the queue drains or stop() is called.
  void run();
  /// Process at most one event; returns false when nothing remains.
  bool step();
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  /// Resets the stop flag so the machine can be driven again (phased runs).
  void resume() { stopped_ = false; }

  /// Global simulation time (time of the most recent event).
  Time time() const { return time_; }
  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.size(); }

  /// Max over PE clocks — "makespan" of everything executed so far.
  Time max_pe_clock() const;

  // ---- fault injection -------------------------------------------------

  /// Attaches a failure schedule (nullptr detaches).  The event loop consults
  /// it before each dispatch, so injections land between handler executions
  /// at their exact virtual timestamps.
  void set_fault_injector(FaultInjector* fi) { injector_ = fi; }
  FaultInjector* fault_injector() const { return injector_; }

  bool pe_failed(int pe) const {
    const Pe* p = pes_.probe(static_cast<std::size_t>(pe));
    return p != nullptr && p->failed_;
  }
  /// Quarantines `pe` immediately: queued messages are disposed per the
  /// injector's drop policy (kDrop when no injector is attached) and later
  /// arrivals are disposed on delivery.  `rec`, when given, accumulates
  /// disposal counts.  Normally driven by the injector, callable directly.
  void fail_pe(int pe, FaultRecord* rec = nullptr);
  /// Lifts the quarantine (the replacement process takes over the slot).
  void revive_pe(int pe);

  /// Messages disposed at failed PEs (machine level), by policy.
  std::uint64_t messages_dropped() const { return drops_; }
  std::uint64_t messages_redirected() const { return redirects_; }

  // ---- tracing ---------------------------------------------------------

  /// Attaches a trace log (nullptr detaches).  Recording never charges
  /// virtual time, so results are identical with tracing on or off; the cost
  /// when detached is one pointer test per event.
  void set_tracer(trace::Tracer* t) { tracer_ = t; }
  trace::Tracer* tracer() const { return tracer_; }

  // ---- live metrics ----------------------------------------------------

  /// Attaches an online metrics monitor (nullptr detaches).  Monitor hooks
  /// never charge virtual time — same contract as the tracer: results are
  /// identical with metrics on or off, and the detached cost is one pointer
  /// test per event.  Normally set via introspect::Monitor::attach().
  void set_metrics(introspect::Monitor* m) { metrics_ = m; }
  introspect::Monitor* metrics() const { return metrics_; }

 private:
  struct ExecCtx {
    int pe = -1;
    Time start = 0;
    double elapsed = 0;
  };

  void schedule_exec(int pe, Time not_before);
  std::uint64_t next_seq() { return seq_++; }
  void inject_failure();
  /// Returns true when the message was redirected to a live PE.
  bool dispose(int dead_pe, Time at, int priority, std::size_t bytes, Handler fn,
               FaultRecord* rec);

  MachineConfig cfg_;
  Torus3D topo_;
  NetworkModel net_;
  trace::Tracer* tracer_ = nullptr;
  introspect::Monitor* metrics_ = nullptr;
  FaultInjector* injector_ = nullptr;
  PagedTable<Pe> pes_;
  EventQueue queue_;
  /// Touched-PE threshold at which the event-list reservation grows next
  /// (population-driven sizing: capacity tracks live PEs, not configured P).
  std::size_t reserve_next_ = 0;
  ExecCtx ctx_;
  Time time_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t redirects_ = 0;
  bool stopped_ = false;
};

}  // namespace sim
