#pragma once
// Chare-type / entry-method / constructor registry.
//
// Charm++ generates remote-invocation stubs from .ci files; here the same
// metadata is produced by templates.  `entry_of<&Foo::bar>()` lazily assigns a
// stable EntryId and registers a type-erased invoker that unpacks the argument
// with PUP and calls the member function.

#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "pup/pup.hpp"
#include "runtime/types.hpp"

namespace charm {

class ArrayElementBase;

namespace detail {

template <class Mfp>
struct MfpTraits;

template <class C, class Arg>
struct MfpTraits<void (C::*)(const Arg&)> {
  using Chare = C;
  using Argument = Arg;
};

template <class C>
struct MfpTraits<void (C::*)()> {
  using Chare = C;
  using Argument = void;
};

}  // namespace detail

struct EntryInfo {
  ChareTypeId type = -1;
  void (*invoke)(ArrayElementBase*, pup::Unpacker&) = nullptr;
};

/// Typed entry invoker used by the same-PE fast path: downcasts and calls the
/// member function directly — no unpacker, no type erasure of the argument.
template <class Arg>
using DirectInvoker = void (*)(ArrayElementBase*, const Arg&);

struct CreatorInfo {
  ChareTypeId type = -1;
  ArrayElementBase* (*create)(pup::Unpacker&) = nullptr;
};

struct ChareTypeInfo {
  /// Default-construct an instance (used to rebuild migrated / restored
  /// elements before unpacking their state); null when not available.
  ArrayElementBase* (*create_default)() = nullptr;
};

class Registry {
 public:
  static Registry& instance();

  template <class C>
  static ChareTypeId type_of() {
    static const ChareTypeId id = instance().add_type(make_type_info<C>());
    return id;
  }

  template <auto Mfp>
  static EntryId entry_of() {
    using Traits = detail::MfpTraits<decltype(Mfp)>;
    static const EntryId id = instance().add_entry(
        EntryInfo{type_of<typename Traits::Chare>(), &invoke_entry<Mfp>});
    return id;
  }

  /// Companion to entry_of: the typed invoker for Mfp (argument-taking entry
  /// methods only — no-arg sends keep the packed path's empty payload).
  template <auto Mfp>
  static auto direct_invoker() {
    using Traits = detail::MfpTraits<decltype(Mfp)>;
    using Arg = typename Traits::Argument;
    return DirectInvoker<Arg>([](ArrayElementBase* obj, const Arg& arg) {
      (static_cast<typename Traits::Chare*>(obj)->*Mfp)(arg);
    });
  }

  template <class C, class Arg>
  static CreatorId creator_of() {
    static const CreatorId id =
        instance().add_creator(CreatorInfo{type_of<C>(), &create_from<C, Arg>});
    return id;
  }

  const EntryInfo& entry(EntryId id) const { return entries_.at(static_cast<std::size_t>(id)); }
  /// Optional display name (trace viewers); "" when never set.
  const std::string& entry_name(EntryId id) const;
  void set_entry_name(EntryId id, std::string name);
  /// Convenience: `Registry::name_entry<&Foo::bar>("Foo::bar")` labels the
  /// entry in trace output (registers it if needed).
  template <auto Mfp>
  static void name_entry(std::string name) {
    instance().set_entry_name(entry_of<Mfp>(), std::move(name));
  }
  const CreatorInfo& creator(CreatorId id) const {
    return creators_.at(static_cast<std::size_t>(id));
  }
  const ChareTypeInfo& type(ChareTypeId id) const {
    return types_.at(static_cast<std::size_t>(id));
  }

 private:
  template <auto Mfp>
  static void invoke_entry(ArrayElementBase* obj, pup::Unpacker& u) {
    using Traits = detail::MfpTraits<decltype(Mfp)>;
    auto* c = static_cast<typename Traits::Chare*>(obj);
    if constexpr (std::is_void_v<typename Traits::Argument>) {
      (void)u;
      (c->*Mfp)();
    } else {
      typename Traits::Argument arg{};
      u | arg;
      (c->*Mfp)(arg);
    }
  }

  template <class C, class Arg>
  static ArrayElementBase* create_from(pup::Unpacker& u) {
    if constexpr (std::is_void_v<Arg>) {
      (void)u;
      return new C();
    } else {
      Arg arg{};
      u | arg;
      return new C(arg);
    }
  }

  template <class C>
  static ChareTypeInfo make_type_info() {
    ChareTypeInfo info;
    if constexpr (std::is_default_constructible_v<C>) {
      info.create_default = []() -> ArrayElementBase* { return new C(); };
    }
    return info;
  }

  ChareTypeId add_type(ChareTypeInfo info);
  EntryId add_entry(EntryInfo info);
  CreatorId add_creator(CreatorInfo info);

  std::vector<ChareTypeInfo> types_;
  std::vector<EntryInfo> entries_;
  std::vector<CreatorInfo> creators_;
  std::vector<std::string> entry_names_;
};

}  // namespace charm
