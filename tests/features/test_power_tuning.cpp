// Power/thermal model, DVFS governor, and introspective control point tests.

#include <gtest/gtest.h>

#include "power/power_manager.hpp"
#include "power/thermal.hpp"
#include "runtime/charm.hpp"
#include "tuning/control_point.hpp"

namespace {

using namespace charm;

TEST(Thermal, HeatsUnderLoadCoolsWhenIdle) {
  power::ThermalParams tp;
  power::ThermalModel model(1, tp);
  const double t0 = model.temperature(0);
  for (int i = 0; i < 200; ++i) model.step(0, 0.1, 1.0, 1.0);
  const double hot = model.temperature(0);
  EXPECT_GT(hot, t0 + 5.0);
  for (int i = 0; i < 500; ++i) model.step(0, 0.1, 0.0, 1.0);
  EXPECT_LT(model.temperature(0), hot);
  EXPECT_NEAR(model.max_seen(), hot, 1.0);
}

TEST(Thermal, SteadyStateScalesWithFrequencyCubed) {
  power::ThermalParams tp;
  power::ThermalModel m_full(1, tp), m_half(1, tp);
  for (int i = 0; i < 2000; ++i) {
    m_full.step(0, 0.1, 1.0, 1.0);
    m_half.step(0, 0.1, 1.0, 0.6);
  }
  const double rise_full = m_full.temperature(0) - tp.ambient_c;
  const double rise_half = m_half.temperature(0) - tp.ambient_c;
  // Dynamic power at f=0.6 is ~0.22x; total rise must be much smaller.
  EXPECT_LT(rise_half, 0.55 * rise_full);
}

class Spinner : public charm::ArrayElement<Spinner, std::int32_t> {
 public:
  int remaining = 0;
  void go(const struct SpinMsg&);
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | remaining;
  }
};

struct SpinMsg {
  int iters = 0;
  void pup(pup::Er& p) { p | iters; }
};

void Spinner::go(const SpinMsg& m) {
  charm::charge(20e-3);
  if (m.iters > 1) {
    charm::ArrayProxy<Spinner> self(collection_id());
    self[index()].send<&Spinner::go>(SpinMsg{m.iters - 1});
  }
}

TEST(PowerManager, DvfsConstrainsTemperature) {
  auto run = [](power::Policy policy) {
    sim::Machine machine(sim::MachineConfig{4, {}, 4});
    Runtime rt(machine);
    auto arr = ArrayProxy<Spinner>::create(rt);
    for (int i = 0; i < 8; ++i) arr.seed(i, i % 4);
    power::ThermalParams tp;
    power::DvfsParams dp;
    dp.threshold_c = 50.0;
    power::Manager pm(rt, tp, dp, /*period=*/0.25);
    pm.start(policy);
    rt.on_pe(0, [&] { arr.broadcast<&Spinner::go>(SpinMsg{1500}); });
    machine.run();
    pm.stop();
    return std::pair<double, double>(pm.max_temp_seen(), machine.max_pe_clock());
  };
  auto [t_base, time_base] = run(power::Policy::kNone);
  auto [t_dvfs, time_dvfs] = run(power::Policy::kNaiveDvfs);
  EXPECT_GT(t_base, 55.0) << "base run should exceed the threshold";
  EXPECT_LT(t_dvfs, t_base);
  EXPECT_LE(t_dvfs, 54.0) << "DVFS should hold near the 50C threshold";
  EXPECT_GT(time_dvfs, time_base) << "throttling costs time (Fig 4's penalty)";
}

TEST(ControlPoint, RangeClamped) {
  tuning::ControlPoint cp("pipeline", 1, 64, 8);
  cp.set_value(1000);
  EXPECT_EQ(cp.value(), 64);
  cp.set_value(-3);
  EXPECT_EQ(cp.value(), 1);
  EXPECT_THROW(tuning::ControlPoint("bad", 10, 5, 7), std::invalid_argument);
}

double unimodal_metric(int v, int best) {
  // Synthetic U-shaped step time with minimum at `best`.
  const double x = std::log2(static_cast<double>(v)) - std::log2(static_cast<double>(best));
  return 1.0 + x * x;
}

class TunerSweep : public ::testing::TestWithParam<int> {};

TEST_P(TunerSweep, FindsNearOptimalValueOnUnimodalMetric) {
  const int best = GetParam();
  tuning::ControlPoint cp("k", 1, 256, 4);
  tuning::Tuner tuner(cp);
  for (int step = 0; step < 400 && !tuner.converged(); ++step) {
    tuner.report(unimodal_metric(cp.value(), best));
  }
  ASSERT_TRUE(tuner.converged());
  // Within a factor of 2 of the optimum on a log-scale U-curve.
  EXPECT_LE(unimodal_metric(tuner.best_value(), best), unimodal_metric(best * 4, best));
  EXPECT_EQ(cp.value(), tuner.best_value());
}

INSTANTIATE_TEST_SUITE_P(Optima, TunerSweep, ::testing::Values(1, 4, 16, 64, 256));

TEST(Tuner, StaysPutWhenInitialIsOptimal) {
  tuning::ControlPoint cp("k", 1, 64, 8);
  tuning::Tuner tuner(cp);
  for (int step = 0; step < 200 && !tuner.converged(); ++step)
    tuner.report(unimodal_metric(cp.value(), 8));
  ASSERT_TRUE(tuner.converged());
  EXPECT_GE(cp.value(), 4);
  EXPECT_LE(cp.value(), 16);
}

}  // namespace
