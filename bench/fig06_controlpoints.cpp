// Fig 6: the introspective control system tunes the number of pipeline
// messages in a ping benchmark until performance stabilizes.
//
// Two chares ping a large buffer back and forth; the buffer is split into k
// pipeline messages (a registered control point).  Few pipeline stages mean
// no overlap between transmission and the receiver's per-chunk processing;
// many stages drown in per-message overhead.  The tuner probes values of k,
// watching per-step time, and settles near the optimum.  We print the
// (step, k, time) trajectory the paper plots.

#include "bench_common.hpp"
#include "tuning/control_point.hpp"

namespace {

using namespace charm;

struct ChunkMsg {
  int step = 0;
  int chunk = 0;
  int nchunks = 0;
  std::vector<std::byte> data;
  void pup(pup::Er& p) {
    p | step;
    p | chunk;
    p | nchunks;
    p | data;
  }
};

constexpr std::size_t kBufferBytes = 1 << 20;
constexpr double kPerChunkWork = 60e-6;  // receiver-side processing per full buffer

class Pinger : public charm::ArrayElement<Pinger, std::int32_t> {
 public:
  int received = 0;
  static Callback step_done;

  void recv(const ChunkMsg& m) {
    // Process this chunk (work proportional to chunk size => overlappable).
    charm::charge(kPerChunkWork / m.nchunks);
    if (++received == m.nchunks) {
      received = 0;
      step_done.invoke(charm::Runtime::current(), charm::ReductionResult{});
    }
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | received;
  }
};

Callback Pinger::step_done;

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  using namespace charm;
  bench::header("Figure 6", "tuning pipeline message count in a ping benchmark");
  bench::columns({"step", "pipeline_k", "step_ms"});

  sim::Machine m(bench::machine_config(2));
  bench::attach_trace(m);
  Runtime rt(m);
  auto arr = ArrayProxy<Pinger>::create(rt);
  arr.seed(0, 0);
  arr.seed(1, 1);

  tuning::ControlPoint cp("pipeline_num", 1, 256, 2, tuning::EffectHint::kMoreParallelism);
  tuning::Tuner tuner(cp, {.warmup_steps = 1, .window_steps = 2, .improve_margin = 0.02});

  const int total_steps = bench::cap_steps(60, 8);
  int step = 0;
  double step_start = 0;

  std::function<void()> do_step = [&]() {
    step_start = rt.now();
    const int k = cp.value();
    ChunkMsg msg;
    msg.step = step;
    msg.nchunks = k;
    for (int c = 0; c < k; ++c) {
      msg.chunk = c;
      msg.data.assign(kBufferBytes / static_cast<std::size_t>(k), std::byte{0});
      arr[1].send<&Pinger::recv>(msg);
    }
  };

  Pinger::step_done = Callback::to_function([&](ReductionResult&&) {
    const double ms = (rt.now() - step_start) * 1e3;
    bench::row({static_cast<double>(step), static_cast<double>(cp.value()), ms});
    tuner.report(ms);
    if (++step < total_steps) {
      do_step();
    } else {
      rt.exit();
    }
  });

  rt.on_pe(0, [&] { do_step(); });
  m.run();

  std::printf("   tuner converged=%d best_k=%d best_step_ms=%.4f probes=%d\n",
              tuner.converged() ? 1 : 0, tuner.best_value(), tuner.best_metric(),
              tuner.probes());
  bench::note("paper shape: step time oscillates during probing, then stabilizes at the optimum");
  return bench::finish();
}
