# Empty dependencies file for micro_runtime.
# This may be replaced when dependencies are built.
