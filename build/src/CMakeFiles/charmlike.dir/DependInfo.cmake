
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ampi/ampi.cpp" "src/CMakeFiles/charmlike.dir/ampi/ampi.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/ampi/ampi.cpp.o.d"
  "/root/repo/src/ampi/ult.cpp" "src/CMakeFiles/charmlike.dir/ampi/ult.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/ampi/ult.cpp.o.d"
  "/root/repo/src/ft/checkpoint.cpp" "src/CMakeFiles/charmlike.dir/ft/checkpoint.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/ft/checkpoint.cpp.o.d"
  "/root/repo/src/ft/mem_checkpoint.cpp" "src/CMakeFiles/charmlike.dir/ft/mem_checkpoint.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/ft/mem_checkpoint.cpp.o.d"
  "/root/repo/src/lb/distributed_lb.cpp" "src/CMakeFiles/charmlike.dir/lb/distributed_lb.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/lb/distributed_lb.cpp.o.d"
  "/root/repo/src/lb/instrumentation.cpp" "src/CMakeFiles/charmlike.dir/lb/instrumentation.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/lb/instrumentation.cpp.o.d"
  "/root/repo/src/lb/manager.cpp" "src/CMakeFiles/charmlike.dir/lb/manager.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/lb/manager.cpp.o.d"
  "/root/repo/src/lb/meta_lb.cpp" "src/CMakeFiles/charmlike.dir/lb/meta_lb.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/lb/meta_lb.cpp.o.d"
  "/root/repo/src/lb/orb_lb.cpp" "src/CMakeFiles/charmlike.dir/lb/orb_lb.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/lb/orb_lb.cpp.o.d"
  "/root/repo/src/lb/strategies.cpp" "src/CMakeFiles/charmlike.dir/lb/strategies.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/lb/strategies.cpp.o.d"
  "/root/repo/src/malleability/malleability.cpp" "src/CMakeFiles/charmlike.dir/malleability/malleability.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/malleability/malleability.cpp.o.d"
  "/root/repo/src/miniapps/amr/amr.cpp" "src/CMakeFiles/charmlike.dir/miniapps/amr/amr.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/miniapps/amr/amr.cpp.o.d"
  "/root/repo/src/miniapps/barnes/barnes.cpp" "src/CMakeFiles/charmlike.dir/miniapps/barnes/barnes.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/miniapps/barnes/barnes.cpp.o.d"
  "/root/repo/src/miniapps/leanmd/leanmd.cpp" "src/CMakeFiles/charmlike.dir/miniapps/leanmd/leanmd.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/miniapps/leanmd/leanmd.cpp.o.d"
  "/root/repo/src/miniapps/lulesh/lulesh.cpp" "src/CMakeFiles/charmlike.dir/miniapps/lulesh/lulesh.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/miniapps/lulesh/lulesh.cpp.o.d"
  "/root/repo/src/miniapps/pdes/pdes.cpp" "src/CMakeFiles/charmlike.dir/miniapps/pdes/pdes.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/miniapps/pdes/pdes.cpp.o.d"
  "/root/repo/src/miniapps/stencil/stencil.cpp" "src/CMakeFiles/charmlike.dir/miniapps/stencil/stencil.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/miniapps/stencil/stencil.cpp.o.d"
  "/root/repo/src/power/power_manager.cpp" "src/CMakeFiles/charmlike.dir/power/power_manager.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/power/power_manager.cpp.o.d"
  "/root/repo/src/power/thermal.cpp" "src/CMakeFiles/charmlike.dir/power/thermal.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/power/thermal.cpp.o.d"
  "/root/repo/src/pup/pup.cpp" "src/CMakeFiles/charmlike.dir/pup/pup.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/pup/pup.cpp.o.d"
  "/root/repo/src/runtime/callback.cpp" "src/CMakeFiles/charmlike.dir/runtime/callback.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/runtime/callback.cpp.o.d"
  "/root/repo/src/runtime/collection.cpp" "src/CMakeFiles/charmlike.dir/runtime/collection.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/runtime/collection.cpp.o.d"
  "/root/repo/src/runtime/index.cpp" "src/CMakeFiles/charmlike.dir/runtime/index.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/runtime/index.cpp.o.d"
  "/root/repo/src/runtime/location.cpp" "src/CMakeFiles/charmlike.dir/runtime/location.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/runtime/location.cpp.o.d"
  "/root/repo/src/runtime/quiescence.cpp" "src/CMakeFiles/charmlike.dir/runtime/quiescence.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/runtime/quiescence.cpp.o.d"
  "/root/repo/src/runtime/reduction.cpp" "src/CMakeFiles/charmlike.dir/runtime/reduction.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/runtime/reduction.cpp.o.d"
  "/root/repo/src/runtime/registry.cpp" "src/CMakeFiles/charmlike.dir/runtime/registry.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/runtime/registry.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/charmlike.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/charmlike.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/charmlike.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/charmlike.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/charmlike.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/sim/topology.cpp.o.d"
  "/root/repo/src/sort/histsort.cpp" "src/CMakeFiles/charmlike.dir/sort/histsort.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/sort/histsort.cpp.o.d"
  "/root/repo/src/sort/mergesort.cpp" "src/CMakeFiles/charmlike.dir/sort/mergesort.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/sort/mergesort.cpp.o.d"
  "/root/repo/src/tram/tram.cpp" "src/CMakeFiles/charmlike.dir/tram/tram.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/tram/tram.cpp.o.d"
  "/root/repo/src/tuning/control_point.cpp" "src/CMakeFiles/charmlike.dir/tuning/control_point.cpp.o" "gcc" "src/CMakeFiles/charmlike.dir/tuning/control_point.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
