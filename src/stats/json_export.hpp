#pragma once
// Versioned, byte-deterministic JSON export of a stats::Report — the
// `BENCH_<fig>.json` files that record the perf trajectory.  The schema
// (DESIGN.md §6) has a fixed key order, sorted arrays, and canonical number
// formatting, so identical runs produce identical bytes; CI diffs them and
// `scripts/check_stats_schema.py` validates the shape.

#include <functional>
#include <string>
#include <vector>

#include "stats/report.hpp"

namespace stats {

inline constexpr const char* kSchemaName = "charmlike-stats";
inline constexpr int kSchemaVersion = 1;

/// One printed bench table (the series the paper plots).
struct SeriesTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;
};

/// Labels (col, ep) keys; ep == -1 covers broadcast_apply deliveries and
/// col == -1 the synthetic pure-runtime key.
using EntryLabeler = std::function<std::string(int col, int ep)>;

/// One (pattern x grain x P) cell of a taskbench overhead-surface sweep
/// (DESIGN.md §8).  The identity keys (pattern..seed) name the cell; the
/// rest are the measured surface: achieved vs ideal makespan and the derived
/// per-task overhead, plus message/byte counters for the cell's traffic.
struct TaskbenchCell {
  std::string pattern;    ///< stencil_1d / fft / tree / sweep / random
  std::string transport;  ///< "point" or "tram"
  int npes = 0;
  int width = 0;
  int steps = 0;
  double grain = 0;
  int payload_doubles = 0;
  int fanout = 0;
  std::uint64_t seed = 0;
  std::uint64_t tasks = 0;
  std::uint64_t edges = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double makespan = 0;
  double ideal = 0;
  double efficiency = 0;
  double overhead_per_task = 0;
  double tram_aggregation = 0;
};

/// One cell of the collectives micro-bench sweep (DESIGN.md §10).  The
/// identity keys (topology..payload_doubles) name the cell; the rest are the
/// measured cost of a broadcast → contribute → completion round under that
/// topology: virtual time per round plus the message/byte/partial-send
/// counters the spanning tree generates.
struct CollectivesCell {
  std::string topology;   ///< "flat" or "tree"
  int arity = 0;          ///< tree fanout k; 0 under flat
  int npes = 0;
  int elements = 0;
  int rounds = 0;
  int payload_doubles = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t partial_sends = 0;  ///< tree partial-combine messages
  double makespan = 0;
  double time_per_round = 0;
};

struct ExportMeta {
  std::string bench;  ///< binary name, e.g. "fig11_namd_profiles"
  bool smoke = false;
  std::vector<SeriesTable> series;
  std::vector<std::string> notes;
  /// Overhead-surface cells; emitted as a "taskbench" section when non-empty
  /// (only the taskbench bench fills this, so figure JSON is unchanged).
  std::vector<TaskbenchCell> taskbench;
  /// Collective-tree sweep cells; emitted as a "collectives" section when
  /// non-empty (only the collectives bench fills this).
  std::vector<CollectivesCell> collectives;
  EntryLabeler label;  ///< optional; default "col<c>.ep<e>" / "runtime"
};

std::string to_json(const Report& r, const ExportMeta& meta);

/// Returns false when the file cannot be written.
bool write_json_file(const Report& r, const ExportMeta& meta, const std::string& path);

}  // namespace stats
