#pragma once
// Chare base classes.
//
// Array elements derive from ArrayElement<Self, Ix>; groups (one element per
// PE, like Charm++ groups) derive from Group<Self>.  The base class carries
// the element's identity and exposes runtime services: reductions, AtSync
// load balancing, migration, and PUP for migration/checkpointing.

#include <array>
#include <cstdint>
#include <vector>

#include "pup/pup.hpp"
#include "runtime/callback.hpp"
#include "runtime/index.hpp"
#include "runtime/types.hpp"

namespace charm {

class Runtime;
class Collection;
namespace lb {
class Manager;
}

enum class ReduceOp : std::uint8_t { kSum, kMin, kMax };

class ArrayElementBase {
 public:
  virtual ~ArrayElementBase() = default;

  CollectionId collection_id() const { return col_; }
  ObjIndex raw_index() const { return idx_; }
  /// PE this element currently lives on.
  int pe() const { return pe_; }

  /// Serializes base bookkeeping; overriding classes must call the base.
  virtual void pup(pup::Er& p);

  /// Called on the destination PE after a migration completes.
  virtual void on_migrated() {}
  /// Called when the load balancer releases elements after an AtSync round.
  virtual void resume_from_sync() {}
  /// Spatial position used by ORB-style balancers.
  virtual std::array<double, 3> lb_coords() const { return {0.0, 0.0, 0.0}; }
  /// Modeled migration footprint override for elements whose live state is
  /// moved raw (AMPI user-level-thread stacks); 0 = use the PUP size.
  virtual std::size_t migration_bytes() const { return 0; }

  // ---- runtime services (defined in collection.cpp) ------------------------

  /// Contribute to the collection's current reduction.
  void contribute(std::vector<double> value, ReduceOp op, const Callback& cb);
  void contribute(double value, ReduceOp op, const Callback& cb);
  /// Count-only contribution (barrier across the collection).
  void contribute(const Callback& cb);
  /// Contribute an opaque chunk; the callback receives all chunks.
  void contribute_bytes(std::vector<std::byte> chunk, const Callback& cb);

  /// Request migration to `pe` (takes effect safely via the runtime).
  void migrate_to(int pe);

  /// AtSync load balancing: element is ready for a possible LB round; the
  /// runtime calls resume_from_sync() when the round completes.
  void at_sync();

  /// Excludes this element from load balancing migrations.
  void set_migratable(bool m) { migratable_ = m; }
  bool migratable() const { return migratable_; }

  /// Load accumulated since the last AtSync (virtual seconds).
  double measured_load() const { return lb_load_; }
  /// Load snapshot taken at the last AtSync — what the LB strategies see.
  double round_load() const { return lb_round_load_; }

 protected:
  Runtime& rt() const;

 private:
  friend class Runtime;
  friend class Collection;
  friend class lb::Manager;

  CollectionId col_ = -1;
  ObjIndex idx_{};
  int pe_ = kInvalidPe;
  bool migratable_ = true;
  double lb_load_ = 0;           ///< instrumented load since the last AtSync
  double lb_round_load_ = 0;     ///< snapshot taken at AtSync (strategy input)
  std::uint64_t redux_seq_ = 0;  ///< this element's next reduction number
  std::uint32_t epoch_ = 0;      ///< migration epoch (location-protocol ordering)
  /// Slot handle in the LB manager's load database.  Transient and
  /// PE-local by design: deliberately NOT pup'd (a migrated element gets a
  /// fresh slot on arrival), so wire bytes and virtual time are unchanged.
  std::uint32_t lb_slot_ = 0xffffffffu;
};

template <class Self, class Ix>
class ArrayElement : public ArrayElementBase {
 public:
  using IndexType = Ix;
  Ix index() const { return IndexTraits<Ix>::decode(raw_index()); }
};

/// Group base: one element per PE, indexed by PE id, never migrated.
template <class Self>
class Group : public ArrayElement<Self, std::int32_t> {
 public:
  int my_pe() const { return static_cast<int>(this->index()); }
};

}  // namespace charm
