#pragma once
// LULESH proxy on AMPI (§IV-D, Fig 14).
//
// A simplified Lagrangian-hydro stand-in with LULESH's performance-relevant
// structure: each MPI rank owns a cubic subdomain of elements; every
// iteration runs (1) a global min-allreduce for the time step, (2) halo
// exchange with up to six face neighbors, (3) element kernels whose cost is
// charged through AMPI's working-set cache model — so eight-way
// virtualization shrinks the per-rank working set below the modeled cache and
// speeds the kernels up, exactly the Fig 14 effect — and (4) MPI_Migrate()
// every few iterations so the LB framework can fix the region-based material
// imbalance LULESH models.
//
// The field update itself is a real relaxation sweep, so conservation is
// testable; the *cost* comes from the charge model (DESIGN.md §1).

#include <cstdint>
#include <functional>
#include <vector>

#include "ampi/ampi.hpp"

namespace charm::lulesh {

struct Config {
  int ranks_per_dim = 3;      ///< nranks = ranks_per_dim^3 (cubic, like LULESH)
  int elems_per_dim = 10;     ///< per-rank subdomain is elems^3
  int iterations = 20;
  int migrate_every = 5;      ///< MPI_Migrate() cadence (0 = never)
  double base_cost_per_elem = 60e-9;  ///< charged kernel seconds per element
  double bytes_per_elem = 1200;       ///< modeled working-set footprint
  /// LULESH-style region imbalance: ranks in the "heavy material" third of
  /// the domain cost this factor more.
  double region_factor = 1.0;
  std::uint64_t seed = 3;
};

struct Stats {
  double elapsed = 0;          ///< virtual seconds for all iterations
  double time_per_iter = 0;
  double checksum = 0;         ///< field checksum (determinism checks)
  std::uint64_t halo_messages = 0;
};

/// Runs the proxy on an existing runtime.  `virtualization` multiplies the
/// rank count per PE implicitly: nranks is fixed by the config; run the same
/// config on fewer PEs for higher virtualization.  `done` receives the stats.
void run(Runtime& rt, const Config& cfg, ampi::Options ampi_opts,
         std::function<void(const Stats&)> done);

/// The per-rank main function (exposed for tests).
void rank_main(ampi::Comm& comm, const Config& cfg, Stats* shared_stats);

}  // namespace charm::lulesh
