// AMPI tests: rank launch, blocking send/recv, wildcards, collectives,
// virtualization, migration via MPI_Migrate, and the cache cost model.

#include <gtest/gtest.h>

#include "ampi/ampi.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;
using ampi::Comm;

using charmtest::Harness;

TEST(Ampi, AllRanksRunAndComplete) {
  Harness h(4);
  int done_count = 0;
  bool completed = false;
  ampi::World world(h.rt, 16, [&](Comm& comm) {
    comm.charge(1e-6);
    ++done_count;
  });
  h.rt.on_pe(0, [&] {
    world.start(Callback::to_function([&](ReductionResult&&) { completed = true; }));
  });
  h.machine.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(done_count, 16);
}

TEST(Ampi, BlockingSendRecvRoundTrip) {
  Harness h(2);
  std::vector<double> received;
  ampi::World world(h.rt, 2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload{1.0, 2.0, 3.0};
      comm.send_value(1, /*tag=*/7, payload);
      // Wait for the echo.
      auto echoed = comm.recv_value<std::vector<double>>(1, 8);
      received = echoed;
    } else {
      auto v = comm.recv_value<std::vector<double>>(0, 7);
      for (auto& x : v) x *= 10;
      comm.send_value(0, 8, v);
    }
  });
  bool completed = false;
  h.rt.on_pe(0, [&] {
    world.start(Callback::to_function([&](ReductionResult&&) { completed = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(completed);
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[2], 30.0);
}

TEST(Ampi, WildcardRecvAnySource) {
  Harness h(2);
  std::vector<int> sources;
  ampi::World world(h.rt, 4, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        int src = -1;
        comm.recv(ampi::kAnySource, 5, &src);
        sources.push_back(src);
      }
    } else {
      comm.send_value(0, 5, comm.rank());
    }
  });
  bool completed = false;
  h.rt.on_pe(0, [&] {
    world.start(Callback::to_function([&](ReductionResult&&) { completed = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(completed);
  ASSERT_EQ(sources.size(), 3u);
  std::sort(sources.begin(), sources.end());
  EXPECT_EQ(sources, (std::vector<int>{1, 2, 3}));
}

TEST(Ampi, RecvBlocksUntilMessageArrives) {
  Harness h(2);
  double recv_time = -1, send_time = -1;
  ampi::World world(h.rt, 2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.charge(5e-3);  // delay the send by 5ms of compute
      send_time = comm.now();
      comm.send_value(1, 0, 42);
    } else {
      (void)comm.recv_value<int>(0, 0);
      recv_time = comm.now();
    }
  });
  h.rt.on_pe(0, [&] { world.start(); });
  h.machine.run();
  EXPECT_GE(recv_time, send_time);
  EXPECT_GE(recv_time, 5e-3);
}

TEST(Ampi, AllreduceAndBarrier) {
  Harness h(4);
  std::vector<double> sums(8, -1), mins(8, -1);
  ampi::World world(h.rt, 8, [&](Comm& comm) {
    const double r = static_cast<double>(comm.rank());
    sums[static_cast<std::size_t>(comm.rank())] = comm.allreduce(r, ReduceOp::kSum);
    mins[static_cast<std::size_t>(comm.rank())] = comm.allreduce(r + 5, ReduceOp::kMin);
    comm.barrier();
  });
  bool completed = false;
  h.rt.on_pe(0, [&] {
    world.start(Callback::to_function([&](ReductionResult&&) { completed = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(completed);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(sums[static_cast<std::size_t>(r)], 28.0);
    EXPECT_EQ(mins[static_cast<std::size_t>(r)], 5.0);
  }
}

TEST(Ampi, VirtualizationRunsMoreRanksThanPes) {
  Harness h(2);
  int count = 0;
  ampi::World world(h.rt, 32, [&](Comm& comm) {
    comm.barrier();
    comm.charge(1e-6);
    ++count;
  });
  bool completed = false;
  h.rt.on_pe(0, [&] {
    world.start(Callback::to_function([&](ReductionResult&&) { completed = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(completed);
  EXPECT_EQ(count, 32);
}

TEST(Ampi, MigrateRebalancesRanks) {
  Harness h(4);
  // Ranks 0..3 are 8x heavier; all ranks start blocked on PEs.
  ampi::World world(h.rt, 16, [&](Comm& comm) {
    for (int iter = 0; iter < 6; ++iter) {
      comm.charge(comm.rank() < 4 ? 8e-3 : 1e-3);
      comm.migrate();
    }
  });
  h.rt.lb().set_strategy(lb::make_greedy());
  h.rt.lb().set_period(2);
  bool completed = false;
  h.rt.on_pe(0, [&] {
    world.start(Callback::to_function([&](ReductionResult&&) { completed = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(completed);
  // The four heavy ranks started together on PE 0 (blocked mapping); after
  // balancing they must have spread out.
  int heavy_on_pe0 = 0;
  Collection& c = h.rt.collection(world.collection());
  for (auto& [ix, obj] : c.local(0).elems) {
    if (IndexTraits<std::int32_t>::decode(ix) < 4) ++heavy_on_pe0;
  }
  EXPECT_LE(heavy_on_pe0, 2);
  EXPECT_GE(h.rt.lb().lb_invocations(), 1);
}

TEST(Ampi, MigrationImprovesImbalancedMakespan) {
  auto run = [](bool lb) {
    Harness h(4);
    ampi::World world(h.rt, 16, [](Comm& comm) {
      for (int iter = 0; iter < 8; ++iter) {
        comm.charge(comm.rank() < 4 ? 8e-3 : 1e-3);
        comm.migrate();
      }
    });
    if (lb) {
      h.rt.lb().set_strategy(charm::lb::make_greedy());
      h.rt.lb().set_period(2);
    }
    h.rt.on_pe(0, [&] { world.start(); });
    h.machine.run();
    return h.machine.max_pe_clock();
  };
  EXPECT_LT(run(true), run(false) * 0.9);
}

TEST(Ampi, CacheModelPenalizesLargeWorkingSets) {
  Harness h(1);
  double t_small = -1, t_big = -1;
  ampi::Options opts;
  opts.cache_bytes = 1 << 20;
  ampi::World world(
      h.rt, 2,
      [&](Comm& comm) {
        const double t0 = comm.now();
        if (comm.rank() == 0) {
          comm.charge_kernel(1e-3, /*ws=*/1 << 18);  // fits in cache
          t_small = comm.now() - t0;
        } else {
          comm.charge_kernel(1e-3, /*ws=*/8 << 20);  // 8x the cache
          t_big = comm.now() - t0;
        }
      },
      opts);
  ampi::World world2(h.rt, 1, [](Comm&) {});  // ensure multiple worlds coexist
  h.rt.on_pe(0, [&] {
    world.start();
    world2.start();
  });
  h.machine.run();
  EXPECT_GT(t_big, t_small * 1.5);
}

}  // namespace
