// Jacobi 2-D with AtSync load balancing and a mid-run "interfering VM":
// demonstrates over-decomposition + migratability fixing an external slowdown
// (the Fig 16 scenario as a minimal example).

#include <cstdio>

#include "miniapps/stencil/stencil.hpp"

using namespace charm;

int main() {
  sim::MachineConfig cfg;
  cfg.npes = 8;
  sim::Machine machine(cfg);
  Runtime rt(machine);

  stencil::Params p;
  p.grid = 256;
  p.tiles_x = p.tiles_y = 8;  // 64 tiles over 8 PEs: 8x over-decomposition
  p.cell_cost = 20e-9;
  stencil::Sim sim(rt, p);

  rt.lb().set_strategy(lb::make_greedy());
  rt.lb().set_period(10);

  std::printf("running 30 clean iterations, then an interfering VM lands on PE 2...\n");
  rt.on_pe(0, [&] {
    sim.run(30, Callback::to_function([&](ReductionResult&&) {
      machine.pe(2).set_freq(0.4);  // external interference
      sim.run(60, Callback::to_function([&](ReductionResult&& r) {
        std::printf("finished; final residual-delta %.3e\n", r.num(0));
        rt.exit();
      }));
    }));
  });
  machine.run();

  // Show the iteration-time trace around the interference + LB points.
  double prev = 0;
  int iter = 0;
  std::printf("%8s %14s %6s %6s\n", "iter", "step_ms", "LB?", "migs");
  for (const auto& r : rt.lb().history()) {
    ++iter;
    const double dt = (r.completed_at - prev) * 1e3;
    prev = r.completed_at;
    if (iter % 5 == 0 || r.did_lb)
      std::printf("%8d %14.4f %6s %6d\n", iter, dt, r.did_lb ? "yes" : "", r.migrations);
  }
  std::printf("tiles per PE after balancing: ");
  for (int pe = 0; pe < 8; ++pe)
    std::printf("%zu ", rt.collection(sim.tiles().id()).local(pe).elems.size());
  std::printf("\n(PE 2 runs at 0.4x, so the balancer leaves it fewer tiles)\n");
  return 0;
}
