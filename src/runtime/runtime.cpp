#include "runtime/runtime.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "lb/manager.hpp"
#include "runtime/spanning_tree.hpp"
#include "trace/trace.hpp"

namespace charm {

Runtime* Runtime::current_ = nullptr;

Runtime::Runtime(sim::Machine& machine, RuntimeConfig cfg)
    : machine_(machine),
      cfg_(cfg),
      dead_(static_cast<std::size_t>(machine.npes())),
      active_pes_(machine.npes()) {
  if (current_ != nullptr)
    throw std::logic_error("charm::Runtime: only one runtime may exist at a time");
  current_ = this;
  lb_ = std::make_unique<LbManager>(*this);
}

Runtime::~Runtime() { current_ = nullptr; }

Runtime& Runtime::current() {
  assert(current_ != nullptr && "no charm::Runtime active");
  return *current_;
}

// ---- collections -------------------------------------------------------------

CollectionId Runtime::create_collection(ChareTypeId type, bool is_group) {
  auto c = std::make_unique<Collection>(npes());
  c->id = static_cast<CollectionId>(collections_.size());
  c->type = type;
  c->is_group = is_group;
  if (is_group) {
    c->migratable = false;
    c->checkpointable = false;
  }
  collections_.push_back(std::move(c));
  return collections_.back()->id;
}

void Runtime::seed_element(CollectionId col, ObjIndex idx,
                           std::unique_ptr<ArrayElementBase> obj, int pe) {
  Collection& c = collection(col);
  obj->col_ = col;
  obj->idx_ = idx;
  obj->pe_ = pe;
  obj->epoch_ = 1;
  obj->redux_seq_ = std::max(obj->redux_seq_, c.redux_floor);
  if (c.is_group) obj->migratable_ = false;
  ArrayElementBase* raw = obj.get();
  c.local(pe).elems[idx] = std::move(obj);
  ++c.total_elements;
  lb_->on_element_added(c, *raw);
  if (!c.is_group) {
    HomeRecord& r = c.local(home_pe(idx)).home[idx];
    r.location = pe;
    r.arrived_epoch = 1;
    r.in_transit = false;
  }
}

void Runtime::insert_element(CollectionId col, ObjIndex idx, CreatorId creator,
                             std::vector<std::byte> ctor_payload, int pe_hint,
                             int priority) {
  Envelope env;
  env.kind = Envelope::Kind::kCreate;
  env.col = col;
  env.idx = idx;
  env.creator = creator;
  env.priority = priority;
  env.payload = std::move(ctor_payload);
  env.src_pe = machine_.in_handler() ? machine_.current_pe() : kInvalidPe;
  int dst = pe_hint != kInvalidPe ? pe_hint : home_pe(idx);
  launch_envelope(std::move(env), dst);
}

void Runtime::destroy_self() {
  if (exec_elem_ == nullptr)
    throw std::logic_error("destroy_self outside an element handler");
  exec_destroy_requested_ = true;
}

// ---- messaging -----------------------------------------------------------------

void Runtime::launch_envelope(Envelope env, int dst, bool count) {
  if (count) ++outstanding_;
  ++msgs_sent_;
  const std::size_t wire = env.wire_size();
  bytes_sent_ += wire;
  const int prio = env.priority;
  // The envelope moves straight into the handler closure — no shared_ptr
  // box, no per-message allocation (sim::UniqueFn stores the closure in a
  // recycled block).
  machine_.send(
      dst, wire, prio,
      [this, dst, env = std::move(env)]() mutable {
        if (pe_alive(dst)) {
          on_envelope(std::move(env));
        } else {
          release_payload(std::move(env.payload));
        }
        note_message_done();
      },
      /*src_override=*/0);
}

int Runtime::route_point(Collection& c, const ObjIndex& idx, int src_pe) {
  if (c.is_group) return static_cast<int>(IndexTraits<std::int32_t>::decode(idx));
  const int sp = src_pe >= 0 ? src_pe : 0;
  // Probing keeps routing from a never-touched source PE zero-byte (find()
  // already probes; the cache lookup must not materialize either).
  if (const PeLocal* pl = c.local_if(sp); pl != nullptr) {
    if (pl->elems.find(idx) != pl->elems.end()) return sp;
    auto it = pl->loc_cache.find(idx);
    if (it != pl->loc_cache.end()) return it->second;
  }
  return home_pe(idx);
}

void Runtime::send_point_to(CollectionId col, ObjIndex idx, EntryId ep,
                            std::vector<std::byte> payload, int priority,
                            int src_pe, int dst) {
  Envelope env;
  env.kind = Envelope::Kind::kPoint;
  env.col = col;
  env.idx = idx;
  env.ep = ep;
  env.priority = priority;
  env.payload = std::move(payload);
  env.src_pe = src_pe;
  if (exec_elem_ != nullptr) {
    env.src_col = exec_elem_->col_;
    env.src_idx = exec_elem_->idx_;
    env.has_src_elem = true;
  }
  launch_envelope(std::move(env), dst);
}

void Runtime::send_point(CollectionId col, ObjIndex idx, EntryId ep,
                         std::vector<std::byte> payload, int priority) {
  Collection& c = collection(col);
  const int src_pe = machine_.in_handler() ? machine_.current_pe() : kInvalidPe;
  const int dst = route_point(c, idx, src_pe);
  send_point_to(col, idx, ep, std::move(payload), priority, src_pe, dst);
}

void Runtime::typed_miss(CollectionId col, ObjIndex idx, EntryId ep, int priority,
                         std::vector<std::byte> payload, CollectionId src_col,
                         ObjIndex src_idx, bool has_src, int pe) {
  Envelope env;
  env.kind = Envelope::Kind::kPoint;
  env.col = col;
  env.idx = idx;
  env.ep = ep;
  env.priority = priority;
  env.payload = std::move(payload);
  env.src_pe = pe;  // the typed slot only exists when sender == destination
  env.src_col = src_col;
  env.src_idx = src_idx;
  env.has_src_elem = has_src;
  handle_point_miss(std::move(env), pe);
}

void Runtime::on_envelope(Envelope env) {
  const int pe = machine_.current_pe();
  Collection& c = collection(env.col);

  if (env.kind == Envelope::Kind::kCreate) {
    const CreatorInfo& info = Registry::instance().creator(env.creator);
    pup::Unpacker u(env.payload);
    std::unique_ptr<ArrayElementBase> obj(info.create(u));
    charge(cfg_.create_cost);
    obj->epoch_ = 1;
    obj->redux_seq_ = std::max(obj->redux_seq_, c.redux_floor);
    ++c.total_elements;
    release_payload(std::move(env.payload));
    install_element(env.col, env.idx, std::move(obj), pe, 1);
    return;
  }

  ArrayElementBase* elem = c.find(pe, env.idx);
  if (elem != nullptr) {
    deliver_here(std::move(env), pe);
  } else {
    handle_point_miss(std::move(env), pe);
  }
}

void Runtime::deliver_here(Envelope env, int pe) {
  Collection& c = collection(env.col);
  ArrayElementBase* elem = c.find(pe, env.idx);
  assert(elem != nullptr);

  const EntryInfo& einfo = Registry::instance().entry(env.ep);
  pup::Unpacker u(env.payload);

  ExecFrame f = begin_exec(*elem);
  const double t0 = machine_.handler_elapsed();
  einfo.invoke(elem, u);
  const double dt = machine_.handler_elapsed() - t0;
  elem->lb_load_ += dt;
  if (trace::Tracer* tr = machine_.tracer()) {
    const double end = machine_.now();
    tr->entry(pe, env.col, env.ep, end - dt, end);
  }
  if (introspect::Monitor* mon = machine_.metrics())
    mon->on_entry(pe, env.col, env.ep, dt);

  // The payload was fully consumed by the entry invocation above; recycle
  // its capacity before the (rare) destroy/migrate epilogue.
  release_payload(std::move(env.payload));
  end_exec(f, env.col, env.idx, pe);
}

void Runtime::deliver_local(Collection& c, ArrayElementBase& elem, EntryId ep,
                            const std::byte* data, std::size_t size) {
  const EntryInfo& einfo = Registry::instance().entry(ep);
  pup::Unpacker u(data, size);

  const CollectionId col = elem.col_;
  const ObjIndex idx = elem.idx_;
  const int pe = elem.pe_;

  ExecFrame f = begin_exec(elem);
  const double t0 = machine_.handler_elapsed();
  einfo.invoke(&elem, u);
  const double dt = machine_.handler_elapsed() - t0;
  elem.lb_load_ += dt;
  if (trace::Tracer* tr = machine_.tracer()) {
    const double end = machine_.now();
    tr->entry(pe, col, ep, end - dt, end);
  }
  if (introspect::Monitor* mon = machine_.metrics()) mon->on_entry(pe, col, ep, dt);
  end_exec(f, col, idx, pe);
  (void)c;
}

void Runtime::broadcast(CollectionId col, EntryId ep, std::vector<std::byte> payload,
                        int priority) {
  auto pl = std::make_shared<const std::vector<std::byte>>(std::move(payload));
  const int root = machine_.in_handler() ? machine_.current_pe() : 0;
  broadcast_tree_leg(col, ep, pl, priority, root, 0);
}

void Runtime::broadcast_tree_leg(CollectionId col, EntryId ep,
                                 std::shared_ptr<const std::vector<std::byte>> payload,
                                 int priority, int root, int relative_rank) {
  const int abs = (root + relative_rank) % active_pes_;
  const std::size_t wire = payload->size() + Envelope::kHeaderBytes;
  ++outstanding_;
  ++msgs_sent_;
  bytes_sent_ += wire;
  if (introspect::Monitor* mon = machine_.metrics()) mon->on_collective(wire);
  machine_.send(
      abs, wire, priority,
      [this, col, ep, payload, priority, root, relative_rank, abs]() {
        if (pe_alive(abs)) {
          // Forward down the spanning tree before local delivery so subtree
          // sends overlap with this PE's delivery work.
          broadcast_forward(col, ep, payload, priority, root, relative_rank);
          Collection& c = collection(col);
          // A PE with no block for this collection hosts no elements; the
          // broadcast leg still forwards (above) but delivers to nothing, so
          // probing preserves behaviour while keeping untouched PEs unpaged.
          if (PeLocal* pl = c.local_if(abs); pl != nullptr) {
            std::vector<ObjIndex> snapshot;
            snapshot.reserve(pl->elems.size());
            for (const auto& [ix, unused] : pl->elems) snapshot.push_back(ix);
            for (const ObjIndex& ix : snapshot) {
              ArrayElementBase* e = c.find(abs, ix);
              if (e == nullptr) continue;
              charge(cfg_.deliver_cost);
              deliver_local(c, *e, ep, *payload);
            }
          }
        }
        note_message_done();
      },
      /*src_override=*/0);
}

void Runtime::broadcast_forward(
    CollectionId col, EntryId ep,
    const std::shared_ptr<const std::vector<std::byte>>& payload, int priority,
    int root, int relative_rank) {
  if (cfg_.collectives == CollectiveTopology::kTree) {
    // Tree mode fans down the collective tree (arity = tree_fanout) and
    // reroutes around dead children: the sender skips a dead child and
    // descends directly to its children, so every live PE still receives
    // exactly one leg.
    const SpanningTree tree(active_pes_, root, cfg_.tree_fanout);
    for (int i = 1; i <= tree.arity; ++i) {
      const long child = tree.child(relative_rank, i);
      if (child >= active_pes_) continue;
      const int c = static_cast<int>(child);
      if (pe_alive(tree.abs(c))) {
        broadcast_tree_leg(col, ep, payload, priority, root, c);
      } else {
        broadcast_forward(col, ep, payload, priority, root, c);
      }
    }
    return;
  }
  // Flat (seed) behavior: send to every in-range child; a dead child drops
  // the leg — and its subtree — at delivery time.
  for (int i = 1; i <= cfg_.bcast_fanout; ++i) {
    const int child = relative_rank * cfg_.bcast_fanout + i;
    if (child < active_pes_) broadcast_tree_leg(col, ep, payload, priority, root, child);
  }
}

void Runtime::broadcast_apply(CollectionId col, std::function<void(ArrayElementBase&)> fn,
                              int priority) {
  auto shared_fn = std::make_shared<std::function<void(ArrayElementBase&)>>(std::move(fn));
  const int root = machine_.in_handler() ? machine_.current_pe() : 0;
  broadcast_apply_leg(col, shared_fn, priority, root, 0);
}

void Runtime::broadcast_apply_leg(
    CollectionId col, std::shared_ptr<std::function<void(ArrayElementBase&)>> fn,
    int priority, int root, int relative_rank) {
  const int abs = (root + relative_rank) % active_pes_;
  ++outstanding_;
  ++msgs_sent_;
  bytes_sent_ += Envelope::kHeaderBytes;
  if (introspect::Monitor* mon = machine_.metrics())
    mon->on_collective(Envelope::kHeaderBytes);
  machine_.send(
      abs, Envelope::kHeaderBytes, priority,
      [this, col, fn, priority, root, relative_rank, abs]() {
        if (pe_alive(abs)) {
          broadcast_apply_forward(col, fn, priority, root, relative_rank);
          Collection& c = collection(col);
          std::vector<ObjIndex> snapshot;
          if (PeLocal* pl = c.local_if(abs); pl != nullptr) {
            snapshot.reserve(pl->elems.size());
            for (const auto& [ix, unused] : pl->elems) snapshot.push_back(ix);
          }
          for (const ObjIndex& ix : snapshot) {
            ArrayElementBase* e = c.find(abs, ix);
            if (e == nullptr) continue;
            charge(cfg_.deliver_cost);
            // Instrument like any delivery: work done in resume_from_sync
            // must show up in the next round's LB measurements.
            const double t0 = machine_.handler_elapsed();
            (*fn)(*e);
            const double dt = machine_.handler_elapsed() - t0;
            e->lb_load_ += dt;
            if (trace::Tracer* tr = machine_.tracer()) {
              const double end = machine_.now();
              tr->entry(abs, col, /*ep=*/-1, end - dt, end);
            }
            if (introspect::Monitor* mon = machine_.metrics())
              mon->on_entry(abs, col, /*ep=*/-1, dt);
          }
        }
        note_message_done();
      },
      /*src_override=*/0);
}

void Runtime::broadcast_apply_forward(
    CollectionId col,
    const std::shared_ptr<std::function<void(ArrayElementBase&)>>& fn,
    int priority, int root, int relative_rank) {
  if (cfg_.collectives == CollectiveTopology::kTree) {
    const SpanningTree tree(active_pes_, root, cfg_.tree_fanout);
    for (int i = 1; i <= tree.arity; ++i) {
      const long child = tree.child(relative_rank, i);
      if (child >= active_pes_) continue;
      const int c = static_cast<int>(child);
      if (pe_alive(tree.abs(c))) {
        broadcast_apply_leg(col, fn, priority, root, c);
      } else {
        broadcast_apply_forward(col, fn, priority, root, c);
      }
    }
    return;
  }
  for (int i = 1; i <= cfg_.bcast_fanout; ++i) {
    const int child = relative_rank * cfg_.bcast_fanout + i;
    if (child < active_pes_) broadcast_apply_leg(col, fn, priority, root, child);
  }
}

void Runtime::send_control(int dst, std::size_t bytes, sim::Handler fn,
                           int priority) {
  ++outstanding_;
  ++msgs_sent_;
  bytes_sent_ += bytes + Envelope::kHeaderBytes;
  machine_.send(
      dst, bytes + Envelope::kHeaderBytes, priority,
      [this, dst, fn = std::move(fn)]() mutable {
        if (pe_alive(dst)) fn();
        note_message_done();
      },
      /*src_override=*/0);
}

// ---- services -------------------------------------------------------------------

void Runtime::on_pe(int pe, sim::Handler fn, int priority) {
  machine_.post(pe, now(), std::move(fn), priority);
}

void Runtime::after(int pe, double dt, sim::Handler fn) {
  machine_.post(pe, now() + dt, std::move(fn));
}

Runtime::MemoryFootprint Runtime::memory_footprint() const {
  MemoryFootprint f;
  f.touched_pes = machine_.touched_pes();
  f.pe_state_bytes = machine_.pe_state_bytes();
  f.event_queue_bytes = machine_.event_queue_bytes();
  for (const auto& c : collections_) f.collection_bytes += c->pe.memory_bytes();
  f.collection_bytes += dead_.memory_bytes();
  return f;
}

double Runtime::tree_wave_latency() const {
  const int p = std::max(2, active_pes_);
  const int depth = std::max(
      1, static_cast<int>(std::ceil(std::log(static_cast<double>(p)) /
                                    std::log(static_cast<double>(cfg_.tree_fanout)))));
  const auto& np = machine_.network().params();
  return depth * (np.alpha_send + np.alpha_recv + np.latency);
}

void Runtime::set_pe_dead(int pe, bool dead) {
  dead_.set(static_cast<std::size_t>(pe), dead);
}

std::unique_ptr<ArrayElementBase> Runtime::extract_local(CollectionId col, ObjIndex idx,
                                                         int pe) {
  Collection& c = collection(col);
  PeLocal* pl = c.local_if(pe);
  if (pl == nullptr) return nullptr;
  auto& m = pl->elems;
  auto it = m.find(idx);
  if (it == m.end()) return nullptr;
  std::unique_ptr<ArrayElementBase> obj = std::move(it->second);
  lb_->on_element_removed(*obj);
  m.erase(it);
  --c.total_elements;
  return obj;
}

}  // namespace charm
