#pragma once
// Chare array index machinery.
//
// The runtime stores every element index as an opaque 128-bit ObjIndex; typed
// indices (1-D ints, dense 2/3-D, sparse 6-D, and the bit-vector oct-tree
// index the AMR mini-app uses, §IV-A of the paper) are encoded into it via
// IndexTraits.  Any user type up to 16 trivially-copyable bytes works.

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <type_traits>

#include "pup/pup.hpp"

namespace charm {

struct ObjIndex {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  friend bool operator==(const ObjIndex&, const ObjIndex&) = default;
  template <class P>
  void pup(P& p) {
    p | a;
    p | b;
  }
};

struct ObjIndexHash {
  std::size_t operator()(const ObjIndex& i) const {
    std::uint64_t h = i.a * 0x9E3779B97F4A7C15ull;
    h ^= (i.b + 0xC4CEB9FE1A85EC53ull) + (h << 7) + (h >> 3);
    h *= 0xFF51AFD7ED558CCDull;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
};

// ---- typed indices ---------------------------------------------------------

struct Index2D {
  std::int32_t x = 0, y = 0;
  friend bool operator==(const Index2D&, const Index2D&) = default;
};

struct Index3D {
  std::int32_t x = 0, y = 0, z = 0;
  friend bool operator==(const Index3D&, const Index3D&) = default;
};

/// Sparse 6-D index (pairwise interactions in LeanMD: two 3-D cell coords).
struct Index6D {
  std::array<std::int16_t, 6> d{};
  friend bool operator==(const Index6D&, const Index6D&) = default;
};

/// Bit-vector oct-tree index: 3 bits per level, root at depth 0.  A block can
/// compute its parent's and children's indices with local bit operations —
/// this is what makes AMR mesh restructuring fully distributed (§IV-A-4).
struct BitIndex {
  std::uint64_t bits = 0;   ///< child choices, 3 bits per level, level 0 at LSB
  std::uint8_t depth = 0;

  BitIndex parent() const {
    BitIndex p{bits & ~(0x7ull << (3 * (depth - 1))), static_cast<std::uint8_t>(depth - 1)};
    return p;
  }
  BitIndex child(int octant) const {
    return BitIndex{bits | (static_cast<std::uint64_t>(octant) << (3 * depth)),
                    static_cast<std::uint8_t>(depth + 1)};
  }
  int octant_at(int level) const { return static_cast<int>((bits >> (3 * level)) & 0x7u); }
  friend bool operator==(const BitIndex&, const BitIndex&) = default;
};

// ---- encoding --------------------------------------------------------------

template <class Ix>
struct IndexTraits {
  static_assert(std::is_trivially_copyable_v<Ix> && sizeof(Ix) <= 16,
                "Index types must be trivially copyable and at most 16 bytes; "
                "specialize IndexTraits for anything else");
  static_assert(std::has_unique_object_representations_v<Ix>,
                "Index types must have no padding bytes (padding would leak "
                "indeterminate values into the routing key); specialize "
                "IndexTraits for padded types");

  // static_cast<void*> silences gcc's -Wclass-memaccess: both sides are
  // trivially copyable (asserted above), just not trivially constructible.
  static ObjIndex encode(const Ix& ix) {
    ObjIndex o;
    std::memcpy(static_cast<void*>(&o), static_cast<const void*>(&ix), sizeof(Ix));
    return o;
  }
  static Ix decode(const ObjIndex& o) {
    Ix ix{};
    std::memcpy(static_cast<void*>(&ix), static_cast<const void*>(&o), sizeof(Ix));
    return ix;
  }
};

/// BitIndex has tail padding; encode its fields explicitly.
template <>
struct IndexTraits<BitIndex> {
  static ObjIndex encode(const BitIndex& ix) {
    return ObjIndex{ix.bits, static_cast<std::uint64_t>(ix.depth)};
  }
  static BitIndex decode(const ObjIndex& o) {
    return BitIndex{o.a, static_cast<std::uint8_t>(o.b)};
  }
};

std::string to_string(const ObjIndex& i);

}  // namespace charm

namespace pup {
/// Two uint64 fields, no padding: a single memcpy is the exact field walk.
template <>
struct MemCopyable<charm::ObjIndex> : std::true_type {
  static constexpr std::size_t kFieldBytes = 2 * sizeof(std::uint64_t);
};
template <>
struct AsBytes<charm::Index2D> : std::true_type {};
template <>
struct AsBytes<charm::Index3D> : std::true_type {};
template <>
struct AsBytes<charm::Index6D> : std::true_type {};
template <>
struct AsBytes<charm::BitIndex> : std::true_type {};
}  // namespace pup

namespace std {
template <>
struct hash<charm::ObjIndex> {
  size_t operator()(const charm::ObjIndex& i) const { return charm::ObjIndexHash{}(i); }
};
}  // namespace std
