#include "sim/machine.hpp"

#include <algorithm>
#include <utility>

#include "introspect/metrics.hpp"
#include "sim/fault_injector.hpp"
#include "trace/trace.hpp"

namespace sim {

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg), topo_(cfg.npes), net_(cfg.net, topo_) {
  if (cfg.npes <= 0) throw std::invalid_argument("Machine: npes must be positive");
  pes_.reset(static_cast<std::size_t>(cfg.npes));
  // Pre-size the event list for the configured P on small machines, but cap
  // the up-front reservation: at large P capacity is grown by the live
  // touched-PE population instead (see step()), so a million-PE machine
  // whose workload touches a few thousand PEs never pays for the rest.
  constexpr std::size_t kInitialReserveCap = 4096;
  queue_.reserve(
      std::min(static_cast<std::size_t>(cfg.npes) * 8 + 64, kInitialReserveCap));
  reserve_next_ = (kInitialReserveCap - 64) / 8;
}

Machine::~Machine() {
  if (metrics_ != nullptr) metrics_->machine_gone();
}

void Machine::charge(double seconds) {
  if (!in_handler()) throw std::logic_error("sim::Machine::charge outside handler");
  if (seconds < 0) throw std::invalid_argument("sim::Machine::charge: negative work");
  ctx_.elapsed += seconds / pes_.ref(static_cast<std::size_t>(ctx_.pe)).freq_;
}

void Machine::send(int dst, std::size_t bytes, int priority, Handler fn,
                   int src_override) {
  Time depart;
  int src;
  if (in_handler()) {
    src = ctx_.pe;
    // Sender-side CPU overhead is charged to the executing handler, so the
    // departure time reflects everything the handler did before this send.
    charge(net_.params().alpha_send);
    depart = ctx_.start + ctx_.elapsed;
  } else {
    src = src_override >= 0 ? src_override : dst;
    depart = time_;
  }
  const Time at = depart + net_.transit_time(src, dst, bytes);
  queue_.emplace(at, next_seq(), Event::Kind::kArrive, dst, priority, bytes)
      .fn = std::move(fn);
  if (tracer_ != nullptr) {
    const int hops =
        net_.params().use_topology && src != dst ? topo_.hops(src, dst) : 0;
    tracer_->send(src, dst, bytes, hops, depart, at);
  }
  if (metrics_ != nullptr) metrics_->on_send(src, bytes);
}

void Machine::post(int pe, Time at, Handler fn, int priority) {
  queue_.emplace(std::max(at, time_), next_seq(), Event::Kind::kArrive, pe,
                 priority, 0)
      .fn = std::move(fn);
}

void Machine::schedule_exec(int pe_id, Time not_before) {
  Pe& p = pes_.ref(static_cast<std::size_t>(pe_id));
  if (p.exec_pending_) return;
  p.exec_pending_ = true;
  queue_.emplace(std::max(not_before, p.clock_), next_seq(),
                 Event::Kind::kExec, pe_id, 0, 0);
}

bool Machine::step() {
  if (stopped_ || queue_.empty()) return false;
  // Injected failures due at or before the next event fire first, between
  // handler executions, at their exact virtual timestamps.  Failures that
  // would land after the last event never fire (the run is over).
  while (injector_ != nullptr && injector_->armed() &&
         injector_->next_time() <= queue_.top().time) {
    inject_failure();
    if (stopped_ || queue_.empty()) return false;
  }
  // Consume the top event from its arena slot.  Copy the POD fields to
  // locals and move the handler out before anything that can push to the
  // queue (which may reallocate the arena and invalidate the reference).
  Event& ev = queue_.top_mutable();
  const Time at = ev.time;
  const int pe = ev.pe;
  const Event::Kind kind = ev.kind;
  time_ = std::max(time_, at);
  ++events_processed_;
  // First-touch point for a PE reached by a send/post: materialize its page
  // and, when the live population crosses the next threshold, grow the event
  // list so steady-state capacity tracks touched PEs rather than configured P.
  Pe& p = pes_.ref(static_cast<std::size_t>(pe));
  if (pes_.touched() >= reserve_next_) {
    // x2, not a bigger multiple: the arena grows on demand anyway, so the
    // reserve only needs to cover the common ~1-2 in-flight events per live
    // PE; at a million touched PEs each over-reserved slot is ~128 wasted
    // bytes (an eighth of a GiB per extra multiple).
    queue_.reserve(pes_.touched() * 2 + 64);
    reserve_next_ = pes_.touched() * 2;
  }

  if (kind == Event::Kind::kArrive) {
    const int priority = ev.priority;
    const std::uint64_t seq = ev.seq;
    const std::size_t bytes = ev.bytes;
    if (p.failed_) {
      // In-flight message reaches a quarantined PE: dispose per policy.
      Handler fn = std::move(ev.fn);
      queue_.pop_top();
      const bool redirected =
          dispose(pe, at, priority, bytes, std::move(fn), nullptr);
      if (injector_ != nullptr) injector_->note_inflight(pe, redirected);
      if (metrics_ != nullptr) metrics_->on_step(time_, queue_.size());
      return true;
    }
    // The handler moves straight from the event arena into the ready ring.
    p.ready_.emplace(priority, at, seq, bytes, std::move(ev.fn));
    queue_.pop_top();
    schedule_exec(pe, at);
    if (metrics_ != nullptr) {
      metrics_->on_arrive(pe, p.ready_.size());
      metrics_->on_step(time_, queue_.size());
    }
    return true;
  }
  queue_.pop_top();

  // kExec: run the best-priority pending message to completion.
  p.exec_pending_ = false;
  if (p.ready_.empty()) {  // spurious (message was stolen/cleared)
    if (metrics_ != nullptr) metrics_->on_step(time_, queue_.size());
    return true;
  }
  ReadyMsg msg = p.ready_.pop();

  if (tracer_ != nullptr) {
    if (p.clock_ < at) tracer_->idle(pe, p.clock_, at);
    tracer_->recv(pe, msg.priority, msg.bytes, msg.arrival, at);
  }

  ctx_ = ExecCtx{pe, at, 0.0};
  // Receiver-side scheduling overhead for every delivery.
  ctx_.elapsed += net_.params().alpha_recv / p.freq_;
  msg.fn();
  p.clock_ = at + ctx_.elapsed;
  p.busy_ += ctx_.elapsed;
  ++p.executed_;
  if (tracer_ != nullptr) tracer_->exec(pe, at, p.clock_, msg.bytes);
  ctx_ = ExecCtx{};

  if (!p.ready_.empty()) schedule_exec(pe, p.clock_);
  if (metrics_ != nullptr) {
    // p.clock_ - at is the exact expression post-mortem stats derive from the
    // trace (span end - begin), so live exec totals reconcile bit-exactly.
    metrics_->on_exec(pe, p.clock_ - at, p.ready_.size());
    metrics_->on_step(time_, queue_.size());
  }
  return true;
}

void Machine::run() {
  while (step()) {
  }
}

// ---- fault injection --------------------------------------------------------

void Machine::inject_failure() {
  const Time t = std::max(injector_->next_time(), time_);
  const int victim = injector_->choose_victim(*this);
  if (victim < 0) {  // nothing left to kill
    injector_->skip();
    return;
  }
  time_ = t;
  FaultRecord rec;
  rec.time = t;
  rec.pe = victim;
  fail_pe(victim, &rec);
  if (tracer_ != nullptr)
    tracer_->phase_span(trace::Phase::kFailure, victim, t, t);
  injector_->committed(rec);
}

void Machine::fail_pe(int pe_id, FaultRecord* rec) {
  // ref(), not probe(): failing a never-touched PE must materialize it so the
  // quarantine flag persists for later arrivals.
  Pe& p = pes_.ref(static_cast<std::size_t>(pe_id));
  if (p.failed_) return;
  p.failed_ = true;
  if (rec != nullptr) rec->dropped_ready = p.ready_.size();
  // Dispose queued messages in deterministic (priority, arrival, seq) order.
  // They count as dropped_ready, not as in-flight disposals.
  while (!p.ready_.empty()) {
    ReadyMsg msg = p.ready_.pop();
    dispose(pe_id, time_, msg.priority, msg.bytes, std::move(msg.fn), nullptr);
  }
  if (metrics_ != nullptr) {
    metrics_->on_queue_change(pe_id, 0);
    // Single journal site: covers both injector-driven and direct failures.
    metrics_->journal(introspect::JournalKind::kFailure, time_, pe_id, 0.0);
  }
}

void Machine::revive_pe(int pe_id) {
  // Only a materialized PE can be in quarantine; probe avoids resurrecting
  // pages for PEs that were never failed in the first place.
  Pe* p = pes_.probe(static_cast<std::size_t>(pe_id));
  if (p != nullptr) p->failed_ = false;
}

bool Machine::dispose(int dead_pe, Time at, int priority, std::size_t bytes,
                      Handler fn, FaultRecord*) {
  const DropPolicy policy =
      injector_ != nullptr ? injector_->config().policy : DropPolicy::kDrop;
  if (policy == DropPolicy::kRedirect) {
    // Re-deliver to the nearest live PE; fall through to drop if none is left.
    for (int k = 1; k < npes(); ++k) {
      const int cand = (dead_pe + k) % npes();
      // A never-touched candidate is alive by definition; probing keeps the
      // scan from materializing every PE between the dead one and a survivor.
      const Pe* cp = pes_.probe(static_cast<std::size_t>(cand));
      if (cp != nullptr && cp->failed_) continue;
      ++redirects_;
      queue_.emplace(std::max(at, time_), next_seq(), Event::Kind::kArrive,
                     cand, priority, bytes)
          .fn = std::move(fn);
      return true;
    }
  }
  // Drop: the handler still runs, in a zero-cost quarantine context on the
  // dead PE, so upper-layer message accounting (quiescence counting) stays
  // balanced.  Charged work is discarded; no clock advances.  Upper layers
  // see pe_failed() and suppress application effects.
  //
  // Trace recording is suppressed for the quarantined execution: nothing it
  // does is real work (its charges are discarded and its sends carry no
  // application effect), so letting it log events would make fault-mode
  // summaries overcount busy/exec time and message traffic on dead PEs.
  // Only recording is disabled — the handler still runs identically, so the
  // simulation stays bit-identical with tracing on or off.
  ++drops_;
  const ExecCtx saved = ctx_;
  ctx_ = ExecCtx{dead_pe, std::max(at, time_), 0.0};
  const bool was_recording = tracer_ != nullptr && tracer_->enabled();
  if (was_recording) tracer_->set_enabled(false);
  // Suppress live metrics for the same reason tracing is suppressed: the
  // quarantined execution is not real work, and counting its sends/entries
  // would make live counters diverge from the post-mortem profile.
  introspect::Monitor* mon = metrics_;
  metrics_ = nullptr;
  fn();
  metrics_ = mon;
  if (was_recording) tracer_->set_enabled(true);
  ctx_ = saved;
  return false;
}

Time Machine::max_pe_clock() const {
  // Untouched PEs sit at clock 0, so folding over touched slots is exact.
  Time t = 0;
  pes_.for_each_touched([&t](std::size_t, const Pe& p) { t = std::max(t, p.clock_); });
  return t;
}

std::size_t Machine::pe_state_bytes() const {
  std::size_t bytes = pes_.memory_bytes();
  pes_.for_each_touched(
      [&bytes](std::size_t, const Pe& p) { bytes += p.ready_memory_bytes(); });
  return bytes;
}

}  // namespace sim
