// First-touch paged per-PE state (DESIGN.md §12): PagedTable/ChunkedBitset
// invariants, randomized dense-vs-lazy machine equivalence, first-touch
// semantics under broadcast and reduction legs landing on never-touched PEs,
// and lazy-state interplay with fault injection and migration.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/charm.hpp"
#include "sim/paged_table.hpp"

#include "test_util.hpp"

namespace {

using charm::ArrayProxy;
using charm::Callback;
using charm::ReductionResult;
using charmtest::Harness;

// ---- PagedTable / ChunkedBitset unit invariants -----------------------------

TEST(PagedTable, ProbeAndDefaultReadNeverMaterialize) {
  sim::PagedTable<int> t(1000);
  EXPECT_EQ(t.touched(), 0u);
  EXPECT_EQ(t.pages_allocated(), 0u);
  EXPECT_EQ(t.probe(999), nullptr);
  EXPECT_EQ(t.at_or_default(500), 0);
  EXPECT_EQ(t.touched(), 0u);
  EXPECT_EQ(t.pages_allocated(), 0u);
}

TEST(PagedTable, RefMaterializesExactlyTheTouchedSlot) {
  sim::PagedTable<int> t(1000);
  t.ref(130) = 7;
  EXPECT_EQ(t.touched(), 1u);
  EXPECT_EQ(t.pages_allocated(), 1u);
  ASSERT_NE(t.probe(130), nullptr);
  EXPECT_EQ(*t.probe(130), 7);
  // Slot 131 shares 130's page but was never ref()'d: the census and the
  // probing accessors must not treat it as live.
  EXPECT_EQ(t.probe(131), nullptr);
  EXPECT_EQ(t.at_or_default(131), 0);
  EXPECT_EQ(t.touched(), 1u);
}

TEST(PagedTable, ForEachTouchedVisitsAscendingOrder) {
  sim::PagedTable<int> t(4096);
  const std::vector<std::size_t> order = {900, 3, 64, 63, 4095, 128, 2};
  for (std::size_t i : order) t.ref(i) = static_cast<int>(i);
  std::vector<std::size_t> seen;
  t.for_each_touched([&seen](std::size_t i, int v) {
    EXPECT_EQ(v, static_cast<int>(i));
    seen.push_back(i);
  });
  const std::vector<std::size_t> want = {2, 3, 63, 64, 128, 900, 4095};
  EXPECT_EQ(seen, want);
}

TEST(PagedTable, MaterializeAllTouchesEverySlot) {
  sim::PagedTable<int> t(130);
  t.materialize_all();
  EXPECT_EQ(t.touched(), 130u);
  EXPECT_EQ(t.pages_allocated(), 3u);  // ceil(130 / 64)
  for (std::size_t i = 0; i < 130; ++i) ASSERT_NE(t.probe(i), nullptr);
}

TEST(PagedTable, MemoryGrowsWithPagesNotLogicalSize) {
  sim::PagedTable<std::uint64_t> big(1 << 20);
  sim::PagedTable<std::uint64_t> small(64);
  small.materialize_all();
  big.ref(0);
  big.ref((1 << 20) - 1);
  // A million-slot table with two touched slots holds two pages plus the
  // pointer spine; it must not be within an order of magnitude of dense.
  const std::size_t dense = (std::size_t{1} << 20) * sizeof(std::uint64_t);
  EXPECT_LT(big.memory_bytes(), dense / 10);
  EXPECT_GE(big.memory_bytes(), 2 * small.memory_bytes() / 2);
  EXPECT_THROW(big.ref(1 << 20), std::out_of_range);
}

TEST(ChunkedBitset, AbsentChunkReadsFalseWithoutAllocating) {
  sim::ChunkedBitset b(1 << 20);
  EXPECT_FALSE(b.test(0));
  EXPECT_FALSE(b.test((1 << 20) - 1));
  b.set(500, false);  // clearing an absent chunk must stay a no-op
  const std::size_t spine_only = b.memory_bytes();
  b.set(700000, true);
  EXPECT_TRUE(b.test(700000));
  EXPECT_FALSE(b.test(700001));
  EXPECT_GT(b.memory_bytes(), spine_only);
  b.set(700000, false);
  EXPECT_FALSE(b.test(700000));
  EXPECT_THROW(b.test(1 << 20), std::out_of_range);
}

// ---- randomized dense-vs-lazy machine equivalence ---------------------------

std::uint64_t mix(std::uint64_t x) {
  // splitmix64: cheap deterministic per-hop randomness shared by both runs.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

sim::Handler hop_handler(sim::Machine& m, std::uint64_t s, int depth) {
  return [&m, s, depth] {
    m.charge(1e-7 * static_cast<double>(s % 97));
    if (depth > 0) {
      const std::uint64_t nxt = mix(s);
      m.send(static_cast<int>(nxt % static_cast<std::uint64_t>(m.npes())),
             nxt % 512, static_cast<int>(nxt % 4),
             hop_handler(m, nxt, depth - 1));
    }
  };
}

void seed_workload(sim::Machine& m, std::uint64_t seed) {
  for (int k = 0; k < 40; ++k) {
    const std::uint64_t s = mix(seed + static_cast<std::uint64_t>(k));
    m.post(static_cast<int>(s % static_cast<std::uint64_t>(m.npes())),
           1e-6 * static_cast<double>(s % 50), hop_handler(m, s, 5));
  }
}

TEST(PagedStateFuzz, LazyAndEagerMachinesAreObservationallyIdentical) {
  // Large enough that ~250 randomly scattered touches leave most 64-slot
  // pages unallocated (at 4K PEs every page gets hit and the byte comparison
  // below would be vacuous).
  constexpr int kPes = 1 << 16;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Machine lazy(sim::MachineConfig{kPes, {}, 4});
    sim::Machine dense(sim::MachineConfig{kPes, {}, 4});
    // The "dense" half eagerly materializes every PE up front, like the old
    // std::vector<Pe> table did; the workload itself is identical.
    for (int i = 0; i < kPes; ++i) dense.pe(i);
    ASSERT_EQ(dense.touched_pes(), static_cast<std::size_t>(kPes));

    seed_workload(lazy, seed);
    seed_workload(dense, seed);
    lazy.run();
    dense.run();

    EXPECT_EQ(lazy.events_processed(), dense.events_processed()) << seed;
    EXPECT_EQ(lazy.time(), dense.time()) << seed;
    EXPECT_EQ(lazy.max_pe_clock(), dense.max_pe_clock()) << seed;
    // Per-PE observables must be bitwise identical across every configured
    // PE — the const accessor reads untouched slots as the shared default.
    for (int i = 0; i < kPes; ++i) {
      const sim::Pe& a = static_cast<const sim::Machine&>(lazy).pe(i);
      const sim::Pe& b = static_cast<const sim::Machine&>(dense).pe(i);
      ASSERT_EQ(a.clock(), b.clock()) << "pe " << i << " seed " << seed;
      ASSERT_EQ(a.busy_time(), b.busy_time()) << "pe " << i << " seed " << seed;
      ASSERT_EQ(a.executed(), b.executed()) << "pe " << i << " seed " << seed;
    }
    // 40 chains x 6 hops cannot touch most of a 4096-PE machine: sparsity is
    // the point of paging, and reading the dense copy's state above must not
    // have materialized anything on the lazy one.
    EXPECT_GT(lazy.touched_pes(), 0u);
    EXPECT_LT(lazy.touched_pes(), static_cast<std::size_t>(kPes) / 4);
    EXPECT_LT(lazy.pe_state_bytes(), dense.pe_state_bytes());
  }
}

// ---- first-touch semantics under broadcast / reduction ----------------------

struct PokeMsg {
  int v = 0;
  void pup(pup::Er& p) { p | v; }
};

class Sparse : public charm::ArrayElement<Sparse, std::int32_t> {
 public:
  int received = 0;
  static Callback done;
  void poke(const PokeMsg&) { ++received; }
  void reduce(const PokeMsg&) { contribute(1.0, charm::ReduceOp::kSum, done); }
  void hop_far(const PokeMsg&) { migrate_to(900); }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | received;
  }
};
Callback Sparse::done;

TEST(PagedStateRuntime, BroadcastLegsOnEmptyPesLeaveCollectionUnpaged) {
  Harness h(64);
  auto arr = ArrayProxy<Sparse>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i);
  h.machine.run();
  const std::size_t paged_before = h.rt.collection(arr.id()).pe.touched();
  // Hosting PEs plus hashed home PEs: a strict subset of the machine.
  EXPECT_LT(paged_before, 64u);

  h.rt.on_pe(0, [&] { arr.broadcast<&Sparse::poke>(PokeMsg{1}); });
  h.machine.run();
  // Every element got the broadcast...
  for (int i = 0; i < 8; ++i) {
    auto* e = h.find<Sparse>(arr.id(), i);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->received, 1);
  }
  // ...and the legs that landed on element-free PEs (the PE-level spanning
  // fan-out does reach all 64) probed instead of paging collection state.
  EXPECT_EQ(h.rt.collection(arr.id()).pe.touched(), paged_before);
  EXPECT_EQ(h.machine.touched_pes(), 64u);
}

TEST(PagedStateRuntime, ReductionOverSparseElementsStaysSparseFlatAndTree) {
  for (const bool tree : {false, true}) {
    Harness h(64, {}, 4, tree ? Harness::tree_config(2) : charm::RuntimeConfig{});
    auto arr = ArrayProxy<Sparse>::create(h.rt);
    for (int i = 0; i < 8; ++i) arr.seed(i, i * 3);
    double sum = -1;
    Sparse::done =
        Callback::to_function([&sum](ReductionResult&& r) { sum = r.num(0); });
    h.rt.on_pe(0, [&] { arr.broadcast<&Sparse::reduce>(PokeMsg{}); });
    h.machine.run();
    EXPECT_EQ(sum, 8.0) << (tree ? "tree" : "flat");
    EXPECT_LT(h.rt.collection(arr.id()).pe.touched(), 64u)
        << (tree ? "tree" : "flat");
  }
}

// ---- fault injection on unmaterialized PEs ----------------------------------

TEST(PagedStateFaults, FailPeOnUnmaterializedPeQuarantinesIt) {
  sim::Machine m(sim::MachineConfig{256, {}, 4});
  ASSERT_EQ(m.touched_pes(), 0u);
  m.fail_pe(200);
  // Failing must materialize exactly the victim so the flag persists...
  EXPECT_EQ(m.touched_pes(), 1u);
  EXPECT_TRUE(m.pe_failed(200));
  // ...while reviving a never-touched PE stays a no-op (alive by default).
  m.revive_pe(100);
  EXPECT_EQ(m.touched_pes(), 1u);
  EXPECT_FALSE(m.pe_failed(100));

  // An arrival at the quarantined PE is disposed: no execution, no clock.
  bool ran = false;
  m.post(200, 0.0, [&ran] { ran = true; });
  m.run();
  EXPECT_TRUE(ran);  // drop policy runs the handler in a zero-cost context
  EXPECT_EQ(m.messages_dropped(), 1u);
  EXPECT_EQ(static_cast<const sim::Machine&>(m).pe(200).clock(), 0.0);
  EXPECT_EQ(static_cast<const sim::Machine&>(m).pe(200).executed(), 0u);
}

// ---- migration onto a never-touched PE --------------------------------------

TEST(PagedStateMigration, MigrateOntoNeverTouchedPeMaterializesOnArrival) {
  Harness h(1024);
  auto arr = ArrayProxy<Sparse>::create(h.rt);
  arr.seed(0, 0);
  h.machine.run();
  ASSERT_EQ(h.rt.collection(arr.id()).pe.probe(900), nullptr);

  h.rt.on_pe(0, [&] { arr[0].send<&Sparse::hop_far>(PokeMsg{}); });
  h.machine.run();
  int owner = -1;
  auto* e = h.find<Sparse>(arr.id(), 0, &owner);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(owner, 900);
  EXPECT_NE(h.rt.collection(arr.id()).pe.probe(900), nullptr);

  // The migrated element still receives point sends routed via its home.
  h.rt.on_pe(0, [&] { arr[0].send<&Sparse::poke>(PokeMsg{}); });
  h.machine.run();
  EXPECT_EQ(e->received, 1);
  // A 1024-PE machine hosting one chare: the census stays a handful of PEs
  // (source, destination, home, control path), nowhere near configured P.
  EXPECT_LT(h.machine.touched_pes(), 64u);
}

}  // namespace
