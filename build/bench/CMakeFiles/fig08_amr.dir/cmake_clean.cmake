file(REMOVE_RECURSE
  "CMakeFiles/fig08_amr.dir/fig08_amr.cpp.o"
  "CMakeFiles/fig08_amr.dir/fig08_amr.cpp.o.d"
  "fig08_amr"
  "fig08_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
