#pragma once
// The charmlike runtime: message-driven execution of migratable chares on the
// emulated machine.
//
// Responsibilities:
//   * collection lifecycle (arrays, groups, dynamic insertion/destruction)
//   * point sends with scalable location management (home PEs, caches,
//     forwarding, in-transit buffering during migration)
//   * spanning-tree broadcasts, tree-cost-modeled reductions, quiescence
//     detection, timers
//   * element migration (PUP pack/move/unpack, home updates)
//   * per-element load instrumentation feeding the LB framework
//
// See DESIGN.md §1 for the emulation methodology.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "introspect/metrics.hpp"
#include "pup/pup.hpp"
#include "runtime/collection.hpp"
#include "runtime/payload_pool.hpp"
#include "runtime/registry.hpp"
#include "sim/machine.hpp"
#include "trace/trace.hpp"

namespace charm {

namespace lb {
class Manager;
}
using LbManager = lb::Manager;

/// How collectives move data between PEs (DESIGN.md §10).
///   kFlat: contributions combine at a central point; the k-ary tree's
///          critical path is *modeled* as a wave latency (the seed behavior —
///          figure stats are byte-stable under it).
///   kTree: contributions combine per-PE and route up a k-ary spanning tree
///          (arity = tree_fanout) as real counted messages with per-level
///          combine; broadcasts fan down the same tree and reroute around
///          dead interior PEs.
enum class CollectiveTopology { kFlat, kTree };

struct RuntimeConfig {
  int bcast_fanout = 4;           ///< spanning-tree fanout for broadcasts
  int tree_fanout = 4;            ///< reduction / QD tree fanout
  double migrate_bw = 4.0e9;      ///< PUP pack/unpack modeled bandwidth (B/s)
  double create_cost = 0.5e-6;    ///< dynamic element construction cost (s)
  double contribute_cost = 0.1e-6;///< local reduction combine cost (s)
  double deliver_cost = 0.05e-6;  ///< per-element broadcast delivery cost (s)
  CollectiveTopology collectives = CollectiveTopology::kFlat;
};

class Runtime {
 public:
  Runtime(sim::Machine& machine, RuntimeConfig cfg = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// The active runtime (exactly one may exist at a time).
  static Runtime& current();

  sim::Machine& machine() { return machine_; }
  const RuntimeConfig& config() const { return cfg_; }
  int npes() const { return machine_.npes(); }
  /// PEs currently participating (shrinks/expands under malleability).
  int active_pes() const { return active_pes_; }
  void set_active_pes(int n) { active_pes_ = n; }

  int my_pe() const { return machine_.current_pe(); }
  Time now() const { return machine_.now(); }
  void charge(double seconds) { machine_.charge(seconds); }

  // ---- collections ---------------------------------------------------------

  CollectionId create_collection(ChareTypeId type, bool is_group);
  Collection& collection(CollectionId id) { return *collections_.at(static_cast<std::size_t>(id)); }
  std::size_t collection_count() const { return collections_.size(); }

  /// Installs an element directly (initial placement before the run starts,
  /// or restart repopulation).  No messages are modeled.
  void seed_element(CollectionId col, ObjIndex idx,
                    std::unique_ptr<ArrayElementBase> obj, int pe);

  /// Dynamic insertion via a creation message (costs modeled).
  void insert_element(CollectionId col, ObjIndex idx, CreatorId creator,
                      std::vector<std::byte> ctor_payload, int pe_hint = kInvalidPe,
                      int priority = kDefaultPriority);

  /// Destroys the *currently executing* element when its handler returns
  /// (AMR coarsening deletes blocks this way).
  void destroy_self();

  /// Home PE of an index under the current active-PE mapping.
  int home_pe(const ObjIndex& idx) const {
    return static_cast<int>(ObjIndexHash{}(idx) % static_cast<std::size_t>(active_pes_));
  }

  // ---- messaging -----------------------------------------------------------

  void send_point(CollectionId col, ObjIndex idx, EntryId ep,
                  std::vector<std::byte> payload, int priority = kDefaultPriority);

  /// Typed point send (the proxy layer's entry point).  Routing is identical
  /// to send_point; when the destination resolves to the sending PE the
  /// argument travels through a typed in-flight slot — the delivery closure
  /// itself — instead of a pack/unpack round trip.  The modeled wire size
  /// (header + packed argument bytes, sized via the constexpr/fused path),
  /// charges, QD accounting, and trace/stats events are identical to the
  /// packed path; only host-side work changes.
  template <class A, class Arg = std::remove_cvref_t<A>>
  void send_typed(CollectionId col, ObjIndex idx, EntryId ep,
                  DirectInvoker<Arg> inv, A&& arg, int priority = kDefaultPriority) {
    Collection& c = collection(col);
    const int src_pe = machine_.in_handler() ? machine_.current_pe() : kInvalidPe;
    const int dst = route_point(c, idx, src_pe);
    if (dst != src_pe) {
      send_point_to(col, idx, ep, pack_pooled(arg), priority, src_pe, dst);
      return;
    }
    const std::size_t wire = Envelope::kHeaderBytes + pup::size_of(arg);
    // Source element identity rides along for the (rare) delivery-time miss,
    // where the argument is packed after all and re-enters the routed path.
    CollectionId src_col = -1;
    ObjIndex src_idx{};
    bool has_src = false;
    if (exec_elem_ != nullptr) {
      src_col = exec_elem_->col_;
      src_idx = exec_elem_->idx_;
      has_src = true;
    }
    ++outstanding_;
    ++msgs_sent_;
    bytes_sent_ += wire;
    machine_.send(
        dst, wire, priority,
        [this, col, idx, ep, inv, priority, src_col, src_idx, has_src,
         arg = Arg(std::forward<A>(arg))]() mutable {
          const int pe = machine_.current_pe();
          if (pe_alive(pe)) {
            Collection& cc = collection(col);
            if (ArrayElementBase* elem = cc.find(pe, idx)) {
              deliver_typed(*elem, col, idx, ep, inv, arg, pe);
            } else {
              typed_miss(col, idx, ep, priority, pack_pooled(arg), src_col,
                         src_idx, has_src, pe);
            }
          }
          note_message_done();
        },
        /*src_override=*/0);
  }

  void broadcast(CollectionId col, EntryId ep, std::vector<std::byte> payload,
                 int priority = kDefaultPriority);

  /// Tree-broadcast an in-process function over every element of a collection
  /// (runtime-internal signals: resume_from_sync, FT rollback hooks).
  void broadcast_apply(CollectionId col, std::function<void(ArrayElementBase&)> fn,
                       int priority = kDefaultPriority);

  /// Drops any in-flight reduction state (FT rollback).
  void clear_reductions(CollectionId col);

  // ---- reductions (called through ArrayElementBase) --------------------------

  void contribute(ArrayElementBase& elem, std::vector<double> nums, bool has_nums,
                  ReduceOp op, std::vector<std::byte> chunk, bool has_chunk,
                  const Callback& cb);

  /// Scalar fast path: semantically identical to contributing a one-element
  /// vector, but the value combines in place into a pooled buffer, so
  /// steady-state POD sum/min/max reductions allocate nothing (gated by the
  /// operator-new-counting test in tests/core/test_queues.cpp).
  void contribute_scalar(ArrayElementBase& elem, double value, ReduceOp op,
                         const Callback& cb);

  // ---- migration -----------------------------------------------------------

  /// Moves an element to `to_pe`.  Safe to call from within the element's own
  /// handler (deferred to handler end).
  void migrate(CollectionId col, ObjIndex idx, int to_pe);

  // ---- services -------------------------------------------------------------

  /// Run `fn` on `pe` as soon as possible (driver-side orchestration).
  void on_pe(int pe, sim::Handler fn, int priority = kDefaultPriority);
  /// Run `fn` on `pe` after `dt` virtual seconds (not counted by QD).
  void after(int pe, double dt, sim::Handler fn);

  /// Invoke `cb` once no runtime messages remain in flight.
  void start_quiescence(Callback cb);

  /// Stop the machine; Machine::run() returns.
  void exit() { machine_.stop(); }

  /// Marks a PE failed: its elements are dropped by the FT recovery protocol
  /// and messages to it are discarded (counted, so QD still converges).
  void set_pe_dead(int pe, bool dead);
  bool pe_dead(int pe) const { return dead_.test(static_cast<std::size_t>(pe)); }
  /// Live at both layers: not marked dead by the FT protocol and not
  /// quarantined by machine-level fault injection.  Both reads are
  /// chunk/page probes, so the hot path never materializes PE state.
  bool pe_alive(int pe) const {
    return !dead_.test(static_cast<std::size_t>(pe)) && !machine_.pe_failed(pe);
  }

  /// The element whose handler is currently executing (null outside).
  ArrayElementBase* current_element() const { return exec_elem_; }

  LbManager& lb() { return *lb_; }

  /// The live introspection monitor attached to the machine, or nullptr when
  /// metrics are off (DESIGN.md §11).  Consumers query per-PE utilization,
  /// queue depths, and imbalance mid-run; none of the calls charge virtual
  /// time, so querying never perturbs the simulation.
  introspect::Monitor* metrics() const { return machine_.metrics(); }

  // ---- statistics ------------------------------------------------------------

  std::uint64_t messages_sent() const { return msgs_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t forwards() const { return forwards_; }
  std::int64_t outstanding() const { return outstanding_; }
  /// Partial-combine messages routed up the reduction spanning tree (always
  /// 0 under CollectiveTopology::kFlat).
  std::uint64_t reduction_partials_sent() const { return redux_partials_sent_; }

  /// Modeled critical-path latency of a PE-tree wave (reductions, QD).
  double tree_wave_latency() const;

  // ---- memory accounting (DESIGN.md §12) -----------------------------------

  /// Structural host-memory census of the lazy per-PE state.  Counts pages
  /// and queue storage the paging layer owns directly; container-internal
  /// heap nodes (map buckets, element objects) are covered by peak RSS.
  struct MemoryFootprint {
    std::size_t touched_pes = 0;       ///< machine-level first-touch census
    std::size_t pe_state_bytes = 0;    ///< PE pages + ready-queue storage
    std::size_t collection_bytes = 0;  ///< PeLocal pages across collections
    std::size_t event_queue_bytes = 0; ///< global event-list heap + arena
    std::size_t total() const {
      return pe_state_bytes + collection_bytes + event_queue_bytes;
    }
    /// Structural bytes per touched PE (0 when nothing is touched yet).
    double bytes_per_touched_pe() const {
      return touched_pes == 0 ? 0.0
                              : static_cast<double>(total()) /
                                    static_cast<double>(touched_pes);
    }
  };
  MemoryFootprint memory_footprint() const;

  // ---- internals used by sibling modules (lb/ft/tram) -------------------------

  /// Sends a counted control message executing `fn` on `dst`.
  void send_control(int dst, std::size_t bytes, sim::Handler fn,
                    int priority = kDefaultPriority);

  // ---- payload recycling -------------------------------------------------

  /// Returns an empty payload buffer with capacity >= reserve_bytes, reusing
  /// capacity from delivered messages when available.
  std::vector<std::byte> acquire_payload(std::size_t reserve_bytes) {
    return payload_pool_.acquire(reserve_bytes);
  }
  /// Recycles a dead payload's capacity for future sends.
  void release_payload(std::vector<std::byte>&& buf) {
    payload_pool_.release(std::move(buf));
  }
  /// Packs `v` into a pooled payload buffer (the allocation-free analogue of
  /// pup::to_bytes for the messaging hot path).  Single pass: mem_copyable
  /// types are one memcpy; dynamic types pack with grow-in-place appends into
  /// the recycled buffer (capacity >= PayloadPool::kSmallBytes once warm), so
  /// the separate Sizer walk is gone.
  template <class T>
  std::vector<std::byte> pack_pooled(const T& v) {
    std::vector<std::byte> buf =
        acquire_payload(pup::mem_copyable<T> ? sizeof(T) : PayloadPool::kSmallBytes);
    pup::pack_append(buf, v);
    return buf;
  }
  const PayloadPool& payload_pool() const { return payload_pool_; }

  /// Reduction contribution buffers (vectors of doubles) cycle through their
  /// own pool so POD reductions are allocation-free at steady state.
  std::vector<double> acquire_nums(std::size_t reserve_elems) {
    return nums_pool_.acquire(reserve_elems);
  }
  void release_nums(std::vector<double>&& buf) {
    nums_pool_.release(std::move(buf));
  }
  /// Recycles a consumed reduction result's buffers (callback completion).
  void release_result_buffers(ReductionResult&& result) {
    release_nums(std::move(result.nums));
    for (std::vector<std::byte>& chunk : result.chunks)
      release_payload(std::move(chunk));
  }
  const NumsPool& nums_pool() const { return nums_pool_; }

  /// Immediately performs the pack/send/install migration protocol; must be
  /// called from a handler on the owning PE (not the element's own handler —
  /// use migrate() for that).
  void perform_migration(CollectionId col, ObjIndex idx, int to_pe);

  /// Invoke an entry on a *local* element inline (broadcast delivery, TRAM).
  void deliver_local(Collection& c, ArrayElementBase& elem, EntryId ep,
                     const std::byte* data, std::size_t size);
  void deliver_local(Collection& c, ArrayElementBase& elem, EntryId ep,
                     const std::vector<std::byte>& payload) {
    deliver_local(c, elem, ep, payload.data(), payload.size());
  }

  /// Invoke an entry on a *local* element with a typed argument (same-PE TRAM
  /// delivery): no serialization at all, instrumentation identical.
  template <class Arg>
  void deliver_local_typed(Collection& c, ArrayElementBase& elem, EntryId ep,
                           DirectInvoker<Arg> inv, const Arg& arg) {
    (void)c;
    deliver_typed(elem, elem.col_, elem.idx_, ep, inv, arg, elem.pe_);
  }

  /// Removes and returns a local element without any protocol (FT rollback).
  std::unique_ptr<ArrayElementBase> extract_local(CollectionId col, ObjIndex idx, int pe);

  /// Rebuilds home tables and clears caches from current element placement
  /// (FT recovery, malleability reconfiguration).  Modeled cost charged via
  /// `per_record_cost` on each PE... cost is charged by the caller.
  void rebuild_location_tables();

 private:
  friend class ArrayElementBase;

  struct QdRequest {
    Callback cb;
  };

  void launch_envelope(Envelope env, int dst, bool count = true);
  void on_envelope(Envelope env);
  void deliver_here(Envelope env, int pe);
  void handle_point_miss(Envelope env, int pe);

  /// Routing decision for a point message, shared by the packed and typed
  /// send paths: group index decodes to a PE; otherwise local table, then
  /// location cache, then the home PE.
  int route_point(Collection& c, const ObjIndex& idx, int src_pe);
  /// Builds the Envelope (source identity from the execution context) and
  /// launches it at an already-routed destination.
  void send_point_to(CollectionId col, ObjIndex idx, EntryId ep,
                     std::vector<std::byte> payload, int priority, int src_pe,
                     int dst);
  /// Delivery-time miss on the typed same-PE path: reconstructs the packed
  /// envelope and re-enters the location protocol.
  void typed_miss(CollectionId col, ObjIndex idx, EntryId ep, int priority,
                  std::vector<std::byte> payload, CollectionId src_col,
                  ObjIndex src_idx, bool has_src, int pe);

  /// Saved execution context around an entry invocation, so nested deliveries
  /// (broadcast legs, TRAM batches) instrument correctly.
  struct ExecFrame {
    ArrayElementBase* prev_elem;
    bool prev_destroy;
    int prev_migrate;
  };
  ExecFrame begin_exec(ArrayElementBase& elem) {
    ExecFrame f{exec_elem_, exec_destroy_requested_, exec_migrate_to_};
    exec_elem_ = &elem;
    exec_destroy_requested_ = false;
    exec_migrate_to_ = kInvalidPe;
    return f;
  }
  /// Restores the context and runs the (rare) destroy/migrate epilogue the
  /// finished invocation requested.
  void end_exec(const ExecFrame& f, CollectionId col, const ObjIndex& idx, int pe) {
    const bool do_destroy = exec_destroy_requested_;
    const int mig = exec_migrate_to_;
    exec_elem_ = f.prev_elem;
    exec_destroy_requested_ = f.prev_destroy;
    exec_migrate_to_ = f.prev_migrate;
    if (do_destroy) {
      destroy_local(col, idx, pe);
    } else if (mig != kInvalidPe && mig != pe) {
      perform_migration(col, idx, mig);
    }
  }

  /// Invoke an entry with a typed argument: the devirtualized equivalent of
  /// deliver_here's unpack-and-invoke, with identical instrumentation.
  template <class Arg>
  void deliver_typed(ArrayElementBase& elem, CollectionId col, const ObjIndex& idx,
                     EntryId ep, DirectInvoker<Arg> inv, const Arg& arg, int pe) {
    ExecFrame f = begin_exec(elem);
    const double t0 = machine_.handler_elapsed();
    inv(&elem, arg);
    const double dt = machine_.handler_elapsed() - t0;
    elem.lb_load_ += dt;
    if (trace::Tracer* tr = machine_.tracer()) {
      const double end = machine_.now();
      tr->entry(pe, col, ep, end - dt, end);
    }
    if (introspect::Monitor* mon = machine_.metrics()) mon->on_entry(pe, col, ep, dt);
    end_exec(f, col, idx, pe);
  }
  void destroy_local(CollectionId col, ObjIndex idx, int pe);
  void install_element(CollectionId col, ObjIndex idx,
                       std::unique_ptr<ArrayElementBase> obj, int pe,
                       std::uint32_t epoch, bool migrated = false);
  void broadcast_apply_leg(CollectionId col,
                           std::shared_ptr<std::function<void(ArrayElementBase&)>> fn,
                           int priority, int root, int relative_rank);
  void home_departed(CollectionId col, ObjIndex idx, std::uint32_t epoch);
  void home_arrived(CollectionId col, ObjIndex idx, int loc, std::uint32_t epoch);
  void note_message_done();
  void maybe_fire_quiescence();
  void complete_reduction(Collection& c, std::uint64_t seq);

  // ---- tree collectives (DESIGN.md §10) ------------------------------------
  /// Real distributed reductions are active (kTree with more than one PE;
  /// a single PE has no tree and takes the flat path).
  bool tree_collectives() const {
    return cfg_.collectives == CollectiveTopology::kTree && active_pes_ > 1;
  }
  /// Global / per-PE slot lookup with map-node recycling (no allocation once
  /// a slot has completed and stashed its node as the spare).
  ReduxSlot& redux_slot(Collection& c, std::uint64_t seq);
  ReduxSlot& partial_slot(Collection& c, int pe, std::uint64_t seq);
  /// Global bookkeeping for one tree-mode contribution; launches the
  /// up-sweep when every element has contributed.
  void note_tree_contribution(Collection& c, std::uint64_t seq, const Callback& cb);
  void start_tree_upsweep(Collection& c, std::uint64_t seq);
  /// Extracts rank's partial and sends it to the parent (completes at rank 0).
  void send_tree_partial(CollectionId col, std::uint64_t seq, int rank);
  void tree_partial_arrive(CollectionId col, std::uint64_t seq,
                           std::int64_t count, bool has_nums, ReduceOp op,
                           std::vector<double>&& nums,
                           std::vector<std::vector<std::byte>>&& chunks);
  void complete_tree_root(Collection& c, std::uint64_t seq);

  void broadcast_tree_leg(CollectionId col, EntryId ep,
                          std::shared_ptr<const std::vector<std::byte>> payload,
                          int priority, int root, int relative_rank);
  /// Forwards a broadcast to the children of `relative_rank`: flat mode sends
  /// to every in-range child (dead PEs drop the leg and its subtree, the seed
  /// behavior); tree mode skips dead children and descends directly to their
  /// children so every live PE is still reached exactly once.
  void broadcast_forward(CollectionId col, EntryId ep,
                         const std::shared_ptr<const std::vector<std::byte>>& payload,
                         int priority, int root, int relative_rank);
  void broadcast_apply_forward(
      CollectionId col,
      const std::shared_ptr<std::function<void(ArrayElementBase&)>>& fn,
      int priority, int root, int relative_rank);

  sim::Machine& machine_;
  RuntimeConfig cfg_;
  std::vector<std::unique_ptr<Collection>> collections_;
  /// FT-dead marks, chunk-allocated: test() on a never-failed region reads
  /// false without touching memory beyond the chunk spine, and there is no
  /// std::vector<bool> proxy-reference to trip over.
  sim::ChunkedBitset dead_;
  int active_pes_;

  ArrayElementBase* exec_elem_ = nullptr;
  bool exec_destroy_requested_ = false;
  int exec_migrate_to_ = kInvalidPe;

  std::int64_t outstanding_ = 0;
  std::vector<QdRequest> qd_requests_;

  std::uint64_t msgs_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t forwards_ = 0;
  std::uint64_t redux_partials_sent_ = 0;

  PayloadPool payload_pool_;
  NumsPool nums_pool_;
  /// Scratch for start_tree_upsweep's participant marking (capacity retained
  /// across waves so arming a wave allocates nothing).
  std::vector<std::uint8_t> redux_on_path_;

  std::unique_ptr<LbManager> lb_;

  static Runtime* current_;
};

// ---- free-function conveniences ----------------------------------------------

inline Runtime& runtime() { return Runtime::current(); }
inline int my_pe() { return Runtime::current().my_pe(); }
inline Time now() { return Runtime::current().now(); }
inline void charge(double seconds) { Runtime::current().charge(seconds); }

}  // namespace charm
