file(REMOVE_RECURSE
  "CMakeFiles/fig12_barnes.dir/fig12_barnes.cpp.o"
  "CMakeFiles/fig12_barnes.dir/fig12_barnes.cpp.o.d"
  "fig12_barnes"
  "fig12_barnes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_barnes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
