// Fig 16: Stencil2D in the cloud — an interfering VM lands on one node after
// iteration 100; heterogeneity-aware load balancing every 20 steps recovers
// the iteration time, while the NoLB run stays degraded.
//
// Interference is modeled as a frequency-scale drop on one PE (the same
// mechanism Distem used on Grid'5000; DESIGN.md §1).  We print the
// iteration-time trace for both runs.

#include "bench_common.hpp"
#include "miniapps/stencil/stencil.hpp"

namespace {

using namespace charm;

std::vector<double> iteration_times(bool with_lb) {
  sim::Machine m(bench::machine_config(32, sim::NetworkParams::cloud_ethernet()));
  bench::attach_trace(m);
  Runtime rt(m);
  stencil::Params p;
  p.grid = 1024;
  p.tiles_x = p.tiles_y = 16;  // 8 tiles per VM
  p.cell_cost = 3e-9;
  stencil::Sim sim(rt, p);
  if (with_lb) {
    rt.lb().set_strategy(lb::make_greedy());
    rt.lb().set_period(20);  // LB every 20 steps, as in the paper
  }

  const int total_iters = bench::cap_steps(300, 60);
  const int interference_at = bench::cap_steps(100, 20);
  bool done = false;
  rt.on_pe(0, [&] {
    sim.run(interference_at, Callback::to_function([&](ReductionResult&&) {
      // Interfering VM enters the node hosting PE 5: effective speed 0.45x.
      m.pe(5).set_freq(0.45);
      sim.run(total_iters - interference_at,
              Callback::to_function([&](ReductionResult&&) { done = true; }));
    }));
  });
  m.run();
  if (!done) std::printf("   WARNING: run did not complete\n");

  std::vector<double> times;
  double prev = 0;
  for (const auto& r : rt.lb().history()) {
    times.push_back(r.completed_at - prev);
    prev = r.completed_at;
  }
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 16", "Stencil2D iteration time under interference (starts at iter 100)");
  auto nolb = iteration_times(false);
  auto lb = iteration_times(true);
  bench::columns({"iteration", "NoLB_ms", "LB_ms"});
  const std::size_t n = std::min(nolb.size(), lb.size());
  for (std::size_t i = 0; i < n; i += 10) {
    bench::row({static_cast<double>(i + 1), nolb[i] * 1e3, lb[i] * 1e3});
  }
  // Post-interference averages (excluding the LB-spike iterations).
  auto avg_tail = [&](const std::vector<double>& v) {
    double s = 0;
    int c = 0;
    for (std::size_t i = bench::smoke() ? 30 : 140; i < v.size(); ++i) {
      s += v[i];
      ++c;
    }
    return c ? s / c : 0.0;
  };
  std::printf("   post-interference steady iteration time: NoLB %.3f ms, LB %.3f ms\n",
              avg_tail(nolb) * 1e3, avg_tail(lb) * 1e3);
  bench::note("paper shape: both traces jump at iter 100; the LB trace recovers (with periodic LB spikes)");
  return bench::finish();
}
