#pragma once
// LeanMD mini-app (§IV-B): molecular dynamics with Lennard-Jones forces
// within a cutoff, structured exactly like the paper describes —
//
//   * Cells: a dense 3-D chare array; each owns the atoms in its box
//     (box side = cutoff, periodic boundary).
//   * Computes: a sparse 6-D chare array, one element per adjacent
//     (unordered) cell pair including self-pairs; it receives both cells'
//     positions, evaluates the pairwise forces, and returns them.
//
// Per iteration: cells multicast positions to their pair computes; computes
// evaluate LJ forces (real arithmetic on real atoms; cost charged per pair
// scan); cells integrate (leapfrog), exchange atoms that crossed into
// neighboring boxes, and AtSync.  Non-uniform density (the `clustering`
// parameter) creates the compute-load imbalance the paper's LB results are
// built on (Fig 9); over-decomposition of Computes is what makes balancing
// possible at all (§IV-B-1).

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/charm.hpp"

namespace charm::leanmd {

struct Params {
  std::int16_t nx = 4, ny = 4, nz = 4;  ///< cells per dimension
  double cell_size = 1.0;               ///< box side == cutoff
  int atoms_per_cell = 16;              ///< mean atoms per cell
  double clustering = 0.0;              ///< 0 = uniform; >0 skews density in x
  double dt = 2e-4;
  double epsilon = 1e-4;                ///< LJ well depth
  double sigma = 0.25;                  ///< LJ length scale
  double pair_cost = 15e-9;             ///< charged seconds per atom pair scanned
  std::uint64_t seed = 1234;
};

struct Atom {
  double x = 0, y = 0, z = 0;
  double vx = 0, vy = 0, vz = 0;
};

struct StartMsg {
  int steps = 1;
  template <class P>
  void pup(P& p) {
    p | steps;
  }
};

struct PositionsMsg {
  std::int16_t from[3] = {0, 0, 0};  ///< which cell these atoms belong to
  int step = 0;
  std::vector<Atom> atoms;
  template <class P>
  void pup(P& p) {
    pup::PUParray(p, from, 3);
    p | step;
    p | atoms;
  }
};

struct ForcesMsg {
  int step = 0;
  std::vector<double> f;  ///< 3 per atom, in the cell's atom order
  template <class P>
  void pup(P& p) {
    p | step;
    p | f;
  }
};

struct AtomsMsg {
  int step = 0;
  std::vector<Atom> atoms;
  template <class P>
  void pup(P& p) {
    p | step;
    p | atoms;
  }
};

class Cell;
class Compute;

using CellProxy = ArrayProxy<Cell, Index3D>;
using ComputeProxy = ArrayProxy<Compute, Index6D>;

/// One box of the simulation domain.
class Cell : public charm::ArrayElement<Cell, Index3D> {
 public:
  Cell() = default;
  Cell(const Params& p, CellProxy cells, ComputeProxy computes);

  void begin(const StartMsg& m);
  void accept_forces(const ForcesMsg& m);
  void accept_atoms(const AtomsMsg& m);
  void resume_from_sync() override;
  std::array<double, 3> lb_coords() const override;
  void pup(pup::Er& p) override;

  const std::vector<Atom>& atoms() const { return atoms_; }
  int steps_done() const { return step_; }

  /// Populates atoms deterministically from the density profile.
  void populate();

  static Callback done_cb;  ///< completion reduction target (set by Simulation)

 private:
  void start_step();
  void integrate_and_exchange();
  void finish_step();
  std::vector<Index6D> my_pairs() const;
  std::vector<Index3D> my_neighbors() const;

  Params p_{};
  CellProxy cells_;
  ComputeProxy computes_;
  std::vector<Atom> atoms_;
  int step_ = 0;
  int target_steps_ = 0;
  int forces_expected_ = 0;
  int forces_seen_ = 0;
  std::vector<double> force_accum_;
  int transfers_expected_ = 0;
  int transfers_seen_ = 0;
  bool exchanging_ = false;
  std::map<int, std::vector<ForcesMsg>> early_forces_;
  std::map<int, std::vector<AtomsMsg>> early_atoms_;
};

/// Pairwise interaction worker for one adjacent cell pair.
class Compute : public charm::ArrayElement<Compute, Index6D> {
 public:
  Compute() = default;
  Compute(const Params& p, CellProxy cells);

  void positions(const PositionsMsg& m);
  std::array<double, 3> lb_coords() const override;
  void pup(pup::Er& p) override;

  std::uint64_t pairs_evaluated() const { return pairs_; }

 private:
  bool self_pair() const;
  void evaluate(int step);

  Params p_{};
  CellProxy cells_;
  std::map<int, std::vector<PositionsMsg>> inputs_;
  std::uint64_t pairs_ = 0;
};

/// Driver facade: builds the cell/compute arrays and runs iterations.
class Simulation {
 public:
  Simulation(Runtime& rt, Params p);

  /// Launch `steps` iterations; `done` fires when every cell finished.
  void run(int steps, Callback done);

  CellProxy cells() const { return cells_; }
  ComputeProxy computes() const { return computes_; }
  int ncells() const;
  int ncomputes() const;

  // Host-side diagnostics (scan all cells).
  std::size_t total_atoms() const;
  std::array<double, 3> total_momentum() const;
  double kinetic_energy() const;

 private:
  Runtime& rt_;
  Params p_;
  CellProxy cells_;
  ComputeProxy computes_;
};

/// Deterministic atom count for a cell under the clustering profile.
int atoms_for_cell(const Params& p, int x, int y, int z);

}  // namespace charm::leanmd

namespace pup {
template <>
struct AsBytes<charm::leanmd::Params> : std::true_type {};
template <>
struct AsBytes<charm::leanmd::Atom> : std::true_type {};
template <>
struct MemCopyable<charm::leanmd::StartMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(int);
};
}  // namespace pup
