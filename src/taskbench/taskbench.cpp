#include "taskbench/taskbench.hpp"

#include <algorithm>
#include <cstring>
#include <memory>

namespace charm::taskbench {

Callback Task::done_cb;
std::optional<tram::Stream<&Task::input>> Task::tram_stream;

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kStencil1D: return "stencil_1d";
    case Pattern::kFft: return "fft";
    case Pattern::kTree: return "tree";
    case Pattern::kSweep: return "sweep";
    case Pattern::kRandom: return "random";
  }
  return "?";
}

bool parse_pattern(const char* name, Pattern* out) {
  for (Pattern p : {Pattern::kStencil1D, Pattern::kFft, Pattern::kTree,
                    Pattern::kSweep, Pattern::kRandom}) {
    if (std::strcmp(name, to_string(p)) == 0) {
      *out = p;
      return true;
    }
  }
  return false;
}

namespace {

/// Butterfly stride at timestep t: distances cycle 1, 2, 4, ... 2^(L-1).
int fft_stride(int width, int t) {
  int levels = 0;
  while ((1 << levels) < width) ++levels;
  if (levels == 0) levels = 1;  // width == 1: stride 1, partner always clipped
  return 1 << ((t - 1) % levels);
}

int tree_arity(const Params& p) { return p.fanout > 1 ? p.fanout : 2; }

void sort_unique(std::vector<int>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

void deps_of(const Params& p, int t, int i, std::vector<int>* out) {
  out->clear();
  if (t < 1 || t >= p.steps) return;
  const int W = p.width;
  switch (p.pattern) {
    case Pattern::kStencil1D:
      if (i > 0) out->push_back(i - 1);
      out->push_back(i);
      if (i + 1 < W) out->push_back(i + 1);
      return;
    case Pattern::kSweep:
      if (i > 0) out->push_back(i - 1);
      out->push_back(i);
      return;
    case Pattern::kFft: {
      const int j = i ^ fft_stride(W, t);
      out->push_back(i);
      if (j < W) out->push_back(j);
      sort_unique(out);
      return;
    }
    case Pattern::kTree: {
      const int k = tree_arity(p);
      out->push_back(i);
      if (t % 2 == 1) {  // up-sweep: gather from children
        for (int c = 0; c < k; ++c) {
          const long child = static_cast<long>(k) * i + 1 + c;
          if (child < W) out->push_back(static_cast<int>(child));
        }
      } else if (i > 0) {  // down-sweep: receive from parent
        out->push_back((i - 1) / k);
      }
      sort_unique(out);
      return;
    }
    case Pattern::kRandom: {
      sim::Rng rng(sim::derive_seed(p.seed, static_cast<std::uint64_t>(t),
                                    static_cast<std::uint64_t>(i)));
      out->push_back(i);
      for (int d = 1; d < p.fanout; ++d)
        out->push_back(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(W))));
      sort_unique(out);
      return;
    }
  }
}

void dependents_of(const Params& p, int t, int i, std::vector<int>* out) {
  out->clear();
  if (t < 0 || t + 1 >= p.steps) return;
  const int W = p.width;
  switch (p.pattern) {
    case Pattern::kStencil1D:
      if (i > 0) out->push_back(i - 1);
      out->push_back(i);
      if (i + 1 < W) out->push_back(i + 1);
      return;
    case Pattern::kSweep:
      out->push_back(i);
      if (i + 1 < W) out->push_back(i + 1);
      return;
    case Pattern::kFft: {
      const int j = i ^ fft_stride(W, t + 1);  // symmetric under XOR
      out->push_back(i);
      if (j < W) out->push_back(j);
      sort_unique(out);
      return;
    }
    case Pattern::kTree: {
      const int k = tree_arity(p);
      out->push_back(i);
      if ((t + 1) % 2 == 1) {  // receivers are up-sweeping: feed my parent
        if (i > 0) out->push_back((i - 1) / k);
      } else {  // receivers are down-sweeping: feed my children
        for (int c = 0; c < k; ++c) {
          const long child = static_cast<long>(k) * i + 1 + c;
          if (child < W) out->push_back(static_cast<int>(child));
        }
      }
      sort_unique(out);
      return;
    }
    case Pattern::kRandom: {
      // No closed inverse: scan the next step's dependence lists.
      std::vector<int> deps;
      for (int j = 0; j < W; ++j) {
        deps_of(p, t + 1, j, &deps);
        if (std::binary_search(deps.begin(), deps.end(), i)) out->push_back(j);
      }
      return;
    }
  }
}

std::uint64_t task_count(const Params& p) {
  return static_cast<std::uint64_t>(p.width) * static_cast<std::uint64_t>(p.steps);
}

std::uint64_t edge_count(const Params& p) {
  const std::uint64_t W = static_cast<std::uint64_t>(p.width);
  const std::uint64_t gathering_steps =
      p.steps > 1 ? static_cast<std::uint64_t>(p.steps - 1) : 0;
  switch (p.pattern) {
    case Pattern::kStencil1D:
      return gathering_steps * (W == 1 ? 1 : 3 * W - 2);
    case Pattern::kSweep:
    case Pattern::kTree:
      // Sweep: every point has a self edge, every i>0 adds one.  Tree: on both
      // sweeps each non-root node carries exactly one parent-child edge.
      return gathering_steps * (2 * W - 1);
    case Pattern::kFft: {
      std::uint64_t total = 0;
      for (int t = 1; t < p.steps; ++t) {
        const int d = fft_stride(p.width, t);
        std::uint64_t partners = 0;
        for (int i = 0; i < p.width; ++i)
          if ((i ^ d) < p.width && (i ^ d) != i) ++partners;
        total += W + partners;
      }
      return total;
    }
    case Pattern::kRandom: {
      std::uint64_t total = 0;
      std::vector<int> deps;
      for (int t = 1; t < p.steps; ++t)
        for (int i = 0; i < p.width; ++i) {
          deps_of(p, t, i, &deps);
          total += deps.size();
        }
      return total;
    }
  }
  return 0;
}

// ---- Task ------------------------------------------------------------------

Task::Task(const Params& p, ArrayProxy<Task, std::int32_t> peers)
    : p_(p), peers_(peers) {}

void Task::begin() { run_step(); }

void Task::input(const TaskMsg& m) {
  if (!gather_.offer(m.step, m)) return;  // buffered for a later step, or stale
  if (!m.data.empty()) acc_ += m.data[0];
  ++inputs_;
  if (gather_.accept()) run_step();
}

void Task::run_step() {
  const int t = gather_.step();
  const std::int32_t me = index();
  charm::charge(p_.grain);
  ++executed_;
  gather_.close();

  if (t + 1 >= p_.steps) {
    contribute({static_cast<double>(executed_), static_cast<double>(inputs_)},
               ReduceOp::kSum, done_cb);
    return;
  }

  // Open the next gather before emitting: our own self edge is still pending,
  // so the gather cannot complete from buffered early arrivals alone.
  std::vector<int> shape;
  deps_of(p_, t + 1, me, &shape);
  gather_.open(t + 1, static_cast<int>(shape.size()),
               [&](const TaskMsg& m) { input(m); });

  TaskMsg out;
  out.step = t + 1;
  out.src = me;
  out.data.assign(static_cast<std::size_t>(p_.payload_doubles), 0.5);
  if (!out.data.empty()) out.data[0] = acc_ + static_cast<double>(me);

  dependents_of(p_, t, me, &shape);
  for (int j : shape) {
    if (p_.use_tram && tram_stream.has_value()) {
      tram_stream->send(static_cast<std::int32_t>(j), out);
    } else {
      peers_[static_cast<std::int32_t>(j)].send<&Task::input>(out);
    }
  }
}

void Task::pup(pup::Er& p) {
  ArrayElementBase::pup(p);
  p | p_;
  p | peers_;
  p | gather_;
  p | executed_;
  p | inputs_;
  p | acc_;
}

// ---- run_cell --------------------------------------------------------------

CellResult run_cell(Runtime& rt, const Params& p) {
  Registry::name_entry<&Task::input>("Task::input");
  Registry::name_entry<&Task::begin>("Task::begin");

  auto tasks = ArrayProxy<Task, std::int32_t>::create(rt);
  const int P = rt.active_pes();
  for (int i = 0; i < p.width; ++i) {
    tasks.seed(static_cast<std::int32_t>(i),
               static_cast<int>(static_cast<long>(i) * P / p.width), p, tasks);
  }
  if (p.use_tram) {
    Task::tram_stream.emplace(rt, tasks,
                              tram::Params{static_cast<std::size_t>(p.tram_buffer), 8});
  }

  struct Shared {
    bool done = false;
    double executed = 0;
    double inputs = 0;
    int flush_rounds = 0;
  };
  auto st = std::make_shared<Shared>();
  Task::done_cb = Callback::to_function([st](ReductionResult&& r) {
    st->done = true;
    st->executed = r.num(0);
    st->inputs = r.num(1);
  });

  const std::uint64_t msgs0 = rt.messages_sent();
  const std::uint64_t bytes0 = rt.bytes_sent();

  rt.on_pe(0, [&tasks] { tasks.broadcast<&Task::begin>(); });
  if (p.use_tram) {
    // Items below the flush threshold sit in TRAM buffers without keeping the
    // machine alive, so pump: on every quiescence, flush and re-arm until the
    // finish reduction lands.  The round cap turns a stall into a clean stop.
    const int max_rounds = p.steps * 4 + 16;
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [&rt, st, pump, max_rounds] {
      rt.start_quiescence(Callback::to_function([&rt, st, pump, max_rounds](
                                                    ReductionResult&&) {
        if (st->done || st->flush_rounds >= max_rounds) return;
        ++st->flush_rounds;
        if (Task::tram_stream.has_value()) Task::tram_stream->flush_all();
        (*pump)();
      }));
    };
    (*pump)();
  }
  rt.machine().run();

  CellResult r;
  r.tasks = task_count(p);
  r.edges = edge_count(p);
  r.executed = st->executed;
  r.inputs = st->inputs;
  r.msgs = rt.messages_sent() - msgs0;
  r.bytes = rt.bytes_sent() - bytes0;
  r.makespan = rt.machine().max_pe_clock();
  const int per_pe = (p.width + P - 1) / P;
  r.ideal = p.grain * static_cast<double>(p.steps) * static_cast<double>(per_pe);
  r.efficiency = r.makespan > 0 ? r.ideal / r.makespan : 0;
  r.overhead_per_task =
      r.tasks > 0 ? (r.makespan - r.ideal) * static_cast<double>(P) /
                        static_cast<double>(r.tasks)
                  : 0;
  if (p.use_tram && Task::tram_stream.has_value())
    r.tram_aggregation = Task::tram_stream->core().aggregation();

  Task::tram_stream.reset();
  Task::done_cb = Callback();
  return r;
}

}  // namespace charm::taskbench
