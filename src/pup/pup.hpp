#pragma once
// PUP (Pack/UnPack) serialization framework, modeled after Charm++'s PUP::er.
//
// A single user-written `pup` member function describes an object's state; the
// same function drives sizing, packing to a byte stream, and unpacking from a
// byte stream.  This is the substrate for chare migration, disk checkpoints,
// and the double in-memory checkpoint protocol.
//
//   struct A {
//     int foo; std::array<float, 32> bar;
//     void pup(pup::Er& p) { p | foo; p | bar; }
//   };

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace pup {

/// Marks a user type as safe to serialize by raw byte copy.  Specialize for
/// POD structs that contain no pointers:
///   template<> struct AsBytes<MyPod> : std::true_type {};
template <class T>
struct AsBytes : std::false_type {};

/// Base serializer.  Concrete modes: Sizer, Packer, Unpacker.
class Er {
 public:
  enum class Mode { kSizing, kPacking, kUnpacking };

  explicit Er(Mode m) : mode_(m) {}
  virtual ~Er() = default;
  Er(const Er&) = delete;
  Er& operator=(const Er&) = delete;

  Mode mode() const { return mode_; }
  bool sizing() const { return mode_ == Mode::kSizing; }
  bool packing() const { return mode_ == Mode::kPacking; }
  bool unpacking() const { return mode_ == Mode::kUnpacking; }

  /// Process `n` raw bytes at `p` (read on pack, write on unpack).
  virtual void bytes(void* p, std::size_t n) = 0;

 private:
  Mode mode_;
};

/// Pass 1: computes the packed size of an object without writing anything.
class Sizer final : public Er {
 public:
  Sizer() : Er(Mode::kSizing) {}
  void bytes(void*, std::size_t n) override { size_ += n; }
  std::size_t size() const { return size_; }

 private:
  std::size_t size_ = 0;
};

/// Pass 2: appends the object's bytes to an owned buffer.
class Packer final : public Er {
 public:
  explicit Packer(std::vector<std::byte>& out) : Er(Mode::kPacking), out_(out) {}
  void bytes(void* p, std::size_t n) override {
    const auto* b = static_cast<const std::byte*>(p);
    out_.insert(out_.end(), b, b + n);
  }

 private:
  std::vector<std::byte>& out_;
};

/// Pass 3: reads the object's bytes back out of a buffer.
class Unpacker final : public Er {
 public:
  Unpacker(const std::byte* data, std::size_t size)
      : Er(Mode::kUnpacking), data_(data), size_(size) {}
  explicit Unpacker(const std::vector<std::byte>& buf)
      : Unpacker(buf.data(), buf.size()) {}

  void bytes(void* p, std::size_t n) override {
    if (cursor_ + n > size_) throw std::out_of_range("pup::Unpacker: buffer underrun");
    if (n == 0) return;  // empty vectors unpack into a null data() pointer
    std::memcpy(p, data_ + cursor_, n);
    cursor_ += n;
  }
  std::size_t remaining() const { return size_ - cursor_; }
  std::size_t cursor() const { return cursor_; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
};

// ---- dispatch -------------------------------------------------------------

template <class T>
concept HasPupMethod = requires(T& t, Er& p) { t.pup(p); };

template <class T>
concept RawPuppable =
    std::is_arithmetic_v<std::remove_cv_t<T>> || std::is_enum_v<std::remove_cv_t<T>> ||
    AsBytes<std::remove_cv_t<T>>::value;

template <RawPuppable T>
inline Er& operator|(Er& p, T& v) {
  p.bytes(const_cast<std::remove_cv_t<T>*>(&v), sizeof(T));
  return p;
}

template <HasPupMethod T>
inline Er& operator|(Er& p, T& v) {
  v.pup(p);
  return p;
}

/// Charm++-style helper for C arrays of puppable elements.
template <class T>
inline void PUParray(Er& p, T* arr, std::size_t n) {
  if constexpr (RawPuppable<T>) {
    p.bytes(arr, n * sizeof(T));
  } else {
    for (std::size_t i = 0; i < n; ++i) p | arr[i];
  }
}

// ---- standard library support ---------------------------------------------

inline Er& operator|(Er& p, std::string& s) {
  std::uint64_t n = s.size();
  p | n;
  if (p.unpacking()) s.resize(static_cast<std::size_t>(n));
  if (n > 0) p.bytes(s.data(), static_cast<std::size_t>(n));
  return p;
}

template <class T>
Er& operator|(Er& p, std::vector<T>& v) {
  std::uint64_t n = v.size();
  p | n;
  if (p.unpacking()) v.resize(static_cast<std::size_t>(n));
  PUParray(p, v.data(), v.size());
  return p;
}

inline Er& operator|(Er& p, std::vector<bool>& v) {
  std::uint64_t n = v.size();
  p | n;
  if (p.unpacking()) v.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint8_t b = p.unpacking() ? 0 : static_cast<std::uint8_t>(v[i]);
    p | b;
    if (p.unpacking()) v[i] = (b != 0);
  }
  return p;
}

template <class T, std::size_t N>
Er& operator|(Er& p, std::array<T, N>& a) {
  PUParray(p, a.data(), N);
  return p;
}

template <class A, class B>
Er& operator|(Er& p, std::pair<A, B>& pr) {
  p | pr.first;
  p | pr.second;
  return p;
}

template <class T>
Er& operator|(Er& p, std::optional<T>& o) {
  std::uint8_t has = o.has_value() ? 1 : 0;
  p | has;
  if (p.unpacking()) {
    if (has) {
      o.emplace();
      p | *o;
    } else {
      o.reset();
    }
  } else if (has) {
    p | *o;
  }
  return p;
}

template <class T>
Er& operator|(Er& p, std::deque<T>& d) {
  std::uint64_t n = d.size();
  p | n;
  if (p.unpacking()) d.resize(static_cast<std::size_t>(n));
  for (auto& e : d) p | e;
  return p;
}

namespace detail {
// Associative containers: pack as (count, k, v, k, v, ...).
template <class Map>
Er& pup_map(Er& p, Map& m) {
  std::uint64_t n = m.size();
  p | n;
  if (p.unpacking()) {
    m.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      typename Map::key_type k{};
      typename Map::mapped_type v{};
      p | k;
      p | v;
      m.emplace(std::move(k), std::move(v));
    }
  } else {
    for (auto& [k, v] : m) {
      p | const_cast<typename Map::key_type&>(k);
      p | v;
    }
  }
  return p;
}

template <class SetT>
Er& pup_set(Er& p, SetT& s) {
  std::uint64_t n = s.size();
  p | n;
  if (p.unpacking()) {
    s.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      typename SetT::key_type k{};
      p | k;
      s.insert(std::move(k));
    }
  } else {
    for (auto& k : s) p | const_cast<typename SetT::key_type&>(k);
  }
  return p;
}
}  // namespace detail

template <class K, class V, class C, class A>
Er& operator|(Er& p, std::map<K, V, C, A>& m) { return detail::pup_map(p, m); }
template <class K, class V, class H, class E, class A>
Er& operator|(Er& p, std::unordered_map<K, V, H, E, A>& m) { return detail::pup_map(p, m); }
template <class K, class C, class A>
Er& operator|(Er& p, std::set<K, C, A>& s) { return detail::pup_set(p, s); }
template <class K, class H, class E, class A>
Er& operator|(Er& p, std::unordered_set<K, H, E, A>& s) { return detail::pup_set(p, s); }

// ---- convenience round-trip helpers ----------------------------------------

template <class T>
std::size_t size_of(T& v) {
  Sizer s;
  s | v;
  return s.size();
}

template <class T>
std::vector<std::byte> to_bytes(T& v) {
  std::vector<std::byte> out;
  out.reserve(size_of(v));
  Packer pk(out);
  pk | v;
  return out;
}

template <class T>
void from_bytes(const std::vector<std::byte>& buf, T& v) {
  Unpacker u(buf);
  u | v;
}

template <class T>
T make_from_bytes(const std::vector<std::byte>& buf) {
  T v{};
  from_bytes(buf, v);
  return v;
}

}  // namespace pup

// Charm++-compatible spelling used throughout the paper's listings (Fig 3).
namespace PUP {
using er = pup::Er;
}
