// Histogram sort implementation plus the shared Sorter/Library machinery.

#include <algorithm>
#include <cmath>

#include "sort/sorting.hpp"

namespace charm::sortlib {

using detail::SortState;

// ---- Sorter entries --------------------------------------------------------------

void Sorter::local_sort(const StartMsg&) {
  const double n = static_cast<double>(keys.size());
  std::sort(keys.begin(), keys.end());
  charm::charge(state_->params.cmp_cost * n * std::max(1.0, std::log2(std::max(2.0, n))));
  // Report local extrema and count: {min, -max, n} under elementwise kMin.
  const double mn = keys.empty() ? 9e15 : static_cast<double>(keys.front());
  const double mx = keys.empty() ? 0 : static_cast<double>(keys.back());
  contribute(std::vector<double>{mn, -mx, -n}, ReduceOp::kMin, state_->done_internal);
}

void Sorter::count(const SplitterMsg& m) {
  // Bucket counts via binary search per splitter boundary.
  std::vector<double> counts(m.splitters.size() + 1, 0.0);
  std::size_t prev = 0;
  for (std::size_t s = 0; s < m.splitters.size(); ++s) {
    const auto it = std::upper_bound(keys.begin(), keys.end(), m.splitters[s]);
    const auto pos = static_cast<std::size_t>(it - keys.begin());
    counts[s] = static_cast<double>(pos - prev);
    prev = pos;
  }
  counts[m.splitters.size()] = static_cast<double>(keys.size() - prev);
  charm::charge(state_->params.cmp_cost * static_cast<double>(m.splitters.size()) *
                std::max(1.0, std::log2(std::max(2.0, static_cast<double>(keys.size())))));
  contribute(counts, ReduceOp::kSum, state_->done_internal);
}

void Sorter::exchange(const SplitterMsg& m) {
  const int P = state_->npes;
  auto proxy = state_->proxy();
  exchange_sent_ = true;
  std::size_t prev = 0;
  for (int dest = 0; dest < P; ++dest) {
    std::size_t end;
    if (dest < P - 1) {
      const auto it = std::upper_bound(keys.begin(), keys.end(),
                                       m.splitters[static_cast<std::size_t>(dest)]);
      end = static_cast<std::size_t>(it - keys.begin());
    } else {
      end = keys.size();
    }
    end = std::max(end, prev);  // splitters are clamped monotone, belt+braces
    KeysMsg chunk;
    chunk.from = my_pe();
    chunk.keys.assign(keys.begin() + static_cast<std::ptrdiff_t>(prev),
                      keys.begin() + static_cast<std::ptrdiff_t>(end));
    prev = end;
    proxy.on(dest).send<&Sorter::accept>(chunk);
  }
  keys.clear();
}

void Sorter::accept(const KeysMsg& m) {
  incoming_.push_back(m.keys);
  ++chunks_received_;
  finish_exchange_if_done();
}

void Sorter::finish_exchange_if_done() {
  // Chunks from fast senders may land before our own exchange() broadcast
  // leg; wait for both.
  if (!exchange_sent_ || chunks_received_ < state_->npes) return;
  chunks_received_ = 0;
  exchange_sent_ = false;
  // k-way merge of sorted runs (runs arrive sorted because senders were).
  std::size_t total = 0;
  for (const auto& run : incoming_) total += run.size();
  keys.clear();
  keys.reserve(total);
  for (const auto& run : incoming_) keys.insert(keys.end(), run.begin(), run.end());
  incoming_.clear();
  std::sort(keys.begin(), keys.end());  // stand-in for the k-way merge
  charm::charge(state_->params.cmp_cost * static_cast<double>(total) *
                std::max(1.0, std::log2(static_cast<double>(std::max(2, state_->npes)))));
  contribute(state_->done_internal);
}

// ---- Library / histsort driver ----------------------------------------------------

Library::Library(Runtime& rt, SortParams params)
    : rt_(rt), state_(std::make_shared<SortState>()) {
  state_->params = params;
  state_->npes = rt.npes();
  auto st = state_;
  proxy_ = GroupProxy<Sorter>::create(rt, [st](int) { return std::make_unique<Sorter>(st); });
  state_->col = proxy_.id();
}

void Library::fill_random(std::uint64_t seed, std::size_t keys_per_pe) {
  for (int pe = 0; pe < rt_.npes(); ++pe) {
    auto* s = static_cast<Sorter*>(
        rt_.collection(proxy_.id()).find(pe, IndexTraits<std::int32_t>::encode(pe)));
    sim::Rng rng(sim::derive_seed(seed, static_cast<std::uint64_t>(pe)));
    s->keys.resize(keys_per_pe);
    for (auto& k : s->keys) k = rng.next_u64() & ((1ull << 48) - 1);
  }
}

const std::vector<std::uint64_t>& Library::keys_on(int pe) const {
  auto* s = static_cast<Sorter*>(
      rt_.collection(proxy_.id()).find(pe, IndexTraits<std::int32_t>::encode(pe)));
  return s->keys;
}

std::uint64_t Library::total_keys() const {
  std::uint64_t n = 0;
  for (int pe = 0; pe < rt_.npes(); ++pe) n += keys_on(pe).size();
  return n;
}

bool Library::validate() const {
  std::uint64_t prev = 0;
  for (int pe = 0; pe < rt_.npes(); ++pe) {
    for (std::uint64_t k : keys_on(pe)) {
      if (k < prev) return false;
      prev = k;
    }
  }
  return true;
}

namespace {

// The phase-transition helpers take the state as a raw pointer on purpose:
// the [st] closures below are stored into st->done_internal, i.e. inside the
// state itself, and capturing the owning shared_ptr there would make the
// state own itself (an unreclaimable cycle).  The callbacks can only fire
// while the Library and its Sorter elements (the real owners) are alive.
void refine_and_continue(SortState* st, const std::vector<double>& counts);

void start_probing(SortState* st, double key_min, double key_max) {
  const int P = st->npes;
  st->splitters.resize(static_cast<std::size_t>(P - 1));
  st->lo.assign(static_cast<std::size_t>(P - 1), static_cast<std::uint64_t>(key_min));
  st->hi.assign(static_cast<std::size_t>(P - 1), static_cast<std::uint64_t>(key_max) + 1);
  for (int s = 0; s < P - 1; ++s) {
    st->splitters[static_cast<std::size_t>(s)] = static_cast<std::uint64_t>(
        key_min + (key_max - key_min) * (s + 1) / static_cast<double>(P));
  }
  st->rounds_left = st->params.probe_rounds;
  // Issue the first histogram probe.
  st->done_internal = Callback::to_function([st](ReductionResult&& r) {
    refine_and_continue(st, r.nums);
  });
  st->proxy().broadcast<&Sorter::count>(SplitterMsg{st->splitters});
}

void begin_exchange(SortState* st) {
  // Barrier contribution from every PE's merge completes the sort.
  st->done_internal = Callback::to_function([st](ReductionResult&&) {
    st->done.invoke(Runtime::current(), ReductionResult{});
  });
  st->proxy().broadcast<&Sorter::exchange>(SplitterMsg{st->splitters});
}

void refine_and_continue(SortState* st, const std::vector<double>& counts) {
  // Root-side refinement: adjust each splitter toward its ideal cumulative
  // rank by bisecting its bracket.
  Runtime::current().charge(1e-6 + 0.2e-6 * static_cast<double>(counts.size()));
  const int P = st->npes;
  double total = 0;
  for (double c : counts) total += c;
  st->total_keys = total;

  double cum = 0;
  std::vector<double> cum_at(static_cast<std::size_t>(P - 1), 0);
  for (int s = 0; s < P - 1; ++s) {
    cum += counts[static_cast<std::size_t>(s)];
    cum_at[static_cast<std::size_t>(s)] = cum;
  }
  --st->rounds_left;
  if (st->rounds_left <= 0) {
    begin_exchange(st);
    return;
  }
  for (int s = 0; s < P - 1; ++s) {
    const double ideal = total * (s + 1) / static_cast<double>(P);
    auto& sp = st->splitters[static_cast<std::size_t>(s)];
    auto& lo = st->lo[static_cast<std::size_t>(s)];
    auto& hi = st->hi[static_cast<std::size_t>(s)];
    if (cum_at[static_cast<std::size_t>(s)] < ideal) {
      lo = sp;
    } else {
      hi = sp;
    }
    sp = lo + (hi - lo) / 2;
  }
  // Independent bisection brackets can momentarily cross; keep the splitter
  // vector monotone so bucket boundaries stay well-formed.
  for (std::size_t s2 = 1; s2 < st->splitters.size(); ++s2)
    st->splitters[s2] = std::max(st->splitters[s2], st->splitters[s2 - 1]);
  st->done_internal = Callback::to_function([st](ReductionResult&& r) {
    refine_and_continue(st, r.nums);
  });
  st->proxy().broadcast<&Sorter::count>(SplitterMsg{st->splitters});
}

}  // namespace

void Library::hist_sort(Callback done) {
  auto* st = state_.get();  // raw: the closure lives inside *st (see above)
  st->done = std::move(done);
  st->done_internal = Callback::to_function([st](ReductionResult&& r) {
    // r = {min, -max, -count} under kMin.
    start_probing(st, r.num(0), -r.num(1));
  });
  proxy_.broadcast<&Sorter::local_sort>(StartMsg{});
}

}  // namespace charm::sortlib
