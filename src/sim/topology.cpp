#include "sim/topology.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace sim {

namespace {
// Factor n into three near-equal dims (dx >= dy >= dz, dx*dy*dz == n).
std::array<int, 3> factor3(int n) {
  std::array<int, 3> best = {n, 1, 1};
  double best_score = 1e300;
  for (int a = 1; a * a * a <= n * 4; ++a) {
    if (n % a != 0) continue;
    int rem = n / a;
    for (int b = a; b * b <= rem * 2; ++b) {
      if (rem % b != 0) continue;
      int c = rem / b;
      // Prefer balanced factors: minimize surface-to-volume-ish metric.
      double score = static_cast<double>(a) * a + static_cast<double>(b) * b +
                     static_cast<double>(c) * c;
      if (score < best_score) {
        best_score = score;
        best = {c, b, a};
      }
    }
  }
  return best;
}
}  // namespace

Torus3D::Torus3D(int npes) : npes_(npes), dims_(factor3(npes)) {
  if (npes <= 0) throw std::invalid_argument("Torus3D: npes must be positive");
}

int Torus3D::pe_at(const std::array<int, 3>& c) const {
  return c[0] + dims_[0] * (c[1] + dims_[1] * c[2]);
}

int Torus3D::torus_dist(int a, int b, int extent) const {
  int d = std::abs(a - b);
  return d <= extent - d ? d : extent - d;
}

int Torus3D::hops(int src, int dst) const {
  if (src == dst) return 0;
  const auto& cs = coords(src);
  const auto& cd = coords(dst);
  int h = 0;
  for (int i = 0; i < 3; ++i) h += torus_dist(cs[i], cd[i], dims_[i]);
  return h;
}

int Torus3D::first_differing_dim(int src, int dst) const {
  const auto& cs = coords(src);
  const auto& cd = coords(dst);
  for (int i = 0; i < 3; ++i)
    if (cs[i] != cd[i]) return i;
  return -1;
}

int Torus3D::next_on_route(int src, int dst) const {
  // TRAM-style dimension-ordered routing: travel the lowest differing
  // dimension all the way to dst's coordinate in that dimension.  The result
  // is a *peer* of src (differs in exactly one dimension).
  int dim = first_differing_dim(src, dst);
  if (dim < 0) return dst;
  auto c = coords(src);
  c[dim] = coords(dst)[dim];
  return pe_at(c);
}

}  // namespace sim
