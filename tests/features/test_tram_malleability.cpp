// TRAM aggregation/routing tests and malleable shrink/expand tests.

#include <gtest/gtest.h>

#include "malleability/malleability.hpp"
#include "runtime/charm.hpp"
#include "tram/tram.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;

struct ItemMsg {
  int v = 0;
  void pup(pup::Er& p) { p | v; }
};

class Sink : public charm::ArrayElement<Sink, std::int32_t> {
 public:
  std::vector<int> got;
  void take(const ItemMsg& m) {
    got.push_back(m.v);
    charm::charge(0.1e-6);
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | got;
  }
};

using charmtest::Harness;

Sink* find_sink(Runtime& rt, CollectionId col, std::int32_t ix) {
  for (int pe = 0; pe < rt.npes(); ++pe) {
    auto* f = rt.collection(col).find(pe, IndexTraits<std::int32_t>::encode(ix));
    if (f) return static_cast<Sink*>(f);
  }
  return nullptr;
}

TEST(Tram, AllItemsDeliveredExactlyOnce) {
  Harness h(27);  // 3x3x3 torus: multi-hop routing exercised
  auto arr = ArrayProxy<Sink>::create(h.rt);
  const int nelems = 54;
  for (int i = 0; i < nelems; ++i) arr.seed(i, i % 27);
  tram::Stream<&Sink::take> stream(h.rt, arr, {.buffer_items = 8, .item_overhead = 8});

  const int per_sender = 40;
  bool flushed = false;
  h.rt.on_pe(0, [&] {
    sim::Rng rng(5);
    for (int k = 0; k < per_sender; ++k) {
      stream.send(static_cast<std::int32_t>(rng.next_below(nelems)), ItemMsg{k});
    }
    stream.flush_all();
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      flushed = true;
    }));
  });
  h.machine.run();
  ASSERT_TRUE(flushed);

  int total = 0;
  for (int i = 0; i < nelems; ++i) total += static_cast<int>(find_sink(h.rt, arr.id(), i)->got.size());
  EXPECT_EQ(total, per_sender);
  EXPECT_EQ(stream.core().items_inserted(), static_cast<std::uint64_t>(per_sender));
}

TEST(Tram, AggregatesFineGrainedTraffic) {
  Harness h(16);
  auto arr = ArrayProxy<Sink>::create(h.rt);
  for (int i = 0; i < 16; ++i) arr.seed(i, i);
  tram::Stream<&Sink::take> stream(h.rt, arr, {.buffer_items = 32, .item_overhead = 8});
  h.rt.on_pe(0, [&] {
    for (int k = 0; k < 960; ++k) stream.send(static_cast<std::int32_t>(k % 15 + 1), ItemMsg{k});
    stream.flush_all();
  });
  h.machine.run();
  EXPECT_GT(stream.core().aggregation(), 8.0)
      << "TRAM should pack many items per network message";
}

TEST(Tram, BatchAndControlCountersAccountForWireTraffic) {
  Harness h(8);
  auto arr = ArrayProxy<Sink>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i);
  tram::Stream<&Sink::take> stream(h.rt, arr, {.buffer_items = 16, .item_overhead = 8});
  h.rt.on_pe(0, [&] {
    for (int k = 0; k < 320; ++k) stream.send(static_cast<std::int32_t>(k % 7 + 1), ItemMsg{k});
    stream.flush_all();
  });
  h.machine.run();
  // Every item went somewhere, so batches carry payload plus the modeled
  // per-item overhead; flush_all posts one 16-byte control message per PE.
  EXPECT_EQ(stream.core().items_inserted(), 320u);
  EXPECT_GT(stream.core().batch_bytes(), 320u * 8u)
      << "batch bytes must include per-item overhead on top of payload";
  EXPECT_EQ(stream.core().control_messages(), 8u);
  EXPECT_EQ(stream.core().control_bytes(), 8u * 16u);
}

TEST(Tram, FewerMessagesThanDirectSends) {
  // The headline TRAM effect: message count collapses by the aggregation factor.
  const int items = 2000;
  std::uint64_t direct_msgs, tram_msgs;
  {
    Harness h(16);
    auto arr = ArrayProxy<Sink>::create(h.rt);
    for (int i = 0; i < 16; ++i) arr.seed(i, i);
    const std::uint64_t before = h.rt.messages_sent();
    h.rt.on_pe(0, [&] {
      sim::Rng rng(3);
      for (int k = 0; k < items; ++k)
        arr[static_cast<std::int32_t>(rng.next_below(16))].send<&Sink::take>(ItemMsg{k});
    });
    h.machine.run();
    direct_msgs = h.rt.messages_sent() - before;
  }
  {
    Harness h(16);
    auto arr = ArrayProxy<Sink>::create(h.rt);
    for (int i = 0; i < 16; ++i) arr.seed(i, i);
    tram::Stream<&Sink::take> stream(h.rt, arr, {.buffer_items = 64, .item_overhead = 8});
    const std::uint64_t before = h.rt.messages_sent();
    h.rt.on_pe(0, [&] {
      sim::Rng rng(3);
      for (int k = 0; k < items; ++k)
        stream.send(static_cast<std::int32_t>(rng.next_below(16)), ItemMsg{k});
      stream.flush_all();
    });
    h.machine.run();
    tram_msgs = h.rt.messages_sent() - before;
  }
  EXPECT_LT(tram_msgs * 4, direct_msgs);
}

TEST(Tram, RoutesToMigratedElements) {
  Harness h(8);
  auto arr = ArrayProxy<Sink>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i);
  tram::Stream<&Sink::take> stream(h.rt, arr, {.buffer_items = 4, .item_overhead = 8});
  h.rt.on_pe(5, [&] {
    // Move element 5 away from where everyone thinks it is, then stream to it.
    h.rt.migrate(arr.id(), IndexTraits<std::int32_t>::encode(5), 2);
  });
  h.machine.run();
  h.machine.resume();
  h.rt.on_pe(0, [&] {
    for (int k = 0; k < 6; ++k) stream.send(5, ItemMsg{k});
    stream.flush_all();
  });
  h.machine.run();
  EXPECT_EQ(find_sink(h.rt, arr.id(), 5)->got.size(), 6u);
}

// ---- malleability ------------------------------------------------------------

struct StepMsg {
  int remaining = 0;
  void pup(pup::Er& p) { p | remaining; }
};

class Mol : public charm::ArrayElement<Mol, std::int32_t> {
 public:
  int pending = 0;
  int iters = 0;
  void step(const StepMsg& m) {
    pending = m.remaining;
    ++iters;
    charm::charge(1e-3);
    at_sync();
  }
  void resume_from_sync() override {
    if (pending > 0) {
      charm::ArrayProxy<Mol> self(collection_id());
      self[index()].send<&Mol::step>(StepMsg{pending - 1});
    }
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | pending;
    p | iters;
  }
};

TEST(Malleability, ShrinkEvacuatesRemovedPes) {
  sim::Machine machine(sim::MachineConfig{8, {}, 4});
  Runtime rt(machine);
  auto arr = ArrayProxy<Mol>::create(rt);
  for (int i = 0; i < 32; ++i) arr.seed(i, i % 8);
  rt.lb().register_collection(arr.id());
  ccs::Server server(rt, {.shrink_base_s = 0.1, .expand_base_s = 0.2, .per_pe_s = 0});
  bool shrunk = false;
  rt.on_pe(0, [&] {
    server.request_shrink(4, Callback::to_function([&](ReductionResult&&) {
      shrunk = true;
    }));
    arr.broadcast<&Mol::step>(StepMsg{6});
  });
  machine.run();
  ASSERT_TRUE(shrunk);
  EXPECT_EQ(rt.active_pes(), 4);
  for (int pe = 4; pe < 8; ++pe)
    EXPECT_TRUE(rt.collection(arr.id()).local(pe).elems.empty())
        << "PE " << pe << " must be evacuated";
  int total = 0;
  for (int pe = 0; pe < 4; ++pe)
    total += static_cast<int>(rt.collection(arr.id()).local(pe).elems.size());
  EXPECT_EQ(total, 32);
}

TEST(Malleability, ShrinkThenExpandRestoresThroughput) {
  sim::Machine machine(sim::MachineConfig{8, {}, 4});
  Runtime rt(machine);
  auto arr = ArrayProxy<Mol>::create(rt);
  for (int i = 0; i < 32; ++i) arr.seed(i, i % 8);
  rt.lb().register_collection(arr.id());
  ccs::Server server(rt, {.shrink_base_s = 0.05, .expand_base_s = 0.1, .per_pe_s = 0});

  std::vector<double> round_times;
  double last = 0;
  // Observe per-round completion times via the LB history afterwards; here we
  // just drive: 4 rounds at 8 PEs, shrink, 4 rounds at 4, expand, 4 more.
  rt.on_pe(0, [&] {
    last = charm::now();
    arr.broadcast<&Mol::step>(StepMsg{3});
  });
  machine.run();
  machine.resume();
  bool shrunk = false;
  rt.on_pe(0, [&] {
    server.request_shrink(4, Callback::to_function([&](ReductionResult&&) { shrunk = true; }));
    arr.broadcast<&Mol::step>(StepMsg{3});
  });
  machine.run();
  ASSERT_TRUE(shrunk);
  machine.resume();
  bool expanded = false;
  rt.on_pe(0, [&] {
    server.request_expand(8, Callback::to_function([&](ReductionResult&&) { expanded = true; }));
    arr.broadcast<&Mol::step>(StepMsg{3});
  });
  machine.run();
  ASSERT_TRUE(expanded);
  EXPECT_EQ(rt.active_pes(), 8);
  // After expansion, work spreads back over all 8 PEs.
  int occupied = 0;
  for (int pe = 0; pe < 8; ++pe)
    occupied += rt.collection(arr.id()).local(pe).elems.empty() ? 0 : 1;
  EXPECT_GE(occupied, 7);
  (void)round_times;
  (void)last;
}

TEST(Malleability, InvalidTargetsRejected) {
  sim::Machine machine(sim::MachineConfig{4, {}, 4});
  Runtime rt(machine);
  ccs::Server server(rt);
  EXPECT_THROW(server.request_shrink(0, Callback::ignore()), std::invalid_argument);
  EXPECT_THROW(server.request_shrink(8, Callback::ignore()), std::invalid_argument);
  EXPECT_THROW(server.request_expand(2, Callback::ignore()), std::invalid_argument);
}

}  // namespace
