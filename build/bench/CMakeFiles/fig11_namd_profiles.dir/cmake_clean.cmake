file(REMOVE_RECURSE
  "CMakeFiles/fig11_namd_profiles.dir/fig11_namd_profiles.cpp.o"
  "CMakeFiles/fig11_namd_profiles.dir/fig11_namd_profiles.cpp.o.d"
  "fig11_namd_profiles"
  "fig11_namd_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_namd_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
