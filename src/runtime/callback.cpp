#include "runtime/callback.hpp"

#include <memory>
#include <utility>

#include "runtime/runtime.hpp"

namespace charm {

void Callback::invoke(Runtime& rt, ReductionResult&& result) const {
  switch (kind_) {
    case Kind::kIgnore:
      break;
    case Kind::kFunction: {
      auto boxed = std::make_shared<ReductionResult>(std::move(result));
      auto fn = fn_;
      rt.send_control(pe_, 64, [fn, boxed]() { (*fn)(std::move(*boxed)); });
      break;
    }
    case Kind::kElement: {
      rt.send_point(col_, idx_, ep_, pup::to_bytes(result), priority_);
      break;
    }
    case Kind::kBroadcast: {
      rt.broadcast(col_, ep_, pup::to_bytes(result), priority_);
      break;
    }
  }
}

}  // namespace charm
