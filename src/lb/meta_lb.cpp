#include "lb/meta.hpp"

#include "trace/summary.hpp"

namespace charm::lb {

Advisor make_meta_advisor(MetaParams params) {
  return [params](const std::vector<RoundInfo>& history, const RoundInfo& current) {
    if (current.avg_load <= 0) return false;

    // Respect the minimum gap since the last invocation.
    int since_lb = params.min_gap;  // assume far in the past initially
    double last_cost = params.default_lb_cost;
    for (auto it = history.rbegin(); it != history.rend(); ++it) {
      if (it->did_lb) {
        since_lb = current.round - it->round;
        last_cost = it->lb_cost > 0 ? it->lb_cost : params.default_lb_cost;
        break;
      }
    }
    if (since_lb < params.min_gap) return false;

    const double imbalance = current.max_load / current.avg_load;
    if (imbalance < params.imbalance_tol) return false;

    // Benefit: per-round time recovered if the imbalance were flattened,
    // accrued over the horizon.  Trigger when it beats the LB cost.
    const double per_round_gain = current.max_load - current.avg_load;
    return per_round_gain * params.horizon_rounds > last_cost;
  };
}

Advisor make_meta_advisor(MetaParams params, const trace::Tracer* tracer, int npes) {
  Advisor base = make_meta_advisor(params);
  return [base, params, tracer, npes](const std::vector<RoundInfo>& history,
                                      const RoundInfo& current) {
    if (!base(history, current)) return false;
    if (tracer == nullptr || tracer->events().empty()) return true;
    const trace::Summary s = trace::summarize(*tracer, npes);
    const double exec = s.total_exec();
    return exec <= 0 || s.total_busy() >= params.min_busy_fraction * exec;
  };
}

}  // namespace charm::lb
