// Task Bench workload generator: DAG shape invariants, seeded-random graph
// determinism, execution completeness on every pattern/transport, and the
// METG-style overhead metric's sanity properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "taskbench/taskbench.hpp"
#include "test_util.hpp"

namespace {

using charm::taskbench::CellResult;
using charm::taskbench::Params;
using charm::taskbench::Pattern;

constexpr Pattern kAllPatterns[] = {Pattern::kStencil1D, Pattern::kFft,
                                    Pattern::kTree, Pattern::kSweep,
                                    Pattern::kRandom};

Params base_params(Pattern pat) {
  Params p;
  p.pattern = pat;
  p.width = 24;
  p.steps = 6;
  p.grain = 2e-6;
  p.payload_doubles = 4;
  p.fanout = 3;
  p.seed = 7;
  return p;
}

/// Sums deps_of over one gathering step — must match the closed form.
std::uint64_t enumerate_step_edges(const Params& p, int t) {
  std::uint64_t n = 0;
  std::vector<int> deps;
  for (int i = 0; i < p.width; ++i) {
    charm::taskbench::deps_of(p, t, i, &deps);
    n += deps.size();
  }
  return n;
}

TEST(TaskbenchGraph, EdgeCountMatchesEnumeration) {
  for (Pattern pat : kAllPatterns) {
    Params p = base_params(pat);
    std::uint64_t total = 0;
    for (int t = 1; t < p.steps; ++t) total += enumerate_step_edges(p, t);
    EXPECT_EQ(charm::taskbench::edge_count(p), total) << to_string(pat);
    EXPECT_EQ(charm::taskbench::task_count(p),
              static_cast<std::uint64_t>(p.width) * p.steps);
  }
}

TEST(TaskbenchGraph, KnownClosedForms) {
  Params p = base_params(Pattern::kStencil1D);
  // 5 gathering steps x (3*24 - 2)
  EXPECT_EQ(charm::taskbench::edge_count(p), 5u * 70u);
  p.pattern = Pattern::kSweep;
  EXPECT_EQ(charm::taskbench::edge_count(p), 5u * 47u);
  p.pattern = Pattern::kTree;
  EXPECT_EQ(charm::taskbench::edge_count(p), 5u * 47u);
  // Power-of-two butterfly: every point has a distinct partner, 2W per step.
  Params f = base_params(Pattern::kFft);
  f.width = 16;
  EXPECT_EQ(charm::taskbench::edge_count(f), 5u * 32u);
}

TEST(TaskbenchGraph, DependentsInvertDeps) {
  std::vector<int> deps, outs;
  for (Pattern pat : kAllPatterns) {
    Params p = base_params(pat);
    for (int t = 1; t < p.steps; ++t) {
      for (int i = 0; i < p.width; ++i) {
        charm::taskbench::deps_of(p, t, i, &deps);
        EXPECT_TRUE(std::is_sorted(deps.begin(), deps.end()));
        EXPECT_TRUE(std::binary_search(deps.begin(), deps.end(), i))
            << "missing self dep: " << to_string(pat) << " t=" << t << " i=" << i;
        for (int s : deps) {
          ASSERT_GE(s, 0);
          ASSERT_LT(s, p.width);
          charm::taskbench::dependents_of(p, t - 1, s, &outs);
          EXPECT_TRUE(std::binary_search(outs.begin(), outs.end(), i))
              << to_string(pat) << " t=" << t << " i=" << i << " dep=" << s;
        }
      }
    }
  }
}

TEST(TaskbenchGraph, RandomGraphIsSeedDeterministicAndSeedSensitive) {
  Params p = base_params(Pattern::kRandom);
  std::vector<int> a, b;
  bool any_differs = false;
  for (int t = 1; t < p.steps; ++t) {
    for (int i = 0; i < p.width; ++i) {
      charm::taskbench::deps_of(p, t, i, &a);
      charm::taskbench::deps_of(p, t, i, &b);
      EXPECT_EQ(a, b);
      Params other = p;
      other.seed = p.seed + 1;
      charm::taskbench::deps_of(other, t, i, &b);
      if (a != b) any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs) << "seed does not influence the random graph";
}

CellResult run(const Params& p, int npes) {
  charmtest::Harness h(npes);
  return charm::taskbench::run_cell(h.rt, p);
}

TEST(TaskbenchRun, AllPatternsCompleteOnPointSends) {
  for (Pattern pat : kAllPatterns) {
    const Params p = base_params(pat);
    const CellResult r = run(p, 4);
    EXPECT_TRUE(r.complete()) << to_string(pat) << ": executed=" << r.executed
                              << "/" << r.tasks << " inputs=" << r.inputs << "/"
                              << r.edges;
    EXPECT_GT(r.msgs, 0u);
    EXPECT_GT(r.bytes, 0u);
  }
}

TEST(TaskbenchRun, AllPatternsCompleteOnTram) {
  for (Pattern pat : kAllPatterns) {
    Params p = base_params(pat);
    p.use_tram = true;
    p.tram_buffer = 4;
    const CellResult r = run(p, 4);
    EXPECT_TRUE(r.complete()) << to_string(pat);
    EXPECT_GT(r.tram_aggregation, 0.0) << to_string(pat);
  }
}

TEST(TaskbenchRun, OverheadIsNonNegativeAndMakespanAboveIdeal) {
  for (Pattern pat : kAllPatterns) {
    const CellResult r = run(base_params(pat), 4);
    EXPECT_GT(r.ideal, 0.0);
    EXPECT_GE(r.makespan, r.ideal) << to_string(pat);
    EXPECT_GE(r.overhead_per_task, 0.0) << to_string(pat);
    EXPECT_GT(r.efficiency, 0.0);
    EXPECT_LE(r.efficiency, 1.0) << to_string(pat);
  }
}

TEST(TaskbenchRun, EfficiencyApproachesOneAsGrainGrows) {
  Params fine = base_params(Pattern::kStencil1D);
  fine.grain = 1e-7;
  Params coarse = fine;
  coarse.grain = 1e-2;
  const CellResult rf = run(fine, 4);
  const CellResult rc = run(coarse, 4);
  // Same graph, same per-message costs: a 10^5 coarser grain has to drown the
  // runtime overhead almost completely.
  EXPECT_GT(rc.efficiency, rf.efficiency);
  EXPECT_GT(rc.efficiency, 0.99);
  // Per-task overhead is a property of the runtime, not the grain: it must
  // stay the same order of magnitude, not scale with the 10^5 grain change.
  EXPECT_LT(rc.overhead_per_task, rf.overhead_per_task * 10 + 1e-6);
}

TEST(TaskbenchRun, MakespanIsRunToRunDeterministic) {
  const Params p = base_params(Pattern::kRandom);
  const CellResult a = run(p, 4);
  const CellResult b = run(p, 4);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.msgs, b.msgs);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(TaskbenchRun, WiderMachineShrinksMakespan) {
  Params p = base_params(Pattern::kStencil1D);
  p.width = 32;
  p.grain = 1e-4;  // compute-dominated, so P must matter
  const CellResult r2 = run(p, 2);
  const CellResult r8 = run(p, 8);
  EXPECT_LT(r8.makespan, r2.makespan);
  EXPECT_LT(r8.ideal, r2.ideal);
}

}  // namespace
