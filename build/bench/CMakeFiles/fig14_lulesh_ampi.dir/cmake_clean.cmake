file(REMOVE_RECURSE
  "CMakeFiles/fig14_lulesh_ampi.dir/fig14_lulesh_ampi.cpp.o"
  "CMakeFiles/fig14_lulesh_ampi.dir/fig14_lulesh_ampi.cpp.o.d"
  "fig14_lulesh_ampi"
  "fig14_lulesh_ampi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_lulesh_ampi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
