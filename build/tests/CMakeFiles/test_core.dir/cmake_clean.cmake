file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_collectives.cpp.o"
  "CMakeFiles/test_core.dir/core/test_collectives.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_location.cpp.o"
  "CMakeFiles/test_core.dir/core/test_location.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pup.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pup.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_runtime_basic.cpp.o"
  "CMakeFiles/test_core.dir/core/test_runtime_basic.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_sim.cpp.o"
  "CMakeFiles/test_core.dir/core/test_sim.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_topology.cpp.o"
  "CMakeFiles/test_core.dir/core/test_topology.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
