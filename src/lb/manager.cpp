#include "lb/manager.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "lb/distributed.hpp"
#include "runtime/runtime.hpp"
#include "sim/fault_injector.hpp"
#include "sim/rng.hpp"
#include "trace/trace.hpp"

namespace charm::lb {

Manager::Manager(Runtime& rt) : rt_(rt) {}
Manager::~Manager() = default;

void Manager::register_collection(CollectionId col) {
  cols_.push_back(col);
  if (static_cast<std::size_t>(col) >= tracked_.size())
    tracked_.resize(static_cast<std::size_t>(col) + 1, 0);
  if (tracked_[static_cast<std::size_t>(col)]) return;
  tracked_[static_cast<std::size_t>(col)] = 1;
  // Ingest elements that were seeded before the collection registered; later
  // lifecycle events arrive through the runtime hooks.
  Collection& c = rt_.collection(col);
  c.pe.for_each_touched([&](std::size_t, PeLocal& pl) {
    for (auto& [ix, obj] : pl.elems) {
      (void)ix;
      on_element_added(c, *obj);
    }
  });
}

void Manager::set_strategy(std::unique_ptr<Strategy> s) { strategy_ = std::move(s); }

void Manager::request_reconfig(int new_active_pes, double restart_delay, Callback done) {
  reconfig_pending_ = true;
  reconfig_target_ = new_active_pes;
  reconfig_delay_ = restart_delay;
  reconfig_done_ = std::move(done);
}

std::int64_t Manager::registered_total() const {
  std::int64_t n = 0;
  for (CollectionId c : cols_) n += rt_.collection(c).total_elements;
  return n;
}

void Manager::on_element_added(Collection& c, ArrayElementBase& e) {
  if (!tracked(c.id)) return;
  e.lb_slot_ = db_.add(c.id, e.idx_, e.pe_, e.lb_round_load_, e.migratable_, c.migratable,
                       e.lb_coords(), &e);
}

void Manager::on_element_removed(ArrayElementBase& e) {
  if (e.lb_slot_ == LoadDb::kNoSlot) return;
  db_.remove(e.lb_slot_);
  e.lb_slot_ = LoadDb::kNoSlot;
}

void Manager::element_sync(ArrayElementBase& elem) {
  if (phase_ != Phase::kCollecting)
    throw std::logic_error("at_sync called while an LB round is in progress");
  // O(1) load-database update: the value snapshotted below is exactly what
  // the strategies will read for this element this round.
  if (elem.lb_slot_ != LoadDb::kNoSlot) db_.update_load(elem.lb_slot_, elem.lb_load_);
  // Snapshot-and-reset at the sync point: work done after this instant (the
  // resume broadcast can race other elements' next-step messages) belongs to
  // the next round.
  elem.lb_round_load_ = elem.lb_load_;
  elem.lb_load_ = 0;
  ++synced_;
  if (synced_ >= registered_total()) round_complete();
}

const SpeedMap& Manager::current_speeds() {
  speeds_ = SpeedMap();
  rt_.machine().for_each_touched_pe([&](int pe, const sim::Pe& p) {
    if (p.freq() != 1.0) speeds_.set(pe, p.freq());
  });
  return speeds_;
}

Stats Manager::collect_stats(int target_pes) {
  return db_.snapshot(target_pes, current_speeds());
}

Stats Manager::snapshot_stats(int target_pes) { return collect_stats(target_pes); }

Stats Manager::rebuild_stats(int target_pes) const {
  Stats s;
  s.npes = target_pes;
  // Untouched PEs read as frequency 1.0 — the SpeedMap default — so a
  // touched-only walk sees every non-default speed without a dense O(P)
  // vector.
  const sim::Machine& m = rt_.machine();
  m.for_each_touched_pe([&](int pe, const sim::Pe& p) {
    if (p.freq() != 1.0) s.pe_speed.set(pe, p.freq());
  });
  s.chares.reserve(static_cast<std::size_t>(registered_total()));
  for (CollectionId col : cols_) {
    Collection& c = rt_.collection(col);
    c.pe.for_each_touched([&](std::size_t pe, PeLocal& pl) {
      for (auto& [ix, obj] : pl.elems) {
        ChareInfo info;
        info.col = col;
        info.idx = ix;
        info.pe = static_cast<int>(pe);
        // Measured load is in virtual seconds on the source PE; normalize
        // back to work units so strategies can predict times on other PEs.
        info.work = obj->lb_round_load_ * s.pe_speed[pe];
        info.migratable = obj->migratable_ && c.migratable;
        info.coords = obj->lb_coords();
        s.chares.push_back(info);
      }
    });
  }
  // Deterministic order regardless of hash-map iteration details.
  std::sort(s.chares.begin(), s.chares.end(), [](const ChareInfo& a, const ChareInfo& b) {
    if (a.col != b.col) return a.col < b.col;
    if (a.idx.a != b.idx.a) return a.idx.a < b.idx.a;
    return a.idx.b < b.idx.b;
  });
  return s;
}

void Manager::round_complete() {
  phase_ = Phase::kBalancing;
  synced_ = 0;
  ++round_;
  round_started_ = rt_.now();

  // Round statistics from the live per-PE aggregates (bookkeeping only;
  // gather costs are modeled when a strategy actually runs).
  RoundInfo info;
  info.round = round_;
  {
    const LoadDb::RoundAggregates agg =
        db_.round_aggregates(rt_.active_pes(), current_speeds());
    info.max_load = agg.max_load;
    info.avg_load = agg.avg_load;
    info.avg_work = agg.avg_work;
  }

  const bool do_reconfig = reconfig_pending_;
  bool do_lb = forced_ || (period_ > 0 && round_ % period_ == 0);
  if (!do_lb && advisor_ && !do_reconfig) do_lb = advisor_(history_, info);
  forced_ = false;

  pending_ = info;

  if (do_reconfig || do_lb) {
    // Adversarial fault injection may arm a failure at LB-step begin.
    if (sim::FaultInjector* fi = rt_.machine().fault_injector())
      fi->notify_lb_begin(rt_.now());
  }

  if (do_reconfig) {
    reconfig_pending_ = false;
    pending_.did_lb = true;
    ++lb_invocations_;
    if (introspect::Monitor* mon = rt_.metrics()) {
      const auto kind = reconfig_target_ < rt_.active_pes()
                            ? introspect::JournalKind::kShrink
                            : introspect::JournalKind::kExpand;
      mon->journal(kind, rt_.now(), reconfig_target_,
                   static_cast<double>(rt_.active_pes()));
    }
    rt_.set_active_pes(reconfig_target_);
    rt_.rebuild_location_tables();
    run_central(reconfig_target_);
  } else if (do_lb) {
    pending_.did_lb = true;
    ++lb_invocations_;
    if (distributed_) {
      run_distributed();
    } else {
      run_central(rt_.active_pes());
    }
  } else {
    resume_all(rt_.tree_wave_latency());  // barrier release only
  }
}

void Manager::run_central(int target_pes) {
  Stats stats = collect_stats(target_pes);
  const auto& net = rt_.machine().network().params();
  const double gather_bytes = static_cast<double>(stats.chares.size()) * stats_bytes_per_chare;
  const double gather_delay = rt_.tree_wave_latency() + gather_bytes / net.bandwidth;

  rt_.after(0, gather_delay, [this, stats = std::move(stats)]() mutable {
    rt_.charge(strategy_base_cost +
               strategy_cost_per_chare * static_cast<double>(stats.chares.size()));
    std::unique_ptr<Strategy> fallback;
    Strategy* strat = strategy_.get();
    if (strat == nullptr) {
      fallback = make_greedy();
      strat = fallback.get();
    }
    std::vector<Migration> migs = strat->assign(stats);
    migs.erase(std::remove_if(migs.begin(), migs.end(),
                              [](const Migration& m) { return m.from == m.to; }),
               migs.end());
    db_.recycle(std::move(stats));  // hand the snapshot buffers back for reuse
    begin_migrations(migs);
  });
}

void Manager::run_distributed() {
  Stats stats = collect_stats(rt_.active_pes());
  // One allreduce gives every PE the average load; decisions are then local.
  const double allreduce_delay = 2.0 * rt_.tree_wave_latency();
  rt_.after(0, allreduce_delay, [this, stats = std::move(stats)]() mutable {
    rt_.charge(strategy_base_cost);
    GossipResult g = gossip_assign(stats, sim::derive_seed(dist_seed_,
                                                           static_cast<std::uint64_t>(round_)));
    // Model the probe / reply traffic.
    sim::Rng traffic(sim::derive_seed(dist_seed_, static_cast<std::uint64_t>(round_), 7));
    for (int i = 0; i < g.probes; ++i) {
      const int dst =
          static_cast<int>(traffic.next_below(static_cast<std::uint64_t>(rt_.active_pes())));
      rt_.send_control(dst, 16, []() {});
    }
    db_.recycle(std::move(stats));
    begin_migrations(g.migrations);
  });
}

void Manager::begin_migrations(const std::vector<Migration>& migs) {
  pending_.migrations = static_cast<int>(migs.size());
  if (migs.empty()) {
    resume_all(0);
    return;
  }
  migrations_expected_ = static_cast<std::int64_t>(migs.size());
  migrations_arrived_ = 0;
  migrations_dispatched_ = true;
  for (const Migration& m : migs) {
    rt_.send_control(m.from, 32,
                     [this, m]() { rt_.perform_migration(m.col, m.idx, m.to); });
  }
}

void Manager::note_migration_arrival() {
  if (!migrations_dispatched_) return;
  ++migrations_arrived_;
  if (migrations_arrived_ >= migrations_expected_) {
    migrations_dispatched_ = false;
    resume_all(0);
  }
}

void Manager::reset_round_state() {
  phase_ = Phase::kCollecting;
  synced_ = 0;
  migrations_expected_ = 0;
  migrations_arrived_ = 0;
  migrations_dispatched_ = false;
  forced_ = false;
  reconfig_pending_ = false;
  reconfig_delay_ = 0;
  reconfig_done_ = Callback();
}

void Manager::resume_all(double extra_delay) {
  const Callback done = reconfig_done_;
  reconfig_done_ = Callback();
  const double reconfig_extra = pending_.did_lb && reconfig_delay_ > 0 ? reconfig_delay_ : 0;
  reconfig_delay_ = 0;

  auto issue = [this, done]() {
    pending_.lb_cost = rt_.now() - round_started_;
    pending_.completed_at = rt_.now();
    if (trace::Tracer* tr = rt_.machine().tracer()) {
      tr->phase_span(trace::Phase::kLbStep, /*pe=*/0, round_started_, rt_.now(),
                     /*aux=*/pending_.did_lb ? pending_.migrations : -1);
    }
    if (pending_.did_lb) {
      if (introspect::Monitor* mon = rt_.metrics())
        mon->journal(introspect::JournalKind::kLbRound, rt_.now(),
                     pending_.migrations, pending_.lb_cost);
    }
    history_.push_back(pending_);
    phase_ = Phase::kCollecting;
    for (CollectionId col : cols_) {
      rt_.broadcast_apply(col, [](ArrayElementBase& e) { e.resume_from_sync(); });
    }
    if (done.valid()) done.invoke(rt_, ReductionResult{});
  };

  const double delay = extra_delay + reconfig_extra;
  if (delay > 0) {
    rt_.after(0, delay, issue);
  } else {
    issue();
  }
}

}  // namespace charm::lb
