#pragma once
// Checkpoint/restart step driver.
//
// Runs an application as a sequence of globally quiescent steps with a
// periodic in-memory checkpoint, and — when the attached MemCheckpointer
// recovers from a failure — rolls its own notion of progress back to the
// last committed checkpoint and replays from there.  This is the driver-side
// half of the paper's §III-B story: the checkpointer restores chare state,
// the driver restores control flow.
//
// Generation counting makes lost work harmless: every failure bumps `gen_`,
// and a step boundary issued under an older generation is ignored (its
// step's messages were dropped with the victim, so it may never fire at all;
// if it does fire, it must not advance the replayed timeline).

#include <cstdint>
#include <functional>

#include "ft/mem_checkpoint.hpp"
#include "runtime/callback.hpp"
#include "runtime/runtime.hpp"

namespace charm::ft {

class ResilientDriver {
 public:
  /// `step_fn(step, boundary)` runs application step `step` (1-based) and
  /// must invoke `boundary` exactly once when the step's work has quiesced.
  /// After a failure the same step number may be issued again (replay).
  using StepFn = std::function<void(int step, std::function<void()> boundary)>;

  /// Registers failure/recovery observers on `ckpt` (one driver per
  /// checkpointer).  A checkpoint is taken every `ckpt_period` steps.
  ResilientDriver(Runtime& rt, MemCheckpointer& ckpt, StepFn step_fn,
                  int total_steps, int ckpt_period);

  /// Call from a PE-0 handler.  Takes the initial checkpoint (so the run is
  /// recoverable from step 0), then drives steps; invokes `done` once
  /// total_steps have completed, surviving any recovered failures.
  void start(Callback done);

  int steps_completed() const { return step_; }
  int steps_replayed() const { return replayed_; }
  int failures_observed() const { return failures_; }

 private:
  void advance();
  void take_checkpoint();

  Runtime& rt_;
  MemCheckpointer& ckpt_;
  StepFn step_fn_;
  int total_steps_;
  int ckpt_period_;
  Callback done_;
  int step_ = 0;             ///< last completed step
  int last_ckpt_step_ = -1;  ///< step count at the last committed checkpoint
  int replayed_ = 0;
  int failures_ = 0;
  bool finished_ = false;
  std::uint64_t gen_ = 0;  ///< bumped per failure; stale boundaries bail
};

}  // namespace charm::ft
