// Collectives micro-bench: broadcast -> contribute -> completion rounds swept
// over (topology x arity x machine size), comparing the seed's flat combine
// (modeled tree wave) against real distributed k-ary spanning-tree
// collectives (DESIGN.md §10).  Each cell reports virtual time per round and
// the message/byte/partial-send counters the topology generates; the cells
// are exported as the stats JSON's "collectives" section and CI diffs them
// against bench_stats/BENCH_collectives.json (collectives-gate job).
//
// Usage: collectives [--smoke] [--stats=FILE] [--trace=FILE]

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "runtime/charm.hpp"

namespace {

using charm::Callback;
using charm::ReduceOp;
using charm::ReductionResult;

struct GoMsg {
  int op = 0;
  void pup(pup::Er& p) { p | op; }
};

class Reducer : public charm::ArrayElement<Reducer, std::int32_t> {
 public:
  void go(const GoMsg& m) {
    const ReduceOp op = m.op == 0   ? ReduceOp::kSum
                        : m.op == 1 ? ReduceOp::kMin
                                    : ReduceOp::kMax;
    contribute(static_cast<double>(index()), op, cb);
  }

  static Callback cb;

  void pup(pup::Er& p) override { ArrayElementBase::pup(p); }
};

Callback Reducer::cb;

struct CellResult {
  double makespan = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t partial_sends = 0;
};

CellResult run_cell(bool tree, int arity, int npes, int elements, int rounds) {
  sim::Machine m(bench::machine_config(npes));
  bench::attach_trace(m);
  charm::RuntimeConfig rc;
  if (tree) {
    rc.collectives = charm::CollectiveTopology::kTree;
    rc.tree_fanout = arity;
  }
  charm::Runtime rt(m, rc);
  auto arr = charm::ArrayProxy<Reducer>::create(rt);
  for (int i = 0; i < elements; ++i) arr.seed(i, i % npes);

  int round = 0;
  Reducer::cb = Callback::to_function([&](ReductionResult&&) {
    if (++round < rounds) arr.broadcast<&Reducer::go>(GoMsg{round % 3});
  });
  rt.on_pe(0, [&] { arr.broadcast<&Reducer::go>(GoMsg{0}); });
  m.run();

  CellResult r;
  r.makespan = m.now();
  r.msgs = rt.messages_sent();
  r.bytes = rt.bytes_sent();
  r.partial_sends = rt.reduction_partials_sent();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;

  const bool smoke = bench::smoke();
  // Smoke shrinks rounds, never the sweep shape: CI gates the same
  // (topology x arity x P) surface the full run covers.
  const int rounds = smoke ? 8 : 32;
  const std::vector<int> pes = smoke ? std::vector<int>{8, 32}
                                     : std::vector<int>{8, 32, 128};
  // arity 0 = the seed's flat combine; k >= 2 = real spanning-tree waves.
  const int arities[] = {0, 2, 4, 8};

  bench::header("collectives",
                "spanning-tree vs flat collectives: broadcast+reduce rounds");
  bench::columns({"arity", "PEs", "elements", "rounds", "us/round", "msgs",
                  "partial_sends"});
  for (int npes : pes) {
    const int elements = 4 * npes;
    for (int arity : arities) {
      const bool tree = arity != 0;
      const CellResult r = run_cell(tree, arity, npes, elements, rounds);
      const double per_round = r.makespan / rounds;
      bench::row({static_cast<double>(arity), static_cast<double>(npes),
                  static_cast<double>(elements), static_cast<double>(rounds),
                  per_round * 1e6, static_cast<double>(r.msgs),
                  static_cast<double>(r.partial_sends)});
      stats::CollectivesCell cell;
      cell.topology = tree ? "tree" : "flat";
      cell.arity = arity;
      cell.npes = npes;
      cell.elements = elements;
      cell.rounds = rounds;
      cell.payload_doubles = 1;
      cell.msgs = r.msgs;
      cell.bytes = r.bytes;
      cell.partial_sends = r.partial_sends;
      cell.makespan = r.makespan;
      cell.time_per_round = per_round;
      bench::collectives_cells().push_back(std::move(cell));
    }
  }
  bench::note("arity 0 = flat centralized combine (modeled tree wave); k>=2 = real k-ary spanning-tree partial-combine messages rooted at PE 0");
  bench::note("partial_sends counts up-sweep messages: (participating PEs - 1) per round under tree, 0 under flat");
  return bench::finish();
}
