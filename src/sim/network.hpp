#pragma once
// Parameterized network performance model (alpha/beta + per-hop) for the
// emulated machine.  Presets approximate the classes of interconnects in the
// paper's evaluation (BG/Q, Cray Gemini, commodity-Ethernet cloud); absolute
// values are representative, not calibrated.

#include <cstddef>

#include "sim/topology.hpp"

namespace sim {

struct NetworkParams {
  double alpha_send = 0.4e-6;   ///< sender CPU overhead per message (s)
  double alpha_recv = 0.4e-6;   ///< receiver scheduling overhead per message (s)
  double latency = 1.2e-6;      ///< base wire latency (s)
  double bandwidth = 4.0e9;     ///< payload bandwidth (bytes/s)
  double per_hop = 40e-9;       ///< added latency per torus hop (s)
  double self_overhead = 0.08e-6;  ///< local (same-PE) delivery overhead (s)
  bool use_topology = true;     ///< include per-hop term

  /// Blue Gene/Q-like: low latency, modest per-link bandwidth, big torus.
  static NetworkParams bluegene_q();
  /// Cray XE6/XK7 (Gemini)-like: higher bandwidth, slightly higher latency.
  static NetworkParams cray_gemini();
  /// Older Cray XT5 (SeaStar)-like: slower than Gemini in both terms.
  static NetworkParams cray_seastar();
  /// Commodity cloud Ethernet: ~order of magnitude worse latency/bandwidth.
  static NetworkParams cloud_ethernet();
};

/// Computes message delivery delay between PEs.
class NetworkModel {
 public:
  NetworkModel(NetworkParams params, const Torus3D& topo)
      : params_(params), topo_(&topo) {}

  const NetworkParams& params() const { return params_; }

  /// Time from departure at src to arrival in dst's scheduler queue.
  double transit_time(int src, int dst, std::size_t bytes) const;

 private:
  NetworkParams params_;
  const Torus3D* topo_;
};

}  // namespace sim
