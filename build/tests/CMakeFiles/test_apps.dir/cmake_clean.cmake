file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/test_ampi.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_ampi.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_amr.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_amr.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_barnes_lulesh.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_barnes_lulesh.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_integration.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_integration.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_leanmd.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_leanmd.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_sort.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_sort.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_stencil_pdes.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_stencil_pdes.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
