#pragma once
// Load balancing strategy interface and the built-in strategy suite
// (§III-A of the paper: centralized, distributed and hierarchical schemes).
//
// Strategies see normalized *work* per chare (measured virtual load scaled
// back by the source PE's frequency), plus per-PE speeds, so they remain
// correct under DVFS and heterogeneous-cloud frequency scaling (§III-C, §IV-F).

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "runtime/index.hpp"
#include "runtime/types.hpp"

namespace charm::lb {

struct ChareInfo {
  CollectionId col = -1;
  ObjIndex idx{};
  int pe = 0;
  double work = 0;  ///< frequency-normalized load since the last LB round
  bool migratable = true;
  std::array<double, 3> coords{};  ///< spatial position (ORB)
};

struct Stats {
  int npes = 0;                   ///< active PEs (assignment targets are 0..npes-1)
  std::vector<double> pe_speed;   ///< frequency scale per PE
  std::vector<ChareInfo> chares;
};

struct Migration {
  CollectionId col = -1;
  ObjIndex idx{};
  int from = 0;
  int to = 0;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;
  virtual std::vector<Migration> assign(const Stats& stats) = 0;
};

/// Sort chares by descending work; assign each to the PE with the earliest
/// predicted completion time (work/speed).  O(n log n), ignores current
/// placement (may migrate heavily).
std::unique_ptr<Strategy> make_greedy();

/// Moves chares off overloaded PEs onto underloaded ones until the predicted
/// max is within `tolerance` of the mean; minimizes migrations.
std::unique_ptr<Strategy> make_refine(double tolerance = 1.05);

/// Two-level hierarchical scheme (HybridLB in the paper): PEs are split into
/// ~sqrt(P) groups; group loads are balanced first, then chares within each
/// group.
std::unique_ptr<Strategy> make_hybrid();

/// Orthogonal recursive bisection over chare spatial coordinates (Barnes-Hut).
std::unique_ptr<Strategy> make_orb();

/// Testing strategies.
std::unique_ptr<Strategy> make_rotate();
std::unique_ptr<Strategy> make_random(std::uint64_t seed);

/// Predicted max/avg completion ratio for a placement (used by tests/MetaLB).
double imbalance_of(const Stats& stats);

}  // namespace charm::lb
