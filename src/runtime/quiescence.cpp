// Quiescence detection.
//
// The runtime counts every chare message (point sends, creations, broadcast
// legs, control messages, reduction completions) in flight; quiescence is the
// instant the count returns to zero.  Detection is exact; the latency of the
// distributed 4-counter wave algorithm the paper's AMR mini-app relies on
// (§IV-A-4: O(1) collectives for mesh restructuring) is modeled as two tree
// waves.  Timer events are deliberately not counted: quiescence is a
// statement about chare communication, not the driver.

#include <utility>

#include "runtime/runtime.hpp"

namespace charm {

void Runtime::start_quiescence(Callback cb) {
  qd_requests_.push_back(QdRequest{std::move(cb)});
  if (outstanding_ == 0) maybe_fire_quiescence();
}

void Runtime::note_message_done() {
  --outstanding_;
  if (outstanding_ == 0 && !qd_requests_.empty()) maybe_fire_quiescence();
}

void Runtime::maybe_fire_quiescence() {
  std::vector<QdRequest> reqs = std::move(qd_requests_);
  qd_requests_.clear();
  const double delay = 2.0 * tree_wave_latency();
  for (QdRequest& r : reqs) {
    machine_.post(0, now() + delay, [this, cb = std::move(r.cb)]() {
      cb.invoke(*this, ReductionResult{});
    });
  }
}

}  // namespace charm
