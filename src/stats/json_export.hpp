#pragma once
// Versioned, byte-deterministic JSON export of a stats::Report — the
// `BENCH_<fig>.json` files that record the perf trajectory.  The schema
// (DESIGN.md §6) has a fixed key order, sorted arrays, and canonical number
// formatting, so identical runs produce identical bytes; CI diffs them and
// `scripts/check_stats_schema.py` validates the shape.

#include <functional>
#include <string>
#include <vector>

#include "stats/report.hpp"

namespace stats {

inline constexpr const char* kSchemaName = "charmlike-stats";
inline constexpr int kSchemaVersion = 1;

/// One printed bench table (the series the paper plots).
struct SeriesTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;
};

/// Labels (col, ep) keys; ep == -1 covers broadcast_apply deliveries and
/// col == -1 the synthetic pure-runtime key.
using EntryLabeler = std::function<std::string(int col, int ep)>;

struct ExportMeta {
  std::string bench;  ///< binary name, e.g. "fig11_namd_profiles"
  bool smoke = false;
  std::vector<SeriesTable> series;
  std::vector<std::string> notes;
  EntryLabeler label;  ///< optional; default "col<c>.ep<e>" / "runtime"
};

std::string to_json(const Report& r, const ExportMeta& meta);

/// Returns false when the file cannot be written.
bool write_json_file(const Report& r, const ExportMeta& meta, const std::string& path);

}  // namespace stats
