// Fig 17: LeanMD in a heterogeneous cloud — one node at 0.7x effective CPU
// (Distem-style static heterogeneity): HeteroNoLB vs HeteroLB vs HomoLB vs
// ideal scaling.

#include "bench_common.hpp"
#include "miniapps/leanmd/leanmd.hpp"

namespace {

using namespace charm;

double time_per_step(int npes, bool hetero, bool with_lb) {
  sim::Machine m(bench::machine_config(npes, sim::NetworkParams::cloud_ethernet()));
  bench::attach_trace(m);
  Runtime rt(m);
  if (hetero) {
    // One "node" (4 PEs) throttled to 0.7x, as on the Graphene cluster.
    for (int pe = 0; pe < std::min(4, npes); ++pe) m.pe(pe).set_freq(0.7);
  }
  leanmd::Params p;
  p.nx = p.ny = p.nz = 6;
  p.atoms_per_cell = 24;
  p.pair_cost = 25e-9;
  p.epsilon = 1e-6;
  leanmd::Simulation sim(rt, p);
  if (with_lb) {
    // Refine preserves cell/compute locality — essential on the cloud's
    // high-latency Ethernet — while still draining the slow node (the
    // strategies are all frequency-aware).
    rt.lb().set_strategy(lb::make_refine(1.05));
    rt.lb().set_period(3);
  }
  const int steps = bench::cap_steps(9, 3);
  bool done = false;
  rt.on_pe(0, [&] {
    sim.run(steps, Callback::to_function([&](ReductionResult&&) {
      done = true;
      rt.exit();
    }));
  });
  m.run();
  if (!done) std::printf("   WARNING: run did not complete (P=%d)\n", npes);
  return m.max_pe_clock() / steps;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 17", "LeanMD in a heterogeneous cloud (one slow node at 0.7x)");
  bench::columns({"PEs", "HeteroNoLB_ms", "HeteroLB_ms", "HomoLB_ms", "ideal_ms"});
  double base = -1;
  for (int p : bench::pe_series({8, 16, 32})) {
    const double hetero_nolb = time_per_step(p, true, false);
    const double hetero_lb = time_per_step(p, true, true);
    const double homo_lb = time_per_step(p, false, true);
    if (base < 0) base = homo_lb * p;
    bench::row({static_cast<double>(p), hetero_nolb * 1e3, hetero_lb * 1e3, homo_lb * 1e3,
                base / p * 1e3});
  }
  bench::note("paper shape: heterogeneity-aware LB brings the slow-node runs close to the");
  bench::note("homogeneous curve; NoLB is limited by the 0.7x node");
  return bench::finish();
}
