// Fig 4: temperature-aware DVFS — total execution time and max core
// temperature for Base, Naive_DVFS, LB_10s, LB_5s, MetaTemp.
//
// A tightly-coupled stencil runs a fixed iteration count.  Base never
// throttles (hot chips, no slowdown).  Naive DVFS holds the 50°C threshold
// but the frequency spread unbalances the tightly-coupled app.  DVFS + LB
// every 10 s / 5 s recovers most of the penalty; MetaTemp (MetaLB-triggered
// rebalancing) does best, as in the paper.

#include "bench_common.hpp"
#include "lb/meta.hpp"
#include "miniapps/stencil/stencil.hpp"
#include "power/power_manager.hpp"

namespace {

using namespace charm;

struct Outcome {
  double exec_s = 0;
  double max_temp = 0;
};

Outcome run_policy(power::Policy policy, double lb_period, bool meta) {
  sim::Machine m(bench::machine_config(16, sim::NetworkParams::bluegene_q(),
                                       /*pes_per_chip=*/4));
  bench::attach_trace(m);
  Runtime rt(m);
  stencil::Params sp;
  sp.grid = 512;
  sp.tiles_x = sp.tiles_y = 16;
  sp.cell_cost = 2e-6;  // hot, compute-bound tiles (~33 ms/step per PE)
  stencil::Sim sim(rt, sp);
  rt.lb().set_strategy(lb::make_greedy());
  if (meta) {
    rt.lb().set_advisor(lb::make_meta_advisor(
        {.imbalance_tol = 1.12, .horizon_rounds = 15, .default_lb_cost = 3e-3, .min_gap = 3}));
  }

  power::ThermalParams tp;   // ambient 30C; full load saturates near 70C
  tp.cool_spread = 0.7;      // rack hot spots: chips throttle unevenly
  power::DvfsParams dp;      // threshold 50C as in the paper
  dp.threshold_c = 50.0;
  power::Manager pm(rt, tp, dp, /*period=*/0.4);
  pm.start(policy, lb_period);

  bool done = false;
  rt.on_pe(0, [&] {
    sim.run(bench::cap_steps(600, 40), Callback::to_function([&](ReductionResult&&) {
      done = true;
      rt.exit();
    }));
  });
  m.run();
  pm.stop();
  Outcome out;
  out.exec_s = m.max_pe_clock();
  out.max_temp = pm.max_temp_seen();
  if (!done) std::printf("   WARNING: run did not complete\n");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 4", "DVFS timing penalty and max chip temperature (threshold 50C)");
  bench::columns({"scheme", "exec_s", "max_temp_C"});

  struct Scheme {
    const char* name;
    power::Policy policy;
    double lb_period;
    bool meta;
  };
  const Scheme schemes[] = {
      {"Base", power::Policy::kNone, 0, false},
      {"Naive_DVFS", power::Policy::kNaiveDvfs, 0, false},
      {"LB_10s", power::Policy::kDvfsLb, 10.0, false},
      {"LB_5s", power::Policy::kDvfsLb, 5.0, false},
      {"MetaTemp", power::Policy::kMetaTemp, 0, true},
  };
  for (const Scheme& s : schemes) {
    const Outcome o = run_policy(s.policy, s.lb_period, s.meta);
    std::printf("%16s%16.3f%16.2f\n", s.name, o.exec_s, o.max_temp);
  }
  bench::note("paper shape: Base is fastest but hot (>threshold); Naive DVFS pays the largest");
  bench::note("timing penalty; LB_10s/LB_5s shrink it; MetaTemp performs best while staying cool");
  return bench::finish();
}
