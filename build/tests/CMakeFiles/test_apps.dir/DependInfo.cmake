
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/test_ampi.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_ampi.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_ampi.cpp.o.d"
  "/root/repo/tests/apps/test_amr.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_amr.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_amr.cpp.o.d"
  "/root/repo/tests/apps/test_barnes_lulesh.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_barnes_lulesh.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_barnes_lulesh.cpp.o.d"
  "/root/repo/tests/apps/test_integration.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_integration.cpp.o.d"
  "/root/repo/tests/apps/test_leanmd.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_leanmd.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_leanmd.cpp.o.d"
  "/root/repo/tests/apps/test_sort.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_sort.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_sort.cpp.o.d"
  "/root/repo/tests/apps/test_stencil_pdes.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_stencil_pdes.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_stencil_pdes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/charmlike.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
