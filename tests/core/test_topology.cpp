// Torus topology and network model tests.

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace {

TEST(Torus, FactorsCoverAllPes) {
  for (int n : {1, 2, 7, 8, 12, 64, 100, 1024}) {
    sim::Torus3D t(n);
    const auto& d = t.dims();
    EXPECT_EQ(d[0] * d[1] * d[2], n) << "n=" << n;
    for (int pe = 0; pe < n; ++pe) EXPECT_EQ(t.pe_at(t.coords(pe)), pe);
  }
}

TEST(Torus, HopsAreSymmetricAndBounded) {
  sim::Torus3D t(64);
  const auto& d = t.dims();
  const int max_hops = d[0] / 2 + d[1] / 2 + d[2] / 2;
  for (int a = 0; a < 64; a += 7) {
    for (int b = 0; b < 64; b += 5) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
      EXPECT_LE(t.hops(a, b), max_hops);
    }
  }
  EXPECT_EQ(t.hops(5, 5), 0);
}

TEST(Torus, DimensionOrderedRoutingConverges) {
  sim::Torus3D t(60);
  for (int src = 0; src < 60; src += 3) {
    for (int dst = 0; dst < 60; dst += 4) {
      int cur = src;
      int steps = 0;
      while (cur != dst) {
        const int next = t.next_on_route(cur, dst);
        // Each routing step is a peer move: exactly one dim changes, to the
        // destination's coordinate in that dim.
        EXPECT_NE(next, cur);
        cur = next;
        ASSERT_LT(++steps, 4) << "route must finish in <= 3 dimension moves";
      }
    }
  }
}

TEST(Torus, PeersDifferInOneDimension) {
  sim::Torus3D t(64);
  for (int dst = 1; dst < 64; dst += 9) {
    const int next = t.next_on_route(0, dst);
    auto a = t.coords(0);
    auto b = t.coords(next);
    int diffs = 0;
    for (int i = 0; i < 3; ++i) diffs += (a[i] != b[i]) ? 1 : 0;
    EXPECT_EQ(diffs, 1);
  }
}

TEST(Network, TransitGrowsWithBytesAndHops) {
  sim::Torus3D t(64);
  sim::NetworkModel net(sim::NetworkParams{}, t);
  const double t1 = net.transit_time(0, 1, 64);
  const double t2 = net.transit_time(0, 1, 1 << 20);
  EXPECT_GT(t2, t1);
  // Far PE on the torus pays per-hop latency.
  int far = 0;
  for (int pe = 0; pe < 64; ++pe)
    if (t.hops(0, pe) > t.hops(0, far)) far = pe;
  EXPECT_GT(net.transit_time(0, far, 64), net.transit_time(0, 1, 64));
}

TEST(Network, PresetsAreOrderedSensibly) {
  // Cloud Ethernet must be much slower than any HPC interconnect preset.
  const auto bgq = sim::NetworkParams::bluegene_q();
  const auto cloud = sim::NetworkParams::cloud_ethernet();
  EXPECT_GT(cloud.latency, 10 * bgq.latency);
  EXPECT_LT(cloud.bandwidth, bgq.bandwidth);
  const auto gemini = sim::NetworkParams::cray_gemini();
  const auto seastar = sim::NetworkParams::cray_seastar();
  EXPECT_GT(gemini.bandwidth, seastar.bandwidth);
}

}  // namespace
