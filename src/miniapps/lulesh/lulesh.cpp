#include "miniapps/lulesh/lulesh.hpp"

#include <algorithm>
#include <cmath>

#include "sim/rng.hpp"

namespace charm::lulesh {

namespace {

struct RankCoords {
  int x, y, z, n;
  int id(int xx, int yy, int zz) const { return (zz * n + yy) * n + xx; }
};

RankCoords coords_of(int rank, int n) {
  return RankCoords{rank % n, (rank / n) % n, rank / (n * n), n};
}

}  // namespace

void rank_main(ampi::Comm& comm, const Config& cfg, Stats* stats) {
  const int n = cfg.ranks_per_dim;
  const int E = cfg.elems_per_dim;
  const RankCoords me = coords_of(comm.rank(), n);

  // Real field: one value per element; hydro stand-in is a damped relaxation.
  sim::Rng rng(sim::derive_seed(cfg.seed, static_cast<std::uint64_t>(comm.rank())));
  std::vector<double> e(static_cast<std::size_t>(E * E * E));
  for (auto& v : e) v = rng.next_double();

  // LULESH region imbalance: the low-z third of the domain is heavy material.
  // (z is the slowest rank-id dimension, so the heavy ranks are contiguous in
  // rank id and land together under the blocked initial mapping — the
  // imbalance MPI users actually see.)
  const bool heavy = me.z < std::max(1, n / 3);
  const double region = heavy ? cfg.region_factor : 1.0;
  const double ws_bytes = cfg.bytes_per_elem * E * E * E;

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // (1) Courant time step: global min over a local estimate.
    double local_dt = 1e-3 / (1.0 + *std::max_element(e.begin(), e.end()));
    (void)comm.allreduce(local_dt, ReduceOp::kMin);

    // (2) Face halo exchange (six neighbors, non-periodic domain).
    double halo_in = 0;
    int expected = 0;
    auto face_mean = [&](int fixed_dim, int lo) {
      double s = 0;
      for (int b = 0; b < E; ++b)
        for (int a = 0; a < E; ++a) {
          int ijk[3];
          ijk[fixed_dim] = lo ? 0 : E - 1;
          ijk[(fixed_dim + 1) % 3] = a;
          ijk[(fixed_dim + 2) % 3] = b;
          s += e[static_cast<std::size_t>((ijk[2] * E + ijk[1]) * E + ijk[0])];
        }
      return s / (E * E);
    };
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir = -1; dir <= 1; dir += 2) {
        int c[3] = {me.x, me.y, me.z};
        c[dim] += dir;
        if (c[dim] < 0 || c[dim] >= n) continue;
        const int nb = me.id(c[0], c[1], c[2]);
        comm.send_value(nb, 100 + iter % 7, face_mean(dim, dir < 0));
        ++expected;
      }
    }
    for (int k = 0; k < expected; ++k) {
      halo_in += comm.recv_value<double>(ampi::kAnySource, 100 + iter % 7);
      if (stats) ++stats->halo_messages;
    }
    const double boundary = expected > 0 ? halo_in / expected : 0.0;

    // (3) Element kernels: real relaxation sweep + cache-modeled cost.
    std::vector<double> out(e.size());
    auto at = [&](int i, int j, int k) {
      return e[static_cast<std::size_t>((k * E + j) * E + i)];
    };
    for (int k = 0; k < E; ++k) {
      for (int j = 0; j < E; ++j) {
        for (int i = 0; i < E; ++i) {
          const double l = i > 0 ? at(i - 1, j, k) : boundary;
          const double r = i < E - 1 ? at(i + 1, j, k) : boundary;
          const double d = j > 0 ? at(i, j - 1, k) : boundary;
          const double u = j < E - 1 ? at(i, j + 1, k) : boundary;
          const double f = k > 0 ? at(i, j, k - 1) : boundary;
          const double b = k < E - 1 ? at(i, j, k + 1) : boundary;
          out[static_cast<std::size_t>((k * E + j) * E + i)] =
              0.4 * at(i, j, k) + 0.1 * (l + r + d + u + f + b);
        }
      }
    }
    e = std::move(out);
    comm.charge_kernel(cfg.base_cost_per_elem * region * static_cast<double>(E * E * E),
                       ws_bytes);

    // (4) Load balancing hook.
    if (cfg.migrate_every > 0 && (iter + 1) % cfg.migrate_every == 0) comm.migrate();
  }

  if (stats) {
    double c = 0;
    for (double v : e) c += v;
    comm.barrier();
    // Rank 0 publishes the aggregate checksum.
    const double total = comm.allreduce(c, ReduceOp::kSum);
    if (comm.rank() == 0) stats->checksum = total;
  }
}

void run(Runtime& rt, const Config& cfg, ampi::Options ampi_opts,
         std::function<void(const Stats&)> done) {
  const int nranks = cfg.ranks_per_dim * cfg.ranks_per_dim * cfg.ranks_per_dim;
  auto stats = std::make_shared<Stats>();
  auto world = std::make_shared<ampi::World>(
      rt, nranks,
      [cfg, stats](ampi::Comm& comm) { rank_main(comm, cfg, stats.get()); }, ampi_opts);
  const double t0 = rt.now();
  // The completion callback is stored inside the world's own state, so it
  // must not capture `world` — that would make the state own itself and
  // leak.  After start() the rank collection keeps the state alive; the
  // World handle itself is no longer needed.
  rt.on_pe(0, [world, stats, done = std::move(done), &rt, t0, cfg]() {
    world->start(Callback::to_function([stats, done, &rt, t0, cfg](ReductionResult&&) {
      stats->elapsed = rt.now() - t0;
      stats->time_per_iter = stats->elapsed / cfg.iterations;
      done(*stats);
    }));
  });
}

}  // namespace charm::lulesh
