// AMR example: a Gaussian blob advected through a periodic box; the mesh
// refines around the blob and coarsens behind it.  Prints the block-count /
// depth evolution across restructuring passes.

#include <cstdio>

#include "miniapps/amr/amr.hpp"

using namespace charm;

int main() {
  sim::MachineConfig cfg;
  cfg.npes = 8;
  sim::Machine machine(cfg);
  Runtime rt(machine);

  amr::Params p;
  p.block = 6;
  p.min_depth = 2;  // 64 blocks initially
  p.max_depth = 4;
  amr::Mesh mesh(rt, p);
  rt.lb().use_distributed(true);
  rt.lb().set_period(6);

  std::printf("AMR3D advection: %lld blocks at depth %d..%d, block=%d^3\n",
              static_cast<long long>(mesh.nblocks()), p.min_depth, p.max_depth, p.block);
  std::printf("%8s %10s %10s %10s %12s\n", "chunk", "blocks", "min_d", "max_d", "mass");

  const int chunks = 6, steps = 4;
  int chunk = 0;
  std::function<void()> report = [&]() {
    std::printf("%8d %10lld %10d %10d %12.6f\n", chunk,
                static_cast<long long>(mesh.nblocks()), mesh.min_depth_present(),
                mesh.max_depth_present(), mesh.total_mass());
  };

  rt.on_pe(0, [&] {
    mesh.run(chunks, steps, Callback::to_function([&](ReductionResult&&) {
      chunk = chunks;
      report();
      rt.exit();
    }));
  });
  machine.run();

  std::printf("restructuring passes: %d; virtual time %.3f ms; %llu runtime messages\n",
              mesh.restructures(), machine.max_pe_clock() * 1e3,
              static_cast<unsigned long long>(rt.messages_sent()));
  std::printf("(blocks are inserted/destroyed dynamically; each restructuring pass uses\n"
              " quiescence detection instead of O(depth) global collectives)\n");
  return 0;
}
