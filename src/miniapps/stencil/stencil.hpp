#pragma once
// Stencil2D mini-app: 5-point Jacobi iteration on an N x N grid, decomposed
// into a 2-D chare array of tiles with ghost-strip exchange.
//
// Used by the paper's cloud study (Fig 16: interference + heterogeneity-aware
// LB) and as the tightly-coupled workload for the thermal-aware DVFS study
// (Fig 4).  The Jacobi sweep runs on real data (residuals are testable); the
// per-cell compute cost is charged in virtual time.

#include <cstdint>
#include <vector>

#include "runtime/charm.hpp"
#include "runtime/dep_gather.hpp"

namespace charm::stencil {

struct Params {
  int grid = 512;        ///< global grid is grid x grid
  int tiles_x = 8;
  int tiles_y = 8;
  double cell_cost = 2e-9;  ///< charged seconds per cell per sweep
  /// Optional static tile-weight gradient along x (synthetic imbalance).
  double imbalance = 0.0;
};

struct StartMsg {
  int iters = 1;
  template <class P>
  void pup(P& p) {
    p | iters;
  }
};

struct GhostMsg {
  int iter = 0;
  int side = 0;  ///< 0=left 1=right 2=down 3=up, from the RECEIVER's view
  std::vector<double> strip;
  template <class P>
  void pup(P& p) {
    p | iter;
    p | side;
    p | strip;
  }
};

class Tile : public charm::ArrayElement<Tile, Index2D> {
 public:
  Tile() = default;
  Tile(const Params& p, ArrayProxy<Tile, Index2D> tiles);

  void begin(const StartMsg& m);
  void ghost(const GhostMsg& m);
  void resume_from_sync() override;
  std::array<double, 3> lb_coords() const override;
  void pup(pup::Er& p) override;

  int iters_done() const { return gather_.step(); }
  int dbg_expected() const { return gather_.expected(); }
  int dbg_seen() const { return gather_.seen(); }
  std::size_t dbg_early() const { return gather_.buffered_steps(); }
  /// Sum of squared updates in the last sweep (convergence diagnostic).
  double last_delta() const { return last_delta_; }

  static Callback done_cb;

 private:
  void start_iter();
  void sweep();
  int bw() const;  ///< block width (cells per tile, x)
  int bh() const;  ///< block height
  double& at(std::vector<double>& v, int i, int j) const;

  Params p_{};
  ArrayProxy<Tile, Index2D> tiles_;
  std::vector<double> u_, unew_;
  std::vector<double> ghosts_[4];       ///< received strips per side
  DepGather<GhostMsg> gather_;          ///< per-iteration ghost accounting
  int target_ = 0;
  double last_delta_ = 0;
};

class Sim {
 public:
  Sim(Runtime& rt, Params p);
  void run(int iters, Callback done);
  ArrayProxy<Tile, Index2D> tiles() const { return tiles_; }
  /// Global sum of squared last-sweep updates (host-side scan).
  double global_delta() const;
  int ntiles() const { return p_.tiles_x * p_.tiles_y; }

 private:
  Runtime& rt_;
  Params p_;
  ArrayProxy<Tile, Index2D> tiles_;
};

}  // namespace charm::stencil

namespace pup {
template <>
struct AsBytes<charm::stencil::Params> : std::true_type {};
template <>
struct MemCopyable<charm::stencil::StartMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(int);
};
}  // namespace pup
