// Fig 13: ChaNGa-style phase breakdown — Gravity, DD (domain decomposition),
// TB (tree build), LB, and total step time vs PE count.

#include "bench_common.hpp"
#include "miniapps/barnes/barnes.hpp"

namespace {

using namespace charm;

barnes::PhaseTimes average_phases(int npes) {
  sim::Machine m(bench::machine_config(npes, sim::NetworkParams::cray_gemini()));
  bench::attach_trace(m);
  Runtime rt(m);
  barnes::Params p;
  p.pieces_per_dim = 6;
  p.nparticles = 24000;  // "2 billion particles" analogue, scaled
  p.concentration = 0.8;
  barnes::Simulation sim(rt, p);
  rt.lb().set_strategy(lb::make_orb());
  rt.lb().set_period(2);
  const int steps = bench::cap_steps(4, 2);
  bool done = false;
  rt.on_pe(0, [&] {
    sim.run(steps, Callback::to_function([&](ReductionResult&&) {
      done = true;
      rt.exit();
    }));
  });
  m.run();
  barnes::PhaseTimes avg;
  if (!done || sim.phase_times().empty()) return avg;
  // Skip the first step (cold caches / initial imbalance).
  int n = 0;
  for (std::size_t i = 1; i < sim.phase_times().size(); ++i) {
    const auto& t = sim.phase_times()[i];
    avg.dd += t.dd;
    avg.tb += t.tb;
    avg.gravity += t.gravity;
    avg.lb += t.lb;
    avg.total += t.total;
    ++n;
  }
  if (n > 0) {
    avg.dd /= n;
    avg.tb /= n;
    avg.gravity /= n;
    avg.lb /= n;
    avg.total /= n;
  }
  return avg;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 13", "ChaNGa-style phase breakdown vs PEs (ms per step)");
  bench::columns({"PEs", "Gravity", "DD", "TB", "LB", "Total"});
  for (int p : bench::pe_series({8, 16, 32, 64})) {
    const auto t = average_phases(p);
    bench::row({static_cast<double>(p), t.gravity * 1e3, t.dd * 1e3, t.tb * 1e3, t.lb * 1e3,
                t.total * 1e3});
  }
  bench::note("paper shape: Gravity dominates and scales; DD/TB/LB are smaller and flatten");
  bench::note("at scale (paper: 2.7s total at 128K cores, 80% efficiency vs 8K)");
  return bench::finish();
}
