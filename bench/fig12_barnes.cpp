// Fig 12: Barnes-Hut time per step vs PEs: over-decomposed with ORB LB
// ("500m"), over-decomposed without LB, and one TreePiece per PE ("500m_NO").

#include "bench_common.hpp"
#include "miniapps/barnes/barnes.hpp"

namespace {

using namespace charm;

double time_per_step(int npes, int pieces_per_dim, bool with_lb) {
  sim::Machine m(bench::machine_config(npes, sim::NetworkParams::cray_gemini()));
  bench::attach_trace(m);
  Runtime rt(m);
  barnes::Params p;
  p.pieces_per_dim = pieces_per_dim;
  p.nparticles = 20000;
  p.concentration = 0.8;  // Plummer clustering
  barnes::Simulation sim(rt, p);
  if (with_lb) {
    rt.lb().set_strategy(lb::make_orb());
    rt.lb().set_period(2);
  }
  const int steps = bench::cap_steps(4, 2);
  bool done = false;
  rt.on_pe(0, [&] {
    sim.run(steps, Callback::to_function([&](ReductionResult&&) {
      done = true;
      rt.exit();
    }));
  });
  m.run();
  if (!done) std::printf("   WARNING: run did not complete (P=%d)\n", npes);
  return m.max_pe_clock() / steps;
}

int cube_side_at_least(int n) {
  int s = 1;
  while (s * s * s < n) ++s;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 12", "Barnes-Hut time/step: overdecomp+ORB LB vs no LB vs 1 piece/PE");
  bench::columns({"PEs", "LB_ms", "NoLB_ms", "OnePerPE_ms"});
  for (int p : bench::pe_series({8, 16, 32, 64})) {
    const int over = 6;  // 216 pieces: heavy over-decomposition
    const double lb = time_per_step(p, over, true);
    const double nolb = time_per_step(p, over, false);
    const double one = time_per_step(p, cube_side_at_least(p), false);
    bench::row({static_cast<double>(p), lb * 1e3, nolb * 1e3, one * 1e3});
  }
  bench::note("paper shape: over-decomposition+LB wins (~40% over one-object-per-PE);");
  bench::note("all curves fall with PEs");
  return bench::finish();
}
