// Centralized load balancing strategies: GreedyLB, RefineLB, HybridLB, plus
// RotateLB/RandomLB for testing.  All strategies are speed-aware: predicted
// completion of PE p is sum(work)/speed[p], so they remain correct under DVFS
// and heterogeneous clouds.

#include "lb/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <queue>
#include <set>

#include "sim/rng.hpp"

namespace charm::lb {

namespace {

std::vector<std::size_t> migratable_by_desc_work(const Stats& s) {
  std::vector<std::size_t> ids;
  ids.reserve(s.chares.size());
  for (std::size_t i = 0; i < s.chares.size(); ++i)
    if (s.chares[i].migratable) ids.push_back(i);
  std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
    if (s.chares[a].work != s.chares[b].work) return s.chares[a].work > s.chares[b].work;
    return a < b;  // deterministic tie-break
  });
  return ids;
}

std::vector<double> base_completion(const Stats& s) {
  // Completion contributed by non-migratable chares (they stay put).
  std::vector<double> done(static_cast<std::size_t>(s.npes), 0.0);
  for (const ChareInfo& c : s.chares) {
    if (!c.migratable && c.pe < s.npes)
      done[static_cast<std::size_t>(c.pe)] += c.work / s.pe_speed[static_cast<std::size_t>(c.pe)];
  }
  return done;
}

std::vector<Migration> to_migrations(const Stats& s, const std::vector<int>& target) {
  std::vector<Migration> out;
  for (std::size_t i = 0; i < s.chares.size(); ++i) {
    const ChareInfo& c = s.chares[i];
    if (c.migratable && target[i] != c.pe)
      out.push_back(Migration{c.col, c.idx, c.pe, target[i]});
  }
  return out;
}

/// Speed-aware min-completion assignment over a subset of PEs.  PEs are
/// bucketed by identical speed so the argmin is O(#speed classes) per chare.
class MinCompletionAssigner {
 public:
  MinCompletionAssigner(const Stats& s, std::vector<int> pes, std::vector<double> done)
      : speeds_(s.pe_speed), done_(std::move(done)) {
    std::map<double, std::vector<int>> classes;
    for (int pe : pes) classes[speeds_[static_cast<std::size_t>(pe)]].push_back(pe);
    for (auto& [speed, members] : classes) {
      Class cl;
      cl.speed = speed;
      for (int pe : members) cl.heap.push({done_[static_cast<std::size_t>(pe)], pe});
      classes_.push_back(std::move(cl));
    }
  }

  int place(double work) {
    double best_time = 0;
    std::size_t best = classes_.size();
    for (std::size_t k = 0; k < classes_.size(); ++k) {
      const auto& top = classes_[k].heap.top();
      const double t = top.first + work / classes_[k].speed;
      if (best == classes_.size() || t < best_time ||
          (t == best_time && top.second < classes_[best].heap.top().second)) {
        best = k;
        best_time = t;
      }
    }
    Class& cl = classes_[best];
    auto [cur, pe] = cl.heap.top();
    cl.heap.pop();
    cl.heap.push({cur + work / cl.speed, pe});
    done_[static_cast<std::size_t>(pe)] = cur + work / cl.speed;
    return pe;
  }

 private:
  struct Class {
    double speed = 1.0;
    // min-heap of (completion, pe); pe tie-break keeps runs deterministic
    std::priority_queue<std::pair<double, int>, std::vector<std::pair<double, int>>,
                        std::greater<>>
        heap;
  };
  const std::vector<double>& speeds_;
  std::vector<double> done_;
  std::vector<Class> classes_;
};

class GreedyLB final : public Strategy {
 public:
  std::string name() const override { return "GreedyLB"; }
  std::vector<Migration> assign(const Stats& s) override {
    std::vector<int> pes(static_cast<std::size_t>(s.npes));
    std::iota(pes.begin(), pes.end(), 0);
    MinCompletionAssigner assigner(s, pes, base_completion(s));
    std::vector<int> target(s.chares.size());
    for (std::size_t i = 0; i < s.chares.size(); ++i) target[i] = s.chares[i].pe;
    for (std::size_t i : migratable_by_desc_work(s)) target[i] = assigner.place(s.chares[i].work);
    return to_migrations(s, target);
  }
};

class RefineLB final : public Strategy {
 public:
  explicit RefineLB(double tolerance) : tol_(tolerance) {}
  std::string name() const override { return "RefineLB"; }

  std::vector<Migration> assign(const Stats& s) override {
    const auto n = static_cast<std::size_t>(s.npes);
    std::vector<double> done(n, 0.0);
    std::vector<int> target(s.chares.size());
    std::vector<std::vector<std::size_t>> on_pe(n);
    double total_work = 0;
    for (std::size_t i = 0; i < s.chares.size(); ++i) {
      const ChareInfo& c = s.chares[i];
      const int pe = std::min(c.pe, s.npes - 1);
      target[i] = pe;
      done[static_cast<std::size_t>(pe)] += c.work / s.pe_speed[static_cast<std::size_t>(pe)];
      if (c.migratable) on_pe[static_cast<std::size_t>(pe)].push_back(i);
      total_work += c.work;
    }
    const double total_speed = std::accumulate(s.pe_speed.begin(), s.pe_speed.begin() + s.npes, 0.0);
    const double target_time = total_work / total_speed;

    for (int iter = 0; iter < 8 * s.npes; ++iter) {
      const auto hot = static_cast<std::size_t>(
          std::max_element(done.begin(), done.end()) - done.begin());
      const auto cold = static_cast<std::size_t>(
          std::min_element(done.begin(), done.end()) - done.begin());
      if (done[hot] <= target_time * tol_) break;
      // Move the largest chare that fits without overshooting the target.
      std::size_t pick = s.chares.size();
      double pick_work = -1;
      for (std::size_t i : on_pe[hot]) {
        const double w = s.chares[i].work;
        if (done[cold] + w / s.pe_speed[cold] <= target_time * tol_ && w > pick_work) {
          pick = i;
          pick_work = w;
        }
      }
      if (pick == s.chares.size()) {
        // Nothing fits under the cap; move the smallest to make progress.
        for (std::size_t i : on_pe[hot])
          if (pick == s.chares.size() || s.chares[i].work < pick_work ||
              pick_work < 0) {
            pick = i;
            pick_work = s.chares[i].work;
          }
        if (pick == s.chares.size()) break;
      }
      on_pe[hot].erase(std::find(on_pe[hot].begin(), on_pe[hot].end(), pick));
      on_pe[cold].push_back(pick);
      done[hot] -= pick_work / s.pe_speed[hot];
      done[cold] += pick_work / s.pe_speed[cold];
      target[pick] = static_cast<int>(cold);
    }
    return to_migrations(s, target);
  }

 private:
  double tol_;
};

/// Two-level hierarchical balancing (HybridLB): balance group totals first,
/// then PEs within each group.
class HybridLB final : public Strategy {
 public:
  std::string name() const override { return "HybridLB"; }

  std::vector<Migration> assign(const Stats& s) override {
    const int ngroups = std::max(1, static_cast<int>(std::round(std::sqrt(s.npes))));
    const int per_group = (s.npes + ngroups - 1) / ngroups;
    auto group_of = [&](int pe) { return pe / per_group; };

    // Level 1: greedy over groups (capacity = sum of member speeds).
    std::vector<double> group_speed(static_cast<std::size_t>(ngroups), 0.0);
    for (int pe = 0; pe < s.npes; ++pe)
      group_speed[static_cast<std::size_t>(group_of(pe))] +=
          s.pe_speed[static_cast<std::size_t>(pe)];

    std::vector<double> group_done(static_cast<std::size_t>(ngroups), 0.0);
    for (const ChareInfo& c : s.chares)
      if (!c.migratable)
        group_done[static_cast<std::size_t>(group_of(std::min(c.pe, s.npes - 1)))] +=
            c.work / group_speed[static_cast<std::size_t>(group_of(std::min(c.pe, s.npes - 1)))];

    std::vector<int> chare_group(s.chares.size());
    for (std::size_t i = 0; i < s.chares.size(); ++i)
      chare_group[i] = group_of(std::min(s.chares[i].pe, s.npes - 1));
    for (std::size_t i : migratable_by_desc_work(s)) {
      int best = 0;
      double best_t = 0;
      for (int g = 0; g < ngroups; ++g) {
        const double t = group_done[static_cast<std::size_t>(g)] +
                         s.chares[i].work / group_speed[static_cast<std::size_t>(g)];
        if (g == 0 || t < best_t) {
          best = g;
          best_t = t;
        }
      }
      chare_group[i] = best;
      group_done[static_cast<std::size_t>(best)] = best_t;
    }

    // Level 2: greedy within each group.
    std::vector<int> target(s.chares.size());
    for (std::size_t i = 0; i < s.chares.size(); ++i) target[i] = s.chares[i].pe;
    for (int g = 0; g < ngroups; ++g) {
      std::vector<int> pes;
      for (int pe = g * per_group; pe < std::min((g + 1) * per_group, s.npes); ++pe)
        pes.push_back(pe);
      if (pes.empty()) continue;
      std::vector<double> done(s.pe_speed.size(), 0.0);
      for (const ChareInfo& c : s.chares)
        if (!c.migratable && group_of(std::min(c.pe, s.npes - 1)) == g)
          done[static_cast<std::size_t>(c.pe)] +=
              c.work / s.pe_speed[static_cast<std::size_t>(c.pe)];
      MinCompletionAssigner assigner(s, pes, done);
      for (std::size_t i : migratable_by_desc_work(s))
        if (chare_group[i] == g) target[i] = assigner.place(s.chares[i].work);
    }
    return to_migrations(s, target);
  }
};

class RotateLB final : public Strategy {
 public:
  std::string name() const override { return "RotateLB"; }
  std::vector<Migration> assign(const Stats& s) override {
    std::vector<Migration> out;
    for (const ChareInfo& c : s.chares)
      if (c.migratable)
        out.push_back(Migration{c.col, c.idx, c.pe, (c.pe + 1) % s.npes});
    return out;
  }
};

class RandomLB final : public Strategy {
 public:
  explicit RandomLB(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "RandomLB"; }
  std::vector<Migration> assign(const Stats& s) override {
    sim::Rng rng(seed_++);
    std::vector<int> target(s.chares.size());
    for (std::size_t i = 0; i < s.chares.size(); ++i)
      target[i] = s.chares[i].migratable
                      ? static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.npes)))
                      : s.chares[i].pe;
    return to_migrations(s, target);
  }

 private:
  std::uint64_t seed_;
};

}  // namespace

std::unique_ptr<Strategy> make_greedy() { return std::make_unique<GreedyLB>(); }
std::unique_ptr<Strategy> make_refine(double tolerance) {
  return std::make_unique<RefineLB>(tolerance);
}
std::unique_ptr<Strategy> make_hybrid() { return std::make_unique<HybridLB>(); }
std::unique_ptr<Strategy> make_rotate() { return std::make_unique<RotateLB>(); }
std::unique_ptr<Strategy> make_random(std::uint64_t seed) {
  return std::make_unique<RandomLB>(seed);
}

double imbalance_of(const Stats& s) {
  std::vector<double> done(static_cast<std::size_t>(s.npes), 0.0);
  for (const ChareInfo& c : s.chares) {
    const int pe = std::min(c.pe, s.npes - 1);
    done[static_cast<std::size_t>(pe)] += c.work / s.pe_speed[static_cast<std::size_t>(pe)];
  }
  const double mx = *std::max_element(done.begin(), done.end());
  const double avg = std::accumulate(done.begin(), done.end(), 0.0) / s.npes;
  return avg > 0 ? mx / avg : 1.0;
}

}  // namespace charm::lb
