#pragma once
// TRAM: Topological Routing and Aggregation Module (§III-F, Fig 15b).
//
// Fine-grained messages (data items) destined for chare array elements are
// buffered per *peer* — any PE reachable by traveling along a single
// dimension of the machine's torus — and shipped as one combined message when
// a buffer fills.  Items whose destination is not a peer are routed through
// intermediate peers dimension by dimension, so buffer space is
// O(peers) = O(sum of dims), not O(P), and items with different destinations
// share sub-paths.
//
// Items are packed *directly* into the per-peer aggregation buffer: each is a
// [FrameHead][pup bytes] frame appended to a flat byte vector, so a batch is
// one contiguous allocation instead of a vector of per-item payload vectors.
// Same-PE destinations skip packing entirely and go through the runtime's
// typed delivery.
//
// Typed facade:
//   charm::tram::Stream<&Lp::recv_event> stream(rt, lps, {.buffer_items=64});
//   stream.send(dest_index, event);            // from any handler
//   stream.flush_all();                        // end of phase (then QD)

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/proxy.hpp"
#include "runtime/runtime.hpp"
#include "sim/paged_table.hpp"

namespace charm::tram {

struct Params {
  std::size_t buffer_items = 64;  ///< flush threshold per peer buffer
  std::size_t item_overhead = 8;  ///< modeled per-item framing bytes
};

/// Type-erased aggregation core (one per stream, state partitioned per PE).
class Core {
 public:
  Core(Runtime& rt, CollectionId target, Params params);

  /// Insert a typed item from the currently executing PE.  Local
  /// destinations are delivered through the typed fast path (no pack);
  /// remote ones are pupped straight into the peer's aggregation buffer.
  template <class T>
  void insert_typed(const ObjIndex& dest_idx, EntryId ep, DirectInvoker<T> inv,
                    const T& item) {
    const int pe = rt_.machine().current_pe();
    ++items_;
    const int dest = resolve_dest(pe, dest_idx);
    if (dest == pe) {
      Collection& c = rt_.collection(col_);
      ArrayElementBase* elem = c.find(pe, dest_idx);
      rt_.charge(rt_.config().deliver_cost);
      if (elem != nullptr) {
        rt_.deliver_local_typed(c, *elem, ep, inv, item);
        return;
      }
      local_miss(pe, dest_idx, ep, rt_.pack_pooled(item), /*flush_through=*/false);
      return;
    }
    const int peer = rt_.machine().topology().next_on_route(pe, dest);
    Buffer& buf = buffer_for(pe, peer);
    // Reserve the frame head, pup the item in place, then patch the length.
    const std::size_t head_at = buf.frames.size();
    buf.frames.resize(head_at + sizeof(FrameHead));
    pup::pack_append(buf.frames, item);
    FrameHead head{};
    head.idx = dest_idx;
    head.ep = ep;
    head.dest_pe = dest;
    head.len = static_cast<std::uint32_t>(buf.frames.size() - head_at -
                                          sizeof(FrameHead));
    std::memcpy(buf.frames.data() + head_at, &head, sizeof(FrameHead));
    buf.payload_bytes += head.len;
    ++buf.count;
    if (buf.count >= params_.buffer_items)
      flush_buffer(pe, peer, /*flush_through=*/false);
  }

  /// Insert an already-packed item (legacy / type-erased entry point).
  void insert(const ObjIndex& dest_idx, EntryId ep, std::vector<std::byte> payload);

  /// Flush every buffer on every PE and cascade through intermediate hops
  /// (phase end).  Completion is observable via Runtime::start_quiescence.
  void flush_all();

  Runtime& rt() const { return rt_; }

  std::uint64_t items_inserted() const { return items_; }
  std::uint64_t batches_sent() const { return batches_; }
  /// Mean items per batch — the aggregation factor TRAM achieves.
  double aggregation() const {
    return batches_ ? static_cast<double>(routed_items_) / static_cast<double>(batches_) : 0.0;
  }
  /// Modeled wire bytes of all batch sends (frame payloads + per-item
  /// overhead; the Envelope header is charged by send_control on top).
  std::uint64_t batch_bytes() const { return batch_bytes_; }
  /// Control-plane traffic: the flush_all fan-out messages that tell every
  /// PE to drain its buffers, and their modeled bytes.  Together with
  /// batch_bytes this accounts for every byte TRAM puts on the wire, so
  /// benches can report aggregation overhead per item.
  std::uint64_t control_messages() const { return control_msgs_; }
  std::uint64_t control_bytes() const { return control_bytes_; }

 private:
  /// Per-item frame header preceding the pupped bytes in a batch buffer.
  /// Buffers never leave the (sequentially emulated) process, so host layout
  /// and padding are fine.
  struct FrameHead {
    ObjIndex idx{};
    EntryId ep = -1;
    std::int32_t dest_pe = 0;
    std::uint32_t len = 0;
  };
  /// One aggregation buffer: concatenated frames plus running totals.
  struct Buffer {
    std::vector<std::byte> frames;
    std::size_t count = 0;
    std::size_t payload_bytes = 0;  ///< pup bytes only, excluding frame heads
  };
  struct PeState {
    std::unordered_map<int, Buffer> buffers;  // keyed by peer PE
  };

  /// Destination PE from the sender's location knowledge: local table, cache,
  /// home record (when this PE is the home), else the home PE.
  int resolve_dest(int pe, const ObjIndex& idx);
  /// A better owner guess after a local delivery miss (mirrors the runtime's
  /// own point-delivery consult of home table / location cache).
  int better_location(int pe, const ObjIndex& idx);
  /// Local delivery missed: re-route on the aggregated path when a better
  /// location is known, else hand over to the point-send protocol (which
  /// buffers at the home until the element lands).
  void local_miss(int pe, const ObjIndex& idx, EntryId ep,
                  std::vector<std::byte> payload, bool flush_through);
  /// Append an already-packed frame toward `dest` and flush on threshold.
  void route_packed(int pe, const ObjIndex& idx, EntryId ep, int dest,
                    const std::byte* data, std::size_t len, bool flush_through);
  Buffer& buffer_for(int pe, int peer);
  void flush_buffer(int pe, int peer, bool flush_through);
  void flush_pe(int pe, bool flush_through);
  void deliver_batch(int pe, Buffer buf, bool flush_through);

  Runtime& rt_;
  CollectionId col_;
  Params params_;
  /// Per-PE buffer sets, paged on first touch: a stream over a P-PE machine
  /// costs memory only on the PEs that actually insert or relay items.
  sim::PagedTable<PeState> pes_;
  std::uint64_t items_ = 0;
  std::uint64_t routed_items_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batch_bytes_ = 0;
  std::uint64_t control_msgs_ = 0;
  std::uint64_t control_bytes_ = 0;
};

/// Typed stream bound to one entry method of a chare array.
template <auto Mfp>
class Stream {
  using Traits = detail::MfpTraits<decltype(Mfp)>;

 public:
  using Element = typename Traits::Chare;
  using Item = typename Traits::Argument;

  template <class Ix>
  Stream(Runtime& rt, const ArrayProxy<Element, Ix>& target, Params params = {})
      : core_(std::make_shared<Core>(rt, target.id(), params)) {}

  template <class Ix>
  void send(const Ix& dest, const Item& item) const {
    core_->insert_typed(IndexTraits<Ix>::encode(dest), Registry::entry_of<Mfp>(),
                        Registry::direct_invoker<Mfp>(), item);
  }

  void flush_all() const { core_->flush_all(); }
  const Core& core() const { return *core_; }

 private:
  std::shared_ptr<Core> core_;
};

}  // namespace charm::tram
