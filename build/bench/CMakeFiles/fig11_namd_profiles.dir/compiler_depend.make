# Empty compiler generated dependencies file for fig11_namd_profiles.
# This may be replaced when dependencies are built.
