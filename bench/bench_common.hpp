#pragma once
// Shared helpers for the figure-reproduction benches: machine construction,
// paper-style table output, and the common command-line flags.  Every bench
// prints the series the paper plots; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Flags (parsed by bench::parse_args, accepted by every figure binary):
//   --smoke        shrink PE series / step counts to a CI-sized sanity run
//   --trace=FILE   attach a tracer to each simulated machine and write the
//                  LAST traced run as Chrome trace_event JSON to FILE
//                  (open in chrome://tracing or ui.perfetto.dev)
//   --mtbf=SEC     (fault-tolerant benches only) inject PE failures with the
//                  given mean time between failures, in virtual seconds
//   --failures=N   cap the number of injected failures (default 1)
//   --fault-seed=N seed for the failure schedule / victim draws (default 1)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/charm.hpp"
#include "trace/chrome_export.hpp"
#include "trace/summary.hpp"
#include "trace/time_profile.hpp"
#include "trace/trace.hpp"

namespace bench {

inline sim::MachineConfig machine_config(int npes,
                                         sim::NetworkParams net = sim::NetworkParams::bluegene_q(),
                                         int pes_per_chip = 4) {
  sim::MachineConfig cfg;
  cfg.npes = npes;
  cfg.net = net;
  cfg.pes_per_chip = pes_per_chip;
  return cfg;
}

inline void header(const std::string& fig, const std::string& title) {
  std::printf("\n== %s: %s ==\n", fig.c_str(), title.c_str());
}

inline void columns(const std::vector<std::string>& names) {
  for (const auto& n : names) std::printf("%16s", n.c_str());
  std::printf("\n");
}

inline void row(const std::vector<double>& values) {
  for (double v : values) std::printf("%16.6g", v);
  std::printf("\n");
}

inline void note(const std::string& s) { std::printf("   %s\n", s.c_str()); }

/// Runs the machine to completion and returns the makespan in virtual seconds.
inline double run_to_completion(sim::Machine& m) {
  m.run();
  return m.max_pe_clock();
}

// ---- common flags ------------------------------------------------------------

struct Options {
  bool smoke = false;       ///< tiny PE counts / few steps (CI sanity mode)
  std::string trace_file;   ///< Chrome trace_event output ("" = tracing off)
  double mtbf = 0;          ///< >0: inject failures with this MTBF (virtual s)
  int failures = 1;         ///< failure budget when mtbf > 0
  std::uint64_t fault_seed = 1;  ///< failure schedule seed
};

inline Options& options() {
  static Options o;
  return o;
}

/// Parses the common flags; rejects anything else so typos fail CI.
inline int parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--smoke") == 0) {
      options().smoke = true;
    } else if (std::strncmp(a, "--trace=", 8) == 0 && a[8] != '\0') {
      options().trace_file = a + 8;
    } else if (std::strncmp(a, "--mtbf=", 7) == 0 && a[7] != '\0') {
      options().mtbf = std::strtod(a + 7, nullptr);
      if (options().mtbf <= 0) {
        std::fprintf(stderr, "%s: --mtbf needs a positive time in seconds\n", argv[0]);
        return 1;
      }
    } else if (std::strncmp(a, "--failures=", 11) == 0 && a[11] != '\0') {
      options().failures = std::atoi(a + 11);
      if (options().failures <= 0) {
        std::fprintf(stderr, "%s: --failures needs a positive count\n", argv[0]);
        return 1;
      }
    } else if (std::strncmp(a, "--fault-seed=", 13) == 0 && a[13] != '\0') {
      options().fault_seed = std::strtoull(a + 13, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "%s: unknown argument '%s' (expected --smoke, --trace=FILE, "
                   "--mtbf=SEC, --failures=N, or --fault-seed=N)\n",
                   argv[0], a);
      return 1;
    }
  }
  return 0;
}

inline bool smoke() { return options().smoke; }

/// Full series normally; the first `smoke_keep` entries under --smoke.
inline std::vector<int> pe_series(std::vector<int> full, std::size_t smoke_keep = 2) {
  if (smoke() && full.size() > smoke_keep) full.resize(smoke_keep);
  return full;
}

/// Step/iteration count, capped under --smoke.
inline int cap_steps(int steps, int smoke_steps = 2) {
  return smoke() ? std::min(steps, smoke_steps) : steps;
}

/// The shared trace log (one per bench process; each traced machine resets
/// it, so the written file holds the last traced run).
inline trace::Tracer& shared_tracer() {
  static trace::Tracer t;
  return t;
}

/// Attaches the shared tracer to `m` when --trace=FILE was given.  Call right
/// after constructing each machine.
inline void attach_trace(sim::Machine& m) {
  if (options().trace_file.empty()) return;
  shared_tracer().clear();
  m.set_tracer(&shared_tracer());
}

/// Labels entry spans with registered names (Registry::name_entry).
inline trace::EntryLabeler entry_labeler() {
  return [](int col, int ep) -> std::string {
    if (ep < 0) return "col" + std::to_string(col) + ".apply";
    const std::string& n = charm::Registry::instance().entry_name(ep);
    if (!n.empty()) return n;
    return "col" + std::to_string(col) + ".ep" + std::to_string(ep);
  };
}

/// Writes the accumulated trace (if any) and returns the process exit code.
/// Call as the last statement of main: `return bench::finish();`
inline int finish() {
  if (options().trace_file.empty()) return 0;
  const trace::Tracer& t = shared_tracer();
  if (!trace::write_chrome_trace_file(t, options().trace_file, entry_labeler())) {
    std::fprintf(stderr, "failed to write trace to %s\n", options().trace_file.c_str());
    return 1;
  }
  std::printf("   trace: %zu events -> %s (open in chrome://tracing)\n", t.size(),
              options().trace_file.c_str());
  if (t.dropped() > 0)
    std::printf("   trace: WARNING %llu events dropped at the buffer cap\n",
                static_cast<unsigned long long>(t.dropped()));
  return 0;
}

/// Prints a Fig 11-style per-interval utilization profile of the last traced
/// run: busy / overhead / idle fractions per bin, averaged over PEs.
inline void print_time_profile(int npes, int nbins) {
  if (options().trace_file.empty()) return;
  const trace::TimeProfile p = trace::build_time_profile(shared_tracer(), npes, nbins);
  std::printf("   time profile (%d bins of %.3g ms, mean over %d PEs):\n", p.nbins,
              p.bin_width * 1e3, p.npes);
  std::printf("%16s%16s%16s%16s%16s\n", "bin_start_ms", "busy", "overhead", "idle", "sum");
  for (int b = 0; b < p.nbins; ++b) {
    const trace::ProfileBin& bin = p.mean[static_cast<std::size_t>(b)];
    std::printf("%16.4f%16.4f%16.4f%16.4f%16.4f\n", (p.t0 + b * p.bin_width) * 1e3,
                bin.busy, bin.overhead, bin.idle, bin.busy + bin.overhead + bin.idle);
  }
}

}  // namespace bench
