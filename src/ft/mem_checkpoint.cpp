#include "ft/mem_checkpoint.hpp"

#include <memory>
#include <stdexcept>

#include "trace/trace.hpp"

namespace charm::ft {

MemCheckpointer::MemCheckpointer(Runtime& rt, MemCkptParams params)
    : rt_(rt),
      params_(params),
      local_(static_cast<std::size_t>(rt.npes())),
      buddy_(static_cast<std::size_t>(rt.npes())) {}

void MemCheckpointer::checkpoint(Callback done) {
  const double begin = rt_.now();
  const int P = rt_.active_pes();
  for (auto& v : local_) v.clear();
  for (auto& v : buddy_) v.clear();
  total_bytes_ = 0;
  ++checkpoints_;

  auto remaining = std::make_shared<int>(P);
  for (int pe = 0; pe < P; ++pe) {
    rt_.send_control(pe, 16, [this, pe, P, remaining, done, begin]() {
      // Pack every local element of checkpointable collections.
      double bytes = 0;
      for (std::size_t ci = 0; ci < rt_.collection_count(); ++ci) {
        Collection& c = rt_.collection(static_cast<CollectionId>(ci));
        if (!c.checkpointable) continue;
        for (auto& [ix, obj] : c.local(pe).elems) {
          Copy copy;
          copy.col = c.id;
          copy.idx = ix;
          copy.pe = pe;
          pup::Packer pk(copy.bytes);
          obj->pup(pk);
          bytes += static_cast<double>(copy.bytes.size());
          local_[static_cast<std::size_t>(pe)].push_back(copy);
        }
      }
      total_bytes_ += static_cast<std::uint64_t>(bytes);
      rt_.charge(bytes / params_.pack_bw);  // local copy

      // Ship the second copy to the buddy (real message cost).
      const int buddy = (pe + 1) % P;
      rt_.send_control(buddy, static_cast<std::size_t>(bytes),
                       [this, pe, buddy, bytes, remaining, done, begin]() {
                         buddy_[static_cast<std::size_t>(buddy)] =
                             local_[static_cast<std::size_t>(pe)];
                         rt_.charge(bytes / params_.pack_bw);  // copy-in
                         if (--*remaining == 0) {
                           rt_.after(rt_.my_pe(), rt_.tree_wave_latency(),
                                     [this, done, begin]() {
                                       if (trace::Tracer* tr = rt_.machine().tracer())
                                         tr->phase_span(trace::Phase::kCheckpoint, 0,
                                                        begin, rt_.now());
                                       done.invoke(rt_, ReductionResult{});
                                     });
                         }
                       });
    });
  }
}

void MemCheckpointer::fail_and_recover(int victim, Callback done) {
  if (checkpoints_ == 0)
    throw std::logic_error("fail_and_recover: no checkpoint taken yet");
  recover_begin_ = rt_.now();
  failed_pe_ = victim;
  rt_.set_pe_dead(victim, true);
  // The victim's in-memory state (its local copies and any buddy copies it
  // held for its predecessor) is lost with the process.
  const int P = rt_.active_pes();
  const int pred = (victim - 1 + P) % P;
  (void)pred;
  local_[static_cast<std::size_t>(victim)].clear();
  // Note: buddy copies held ON the victim are also lost; the protocol
  // tolerates one failure between checkpoints, as in the paper.
  buddy_[static_cast<std::size_t>(victim)].clear();

  rt_.after(0, params_.detect_delay, [this, victim, done]() {
    // Replacement process takes over the victim's slot.
    rt_.set_pe_dead(victim, false);
    restore_all(done);
  });
}

void MemCheckpointer::restore_all(Callback done) {
  const int P = rt_.active_pes();
  const int victim = failed_pe_;
  failed_pe_ = kInvalidPe;

  // Phase 1: every PE discards its live elements (rollback).
  for (std::size_t ci = 0; ci < rt_.collection_count(); ++ci) {
    Collection& c = rt_.collection(static_cast<CollectionId>(ci));
    if (!c.checkpointable) continue;
    rt_.clear_reductions(c.id);
    for (int pe = 0; pe < rt_.npes(); ++pe) {
      std::vector<ObjIndex> ids;
      ids.reserve(c.local(pe).elems.size());
      for (auto& [ix, obj] : c.local(pe).elems) ids.push_back(ix);
      for (const ObjIndex& ix : ids) rt_.extract_local(c.id, ix, pe);
    }
  }

  // Phase 2: restore.  Live PEs restore from their local copies; the
  // replacement gets the failed PE's copies from the buddy.
  auto remaining = std::make_shared<int>(P);
  auto finish = [this, remaining, done]() {
    if (--*remaining == 0) {
      rt_.rebuild_location_tables();
      rt_.after(rt_.my_pe(), params_.barrier_count * 2.0 * rt_.tree_wave_latency(),
                [this, done]() {
                  if (trace::Tracer* tr = rt_.machine().tracer())
                    tr->phase_span(trace::Phase::kRestore, 0, recover_begin_, rt_.now());
                  done.invoke(rt_, ReductionResult{});
                });
    }
  };

  for (int pe = 0; pe < P; ++pe) {
    const bool is_victim = pe == victim;
    const int source_store = is_victim ? (victim + 1) % P : pe;
    const std::vector<Copy>* store =
        is_victim ? &buddy_[static_cast<std::size_t>(source_store)]
                  : &local_[static_cast<std::size_t>(pe)];
    double bytes = 0;
    for (const Copy& copy : *store) bytes += static_cast<double>(copy.bytes.size());

    auto restore_here = [this, pe, store, bytes, finish]() {
      rt_.charge(bytes / params_.pack_bw);  // unpack
      for (const Copy& copy : *store) {
        Collection& c = rt_.collection(copy.col);
        const ChareTypeInfo& info = Registry::instance().type(c.type);
        std::unique_ptr<ArrayElementBase> obj(info.create_default());
        pup::Unpacker u(copy.bytes);
        obj->pup(u);
        rt_.seed_element(copy.col, copy.idx, std::move(obj), pe);
      }
      finish();
    };

    if (is_victim) {
      // Buddy ships the copies across the network first.
      rt_.send_control(source_store, 16, [this, pe, bytes, restore_here]() {
        rt_.send_control(pe, static_cast<std::size_t>(bytes), restore_here);
      });
    } else {
      rt_.send_control(pe, 16, restore_here);
    }
  }
}

}  // namespace charm::ft
