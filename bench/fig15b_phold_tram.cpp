// Fig 15b: PHOLD with and without TRAM, 256 LPs per PE, 64 vs 1024 events
// per LP.  At low communication volume aggregation only adds latency; at
// high volume TRAM's per-message overhead amortization wins.

#include "bench_common.hpp"
#include "miniapps/pdes/pdes.hpp"

namespace {

double event_rate(int npes, int events_per_lp, bool use_tram) {
  using namespace charm;
  sim::Machine m(bench::machine_config(npes));
  bench::attach_trace(m);
  Runtime rt(m);
  pdes::Params p;
  p.nlps = npes * 64;  // scaled from the paper's 256 LPs/PE
  p.initial_events_per_lp = events_per_lp;
  p.use_tram = use_tram;
  p.tram_buffer = 64;
  pdes::Engine eng(rt, p);
  rt.on_pe(0, [&] { eng.run_until(bench::smoke() ? 0.8 : 2.5, Callback::ignore()); });
  m.run();
  return static_cast<double>(eng.total_executed()) / m.max_pe_clock();
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  // Scaled 4x from the paper (64 LPs/PE; 16 vs 256 events/LP keeps the same
  // 16x communication-volume contrast as the paper's 64 vs 1024).
  bench::header("Figure 15b", "PHOLD with/without TRAM, 64 LPs/PE");
  bench::columns({"PEs", "noTRAM 16e/LP", "TRAM 16e/LP", "noTRAM 256e/LP", "TRAM 256e/LP"});
  for (int p : bench::pe_series({8, 16, 32})) {
    bench::row({static_cast<double>(p), event_rate(p, 16, false), event_rate(p, 16, true),
                event_rate(p, 256, false), event_rate(p, 256, true)});
  }
  bench::note("paper shape: direct sends win at low event volume on small runs; TRAM wins at");
  bench::note("high volume (the paper peaks over 50M events/s with TRAM at 1024 events/LP)");
  return bench::finish();
}
