# Empty compiler generated dependencies file for fig08_amr.
# This may be replaced when dependencies are built.
