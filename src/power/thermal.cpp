#include "power/thermal.hpp"

#include <algorithm>

namespace charm::power {

ThermalModel::ThermalModel(int nchips, ThermalParams params)
    : params_(params),
      temps_(static_cast<std::size_t>(nchips), params.t_initial_c),
      max_seen_(params.t_initial_c) {}

double ThermalModel::cool_of(int chip) const {
  if (nchips() <= 1 || params_.cool_spread == 0) return params_.cool_per_s;
  const double frac = static_cast<double>(chip) / (nchips() - 1) - 0.5;
  return params_.cool_per_s * (1.0 - params_.cool_spread * frac);
}

double ThermalModel::step(int chip, double dt, double utilization, double freq) {
  double& t = temps_.at(static_cast<std::size_t>(chip));
  const double power =
      params_.p_static_w + params_.p_dyn_w * utilization * freq * freq * freq;
  const double cool = cool_of(chip);
  // Sub-step the ODE for stability when dt is large relative to cooling.
  const int substeps = std::max(1, static_cast<int>(dt * cool * 10));
  const double h = dt / substeps;
  for (int s = 0; s < substeps; ++s) {
    t += h * (params_.heat_c_per_j * power - cool * (t - params_.ambient_c));
  }
  max_seen_ = std::max(max_seen_, t);
  return t;
}

double ThermalModel::max_temperature() const {
  return *std::max_element(temps_.begin(), temps_.end());
}

}  // namespace charm::power
