#pragma once
// Malleable jobs: shrink/expand at run time (§III-D, Fig 5).
//
// An external scheduler command (delivered through a CCS-style in-process
// command queue; DESIGN.md §1) asks the job to change its PE set.  The runtime
// evacuates chares from the PEs being removed (shrink) or spreads them onto
// the new PEs (expand) with a customized balancer, rebuilds location state,
// and charges the process restart/reconnect time that dominated the paper's
// measurements (2.7 s shrink, 7.2 s expand at 256 cores).

#include "runtime/callback.hpp"
#include "runtime/runtime.hpp"

namespace charm::ccs {

struct ReconfigCosts {
  /// Process teardown/restart dominates (paper §III-D): base plus a weak
  /// dependence on the target PE count.
  double shrink_base_s = 2.0;
  double expand_base_s = 5.5;
  double per_pe_s = 0.004;
};

/// CCS-style command server: queues shrink/expand requests that take effect
/// at the application's next AtSync boundary.
class Server {
 public:
  explicit Server(Runtime& rt, ReconfigCosts costs = {}) : rt_(rt), costs_(costs) {}

  /// Shrink the job to `target_pes`; `done` fires when the application has
  /// been rebalanced onto the smaller set.
  void request_shrink(int target_pes, Callback done);

  /// Expand the job to `target_pes` (PEs must exist in the machine).
  void request_expand(int target_pes, Callback done);

  int requests_served() const { return served_; }

 private:
  Runtime& rt_;
  ReconfigCosts costs_;
  int served_ = 0;
};

}  // namespace charm::ccs
