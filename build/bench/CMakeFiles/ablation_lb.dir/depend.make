# Empty dependencies file for ablation_lb.
# This may be replaced when dependencies are built.
