#include "trace/chrome_export.hpp"

#include <cstdint>
#include <fstream>
#include <ostream>

namespace trace {

namespace {

constexpr double kToUs = 1e6;  // virtual seconds -> trace_event microseconds

void escape_into(const std::string& s, std::string& out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kLbStep: return "lb_step";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kRestore: return "restore";
    case Phase::kFailure: return "failure";
    case Phase::kCustom: break;
  }
  return "phase";
}

void complete_event(std::ostream& os, const char* name, const char* cat, int tid,
                    double begin, double end) {
  os << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
     << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << begin * kToUs
     << ",\"dur\":" << (end - begin) * kToUs << "}";
}

}  // namespace

void write_chrome_trace(const std::vector<Event>& events, std::ostream& os,
                        const EntryLabeler& label) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Thread-name metadata so PEs are labeled in the viewer.
  std::int32_t max_pe = -1;
  for (const Event& e : events) max_pe = e.pe > max_pe ? e.pe : max_pe;
  for (std::int32_t pe = 0; pe <= max_pe; ++pe) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << pe
       << ",\"args\":{\"name\":\"PE " << pe << "\"}}";
  }

  std::uint64_t flow_id = 0;
  std::string buf;
  for (const Event& e : events) {
    switch (e.kind) {
      case Kind::kExec:
        sep();
        os << "{\"name\":\"exec\",\"cat\":\"machine\",\"ph\":\"X\",\"pid\":0,\"tid\":"
           << e.pe << ",\"ts\":" << e.begin * kToUs << ",\"dur\":" << (e.end - e.begin) * kToUs
           << ",\"args\":{\"bytes\":" << e.bytes << "}}";
        break;
      case Kind::kEntry: {
        buf.clear();
        if (label) {
          escape_into(label(e.a, e.b), buf);
        }
        if (buf.empty()) {
          buf = "col" + std::to_string(e.a) + ".ep" + std::to_string(e.b);
        }
        sep();
        os << "{\"name\":\"" << buf << "\",\"cat\":\"entry\",\"ph\":\"X\",\"pid\":0,\"tid\":"
           << e.pe << ",\"ts\":" << e.begin * kToUs << ",\"dur\":" << (e.end - e.begin) * kToUs
           << "}";
        break;
      }
      case Kind::kSend: {
        const std::uint64_t id = flow_id++;
        sep();
        os << "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":" << id
           << ",\"pid\":0,\"tid\":" << e.pe << ",\"ts\":" << e.begin * kToUs
           << ",\"args\":{\"dst\":" << e.a << ",\"bytes\":" << e.bytes
           << ",\"hops\":" << e.b << "}}";
        sep();
        os << "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << id
           << ",\"pid\":0,\"tid\":" << e.a << ",\"ts\":" << e.end * kToUs << "}";
        break;
      }
      case Kind::kRecv:
        if (e.end > e.begin) {
          sep();
          complete_event(os, "queued", "queue", e.pe, e.begin, e.end);
        }
        break;
      case Kind::kIdle:
        sep();
        complete_event(os, "idle", "idle", e.pe, e.begin, e.end);
        break;
      case Kind::kPhase:
        sep();
        complete_event(os, phase_name(e.phase), "phase", e.pe, e.begin, e.end);
        break;
    }
  }
  os << "]}\n";
}

bool write_chrome_trace_file(const std::vector<Event>& events, const std::string& path,
                             const EntryLabeler& label) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_chrome_trace(events, out, label);
  return out.good();
}

}  // namespace trace
