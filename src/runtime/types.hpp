#pragma once
// Shared identifier types for the charmlike runtime.

#include <cstdint>

namespace charm {

using CollectionId = int;  ///< chare array / group instance
using ChareTypeId = int;   ///< C++ chare class
using EntryId = int;       ///< entry method (remotely invocable member fn)
using CreatorId = int;     ///< registered (chare type, ctor-arg) factory
using Time = double;       ///< virtual seconds

constexpr int kInvalidPe = -1;

/// Message priority: lower values are scheduled first on a busy PE.
constexpr int kDefaultPriority = 0;
constexpr int kHighPriority = -10;
constexpr int kLowPriority = 10;

}  // namespace charm
