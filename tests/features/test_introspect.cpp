// Live introspection tests (DESIGN.md §11): the online Monitor's counters
// must reconcile with the post-mortem trace-derived stats on the same run,
// attaching it must not perturb virtual time by a single bit, the sample
// timeline must be deterministic and monotone, steady-state sampling must be
// allocation-free (operator-new-counting gate), mid-run queries must work
// between machine phases, the opt-in tree summary must compute the global λ
// with real counted messages, and the decision journal must record LB / FT /
// malleability events.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "ft/mem_checkpoint.hpp"
#include "introspect/metrics.hpp"
#include "lb/strategy.hpp"
#include "malleability/malleability.hpp"
#include "runtime/charm.hpp"
#include "stats/json_export.hpp"
#include "stats/report.hpp"
#include "trace/trace.hpp"

#include "test_util.hpp"

// ---- operator new/delete counting hook --------------------------------------
//
// Same idiom as tests/core/test_queues.cpp: a global allocation counter
// toggled around the measured region; the hooks otherwise defer to malloc.
// This file is its own test executable so the replacement operators cannot
// collide with the queue test's.

namespace {
bool g_counting = false;
std::size_t g_allocs = 0;
}  // namespace

// GCC pairs the inlined replacement operator new with the free() inside the
// replacement operator delete and flags a mismatch; the pair is consistent
// by construction (both sides are malloc/free).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_counting) ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting) ++g_allocs;
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace charm;
using charmtest::Harness;

// ---- deterministic chatter workload (mirrors tests/features/test_stats) -----

constexpr int kElems = 16;

struct WorkMsg {
  std::uint32_t seed = 0;
  std::int32_t hops = 0;
  void pup(pup::Er& p) {
    p | seed;
    p | hops;
  }
};

class Chatter : public charm::ArrayElement<Chatter, std::int32_t> {
 public:
  void chat(const WorkMsg& m) {
    const std::uint32_t s = m.seed * 1664525u + 1013904223u;
    charge((1.0 + static_cast<double>(s >> 28)) * 1e-6);
    if (m.hops > 0) {
      ArrayProxy<Chatter> arr(collection_id());
      arr[static_cast<std::int32_t>(s % kElems)].send<&Chatter::chat>(
          WorkMsg{s, m.hops - 1});
    }
  }
  void pup(pup::Er& p) override { ArrayElementBase::pup(p); }
};

void kick_chatter(Harness& h, ArrayProxy<Chatter>& arr, std::uint32_t seed,
                  int chains, int hops) {
  h.rt.on_pe(0, [&arr, seed, chains, hops] {
    for (int c = 0; c < chains; ++c) {
      arr[c % kElems].send<&Chatter::chat>(
          WorkMsg{seed + 0x9e3779b9u * static_cast<std::uint32_t>(c), hops});
    }
  });
}

// ---- live counters vs. post-mortem stats ------------------------------------

TEST(Introspect, LiveCountersReconcileWithPostMortem) {
  constexpr int kNpes = 4;
  Harness h(kNpes);
  trace::Tracer tracer;
  h.machine.set_tracer(&tracer);
  introspect::Monitor mon;
  mon.attach(h.machine);

  auto arr = ArrayProxy<Chatter>::create(h.rt);
  for (int i = 0; i < kElems; ++i) arr.seed(i, i % kNpes);
  kick_chatter(h, arr, /*seed=*/7, /*chains=*/6, /*hops=*/40);
  h.machine.run();

  const stats::Report r = stats::collect(tracer, kNpes);
  ASSERT_EQ(mon.npes(), kNpes);
  for (int pe = 0; pe < kNpes; ++pe) {
    const auto i = static_cast<std::size_t>(pe);
    const introspect::PeCounters& live = mon.pe(pe);
    // exec sums the identical `clock_end - clock_begin` expression the
    // post-mortem collector derives from the trace spans: bit-exact.
    EXPECT_EQ(live.exec, r.pes[i].exec) << "pe " << pe;
    EXPECT_EQ(live.execs, r.pes[i].execs) << "pe " << pe;
    EXPECT_EQ(live.msgs_sent, r.pes[i].msgs_sent) << "pe " << pe;
    EXPECT_EQ(live.bytes_sent, r.pes[i].bytes_sent) << "pe " << pe;
    // busy accumulates per-entry durations in arrival order while the
    // post-mortem value sums trace spans: same terms, FP-rounding tolerance.
    EXPECT_NEAR(live.busy, r.pes[i].busy,
                1e-9 * (r.pes[i].busy + 1e-30))
        << "pe " << pe;
  }
  EXPECT_EQ(mon.total_exec(), r.total_exec());
  EXPECT_EQ(mon.total_execs(), r.total_execs());
  EXPECT_EQ(mon.total_msgs(), r.messages.sends);
  EXPECT_EQ(mon.total_bytes(), r.messages.bytes);
  EXPECT_NEAR(mon.total_busy(), r.total_busy(), 1e-9 * (r.total_busy() + 1e-30));
  // time() is the last *event* timestamp; the final handler's execution span
  // extends past it, so it lower-bounds the trace makespan.
  EXPECT_GT(mon.time(), 0.0);
  EXPECT_LE(mon.time(), r.makespan + 1e-12);

  // Live entry grains cover the same call population the trace saw.
  std::uint64_t live_calls = 0;
  for (const auto& [key, load] : mon.entry_loads()) live_calls += load.calls;
  std::uint64_t trace_calls = 0;
  for (const stats::EntryUsage& u : r.entries)
    if (u.col >= 0) trace_calls += u.calls;
  EXPECT_EQ(live_calls, trace_calls);
}

// ---- zero virtual-time perturbation -----------------------------------------

TEST(Introspect, AttachingMonitorDoesNotPerturbVirtualTime) {
  auto run = [](bool with_metrics, std::string* json_out) {
    constexpr int kNpes = 4;
    Harness h(kNpes);
    trace::Tracer tracer;
    h.machine.set_tracer(&tracer);
    introspect::Monitor mon;
    if (with_metrics) {
      mon.set_interval(5e-6);  // aggressive cadence: many boundary crossings
      mon.attach(h.machine);
    }
    auto arr = ArrayProxy<Chatter>::create(h.rt);
    for (int i = 0; i < kElems; ++i) arr.seed(i, i % kNpes);
    kick_chatter(h, arr, /*seed=*/11, /*chains=*/6, /*hops=*/50);
    h.machine.run();
    if (with_metrics) {
      EXPECT_GT(mon.samples().size(), 4u);
    }
    // The metrics block stays disabled so both exports use the same schema.
    *json_out = stats::to_json(stats::collect(tracer, kNpes), stats::ExportMeta{});
    return h.machine.events_processed();
  };
  std::string base_json, metered_json;
  const std::uint64_t base_events = run(false, &base_json);
  const std::uint64_t metered_events = run(true, &metered_json);
  EXPECT_EQ(base_events, metered_events)
      << "sampling must not inject events";
  EXPECT_EQ(base_json, metered_json)
      << "every clock, span, and message must be byte-identical with metrics on";
}

// ---- timeline determinism and invariants ------------------------------------

TEST(Introspect, SamplesAreDeterministicAndMonotone) {
  constexpr int kNpes = 4;
  constexpr double kInterval = 1e-5;
  auto run = [](std::vector<introspect::Sample>* out) {
    Harness h(kNpes);
    introspect::Monitor mon;
    mon.set_interval(kInterval);
    mon.attach(h.machine);
    auto arr = ArrayProxy<Chatter>::create(h.rt);
    for (int i = 0; i < kElems; ++i) arr.seed(i, i % kNpes);
    kick_chatter(h, arr, /*seed=*/3, /*chains=*/5, /*hops=*/60);
    h.machine.run();
    *out = mon.samples();
    EXPECT_EQ(mon.dropped_samples(), 0u);
  };
  std::vector<introspect::Sample> a, b;
  run(&a);
  run(&b);
  ASSERT_GT(a.size(), 4u);
  ASSERT_EQ(a.size(), b.size());

  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    const introspect::Sample& s = a[i];
    const introspect::Sample& t = b[i];
    // Two identical runs produce identical timelines, field for field.
    EXPECT_EQ(s.t, t.t);
    EXPECT_EQ(s.busy, t.busy);
    EXPECT_EQ(s.exec, t.exec);
    EXPECT_EQ(s.execs, t.execs);
    EXPECT_EQ(s.msgs, t.msgs);
    EXPECT_EQ(s.bytes, t.bytes);
    EXPECT_EQ(s.lambda, t.lambda);
    EXPECT_EQ(s.ready, t.ready);
    EXPECT_EQ(s.ready_hwm, t.ready_hwm);
    EXPECT_EQ(s.evq, t.evq);
    EXPECT_EQ(s.evq_hwm, t.evq_hwm);

    // Timestamps are exact interval multiples (computed, not accumulated).
    EXPECT_EQ(s.t, kInterval * static_cast<double>(i + 1));
    // Watermarks bound the instantaneous depths in every window.
    EXPECT_GE(s.ready_hwm, s.ready);
    EXPECT_GE(s.evq_hwm, s.evq);
    EXPECT_GE(s.busy_max, s.busy_avg);
    EXPECT_LE(s.coll_msgs, s.msgs);
    EXPECT_LE(s.coll_bytes, s.bytes);
    if (i > 0) {
      // Cumulative fields never decrease; rates match the window deltas.
      EXPECT_GE(s.busy, a[i - 1].busy);
      EXPECT_GE(s.exec, a[i - 1].exec);
      EXPECT_GE(s.execs, a[i - 1].execs);
      EXPECT_GE(s.msgs, a[i - 1].msgs);
      EXPECT_GE(s.bytes, a[i - 1].bytes);
      EXPECT_EQ(s.msg_rate,
                static_cast<double>(s.msgs - a[i - 1].msgs) / kInterval);
      EXPECT_EQ(s.byte_rate,
                static_cast<double>(s.bytes - a[i - 1].bytes) / kInterval);
    }
  }
}

// ---- allocation-free steady state -------------------------------------------

TEST(Introspect, SteadyStateSamplingIsAllocationFree) {
  Harness h(8);
  introspect::Monitor mon;
  mon.set_interval(1e-6);
  mon.attach(h.machine);

  // Warm-up: touch every (col, ep) key the steady state will see (first use
  // allocates the map node) and confirm the sample buffer is pre-reserved.
  for (int pe = 0; pe < 8; ++pe) mon.on_entry(pe, /*col=*/1, /*ep=*/pe % 3, 1e-7);
  ASSERT_GE(introspect::Monitor::kSampleReserve, 2048u);

  g_allocs = 0;
  g_counting = true;
  double now = 0;
  for (int i = 0; i < 20000; ++i) {
    const int pe = i % 8;
    mon.on_send(pe, 128);
    mon.on_arrive(pe, /*ready_depth=*/2);
    mon.on_entry(pe, 1, pe % 3, 1e-7);
    mon.on_exec(pe, 2e-7, /*ready_depth=*/1);
    now += 1e-7;  // crosses a sample boundary every 10 iterations
    mon.on_step(now, /*evq_depth=*/4);
  }
  g_counting = false;

  EXPECT_EQ(g_allocs, 0u) << "hot-path hooks and boundary sampling must not "
                             "allocate in the steady state";
  EXPECT_GT(mon.samples().size(), 1000u);
  EXPECT_LT(mon.samples().size(), introspect::Monitor::kSampleReserve);
}

// ---- mid-run queries between phases -----------------------------------------

TEST(Introspect, MidRunQueryBetweenPhases) {
  constexpr int kNpes = 4;
  Harness h(kNpes);
  introspect::Monitor mon;
  mon.attach(h.machine);
  ASSERT_EQ(h.rt.metrics(), &mon) << "Runtime::metrics() must expose the monitor";

  auto arr = ArrayProxy<Chatter>::create(h.rt);
  for (int i = 0; i < kElems; ++i) arr.seed(i, i % kNpes);
  kick_chatter(h, arr, /*seed=*/5, /*chains=*/4, /*hops=*/30);
  h.machine.run();

  // Phase boundary: the machine drained, so queues are empty but the
  // counters hold the phase-1 totals.
  const double t1 = mon.time();
  const std::uint64_t execs1 = mon.total_execs();
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(execs1, 0u);
  EXPECT_EQ(mon.ready_depth(), 0u);
  EXPECT_EQ(mon.event_queue_depth(), 0u);
  EXPECT_GE(mon.imbalance(), 1.0);
  double util = 0;
  for (int pe = 0; pe < kNpes; ++pe) {
    EXPECT_GT(mon.utilization(pe), 0.0) << "pe " << pe;
    // time() lags the final span end by at most one grain, so allow a hair
    // above 1 for a fully busy PE.
    EXPECT_LE(mon.utilization(pe), 1.01) << "pe " << pe;
    util += mon.utilization(pe);
  }
  EXPECT_GT(util, 0.0);

  // Phase 2 keeps accumulating on the same timeline.
  h.machine.resume();
  kick_chatter(h, arr, /*seed=*/6, /*chains=*/4, /*hops=*/30);
  h.machine.run();
  EXPECT_GT(mon.time(), t1);
  EXPECT_GT(mon.total_execs(), execs1);
}

// ---- opt-in tree summary ----------------------------------------------------

TEST(Introspect, TreeSummaryComputesGlobalLambda) {
  constexpr int kNpes = 8;
  Harness h(kNpes, sim::NetworkParams{}, 4, Harness::tree_config(3));
  introspect::Monitor mon;
  mon.attach(h.machine);

  auto arr = ArrayProxy<Chatter>::create(h.rt);
  for (int i = 0; i < kElems; ++i) arr.seed(i, i % kNpes);
  kick_chatter(h, arr, /*seed=*/9, /*chains=*/8, /*hops=*/40);
  h.machine.run();

  const std::uint64_t msgs_before = mon.total_msgs();
  const double local_lambda = mon.imbalance();
  ASSERT_GE(local_lambda, 1.0);

  h.machine.resume();
  bool done = false;
  introspect::ClusterSummary got;
  mon.request_summary(h.rt, [&](const introspect::ClusterSummary& s) {
    done = true;
    got = s;
  });
  EXPECT_TRUE(mon.summary_in_flight());
  EXPECT_THROW(mon.request_summary(h.rt), std::logic_error)
      << "only one wave at a time";
  h.machine.run();

  ASSERT_TRUE(done);
  EXPECT_FALSE(mon.summary_in_flight());
  EXPECT_EQ(got.pes, kNpes);
  EXPECT_EQ(mon.summary_partials(), static_cast<std::uint64_t>(kNpes - 1))
      << "k-ary gather sends exactly one partial per non-root rank";
  // No entry work ran during the wave, so the tree-computed λ equals the
  // locally readable one.
  EXPECT_NEAR(got.lambda, local_lambda, 1e-12);
  EXPECT_NEAR(got.busy_max / got.busy_avg, got.lambda, 1e-12);
  EXPECT_EQ(mon.last_summary().t, got.t);
  // The wave's partials are real counted traffic.
  EXPECT_GE(mon.total_msgs(), msgs_before + static_cast<std::uint64_t>(kNpes - 1));
}

// ---- decision journal -------------------------------------------------------

struct IterMsg {
  int remaining = 0;
  void pup(pup::Er& p) { p | remaining; }
};

class Worker : public charm::ArrayElement<Worker, std::int32_t> {
 public:
  double weight = 1.0;
  int pending = 0;

  void step(const IterMsg& m) {
    pending = m.remaining;
    charm::charge(weight * 1e-3);
    at_sync();
  }
  void resume_from_sync() override {
    if (pending > 0) {
      IterMsg m{pending - 1};
      charm::ArrayProxy<Worker> self(collection_id());
      self[index()].send<&Worker::step>(m);
    }
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | weight;
    p | pending;
  }
};

std::vector<introspect::JournalKind> kinds_of(const introspect::Monitor& mon) {
  std::vector<introspect::JournalKind> out;
  for (const introspect::JournalEvent& e : mon.journal_events())
    out.push_back(e.kind);
  return out;
}

TEST(Introspect, JournalRecordsLbRounds) {
  Harness h(4);
  introspect::Monitor mon;
  mon.attach(h.machine);
  auto arr = ArrayProxy<Worker>::create(h.rt);
  for (int i = 0; i < 16; ++i) arr.seed(i, i < 8 ? 0 : (i % 4));
  for (int pe = 0; pe < 4; ++pe) {
    for (auto& [ix, obj] : h.rt.collection(arr.id()).local(pe).elems)
      static_cast<Worker*>(obj.get())->weight = 2.0;
  }
  h.rt.lb().register_collection(arr.id());
  h.rt.lb().set_strategy(lb::make_greedy());
  h.rt.lb().set_period(2);
  h.rt.on_pe(0, [&] { arr.broadcast<&Worker::step>(IterMsg{6}); });
  h.machine.run();

  int lb_rounds = 0, migrations = 0;
  double prev_t = 0;
  for (const introspect::JournalEvent& e : mon.journal_events()) {
    EXPECT_GE(e.t, prev_t) << "journal must be time-ordered";
    prev_t = e.t;
    if (e.kind == introspect::JournalKind::kLbRound) {
      ++lb_rounds;
      migrations += e.aux;
      EXPECT_GE(e.value, 0.0);
    }
  }
  EXPECT_GE(lb_rounds, 2) << "period-2 AtSync over 7 steps must journal "
                             "at least two strategy rounds";
  int migs = 0;
  for (const auto& r : h.rt.lb().history()) migs += r.migrations;
  EXPECT_EQ(migrations, migs) << "journal aux must mirror the LB history";
}

struct CellMsg {
  int steps = 0;
  void pup(pup::Er& p) { p | steps; }
};

class Cell : public charm::ArrayElement<Cell, std::int32_t> {
 public:
  int steps = 0;
  void work(const CellMsg& m) {
    charm::charge(1e-4);
    ++steps;
    if (m.steps > 1) {
      ArrayProxy<Cell> self(collection_id());
      self[index()].send<&Cell::work>(CellMsg{m.steps - 1});
    }
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | steps;
  }
};

TEST(Introspect, JournalRecordsCheckpointFailureAndRestore) {
  Harness h(6);
  introspect::Monitor mon;
  mon.attach(h.machine);
  auto arr = ArrayProxy<Cell>::create(h.rt);
  for (int i = 0; i < 18; ++i) arr.seed(i, i % 6);
  ft::MemCheckpointer ckpt(h.rt);
  bool recovered = false;

  h.rt.on_pe(0, [&] {
    arr.broadcast<&Cell::work>(CellMsg{5});
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        ckpt.fail_and_recover(3, Callback::to_function([&](ReductionResult&&) {
          recovered = true;
        }));
      }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(recovered);

  const auto kinds = kinds_of(mon);
  auto find_kind = [&](introspect::JournalKind k) {
    for (std::size_t i = 0; i < kinds.size(); ++i)
      if (kinds[i] == k) return static_cast<int>(i);
    return -1;
  };
  const int ckpt_i = find_kind(introspect::JournalKind::kCheckpoint);
  const int fail_i = find_kind(introspect::JournalKind::kFailure);
  const int rest_i = find_kind(introspect::JournalKind::kRestore);
  ASSERT_GE(ckpt_i, 0) << "checkpoint commit must be journaled";
  ASSERT_GE(fail_i, 0) << "fail_pe must journal the failure";
  ASSERT_GE(rest_i, 0) << "rollback completion must be journaled";
  EXPECT_LT(ckpt_i, fail_i);
  EXPECT_LT(fail_i, rest_i);
  EXPECT_EQ(mon.journal_events()[static_cast<std::size_t>(fail_i)].aux, 3)
      << "failure aux is the victim PE";
  EXPECT_GT(mon.journal_events()[static_cast<std::size_t>(ckpt_i)].value, 0.0)
      << "checkpoint value is the committed byte count";
}

TEST(Introspect, JournalRecordsShrinkAndExpand) {
  Harness h(8);
  introspect::Monitor mon;
  mon.attach(h.machine);
  auto arr = ArrayProxy<Worker>::create(h.rt);
  for (int i = 0; i < 32; ++i) arr.seed(i, i % 8);
  h.rt.lb().register_collection(arr.id());
  ccs::Server server(h.rt, {.shrink_base_s = 0.05, .expand_base_s = 0.1, .per_pe_s = 0});

  bool shrunk = false;
  h.rt.on_pe(0, [&] {
    server.request_shrink(4, Callback::to_function([&](ReductionResult&&) { shrunk = true; }));
    arr.broadcast<&Worker::step>(IterMsg{3});
  });
  h.machine.run();
  ASSERT_TRUE(shrunk);

  h.machine.resume();
  bool expanded = false;
  h.rt.on_pe(0, [&] {
    server.request_expand(8, Callback::to_function([&](ReductionResult&&) { expanded = true; }));
    arr.broadcast<&Worker::step>(IterMsg{3});
  });
  h.machine.run();
  ASSERT_TRUE(expanded);

  const introspect::JournalEvent* shrink_e = nullptr;
  const introspect::JournalEvent* expand_e = nullptr;
  for (const introspect::JournalEvent& e : mon.journal_events()) {
    if (e.kind == introspect::JournalKind::kShrink) shrink_e = &e;
    if (e.kind == introspect::JournalKind::kExpand) expand_e = &e;
  }
  ASSERT_NE(shrink_e, nullptr);
  ASSERT_NE(expand_e, nullptr);
  EXPECT_EQ(shrink_e->aux, 4) << "shrink aux is the target PE count";
  EXPECT_EQ(shrink_e->value, 8.0) << "shrink value is the old PE count";
  EXPECT_EQ(expand_e->aux, 8);
  EXPECT_EQ(expand_e->value, 4.0);
  EXPECT_LT(shrink_e->t, expand_e->t);
}

// ---- entry-grain EWMA -------------------------------------------------------

TEST(Introspect, EwmaTracksEntryGrain) {
  Harness h(2);
  introspect::Monitor mon;
  mon.attach(h.machine);
  // Feed a constant grain directly: the EWMA must converge to it and the
  // totals must stay exact.
  constexpr double kGrain = 3e-6;
  for (int i = 0; i < 64; ++i) mon.on_entry(0, /*col=*/2, /*ep=*/1, kGrain);
  const auto& loads = mon.entry_loads();
  auto it = loads.find({2, 1});
  ASSERT_NE(it, loads.end());
  EXPECT_EQ(it->second.calls, 64u);
  EXPECT_NEAR(it->second.total, 64 * kGrain, 1e-15);
  EXPECT_NEAR(it->second.ewma, kGrain, 1e-12);

  // A step change in grain moves the EWMA toward the new value but keeps the
  // memory of the old one for a while (alpha = 0.25).
  mon.on_entry(0, 2, 1, 9e-6);
  EXPECT_GT(it->second.ewma, kGrain);
  EXPECT_LT(it->second.ewma, 9e-6);
  EXPECT_NEAR(it->second.ewma, 0.25 * 9e-6 + 0.75 * kGrain, 1e-18);
}

// ---- export plumbing --------------------------------------------------------

TEST(Introspect, FillExportMirrorsSamplesAndJournal) {
  Harness h(4);
  introspect::Monitor mon;
  mon.set_interval(1e-5);
  mon.attach(h.machine);
  auto arr = ArrayProxy<Chatter>::create(h.rt);
  for (int i = 0; i < kElems; ++i) arr.seed(i, i % 4);
  kick_chatter(h, arr, /*seed=*/13, /*chains=*/4, /*hops=*/30);
  h.machine.run();
  mon.journal(introspect::JournalKind::kLbRound, mon.time(), 2, 0.5);

  stats::ExportMeta meta;
  mon.fill_export(meta.metrics);
  ASSERT_TRUE(meta.metrics.enabled);
  EXPECT_EQ(meta.metrics.interval, 1e-5);
  ASSERT_EQ(meta.metrics.samples.size(), mon.samples().size());
  ASSERT_GT(meta.metrics.samples.size(), 0u);
  for (std::size_t i = 0; i < mon.samples().size(); ++i) {
    EXPECT_EQ(meta.metrics.samples[i].t, mon.samples()[i].t);
    EXPECT_EQ(meta.metrics.samples[i].busy, mon.samples()[i].busy);
    EXPECT_EQ(meta.metrics.samples[i].msgs, mon.samples()[i].msgs);
  }
  ASSERT_EQ(meta.metrics.journal.size(), 1u);
  EXPECT_EQ(meta.metrics.journal[0].kind, "lb_round");
  EXPECT_EQ(meta.metrics.journal[0].aux, 2);

  // The enabled block lands in the JSON between the optional sections and
  // "totals", with the journal kind on the wire.
  trace::Tracer t;
  const std::string json = stats::to_json(stats::collect(t, 4), meta);
  EXPECT_NE(json.find("\"timeseries\":["), std::string::npos);
  EXPECT_NE(json.find("\"journal\":[{\"t\":"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"lb_round\""), std::string::npos);
}

}  // namespace
