# Empty compiler generated dependencies file for amr_advection.
# This may be replaced when dependencies are built.
