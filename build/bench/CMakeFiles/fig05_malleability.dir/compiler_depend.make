# Empty compiler generated dependencies file for fig05_malleability.
# This may be replaced when dependencies are built.
