file(REMOVE_RECURSE
  "CMakeFiles/fig05_malleability.dir/fig05_malleability.cpp.o"
  "CMakeFiles/fig05_malleability.dir/fig05_malleability.cpp.o.d"
  "fig05_malleability"
  "fig05_malleability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_malleability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
