#pragma once
// Per-PE ready queue: messages that have arrived at a PE and wait for it to
// become free, served in (priority, arrival, seq) order.
//
// Observation: almost all traffic is default-priority (0), and the machine
// delivers arrivals in globally nondecreasing (time, seq) order — so the
// default-priority class arrives *already sorted* and a plain FIFO ring
// serves it in exactly heap order, with O(1) push/pop and no element moves.
// Non-default priorities (a small minority: control messages, prioritized
// PDES events) go to a 4-ary min-heap fallback.  pop() merges the two by
// comparing the ring head against the heap root under the full
// (priority, arrival, seq) order, so the served sequence is bit-identical
// to the old single priority_queue.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace sim {

struct ReadyMsg {
  int priority = 0;
  Time arrival = 0;
  std::uint64_t seq = 0;
  std::size_t bytes = 0;
  Handler fn;
};

class ReadyQueue {
 public:
  /// Priority class served by the FIFO fast path.
  static constexpr int kFifoPriority = 0;

  bool empty() const { return fifo_count_ == 0 && heap_.empty(); }
  std::size_t size() const { return fifo_count_ + heap_.size(); }

  void push(ReadyMsg m) {
    emplace(m.priority, m.arrival, m.seq, m.bytes, std::move(m.fn));
  }

  /// In-place push: on the FIFO fast path the fields of the ring slot are
  /// assigned directly, so the handler is moved exactly once (caller's
  /// reference → ring slot).
  void emplace(int priority, Time arrival, std::uint64_t seq,
               std::size_t bytes, Handler&& fn) {
    if (priority == kFifoPriority) {
      // The machine hands arrivals over in nondecreasing (arrival, seq)
      // order, which is what makes the ring order-equivalent to the heap.
      assert(fifo_count_ == 0 ||
             std::pair(back().arrival, back().seq) < std::pair(arrival, seq));
      if (fifo_count_ == ring_.size()) grow_ring();
      ReadyMsg& m = ring_[(head_ + fifo_count_) & (ring_.size() - 1)];
      m.priority = priority;
      m.arrival = arrival;
      m.seq = seq;
      m.bytes = bytes;
      m.fn = std::move(fn);
      ++fifo_count_;
    } else {
      heap_push(ReadyMsg{priority, arrival, seq, bytes, std::move(fn)});
    }
  }

  /// Pops the best message under (priority, arrival, seq).
  ReadyMsg pop() {
    if (fifo_count_ == 0) return heap_pop();
    if (heap_.empty() || before(front(), heap_.front())) {
      ReadyMsg m = std::move(front());
      head_ = (head_ + 1) & (ring_.size() - 1);
      --fifo_count_;
      return m;
    }
    return heap_pop();
  }

  void clear() {
    ring_.clear();
    head_ = 0;
    fifo_count_ = 0;
    heap_.clear();
  }

  /// Host bytes held by the ring and heap storage (memory accounting only).
  std::size_t memory_bytes() const {
    return (ring_.capacity() + heap_.capacity()) * sizeof(ReadyMsg);
  }

 private:
  static constexpr std::size_t kArity = 4;

  static bool before(const ReadyMsg& a, const ReadyMsg& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.seq < b.seq;
  }

  ReadyMsg& front() { return ring_[head_]; }
  ReadyMsg& back() {
    return ring_[(head_ + fifo_count_ - 1) & (ring_.size() - 1)];
  }

  void grow_ring() {
    // Start tiny: with a million touched PEs each holding a ring, the
    // difference between an 8-slot and a 2-slot initial capacity is hundreds
    // of MB.  PEs with deeper queues still double up to whatever they need.
    const std::size_t cap = ring_.empty() ? 2 : ring_.size() * 2;
    std::vector<ReadyMsg> next(cap);
    for (std::size_t i = 0; i < fifo_count_; ++i)
      next[i] = std::move(ring_[(head_ + i) & (ring_.size() - 1)]);
    ring_ = std::move(next);
    head_ = 0;
  }

  void heap_push(ReadyMsg m) {
    std::size_t i = heap_.size();
    heap_.push_back(ReadyMsg{});
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(m, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(m);
  }

  ReadyMsg heap_pop() {
    ReadyMsg out = std::move(heap_.front());
    if (heap_.size() > 1) {
      ReadyMsg item = std::move(heap_.back());
      heap_.pop_back();
      const std::size_t n = heap_.size();
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = i * kArity + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = std::min(first + kArity, n);
        for (std::size_t c = first + 1; c < last; ++c)
          if (before(heap_[c], heap_[best])) best = c;
        if (!before(heap_[best], item)) break;
        heap_[i] = std::move(heap_[best]);
        i = best;
      }
      heap_[i] = std::move(item);
    } else {
      heap_.pop_back();
    }
    return out;
  }

  // FIFO ring (power-of-two capacity) for default-priority messages.
  std::vector<ReadyMsg> ring_;
  std::size_t head_ = 0;
  std::size_t fifo_count_ = 0;
  // 4-ary min-heap fallback for everything else.
  std::vector<ReadyMsg> heap_;
};

}  // namespace sim
