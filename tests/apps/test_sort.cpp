// Sorting library tests: correctness (sorted, permutation) for both
// algorithms, balance quality of histsort probing, the baseline's root
// bottleneck, and interop from an AMPI program into the charm sort module.

#include <gtest/gtest.h>

#include <numeric>

#include "ampi/ampi.hpp"
#include "sort/sorting.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;

using charmtest::Harness;

std::uint64_t checksum(const sortlib::Library& lib, int npes) {
  std::uint64_t x = 0;
  for (int pe = 0; pe < npes; ++pe)
    for (std::uint64_t k : lib.keys_on(pe)) x ^= k * 0x9E3779B97F4A7C15ull;
  return x;
}

class SortCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(SortCorrectness, HistSortSortsAndPreservesKeys) {
  const int P = GetParam();
  Harness h(P);
  sortlib::Library lib(h.rt);
  lib.fill_random(42, 512);
  const std::uint64_t before = checksum(lib, P);
  const std::uint64_t n_before = lib.total_keys();
  bool done = false;
  h.rt.on_pe(0, [&] {
    lib.hist_sort(Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(lib.validate());
  EXPECT_EQ(lib.total_keys(), n_before);
  EXPECT_EQ(checksum(lib, P), before) << "keys must be a permutation of the input";
}

TEST_P(SortCorrectness, MergeSortSortsAndPreservesKeys) {
  const int P = GetParam();
  Harness h(P);
  sortlib::Library lib(h.rt);
  lib.fill_random(43, 512);
  const std::uint64_t before = checksum(lib, P);
  bool done = false;
  h.rt.on_pe(0, [&] {
    lib.merge_sort(Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(lib.validate());
  EXPECT_EQ(checksum(lib, P), before);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, SortCorrectness, ::testing::Values(1, 2, 5, 8, 16));

TEST(Sort, HistSortProducesBalancedBlocks) {
  const int P = 16;
  Harness h(P);
  sortlib::Library lib(h.rt, {.cmp_cost = 3e-9, .probe_rounds = 6, .samples_per_pe = 32});
  lib.fill_random(7, 1024);
  bool done = false;
  h.rt.on_pe(0, [&] {
    lib.hist_sort(Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  const double ideal = 1024.0;
  for (int pe = 0; pe < P; ++pe) {
    EXPECT_LT(static_cast<double>(lib.keys_on(pe).size()), ideal * 2.0) << pe;
  }
}

TEST(Sort, SkewedInputStillSorts) {
  // Heavily duplicated keys stress splitter probing.
  const int P = 8;
  Harness h(P);
  sortlib::Library lib(h.rt);
  lib.fill_random(9, 256);
  for (int pe = 0; pe < P; ++pe) {
    auto* s = static_cast<sortlib::Sorter*>(h.rt.collection(lib.sorters().id())
                                                .find(pe, IndexTraits<std::int32_t>::encode(pe)));
    for (std::size_t i = 0; i < s->keys.size() / 2; ++i) s->keys[i] = 777;
  }
  bool done = false;
  h.rt.on_pe(0, [&] {
    lib.hist_sort(Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(lib.validate());
}

TEST(Sort, BaselineRootCostGrowsFasterWithP) {
  // The Fig 7 shape in miniature: baseline sort time grows with P while
  // histsort stays flat-ish (same per-PE data).
  auto time_sort = [](int P, bool hist) {
    Harness h(P);
    sortlib::Library lib(h.rt, {.cmp_cost = 3e-9, .probe_rounds = 3, .samples_per_pe = 0});
    lib.fill_random(11, 512);
    double t0 = 0, t1 = -1;
    h.rt.on_pe(0, [&] {
      t0 = charm::now();
      auto cb = Callback::to_function([&](ReductionResult&&) { t1 = charm::now(); });
      if (hist) {
        lib.hist_sort(cb);
      } else {
        lib.merge_sort(cb);
      }
    });
    h.machine.run();
    return t1 - t0;
  };
  const double merge_growth = time_sort(32, false) / time_sort(4, false);
  const double hist_growth = time_sort(32, true) / time_sort(4, true);
  EXPECT_GT(merge_growth, hist_growth);
}

TEST(Sort, InteropAmpiProgramCallsCharmSortLibrary) {
  // The paper's CHARM pattern (§III-G): an MPI application offloads its
  // sorting phase to the Charm++ sort library through an interface function.
  const int P = 4;
  Harness h(P);
  sortlib::Library lib(h.rt);
  lib.fill_random(21, 256);

  bool sorted_during_ampi = false;
  ampi::World world(h.rt, P, [&](ampi::Comm& comm) {
    comm.charge(1e-3);  // "useful computation" of the MPI module
    comm.barrier();
    if (comm.rank() == 0) {
      // CharmLibInit-style control transfer: the rank hands control to the
      // charm module; every rank resumes when the library signals back.
      lib.hist_sort(Callback::to_function([&](ReductionResult&&) {
        sorted_during_ampi = lib.validate();
        // Wake the MPI module up again.
        ampi::Wire w;
        w.src = -1;
        w.tag = 99;
        ArrayProxy<ampi::Rank, std::int32_t> ranks(world.collection());
        for (int r = 0; r < P; ++r) ranks[r].send<&ampi::Rank::deliver>(w);
      }));
    }
    (void)comm.recv(ampi::kAnySource, 99);  // block until the charm module finishes
    comm.charge(1e-3);                      // MPI module continues
  });
  bool completed = false;
  h.rt.on_pe(0, [&] {
    world.start(Callback::to_function([&](ReductionResult&&) { completed = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(completed);
  EXPECT_TRUE(sorted_during_ampi);
}

}  // namespace
