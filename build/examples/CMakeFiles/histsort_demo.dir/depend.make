# Empty dependencies file for histsort_demo.
# This may be replaced when dependencies are built.
