#include "runtime/registry.hpp"

namespace charm {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

ChareTypeId Registry::add_type(ChareTypeInfo info) {
  types_.push_back(info);
  return static_cast<ChareTypeId>(types_.size() - 1);
}

EntryId Registry::add_entry(EntryInfo info) {
  entries_.push_back(info);
  return static_cast<EntryId>(entries_.size() - 1);
}

CreatorId Registry::add_creator(CreatorInfo info) {
  creators_.push_back(info);
  return static_cast<CreatorId>(creators_.size() - 1);
}

const std::string& Registry::entry_name(EntryId id) const {
  static const std::string empty;
  const auto i = static_cast<std::size_t>(id);
  return i < entry_names_.size() ? entry_names_[i] : empty;
}

void Registry::set_entry_name(EntryId id, std::string name) {
  const auto i = static_cast<std::size_t>(id);
  if (entry_names_.size() <= i) entry_names_.resize(i + 1);
  entry_names_[i] = std::move(name);
}

}  // namespace charm
