// Location management and migration protocol tests (§II-D): home tables,
// cache updates, forwarding, in-transit buffering, and state preservation
// across PUP-based migrations.

#include <gtest/gtest.h>

#include "runtime/charm.hpp"

#include "test_util.hpp"

namespace {

using charm::ArrayProxy;

struct Msg {
  int v = 0;
  void pup(pup::Er& p) { p | v; }
};

class Roamer : public charm::ArrayElement<Roamer, std::int32_t> {
 public:
  std::vector<int> log;
  int migrations_seen = 0;
  sim::Rng rng{7};

  void recv(const Msg& m) {
    log.push_back(m.v);
    charm::charge(0.5e-6);
  }
  void hop(const Msg& m) { migrate_to(m.v); }
  void on_migrated() override { ++migrations_seen; }

  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | log;
    p | migrations_seen;
    p | rng;
  }
};

using charmtest::Harness;

TEST(Location, ElementSeededAwayFromHomeIsReachable) {
  Harness h(8);
  auto arr = ArrayProxy<Roamer>::create(h.rt);
  // Find an index whose home is NOT PE 3, then seed it on PE 3.
  std::int32_t ix = 0;
  while (h.rt.home_pe(charm::IndexTraits<std::int32_t>::encode(ix)) == 3) ++ix;
  arr.seed(ix, 3);
  h.rt.on_pe(0, [&] { arr[ix].send<&Roamer::recv>(Msg{1}); });
  h.machine.run();
  EXPECT_EQ(h.find<Roamer>(arr.id(), ix)->log.size(), 1u);
}

TEST(Location, MigrationPreservesStateViaPup) {
  Harness h(4);
  auto arr = ArrayProxy<Roamer>::create(h.rt);
  arr.seed(0, 0);
  h.rt.on_pe(0, [&] {
    arr[0].send<&Roamer::recv>(Msg{11});
    arr[0].send<&Roamer::recv>(Msg{22});
    arr[0].send<&Roamer::hop>(Msg{2});  // migrate to PE 2
  });
  h.machine.run();
  int pe = -1;
  Roamer* r = h.find<Roamer>(arr.id(), 0, &pe);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(pe, 2);
  EXPECT_EQ(r->migrations_seen, 1);
  ASSERT_EQ(r->log.size(), 2u);
  EXPECT_EQ(r->log[0], 11);
  EXPECT_EQ(r->log[1], 22);
}

TEST(Location, RngStreamSurvivesMigration) {
  Harness h(4);
  auto arr = ArrayProxy<Roamer>::create(h.rt);
  arr.seed(0, 0);
  // Draw two values pre-migration on a reference copy.
  sim::Rng ref{7};
  (void)ref.next_u64();
  h.rt.on_pe(0, [&] {
    h.find<Roamer>(arr.id(), 0)->rng.next_u64();  // advance once
    arr[0].send<&Roamer::hop>(Msg{3});
  });
  h.machine.run();
  EXPECT_EQ(h.find<Roamer>(arr.id(), 0)->rng.next_u64(), ref.next_u64());
}

TEST(Location, MessagesInFlightDuringMigrationAreDelivered) {
  Harness h(8);
  auto arr = ArrayProxy<Roamer>::create(h.rt);
  arr.seed(0, 0);
  h.rt.on_pe(0, [&] {
    // Burst of messages interleaved with two migrations: every message must
    // land exactly once, in order of virtual delivery.
    for (int i = 0; i < 5; ++i) arr[0].send<&Roamer::recv>(Msg{i});
    arr[0].send<&Roamer::hop>(Msg{5});
    for (int i = 5; i < 10; ++i) arr[0].send<&Roamer::recv>(Msg{i});
    arr[0].send<&Roamer::hop>(Msg{6});
    for (int i = 10; i < 15; ++i) arr[0].send<&Roamer::recv>(Msg{i});
  });
  h.machine.run();
  int pe = -1;
  Roamer* r = h.find<Roamer>(arr.id(), 0, &pe);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(pe, 6);
  EXPECT_EQ(r->migrations_seen, 2);
  ASSERT_EQ(r->log.size(), 15u);
  std::vector<int> sorted = r->log;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 15; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Location, CacheLearnsNewLocation) {
  Harness h(8);
  auto arr = ArrayProxy<Roamer>::create(h.rt);
  arr.seed(0, 0);
  const std::uint64_t before = h.rt.forwards();
  h.rt.on_pe(0, [&] {
    arr[0].send<&Roamer::hop>(Msg{5});
  });
  h.machine.run();
  h.machine.resume();
  // Repeated sends from PE 2: first may forward via home, later ones should
  // hit the cache and go direct.
  for (int k = 0; k < 6; ++k) {
    h.rt.on_pe(2, [&] { arr[0].send<&Roamer::recv>(Msg{k}); });
    h.machine.run();
    h.machine.resume();
  }
  const std::uint64_t fwds = h.rt.forwards() - before;
  EXPECT_LE(fwds, 2u) << "location cache should stop repeated forwarding";
  EXPECT_EQ(h.find<Roamer>(arr.id(), 0)->log.size(), 6u);
}

TEST(Location, HomeTablesAreDistributed) {
  // O(#elements/P) home records per PE, not O(#elements) (§IV-A-4).
  Harness h(16);
  auto arr = ArrayProxy<Roamer>::create(h.rt);
  const int n = 512;
  for (int i = 0; i < n; ++i) arr.seed(i, i % 16);
  std::size_t max_home = 0;
  for (int pe = 0; pe < 16; ++pe)
    max_home = std::max(max_home, h.rt.collection(arr.id()).local(pe).home.size());
  EXPECT_LT(max_home, static_cast<std::size_t>(3 * n / 16));
}

TEST(Location, RebuildLocationTablesAfterManualMoves) {
  Harness h(4);
  auto arr = ArrayProxy<Roamer>::create(h.rt);
  for (int i = 0; i < 12; ++i) arr.seed(i, i % 4);
  h.rt.on_pe(0, [&] {
    for (int i = 0; i < 12; ++i) arr[i].send<&Roamer::hop>(Msg{(i + 1) % 4});
  });
  h.machine.run();
  h.rt.rebuild_location_tables();
  h.machine.resume();
  // All still reachable after rebuild.
  h.rt.on_pe(0, [&] {
    for (int i = 0; i < 12; ++i) arr[i].send<&Roamer::recv>(Msg{100 + i});
  });
  h.machine.run();
  for (int i = 0; i < 12; ++i) {
    Roamer* r = h.find<Roamer>(arr.id(), i);
    ASSERT_NE(r, nullptr) << i;
    EXPECT_EQ(r->log.back(), 100 + i);
  }
}

// Property sweep: random migration/messaging interleavings always deliver
// every message exactly once.
class LocationStress : public ::testing::TestWithParam<int> {};

TEST_P(LocationStress, RandomMigrationsNeverLoseMessages) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Harness h(8);
  auto arr = ArrayProxy<Roamer>::create(h.rt);
  const int nelems = 6;
  for (int i = 0; i < nelems; ++i) arr.seed(i, i % 8);
  sim::Rng rng(seed);
  int sends = 0;
  h.rt.on_pe(0, [&] {
    for (int step = 0; step < 120; ++step) {
      const int target = static_cast<int>(rng.next_below(nelems));
      if (rng.next_double() < 0.25) {
        arr[target].send<&Roamer::hop>(Msg{static_cast<int>(rng.next_below(8))});
      } else {
        arr[target].send<&Roamer::recv>(Msg{sends++});
      }
    }
  });
  h.machine.run();
  int delivered = 0;
  for (int i = 0; i < nelems; ++i) {
    Roamer* r = h.find<Roamer>(arr.id(), i);
    ASSERT_NE(r, nullptr);
    delivered += static_cast<int>(r->log.size());
  }
  EXPECT_EQ(delivered, sends);
  EXPECT_EQ(h.rt.outstanding(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocationStress, ::testing::Range(1, 9));

}  // namespace
