#pragma once
// Disk checkpoint/restart (§III-B).
//
// Checkpoints are chare-based: each element is PUPed with its index and
// collection, so a run can restart on ANY number of PEs — elements are simply
// re-placed under the new home mapping.  The restart program must create its
// collections in the same order as the checkpointing program (collection ids
// are positional, exactly like Charm++'s registration order requirement).
//
// The file is written host-side; the *cost* (per-PE pack + parallel file
// write at disk_bw) is charged in virtual time.

#include <string>

#include "runtime/callback.hpp"
#include "runtime/runtime.hpp"

namespace charm::ft {

struct DiskParams {
  double disk_bw = 1.0e9;        ///< per-PE file-write bandwidth (B/s)
  double open_overhead = 0.5e-3; ///< per-PE file open/close cost (s)
};

/// Serializes every checkpointable collection to `path`; invokes `done` when
/// the modeled parallel write completes.  Call from a driver handler while the
/// application is at a step boundary.
void checkpoint_to_file(Runtime& rt, const std::string& path, Callback done,
                        DiskParams params = {});

/// Repopulates previously created (empty) collections from `path`, placing
/// each element at its home PE under the *current* PE count.  Driver-side;
/// returns the number of elements restored.
std::size_t restart_from_file(Runtime& rt, const std::string& path);

}  // namespace charm::ft
