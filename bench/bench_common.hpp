#pragma once
// Shared helpers for the figure-reproduction benches: machine construction,
// paper-style table output, and the common command-line flags.  Every bench
// prints the series the paper plots; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Flags (parsed by bench::parse_args from one option table, accepted by every
// figure binary):
//   --smoke        shrink PE series / step counts to a CI-sized sanity run
//   --trace=FILE   attach a tracer to each simulated machine and write the
//                  LAST traced run as Chrome trace_event JSON to FILE
//                  (open in chrome://tracing or ui.perfetto.dev)
//   --stats=FILE   write machine-readable analytics JSON (schema
//                  "charmlike-stats", DESIGN.md §6): the printed series plus
//                  usage profile, comm matrix, imbalance, and critical path
//                  of the LAST traced run.  CI emits BENCH_<fig>.json this
//                  way; inspect/diff with tools/statsview.
//   --metrics[=SEC] attach the live introspection monitor (DESIGN.md §11) to
//                  each machine, sampling every SEC virtual seconds (default
//                  1e-3).  Adds "metrics_interval"/"timeseries"/"journal"
//                  sections to the stats JSON; never perturbs virtual time,
//                  so the figure series are unchanged.
//   --mtbf=SEC     (fault-tolerant benches only) inject PE failures with the
//                  given mean time between failures, in virtual seconds
//   --failures=N   cap the number of injected failures (default 1)
//   --fault-seed=N seed for the failure schedule / victim draws (default 1)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "introspect/metrics.hpp"
#include "runtime/charm.hpp"
#include "stats/json_export.hpp"
#include "stats/report.hpp"
#include "trace/chrome_export.hpp"
#include "trace/summary.hpp"
#include "trace/time_profile.hpp"
#include "trace/trace.hpp"

namespace bench {

inline sim::MachineConfig machine_config(int npes,
                                         sim::NetworkParams net = sim::NetworkParams::bluegene_q(),
                                         int pes_per_chip = 4) {
  sim::MachineConfig cfg;
  cfg.npes = npes;
  cfg.net = net;
  cfg.pes_per_chip = pes_per_chip;
  return cfg;
}

// ---- common flags ------------------------------------------------------------

struct Options {
  bool smoke = false;       ///< tiny PE counts / few steps (CI sanity mode)
  std::string trace_file;   ///< Chrome trace_event output ("" = tracing off)
  std::string stats_file;   ///< analytics JSON output ("" = stats off)
  bool metrics = false;     ///< attach the live introspection monitor
  double metrics_interval = 1e-3;  ///< sampling cadence in virtual seconds
  double mtbf = 0;          ///< >0: inject failures with this MTBF (virtual s)
  int failures = 1;         ///< failure budget when mtbf > 0
  std::uint64_t fault_seed = 1;  ///< failure schedule seed

  std::string bench_name;   ///< basename of argv[0], stamped into stats JSON
  int traced_npes = 0;      ///< PE count of the last machine given the tracer
};

inline Options& options() {
  static Options o;
  return o;
}

/// Captured copy of everything the bench printed (title/columns/rows/notes),
/// exported verbatim into the stats JSON as the figure's series.
struct Series {
  std::vector<stats::SeriesTable> tables;
  std::vector<std::string> notes;
  std::string pending_title;
};

inline Series& series() {
  static Series s;
  return s;
}

/// Overhead-surface cells accumulated by the taskbench driver; exported as
/// the stats JSON's "taskbench" section when non-empty.
inline std::vector<stats::TaskbenchCell>& taskbench_cells() {
  static std::vector<stats::TaskbenchCell> cells;
  return cells;
}

/// Collective-tree sweep cells accumulated by the collectives driver;
/// exported as the stats JSON's "collectives" section when non-empty.
inline std::vector<stats::CollectivesCell>& collectives_cells() {
  static std::vector<stats::CollectivesCell> cells;
  return cells;
}

namespace detail {

/// One row of the option table.  `arg` == nullptr marks a boolean flag;
/// otherwise the flag is `--name=ARG` and `parse` gets the value (returning
/// false to reject it with `error`).  `optional_value` additionally accepts
/// the bare `--name` form, passing nullptr to `parse` (aggregate init leaves
/// it false for four-field tables, so existing extra-flag tables are fine).
struct FlagSpec {
  const char* name;
  const char* arg;
  const char* error;
  bool (*parse)(const char* value);
  bool optional_value = false;
};

inline const FlagSpec* flag_table(std::size_t* count) {
  static const FlagSpec kFlags[] = {
      {"--smoke", nullptr, nullptr,
       [](const char*) {
         options().smoke = true;
         return true;
       }},
      {"--trace", "FILE", nullptr,
       [](const char* v) {
         options().trace_file = v;
         return true;
       }},
      {"--stats", "FILE", nullptr,
       [](const char* v) {
         options().stats_file = v;
         return true;
       }},
      {"--metrics", "SEC", "needs a positive interval in virtual seconds",
       [](const char* v) {
         options().metrics = true;
         if (v != nullptr) {
           options().metrics_interval = std::strtod(v, nullptr);
           return options().metrics_interval > 0;
         }
         return true;
       },
       /*optional_value=*/true},
      {"--mtbf", "SEC", "needs a positive time in seconds",
       [](const char* v) {
         options().mtbf = std::strtod(v, nullptr);
         return options().mtbf > 0;
       }},
      {"--failures", "N", "needs a positive count",
       [](const char* v) {
         options().failures = std::atoi(v);
         return options().failures > 0;
       }},
      {"--fault-seed", "N", nullptr,
       [](const char* v) {
         options().fault_seed = std::strtoull(v, nullptr, 10);
         return true;
       }},
  };
  *count = sizeof(kFlags) / sizeof(kFlags[0]);
  return kFlags;
}

inline std::string flag_usage() {
  std::size_t n = 0;
  const FlagSpec* flags = flag_table(&n);
  std::string usage;
  for (std::size_t i = 0; i < n; ++i) {
    if (!usage.empty()) usage += ", ";
    usage += flags[i].name;
    if (flags[i].arg != nullptr) {
      if (flags[i].optional_value) {
        usage += "[=";
        usage += flags[i].arg;
        usage += "]";
      } else {
        usage += "=";
        usage += flags[i].arg;
      }
    }
  }
  return usage;
}

}  // namespace detail

/// Parses the common flags plus `extra` bench-specific ones; rejects anything
/// else (with the full flag list) so typos fail CI instead of being ignored.
inline int parse_args(int argc, char** argv, const detail::FlagSpec* extra = nullptr,
                      std::size_t nextra = 0) {
  if (argc > 0) {
    const char* slash = std::strrchr(argv[0], '/');
    options().bench_name = slash != nullptr ? slash + 1 : argv[0];
  }
  std::size_t ncommon = 0;
  const detail::FlagSpec* common = detail::flag_table(&ncommon);
  std::vector<const detail::FlagSpec*> flags;
  flags.reserve(ncommon + nextra);
  for (std::size_t f = 0; f < ncommon; ++f) flags.push_back(&common[f]);
  for (std::size_t f = 0; f < nextra; ++f) flags.push_back(&extra[f]);
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const detail::FlagSpec* match = nullptr;
    const char* value = nullptr;
    for (const detail::FlagSpec* spec : flags) {
      const std::size_t len = std::strlen(spec->name);
      if (spec->arg == nullptr) {
        if (std::strcmp(a, spec->name) == 0) {
          match = spec;
          break;
        }
      } else if (std::strncmp(a, spec->name, len) == 0 && a[len] == '=' &&
                 a[len + 1] != '\0') {
        match = spec;
        value = a + len + 1;
        break;
      } else if (spec->optional_value && std::strcmp(a, spec->name) == 0) {
        match = spec;  // bare `--name` form of an optional-value flag
        break;
      }
    }
    if (match == nullptr) {
      std::string usage = detail::flag_usage();
      for (std::size_t f = 0; f < nextra; ++f) {
        usage += ", ";
        usage += extra[f].name;
        if (extra[f].arg != nullptr) {
          usage += "=";
          usage += extra[f].arg;
        }
      }
      std::fprintf(stderr, "%s: unknown argument '%s' (expected %s)\n", argv[0], a,
                   usage.c_str());
      return 1;
    }
    if (!match->parse(value)) {
      std::fprintf(stderr, "%s: %s %s\n", argv[0], match->name,
                   match->error != nullptr ? match->error : "has an invalid value");
      return 1;
    }
  }
  return 0;
}

inline bool smoke() { return options().smoke; }

// ---- paper-style table output (captured for the stats JSON) ------------------

inline void header(const std::string& fig, const std::string& title) {
  std::printf("\n== %s: %s ==\n", fig.c_str(), title.c_str());
  series().pending_title = fig + ": " + title;
}

inline void columns(const std::vector<std::string>& names) {
  for (const auto& n : names) std::printf("%16s", n.c_str());
  std::printf("\n");
  stats::SeriesTable t;
  t.title = series().pending_title;
  t.columns = names;
  series().tables.push_back(std::move(t));
}

inline void row(const std::vector<double>& values) {
  for (double v : values) std::printf("%16.6g", v);
  std::printf("\n");
  if (series().tables.empty()) {
    stats::SeriesTable t;
    t.title = series().pending_title;
    series().tables.push_back(std::move(t));
  }
  series().tables.back().rows.push_back(values);
}

inline void note(const std::string& s) {
  std::printf("   %s\n", s.c_str());
  series().notes.push_back(s);
}

/// Runs the machine to completion and returns the makespan in virtual seconds.
inline double run_to_completion(sim::Machine& m) {
  m.run();
  return m.max_pe_clock();
}

/// Full series normally; the first `smoke_keep` entries under --smoke.
inline std::vector<int> pe_series(std::vector<int> full, std::size_t smoke_keep = 2) {
  if (smoke() && full.size() > smoke_keep) full.resize(smoke_keep);
  return full;
}

/// Step/iteration count, capped under --smoke.
inline int cap_steps(int steps, int smoke_steps = 2) {
  return smoke() ? std::min(steps, smoke_steps) : steps;
}

// ---- tracing / stats ---------------------------------------------------------

/// The shared trace log (one per bench process; each traced machine resets
/// it, so the written files describe the last traced run).
inline trace::Tracer& shared_tracer() {
  static trace::Tracer t;
  return t;
}

/// The shared live-metrics monitor (one per bench process; each attach resets
/// it, so the exported timeline describes the last attached run — the same
/// machine the tracer describes).  Machine::~Machine clears the back-pointer,
/// so the static monitor outliving per-run machines is safe.
inline introspect::Monitor& shared_monitor() {
  static introspect::Monitor m;
  return m;
}

/// True when any tracer-backed output (--trace or --stats) was requested.
inline bool tracing_requested() {
  return !options().trace_file.empty() || !options().stats_file.empty();
}

/// Attaches the shared tracer (when --trace=FILE or --stats=FILE was given)
/// and the live monitor (when --metrics was given) to `m`.  Call right after
/// constructing each machine.
inline void attach_trace(sim::Machine& m) {
  if (tracing_requested()) {
    shared_tracer().clear();
    m.set_tracer(&shared_tracer());
    options().traced_npes = m.npes();
  }
  if (options().metrics) {
    shared_monitor().set_interval(options().metrics_interval);
    shared_monitor().attach(m);
  }
}

/// Labels entry spans with registered names (Registry::name_entry).
inline trace::EntryLabeler entry_labeler() {
  return [](int col, int ep) -> std::string {
    if (ep < 0) return "col" + std::to_string(col) + ".apply";
    const std::string& n = charm::Registry::instance().entry_name(ep);
    if (!n.empty()) return n;
    return "col" + std::to_string(col) + ".ep" + std::to_string(ep);
  };
}

/// Writes the accumulated trace / stats outputs (if any) and returns the
/// process exit code.  Call as the last statement of main:
/// `return bench::finish();`
inline int finish() {
  const trace::Tracer& t = shared_tracer();
  if (!options().trace_file.empty()) {
    if (!trace::write_chrome_trace_file(t, options().trace_file, entry_labeler())) {
      std::fprintf(stderr, "failed to write trace to %s\n", options().trace_file.c_str());
      return 1;
    }
    std::printf("   trace: %zu events -> %s (open in chrome://tracing)\n", t.size(),
                options().trace_file.c_str());
  }
  if (tracing_requested() && t.dropped() > 0)
    std::printf("   trace: WARNING %llu events dropped at the buffer cap\n",
                static_cast<unsigned long long>(t.dropped()));
  if (!options().stats_file.empty()) {
    const stats::Report report = stats::collect(t, options().traced_npes);
    stats::ExportMeta meta;
    meta.bench = options().bench_name;
    meta.smoke = options().smoke;
    meta.series = series().tables;
    meta.notes = series().notes;
    meta.taskbench = taskbench_cells();
    meta.collectives = collectives_cells();
    if (options().metrics) {
      shared_monitor().fill_export(meta.metrics);
      std::printf("   metrics: %zu samples, %zu journal events (interval %g s)\n",
                  meta.metrics.samples.size(), meta.metrics.journal.size(),
                  meta.metrics.interval);
    }
    meta.label = entry_labeler();
    if (!stats::write_json_file(report, meta, options().stats_file)) {
      std::fprintf(stderr, "failed to write stats to %s\n", options().stats_file.c_str());
      return 1;
    }
    std::printf("   stats: %d PEs, %zu entry rows, %zu comm cells -> %s\n",
                report.npes, report.entries.size(), report.comm.size(),
                options().stats_file.c_str());
  }
  return 0;
}

/// Prints a Fig 11-style per-interval utilization profile of the last traced
/// run: busy / overhead / idle fractions per bin, averaged over PEs.
inline void print_time_profile(int npes, int nbins) {
  if (options().trace_file.empty()) return;
  const trace::TimeProfile p = trace::build_time_profile(shared_tracer(), npes, nbins);
  std::printf("   time profile (%d bins of %.3g ms, mean over %d PEs):\n", p.nbins,
              p.bin_width * 1e3, p.npes);
  std::printf("%16s%16s%16s%16s%16s\n", "bin_start_ms", "busy", "overhead", "idle", "sum");
  for (int b = 0; b < p.nbins; ++b) {
    const trace::ProfileBin& bin = p.mean[static_cast<std::size_t>(b)];
    std::printf("%16.4f%16.4f%16.4f%16.4f%16.4f\n", (p.t0 + b * p.bin_width) * 1e3,
                bin.busy, bin.overhead, bin.idle, bin.busy + bin.overhead + bin.idle);
  }
}

}  // namespace bench
