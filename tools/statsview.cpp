// statsview: human-readable reports and A-vs-B regression diffs over the
// `BENCH_<fig>.json` analytics files the benches emit with --stats=FILE
// (schema "charmlike-stats", DESIGN.md §6).
//
//   statsview FILE                 report: all present sections, top entry
//                                  methods, imbalance, comm-matrix hotspots,
//                                  critical path
//   statsview BASELINE CANDIDATE   diff the two runs; exit code 2 when the
//                                  candidate's makespan regresses by more
//                                  than the threshold
//   statsview timeline FILE        live-metrics timeline report (--metrics
//                                  runs): sampled λ/rates/queue depths plus
//                                  the decision journal
//   statsview timeline A B         per-sample timeline diff; exit code 2 on
//                                  sample-count mismatch or a final-sample
//                                  busy drift past the threshold
//   --top=N          rows per ranking (default 10)
//   --threshold=PCT  regression gate for the diff modes (default 5)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "stats/json.hpp"

namespace {

using stats::json::Value;

struct EntryRow {
  int col = -1;
  int ep = -1;
  std::string name;
  std::uint64_t calls = 0;
  double busy = 0;
  double exec = 0;
  double grain_max = 0;
};

/// One overhead-surface cell of a taskbench sweep (the "taskbench" section).
struct TbCell {
  std::string id;  ///< identity: pattern/transport/npes/width/steps/grain/...
  std::string pattern;
  std::string transport;
  int npes = 0;
  int width = 0;
  int steps = 0;
  double grain = 0;
  double makespan = 0;
  double ideal = 0;
  double efficiency = 0;
  double overhead_per_task = 0;
};

/// One cell of a collectives sweep (the "collectives" section).
struct CollCell {
  std::string id;  ///< identity: topology/arity/npes/elements/rounds/payload
  std::string topology;
  int arity = 0;
  int npes = 0;
  int rounds = 0;
  double makespan = 0;
  double time_per_round = 0;
  double partial_sends = 0;
  double msgs = 0;
};

struct Doc {
  std::string path;
  Value root;
  double makespan = 0;
  double busy = 0;
  double exec = 0;
  int npes = 0;
  std::vector<EntryRow> entries;  ///< aggregated over PEs, sorted by busy desc
  std::vector<TbCell> taskbench;  ///< overhead-surface cells, file order
  std::vector<CollCell> collectives;  ///< collective-tree cells, file order
};

bool load(const std::string& path, Doc& doc) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "statsview: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  if (!stats::json::parse(ss.str(), doc.root, &err)) {
    std::fprintf(stderr, "statsview: %s: parse error: %s\n", path.c_str(), err.c_str());
    return false;
  }
  if (doc.root.str("schema") != "charmlike-stats") {
    std::fprintf(stderr, "statsview: %s: not a charmlike-stats file\n", path.c_str());
    return false;
  }
  doc.path = path;
  doc.makespan = doc.root.num("makespan");
  doc.npes = static_cast<int>(doc.root.num("npes"));
  if (const Value* totals = doc.root.find("totals")) {
    doc.busy = totals->num("busy");
    doc.exec = totals->num("exec");
  }
  // Aggregate the per-(PE, col, ep) usage rows over PEs.
  std::map<std::pair<int, int>, EntryRow> agg;
  if (const Value* entries = doc.root.find("entries"); entries != nullptr && entries->is_array()) {
    for (const Value& e : entries->array) {
      const int col = static_cast<int>(e.num("col", -1));
      const int ep = static_cast<int>(e.num("ep", -1));
      EntryRow& r = agg[{col, ep}];
      r.col = col;
      r.ep = ep;
      if (r.name.empty()) r.name = e.str("name");
      r.calls += static_cast<std::uint64_t>(e.num("calls"));
      r.busy += e.num("busy");
      r.exec += e.num("exec");
      r.grain_max = std::max(r.grain_max, e.num("grain_max"));
    }
  }
  if (const Value* tb = doc.root.find("taskbench"); tb != nullptr && tb->is_array()) {
    for (const Value& c : tb->array) {
      TbCell cell;
      cell.pattern = c.str("pattern", "?");
      cell.transport = c.str("transport", "?");
      cell.npes = static_cast<int>(c.num("npes"));
      cell.width = static_cast<int>(c.num("width"));
      cell.steps = static_cast<int>(c.num("steps"));
      cell.grain = c.num("grain");
      cell.makespan = c.num("makespan");
      cell.ideal = c.num("ideal");
      cell.efficiency = c.num("efficiency");
      cell.overhead_per_task = c.num("overhead_per_task");
      cell.id = cell.pattern + "/" + cell.transport + " P" +
                std::to_string(cell.npes) + " " + std::to_string(cell.width) + "x" +
                std::to_string(cell.steps) + " g" + stats::json::format_double(cell.grain) +
                " pay" + std::to_string(static_cast<int>(c.num("payload_doubles"))) +
                " f" + std::to_string(static_cast<int>(c.num("fanout"))) + " s" +
                std::to_string(static_cast<long long>(c.num("seed")));
      doc.taskbench.push_back(std::move(cell));
    }
  }
  if (const Value* cv = doc.root.find("collectives"); cv != nullptr && cv->is_array()) {
    for (const Value& c : cv->array) {
      CollCell cell;
      cell.topology = c.str("topology", "?");
      cell.arity = static_cast<int>(c.num("arity"));
      cell.npes = static_cast<int>(c.num("npes"));
      cell.rounds = static_cast<int>(c.num("rounds"));
      cell.makespan = c.num("makespan");
      cell.time_per_round = c.num("time_per_round");
      cell.partial_sends = c.num("partial_sends");
      cell.msgs = c.num("msgs");
      cell.id = cell.topology + " k" + std::to_string(cell.arity) + " P" +
                std::to_string(cell.npes) + " e" +
                std::to_string(static_cast<int>(c.num("elements"))) + " r" +
                std::to_string(cell.rounds) + " pay" +
                std::to_string(static_cast<int>(c.num("payload_doubles")));
      doc.collectives.push_back(std::move(cell));
    }
  }
  doc.entries.reserve(agg.size());
  for (auto& [key, row] : agg) doc.entries.push_back(std::move(row));
  std::sort(doc.entries.begin(), doc.entries.end(), [](const EntryRow& a, const EntryRow& b) {
    if (a.busy != b.busy) return a.busy > b.busy;
    return std::pair(a.col, a.ep) < std::pair(b.col, b.ep);
  });
  return true;
}

double pct(double part, double whole) { return whole > 0 ? 100.0 * part / whole : 0; }

/// One-line inventory of every top-level section, discovered generically from
/// the ordered DOM — a new schema section (e.g. "timeseries") shows up here
/// without statsview needing a special case for it.
void print_sections(const Doc& d) {
  std::string line;
  char count[32];
  for (const auto& [key, v] : d.root.object) {
    if (!line.empty()) line += ", ";
    line += key;
    if (v.is_array()) {
      std::snprintf(count, sizeof count, "[%zu]", v.array.size());
      line += count;
    } else if (v.is_object()) {
      std::snprintf(count, sizeof count, "{%zu}", v.object.size());
      line += count;
    }
  }
  std::printf("sections: %s\n", line.c_str());
}

void print_report(const Doc& d, int top) {
  std::printf("== %s (%s%s) ==\n", d.root.str("bench", "?").c_str(), d.path.c_str(),
              d.root.find("smoke") != nullptr && d.root.find("smoke")->boolean ? ", smoke" : "");
  print_sections(d);
  const double span_work = d.makespan * d.npes;
  std::printf("PEs %d | makespan %.6g s | busy %.6g s (%.1f%%) | overhead %.6g s (%.1f%%) | idle %.1f%%\n",
              d.npes, d.makespan, d.busy, pct(d.busy, span_work), d.exec - d.busy,
              pct(d.exec - d.busy, span_work), pct(span_work - d.exec, span_work));

  std::printf("\ntop %d entry methods by busy time:\n", top);
  std::printf("%-36s %10s %12s %7s %12s %12s\n", "entry", "calls", "busy_s", "%busy",
              "grain_avg_s", "grain_max_s");
  int shown = 0;
  for (const EntryRow& e : d.entries) {
    if (shown++ >= top) break;
    std::printf("%-36s %10llu %12.6g %6.1f%% %12.6g %12.6g\n", e.name.c_str(),
                static_cast<unsigned long long>(e.calls), e.busy, pct(e.busy, d.busy),
                e.calls ? e.busy / static_cast<double>(e.calls) : 0, e.grain_max);
  }

  if (const Value* im = d.root.find("imbalance")) {
    std::printf("\nload imbalance: ratio(max/avg) %.3f | busy max %.6g avg %.6g sigma %.6g\n",
                im->num("ratio"), im->num("busy_max"), im->num("busy_avg"), im->num("sigma"));
  }
  if (const Value* phases = d.root.find("phases");
      phases != nullptr && phases->is_array() && phases->array.size() > 1) {
    std::printf("phases (%zu):\n", phases->array.size());
    std::printf("  %-12s %12s %12s %8s %8s\n", "opened_by", "t0_s", "len_s", "ratio", "%idle");
    for (const Value& ph : phases->array) {
      const double len = ph.num("t1") - ph.num("t0");
      const Value* pim = ph.find("imbalance");
      std::printf("  %-12s %12.6g %12.6g %8.3f %7.1f%%\n", ph.str("name").c_str(),
                  ph.num("t0"), len, pim != nullptr ? pim->num("ratio") : 0,
                  pct(ph.num("idle"), len * d.npes));
    }
  }

  if (const Value* comm = d.root.find("comm")) {
    std::printf("\ncommunication: %llu msgs, %llu bytes, mean latency %.3g s\n",
                static_cast<unsigned long long>(comm->num("sends")),
                static_cast<unsigned long long>(comm->num("bytes")),
                comm->num("sends") > 0 ? comm->num("latency_total") / comm->num("sends") : 0);
    if (const Value* cells = comm->find("cells"); cells != nullptr && cells->is_array()) {
      std::vector<const Value*> hot;
      hot.reserve(cells->array.size());
      for (const Value& c : cells->array) {
        if (c.is_array() && c.array.size() == 4) hot.push_back(&c);
      }
      std::sort(hot.begin(), hot.end(), [](const Value* a, const Value* b) {
        if (a->array[3].number != b->array[3].number)
          return a->array[3].number > b->array[3].number;
        return std::pair(a->array[0].number, a->array[1].number) <
               std::pair(b->array[0].number, b->array[1].number);
      });
      std::printf("top %d comm-matrix cells by bytes (of %zu nonzero):\n", top, hot.size());
      std::printf("  %6s -> %-6s %10s %14s\n", "src", "dst", "msgs", "bytes");
      for (int i = 0; i < top && i < static_cast<int>(hot.size()); ++i) {
        const auto& a = hot[static_cast<std::size_t>(i)]->array;
        std::printf("  %6d -> %-6d %10llu %14llu\n", static_cast<int>(a[0].number),
                    static_cast<int>(a[1].number),
                    static_cast<unsigned long long>(a[2].number),
                    static_cast<unsigned long long>(a[3].number));
      }
    }
  }

  if (!d.taskbench.empty()) {
    std::printf("\ntaskbench overhead surface (%zu cells):\n", d.taskbench.size());
    std::printf("%-44s %12s %12s %8s %14s\n", "cell", "makespan_s", "ideal_s", "eff",
                "ovhd/task_s");
    for (const TbCell& c : d.taskbench) {
      std::printf("%-44s %12.6g %12.6g %8.3f %14.6g\n", c.id.c_str(), c.makespan,
                  c.ideal, c.efficiency, c.overhead_per_task);
    }
  }

  if (!d.collectives.empty()) {
    std::printf("\ncollectives sweep (%zu cells):\n", d.collectives.size());
    std::printf("%-32s %12s %14s %12s %12s\n", "cell", "makespan_s", "time/round_s",
                "msgs", "partials");
    for (const CollCell& c : d.collectives) {
      std::printf("%-32s %12.6g %14.6g %12.0f %12.0f\n", c.id.c_str(), c.makespan,
                  c.time_per_round, c.msgs, c.partial_sends);
    }
  }

  if (const Value* ts = d.root.find("timeseries"); ts != nullptr && ts->is_array()) {
    std::printf("\nlive metrics: %zu samples every %.6g s (see `statsview timeline %s`)\n",
                ts->array.size(), d.root.num("metrics_interval"), d.path.c_str());
  }

  if (const Value* cp = d.root.find("critical_path")) {
    std::printf("\ncritical path: %.6g s (%.1f%% of makespan) = %.6g work + %.6g comm over %llu execs\n",
                cp->num("length"), 100.0 * cp->num("makespan_ratio"), cp->num("work"),
                cp->num("comm"), static_cast<unsigned long long>(cp->num("nodes")));
  }
}

// ---- timeline report / diff (the "timeseries"/"journal" sections) ------------

const Value* require_timeseries(const Doc& d) {
  const Value* ts = d.root.find("timeseries");
  if (ts == nullptr || !ts->is_array()) {
    std::fprintf(stderr,
                 "statsview: %s has no timeseries section (run the bench with "
                 "--metrics --stats=FILE)\n",
                 d.path.c_str());
    return nullptr;
  }
  return ts;
}

int timeline_report(const Doc& d, int top) {
  const Value* ts = require_timeseries(d);
  if (ts == nullptr) return 1;
  std::printf("== %s timeline (%s) ==\n", d.root.str("bench", "?").c_str(),
              d.path.c_str());
  const std::size_t n = ts->array.size();
  std::printf("%zu samples every %.6g s over %d PEs\n", n,
              d.root.num("metrics_interval"), d.npes);

  // Bounded table: stride over the samples so long runs stay readable
  // (always including the final sample, the cumulative totals).
  const std::size_t max_rows = static_cast<std::size_t>(top) * 2;
  const std::size_t stride = n > max_rows ? (n + max_rows - 1) / max_rows : 1;
  std::printf("%12s %8s %12s %12s %12s %8s %10s %8s %8s\n", "t_s", "lambda",
              "busy_avg_s", "msg_rate", "byte_rate", "ready", "ready_hwm", "evq",
              "evq_hwm");
  for (std::size_t i = 0; i < n; i += stride) {
    const Value& s = ts->array[i == n ? n - 1 : i];
    std::printf("%12.6g %8.3f %12.6g %12.6g %12.6g %8.0f %10.0f %8.0f %8.0f\n",
                s.num("t"), s.num("lambda"), s.num("busy_avg"), s.num("msg_rate"),
                s.num("byte_rate"), s.num("ready"), s.num("ready_hwm"),
                s.num("evq"), s.num("evq_hwm"));
  }
  if (n > 0 && (n - 1) % stride != 0) {
    const Value& s = ts->array[n - 1];
    std::printf("%12.6g %8.3f %12.6g %12.6g %12.6g %8.0f %10.0f %8.0f %8.0f\n",
                s.num("t"), s.num("lambda"), s.num("busy_avg"), s.num("msg_rate"),
                s.num("byte_rate"), s.num("ready"), s.num("ready_hwm"),
                s.num("evq"), s.num("evq_hwm"));
  }

  if (const Value* jr = d.root.find("journal"); jr != nullptr && jr->is_array()) {
    std::printf("\ndecision journal (%zu events):\n", jr->array.size());
    std::printf("%12s %-12s %8s %14s\n", "t_s", "kind", "aux", "value");
    for (const Value& e : jr->array) {
      std::printf("%12.6g %-12s %8.0f %14.6g\n", e.num("t"),
                  e.str("kind", "?").c_str(), e.num("aux"), e.num("value"));
    }
  }
  return 0;
}

int timeline_diff(const Doc& a, const Doc& b, int top, double threshold_pct) {
  const Value* tsa = require_timeseries(a);
  const Value* tsb = require_timeseries(b);
  if (tsa == nullptr || tsb == nullptr) return 1;
  std::printf("== statsview timeline diff: %s (A) vs %s (B) ==\n", a.path.c_str(),
              b.path.c_str());
  std::printf("samples: A %zu, B %zu | interval: A %.6g s, B %.6g s\n",
              tsa->array.size(), tsb->array.size(), a.root.num("metrics_interval"),
              b.root.num("metrics_interval"));
  if (tsa->array.size() != tsb->array.size()) {
    std::printf("\nREGRESSION: sample counts differ — the runs cover different "
                "virtual-time spans\n");
    return 2;
  }
  if (tsa->array.empty()) {
    std::printf("\nOK: both timelines are empty\n");
    return 0;
  }

  // Largest per-sample divergences in cumulative busy and in λ.
  struct Div {
    double t, a_v, b_v;
  };
  Div worst_busy{0, 0, 0}, worst_lambda{0, 0, 0};
  double worst_busy_rel = 0, worst_lambda_abs = 0;
  for (std::size_t i = 0; i < tsa->array.size(); ++i) {
    const Value& sa = tsa->array[i];
    const Value& sb = tsb->array[i];
    const double ba = sa.num("busy"), bb = sb.num("busy");
    const double rel = ba != 0 ? std::fabs(bb - ba) / std::fabs(ba)
                               : (bb != 0 ? 1.0 : 0.0);
    if (rel >= worst_busy_rel) {
      worst_busy_rel = rel;
      worst_busy = Div{sa.num("t"), ba, bb};
    }
    const double la = sa.num("lambda"), lb = sb.num("lambda");
    if (std::fabs(lb - la) >= worst_lambda_abs) {
      worst_lambda_abs = std::fabs(lb - la);
      worst_lambda = Div{sa.num("t"), la, lb};
    }
  }
  std::printf("largest busy divergence: %+.3g%% at t=%.6g (A %.6g, B %.6g)\n",
              100.0 * worst_busy_rel, worst_busy.t, worst_busy.a_v, worst_busy.b_v);
  std::printf("largest lambda divergence: %+.4f at t=%.6g (A %.3f, B %.3f)\n",
              worst_lambda_abs, worst_lambda.t, worst_lambda.a_v, worst_lambda.b_v);

  const std::size_t n = tsa->array.size();
  const std::size_t max_rows = static_cast<std::size_t>(top);
  const std::size_t stride = n > max_rows ? (n + max_rows - 1) / max_rows : 1;
  std::printf("\n%12s %10s %10s %12s %12s\n", "t_s", "A_lambda", "B_lambda",
              "A_busy_s", "B_busy_s");
  for (std::size_t i = 0; i < n; i += stride) {
    const Value& sa = tsa->array[i];
    const Value& sb = tsb->array[i];
    std::printf("%12.6g %10.3f %10.3f %12.6g %12.6g\n", sa.num("t"),
                sa.num("lambda"), sb.num("lambda"), sa.num("busy"), sb.num("busy"));
  }

  const Value& fa = tsa->array[n - 1];
  const Value& fb = tsb->array[n - 1];
  const double final_pct = fa.num("busy") != 0
                               ? 100.0 * (fb.num("busy") - fa.num("busy")) / fa.num("busy")
                               : (fb.num("busy") != 0 ? 100.0 : 0.0);
  if (std::fabs(final_pct) > threshold_pct) {
    std::printf("\nREGRESSION: final-sample cumulative busy drifted %+.2f%% "
                "(threshold %.2f%%)\n",
                final_pct, threshold_pct);
    return 2;
  }
  std::printf("\nOK: final-sample busy delta %+.2f%% within the %.2f%% threshold\n",
              final_pct, threshold_pct);
  return 0;
}

void print_delta(const char* label, double a, double b) {
  const double d = b - a;
  std::printf("%-22s %14.6g %14.6g %+13.6g %s%.2f%%\n", label, a, b, d, d >= 0 ? "+" : "",
              a != 0 ? 100.0 * d / a : 0.0);
}

int diff(const Doc& a, const Doc& b, int top, double threshold_pct) {
  std::printf("== statsview diff: %s (A) vs %s (B) ==\n", a.path.c_str(), b.path.c_str());
  std::printf("%-22s %14s %14s %13s %9s\n", "metric", "A", "B", "delta", "delta%");
  print_delta("makespan_s", a.makespan, b.makespan);
  print_delta("busy_s", a.busy, b.busy);
  print_delta("overhead_s", a.exec - a.busy, b.exec - b.busy);
  const Value* ima = a.root.find("imbalance");
  const Value* imb = b.root.find("imbalance");
  print_delta("imbalance_ratio", ima != nullptr ? ima->num("ratio") : 0,
              imb != nullptr ? imb->num("ratio") : 0);
  const Value* cpa = a.root.find("critical_path");
  const Value* cpb = b.root.find("critical_path");
  print_delta("critical_path_s", cpa != nullptr ? cpa->num("length") : 0,
              cpb != nullptr ? cpb->num("length") : 0);

  // Per-entry busy movers, matched by (col, ep).
  std::map<std::pair<int, int>, std::pair<const EntryRow*, const EntryRow*>> merged;
  for (const EntryRow& e : a.entries) merged[{e.col, e.ep}].first = &e;
  for (const EntryRow& e : b.entries) merged[{e.col, e.ep}].second = &e;
  struct Mover {
    std::string name;
    double a_busy, b_busy;
  };
  std::vector<Mover> movers;
  for (const auto& [key, pair] : merged) {
    const double ab = pair.first != nullptr ? pair.first->busy : 0;
    const double bb = pair.second != nullptr ? pair.second->busy : 0;
    const std::string name = pair.first != nullptr ? pair.first->name : pair.second->name;
    movers.push_back(Mover{name, ab, bb});
  }
  std::sort(movers.begin(), movers.end(), [](const Mover& x, const Mover& y) {
    const double dx = std::fabs(x.b_busy - x.a_busy), dy = std::fabs(y.b_busy - y.a_busy);
    if (dx != dy) return dx > dy;
    return x.name < y.name;
  });
  std::printf("\ntop %d entry-method busy movers:\n", top);
  std::printf("%-36s %14s %14s %14s\n", "entry", "A_busy_s", "B_busy_s", "delta_s");
  for (int i = 0; i < top && i < static_cast<int>(movers.size()); ++i) {
    const Mover& m = movers[static_cast<std::size_t>(i)];
    std::printf("%-36s %14.6g %14.6g %+14.6g\n", m.name.c_str(), m.a_busy, m.b_busy,
                m.b_busy - m.a_busy);
  }

  // Taskbench overhead surface: cells matched by identity; any per-cell
  // makespan regression past the threshold gates, as does a baseline cell
  // missing from the candidate (a silently shrunk sweep must not pass).
  int failures = 0;
  if (!a.taskbench.empty() || !b.taskbench.empty()) {
    std::map<std::string, const TbCell*> in_b;
    for (const TbCell& c : b.taskbench) in_b[c.id] = &c;
    std::printf("\ntaskbench overhead surface (%zu vs %zu cells):\n",
                a.taskbench.size(), b.taskbench.size());
    std::printf("%-44s %12s %12s %9s %14s\n", "cell", "A_mksp_s", "B_mksp_s",
                "delta%", "B_ovhd/task_s");
    for (const TbCell& ca : a.taskbench) {
      auto it = in_b.find(ca.id);
      if (it == in_b.end()) {
        std::printf("%-44s %12.6g %12s %9s %14s  MISSING\n", ca.id.c_str(),
                    ca.makespan, "-", "-", "-");
        ++failures;
        continue;
      }
      const TbCell& cb = *it->second;
      const double cell_pct =
          ca.makespan > 0 ? 100.0 * (cb.makespan - ca.makespan) / ca.makespan : 0;
      const bool bad = cell_pct > threshold_pct;
      std::printf("%-44s %12.6g %12.6g %+8.2f%% %14.6g%s\n", ca.id.c_str(), ca.makespan,
                  cb.makespan, cell_pct, cb.overhead_per_task,
                  bad ? "  REGRESSION" : "");
      if (bad) ++failures;
      in_b.erase(it);
    }
    for (const TbCell& cb : b.taskbench) {
      if (in_b.count(cb.id))
        std::printf("%-44s %12s %12.6g %9s %14.6g  NEW\n", cb.id.c_str(), "-",
                    cb.makespan, "-", cb.overhead_per_task);
    }
  }

  // Collectives sweep: same per-cell gate as taskbench, on time-per-round.
  if (!a.collectives.empty() || !b.collectives.empty()) {
    std::map<std::string, const CollCell*> in_b;
    for (const CollCell& c : b.collectives) in_b[c.id] = &c;
    std::printf("\ncollectives sweep (%zu vs %zu cells):\n", a.collectives.size(),
                b.collectives.size());
    std::printf("%-32s %14s %14s %9s %12s\n", "cell", "A_t/round_s", "B_t/round_s",
                "delta%", "B_partials");
    for (const CollCell& ca : a.collectives) {
      auto it = in_b.find(ca.id);
      if (it == in_b.end()) {
        std::printf("%-32s %14.6g %14s %9s %12s  MISSING\n", ca.id.c_str(),
                    ca.time_per_round, "-", "-", "-");
        ++failures;
        continue;
      }
      const CollCell& cb = *it->second;
      const double cell_pct =
          ca.time_per_round > 0
              ? 100.0 * (cb.time_per_round - ca.time_per_round) / ca.time_per_round
              : 0;
      const bool bad = cell_pct > threshold_pct;
      std::printf("%-32s %14.6g %14.6g %+8.2f%% %12.0f%s\n", ca.id.c_str(),
                  ca.time_per_round, cb.time_per_round, cell_pct, cb.partial_sends,
                  bad ? "  REGRESSION" : "");
      if (bad) ++failures;
      in_b.erase(it);
    }
    for (const CollCell& cb : b.collectives) {
      if (in_b.count(cb.id))
        std::printf("%-32s %14s %14.6g %9s %12.0f  NEW\n", cb.id.c_str(), "-",
                    cb.time_per_round, "-", cb.partial_sends);
    }
  }

  const double reg_pct = a.makespan > 0 ? 100.0 * (b.makespan - a.makespan) / a.makespan : 0;
  if (reg_pct > threshold_pct) {
    std::printf("\nREGRESSION: makespan +%.2f%% exceeds the %.2f%% threshold\n", reg_pct,
                threshold_pct);
    return 2;
  }
  if (failures > 0) {
    std::printf("\nREGRESSION: %d sweep cell(s) regressed past %.2f%% or went missing\n",
                failures, threshold_pct);
    return 2;
  }
  std::printf("\nOK: makespan delta %+.2f%% within the %.2f%% threshold%s\n", reg_pct,
              threshold_pct,
              a.taskbench.empty() && a.collectives.empty()
                  ? ""
                  : "; all sweep cells within threshold");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  bool timeline = false;
  int top = 10;
  double threshold = 5.0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--top=", 6) == 0 && a[6] != '\0') {
      top = std::atoi(a + 6);
      if (top <= 0) top = 10;
    } else if (std::strncmp(a, "--threshold=", 12) == 0 && a[12] != '\0') {
      threshold = std::strtod(a + 12, nullptr);
    } else if (std::strcmp(a, "timeline") == 0 && files.empty() && !timeline) {
      timeline = true;
    } else if (a[0] == '-') {
      std::fprintf(stderr,
                   "usage: statsview [timeline] FILE [FILE2] [--top=N] [--threshold=PCT]\n"
                   "  one file: report; two files: A-vs-B diff (exit 2 when B\n"
                   "  regresses past PCT%%, default 5).  `timeline` switches to the\n"
                   "  live-metrics timeseries/journal views (--metrics runs).\n");
      return 1;
    } else {
      files.emplace_back(a);
    }
  }
  if (files.empty() || files.size() > 2) {
    std::fprintf(stderr,
                 "usage: statsview [timeline] FILE [FILE2] [--top=N] [--threshold=PCT]\n");
    return 1;
  }
  Doc a;
  if (!load(files[0], a)) return 1;
  if (files.size() == 1) {
    if (timeline) return timeline_report(a, top);
    print_report(a, top);
    return 0;
  }
  Doc b;
  if (!load(files[1], b)) return 1;
  if (timeline) return timeline_diff(a, b, top, threshold);
  return diff(a, b, top, threshold);
}
