#include "sim/event_queue.hpp"

#include <utility>

namespace sim {

Event EventQueue::pop() {
  // std::priority_queue::top() returns a const reference; the element is
  // moved out via const_cast, which is safe because it is popped immediately.
  Event e = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return e;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace sim
