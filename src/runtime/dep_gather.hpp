#pragma once
// DepGather: the step-tagged dependence counter every graph-structured
// workload re-implements by hand.  An element executing a sequence of steps
// expects a known number of input messages per step; because the runtime
// delivers asynchronously, a fast neighbor can send step-t+1 inputs while the
// receiver is still gathering step t (or parked between steps).  DepGather
// centralizes the bookkeeping the stencil mini-app pioneered:
//
//   * arrivals for the currently open step are counted toward completion,
//   * arrivals for future steps are buffered and replayed when that step
//     opens,
//   * arrivals for past steps (duplicates of an already-finished gather) are
//     dropped,
//   * the whole state is puppable, so gathering elements stay migratable.
//
// Usage (one gather per element; Msg is the caller's message type):
//
//   void Elem::arrive(const Msg& m) {
//     if (!gather_.offer(m.step, m)) return;   // buffered or stale
//     incorporate(m);
//     if (gather_.accept()) run_step();
//   }
//   void Elem::run_step() {
//     ... step body, sends ...
//     gather_.close();                          // step done, advance
//     if (gather_.open(next, expected, [&](const Msg& m) { arrive(m); }))
//       run_step();                             // nothing to wait for
//   }
//
// open() replays buffered messages through the caller's own arrival handler,
// so a step whose inputs all arrived early completes (and may close/open the
// next step) from inside the replay loop; open() detects that reentrant
// advance and returns false so the caller does not run the step body twice.

#include <map>
#include <utility>
#include <vector>

#include "pup/pup.hpp"

namespace charm {

template <class Msg>
class DepGather {
 public:
  /// The step currently gathering (or, after close(), the next one).
  int step() const { return step_; }
  int expected() const { return expected_; }
  int seen() const { return seen_; }
  /// A gather is open and still waiting for arrivals.
  bool gathering() const { return expected_ > 0; }
  bool complete() const { return seen_ >= expected_; }
  /// Distinct future steps with buffered arrivals (diagnostics).
  std::size_t buffered_steps() const { return early_.size(); }

  /// Opens the gather for `step`, expecting `expected` arrivals.  Buffered
  /// messages for older steps are pruned; buffered messages for `step` are
  /// replayed through `deliver` (the caller's arrival handler, so they are
  /// counted exactly like live arrivals).  Returns true when the caller
  /// should run the step body directly: nothing was expected and no
  /// reentrant close() advanced the gather during replay.
  template <class Fn>
  bool open(int step, int expected, Fn&& deliver) {
    step_ = step;
    expected_ = expected;
    seen_ = 0;
    early_.erase(early_.begin(), early_.lower_bound(step));
    auto it = early_.find(step);
    if (it != early_.end()) {
      std::vector<Msg> msgs = std::move(it->second);
      early_.erase(it);
      for (const Msg& m : msgs) deliver(m);
    }
    return expected_ == 0 && step_ == step;
  }

  /// Routes an arrival tagged `step`.  True: it belongs to the open gather —
  /// incorporate it, then call accept().  False: it was buffered for a
  /// future open() (step >= current) or dropped as stale.
  bool offer(int step, const Msg& m) {
    if (step == step_ && gathering()) return true;
    if (step >= step_) early_[step].push_back(m);
    return false;
  }

  /// Counts one incorporated arrival; true when the gather just completed.
  bool accept() { return ++seen_ >= expected_; }

  /// Ends the step: later arrivals for it are stale, next-step arrivals
  /// buffer until the matching open().
  void close() {
    expected_ = 0;
    ++step_;
  }

  template <class P>
  void pup(P& p) {
    p | step_;
    p | expected_;
    p | seen_;
    p | early_;
  }

 private:
  int step_ = 0;
  int expected_ = 0;
  int seen_ = 0;
  std::map<int, std::vector<Msg>> early_;  ///< future-step arrivals, by step
};

}  // namespace charm
