// Ordering invariants of the scheduler's hot-path queues, the move/destroy
// semantics of sim::UniqueFn, and the zero-allocation guarantee for the
// steady-state point-send path.
//
// The queue tests pin down the total orders the simulation's determinism
// rests on: (time, seq) for the global event list and
// (priority, arrival, seq) for the per-PE ready queue — including the FIFO
// fast path that default-priority messages take.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <set>
#include <utility>
#include <vector>

#include "runtime/charm.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/ready_queue.hpp"
#include "sim/unique_fn.hpp"

namespace {

// ---- operator new/delete counting hook --------------------------------------
//
// Global allocation counter used by the zero-allocation test.  Counting is
// toggled around the measured region; the hooks otherwise defer to malloc.

bool g_counting = false;
std::size_t g_allocs = 0;

}  // namespace

// GCC pairs the inlined replacement operator new with the free() inside the
// replacement operator delete and flags a mismatch; the pair is consistent
// by construction (both sides are malloc/free).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_counting) ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting) ++g_allocs;
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using sim::Event;
using sim::EventQueue;
using sim::ReadyMsg;
using sim::ReadyQueue;
using sim::UniqueFn;

// ---- EventQueue -------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  const double times[] = {5.0, 1.0, 3.0, 2.0, 4.0, 0.5, 2.5};
  std::uint64_t seq = 0;
  for (double t : times)
    q.emplace(t, seq++, Event::Kind::kArrive, 0, 0, 0);
  double prev = -1;
  while (!q.empty()) {
    Event e = q.pop();
    EXPECT_GT(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueue, EqualTimesBreakTiesBySeqFifo) {
  EventQueue q;
  // All at the same virtual time, interleaved with earlier/later events.
  for (std::uint64_t s = 0; s < 64; ++s)
    q.emplace(1.0, s, Event::Kind::kArrive, 0, 0, 0);
  q.emplace(0.5, 64, Event::Kind::kArrive, 0, 0, 0);
  q.emplace(2.0, 65, Event::Kind::kArrive, 0, 0, 0);

  EXPECT_DOUBLE_EQ(q.pop().time, 0.5);
  for (std::uint64_t s = 0; s < 64; ++s) {
    Event e = q.pop();
    EXPECT_DOUBLE_EQ(e.time, 1.0);
    EXPECT_EQ(e.seq, s) << "same-time events must pop in insertion order";
  }
  EXPECT_DOUBLE_EQ(q.pop().time, 2.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedPushPopMatchesReferenceModel) {
  EventQueue q;
  std::set<std::pair<double, std::uint64_t>> reference;
  std::uint64_t seq = 0;
  // Sawtooth: bursts of pushes with partial drains in between, exercising
  // slot reuse through the free list.  Every pop must match the minimum of
  // a reference ordered set under (time, seq).
  for (int round = 0; round < 20; ++round) {
    for (int k = 0; k < 50; ++k) {
      const double t = static_cast<double>((round * 50 + k * 7) % 997);
      q.emplace(t, seq, Event::Kind::kArrive, 0, 0, 0);
      reference.emplace(t, seq);
      ++seq;
    }
    for (int k = 0; k < 30 && !q.empty(); ++k) {
      Event e = q.pop();
      ASSERT_FALSE(reference.empty());
      EXPECT_EQ(std::make_pair(e.time, e.seq), *reference.begin());
      reference.erase(reference.begin());
    }
  }
  while (!q.empty()) {
    Event e = q.pop();
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(std::make_pair(e.time, e.seq), *reference.begin());
    reference.erase(reference.begin());
  }
  EXPECT_TRUE(reference.empty());
}

TEST(EventQueue, HandlerSurvivesSiftsAndClearReleasesClosures) {
  auto counter = std::make_shared<int>(0);
  EventQueue q;
  for (int i = 0; i < 100; ++i) {
    q.emplace(static_cast<double>(100 - i), static_cast<std::uint64_t>(i),
              Event::Kind::kArrive, 0, 0, 0)
        .fn = [counter] { ++*counter; };
  }
  EXPECT_EQ(counter.use_count(), 101);
  for (int i = 0; i < 50; ++i) {
    Event e = q.pop();
    e.fn();
  }
  EXPECT_EQ(*counter, 50);
  q.clear();  // must destroy the 50 un-popped closures
  EXPECT_EQ(counter.use_count(), 1);
}

// ---- ReadyQueue -------------------------------------------------------------

TEST(ReadyQueue, FifoFastPathServesDefaultPriorityInArrivalOrder) {
  ReadyQueue q;
  for (std::uint64_t s = 0; s < 100; ++s)
    q.emplace(ReadyQueue::kFifoPriority, static_cast<double>(s), s, 0,
              UniqueFn{});
  for (std::uint64_t s = 0; s < 100; ++s) {
    ReadyMsg m = q.pop();
    EXPECT_EQ(m.seq, s);
  }
  EXPECT_TRUE(q.empty());
}

TEST(ReadyQueue, MergesFifoAndHeapUnderPriorityArrivalSeqOrder) {
  ReadyQueue q;
  // Default-priority messages arrive in (arrival, seq) order (the machine
  // guarantees this); prioritized messages arrive interleaved.
  q.emplace(0, 1.0, 10, 0, UniqueFn{});
  q.emplace(-5, 3.0, 11, 0, UniqueFn{});  // lower value = served first
  q.emplace(0, 2.0, 12, 0, UniqueFn{});
  q.emplace(7, 0.5, 13, 0, UniqueFn{});
  q.emplace(0, 2.5, 14, 0, UniqueFn{});
  q.emplace(-5, 4.0, 15, 0, UniqueFn{});

  std::vector<std::uint64_t> order;
  while (!q.empty()) order.push_back(q.pop().seq);
  // (priority, arrival, seq): -5s first by arrival, then priority-0 FIFO,
  // then priority 7.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{11, 15, 10, 12, 14, 13}));
}

TEST(ReadyQueue, SamePriorityHeapBreaksTiesByArrivalThenSeq) {
  ReadyQueue q;
  q.emplace(3, 2.0, 21, 0, UniqueFn{});
  q.emplace(3, 1.0, 22, 0, UniqueFn{});
  q.emplace(3, 1.0, 20, 0, UniqueFn{});
  q.emplace(3, 1.0, 25, 0, UniqueFn{});
  std::vector<std::uint64_t> order;
  while (!q.empty()) order.push_back(q.pop().seq);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{20, 22, 25, 21}));
}

TEST(ReadyQueue, RingGrowthPreservesOrder) {
  ReadyQueue q;
  std::uint64_t s = 0;
  std::vector<std::uint64_t> expected;
  // Force several ring doublings with interleaved partial drains so the ring
  // wraps around while growing.
  for (int round = 0; round < 6; ++round) {
    for (int k = 0; k < (1 << round); ++k) {
      q.emplace(0, static_cast<double>(s), s, 0, UniqueFn{});
      expected.push_back(s);
      ++s;
    }
    for (int k = 0; k < (1 << round) / 2; ++k) q.pop();
    expected.erase(expected.begin(), expected.begin() + (1 << round) / 2);
  }
  std::vector<std::uint64_t> rest;
  while (!q.empty()) rest.push_back(q.pop().seq);
  EXPECT_EQ(rest, expected);
}

// ---- UniqueFn ---------------------------------------------------------------

struct LifeCounter {
  int* constructions;
  int* destructions;
  explicit LifeCounter(int* c, int* d) : constructions(c), destructions(d) {
    ++*constructions;
  }
  LifeCounter(const LifeCounter& o)
      : constructions(o.constructions), destructions(o.destructions) {
    ++*constructions;
  }
  LifeCounter(LifeCounter&& o) noexcept
      : constructions(o.constructions), destructions(o.destructions) {
    ++*constructions;
  }
  ~LifeCounter() { ++*destructions; }
  void operator()() const {}
};

TEST(UniqueFn, DestroysHeldClosureExactlyOnce) {
  int ctor = 0, dtor = 0;
  {
    UniqueFn f(LifeCounter(&ctor, &dtor));
    f();
  }
  EXPECT_EQ(ctor, dtor) << "every constructed closure must be destroyed";
  EXPECT_GE(ctor, 1);
}

TEST(UniqueFn, MoveTransfersOwnershipNoDoubleDestroy) {
  int ctor = 0, dtor = 0;
  {
    UniqueFn a(LifeCounter(&ctor, &dtor));
    UniqueFn b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    UniqueFn c;
    c = std::move(b);
    EXPECT_TRUE(static_cast<bool>(c));
    c();
  }
  EXPECT_EQ(ctor, dtor);
}

TEST(UniqueFn, SmallClosuresAreInlineLargeAreBoxed) {
  int x = 0;
  UniqueFn small([&x] { ++x; });
  EXPECT_TRUE(small.is_inline());

  struct Big {
    char pad[128];
    int* p;
    void operator()() { ++*p; }
  };
  Big big{};
  big.p = &x;
  UniqueFn boxed(big);
  EXPECT_FALSE(boxed.is_inline());
  small();
  boxed();
  EXPECT_EQ(x, 2);

  // Boxed closures move by pointer swap: still valid after several moves.
  UniqueFn moved = std::move(boxed);
  UniqueFn moved2 = std::move(moved);
  moved2();
  EXPECT_EQ(x, 3);
}

TEST(UniqueFn, EmptyInvokeThrows) {
  UniqueFn f;
  EXPECT_THROW(f(), std::bad_function_call);
}

TEST(UniqueFn, QuarantineDisposalRunsHandlerWithoutDoubleFree) {
  // A message in flight to a failed PE is executed in quarantine (dispose
  // path) — the closure must run once and be destroyed once.
  sim::Machine m(sim::MachineConfig{4, {}, 4});
  int ctor = 0, dtor = 0, runs = 0;
  struct Probe {
    int* ctor;
    int* dtor;
    int* runs;
    Probe(int* c, int* d, int* r) : ctor(c), dtor(d), runs(r) { ++*ctor; }
    Probe(const Probe& o) : ctor(o.ctor), dtor(o.dtor), runs(o.runs) { ++*ctor; }
    Probe(Probe&& o) noexcept : ctor(o.ctor), dtor(o.dtor), runs(o.runs) {
      ++*ctor;
    }
    ~Probe() { ++*dtor; }
    void operator()() { ++*runs; }
  };
  m.post(2, 0.0, Probe(&ctor, &dtor, &runs));
  m.fail_pe(2);
  m.run();
  EXPECT_EQ(runs, 1) << "quarantined handler still runs for accounting";
  EXPECT_EQ(ctor, dtor);
}

// ---- zero-allocation steady state -------------------------------------------

struct PingMsg {
  int v = 0;
  template <class P>
  void pup(P& p) {
    p | v;
  }
};

class PingSink : public charm::ArrayElement<PingSink, std::int32_t> {
 public:
  int n = 0;
  void take(const PingMsg&) { ++n; }
};

/// ~1 KiB flat message: the largest payload the same-PE zero-allocation
/// guarantee covers.
struct BulkMsg {
  std::array<double, 120> data{};
  template <class P>
  void pup(P& p) {
    p | data;
  }
};

class BulkSink : public charm::ArrayElement<BulkSink, std::int32_t> {
 public:
  int n = 0;
  double sum = 0;
  void take(const BulkMsg& m) {
    ++n;
    sum += m.data[0];
  }
};

TEST(ZeroAlloc, SteadyStatePointSendDeliverDoesNotAllocate) {
  sim::Machine m(sim::MachineConfig{8, {}, 4});
  charm::Runtime rt(m);
  auto arr = charm::ArrayProxy<PingSink>::create(rt);
  for (int i = 0; i < 32; ++i) arr.seed(i, i % 8);

  auto drive = [&](int rounds) {
    rt.on_pe(0, [&arr, rounds] {
      for (int i = 0; i < rounds; ++i)
        arr[i % 32].send<&PingSink::take>(PingMsg{i});
    });
    m.run();
  };

  // Warm-up: populates the payload pool, the closure block cache, the event
  // arena, the ready rings, and the location caches.
  drive(2000);

  // Steady state: every send→deliver must recycle pooled resources.
  g_allocs = 0;
  g_counting = true;
  drive(2000);
  g_counting = false;
  EXPECT_EQ(g_allocs, 0u)
      << "steady-state point send→deliver must be allocation-free";

  const charm::PayloadPool& pool = rt.payload_pool();
  EXPECT_GT(pool.hits(), 0u);
}

// POD reductions recycle everything in steady state: contribution values land
// in pooled NumsPool buffers, combine happens in place, map nodes cycle
// through per-collection spares, and the result buffer returns to the pool
// after the callback runs.  Rounds are driven sequentially (the completion
// callback launches the next round) so exactly one reduction is in flight.
class RoundContributor : public charm::ArrayElement<RoundContributor, std::int32_t> {
 public:
  void poke(charm::ReduceOp op) {
    contribute(static_cast<double>(index()), op, cb);
  }
  static charm::Callback cb;
};

charm::Callback RoundContributor::cb;

/// Sequential round driver: the completion callback launches the next round,
/// so exactly one reduction is in flight and every pooled resource cycles.
/// The callback is built once, outside the counted region; `drive` resets the
/// round counter and re-launches without allocating.
struct ReductionDriver {
  charm::Runtime& rt;
  std::vector<std::vector<RoundContributor*>>& by_pe;
  int round = 0;
  int target = 0;
  int mismatches = 0;  ///< rounds whose result was wrong (checked in-callback)
  double expect_sum = 0, expect_min = 0, expect_max = 0;

  void launch() {
    const charm::ReduceOp op = round % 3 == 0   ? charm::ReduceOp::kSum
                               : round % 3 == 1 ? charm::ReduceOp::kMin
                                                : charm::ReduceOp::kMax;
    for (int pe = 0; pe < static_cast<int>(by_pe.size()); ++pe) {
      rt.on_pe(pe, [this, pe, op] {
        for (RoundContributor* e : by_pe[static_cast<std::size_t>(pe)]) e->poke(op);
      });
    }
  }

  void install_callback() {
    RoundContributor::cb =
        charm::Callback::to_function([this](charm::ReductionResult&& r) {
          const double want = round % 3 == 0   ? expect_sum
                              : round % 3 == 1 ? expect_min
                                               : expect_max;
          if (r.num(0) != want) ++mismatches;
          if (++round < target) launch();
        });
  }

  /// Runs `rounds` rounds; returns the number of wrong results (0 = all ok).
  int drive(sim::Machine& m, int rounds) {
    round = 0;
    target = rounds;
    mismatches = 0;
    launch();
    m.run();
    return mismatches;
  }
};

std::vector<std::vector<RoundContributor*>> elements_by_pe(
    charm::Runtime& rt, charm::ArrayProxy<RoundContributor>& arr, int nelems) {
  std::vector<std::vector<RoundContributor*>> by_pe(
      static_cast<std::size_t>(rt.npes()));
  for (int i = 0; i < nelems; ++i) {
    for (int pe = 0; pe < rt.npes(); ++pe) {
      auto* e = rt.collection(arr.id())
                    .find(pe, charm::IndexTraits<std::int32_t>::encode(i));
      if (e != nullptr)
        by_pe[static_cast<std::size_t>(pe)].push_back(
            static_cast<RoundContributor*>(e));
    }
  }
  return by_pe;
}

TEST(ZeroAlloc, SteadyStateScalarReductionDoesNotAllocate) {
  sim::Machine m(sim::MachineConfig{8, {}, 4});
  charm::Runtime rt(m);
  auto arr = charm::ArrayProxy<RoundContributor>::create(rt);
  for (int i = 0; i < 32; ++i) arr.seed(i, i % 8);
  auto by_pe = elements_by_pe(rt, arr, 32);
  ReductionDriver d{rt, by_pe};
  d.expect_sum = 31.0 * 32 / 2;
  d.expect_min = 0.0;
  d.expect_max = 31.0;
  d.install_callback();

  // Warm-up: populates the nums pool, the redux map-node spares, the event
  // arena, and the closure block cache.
  EXPECT_EQ(d.drive(m, 50), 0);

  m.resume();
  g_allocs = 0;
  g_counting = true;
  const int bad = d.drive(m, 500);
  g_counting = false;
  EXPECT_EQ(bad, 0);
  EXPECT_EQ(g_allocs, 0u)
      << "steady-state POD reductions must be allocation-free";

  const charm::NumsPool& pool = rt.nums_pool();
  EXPECT_GT(pool.hits(), 0u) << "contribution buffers must come from the pool";
  EXPECT_GT(pool.free_buffers(), 0u)
      << "result buffers must return to the pool after the callback";
}

TEST(ZeroAlloc, SteadyStateTreeReductionDoesNotAllocate) {
  // Same gate on the distributed spanning-tree path: partial-combine slots,
  // up-sweep kick closures, and partial messages must all recycle.
  charm::RuntimeConfig cfg;
  cfg.collectives = charm::CollectiveTopology::kTree;
  cfg.tree_fanout = 2;
  sim::Machine m(sim::MachineConfig{8, {}, 4});
  charm::Runtime rt(m, cfg);
  auto arr = charm::ArrayProxy<RoundContributor>::create(rt);
  for (int i = 0; i < 32; ++i) arr.seed(i, i % 8);
  auto by_pe = elements_by_pe(rt, arr, 32);
  ReductionDriver d{rt, by_pe};
  d.expect_sum = 31.0 * 32 / 2;
  d.expect_min = 0.0;
  d.expect_max = 31.0;
  d.install_callback();

  EXPECT_EQ(d.drive(m, 50), 0);
  const std::uint64_t partials_before = rt.reduction_partials_sent();

  m.resume();
  g_allocs = 0;
  g_counting = true;
  const int bad = d.drive(m, 200);
  g_counting = false;
  EXPECT_EQ(bad, 0);
  EXPECT_EQ(g_allocs, 0u)
      << "steady-state tree reductions must be allocation-free";
  EXPECT_EQ(rt.reduction_partials_sent() - partials_before, 200u * 7u)
      << "every round routes one partial per non-root PE";

  const charm::NumsPool& pool = rt.nums_pool();
  EXPECT_GT(pool.hits(), 0u);
  EXPECT_GT(pool.free_buffers(), 0u);
}

TEST(ZeroAlloc, SteadyStateSamePeTypedSendDoesNotAllocate) {
  // Same-PE sends take the typed fast path: the argument moves through an
  // in-flight slot embedded in the delivery closure — no pack, no unpack,
  // and (after warm-up) no heap traffic even for ~1 KiB payloads, which
  // land in the closure block cache's largest size class.
  sim::Machine m(sim::MachineConfig{4, {}, 4});
  charm::Runtime rt(m);
  auto small = charm::ArrayProxy<PingSink>::create(rt);
  auto bulk = charm::ArrayProxy<BulkSink>::create(rt);
  for (int i = 0; i < 16; ++i) small.seed(i, 0);
  for (int i = 0; i < 16; ++i) bulk.seed(i, 0);

  auto drive = [&](int rounds) {
    rt.on_pe(0, [&, rounds] {
      for (int i = 0; i < rounds; ++i) {
        small[i % 16].send<&PingSink::take>(PingMsg{i});
        BulkMsg big;
        big.data[0] = static_cast<double>(i);
        bulk[i % 16].send<&BulkSink::take>(std::move(big));
      }
    });
    m.run();
  };

  drive(2000);  // warm the closure block cache and event arena

  g_allocs = 0;
  g_counting = true;
  drive(2000);
  g_counting = false;
  EXPECT_EQ(g_allocs, 0u)
      << "steady-state same-PE typed send→deliver must be allocation-free";

  // The typed path never touches the payload pool: nothing was packed.
  const charm::PayloadPool& pool = rt.payload_pool();
  EXPECT_EQ(pool.hits() + pool.misses(), 0u);
}

}  // namespace
