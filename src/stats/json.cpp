#include "stats/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace stats::json {

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == 0) return "0";  // avoid "-0"
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---- parser ------------------------------------------------------------------

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string* err;

  bool fail(const char* msg, const char* at) {
    if (err != nullptr) {
      *err = std::string(msg) + " at offset " + std::to_string(at - begin_);
    }
    return false;
  }

  const char* begin_;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool parse_string(std::string& out) {
    const char* at = p;
    if (p >= end || *p != '"') return fail("expected string", at);
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("bad escape", at);
        switch (*p) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (end - p < 5) return fail("bad \\u escape", at);
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code += static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f') code += static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') code += static_cast<unsigned>(c - 'A' + 10);
              else return fail("bad \\u escape", at);
            }
            // Stats files are ASCII; decode BMP code points as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            p += 4;
            break;
          }
          default: return fail("bad escape", at);
        }
        ++p;
      } else {
        out.push_back(*p++);
      }
    }
    if (p >= end) return fail("unterminated string", at);
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (p >= end) return fail("unexpected end of input", p);
    const char c = *p;
    if (c == '{') {
      ++p;
      out.type = Value::Type::kObject;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return fail("expected ':'", p);
        ++p;
        Value v;
        if (!parse_value(v)) return false;
        out.object.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return fail("expected ',' or '}'", p);
      }
    }
    if (c == '[') {
      ++p;
      out.type = Value::Type::kArray;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      while (true) {
        Value v;
        if (!parse_value(v)) return false;
        out.array.push_back(std::move(v));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return fail("expected ',' or ']'", p);
      }
    }
    if (c == '"') {
      out.type = Value::Type::kString;
      return parse_string(out.string);
    }
    if (c == 't' && end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
      out.type = Value::Type::kBool;
      out.boolean = true;
      p += 4;
      return true;
    }
    if (c == 'f' && end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
      out.type = Value::Type::kBool;
      out.boolean = false;
      p += 5;
      return true;
    }
    if (c == 'n' && end - p >= 4 && std::strncmp(p, "null", 4) == 0) {
      out.type = Value::Type::kNull;
      p += 4;
      return true;
    }
    char* num_end = nullptr;
    const double v = std::strtod(p, &num_end);
    if (num_end == p) return fail("unexpected token", p);
    out.type = Value::Type::kNumber;
    out.number = v;
    p = num_end;
    return true;
  }
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::num(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string Value::str(const std::string& key, const std::string& fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->string : fallback;
}

bool parse(const std::string& text, Value& out, std::string* err) {
  Parser parser{text.data(), text.data() + text.size(), err, text.data()};
  if (!parser.parse_value(out)) return false;
  parser.skip_ws();
  if (parser.p != parser.end) return parser.fail("trailing garbage", parser.p);
  return true;
}

}  // namespace stats::json
