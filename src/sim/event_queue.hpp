#pragma once
// Global future-event list for the machine emulator: a min-heap over
// (time, seq).  The seq tie-break makes the whole simulation deterministic.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sim {

using Time = double;
using Handler = std::function<void()>;

struct Event {
  enum class Kind : std::uint8_t { kArrive, kExec };

  Time time = 0;
  std::uint64_t seq = 0;
  Kind kind = Kind::kArrive;
  int pe = 0;
  int priority = 0;        // message priority (lower runs first); kArrive only
  std::size_t bytes = 0;   // payload size; kArrive only
  Handler fn;              // kArrive only
};

class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void push(Event e) { heap_.push(std::move(e)); }

  /// Pops the earliest event (ties broken by insertion order).
  Event pop();

  const Event& top() const { return heap_.top(); }

  void clear();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace sim
