// Memory-scaling surface (DESIGN.md §12): first-touch per-PE state lets the
// emulator run million-virtual-PE machines whose workloads touch only a few
// PEs in megabytes, and a full 1M-PE / 4M-chare stencil in a few GiB.
//
// Two modes:
//   * sweep (default / --smoke): a fixed-width 1D periodic stencil swept
//     across machine sizes up to 1M virtual PEs.  Rows carry deterministic
//     counts only (touched PEs, events, virtual makespan, checksum), so the
//     exported series is byte-identical across hosts and CI-gated like every
//     figure surface.  Host memory (structural bytes per touched / idle PE,
//     peak RSS) is printed to stdout and deliberately kept out of the JSON.
//   * --full: the acceptance configuration — P = 1M virtual PEs, W = 4M
//     chares — run once with a memory report; the scale-gate CI job runs it
//     under `ulimit -v` to enforce the footprint ceiling.
//
// Usage: scale [--smoke] [--full] [--stats=FILE] [--trace=FILE]

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using charm::ArrayProxy;
using charm::Callback;
using charm::ReductionResult;

struct ScaleParams {
  std::int32_t width = 0;  ///< cells around the ring
  std::int32_t steps = 0;
  double work_cost = 1e-7;  ///< charged per cell update (virtual seconds)
};

struct GhostMsg {
  std::int32_t step = 0;
  std::int32_t dir = 0;  ///< receiver-side slot: 0 = from left, 1 = from right
  double val = 0;
  void pup(pup::Er& p) {
    p | step;
    p | dir;
    p | val;
  }
};

struct KickMsg {
  void pup(pup::Er&) {}
};

}  // namespace

// 16 packed bytes, no padding: a ghost payload is a single memcpy, and the
// pooled buffer behind each in-flight ghost holds 16 bytes instead of the
// 1 KiB variable-size reservation — the difference between megabytes and
// gigabytes of transient at millions of in-flight messages.
template <>
struct pup::MemCopyable<GhostMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes =
      2 * sizeof(std::int32_t) + sizeof(double);
};

namespace {

/// One stencil cell: self-propelled ghost exchange with its ring neighbours.
/// A neighbour can run at most one step ahead (it needs our step-k ghost to
/// finish step k), so a single stash slot per direction absorbs early ghosts.
class Cell : public charm::ArrayElement<Cell, std::int32_t> {
 public:
  static ScaleParams params;   ///< one run at a time (set by the driver)
  static Callback done_cb;     ///< sum-reduction target

  void start(const KickMsg&) {
    started_ = true;
    val_ = 1e-3 * static_cast<double>(index() % 1009);
    send_ghosts();
    try_advance();
  }

  void recv_ghost(const GhostMsg& m) {
    if (m.step == step_) {
      ghost_[m.dir] = m.val;
      have_[m.dir] = true;
      try_advance();
    } else {
      // m.step == step_ + 1: the neighbour advanced first; stash for later.
      pend_val_[m.dir] = m.val;
      pend_[m.dir] = true;
    }
  }

  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | val_;
    p | step_;
    p | started_;
    for (int d = 0; d < 2; ++d) {
      p | ghost_[d];
      p | have_[d];
      p | pend_val_[d];
      p | pend_[d];
    }
  }

 private:
  void send_ghosts() {
    const std::int32_t w = params.width;
    const std::int32_t i = static_cast<std::int32_t>(index());
    ArrayProxy<Cell, std::int32_t> cells(collection_id());
    // Our value is the right neighbour's left ghost (dir 0) and vice versa.
    cells[(i + 1) % w].send<&Cell::recv_ghost>(GhostMsg{step_, 0, val_});
    cells[(i - 1 + w) % w].send<&Cell::recv_ghost>(GhostMsg{step_, 1, val_});
  }

  void try_advance() {
    while (started_ && have_[0] && have_[1]) {
      val_ = 0.25 * ghost_[0] + 0.5 * val_ + 0.25 * ghost_[1];
      charm::charge(params.work_cost);
      ++step_;
      have_[0] = have_[1] = false;
      if (step_ >= params.steps) {
        contribute(val_, charm::ReduceOp::kSum, done_cb);
        return;
      }
      send_ghosts();
      for (int d = 0; d < 2; ++d) {
        if (pend_[d]) {
          ghost_[d] = pend_val_[d];
          have_[d] = true;
          pend_[d] = false;
        }
      }
    }
  }

  double val_ = 0;
  double ghost_[2] = {0, 0};
  double pend_val_[2] = {0, 0};
  std::int32_t step_ = 0;
  bool have_[2] = {false, false};
  bool pend_[2] = {false, false};
  bool started_ = false;
};

ScaleParams Cell::params;
Callback Cell::done_cb;

struct RunResult {
  std::size_t touched_pes = 0;
  std::uint64_t events = 0;
  double makespan = 0;
  double checksum = 0;
  charm::Runtime::MemoryFootprint footprint{};
  std::size_t peak_event_bytes = 0;
  long seeded_rss_kb = 0;  ///< RSS after element creation, before the run
};

int pe_of(std::int64_t i, std::int64_t w, std::int64_t p) {
  return static_cast<int>(i * p / w);
}

/// Kicks the hosting PE of cell `lo`: starts every cell the PE hosts, then
/// chains the kick to the next hosting PE *from inside the handler*, so the
/// next wave is posted at the sender's advanced virtual clock.  Starting all
/// W cells at t=0 instead would put 2W ghosts in flight at once — at the
/// acceptance scale that is ~8M simultaneous events (a couple of GiB of
/// transient arena/closure/payload state); chaining bounds in-flight to the
/// few waves that fit inside one network latency.
void kick_chain(charm::Runtime& rt, ArrayProxy<Cell, std::int32_t> cells,
                std::int32_t lo, std::int32_t width, int npes) {
  const int pe = pe_of(lo, width, npes);
  rt.on_pe(pe, [&rt, cells, lo, width, npes, pe]() {
    std::int32_t hi = lo + 1;
    while (hi < width && pe_of(hi, width, npes) == pe) ++hi;
    for (std::int32_t i = lo; i < hi; ++i)
      cells[i].send<&Cell::start>(KickMsg{});
    if (hi < width) kick_chain(rt, cells, hi, width, npes);
  });
}

long peak_rss_kb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

/// Runs one (P, W, S) stencil cell of the surface and collects the counts.
RunResult run_column(int npes, std::int32_t width, std::int32_t steps,
                     bool traced) {
  sim::Machine m(bench::machine_config(npes));
  if (traced) bench::attach_trace(m);
  charm::Runtime rt(m);

  Cell::params = ScaleParams{width, steps, 1e-7};
  RunResult res;
  Cell::done_cb = Callback::to_function(
      [&res](ReductionResult&& r) { res.checksum = r.num(0); });

  auto cells = ArrayProxy<Cell, std::int32_t>::create(rt);
  for (std::int32_t i = 0; i < width; ++i)
    cells.seed(i, pe_of(i, width, npes));

  // Kick the first hosting PE; each kick handler chains to the next hosting
  // PE in virtual time (see kick_chain), so no collection-wide broadcast
  // materializes PEs that host nothing and the startup burst never puts the
  // whole ring's ghosts in flight at once.
  kick_chain(rt, cells, 0, width, npes);

  res.seeded_rss_kb = peak_rss_kb();
  m.run();
  res.touched_pes = m.touched_pes();
  res.events = m.events_processed();
  res.makespan = m.max_pe_clock();
  res.footprint = rt.memory_footprint();
  res.peak_event_bytes = m.event_queue_bytes();
  return res;
}

void print_memory(const char* tag, const RunResult& r) {
  // Host-dependent numbers: stdout only, never the stats JSON (the exported
  // series must stay byte-identical across hosts and allocators).
  const auto& f = r.footprint;
  const double per_touched =
      r.touched_pes ? static_cast<double>(f.total()) /
                          static_cast<double>(r.touched_pes)
                    : 0;
  std::printf(
      "   [mem %s] touched=%zu structural=%zu B (pe=%zu coll=%zu evq=%zu) "
      "bytes/touched_pe=%.0f seeded_rss=%ld KiB peak_rss=%ld KiB\n",
      tag, r.touched_pes, f.total(), f.pe_state_bytes, f.collection_bytes,
      f.event_queue_bytes, per_touched, r.seeded_rss_kb, peak_rss_kb());
}

bool g_full = false;
int g_npes = 1 << 20;
std::int32_t g_width = 4 << 20;
std::int32_t g_steps = 3;

const bench::detail::FlagSpec kScaleFlags[] = {
    {"--full", nullptr, nullptr,
     [](const char*) {
       g_full = true;
       return true;
     }},
    {"--npes", "N", "needs a positive PE count",
     [](const char* v) {
       g_npes = std::atoi(v);
       return g_npes > 0;
     }},
    {"--width", "W", "needs a positive cell count",
     [](const char* v) {
       g_width = std::atoi(v);
       return g_width > 0;
     }},
    {"--steps", "S", "needs a positive step count",
     [](const char* v) {
       g_steps = std::atoi(v);
       return g_steps > 0;
     }},
};

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv, kScaleFlags,
                        sizeof(kScaleFlags) / sizeof(kScaleFlags[0])) != 0)
    return 1;

  if (g_full) {
    // Acceptance configuration (default): 1M virtual PEs, 4M chares,
    // footprint-gated by the scale-gate CI job under ulimit -v.
    const int npes = g_npes;
    const std::int32_t width = g_width;
    const std::int32_t steps = g_steps;
    std::printf("== scale --full: P=%d W=%d S=%d ==\n", npes, width, steps);
    const RunResult r = run_column(npes, width, steps, /*traced=*/false);
    print_memory("full", r);
    std::printf("   touched=%zu events=%llu makespan=%.6g ms checksum=%.17g\n",
                r.touched_pes, static_cast<unsigned long long>(r.events),
                r.makespan * 1e3, r.checksum);
    if (r.touched_pes != static_cast<std::size_t>(npes)) {
      std::fprintf(stderr, "scale: expected all %d PEs touched, got %zu\n",
                   npes, r.touched_pes);
      return 1;
    }
    return 0;
  }

  // Overhead-vs-P surface: a fixed stencil swept across machine sizes.  The
  // workload is P-independent above P >= W, so the 64K and 1M columns cost
  // the same events as the small ones — only paging makes them cheap to host.
  const std::int32_t width = bench::smoke() ? 256 : 4096;
  const std::int32_t steps = bench::smoke() ? 4 : 8;
  const std::vector<int> pes = {256, 4096, 65536, 1 << 20};

  bench::header("scale", "first-touch memory scaling, 1D stencil overhead vs P");
  bench::columns({"PEs", "width", "steps", "touched_pes", "events",
                  "makespan_ms", "checksum"});
  for (int npes : pes) {
    const RunResult r = run_column(npes, width, steps, /*traced=*/false);
    bench::row({static_cast<double>(npes), static_cast<double>(width),
                static_cast<double>(steps), static_cast<double>(r.touched_pes),
                static_cast<double>(r.events), r.makespan * 1e3, r.checksum});
    print_memory("sweep", r);
  }
  bench::note("touched_pes stays O(width) as P grows: untouched virtual PEs cost zero bytes");
  bench::note("rows are deterministic counts only; host memory is reported on stdout");

  // A small traced column supplies the per-PE usage rows of the stats JSON
  // (same pattern as taskbench: sweep wide, trace narrow).
  {
    const RunResult r = run_column(8, 64, 4, /*traced=*/true);
    std::printf("   traced column: P=8 width=64 events=%llu checksum=%.17g\n",
                static_cast<unsigned long long>(r.events), r.checksum);
  }
  return bench::finish();
}
