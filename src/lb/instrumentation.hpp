#pragma once
// Per-PE load summaries built from the runtime's automatic per-chare
// instrumentation (§III-A: the RTS records each unit's load in a distributed
// database; strategies and MetaLB consume it).

#include <vector>

#include "runtime/types.hpp"

namespace charm {
class Runtime;
}

namespace charm::lb {

struct PeLoadSummary {
  std::vector<double> per_pe;  ///< accumulated measured load per active PE
  double max = 0;
  double avg = 0;

  double imbalance() const { return avg > 0 ? max / avg : 1.0; }
};

PeLoadSummary summarize_pe_loads(Runtime& rt, const std::vector<CollectionId>& cols);

}  // namespace charm::lb
