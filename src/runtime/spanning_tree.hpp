#pragma once
// k-ary spanning tree over PE ranks, derived locally from arithmetic on the
// rank — no central table, no messages to build it (DESIGN.md §10).
//
// Ranks are *relative* to the root: rel 0 is the root, rel r's parent is
// (r-1)/k and its children are r*k+1 .. r*k+k.  Absolute PE numbers rotate
// around the active-PE ring so any PE can act as root (broadcasts start at
// the calling PE; reductions always root at PE 0, where flat completions
// fire).  Every PE can compute its own parent/children in O(k) — this is the
// structure CharmLite's distributed tree_builder plan points at, and what
// lets collectives cost O(log_k P) messages instead of a flat fan-in.

#include <algorithm>

namespace charm {

struct SpanningTree {
  int npes = 1;   ///< ranks span [0, npes)
  int root = 0;   ///< absolute PE of relative rank 0
  int arity = 2;  ///< k

  constexpr SpanningTree(int npes_, int root_, int arity_)
      : npes(npes_), root(root_), arity(arity_ < 2 ? 2 : arity_) {}

  /// Relative rank of an absolute PE.
  constexpr int rel(int abs_pe) const { return (abs_pe - root + npes) % npes; }
  /// Absolute PE of a relative rank.
  constexpr int abs(int rel_rank) const { return (root + rel_rank) % npes; }

  /// Parent of relative rank r (r > 0).
  constexpr int parent(int r) const { return (r - 1) / arity; }
  /// i-th child (i in [1, arity]) of relative rank r; may be >= npes.
  constexpr long child(int r, int i) const {
    return static_cast<long>(r) * arity + i;
  }
  /// Number of in-range children of relative rank r.
  constexpr int num_children(int r) const {
    int n = 0;
    for (int i = 1; i <= arity; ++i)
      if (child(r, i) < npes) ++n;
    return n;
  }
  /// Depth of relative rank r below the root.
  constexpr int depth(int r) const {
    int d = 0;
    while (r > 0) {
      r = parent(r);
      ++d;
    }
    return d;
  }
  /// Height of the whole tree (max depth over all ranks).
  constexpr int height() const { return depth(npes - 1); }
};

}  // namespace charm
