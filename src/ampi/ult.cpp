#include "ampi/ult.hpp"

#include <cstdint>
#include <stdexcept>

namespace charm::ampi {

Ult::Ult(std::size_t stack_bytes) : stack_(stack_bytes) {}

void Ult::trampoline(unsigned int hi, unsigned int lo) {
  auto* self = reinterpret_cast<Ult*>((static_cast<std::uintptr_t>(hi) << 32) |
                                      static_cast<std::uintptr_t>(lo));
  self->body();
}

void Ult::body() {
  fn_();
  finished_ = true;
  // Return to the scheduler permanently.
  swapcontext(&ctx_, &sched_);
}

void Ult::start(std::function<void()> fn) {
  fn_ = std::move(fn);
  if (getcontext(&ctx_) != 0) throw std::runtime_error("Ult: getcontext failed");
  ctx_.uc_stack.ss_sp = stack_.data();
  ctx_.uc_stack.ss_size = stack_.size();
  ctx_.uc_link = nullptr;
  const auto p = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Ult::trampoline), 2,
              static_cast<unsigned int>(p >> 32),
              static_cast<unsigned int>(p & 0xFFFFFFFFu));
  started_ = true;
}

bool Ult::resume() {
  if (!started_ || finished_) return false;
  if (swapcontext(&sched_, &ctx_) != 0) throw std::runtime_error("Ult: swapcontext failed");
  return !finished_;
}

void Ult::yield() {
  if (swapcontext(&ctx_, &sched_) != 0) throw std::runtime_error("Ult: swapcontext failed");
}

}  // namespace charm::ampi
