#pragma once
// Callbacks: where a reduction result (or any completion signal) goes.
//
// A callback can target an element entry method, a whole-collection
// broadcast, or a driver-side function pinned to a PE.  Function callbacks
// are not puppable and are intended for benchmark drivers / main-chare logic.

#include <functional>
#include <memory>
#include <vector>

#include "pup/pup.hpp"
#include "runtime/index.hpp"
#include "runtime/types.hpp"

namespace charm {

class Runtime;

/// Result of a reduction: elementwise-combined numbers and/or concatenated
/// opaque chunks (used to gather per-contributor records).
struct ReductionResult {
  std::vector<double> nums;
  std::vector<std::vector<std::byte>> chunks;

  double num(std::size_t i = 0) const { return i < nums.size() ? nums[i] : 0.0; }

  template <class P>
  void pup(P& p) {
    p | nums;
    std::uint64_t n = chunks.size();
    p | n;
    if (p.unpacking()) chunks.resize(static_cast<std::size_t>(n));
    for (auto& c : chunks) p | c;
  }
};

class Callback {
 public:
  Callback() = default;

  static Callback ignore() { return Callback(); }

  /// Deliver the result to `fn` on PE `pe` (driver-side; not puppable).
  static Callback to_function(std::function<void(ReductionResult&&)> fn, int pe = 0) {
    Callback cb;
    cb.kind_ = Kind::kFunction;
    cb.pe_ = pe;
    cb.fn_ = std::make_shared<std::function<void(ReductionResult&&)>>(std::move(fn));
    return cb;
  }

  /// Deliver to an entry method `void f(const ReductionResult&)` on one element.
  static Callback to_element(CollectionId col, ObjIndex idx, EntryId ep,
                             int priority = kDefaultPriority) {
    Callback cb;
    cb.kind_ = Kind::kElement;
    cb.col_ = col;
    cb.idx_ = idx;
    cb.ep_ = ep;
    cb.priority_ = priority;
    return cb;
  }

  /// Broadcast the result to every element of a collection.
  static Callback to_broadcast(CollectionId col, EntryId ep,
                               int priority = kDefaultPriority) {
    Callback cb;
    cb.kind_ = Kind::kBroadcast;
    cb.col_ = col;
    cb.ep_ = ep;
    cb.priority_ = priority;
    return cb;
  }

  bool valid() const { return kind_ != Kind::kIgnore; }

  /// Route the result (defined in callback.cpp; issues real messages).
  void invoke(Runtime& rt, ReductionResult&& result) const;

 private:
  enum class Kind : std::uint8_t { kIgnore, kFunction, kElement, kBroadcast };

  Kind kind_ = Kind::kIgnore;
  CollectionId col_ = -1;
  ObjIndex idx_{};
  EntryId ep_ = -1;
  int pe_ = 0;
  int priority_ = kDefaultPriority;
  std::shared_ptr<std::function<void(ReductionResult&&)>> fn_;
};

}  // namespace charm
