# Empty dependencies file for jacobi2d.
# This may be replaced when dependencies are built.
