#pragma once
// Typed proxies: the user-facing handles for chare arrays and groups.
//
//   auto cells = charm::ArrayProxy<Cell, Index3D>::create(rt);
//   cells.seed({x,y,z}, pe, ctor_arg);             // initial placement
//   cells[{x,y,z}].send<&Cell::accept>(msg);       // async entry invocation
//   cells.broadcast<&Cell::start>(params);
//
// Proxies are small puppable values (a CollectionId) — chares store and ship
// them freely, exactly like Charm++ proxies.

#include <memory>
#include <type_traits>
#include <utility>

#include "runtime/registry.hpp"
#include "runtime/runtime.hpp"

namespace charm {

template <class C, class Ix>
class ElementRef {
 public:
  ElementRef() = default;
  ElementRef(CollectionId col, Ix ix) : col_(col), ix_(ix) {}

  /// Asynchronously invoke entry method `Mfp` with a pup-able argument.
  /// Same-PE destinations take the typed fast path (no pack/unpack); an
  /// rvalue argument is moved all the way into the delivery slot.
  template <auto Mfp>
  void send(const typename detail::MfpTraits<decltype(Mfp)>::Argument& arg,
            int priority = kDefaultPriority) const {
    Runtime::current().send_typed(col_, IndexTraits<Ix>::encode(ix_),
                                  Registry::entry_of<Mfp>(),
                                  Registry::direct_invoker<Mfp>(), arg, priority);
  }

  template <auto Mfp>
  void send(typename detail::MfpTraits<decltype(Mfp)>::Argument&& arg,
            int priority = kDefaultPriority) const {
    Runtime::current().send_typed(col_, IndexTraits<Ix>::encode(ix_),
                                  Registry::entry_of<Mfp>(),
                                  Registry::direct_invoker<Mfp>(), std::move(arg),
                                  priority);
  }

  /// Asynchronously invoke a no-argument entry method.
  template <auto Mfp>
  void send(int priority = kDefaultPriority) const {
    Runtime::current().send_point(col_, IndexTraits<Ix>::encode(ix_),
                                  Registry::entry_of<Mfp>(), {}, priority);
  }

  /// Callback delivering a ReductionResult to `void C::m(const ReductionResult&)`.
  template <auto Mfp>
  Callback callback(int priority = kDefaultPriority) const {
    return Callback::to_element(col_, IndexTraits<Ix>::encode(ix_),
                                Registry::entry_of<Mfp>(), priority);
  }

  Ix index() const { return ix_; }
  CollectionId collection_id() const { return col_; }

  template <class P>
  void pup(P& p) {
    p | col_;
    ObjIndex o = IndexTraits<Ix>::encode(ix_);
    p | o;
    if (p.unpacking()) ix_ = IndexTraits<Ix>::decode(o);
  }

 private:
  CollectionId col_ = -1;
  Ix ix_{};
};

template <class C, class Ix = std::int32_t>
class ArrayProxy {
 public:
  using Element = C;
  using Index = Ix;

  ArrayProxy() = default;
  explicit ArrayProxy(CollectionId col) : col_(col) {}

  /// Creates an empty chare array.
  static ArrayProxy create(Runtime& rt, bool record_comm = false) {
    const CollectionId id = rt.create_collection(Registry::type_of<C>(), /*is_group=*/false);
    rt.collection(id).record_comm = record_comm;
    return ArrayProxy(id);
  }

  ElementRef<C, Ix> operator[](const Ix& ix) const { return ElementRef<C, Ix>(col_, ix); }

  /// Direct initial placement (setup/restart; no messages modeled).
  template <class... Args>
  void seed(const Ix& ix, int pe, Args&&... args) const {
    Runtime::current().seed_element(col_, IndexTraits<Ix>::encode(ix),
                                    std::make_unique<C>(std::forward<Args>(args)...), pe);
  }

  /// Dynamic insertion via a creation message: C must be constructible from
  /// `const Arg&` (AMR inserts refined blocks this way).
  template <class Arg>
  void insert(const Ix& ix, const Arg& ctor_arg, int pe_hint = kInvalidPe,
              int priority = kDefaultPriority) const {
    Runtime& rt = Runtime::current();
    rt.insert_element(col_, IndexTraits<Ix>::encode(ix),
                      Registry::creator_of<C, Arg>(), rt.pack_pooled(ctor_arg),
                      pe_hint, priority);
  }

  template <auto Mfp, class Arg>
  void broadcast(const Arg& arg, int priority = kDefaultPriority) const {
    Runtime::current().broadcast(col_, Registry::entry_of<Mfp>(),
                                 pup::to_bytes(arg), priority);
  }

  template <auto Mfp>
  void broadcast(int priority = kDefaultPriority) const {
    Runtime::current().broadcast(col_, Registry::entry_of<Mfp>(), {}, priority);
  }

  /// Callback broadcasting the reduction result to every element.
  template <auto Mfp>
  Callback bcast_callback(int priority = kDefaultPriority) const {
    return Callback::to_broadcast(col_, Registry::entry_of<Mfp>(), priority);
  }

  CollectionId id() const { return col_; }
  bool valid() const { return col_ >= 0; }

  template <class P>
  void pup(P& p) {
    p | col_;
  }

 private:
  CollectionId col_ = -1;
};

/// Groups: one element per PE, indexed by PE id, never migrated.
template <class G>
class GroupProxy {
 public:
  GroupProxy() = default;
  explicit GroupProxy(CollectionId col) : col_(col) {}

  /// `factory(pe)` constructs the per-PE instance.
  template <class Factory>
  static GroupProxy create(Runtime& rt, Factory&& factory) {
    const CollectionId id = rt.create_collection(Registry::type_of<G>(), /*is_group=*/true);
    for (int pe = 0; pe < rt.npes(); ++pe) {
      rt.seed_element(id, IndexTraits<std::int32_t>::encode(static_cast<std::int32_t>(pe)),
                      factory(pe), pe);
    }
    return GroupProxy(id);
  }

  /// Default-construct the per-PE instances.
  static GroupProxy create(Runtime& rt) {
    return create(rt, [](int) { return std::make_unique<G>(); });
  }

  ElementRef<G, std::int32_t> on(int pe) const {
    return ElementRef<G, std::int32_t>(col_, static_cast<std::int32_t>(pe));
  }

  template <auto Mfp, class Arg>
  void broadcast(const Arg& arg, int priority = kDefaultPriority) const {
    Runtime::current().broadcast(col_, Registry::entry_of<Mfp>(),
                                 pup::to_bytes(arg), priority);
  }

  template <auto Mfp>
  void broadcast(int priority = kDefaultPriority) const {
    Runtime::current().broadcast(col_, Registry::entry_of<Mfp>(), {}, priority);
  }

  CollectionId id() const { return col_; }
  template <class P>
  void pup(P& p) {
    p | col_;
  }

 private:
  CollectionId col_ = -1;
};

}  // namespace charm
