# Empty dependencies file for fig17_cloud_leanmd.
# This may be replaced when dependencies are built.
