#pragma once
// Shared helpers for the figure-reproduction benches: machine construction
// and paper-style table output.  Every bench prints the series the paper
// plots; EXPERIMENTS.md records the paper-vs-measured comparison.

#include <cstdio>
#include <string>
#include <vector>

#include "runtime/charm.hpp"

namespace bench {

inline sim::MachineConfig machine_config(int npes,
                                         sim::NetworkParams net = sim::NetworkParams::bluegene_q(),
                                         int pes_per_chip = 4) {
  sim::MachineConfig cfg;
  cfg.npes = npes;
  cfg.net = net;
  cfg.pes_per_chip = pes_per_chip;
  return cfg;
}

inline void header(const std::string& fig, const std::string& title) {
  std::printf("\n== %s: %s ==\n", fig.c_str(), title.c_str());
}

inline void columns(const std::vector<std::string>& names) {
  for (const auto& n : names) std::printf("%16s", n.c_str());
  std::printf("\n");
}

inline void row(const std::vector<double>& values) {
  for (double v : values) std::printf("%16.6g", v);
  std::printf("\n");
}

inline void note(const std::string& s) { std::printf("   %s\n", s.c_str()); }

/// Runs the machine to completion and returns the makespan in virtual seconds.
inline double run_to_completion(sim::Machine& m) {
  m.run();
  return m.max_pe_clock();
}

}  // namespace bench
