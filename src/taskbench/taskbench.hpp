#pragma once
// Task Bench-style dependency-graph workload generator (after the Charm++/
// HPX Task Bench study, arXiv 2207.12127).  Where each figure bench pins one
// point in scenario space, this miniapp sweeps a whole surface: a
// `width`-point-wide, `steps`-deep task graph whose step-to-step dependence
// pattern, per-task grain (busy-work virtual seconds), fan-out, and payload
// size are all parameters.  Every cell runs through the normal runtime
// machinery — typed point sends (or a TRAM stream), a broadcast kick-off, a
// reduction finish — so per-task/per-message runtime overhead is measured on
// the real hot paths, in the fine-grain/high-fan-out regimes no paper figure
// exercises.
//
// The derived metric follows the Task Bench METG methodology: with P PEs and
// block placement, the busiest PE owns ceil(width/P) tasks per step and
// steps are dependence-ordered, so
//
//   ideal makespan = grain * steps * ceil(width / P)
//
// is a true lower bound on the achieved makespan.  The surplus, spread over
// the executed tasks, is the runtime's per-task overhead:
//
//   overhead_per_task = (makespan - ideal) * P / (width * steps)
//
// It converges to the fixed per-message cost as grain grows (efficiency
// -> 1) and exposes hot-path regressions directly when grain is small.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/charm.hpp"
#include "runtime/dep_gather.hpp"
#include "tram/tram.hpp"

namespace charm::taskbench {

/// Step-to-step dependence patterns (Task Bench's catalogue, 1-D forms).
enum class Pattern : std::uint8_t {
  kStencil1D,  ///< deps of i: {i-1, i, i+1} clipped to [0, width)
  kFft,        ///< butterfly: {i, i ^ 2^((t-1) mod ceil(log2 width))}
  kTree,       ///< k-ary tree, up-sweep on odd steps / down-sweep on even
  kSweep,      ///< wavefront: {i-1, i} clipped
  kRandom,     ///< {i} + (fanout-1) seeded uniform draws, deduplicated
};

const char* to_string(Pattern p);
/// Parses "stencil_1d", "fft", "tree", "sweep", "random"; false on no match.
bool parse_pattern(const char* name, Pattern* out);

struct Params {
  Pattern pattern = Pattern::kStencil1D;
  int width = 64;           ///< tasks per timestep
  int steps = 16;           ///< timesteps (graph depth)
  double grain = 1e-6;      ///< busy-work virtual seconds per task
  int payload_doubles = 8;  ///< doubles carried per dependence edge
  int fanout = 4;           ///< tree arity / random dependence count
  std::uint64_t seed = 1;   ///< kRandom graph seed
  bool use_tram = false;    ///< route edges through a TRAM stream
  int tram_buffer = 8;      ///< TRAM per-peer flush threshold (items)

  template <class P>
  void pup(P& p) {
    p | pattern;
    p | width;
    p | steps;
    p | grain;
    p | payload_doubles;
    p | fanout;
    p | seed;
    p | use_tram;
    p | tram_buffer;
  }
};

// ---- graph shape (closed-form mirror of what each task computes) -----------

/// Dependences of point `i` at timestep `t` (t >= 1; step 0 has none).
/// Sorted, unique; always contains i itself.
void deps_of(const Params& p, int t, int i, std::vector<int>* out);
/// Points at step t+1 that depend on point `i` executing step `t`
/// (the messages task (t, i) must send).  Sorted, unique.
void dependents_of(const Params& p, int t, int i, std::vector<int>* out);
/// Total task executions: width * steps.
std::uint64_t task_count(const Params& p);
/// Total dependence edges over steps 1..steps-1 (kRandom: by enumeration).
std::uint64_t edge_count(const Params& p);

// ---- the chare -------------------------------------------------------------

struct TaskMsg {
  std::int32_t step = 0;  ///< destination timestep
  std::int32_t src = 0;   ///< sending point
  std::vector<double> data;

  template <class P>
  void pup(P& p) {
    p | step;
    p | src;
    p | data;
  }
};

class Task : public charm::ArrayElement<Task, std::int32_t> {
 public:
  Task() = default;
  Task(const Params& p, ArrayProxy<Task, std::int32_t> peers);

  void begin();                 ///< broadcast kick-off: executes step 0
  void input(const TaskMsg& m); ///< one dependence edge arriving

  void pup(pup::Er& p) override;

  int executed() const { return executed_; }
  std::uint64_t inputs_received() const { return inputs_; }

  /// Reduction target for {executed, inputs} once every task finishes.
  static Callback done_cb;
  /// Set by run_cell while a TRAM-transport cell is in flight.
  static std::optional<tram::Stream<&Task::input>> tram_stream;

 private:
  void run_step();

  Params p_{};
  ArrayProxy<Task, std::int32_t> peers_;
  DepGather<TaskMsg> gather_;
  int executed_ = 0;
  std::uint64_t inputs_ = 0;
  double acc_ = 0;  ///< data actually flows: running sum of received payloads
};

// ---- one sweep cell --------------------------------------------------------

/// Result of one (pattern x grain x P) cell.
struct CellResult {
  std::uint64_t tasks = 0;     ///< width * steps (closed form)
  std::uint64_t edges = 0;     ///< edge_count(p) (closed form)
  double executed = 0;         ///< task executions observed by the reduction
  double inputs = 0;           ///< edge messages observed by the reduction
  std::uint64_t msgs = 0;      ///< runtime messages the cell sent
  std::uint64_t bytes = 0;     ///< runtime bytes the cell sent
  double makespan = 0;         ///< achieved virtual makespan (s)
  double ideal = 0;            ///< grain * steps * ceil(width/P) (s)
  double efficiency = 0;       ///< ideal / makespan
  double overhead_per_task = 0;///< (makespan - ideal) * P / tasks (s)
  double tram_aggregation = 0; ///< mean items per TRAM batch (0 off-TRAM)

  /// Every task executed every step and every edge arrived.
  bool complete() const {
    return executed == static_cast<double>(tasks) &&
           inputs == static_cast<double>(edges);
  }
};

/// Runs one cell to completion on a fresh Runtime (drives machine().run()).
CellResult run_cell(Runtime& rt, const Params& p);

}  // namespace charm::taskbench
