#include "power/power_manager.hpp"

#include "lb/manager.hpp"

#include <algorithm>

namespace charm::power {

Manager::Manager(Runtime& rt, ThermalParams thermal, DvfsParams dvfs, double period_s)
    : rt_(rt),
      dvfs_(dvfs),
      period_(period_s),
      pes_per_chip_(rt.machine().config().pes_per_chip),
      model_((rt.npes() + pes_per_chip_ - 1) / pes_per_chip_, thermal),
      last_busy_(static_cast<std::size_t>(rt.npes()), 0.0),
      level_(static_cast<std::size_t>(model_.nchips()),
             static_cast<int>(dvfs.levels.size()) - 1) {}

void Manager::start(Policy policy, double lb_period_s) {
  policy_ = policy;
  lb_period_ = lb_period_s;
  last_lb_ = rt_.now();
  running_ = true;
  for (int pe = 0; pe < rt_.npes(); ++pe)
    last_busy_[static_cast<std::size_t>(pe)] = rt_.machine().pe(pe).busy_time();
  rt_.after(0, period_, [this] { tick(); });
}

void Manager::tick() {
  if (!running_ || rt_.machine().stopped()) return;
  // Self-terminate once the application has drained (only this timer left);
  // otherwise the periodic timer would keep the machine alive forever.
  if (rt_.outstanding() == 0 && rt_.machine().pending_events() <= 1) return;

  // Per-chip utilization over the last period from the PEs' busy counters.
  for (int chip = 0; chip < model_.nchips(); ++chip) {
    double busy = 0;
    double freq = 0;
    int members = 0;
    for (int pe = chip * pes_per_chip_;
         pe < std::min((chip + 1) * pes_per_chip_, rt_.npes()); ++pe) {
      const double b = rt_.machine().pe(pe).busy_time();
      busy += b - last_busy_[static_cast<std::size_t>(pe)];
      last_busy_[static_cast<std::size_t>(pe)] = b;
      freq += rt_.machine().pe(pe).freq();
      ++members;
    }
    const double util = std::clamp(busy / (period_ * members), 0.0, 1.0);
    model_.step(chip, period_, util, freq / members);
  }

  if (policy_ != Policy::kNone) apply_dvfs();

  if (policy_ == Policy::kDvfsLb && lb_period_ > 0 &&
      rt_.now() - last_lb_ >= lb_period_) {
    last_lb_ = rt_.now();
    rt_.lb().request_lb();
  }
  // kMetaTemp: the MetaLB advisor installed on the LB manager decides.

  rt_.after(0, period_, [this] { tick(); });
}

void Manager::apply_dvfs() {
  for (int chip = 0; chip < model_.nchips(); ++chip) {
    int& lvl = level_[static_cast<std::size_t>(chip)];
    const double t = model_.temperature(chip);
    if (t > dvfs_.threshold_c && lvl > 0) {
      --lvl;
      ++throttles_;
    } else if (t < dvfs_.threshold_c - dvfs_.margin_c &&
               lvl + 1 < static_cast<int>(dvfs_.levels.size())) {
      ++lvl;
    }
    const double f = dvfs_.levels[static_cast<std::size_t>(lvl)];
    for (int pe = chip * pes_per_chip_;
         pe < std::min((chip + 1) * pes_per_chip_, rt_.npes()); ++pe) {
      rt_.machine().pe(pe).set_freq(f);
    }
  }
}

}  // namespace charm::power
