#pragma once
// Global future-event list for the machine emulator: an indexed 4-ary
// min-heap over (time, seq).  The seq tie-break makes the whole simulation
// deterministic — (time, seq) is a total order, so any correct heap pops the
// exact same event sequence.
//
// Layout: the heap orders small POD keys {time, seq·slot}; the events
// themselves (which carry an inline UniqueFn closure, so moving one is an
// indirect call plus a buffer copy) live in a chunked slot arena with a free
// list and are moved exactly twice — into their slot at push and out at pop.
// Sifts touch only 16-byte keys, the 4-ary layout halves the tree depth
// versus a binary heap, and pop() hands the event out by value (the old
// std::priority_queue forced a const_cast to steal the top element).  The
// arena grows chunk by chunk with stable addresses, so a burst of traffic
// never triggers a realloc that would move every pending event.  clear()
// is O(live events) instead of n pops, and chunks are retained across
// clears so the steady state never allocates.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/unique_fn.hpp"

namespace sim {

using Time = double;
using Handler = UniqueFn;

struct Event {
  enum class Kind : std::uint8_t { kArrive, kExec };

  Time time = 0;
  std::uint64_t seq = 0;
  Kind kind = Kind::kArrive;
  int pe = 0;
  int priority = 0;        // message priority (lower runs first); kArrive only
  std::size_t bytes = 0;   // payload size; kArrive only
  Handler fn;              // kArrive only
};

class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void push(Event e);

  /// Allocates an arena slot and heap key for an event at (time, seq), fills
  /// in the POD fields, and returns the slot so the caller can move the
  /// handler straight in (one Handler move instead of three).  The returned
  /// reference is valid only until the next push/emplace; the handler slot is
  /// guaranteed empty on return.
  Event& emplace(Time time, std::uint64_t seq, Event::Kind kind, int pe,
                 int priority, std::size_t bytes);

  /// Pops the earliest event (ties broken by insertion order), moving it out
  /// of its arena slot.
  Event pop();

  const Event& top() const {
    return slot_ref(static_cast<std::uint32_t>(heap_.front().seq_slot & kSlotMask));
  }

  /// Mutable access to the top event, so the consumer can move the handler
  /// out of the arena slot directly before pop_top().
  Event& top_mutable() {
    return slot_ref(static_cast<std::uint32_t>(heap_.front().seq_slot & kSlotMask));
  }

  /// Removes the top event; anything left in its handler slot is destroyed.
  void pop_top();

  /// Drops all pending events in one pass (no per-element re-heapify).
  /// Arena chunks are retained for reuse.
  void clear();

  /// Pre-sizes the key heap and slot arena.  Safe mid-run (the arena only
  /// appends chunks; addresses are stable), so Machine can grow the
  /// reservation as the touched-PE population grows instead of paying for
  /// the configured P up front.
  void reserve(std::size_t n);

  /// Host bytes resident in the heap, arena chunks, and free list.
  std::size_t memory_bytes() const {
    return heap_.capacity() * sizeof(Key) +
           chunks_.size() * ((std::size_t{1} << kChunkShift) * sizeof(Event)) +
           chunks_.capacity() * sizeof(chunks_[0]) +
           free_slots_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::size_t kArity = 4;

  // 16-byte heap key: the arena slot index rides in the low bits of the
  // packed word, under the (unique, monotone) sequence number.  Comparing
  // the packed words orders by seq alone — the slot bits can never decide a
  // comparison because no two keys share a seq.  40 bits of seq (~10^12
  // events per machine) and 24 bits of slot (~16M simultaneously pending
  // events) are far beyond anything the emulator runs; debug asserts in
  // emplace() guard both limits.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;

  struct Key {
    Time time;
    std::uint64_t seq_slot;  // (seq << kSlotBits) | slot
  };

  static bool earlier(const Key& a, const Key& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq_slot < b.seq_slot;
  }

  // Chunked arena: fixed-size chunks give every event a stable address, so
  // arena growth allocates one chunk instead of moving every pending event
  // (Event moves run the closure's relocate hook — an indirect call each).
  static constexpr unsigned kChunkShift = 8;  // 256 events per chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;

  Event& slot_ref(std::uint32_t s) {
    return chunks_[s >> kChunkShift][s & kChunkMask];
  }
  const Event& slot_ref(std::uint32_t s) const {
    return chunks_[s >> kChunkShift][s & kChunkMask];
  }

  std::uint32_t acquire_slot();

  std::vector<Key> heap_;
  std::vector<std::unique_ptr<Event[]>> chunks_;
  std::uint32_t slot_count_ = 0;  // slots handed out so far (high-water mark)
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace sim
