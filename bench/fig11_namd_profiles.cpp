// Fig 11: NAMD 100M-atom strong scaling on Titan XK7 vs Jaguar XT5.
//
// Our stand-in: the LeanMD mini-app (the paper itself frames LeanMD as the
// non-bonded kernel of NAMD) on two machine profiles — a Gemini-class
// interconnect (XK7) vs a SeaStar-class one (XT5).  The expected shape:
// both scale; the newer interconnect is faster and scales further before the
// communication floor bends the curve.

#include "bench_common.hpp"
#include "miniapps/leanmd/leanmd.hpp"

namespace {

using namespace charm;

double time_per_step(int npes, const sim::NetworkParams& net) {
  sim::Machine m(bench::machine_config(npes, net));
  bench::attach_trace(m);
  Runtime rt(m);
  leanmd::Params p;
  p.nx = p.ny = p.nz = bench::smoke() ? 4 : 8;  // 512 cells, ~7.4k computes ("100M-atom" analogue)
  p.atoms_per_cell = 24;
  p.pair_cost = 20e-9;
  p.epsilon = 1e-6;
  leanmd::Simulation sim(rt, p);
  rt.lb().set_strategy(lb::make_refine(1.08));
  rt.lb().set_period(5);
  const int steps = bench::cap_steps(6, 3);
  bool done = false;
  rt.on_pe(0, [&] {
    sim.run(steps, Callback::to_function([&](ReductionResult&&) {
      done = true;
      rt.exit();
    }));
  });
  m.run();
  if (!done) std::printf("   WARNING: run did not complete (P=%d)\n", npes);
  return m.max_pe_clock() / steps;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 11", "NAMD-style strong scaling on two machine profiles");
  bench::columns({"PEs", "XK7-like_ms", "XT5-like_ms"});
  int profile_pes = 0;
  for (int p : bench::pe_series({16, 32, 64, 128, 256})) {
    bench::row({static_cast<double>(p), time_per_step(p, sim::NetworkParams::cray_gemini()) * 1e3,
                time_per_step(p, sim::NetworkParams::cray_seastar()) * 1e3});
    profile_pes = p;
  }
  bench::note("paper shape: both machines scale to the full system; the XK7 curve sits below");
  bench::note("the XT5 curve and keeps scaling where XT5's communication floor flattens it");
  // Fig 11's other panel is the Projections time profile of one run: the
  // last traced machine (XT5-like at the largest PE count) binned into
  // busy / overhead / idle utilization fractions.
  bench::print_time_profile(profile_pes, 20);
  return bench::finish();
}
