#pragma once
// Chrome trace_event JSON exporter: any traced run can be opened in
// chrome://tracing or https://ui.perfetto.dev.  Each PE becomes a thread
// (tid) of one process; exec/entry/idle/phase spans are complete ("X")
// events, message sends become flow ("s"/"f") arrows, and queue waits
// become "X" spans in a "queue" category.

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace trace {

/// Maps (collection id, entry id) to a display name for entry spans.
/// Default labels are "col<c>.ep<e>".
using EntryLabeler = std::function<std::string(int col, int ep)>;

void write_chrome_trace(const std::vector<Event>& events, std::ostream& os,
                        const EntryLabeler& label = {});

/// Returns false (and writes nothing) if the file cannot be opened.
bool write_chrome_trace_file(const std::vector<Event>& events, const std::string& path,
                             const EntryLabeler& label = {});

inline bool write_chrome_trace_file(const Tracer& tracer, const std::string& path,
                                    const EntryLabeler& label = {}) {
  return write_chrome_trace_file(tracer.events(), path, label);
}

}  // namespace trace
