// Reductions, callbacks, and quiescence-detection tests.

#include <gtest/gtest.h>

#include "runtime/charm.hpp"

#include "test_util.hpp"

namespace {

using charm::ArrayProxy;
using charm::Callback;
using charm::ReduceOp;
using charm::ReductionResult;

struct StartMsg {
  int rounds = 1;
  void pup(pup::Er& p) { p | rounds; }
};

class Contributor : public charm::ArrayElement<Contributor, std::int32_t> {
 public:
  int results_seen = 0;
  double last_result = 0;

  void add(const StartMsg&) { contribute(static_cast<double>(index()), ReduceOp::kSum, cb); }
  void take_min(const StartMsg&) {
    contribute(static_cast<double>(index()), ReduceOp::kMin, cb);
  }
  void take_max(const StartMsg&) {
    contribute(static_cast<double>(index()), ReduceOp::kMax, cb);
  }
  void vector_sum(const StartMsg&) {
    contribute(std::vector<double>{1.0, static_cast<double>(index())}, ReduceOp::kSum, cb);
  }
  void gather(const StartMsg&) {
    std::vector<double> mine{static_cast<double>(index())};
    contribute_bytes(pup::to_bytes(mine), cb);
  }
  void barrier_only(const StartMsg&) { contribute(cb); }
  void on_result(const ReductionResult& r) {
    ++results_seen;
    last_result = r.num(0);
  }

  static Callback cb;

  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | results_seen;
    p | last_result;
  }
};

Callback Contributor::cb;

using charmtest::Harness;

ArrayProxy<Contributor> make_array(Harness& h, int n) {
  auto arr = ArrayProxy<Contributor>::create(h.rt);
  for (int i = 0; i < n; ++i) arr.seed(i, i % h.rt.npes());
  return arr;
}

TEST(Reduction, SumOverAllElements) {
  Harness h(4);
  auto arr = make_array(h, 32);
  double result = -1;
  Contributor::cb = Callback::to_function([&](ReductionResult&& r) { result = r.num(0); });
  h.rt.on_pe(0, [&] { arr.broadcast<&Contributor::add>(StartMsg{}); });
  h.machine.run();
  EXPECT_EQ(result, 31.0 * 32 / 2);
}

TEST(Reduction, MinAndMax) {
  Harness h(4);
  auto arr = make_array(h, 17);
  double result = -1;
  Contributor::cb = Callback::to_function([&](ReductionResult&& r) { result = r.num(0); });
  h.rt.on_pe(0, [&] { arr.broadcast<&Contributor::take_min>(StartMsg{}); });
  h.machine.run();
  EXPECT_EQ(result, 0.0);

  h.machine.resume();
  h.rt.on_pe(0, [&] { arr.broadcast<&Contributor::take_max>(StartMsg{}); });
  h.machine.run();
  EXPECT_EQ(result, 16.0);
}

TEST(Reduction, ElementwiseVectorSum) {
  Harness h(3);
  auto arr = make_array(h, 10);
  std::vector<double> result;
  Contributor::cb = Callback::to_function([&](ReductionResult&& r) { result = r.nums; });
  h.rt.on_pe(0, [&] { arr.broadcast<&Contributor::vector_sum>(StartMsg{}); });
  h.machine.run();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], 10.0);   // count
  EXPECT_EQ(result[1], 45.0);  // sum of indices
}

TEST(Reduction, ConcatGathersAllChunks) {
  Harness h(4);
  auto arr = make_array(h, 12);
  std::vector<double> gathered;
  Contributor::cb = Callback::to_function([&](ReductionResult&& r) {
    for (auto& chunk : r.chunks) {
      std::vector<double> v;
      pup::from_bytes(chunk, v);
      gathered.insert(gathered.end(), v.begin(), v.end());
    }
  });
  h.rt.on_pe(0, [&] { arr.broadcast<&Contributor::gather>(StartMsg{}); });
  h.machine.run();
  ASSERT_EQ(gathered.size(), 12u);
  std::sort(gathered.begin(), gathered.end());
  for (int i = 0; i < 12; ++i) EXPECT_EQ(gathered[static_cast<std::size_t>(i)], i);
}

TEST(Reduction, BarrierCountOnly) {
  Harness h(4);
  auto arr = make_array(h, 9);
  bool fired = false;
  Contributor::cb = Callback::to_function([&](ReductionResult&&) { fired = true; });
  h.rt.on_pe(0, [&] { arr.broadcast<&Contributor::barrier_only>(StartMsg{}); });
  h.machine.run();
  EXPECT_TRUE(fired);
}

TEST(Reduction, CallbackToBroadcastDeliversToEveryElement) {
  Harness h(4);
  auto arr = make_array(h, 8);
  Contributor::cb = arr.bcast_callback<&Contributor::on_result>();
  h.rt.on_pe(0, [&] { arr.broadcast<&Contributor::add>(StartMsg{}); });
  h.machine.run();
  for (int i = 0; i < 8; ++i) {
    auto* c = static_cast<Contributor*>(
        h.rt.collection(arr.id()).find(i % 4, charm::IndexTraits<std::int32_t>::encode(i)));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->results_seen, 1);
    EXPECT_EQ(c->last_result, 28.0);
  }
}

TEST(Reduction, CallbackToSingleElement) {
  Harness h(4);
  auto arr = make_array(h, 8);
  Contributor::cb = arr[3].callback<&Contributor::on_result>();
  h.rt.on_pe(0, [&] { arr.broadcast<&Contributor::add>(StartMsg{}); });
  h.machine.run();
  int total_seen = 0;
  for (int i = 0; i < 8; ++i) {
    auto* c = static_cast<Contributor*>(
        h.rt.collection(arr.id()).find(i % 4, charm::IndexTraits<std::int32_t>::encode(i)));
    total_seen += c->results_seen;
  }
  EXPECT_EQ(total_seen, 1);
}

TEST(Reduction, SequentialReductionsKeepOrder) {
  Harness h(2);
  auto arr = make_array(h, 6);
  std::vector<double> results;
  Contributor::cb = Callback::to_function([&](ReductionResult&& r) {
    results.push_back(r.num(0));
  });
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Contributor::add>(StartMsg{});
    arr.broadcast<&Contributor::take_max>(StartMsg{});
    arr.broadcast<&Contributor::take_min>(StartMsg{});
  });
  h.machine.run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], 15.0);
  EXPECT_EQ(results[1], 5.0);
  EXPECT_EQ(results[2], 0.0);
}

TEST(Reduction, LatencyGrowsWithPeCount) {
  // The modeled combine tree is logarithmic in P.
  auto reduce_time = [](int npes) {
    Harness h(npes);
    auto arr = ArrayProxy<Contributor>::create(h.rt);
    for (int i = 0; i < npes; ++i) arr.seed(i, i);
    double done_at = -1;
    Contributor::cb =
        Callback::to_function([&](ReductionResult&&) { done_at = charm::now(); });
    h.rt.on_pe(0, [&] { arr.broadcast<&Contributor::add>(StartMsg{}); });
    h.machine.run();
    return done_at;
  };
  EXPECT_LT(reduce_time(4), reduce_time(256));
}

TEST(Quiescence, FiresImmediatelyWhenIdle) {
  Harness h(2);
  bool fired = false;
  h.rt.on_pe(0, [&] {
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) { fired = true; }));
  });
  h.machine.run();
  EXPECT_TRUE(fired);
}

TEST(Quiescence, WaitsForReductionCallbacks) {
  Harness h(4);
  auto arr = make_array(h, 16);
  bool reduced = false;
  bool qd_after_reduction = false;
  Contributor::cb = Callback::to_function([&](ReductionResult&&) { reduced = true; });
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Contributor::add>(StartMsg{});
    h.rt.start_quiescence(Callback::to_function(
        [&](ReductionResult&&) { qd_after_reduction = reduced; }));
  });
  h.machine.run();
  EXPECT_TRUE(qd_after_reduction);
}

}  // namespace
