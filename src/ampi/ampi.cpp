#include "ampi/ampi.hpp"

#include <stdexcept>

namespace charm::ampi {

// ---- World ---------------------------------------------------------------------

World::World(Runtime& rt, int nranks, MainFn main, Options opts)
    : rt_(rt), state_(std::make_shared<detail::WorldState>()) {
  state_->nranks = nranks;
  state_->opts = opts;
  state_->main = std::move(main);

  auto proxy = ArrayProxy<Rank, std::int32_t>::create(rt);
  state_->col = proxy.id();
  Collection& c = rt.collection(proxy.id());
  c.raw_move = true;          // ULT stacks move as live objects
  c.checkpointable = false;   // stacks cannot be byte-serialized
  for (int r = 0; r < nranks; ++r) {
    proxy.seed(static_cast<std::int32_t>(r), initial_pe(r), state_);
  }
  rt.lb().register_collection(proxy.id());
}

int World::initial_pe(int rank) const {
  // Blocked mapping: consecutive ranks share a PE (virtualization).
  return static_cast<int>(static_cast<long>(rank) * rt_.active_pes() / state_->nranks);
}

void World::start(Callback on_complete) {
  state_->on_complete = std::move(on_complete);
  ArrayProxy<Rank, std::int32_t> proxy(state_->col);
  proxy.broadcast<&Rank::begin>(StartMsg{});
}

// ---- Rank ----------------------------------------------------------------------

Rank::Rank(std::shared_ptr<detail::WorldState> state) : state_(std::move(state)) {}

void Rank::pup(pup::Er& p) {
  ArrayElementBase::pup(p);
  // Raw-move collection: this is only reached by FT tooling misuse.
  if (!p.sizing())
    throw std::logic_error("AMPI ranks cannot be byte-serialized (live ULT stack)");
}

std::size_t Rank::migration_bytes() const {
  std::size_t inbox_bytes = 0;
  for (const Wire& w : inbox_) inbox_bytes += w.data.size() + 16;
  return (ult_ ? ult_->stack_bytes() : 0) + inbox_bytes + 256;
}

void Rank::begin(const StartMsg&) {
  ult_ = std::make_unique<Ult>(state_->opts.stack_bytes);
  ult_->start([this] { state_->main(comm_); });
  run_ult();
}

void Rank::run_ult() {
  ult_->resume();
  if (ult_->finished()) {
    // Tell the world; completion fires once every rank's main returned.
    auto state = state_;
    Runtime& rt = Runtime::current();
    rt.send_control(0, 16, [state, &rt]() {
      if (++state->finished == state->nranks && state->on_complete.valid()) {
        state->on_complete.invoke(rt, ReductionResult{});
      }
    });
  }
}

std::optional<Wire> Rank::match(int src, int tag) {
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    if ((src == kAnySource || it->src == src) && (tag == kAnyTag || it->tag == tag)) {
      Wire w = std::move(*it);
      inbox_.erase(it);
      return w;
    }
  }
  return std::nullopt;
}

void Rank::deliver(const Wire& w) {
  inbox_.push_back(w);
  if (waiting_recv_ && (want_src_ == kAnySource || w.src == want_src_) &&
      (want_tag_ == kAnyTag || w.tag == want_tag_)) {
    waiting_recv_ = false;
    run_ult();
  }
}

void Rank::redux_done(const ReductionResult& r) {
  redux_result_ = r;
  if (waiting_redux_) {
    waiting_redux_ = false;
    run_ult();
  }
}

void Rank::resume_from_sync() {
  if (waiting_resume_) {
    waiting_resume_ = false;
    run_ult();
  }
}

// ---- Comm ----------------------------------------------------------------------

int Comm::rank() const { return static_cast<int>(r_->index()); }
int Comm::size() const { return r_->state_->nranks; }

void Comm::send(int dst, int tag, std::vector<std::byte> data) {
  Wire w;
  w.src = rank();
  w.tag = tag;
  w.data = std::move(data);
  ArrayProxy<Rank, std::int32_t> proxy(r_->state_->col);
  proxy[static_cast<std::int32_t>(dst)].send<&Rank::deliver>(w);
}

std::vector<std::byte> Comm::recv(int src, int tag, int* actual_src, int* actual_tag) {
  for (;;) {
    if (auto w = r_->match(src, tag)) {
      if (actual_src) *actual_src = w->src;
      if (actual_tag) *actual_tag = w->tag;
      return std::move(w->data);
    }
    r_->waiting_recv_ = true;
    r_->want_src_ = src;
    r_->want_tag_ = tag;
    r_->ult_->yield();
  }
}

std::vector<double> Comm::allreduce(std::vector<double> v, ReduceOp op) {
  r_->waiting_redux_ = true;
  const Callback cb =
      Callback::to_broadcast(r_->state_->col, Registry::entry_of<&Rank::redux_done>());
  r_->contribute(std::move(v), op, cb);
  r_->ult_->yield();
  return r_->redux_result_.nums;
}

double Comm::allreduce(double v, ReduceOp op) {
  auto out = allreduce(std::vector<double>{v}, op);
  return out.empty() ? 0.0 : out[0];
}

void Comm::barrier() { (void)allreduce(0.0, ReduceOp::kSum); }

void Comm::migrate() {
  r_->waiting_resume_ = true;
  r_->at_sync();
  r_->ult_->yield();
}

void Comm::charge(double seconds) { charm::charge(seconds); }

void Comm::charge_kernel(double base_seconds, double working_set_bytes) {
  const double cache = r_->state_->opts.cache_bytes;
  double miss_fraction = 0.0;
  if (working_set_bytes > cache && working_set_bytes > 0)
    miss_fraction = 1.0 - cache / working_set_bytes;
  charm::charge(base_seconds * (1.0 + r_->state_->opts.miss_penalty * miss_fraction));
}

double Comm::now() const { return charm::now(); }

}  // namespace charm::ampi
