#include "miniapps/stencil/stencil.hpp"

#include <algorithm>
#include <cmath>

namespace charm::stencil {

Callback Tile::done_cb;

Tile::Tile(const Params& p, ArrayProxy<Tile, Index2D> tiles) : p_(p), tiles_(tiles) {}

int Tile::bw() const { return p_.grid / p_.tiles_x; }
int Tile::bh() const { return p_.grid / p_.tiles_y; }

double& Tile::at(std::vector<double>& v, int i, int j) const {
  return v[static_cast<std::size_t>(j * bw() + i)];
}

void Tile::begin(const StartMsg& m) {
  if (u_.empty()) {
    // Dirichlet problem: interior 0, left global boundary held at 1.
    u_.assign(static_cast<std::size_t>(bw() * bh()), 0.0);
    unew_ = u_;
    if (index().x == 0) {
      for (int j = 0; j < bh(); ++j) at(u_, 0, j) = 1.0;
    }
  }
  target_ = gather_.step() + m.iters;
  start_iter();
}

void Tile::start_iter() {
  const Index2D me = index();
  for (int s = 0; s < 4; ++s) ghosts_[s].clear();

  int expected = 0;
  auto send_strip = [&](int nx, int ny, int their_side, bool horizontal) {
    if (nx < 0 || nx >= p_.tiles_x || ny < 0 || ny >= p_.tiles_y) return;
    GhostMsg g;
    g.iter = gather_.step();
    g.side = their_side;
    if (horizontal) {
      const int col = their_side == 0 ? bw() - 1 : 0;  // they see our edge
      for (int j = 0; j < bh(); ++j) g.strip.push_back(at(u_, col, j));
    } else {
      const int row = their_side == 2 ? bh() - 1 : 0;
      for (int i = 0; i < bw(); ++i) g.strip.push_back(at(u_, i, row));
    }
    ++expected;  // symmetric stencil: one in for every out
    tiles_[Index2D{nx, ny}].send<&Tile::ghost>(g);
  };
  // side codes are from the receiver's perspective.
  send_strip(me.x - 1, me.y, 1, true);   // our left edge is their right ghost
  send_strip(me.x + 1, me.y, 0, true);
  send_strip(me.x, me.y - 1, 3, false);
  send_strip(me.x, me.y + 1, 2, false);

  if (gather_.open(gather_.step(), expected, [&](const GhostMsg& g) { ghost(g); }))
    sweep();  // single-tile case
}

void Tile::ghost(const GhostMsg& m) {
  if (!gather_.offer(m.iter, m)) return;  // buffered for a later iter, or stale
  if (!ghosts_[m.side].empty()) return;   // duplicate strip for this side
  ghosts_[m.side] = m.strip;
  if (gather_.accept()) sweep();
}

void Tile::sweep() {
  const Index2D me = index();
  const int W = bw(), H = bh();
  auto ghost_or = [&](int side, int k, double fallback) {
    return ghosts_[side].empty() ? fallback : ghosts_[side][static_cast<std::size_t>(k)];
  };
  last_delta_ = 0;
  for (int j = 0; j < H; ++j) {
    for (int i = 0; i < W; ++i) {
      // Global boundary cells are fixed.
      const bool fixed = (me.x == 0 && i == 0);
      if (fixed) {
        at(unew_, i, j) = at(u_, i, j);
        continue;
      }
      const double left = i > 0 ? at(u_, i - 1, j)
                                : (me.x > 0 ? ghost_or(0, j, 0.0) : at(u_, i, j));
      const double right = i < W - 1 ? at(u_, i + 1, j)
                                     : (me.x < p_.tiles_x - 1 ? ghost_or(1, j, 0.0)
                                                              : at(u_, i, j));
      const double down = j > 0 ? at(u_, i, j - 1)
                                : (me.y > 0 ? ghost_or(2, i, 0.0) : at(u_, i, j));
      const double up = j < H - 1 ? at(u_, i, j + 1)
                                  : (me.y < p_.tiles_y - 1 ? ghost_or(3, i, 0.0)
                                                           : at(u_, i, j));
      const double v = 0.25 * (left + right + down + up);
      const double d = v - at(u_, i, j);
      last_delta_ += d * d;
      at(unew_, i, j) = v;
    }
  }
  std::swap(u_, unew_);

  const double weight =
      1.0 + p_.imbalance * (p_.tiles_x > 1
                                ? static_cast<double>(me.x) / (p_.tiles_x - 1)
                                : 0.0);
  charm::charge(p_.cell_cost * weight * static_cast<double>(W) * static_cast<double>(H));

  // Next-iteration ghosts from early-resumed neighbors must buffer until our
  // own resume, so the gather closes here.
  gather_.close();
  at_sync();
}

void Tile::resume_from_sync() {
  if (gather_.step() < target_) {
    start_iter();
  } else if (target_ > 0) {
    contribute(last_delta_, ReduceOp::kSum, done_cb);
  }
}

std::array<double, 3> Tile::lb_coords() const {
  return {static_cast<double>(index().x), static_cast<double>(index().y), 0.0};
}

void Tile::pup(pup::Er& p) {
  ArrayElementBase::pup(p);
  p | p_;
  p | tiles_;
  p | u_;
  p | unew_;
  for (auto& g : ghosts_) p | g;
  p | gather_;
  p | target_;
  p | last_delta_;
}

Sim::Sim(Runtime& rt, Params p) : rt_(rt), p_(p) {
  tiles_ = ArrayProxy<Tile, Index2D>::create(rt);
  const int P = rt.active_pes();
  const int n = p.tiles_x * p.tiles_y;
  for (int x = 0; x < p.tiles_x; ++x) {
    for (int y = 0; y < p.tiles_y; ++y) {
      const int linear = x * p.tiles_y + y;
      tiles_.seed(Index2D{x, y}, static_cast<int>(static_cast<long>(linear) * P / n), p_,
                  tiles_);
    }
  }
  rt.lb().register_collection(tiles_.id());
}

void Sim::run(int iters, Callback done) {
  Tile::done_cb = std::move(done);
  tiles_.broadcast<&Tile::begin>(StartMsg{iters});
}

double Sim::global_delta() const {
  double d = 0;
  Collection& c = rt_.collection(tiles_.id());
  for (int pe = 0; pe < rt_.npes(); ++pe)
    for (auto& [ix, obj] : c.local(pe).elems) d += static_cast<Tile*>(obj.get())->last_delta();
  return d;
}

}  // namespace charm::stencil
