#pragma once
// PUP (Pack/UnPack) serialization framework, modeled after Charm++'s PUP::er.
//
// A single user-written `pup` member function describes an object's state; the
// same function drives sizing, packing to a byte stream, and unpacking from a
// byte stream.  This is the substrate for chare migration, disk checkpoints,
// and the double in-memory checkpoint protocol.
//
//   struct A {
//     int foo; std::array<float, 32> bar;
//     void pup(pup::Er& p) { p | foo; p | bar; }
//   };
//
// Dispatch is devirtualized: every `operator|` is templated on the concrete
// serializer, so a caller holding a Sizer/Packer/Unpacker (all final) gets a
// fully inlined field walk with zero virtual calls.  Writing the member as
//   template <class P> void pup(P& p) { ... }
// extends that through user types.  The `pup::Er&` spelling keeps working
// unchanged — it is the virtual compatibility shim, still required where the
// serializer is only known at runtime (the polymorphic chare migration walk).
//
// Types whose packed image is bit-identical to their object representation
// can skip the walk entirely (see MemCopyable below): size is a constant and
// pack/unpack collapse to one memcpy.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace pup {

/// Marks a user type as safe to serialize by raw byte copy.  Specialize for
/// POD structs that contain no pointers:
///   template<> struct AsBytes<MyPod> : std::true_type {};
template <class T>
struct AsBytes : std::false_type {};

/// Base serializer.  Concrete modes: Sizer, Packer, Unpacker.
class Er {
 public:
  enum class Mode { kSizing, kPacking, kUnpacking };

  explicit Er(Mode m) : mode_(m) {}
  virtual ~Er() = default;
  Er(const Er&) = delete;
  Er& operator=(const Er&) = delete;

  Mode mode() const { return mode_; }
  bool sizing() const { return mode_ == Mode::kSizing; }
  bool packing() const { return mode_ == Mode::kPacking; }
  bool unpacking() const { return mode_ == Mode::kUnpacking; }

  /// Process `n` raw bytes at `p` (read on pack, write on unpack).
  virtual void bytes(void* p, std::size_t n) = 0;

 private:
  Mode mode_;
};

/// Pass 1: computes the packed size of an object without writing anything.
class Sizer final : public Er {
 public:
  Sizer() : Er(Mode::kSizing) {}
  void bytes(void*, std::size_t n) override { size_ += n; }
  std::size_t size() const { return size_; }

 private:
  std::size_t size_ = 0;
};

/// Pass 2: appends the object's bytes to an owned buffer.  With the
/// devirtualized walk this is also the *sizing* pass — the buffer grows in
/// place, so callers pack in a single pass instead of Sizer-then-Packer.
class Packer final : public Er {
 public:
  explicit Packer(std::vector<std::byte>& out) : Er(Mode::kPacking), out_(out) {}
  void bytes(void* p, std::size_t n) override {
    const auto* b = static_cast<const std::byte*>(p);
    out_.insert(out_.end(), b, b + n);
  }

 private:
  std::vector<std::byte>& out_;
};

/// Pass 3: reads the object's bytes back out of a buffer.
class Unpacker final : public Er {
 public:
  Unpacker(const std::byte* data, std::size_t size)
      : Er(Mode::kUnpacking), data_(data), size_(size) {}
  explicit Unpacker(const std::vector<std::byte>& buf)
      : Unpacker(buf.data(), buf.size()) {}

  void bytes(void* p, std::size_t n) override {
    if (cursor_ + n > size_) throw std::out_of_range("pup::Unpacker: buffer underrun");
    if (n == 0) return;  // empty vectors unpack into a null data() pointer
    std::memcpy(p, data_ + cursor_, n);
    cursor_ += n;
  }
  std::size_t remaining() const { return size_ - cursor_; }
  std::size_t cursor() const { return cursor_; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
};

// ---- dispatch -------------------------------------------------------------

/// Any of the PUP serializers: the concrete (devirtualized) ones or Er itself.
template <class P>
concept Serializer = std::derived_from<std::remove_cv_t<P>, Er>;

template <class T, class P = Er>
concept HasPupMethod = requires(T& t, P& p) { t.pup(p); };

template <class T>
concept RawPuppable =
    std::is_arithmetic_v<std::remove_cv_t<T>> || std::is_enum_v<std::remove_cv_t<T>> ||
    AsBytes<std::remove_cv_t<T>>::value;

template <Serializer P, RawPuppable T>
inline P& operator|(P& p, T& v) {
  p.bytes(const_cast<std::remove_cv_t<T>*>(&v), sizeof(T));
  return p;
}

template <Serializer P, class T>
  requires(!RawPuppable<T> && HasPupMethod<T, P>)
inline P& operator|(P& p, T& v) {
  v.pup(p);
  return p;
}

/// Charm++-style helper for C arrays of puppable elements.
template <Serializer P, class T>
inline void PUParray(P& p, T* arr, std::size_t n) {
  if constexpr (RawPuppable<T>) {
    p.bytes(arr, n * sizeof(T));
  } else {
    for (std::size_t i = 0; i < n; ++i) p | arr[i];
  }
}

// ---- mem_copyable: whole-object memcpy fast path ---------------------------

/// Opt-in for aggregates whose PUP walk is provably equivalent to one memcpy
/// of the whole object.  The specialization must carry the sum of the sizes
/// of the fields the walk visits, in walk order:
///
///   struct Vec3 { double x, y, z;
///                 template <class P> void pup(P& p) { p | x; p | y; p | z; } };
///   template <> struct pup::MemCopyable<Vec3> : std::true_type {
///     static constexpr std::size_t kFieldBytes = 3 * sizeof(double);
///   };
///
/// kFieldBytes is the padding-free proof: the opt-in is rejected at compile
/// time unless sizeof(T) == kFieldBytes, because padding bytes are *excluded*
/// from the packed walk (each field is emitted back to back) while a memcpy
/// would include them — the two images would disagree.  Field order must
/// match declaration order; the round-trip equivalence tests enforce that.
template <class T>
struct MemCopyable : std::false_type {};

namespace detail {

template <class T>
consteval bool mem_copyable_opt_in() {
  if constexpr (MemCopyable<T>::value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pup::MemCopyable opt-in requires a trivially copyable type");
    static_assert(sizeof(T) == MemCopyable<T>::kFieldBytes,
                  "pup::MemCopyable opt-in has padding: sizeof(T) != sum of "
                  "field sizes, so a memcpy would not match the PUP walk");
    return true;
  } else {
    return false;
  }
}

/// Sizing and packing only read the value; the const_cast that the Er-based
/// walk needs (its signatures are mutable for the unpack direction) is
/// confined to this one place.
template <class T>
inline T& mutable_ref(const T& v) {
  return const_cast<T&>(v);
}

}  // namespace detail

/// True when size/pack/unpack of T collapse to a constexpr-size memcpy.
/// RawPuppable types qualify automatically — their walk already is a single
/// bytes(sizeof(T)) call, so the memcpy image is identical by construction.
/// Aggregates qualify by specializing MemCopyable (padding proof above).
template <class T>
inline constexpr bool mem_copyable =
    RawPuppable<T> || detail::mem_copyable_opt_in<std::remove_cv_t<T>>();

// ---- standard library support ---------------------------------------------

template <Serializer P>
inline P& operator|(P& p, std::string& s) {
  std::uint64_t n = s.size();
  p | n;
  if (p.unpacking()) s.resize(static_cast<std::size_t>(n));
  if (n > 0) p.bytes(s.data(), static_cast<std::size_t>(n));
  return p;
}

template <Serializer P, class T>
P& operator|(P& p, std::vector<T>& v) {
  std::uint64_t n = v.size();
  p | n;
  if (p.unpacking()) v.resize(static_cast<std::size_t>(n));
  PUParray(p, v.data(), v.size());
  return p;
}

template <Serializer P>
inline P& operator|(P& p, std::vector<bool>& v) {
  std::uint64_t n = v.size();
  p | n;
  if (p.unpacking()) v.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint8_t b = p.unpacking() ? 0 : static_cast<std::uint8_t>(v[i]);
    p | b;
    if (p.unpacking()) v[i] = (b != 0);
  }
  return p;
}

template <Serializer P, class T, std::size_t N>
P& operator|(P& p, std::array<T, N>& a) {
  PUParray(p, a.data(), N);
  return p;
}

template <Serializer P, class A, class B>
P& operator|(P& p, std::pair<A, B>& pr) {
  p | pr.first;
  p | pr.second;
  return p;
}

template <Serializer P, class T>
P& operator|(P& p, std::optional<T>& o) {
  std::uint8_t has = o.has_value() ? 1 : 0;
  p | has;
  if (p.unpacking()) {
    if (has) {
      o.emplace();
      p | *o;
    } else {
      o.reset();
    }
  } else if (has) {
    p | *o;
  }
  return p;
}

template <Serializer P, class T>
P& operator|(P& p, std::deque<T>& d) {
  std::uint64_t n = d.size();
  p | n;
  if (p.unpacking()) d.resize(static_cast<std::size_t>(n));
  for (auto& e : d) p | e;
  return p;
}

namespace detail {
// Associative containers: pack as (count, k, v, k, v, ...).
template <Serializer P, class Map>
P& pup_map(P& p, Map& m) {
  std::uint64_t n = m.size();
  p | n;
  if (p.unpacking()) {
    m.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      typename Map::key_type k{};
      typename Map::mapped_type v{};
      p | k;
      p | v;
      m.emplace(std::move(k), std::move(v));
    }
  } else {
    for (auto& [k, v] : m) {
      p | const_cast<typename Map::key_type&>(k);
      p | v;
    }
  }
  return p;
}

template <Serializer P, class SetT>
P& pup_set(P& p, SetT& s) {
  std::uint64_t n = s.size();
  p | n;
  if (p.unpacking()) {
    s.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      typename SetT::key_type k{};
      p | k;
      s.insert(std::move(k));
    }
  } else {
    for (auto& k : s) p | const_cast<typename SetT::key_type&>(k);
  }
  return p;
}
}  // namespace detail

template <Serializer P, class K, class V, class C, class A>
P& operator|(P& p, std::map<K, V, C, A>& m) { return detail::pup_map(p, m); }
template <Serializer P, class K, class V, class H, class E, class A>
P& operator|(P& p, std::unordered_map<K, V, H, E, A>& m) { return detail::pup_map(p, m); }
template <Serializer P, class K, class C, class A>
P& operator|(P& p, std::set<K, C, A>& s) { return detail::pup_set(p, s); }
template <Serializer P, class K, class H, class E, class A>
P& operator|(P& p, std::unordered_set<K, H, E, A>& s) { return detail::pup_set(p, s); }

// ---- convenience round-trip helpers ----------------------------------------
//
// All take the value by const reference (sizing/packing only read it) and all
// use the single-pass fast path: mem_copyable types never walk at all, and
// dynamic types pack with grow-in-place appends instead of a separate Sizer
// pass.  The byte images are identical to the virtual Er walk — the
// fast-vs-legacy equivalence tests pin that down for every pup'd type.

template <class T>
constexpr std::size_t size_of(const T& v) {
  if constexpr (mem_copyable<T>) {
    return sizeof(T);
  } else {
    Sizer s;
    s | detail::mutable_ref(v);
    return s.size();
  }
}

/// Packs `v` at the end of `out` in one pass (no separate sizing walk).
template <class T>
void pack_append(std::vector<std::byte>& out, const T& v) {
  if constexpr (mem_copyable<T>) {
    const std::size_t at = out.size();
    out.resize(at + sizeof(T));
    std::memcpy(out.data() + at, &v, sizeof(T));
  } else {
    Packer pk(out);
    pk | detail::mutable_ref(v);
  }
}

template <class T>
std::vector<std::byte> to_bytes(const T& v) {
  std::vector<std::byte> out;
  pack_append(out, v);
  return out;
}

template <class T>
void from_bytes(const std::byte* data, std::size_t size, T& v) {
  if constexpr (mem_copyable<T>) {
    if (size < sizeof(T)) throw std::out_of_range("pup::from_bytes: buffer underrun");
    std::memcpy(&v, data, sizeof(T));
  } else {
    Unpacker u(data, size);
    u | v;
  }
}

template <class T>
void from_bytes(const std::vector<std::byte>& buf, T& v) {
  from_bytes(buf.data(), buf.size(), v);
}

template <class T>
T make_from_bytes(const std::vector<std::byte>& buf) {
  T v{};
  from_bytes(buf, v);
  return v;
}

}  // namespace pup

// Charm++-compatible spelling used throughout the paper's listings (Fig 3).
namespace PUP {
using er = pup::Er;
}
