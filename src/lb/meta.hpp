#pragma once
// MetaLB: automated load-balancing invocation (§III-A / Menon et al., IEEE
// Cluster'12; used as "MetaTemp" in Fig 4).  Instead of a fixed period, the
// advisor triggers the balancer when the modeled benefit of rebalancing over
// a lookahead horizon exceeds the measured cost of the last LB round.

#include "lb/manager.hpp"

namespace charm::lb {

struct MetaParams {
  double imbalance_tol = 1.08;   ///< ignore imbalance below max/avg = tol
  double horizon_rounds = 20;    ///< rounds over which the benefit accrues
  double default_lb_cost = 5e-3; ///< cost estimate before any LB has run (s)
  int min_gap = 2;               ///< min rounds between LB invocations
};

Advisor make_meta_advisor(MetaParams params = {});

}  // namespace charm::lb
