#include "trace/summary.hpp"

#include <algorithm>
#include <map>

namespace trace {

double Summary::total_busy() const {
  double t = 0;
  for (const PeStat& p : pes) t += p.busy;
  return t;
}

double Summary::total_exec() const {
  double t = 0;
  for (const PeStat& p : pes) t += p.exec;
  return t;
}

Summary summarize(const std::vector<Event>& events, int npes) {
  Summary s;
  s.pes.resize(static_cast<std::size_t>(std::max(npes, 0)));
  std::map<std::pair<int, int>, EntryStat> entries;

  for (const Event& e : events) {
    switch (e.kind) {
      case Kind::kExec: {
        if (e.pe >= 0 && e.pe < npes) {
          PeStat& p = s.pes[static_cast<std::size_t>(e.pe)];
          ++p.execs;
          p.exec += e.end - e.begin;
        }
        s.span = std::max(s.span, e.end);
        break;
      }
      case Kind::kEntry: {
        EntryStat& st = entries[{e.a, e.b}];
        st.col = e.a;
        st.ep = e.b;
        ++st.calls;
        const double dt = e.end - e.begin;
        st.total_time += dt;
        st.max_time = std::max(st.max_time, dt);
        if (e.pe >= 0 && e.pe < npes) s.pes[static_cast<std::size_t>(e.pe)].busy += dt;
        break;
      }
      case Kind::kSend: {
        ++s.messages.sends;
        s.messages.bytes += e.bytes;
        if (e.b > 0) s.messages.hops += static_cast<std::uint64_t>(e.b);
        const double lat = e.end - e.begin;
        s.messages.total_latency += lat;
        s.messages.max_latency = std::max(s.messages.max_latency, lat);
        break;
      }
      case Kind::kRecv:
        s.messages.total_queue_wait += e.end - e.begin;
        break;
      case Kind::kIdle:
      case Kind::kPhase:
        break;
    }
  }

  s.entries.reserve(entries.size());
  for (auto& [key, st] : entries) s.entries.push_back(st);
  return s;
}

}  // namespace trace
