// Quickstart: the smallest complete charmlike program.
//
//   * create an emulated machine and a runtime
//   * define a chare array with entry methods
//   * send messages, broadcast, reduce
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "runtime/charm.hpp"

using namespace charm;

struct GreetMsg {
  int from = -1;
  void pup(pup::Er& p) { p | from; }
};

// A chare array element: a plain C++ class deriving from ArrayElement.
// Entry methods are ordinary member functions taking one pup-able argument.
class Hello : public ArrayElement<Hello, std::int32_t> {
 public:
  void greet(const GreetMsg& m) {
    std::printf("  [vt=%8.2f us] chare %d on PE %d greeted by %d\n",
                charm::now() * 1e6, static_cast<int>(index()), pe(), m.from);
    charm::charge(1e-6);  // model a microsecond of work

    // Forward the greeting around the ring once.
    if (m.from < static_cast<int>(index())) {
      ArrayProxy<Hello> peers(collection_id());
      peers[(index() + 1) % 8].send<&Hello::greet>(GreetMsg{static_cast<int>(index())});
    } else {
      // Everyone contributes to a sum reduction once the ring completes.
      ArrayProxy<Hello> peers(collection_id());
      peers.broadcast<&Hello::tally>();
    }
  }

  void tally() { contribute(static_cast<double>(index()), ReduceOp::kSum, done); }

  static Callback done;
};

Callback Hello::done;

int main() {
  // A 4-PE emulated machine (see DESIGN.md: PEs have virtual clocks and an
  // alpha/beta network model; programs charge virtual time for their work).
  sim::MachineConfig cfg;
  cfg.npes = 4;
  sim::Machine machine(cfg);
  Runtime rt(machine);

  // An 8-element chare array spread over the 4 PEs.
  auto hellos = ArrayProxy<Hello>::create(rt);
  for (int i = 0; i < 8; ++i) hellos.seed(i, i % 4);

  Hello::done = Callback::to_function([&](ReductionResult&& r) {
    std::printf("reduction over all chares: sum of indices = %.0f\n", r.num(0));
    rt.exit();
  });

  std::printf("starting ring of greetings...\n");
  rt.on_pe(0, [&] { hellos[0].send<&Hello::greet>(GreetMsg{-1}); });
  machine.run();

  std::printf("done at virtual time %.2f us after %llu events\n",
              machine.max_pe_clock() * 1e6,
              static_cast<unsigned long long>(machine.events_processed()));
  return 0;
}
