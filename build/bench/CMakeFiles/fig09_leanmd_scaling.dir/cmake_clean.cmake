file(REMOVE_RECURSE
  "CMakeFiles/fig09_leanmd_scaling.dir/fig09_leanmd_scaling.cpp.o"
  "CMakeFiles/fig09_leanmd_scaling.dir/fig09_leanmd_scaling.cpp.o.d"
  "fig09_leanmd_scaling"
  "fig09_leanmd_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_leanmd_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
