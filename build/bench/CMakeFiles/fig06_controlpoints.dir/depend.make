# Empty dependencies file for fig06_controlpoints.
# This may be replaced when dependencies are built.
