# Empty compiler generated dependencies file for fig13_changa_phases.
# This may be replaced when dependencies are built.
