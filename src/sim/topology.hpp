#pragma once
// 3-D torus topology over the emulated machine's PEs.
//
// Used by the network model (per-hop latency) and by TRAM (dimension-ordered
// routing and peer sets).  The PE count is factored into near-cubic dims.

#include <array>
#include <cstdint>
#include <vector>

namespace sim {

class Torus3D {
 public:
  explicit Torus3D(int npes);

  int npes() const { return npes_; }
  const std::array<int, 3>& dims() const { return dims_; }

  // Coordinates are derived arithmetically (two integer divisions): a
  // precomputed table costs 12 bytes per PE — 12 MB of always-resident state
  // on a million-virtual-PE machine that blows the per-idle-PE budget
  // (DESIGN.md §12) and falls out of cache long before the divisions matter.
  std::array<int, 3> coords(int pe) const {
    return {pe % dims_[0], (pe / dims_[0]) % dims_[1], pe / (dims_[0] * dims_[1])};
  }
  int pe_at(const std::array<int, 3>& c) const;

  /// Minimal hop count between two PEs on the torus.
  int hops(int src, int dst) const;

  /// Next PE on the dimension-ordered minimal route from `src` toward `dst`
  /// (differs from `src` in exactly one dimension).  Returns `dst` when the
  /// remaining route is a single hop or the PEs are torus-adjacent in the
  /// lowest differing dimension.
  int next_on_route(int src, int dst) const;

  /// First dimension (0..2) in which the coordinates of src and dst differ,
  /// or -1 if src == dst.
  int first_differing_dim(int src, int dst) const;

 private:
  int torus_dist(int a, int b, int extent) const;

  int npes_;
  std::array<int, 3> dims_;
};

}  // namespace sim
