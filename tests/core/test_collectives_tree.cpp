// Distributed k-ary spanning-tree collectives (DESIGN.md §10).
//
// The contract under test: switching RuntimeConfig::collectives from kFlat
// (the seed's centralized combine with a *modeled* tree wave) to kTree (real
// partial-combine messages routed up a k-ary spanning tree) changes message
// traffic and timing but NOT results — reduced values and completion order
// are bit-identical to the flat path for every arity, and broadcasts deliver
// exactly once to every live element, including around a failed interior PE.
//
// The randomized fuzz sweeps (machine size x element placement x contribution
// order x op x arity) against the flat reference; the app-level determinism
// tests run the fig12 (Barnes-Hut) and fig14 (LULESH/AMPI) smoke analogs
// twice per arity and require identical fingerprints.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "ampi/ampi.hpp"
#include "ft/mem_checkpoint.hpp"
#include "miniapps/barnes/barnes.hpp"
#include "miniapps/lulesh/lulesh.hpp"
#include "runtime/charm.hpp"
#include "runtime/spanning_tree.hpp"

#include "test_util.hpp"

namespace {

using charm::ArrayProxy;
using charm::Callback;
using charm::ReduceOp;
using charm::ReductionResult;
using charm::SpanningTree;
using charmtest::Harness;

// ---- SpanningTree invariants ------------------------------------------------

TEST(SpanningTreeShape, ParentChildInverseFuzz) {
  std::mt19937 rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    const int npes = 1 + static_cast<int>(rng() % 300);
    const int root = static_cast<int>(rng() % static_cast<unsigned>(npes));
    const int arity = 2 + static_cast<int>(rng() % 7);
    const SpanningTree t(npes, root, arity);
    for (int r = 0; r < npes; ++r) {
      // rel/abs are inverse bijections on [0, npes).
      ASSERT_EQ(t.rel(t.abs(r)), r);
      ASSERT_EQ(t.abs(t.rel(r)), r);
      // Every in-range child points back at its parent.
      for (int i = 1; i <= t.arity; ++i) {
        const long c = t.child(r, i);
        if (c < npes) ASSERT_EQ(t.parent(static_cast<int>(c)), r);
      }
      if (r > 0) {
        // The parent is one level up and counts this rank among its children.
        ASSERT_EQ(t.depth(r), t.depth(t.parent(r)) + 1);
        bool found = false;
        for (int i = 1; i <= t.arity; ++i)
          if (t.child(t.parent(r), i) == r) found = true;
        ASSERT_TRUE(found);
      }
    }
  }
}

TEST(SpanningTreeShape, EveryRankReachedExactlyOnce) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    const int npes = 1 + static_cast<int>(rng() % 200);
    const int root = static_cast<int>(rng() % static_cast<unsigned>(npes));
    const int arity = 2 + static_cast<int>(rng() % 7);
    const SpanningTree t(npes, root, arity);
    std::vector<int> seen(static_cast<std::size_t>(npes), 0);
    std::vector<int> frontier{0};
    int max_depth = 0;
    while (!frontier.empty()) {
      const int r = frontier.back();
      frontier.pop_back();
      ++seen[static_cast<std::size_t>(r)];
      max_depth = std::max(max_depth, t.depth(r));
      for (int i = 1; i <= t.arity; ++i) {
        const long c = t.child(r, i);
        if (c < npes) frontier.push_back(static_cast<int>(c));
      }
    }
    for (int r = 0; r < npes; ++r)
      ASSERT_EQ(seen[static_cast<std::size_t>(r)], 1)
          << "rank " << r << " of " << npes << " arity " << arity;
    ASSERT_EQ(t.height(), max_depth);
  }
}

// ---- flat-vs-tree equivalence ----------------------------------------------

struct ValMsg {
  double v = 0;
  int op = 0;  ///< 0 = sum, 1 = min, 2 = max
  void pup(pup::Er& p) {
    p | v;
    p | op;
  }
};

struct StartMsg {
  int dummy = 0;
  void pup(pup::Er& p) { p | dummy; }
};

struct HopMsg {
  int to = 0;
  void pup(pup::Er& p) { p | to; }
};

class Fuzzer : public charm::ArrayElement<Fuzzer, std::int32_t> {
 public:
  int deliveries = 0;

  void go(const ValMsg& m) {
    const ReduceOp op = m.op == 0   ? ReduceOp::kSum
                        : m.op == 1 ? ReduceOp::kMin
                                    : ReduceOp::kMax;
    contribute(m.v, op, cb);
  }
  void go_vector(const ValMsg& m) {
    contribute(std::vector<double>{1.0, m.v}, ReduceOp::kSum, cb);
  }
  void go_gather(const ValMsg& m) {
    std::vector<double> mine{m.v};
    contribute_bytes(pup::to_bytes(mine), cb);
  }
  void go_barrier(const StartMsg&) { contribute(cb); }
  void count(const StartMsg&) { ++deliveries; }
  void hop(const HopMsg& m) { migrate_to(m.to); }
  void burst(const StartMsg&) {
    // Pipelined: three reductions launched back to back from one entry;
    // element order fixes each contribution's sequence number.
    contribute(static_cast<double>(index()), ReduceOp::kSum, cb);
    contribute(static_cast<double>(index()), ReduceOp::kMax, cb);
    contribute(static_cast<double>(index()), ReduceOp::kMin, cb);
  }

  static Callback cb;

  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | deliveries;
  }
};

Callback Fuzzer::cb;

/// One randomized reduction workload: element homes, per-round values and
/// ops, and a shuffled per-round send order.  The same scenario replays
/// bit-identically under any topology.
struct Scenario {
  int npes = 4;
  int elements = 8;
  int rounds = 1;
  std::vector<int> homes;                 ///< element -> seed PE
  std::vector<std::vector<double>> vals;  ///< [round][element]
  std::vector<int> ops;                   ///< [round]
  std::vector<std::vector<int>> order;    ///< [round] shuffled element ids
};

Scenario random_scenario(std::mt19937& rng) {
  static const int kPes[] = {2, 3, 5, 8, 13, 16};
  Scenario s;
  s.npes = kPes[rng() % 6];
  s.elements = s.npes + static_cast<int>(rng() % static_cast<unsigned>(3 * s.npes));
  s.rounds = 1 + static_cast<int>(rng() % 3);
  std::uniform_int_distribution<int> val(-1000, 1000);
  for (int i = 0; i < s.elements; ++i)
    s.homes.push_back(static_cast<int>(rng() % static_cast<unsigned>(s.npes)));
  for (int r = 0; r < s.rounds; ++r) {
    s.ops.push_back(static_cast<int>(rng() % 3));
    std::vector<double> v;
    std::vector<int> ord(static_cast<std::size_t>(s.elements));
    for (int i = 0; i < s.elements; ++i) v.push_back(static_cast<double>(val(rng)));
    std::iota(ord.begin(), ord.end(), 0);
    std::shuffle(ord.begin(), ord.end(), rng);
    s.vals.push_back(std::move(v));
    s.order.push_back(std::move(ord));
  }
  return s;
}

struct Outcome {
  std::vector<double> results;  ///< one entry per completed round, in order
  std::uint64_t partial_sends = 0;
};

Outcome run_scenario(const Scenario& s, charm::RuntimeConfig cfg) {
  Harness h(s.npes, {}, 4, cfg);
  auto arr = ArrayProxy<Fuzzer>::create(h.rt);
  for (int i = 0; i < s.elements; ++i) arr.seed(i, s.homes[static_cast<std::size_t>(i)]);
  Outcome out;
  Fuzzer::cb =
      Callback::to_function([&](ReductionResult&& r) { out.results.push_back(r.num(0)); });
  h.rt.on_pe(0, [&] {
    for (int r = 0; r < s.rounds; ++r)
      for (int i : s.order[static_cast<std::size_t>(r)])
        arr[i].send<&Fuzzer::go>(
            ValMsg{s.vals[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                   s.ops[static_cast<std::size_t>(r)]});
  });
  h.machine.run();
  out.partial_sends = h.rt.reduction_partials_sent();
  return out;
}

TEST(TreeReduction, RandomizedFuzzMatchesFlatEveryArity) {
  std::mt19937 rng(1729);
  for (int trial = 0; trial < 6; ++trial) {
    const Scenario s = random_scenario(rng);
    const Outcome flat = run_scenario(s, {});
    ASSERT_EQ(flat.results.size(), static_cast<std::size_t>(s.rounds));
    EXPECT_EQ(flat.partial_sends, 0u);
    for (int arity : {2, 4, 8}) {
      const Outcome tree = run_scenario(s, Harness::tree_config(arity));
      // Bit-identical values in bit-identical completion order.
      EXPECT_EQ(tree.results, flat.results)
          << "trial " << trial << " P=" << s.npes << " n=" << s.elements
          << " arity=" << arity;
      if (s.npes > 1) EXPECT_GT(tree.partial_sends, 0u);
    }
  }
}

TEST(TreeReduction, VectorSumMatchesFlat) {
  auto run = [](charm::RuntimeConfig cfg) {
    Harness h(5, {}, 4, cfg);
    auto arr = ArrayProxy<Fuzzer>::create(h.rt);
    for (int i = 0; i < 17; ++i) arr.seed(i, i % 5);
    std::vector<double> result;
    Fuzzer::cb = Callback::to_function([&](ReductionResult&& r) { result = r.nums; });
    h.rt.on_pe(0, [&] { arr.broadcast<&Fuzzer::go_vector>(ValMsg{3.0, 0}); });
    h.machine.run();
    return result;
  };
  const std::vector<double> flat = run({});
  ASSERT_EQ(flat, (std::vector<double>{17.0, 51.0}));
  for (int arity : {2, 4, 8}) EXPECT_EQ(run(Harness::tree_config(arity)), flat);
}

TEST(TreeReduction, GatherCollectsEveryChunk) {
  // Chunk arrival order is topology-dependent (flat: contribution order;
  // tree: grouped per PE, combined level by level), so gathers compare as
  // multisets — exactly-once delivery of every element's bytes.
  auto run = [](charm::RuntimeConfig cfg) {
    Harness h(4, {}, 4, cfg);
    auto arr = ArrayProxy<Fuzzer>::create(h.rt);
    for (int i = 0; i < 12; ++i) arr.seed(i, i % 4);
    std::vector<double> gathered;
    Fuzzer::cb = Callback::to_function([&](ReductionResult&& r) {
      for (auto& chunk : r.chunks) {
        std::vector<double> v;
        pup::from_bytes(chunk, v);
        gathered.insert(gathered.end(), v.begin(), v.end());
      }
    });
    h.rt.on_pe(0, [&] {
      for (int i = 0; i < 12; ++i) arr[i].send<&Fuzzer::go_gather>(ValMsg{double(i), 0});
    });
    h.machine.run();
    std::sort(gathered.begin(), gathered.end());
    return gathered;
  };
  const std::vector<double> flat = run({});
  ASSERT_EQ(flat.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(flat[static_cast<std::size_t>(i)], i);
  for (int arity : {2, 4, 8}) EXPECT_EQ(run(Harness::tree_config(arity)), flat);
}

TEST(TreeReduction, BarrierFiresExactlyOnce) {
  for (int arity : {2, 4, 8}) {
    Harness h(7, {}, 4, Harness::tree_config(arity));
    auto arr = ArrayProxy<Fuzzer>::create(h.rt);
    for (int i = 0; i < 9; ++i) arr.seed(i, i % 7);
    int fired = 0;
    Fuzzer::cb = Callback::to_function([&](ReductionResult&&) { ++fired; });
    h.rt.on_pe(0, [&] { arr.broadcast<&Fuzzer::go_barrier>(StartMsg{}); });
    h.machine.run();
    EXPECT_EQ(fired, 1) << "arity " << arity;
  }
}

TEST(TreeReduction, PipelinedBurstsKeepSequenceOrder) {
  // Each element fires sum, max, min back to back; reduction n must complete
  // with reduction n's op, in order, exactly as the flat path sequences them.
  auto run = [](charm::RuntimeConfig cfg) {
    Harness h(3, {}, 4, cfg);
    auto arr = ArrayProxy<Fuzzer>::create(h.rt);
    for (int i = 0; i < 6; ++i) arr.seed(i, i % 3);
    std::vector<double> results;
    Fuzzer::cb =
        Callback::to_function([&](ReductionResult&& r) { results.push_back(r.num(0)); });
    h.rt.on_pe(0, [&] { arr.broadcast<&Fuzzer::burst>(StartMsg{}); });
    h.machine.run();
    return results;
  };
  const std::vector<double> flat = run({});
  ASSERT_EQ(flat, (std::vector<double>{15.0, 5.0, 0.0}));
  for (int arity : {2, 4, 8}) EXPECT_EQ(run(Harness::tree_config(arity)), flat);
}

TEST(TreeReduction, PartialSendsCountOnPathPesOnly) {
  // All PEs hold contributions: every PE but the root sends exactly one
  // partial.  Contributions from a single PE cost only that PE's root path.
  {
    Harness h(8, {}, 4, Harness::tree_config(2));
    auto arr = ArrayProxy<Fuzzer>::create(h.rt);
    for (int i = 0; i < 8; ++i) arr.seed(i, i);
    double result = -1;
    Fuzzer::cb = Callback::to_function([&](ReductionResult&& r) { result = r.num(0); });
    h.rt.on_pe(0, [&] { arr.broadcast<&Fuzzer::go>(ValMsg{1.0, 0}); });
    h.machine.run();
    EXPECT_EQ(result, 8.0);
    EXPECT_EQ(h.rt.reduction_partials_sent(), 7u);
  }
  {
    // Elements only on PE 5: rel path 5 -> 2 -> 0 under arity 2, so two
    // partial hops — O(depth), not O(P).
    Harness h(8, {}, 4, Harness::tree_config(2));
    auto arr = ArrayProxy<Fuzzer>::create(h.rt);
    for (int i = 0; i < 4; ++i) arr.seed(i, 5);
    double result = -1;
    Fuzzer::cb = Callback::to_function([&](ReductionResult&& r) { result = r.num(0); });
    h.rt.on_pe(0, [&] { arr.broadcast<&Fuzzer::go>(ValMsg{1.0, 0}); });
    h.machine.run();
    EXPECT_EQ(result, 4.0);
    EXPECT_EQ(h.rt.reduction_partials_sent(), 2u);
  }
}

TEST(TreeReduction, CallbackToBroadcastReachesEveryElement) {
  Harness h(4, {}, 4, Harness::tree_config(2));
  auto arr = ArrayProxy<Fuzzer>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i % 4);
  Fuzzer::cb = arr.bcast_callback<&Fuzzer::count>();
  h.rt.on_pe(0, [&] { arr.broadcast<&Fuzzer::go_barrier>(StartMsg{}); });
  h.machine.run();
  for (int i = 0; i < 8; ++i) {
    auto* e = h.find<Fuzzer>(arr.id(), i);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->deliveries, 1);
  }
}

// ---- tree broadcast ---------------------------------------------------------

TEST(TreeBroadcast, DeliversExactlyOnceEveryArityAndRoot) {
  for (int arity : {2, 4, 8}) {
    for (int root : {0, 5}) {
      Harness h(16, {}, 4, Harness::tree_config(arity));
      auto arr = ArrayProxy<Fuzzer>::create(h.rt);
      for (int i = 0; i < 32; ++i) arr.seed(i, i % 16);
      h.rt.on_pe(root, [&] { arr.broadcast<&Fuzzer::count>(StartMsg{}); });
      h.machine.run();
      for (int i = 0; i < 32; ++i) {
        auto* e = h.find<Fuzzer>(arr.id(), i);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->deliveries, 1) << "arity " << arity << " root " << root
                                    << " element " << i;
      }
    }
  }
}

TEST(TreeBroadcast, RoutesAroundFailedInteriorPe) {
  // Kill rel rank 1 (an interior node under arity 2 with children 3 and 4):
  // the sender must skip it and descend directly, so every element on a live
  // PE still gets the broadcast exactly once while the dead subtree root
  // receives nothing (kDrop).
  Harness h(16, {}, 4, Harness::tree_config(2));
  auto arr = ArrayProxy<Fuzzer>::create(h.rt);
  for (int i = 0; i < 32; ++i) arr.seed(i, i % 16);
  const int victim = 1;
  h.machine.fail_pe(victim);
  h.rt.set_pe_dead(victim, true);
  h.rt.on_pe(0, [&] { arr.broadcast<&Fuzzer::count>(StartMsg{}); });
  h.machine.run();
  for (int i = 0; i < 32; ++i) {
    auto* e = h.find<Fuzzer>(arr.id(), i);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->deliveries, i % 16 == victim ? 0 : 1) << "element " << i;
  }
}

// ---- robustness: migration and FT rollback ----------------------------------

TEST(TreeReduction, MigrationMidReductionStillCompletesExactly) {
  // Half the elements contribute, one of the remaining elements migrates,
  // then the rest contribute: the parked partials and the mover's
  // contribution from its new PE must still combine to the exact total.
  Harness h(4, {}, 4, Harness::tree_config(2));
  auto arr = ArrayProxy<Fuzzer>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i % 4);
  std::vector<double> results;
  Fuzzer::cb =
      Callback::to_function([&](ReductionResult&& r) { results.push_back(r.num(0)); });

  h.rt.on_pe(0, [&] {
    for (int i = 0; i < 4; ++i) arr[i].send<&Fuzzer::go>(ValMsg{double(10 + i), 0});
  });
  h.machine.run();  // four partials parked, reduction incomplete

  h.machine.resume();
  h.rt.on_pe(0, [&] { arr[6].send<&Fuzzer::hop>(HopMsg{0}); });
  h.machine.run();
  EXPECT_EQ(h.rt.collection(arr.id())
                .find(0, charm::IndexTraits<std::int32_t>::encode(6)),
            h.find<Fuzzer>(arr.id(), 6));

  h.machine.resume();
  h.rt.on_pe(0, [&] {
    for (int i = 4; i < 8; ++i) arr[i].send<&Fuzzer::go>(ValMsg{double(10 + i), 0});
  });
  h.machine.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 10.0 * 8 + (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(TreeReduction, RecoveryClearsParkedPartials) {
  // Regression for the clear_reductions leak: a rollback while per-PE
  // partials are parked mid-reduction must drop them, or the restored
  // elements' fresh round would combine stale values into the reused
  // sequence number and report a corrupted total.
  Harness h(4, {}, 4, Harness::tree_config(2));
  auto arr = ArrayProxy<Fuzzer>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i % 4);
  charm::ft::MemCheckpointer ckpt(h.rt);
  std::vector<double> results;
  Fuzzer::cb =
      Callback::to_function([&](ReductionResult&& r) { results.push_back(r.num(0)); });

  bool checkpointed = false;
  h.rt.on_pe(0, [&] {
    ckpt.checkpoint(
        Callback::to_function([&](ReductionResult&&) { checkpointed = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(checkpointed);

  // Park partials: half the elements contribute large poison values.
  h.machine.resume();
  h.rt.on_pe(0, [&] {
    for (int i = 0; i < 4; ++i) arr[i].send<&Fuzzer::go>(ValMsg{1e6, 0});
  });
  h.machine.run();
  EXPECT_TRUE(results.empty());

  // Roll back to the checkpoint (restores every element's sequence number
  // and must clear the parked partials).
  bool recovered = false;
  h.machine.resume();
  h.rt.on_pe(0, [&] {
    ckpt.fail_and_recover(
        3, Callback::to_function([&](ReductionResult&&) { recovered = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(recovered);

  // A full fresh round must produce the exact sum — any surviving poison
  // partial would inflate it by 1e6.
  h.machine.resume();
  h.rt.on_pe(0, [&] { arr.broadcast<&Fuzzer::go>(ValMsg{1.0, 0}); });
  h.machine.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 8.0);
}

// ---- whole-run determinism: fig12 / fig14 smoke analogs ----------------------

struct Fingerprint {
  double final_time = 0;
  double makespan = 0;
  std::uint64_t events = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t partials = 0;
};

void expect_identical(const Fingerprint& a, const Fingerprint& b) {
  EXPECT_EQ(a.final_time, b.final_time);  // exact, not approximate
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.msgs, b.msgs);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.partials, b.partials);
}

Fingerprint take_fingerprint(Harness& h) {
  Fingerprint f;
  f.final_time = h.machine.time();
  f.makespan = h.machine.max_pe_clock();
  f.events = h.machine.events_processed();
  f.msgs = h.rt.messages_sent();
  f.bytes = h.rt.bytes_sent();
  f.partials = h.rt.reduction_partials_sent();
  return f;
}

Fingerprint run_barnes(int arity) {
  Harness h(8, {}, 4, Harness::tree_config(arity));
  charm::barnes::Params p;
  p.pieces_per_dim = 2;
  p.nparticles = 256;
  charm::barnes::Simulation sim(h.rt, p);
  bool done = false;
  h.rt.on_pe(0, [&] {
    sim.run(2, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.total_bodies(), 256u);
  return take_fingerprint(h);
}

TEST(TreeDeterminism, BarnesRunsAreIdenticalPerArity) {
  // fig12 smoke analog on the tree topology: replays must be bit-identical,
  // and the up-sweep must actually be exercised.
  for (int arity : {2, 4, 8}) {
    const Fingerprint a = run_barnes(arity);
    const Fingerprint b = run_barnes(arity);
    expect_identical(a, b);
    EXPECT_GT(a.events, 0u);
    EXPECT_GT(a.partials, 0u) << "arity " << arity;
  }
}

Fingerprint run_lulesh(int arity, double* checksum) {
  Harness h(8, {}, 4, Harness::tree_config(arity));
  charm::lulesh::Config cfg;
  cfg.ranks_per_dim = 2;
  cfg.elems_per_dim = 4;
  cfg.iterations = 4;
  cfg.migrate_every = 2;
  charm::ampi::Options opts;
  opts.stack_bytes = 128 * 1024;
  bool done = false;
  charm::lulesh::run(h.rt, cfg, opts, [&](const charm::lulesh::Stats& s) {
    *checksum = s.checksum;
    done = true;
  });
  h.machine.run();
  EXPECT_TRUE(done);
  return take_fingerprint(h);
}

TEST(TreeDeterminism, LuleshRunsAreIdenticalPerArityWithFlatChecksum) {
  // fig14 smoke analog: bit-identical replays per arity.  The aggregate
  // checksum is an FP sum whose association order legitimately differs
  // between topologies, so it matches flat to rounding only; the timestep
  // control (an order-independent min-allreduce) keeps the physics itself
  // topology-independent.
  double flat_checksum = 0;
  {
    Harness h(8);
    charm::lulesh::Config cfg;
    cfg.ranks_per_dim = 2;
    cfg.elems_per_dim = 4;
    cfg.iterations = 4;
    cfg.migrate_every = 2;
    bool done = false;
    charm::lulesh::run(h.rt, cfg, charm::ampi::Options{}, [&](const charm::lulesh::Stats& s) {
      flat_checksum = s.checksum;
      done = true;
    });
    h.machine.run();
    ASSERT_TRUE(done);
  }
  for (int arity : {2, 4, 8}) {
    double ca = 0, cb = 0;
    const Fingerprint a = run_lulesh(arity, &ca);
    const Fingerprint b = run_lulesh(arity, &cb);
    expect_identical(a, b);
    EXPECT_EQ(ca, cb);  // replays: bit-exact
    EXPECT_NEAR(ca, flat_checksum, 1e-9 * std::abs(flat_checksum)) << "arity " << arity;
    EXPECT_GT(a.events, 0u);
  }
}

}  // namespace
