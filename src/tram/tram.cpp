#include "tram/tram.hpp"

#include <algorithm>
#include <utility>

namespace charm::tram {

Core::Core(Runtime& rt, CollectionId target, Params params)
    : rt_(rt),
      col_(target),
      params_(params),
      pes_(static_cast<std::size_t>(rt.npes())) {}

void Core::insert(const ObjIndex& dest_idx, EntryId ep, std::vector<std::byte> payload) {
  const int pe = rt_.machine().current_pe();
  Collection& c = rt_.collection(col_);

  Item item;
  item.idx = dest_idx;
  item.ep = ep;
  item.payload = std::move(payload);
  // Destination PE from the sender's location knowledge: local table, cache,
  // home record (when this PE is the home), else the home PE.
  const auto& cache = c.local(pe).loc_cache;
  auto it = cache.find(dest_idx);
  if (c.find(pe, dest_idx) != nullptr) {
    item.dest_pe = pe;
  } else if (it != cache.end()) {
    item.dest_pe = it->second;
  } else {
    item.dest_pe = rt_.home_pe(dest_idx);
    if (item.dest_pe == pe) {
      auto hit = c.local(pe).home.find(dest_idx);
      if (hit != c.local(pe).home.end() && hit->second.location != kInvalidPe)
        item.dest_pe = hit->second.location;
    }
  }
  ++items_;
  insert_on(pe, std::move(item), /*flush_through=*/false);
}

void Core::insert_on(int pe, Item item, bool flush_through) {
  if (item.dest_pe == pe) {
    Collection& c = rt_.collection(col_);
    ArrayElementBase* elem = c.find(pe, item.idx);
    rt_.charge(rt_.config().deliver_cost);
    if (elem != nullptr) {
      rt_.deliver_local(c, *elem, item.ep, item.payload);
      rt_.release_payload(std::move(item.payload));
      return;
    }
    // The element is not here.  Consult the local location knowledge the way
    // the runtime's own delivery path would: the home table (if this PE is
    // the home) or the location cache — and keep the item on the aggregated
    // path toward the real owner.
    int better = kInvalidPe;
    if (rt_.home_pe(item.idx) == pe) {
      auto it = c.local(pe).home.find(item.idx);
      if (it != c.local(pe).home.end() && !it->second.in_transit &&
          it->second.location != kInvalidPe && it->second.location != pe) {
        better = it->second.location;
      }
    } else {
      auto it = c.local(pe).loc_cache.find(item.idx);
      if (it != c.local(pe).loc_cache.end() && it->second != pe) better = it->second;
      if (better == kInvalidPe) better = rt_.home_pe(item.idx);
    }
    if (better != kInvalidPe && better != pe) {
      item.dest_pe = better;
      insert_on(pe, std::move(item), flush_through);
      return;
    }
    // Mid-migration or unknown: hand over to the point-send protocol, which
    // buffers at the home until the element lands.
    rt_.send_point(col_, item.idx, item.ep, std::move(item.payload));
    return;
  }
  const int peer = rt_.machine().topology().next_on_route(pe, item.dest_pe);
  auto& buf = pes_[static_cast<std::size_t>(pe)].buffers[peer];
  buf.push_back(std::move(item));
  if (buf.size() >= params_.buffer_items) flush_buffer(pe, peer, flush_through);
}

void Core::flush_buffer(int pe, int peer, bool flush_through) {
  auto& state = pes_[static_cast<std::size_t>(pe)];
  auto it = state.buffers.find(peer);
  if (it == state.buffers.end() || it->second.empty()) return;
  auto items = std::make_shared<std::vector<Item>>(std::move(it->second));
  state.buffers.erase(it);

  std::size_t bytes = 0;
  for (const Item& i : *items) bytes += i.payload.size() + params_.item_overhead;
  ++batches_;
  routed_items_ += items->size();

  rt_.send_control(peer, bytes, [this, peer, items, flush_through]() {
    deliver_batch(peer, items, flush_through);
  });
}

void Core::deliver_batch(int pe, std::shared_ptr<std::vector<Item>> items,
                         bool flush_through) {
  for (Item& item : *items) insert_on(pe, std::move(item), flush_through);
  if (flush_through) flush_pe(pe, /*flush_through=*/true);
}

void Core::flush_pe(int pe, bool flush_through) {
  auto& state = pes_[static_cast<std::size_t>(pe)];
  std::vector<int> peers;
  peers.reserve(state.buffers.size());
  for (const auto& [peer, buf] : state.buffers)
    if (!buf.empty()) peers.push_back(peer);
  std::sort(peers.begin(), peers.end());  // deterministic flush order
  for (int peer : peers) flush_buffer(pe, peer, flush_through);
}

void Core::flush_all() {
  for (int pe = 0; pe < rt_.npes(); ++pe) {
    rt_.send_control(pe, 16, [this, pe]() { flush_pe(pe, /*flush_through=*/true); });
  }
}

}  // namespace charm::tram
