# Empty compiler generated dependencies file for fig14_lulesh_ampi.
# This may be replaced when dependencies are built.
