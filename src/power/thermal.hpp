#pragma once
// Lumped-RC thermal model per chip (DESIGN.md §1: substitute for on-chip
// sensors).  A chip groups pes_per_chip consecutive PEs; its temperature
// integrates dT/dt = heat * power - cool * (T - ambient), with dynamic power
// proportional to utilization * frequency^3 (DVFS's cubic lever).

#include <vector>

namespace charm::power {

struct ThermalParams {
  double ambient_c = 30.0;     ///< room/CRAC-set inlet temperature (°C)
  double p_static_w = 8.0;     ///< leakage power per chip (W)
  double p_dyn_w = 40.0;       ///< dynamic power per chip at u=1, f=1 (W)
  double heat_c_per_j = 0.125; ///< °C gained per joule
  double cool_per_s = 0.15;    ///< fractional decay toward ambient per second
  /// Machine-room non-uniformity: chip i cools at cool_per_s * (1 ± spread/2)
  /// across the rack (hot spots are what make naive DVFS throttle unevenly).
  double cool_spread = 0.0;
  double t_initial_c = 40.0;
};

class ThermalModel {
 public:
  ThermalModel(int nchips, ThermalParams params);

  /// Advance chip `c` by `dt` seconds at the given utilization [0,1] and
  /// frequency scale.  Returns the new temperature.
  double step(int chip, double dt, double utilization, double freq);

  double temperature(int chip) const { return temps_.at(static_cast<std::size_t>(chip)); }
  const std::vector<double>& temperatures() const { return temps_; }
  double max_temperature() const;
  double max_seen() const { return max_seen_; }
  int nchips() const { return static_cast<int>(temps_.size()); }
  /// Per-chip cooling rate (rack hot spots via cool_spread).
  double cool_of(int chip) const;

 private:
  ThermalParams params_;
  std::vector<double> temps_;
  double max_seen_ = 0;
};

}  // namespace charm::power
