# Empty compiler generated dependencies file for phold.
# This may be replaced when dependencies are built.
