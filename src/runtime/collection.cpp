// ArrayElementBase service methods (defined here to break the header cycle
// between chare.hpp and runtime.hpp).

#include "runtime/collection.hpp"

#include <utility>

#include "lb/manager.hpp"
#include "runtime/runtime.hpp"

namespace charm {

Runtime& ArrayElementBase::rt() const { return Runtime::current(); }

void ArrayElementBase::pup(pup::Er& p) {
  p | migratable_;
  p | lb_load_;
  p | lb_round_load_;
  p | redux_seq_;
  p | epoch_;
}

void ArrayElementBase::contribute(std::vector<double> value, ReduceOp op,
                                  const Callback& cb) {
  rt().contribute(*this, std::move(value), /*has_nums=*/true, op, {}, /*has_chunk=*/false,
                  cb);
}

void ArrayElementBase::contribute(double value, ReduceOp op, const Callback& cb) {
  // Scalar fast path: combines in place into a pooled buffer instead of
  // building a one-element vector per contribution.
  rt().contribute_scalar(*this, value, op, cb);
}

void ArrayElementBase::contribute(const Callback& cb) {
  rt().contribute(*this, {}, /*has_nums=*/false, ReduceOp::kSum, {}, /*has_chunk=*/false,
                  cb);
}

void ArrayElementBase::contribute_bytes(std::vector<std::byte> chunk, const Callback& cb) {
  rt().contribute(*this, {}, /*has_nums=*/false, ReduceOp::kSum, std::move(chunk),
                  /*has_chunk=*/true, cb);
}

void ArrayElementBase::migrate_to(int pe) { rt().migrate(col_, idx_, pe); }

void ArrayElementBase::at_sync() { rt().lb().element_sync(*this); }

}  // namespace charm
