#pragma once
// Introspective control system (§III-E, Fig 6).
//
// A control point is a tunable integer parameter with a bounded range and a
// direction hint.  The tuner monitors a per-step performance metric, probes
// neighboring values, and converges on the best setting — the runtime
// equivalent of the paper's expert-rule control system tuning the number of
// pipeline messages in a ping benchmark.

#include <cstdint>
#include <string>
#include <vector>

namespace charm::tuning {

/// What the controller should expect when increasing the value (expert-rule
/// hints from the paper's control-point registration API).
enum class EffectHint {
  kUnknown,
  kMoreParallelism,   ///< larger value => finer grain / more overlap
  kLessOverhead,      ///< larger value => fewer, bigger operations
};

class ControlPoint {
 public:
  ControlPoint(std::string name, int min_value, int max_value, int initial,
               EffectHint hint = EffectHint::kUnknown);

  const std::string& name() const { return name_; }
  int value() const { return value_; }
  int min_value() const { return min_; }
  int max_value() const { return max_; }
  EffectHint hint() const { return hint_; }
  void set_value(int v);

 private:
  std::string name_;
  int min_;
  int max_;
  int value_;
  EffectHint hint_;
};

/// Hill-climbing tuner over one control point: measure a window of steps per
/// candidate value, move in the improving direction with geometric steps,
/// then refine and settle.
struct TunerParams {
  int warmup_steps = 2;         ///< ignored steps after each change
  int window_steps = 3;         ///< measured steps per candidate
  double improve_margin = 0.03; ///< relative gain required to keep moving
};

class Tuner {
 public:
  using Params = TunerParams;

  explicit Tuner(ControlPoint& cp, TunerParams params = {});

  /// Feed one step's metric (lower is better).  May adjust the control point.
  void report(double step_metric);

  bool converged() const { return state_ == State::kDone; }
  int best_value() const { return best_value_; }
  double best_metric() const { return best_metric_; }
  int probes() const { return probes_; }

 private:
  enum class State { kWarmup, kMeasure, kDone };

  void window_complete(double avg);
  void move_to(int v);

  ControlPoint& cp_;
  Params params_;
  State state_ = State::kWarmup;
  int steps_left_ = 0;
  double accum_ = 0;
  int accum_n_ = 0;

  int best_value_;
  double best_metric_ = -1;
  int direction_ = +1;  ///< current search direction (multiplicative)
  bool tried_reverse_ = false;
  bool refined_ = false;
  int last_candidate_ = 0;
  int probes_ = 0;
};

}  // namespace charm::tuning
