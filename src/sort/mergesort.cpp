// Bulk-synchronous multiway-merge sample sort: the "MPI" baseline of Fig 7.
//
// Structure (with a barrier after every phase, as a synchronous MPI code
// would have):  local sort -> every PE sends samples to PE 0 -> PE 0 sorts
// all P*s samples and broadcasts splitters -> all-to-all exchange -> local
// multiway merge -> barrier.  PE 0's sample processing and the P serialized
// message arrivals at PE 0 grow linearly with P — the bottleneck the paper's
// CHARM study measured (23% of runtime at 4096 cores).

#include <algorithm>
#include <cmath>

#include "sort/sorting.hpp"

namespace charm::sortlib {

using detail::SortState;

void Sorter::send_samples(const StartMsg&) {
  // The multiway-merge baseline ships EVERY key to rank 0, which merges the
  // full set to derive exact splitters — the root gather/merge is the
  // centralized bottleneck Fig 7 measures.  (samples_per_pe caps the shipped
  // keys for unit tests; the figure bench uses the full set.)
  KeysMsg m;
  m.from = my_pe();
  const std::size_t cap = state_->params.samples_per_pe > 0
                              ? static_cast<std::size_t>(state_->params.samples_per_pe)
                              : keys.size();
  const std::size_t n = std::min(keys.size(), cap);
  m.keys.assign(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(n));
  state_->proxy().on(0).send<&Sorter::collect_samples>(m);
}

void Sorter::collect_samples(const KeysMsg& m) {
  // Root-only: gather P sample chunks, then compute splitters centrally.
  // Raw pointer: the [st] closure below is stored into st->done_internal,
  // so an owning capture would make the state own itself (leak); the
  // callback only fires while the Sorter elements keep the state alive.
  auto* st = state_.get();
  st->samples.insert(st->samples.end(), m.keys.begin(), m.keys.end());
  if (++st->sample_chunks < st->npes) return;
  st->sample_chunks = 0;

  const double n = static_cast<double>(st->samples.size());
  std::sort(st->samples.begin(), st->samples.end());
  charm::charge(st->params.cmp_cost * n * std::max(1.0, std::log2(std::max(2.0, n))));

  const int P = st->npes;
  st->splitters.clear();
  for (int s = 1; s < P; ++s) {
    st->splitters.push_back(
        st->samples[st->samples.size() * static_cast<std::size_t>(s) /
                    static_cast<std::size_t>(P)]);
  }
  st->samples.clear();

  // Phase barrier, then the synchronous exchange (reusing the histsort
  // exchange/accept machinery — identical data movement in both sorts).
  st->done_internal = Callback::to_function([st](ReductionResult&&) {
    st->done.invoke(Runtime::current(), ReductionResult{});
  });
  st->proxy().broadcast<&Sorter::exchange>(SplitterMsg{st->splitters});
}

void Library::merge_sort(Callback done) {
  auto* st = state_.get();  // raw: the closure lives inside *st
  st->done = std::move(done);
  // local sort -> barrier -> samples to root.
  st->done_internal = Callback::to_function([st](ReductionResult&&) {
    st->proxy().broadcast<&Sorter::send_samples>(StartMsg{});
  });
  proxy_.broadcast<&Sorter::local_sort>(StartMsg{});
}

}  // namespace charm::sortlib
