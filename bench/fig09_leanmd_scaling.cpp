// Fig 9: LeanMD strong-scaling speedup, With LB vs No LB vs ideal (paper:
// 2.8M atoms, 1K-32K PEs on Vesta BG/Q; HybridLB improves >= 40%).

#include "bench_common.hpp"
#include "miniapps/leanmd/leanmd.hpp"

namespace {

using namespace charm;

leanmd::Params bench_params() {
  leanmd::Params p;
  p.nx = p.ny = p.nz = 6;       // 216 cells, ~3.1k computes
  p.atoms_per_cell = 28;
  p.pair_cost = 25e-9;
  p.clustering = 2.5;           // non-uniform density: the imbalance source
  p.epsilon = 1e-6;             // quasi-static: imbalance persists
  return p;
}

double time_per_step(int npes, bool with_lb) {
  sim::Machine m(bench::machine_config(npes));
  bench::attach_trace(m);
  Runtime rt(m);
  leanmd::Simulation sim(rt, bench_params());
  if (with_lb) {
    rt.lb().set_strategy(lb::make_refine(1.05));
    rt.lb().set_period(4);
  }
  const int steps = bench::cap_steps(10, 3);
  bool done = false;
  rt.on_pe(0, [&] {
    sim.run(steps, Callback::to_function([&](ReductionResult&&) {
      done = true;
      rt.exit();
    }));
  });
  m.run();
  if (!done) std::printf("   WARNING: LeanMD run did not complete (P=%d)\n", npes);
  return m.max_pe_clock() / steps;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 9", "LeanMD speedup: With LB vs No LB vs ideal");
  bench::columns({"PEs", "NoLB_ms/step", "LB_ms/step", "speedup_NoLB", "speedup_LB", "ideal"});
  const int base_p = 4;
  const double t0_nolb = time_per_step(base_p, false);
  const double t0_lb = time_per_step(base_p, true);
  for (int p : bench::pe_series({4, 8, 16, 32, 64})) {
    const double nolb = p == base_p ? t0_nolb : time_per_step(p, false);
    const double lb = p == base_p ? t0_lb : time_per_step(p, true);
    bench::row({static_cast<double>(p), nolb * 1e3, lb * 1e3, base_p * t0_nolb / nolb,
                base_p * t0_lb / lb, static_cast<double>(p)});
  }
  bench::note("paper shape: LB curve tracks ideal much closer; >= 40% gain over NoLB at scale");
  return bench::finish();
}
