#include "ft/resilient_driver.hpp"

#include <algorithm>
#include <utility>

namespace charm::ft {

ResilientDriver::ResilientDriver(Runtime& rt, MemCheckpointer& ckpt,
                                 StepFn step_fn, int total_steps, int ckpt_period)
    : rt_(rt),
      ckpt_(ckpt),
      step_fn_(std::move(step_fn)),
      total_steps_(total_steps),
      ckpt_period_(ckpt_period) {
  ckpt_.set_failure_observer([this](int) {
    ++failures_;
    ++gen_;  // anything the lost step still delivers is stale now
  });
  ckpt_.set_recovery_observer([this]() {
    if (finished_) {
      // A failure after completion rolled back to the final checkpoint (the
      // completed state); just re-announce completion.
      done_.invoke(rt_, ReductionResult{});
      return;
    }
    // Chare state is back at the last committed checkpoint; wind the driver
    // back to match and replay.
    replayed_ += std::max(0, step_ - last_ckpt_step_);
    step_ = std::max(0, last_ckpt_step_);
    advance();
  });
}

void ResilientDriver::start(Callback done) {
  done_ = done;
  const std::uint64_t g = gen_;
  ckpt_.checkpoint(Callback::to_function([this, g](ReductionResult&&) {
    if (gen_ != g) return;
    last_ckpt_step_ = 0;
    advance();
  }));
}

void ResilientDriver::advance() {
  if (finished_) return;
  if (step_ >= total_steps_) {
    // Final checkpoint: a failure after completion then restores the
    // *completed* state instead of rolling the finished run back.
    const std::uint64_t g = gen_;
    ckpt_.checkpoint(Callback::to_function([this, g](ReductionResult&&) {
      if (gen_ != g) return;
      last_ckpt_step_ = step_;
      finished_ = true;
      done_.invoke(rt_, ReductionResult{});
    }));
    return;
  }
  const std::uint64_t g = gen_;
  const int s = step_ + 1;
  // Hop to PE 0 so every step (original or replayed) is issued from the same
  // root: broadcasts then use the same spanning tree, which keeps replayed
  // message orderings identical to the failure-free run.
  rt_.on_pe(0, [this, g, s]() {
    if (gen_ != g) return;
    step_fn_(s, [this, g, s]() {
      if (gen_ != g) return;  // step was lost to a failure; recovery replays it
      step_ = s;
      if (ckpt_period_ > 0 && s % ckpt_period_ == 0 && s < total_steps_) {
        take_checkpoint();
      } else {
        advance();
      }
    });
  });
}

void ResilientDriver::take_checkpoint() {
  const std::uint64_t g = gen_;
  ckpt_.checkpoint(Callback::to_function([this, g](ReductionResult&&) {
    if (gen_ != g) return;  // aborted mid-checkpoint; prior commit stands
    last_ckpt_step_ = step_;
    advance();
  }));
}

}  // namespace charm::ft
