#!/usr/bin/env bash
# Runs every figure-reproduction bench plus the micro-benchmarks, mirroring
#   for b in build/bench/*; do $b; done
# but skipping CMake bookkeeping entries.  Output goes to stdout; tee it into
# bench_output.txt for the EXPERIMENTS.md record.
#
# --smoke runs each figure binary in its reduced configuration (tiny PE
# sweeps, few steps) — the CI bench-smoke gate.  Any bench failure makes the
# script exit nonzero.  micro_* binaries use google-benchmark's own flag
# parsing, so in smoke mode they get a minimal-time run instead of --smoke.
#
# --stats[=DIR] additionally passes --stats=DIR/BENCH_<name>.json to every
# figure/ablation binary (default DIR: bench_stats), producing the
# machine-readable analytics record EXPERIMENTS.md points at.  Validate with
# scripts/check_stats_schema.py; inspect or diff with build/tools/statsview.
# The micro suite records host wall-clock rates instead: google-benchmark's
# JSON is captured and converted (scripts/micro_to_stats.py) into
# DIR/BENCH_micro.json, the one stats file that is NOT byte-deterministic.
set -u
cd "$(dirname "$0")/.."

smoke=0
stats_dir=""
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=1 ;;
    --stats) stats_dir="bench_stats" ;;
    --stats=*) stats_dir="${arg#--stats=}" ;;
    *) echo "usage: $0 [--smoke] [--stats[=DIR]]" >&2; exit 2 ;;
  esac
done
[ -n "$stats_dir" ] && mkdir -p "$stats_dir"

failures=0
for b in build/bench/fig* build/bench/ablation_* build/bench/micro_*; do
  [ -x "$b" ] || continue
  echo "### $b"
  name="$(basename "$b")"
  case "$name" in
    micro_*)
      if [ "$smoke" -eq 1 ]; then
        args=(--benchmark_min_time=0.01)
      else
        args=()
      fi
      if [ -n "$stats_dir" ]; then
        args+=(--benchmark_out="$stats_dir/raw_${name}.json"
               --benchmark_out_format=json)
      fi
      ;;
    *)
      args=()
      [ "$smoke" -eq 1 ] && args+=(--smoke)
      [ -n "$stats_dir" ] && args+=(--stats="$stats_dir/BENCH_${name}.json")
      ;;
  esac
  if ! "$b" ${args[@]+"${args[@]}"}; then
    echo "### $b FAILED (exit $?)"
    failures=$((failures + 1))
  elif [ -n "$stats_dir" ]; then
    case "$name" in
      micro_*)
        # One micro suite today, so the record keeps the stable name
        # BENCH_micro.json rather than BENCH_${name}.json.
        micro_args=()
        [ "$smoke" -eq 1 ] && micro_args+=(--smoke)
        if ! python3 scripts/micro_to_stats.py \
               "$stats_dir/raw_${name}.json" "$stats_dir/BENCH_micro.json" \
               ${micro_args[@]+"${micro_args[@]}"}; then
          echo "### micro_to_stats.py FAILED for $name"
          failures=$((failures + 1))
        fi
        rm -f "$stats_dir/raw_${name}.json"
        ;;
    esac
  fi
done

if [ "$failures" -gt 0 ]; then
  echo "### $failures bench(es) failed" >&2
  exit 1
fi
