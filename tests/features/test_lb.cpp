// Load balancing framework tests: strategy quality properties, the AtSync
// protocol, speed awareness, distributed gossip, and MetaLB triggering.

#include <gtest/gtest.h>

#include <numeric>

#include "lb/distributed.hpp"
#include "lb/instrumentation.hpp"
#include "lb/meta.hpp"
#include "runtime/charm.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;

// ---- pure strategy tests over synthetic stats --------------------------------

lb::Stats synthetic_stats(int npes, const std::vector<double>& works,
                          std::vector<double> speeds = {}) {
  lb::Stats s;
  s.npes = npes;
  s.pe_speed = speeds.empty() ? std::vector<double>(static_cast<std::size_t>(npes), 1.0)
                              : std::move(speeds);
  for (std::size_t i = 0; i < works.size(); ++i) {
    lb::ChareInfo c;
    c.col = 0;
    c.idx = ObjIndex{i, 0};
    c.pe = static_cast<int>(i % static_cast<std::size_t>(npes));
    c.work = works[i];
    c.coords = {static_cast<double>(i), 0.0, 0.0};
    s.chares.push_back(c);
  }
  return s;
}

void apply_migs(lb::Stats& s, const std::vector<lb::Migration>& migs) {
  for (const auto& m : migs) {
    for (auto& c : s.chares) {
      if (c.col == m.col && c.idx == m.idx) c.pe = m.to;
    }
  }
}

TEST(LbStrategy, GreedyFlattensSkewedLoad) {
  // One heavy chare per "hot" pattern: PE0 would own most of the work.
  std::vector<double> works;
  for (int i = 0; i < 64; ++i) works.push_back(i % 8 == 0 ? 8.0 : 1.0);
  lb::Stats s = synthetic_stats(8, works);
  const double before = lb::imbalance_of(s);
  auto migs = lb::make_greedy()->assign(s);
  apply_migs(s, migs);
  const double after = lb::imbalance_of(s);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 1.15);
}

TEST(LbStrategy, RefineMovesFewChares) {
  std::vector<double> works(64, 1.0);
  works[0] = 6.0;  // mild imbalance
  lb::Stats s = synthetic_stats(8, works);
  auto migs = lb::make_refine(1.10)->assign(s);
  EXPECT_LE(migs.size(), 12u) << "refine should be incremental";
  apply_migs(s, migs);
  EXPECT_LT(lb::imbalance_of(s), 1.6);
}

TEST(LbStrategy, GreedyRespectsPeSpeeds) {
  // PE1 runs at half speed: it must end with roughly half the work.
  std::vector<double> works(32, 1.0);
  lb::Stats s = synthetic_stats(2, works, {1.0, 0.5});
  auto migs = lb::make_greedy()->assign(s);
  apply_migs(s, migs);
  double w0 = 0, w1 = 0;
  for (const auto& c : s.chares) (c.pe == 0 ? w0 : w1) += c.work;
  EXPECT_NEAR(w0 / w1, 2.0, 0.4);
}

TEST(LbStrategy, NonMigratableChstaysPut) {
  std::vector<double> works(16, 1.0);
  lb::Stats s = synthetic_stats(4, works);
  s.chares[3].migratable = false;
  s.chares[3].work = 100.0;
  for (auto* make : {&lb::make_greedy, &lb::make_hybrid}) {
    auto migs = (*make)().get()->assign(s);
    for (const auto& m : migs) EXPECT_FALSE(m.idx == s.chares[3].idx);
  }
}

TEST(LbStrategy, HybridComparableToGreedy) {
  std::vector<double> works;
  sim::Rng rng(99);
  for (int i = 0; i < 256; ++i) works.push_back(0.5 + rng.next_double() * 4.0);
  lb::Stats s1 = synthetic_stats(16, works);
  lb::Stats s2 = s1;
  auto g = lb::make_greedy()->assign(s1);
  auto h = lb::make_hybrid()->assign(s2);
  apply_migs(s1, g);
  apply_migs(s2, h);
  EXPECT_LT(lb::imbalance_of(s2), 1.3);
  EXPECT_LT(lb::imbalance_of(s1), 1.15);
}

TEST(LbStrategy, OrbPreservesSpatialLocalityAndBalance) {
  // Chares on a 2-D grid with uniform weight: ORB partitions should be
  // spatially compact and balanced.
  lb::Stats s;
  s.npes = 4;
  s.pe_speed = {1, 1, 1, 1};
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      lb::ChareInfo c;
      c.col = 0;
      c.idx = ObjIndex{static_cast<std::uint64_t>(x), static_cast<std::uint64_t>(y)};
      c.pe = 0;
      c.work = 1.0;
      c.coords = {static_cast<double>(x), static_cast<double>(y), 0};
      s.chares.push_back(c);
    }
  }
  auto migs = lb::make_orb()->assign(s);
  apply_migs(s, migs);
  EXPECT_LT(lb::imbalance_of(s), 1.1);
  // Compactness: average pairwise distance within a PE partition must be well
  // below the global average.
  auto dist = [&](const lb::ChareInfo& a, const lb::ChareInfo& b) {
    const double dx = a.coords[0] - b.coords[0];
    const double dy = a.coords[1] - b.coords[1];
    return dx * dx + dy * dy;
  };
  double intra = 0, all = 0;
  int n_intra = 0, n_all = 0;
  for (std::size_t i = 0; i < s.chares.size(); ++i) {
    for (std::size_t j = i + 1; j < s.chares.size(); ++j) {
      const double d = dist(s.chares[i], s.chares[j]);
      all += d;
      ++n_all;
      if (s.chares[i].pe == s.chares[j].pe) {
        intra += d;
        ++n_intra;
      }
    }
  }
  EXPECT_LT(intra / n_intra, 0.5 * all / n_all);
}

TEST(LbStrategy, GossipReducesImbalanceWithLocalKnowledge) {
  std::vector<double> works;
  for (int i = 0; i < 128; ++i) works.push_back(i % 16 < 2 ? 6.0 : 1.0);
  lb::Stats s = synthetic_stats(16, works);
  const double before = lb::imbalance_of(s);
  auto g = lb::gossip_assign(s, 1234);
  apply_migs(s, g.migrations);
  EXPECT_LT(lb::imbalance_of(s), before);
  EXPECT_GT(g.probes, 0);
}

TEST(LbStrategy, RotateAndRandomMoveEverything) {
  std::vector<double> works(10, 1.0);
  lb::Stats s = synthetic_stats(5, works);
  EXPECT_EQ(lb::make_rotate()->assign(s).size(), 10u);
  auto r = lb::make_random(7)->assign(s);
  for (const auto& m : r) EXPECT_NE(m.from, m.to);
}

// ---- end-to-end AtSync rounds -----------------------------------------------

struct IterMsg {
  int remaining = 0;
  void pup(pup::Er& p) { p | remaining; }
};

class Worker : public charm::ArrayElement<Worker, std::int32_t> {
 public:
  double weight = 1.0;
  int iters_done = 0;
  int pending = 0;

  void step(const IterMsg& m) {
    pending = m.remaining;
    charm::charge(weight * 1e-3);
    ++iters_done;
    at_sync();
  }
  void resume_from_sync() override {
    if (pending > 0) {
      IterMsg m{pending - 1};
      charm::ArrayProxy<Worker> self(collection_id());
      self[index()].send<&Worker::step>(m);
    }
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | weight;
    p | iters_done;
    p | pending;
  }
};

using charmtest::Harness;

TEST(LbManager, AtSyncRoundsResumeEveryone) {
  Harness h(4);
  auto arr = ArrayProxy<Worker>::create(h.rt);
  for (int i = 0; i < 16; ++i) arr.seed(i, i % 4);
  h.rt.lb().register_collection(arr.id());
  h.rt.on_pe(0, [&] { arr.broadcast<&Worker::step>(IterMsg{4}); });
  h.machine.run();
  EXPECT_EQ(h.rt.lb().rounds_completed(), 5);
  for (int i = 0; i < 16; ++i) {
    Worker* w = nullptr;
    for (int pe = 0; pe < 4; ++pe) {
      auto* f = h.rt.collection(arr.id()).find(pe, IndexTraits<std::int32_t>::encode(i));
      if (f) w = static_cast<Worker*>(f);
    }
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->iters_done, 5);
  }
}

TEST(LbManager, PeriodicGreedyBalancesHeavyChares) {
  Harness h(4);
  auto arr = ArrayProxy<Worker>::create(h.rt);
  // All heavy chares start on PE 0.
  for (int i = 0; i < 16; ++i) arr.seed(i, i < 8 ? 0 : (i % 4));
  for (int pe = 0; pe < 4; ++pe) {
    for (auto& [ix, obj] : h.rt.collection(arr.id()).local(pe).elems)
      static_cast<Worker*>(obj.get())->weight = 2.0;
  }
  h.rt.lb().register_collection(arr.id());
  h.rt.lb().set_strategy(lb::make_greedy());
  h.rt.lb().set_period(2);
  h.rt.on_pe(0, [&] { arr.broadcast<&Worker::step>(IterMsg{6}); });
  h.machine.run();
  EXPECT_GE(h.rt.lb().lb_invocations(), 2);
  // After balancing, counts per PE should be near-even.
  int max_count = 0;
  for (int pe = 0; pe < 4; ++pe)
    max_count = std::max(max_count,
                         static_cast<int>(h.rt.collection(arr.id()).local(pe).elems.size()));
  EXPECT_LE(max_count, 7);
  // Migrations were recorded in the history.
  int migs = 0;
  for (const auto& r : h.rt.lb().history()) migs += r.migrations;
  EXPECT_GT(migs, 0);
}

TEST(LbManager, LbImprovesMakespanOnImbalancedWork) {
  auto run = [](bool with_lb) {
    Harness h(8);
    auto arr = ArrayProxy<Worker>::create(h.rt);
    for (int i = 0; i < 64; ++i) arr.seed(i, i % 8);
    // Skew: chares on PE 0 are 6x heavier.
    for (auto& [ix, obj] : h.rt.collection(arr.id()).local(0).elems)
      static_cast<Worker*>(obj.get())->weight = 6.0;
    h.rt.lb().register_collection(arr.id());
    if (with_lb) {
      h.rt.lb().set_strategy(lb::make_greedy());
      h.rt.lb().set_period(2);
    }
    h.rt.on_pe(0, [&] { arr.broadcast<&Worker::step>(IterMsg{10}); });
    h.machine.run();
    return h.machine.max_pe_clock();
  };
  const double t_nolb = run(false);
  const double t_lb = run(true);
  EXPECT_LT(t_lb, t_nolb * 0.75) << "LB should cut makespan on skewed load";
}

TEST(LbManager, DistributedModeAlsoImproves) {
  auto run = [](bool with_lb) {
    Harness h(8);
    auto arr = ArrayProxy<Worker>::create(h.rt);
    for (int i = 0; i < 64; ++i) arr.seed(i, i % 8);
    for (auto& [ix, obj] : h.rt.collection(arr.id()).local(0).elems)
      static_cast<Worker*>(obj.get())->weight = 6.0;
    h.rt.lb().register_collection(arr.id());
    if (with_lb) {
      h.rt.lb().use_distributed(true);
      h.rt.lb().set_period(2);
    }
    h.rt.on_pe(0, [&] { arr.broadcast<&Worker::step>(IterMsg{10}); });
    h.machine.run();
    return h.machine.max_pe_clock();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(LbManager, MetaAdvisorTriggersOnlyWhenWorthIt) {
  auto advisor = lb::make_meta_advisor({.imbalance_tol = 1.2,
                                        .horizon_rounds = 10,
                                        .default_lb_cost = 1e-3,
                                        .min_gap = 1});
  std::vector<lb::RoundInfo> history;
  lb::RoundInfo balanced;
  balanced.round = 5;
  balanced.avg_load = 1.0;
  balanced.max_load = 1.05;
  EXPECT_FALSE(advisor(history, balanced));

  lb::RoundInfo skewed;
  skewed.round = 5;
  skewed.avg_load = 1.0;
  skewed.max_load = 2.0;
  EXPECT_TRUE(advisor(history, skewed));

  // Tiny imbalance whose gain cannot repay the cost: no trigger.
  lb::RoundInfo marginal;
  marginal.round = 5;
  marginal.avg_load = 1e-6;
  marginal.max_load = 1.3e-6;
  EXPECT_FALSE(advisor(history, marginal));
}

TEST(LbManager, SpeedAwareRebalancingUnderHeterogeneity) {
  // One PE at 0.5x; greedy must shift work off it (Fig 17 mechanism).
  Harness h(4);
  h.machine.pe(3).set_freq(0.5);
  auto arr = ArrayProxy<Worker>::create(h.rt);
  for (int i = 0; i < 32; ++i) arr.seed(i, i % 4);
  h.rt.lb().register_collection(arr.id());
  h.rt.lb().set_strategy(lb::make_greedy());
  h.rt.lb().set_period(2);
  h.rt.on_pe(0, [&] { arr.broadcast<&Worker::step>(IterMsg{8}); });
  h.machine.run();
  const auto slow_count = h.rt.collection(arr.id()).local(3).elems.size();
  const auto fast_count = h.rt.collection(arr.id()).local(0).elems.size();
  EXPECT_LT(slow_count, fast_count);
}

}  // namespace
