file(REMOVE_RECURSE
  "CMakeFiles/fig07_interop_sort.dir/fig07_interop_sort.cpp.o"
  "CMakeFiles/fig07_interop_sort.dir/fig07_interop_sort.cpp.o.d"
  "fig07_interop_sort"
  "fig07_interop_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_interop_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
