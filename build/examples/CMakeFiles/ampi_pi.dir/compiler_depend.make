# Empty compiler generated dependencies file for ampi_pi.
# This may be replaced when dependencies are built.
