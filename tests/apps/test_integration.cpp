// Cross-module integration tests: the paper's feature combinations —
// malleability driving a real app, MetaTemp vs periodic LB under DVFS,
// deep AMR depth ranges, AMPI messaging semantics under virtualization.

#include <gtest/gtest.h>

#include "ampi/ampi.hpp"
#include "lb/meta.hpp"
#include "malleability/malleability.hpp"
#include "miniapps/amr/amr.hpp"
#include "miniapps/leanmd/leanmd.hpp"
#include "miniapps/stencil/stencil.hpp"
#include "power/power_manager.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;

using charmtest::Harness;

TEST(Integration, LeanMdShrinkDoublesStepTimeExpandRestores) {
  // The Fig 5 mechanism end-to-end on the real mini-app.
  Harness h(8);
  leanmd::Params p;
  p.nx = p.ny = p.nz = 4;
  p.atoms_per_cell = 40;  // compute-dominated so PE count governs step time
  p.pair_cost = 25e-9;
  p.epsilon = 1e-6;
  leanmd::Simulation sim(h.rt, p);
  h.rt.lb().set_strategy(lb::make_greedy());
  ccs::Server ccs(h.rt, {.shrink_base_s = 0.01, .expand_base_s = 0.02, .per_pe_s = 0});

  bool finished = false;
  h.rt.on_pe(0, [&] {
    sim.run(6, Callback::to_function([&](ReductionResult&&) {
      ccs.request_shrink(4, Callback::ignore());
      sim.run(6, Callback::to_function([&](ReductionResult&&) {
        ccs.request_expand(8, Callback::ignore());
        sim.run(6, Callback::to_function([&](ReductionResult&&) { finished = true; }));
      }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(finished);
  ASSERT_EQ(h.rt.active_pes(), 8);

  // Extract per-phase steady step times from the LB round history, skipping
  // reconfiguration rounds and the first (warm-up) round of each phase.
  const auto& hist = h.rt.lb().history();
  ASSERT_GE(hist.size(), 18u);
  auto avg_steps = [&](int lo, int hi) {
    double sum = 0;
    int n = 0;
    for (int i = lo; i < hi; ++i) {
      const double dt = hist[static_cast<std::size_t>(i)].completed_at -
                        hist[static_cast<std::size_t>(i - 1)].completed_at;
      sum += dt;
      ++n;
    }
    return sum / n;
  };
  // Compare the two post-reconfig steady phases (both placed by the same
  // greedy balancer): 4 PEs vs 8 PEs.
  const double shrunk = avg_steps(9, 12);   // after the shrink reconfig settles
  const double full2 = avg_steps(15, 18);   // after the expand reconfig settles
  EXPECT_GT(shrunk, full2 * 1.5) << "halving PEs should ~double the step time";
  EXPECT_LT(full2, shrunk * 0.7) << "expanding back should restore throughput";
}

TEST(Integration, MetaTempBeatsNaiveDvfs) {
  auto run = [](power::Policy policy, bool meta) {
    sim::Machine m(sim::MachineConfig{8, {}, 4});
    Runtime rt(m);
    stencil::Params sp;
    sp.grid = 128;
    sp.tiles_x = sp.tiles_y = 8;
    sp.cell_cost = 8e-6;
    stencil::Sim sim(rt, sp);
    rt.lb().set_strategy(lb::make_greedy());
    if (meta) {
      rt.lb().set_advisor(lb::make_meta_advisor(
          {.imbalance_tol = 1.1, .horizon_rounds = 20, .default_lb_cost = 2e-3, .min_gap = 2}));
    }
    power::ThermalParams tp;
    tp.cool_spread = 0.8;
    power::DvfsParams dp;
    dp.threshold_c = 50;
    power::Manager pm(rt, tp, dp, 0.3);
    pm.start(policy);
    bool done = false;
    rt.on_pe(0, [&] {
      sim.run(400, Callback::to_function([&](ReductionResult&&) {
        done = true;
        rt.exit();
      }));
    });
    m.run();
    pm.stop();
    EXPECT_TRUE(done);
    return std::pair<double, double>(m.max_pe_clock(), pm.max_temp_seen());
  };
  auto [t_naive, temp_naive] = run(power::Policy::kNaiveDvfs, false);
  auto [t_meta, temp_meta] = run(power::Policy::kMetaTemp, true);
  EXPECT_LT(t_meta, t_naive) << "MetaTemp should recover part of the DVFS penalty";
  EXPECT_LT(temp_meta, 56.0) << "temperature stays constrained";
  EXPECT_LT(temp_naive, 56.0);
}

TEST(Integration, AmrDeeperDepthRangeStillConservesStructure) {
  Harness h(8);
  amr::Params p;
  p.block = 4;
  p.min_depth = 1;
  p.max_depth = 4;  // a 3-level dynamic range
  p.refine_threshold = 0.3;
  p.coarsen_threshold = 0.05;
  amr::Mesh mesh(h.rt, p);
  bool done = false;
  h.rt.on_pe(0, [&] {
    mesh.run(5, 3, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  EXPECT_GE(mesh.restructures(), 4);
  EXPECT_GE(mesh.max_depth_present(), 2);
  EXPECT_LE(mesh.max_depth_present(), 4);
  // Total block count is always congruent with an oct-tree leaf set:
  // N = 8^min + 7k for some k >= 0.
  const auto n = mesh.nblocks();
  EXPECT_EQ((n - 8) % 7, 0) << "leaf count must stay oct-tree-consistent";
}

TEST(Integration, AmpiTagAndSourceMatchingUnderVirtualization) {
  Harness h(2);
  std::vector<int> got;
  ampi::World world(h.rt, 8, [&](ampi::Comm& comm) {
    if (comm.rank() == 0) {
      // Receive tag 2 before tag 1, regardless of arrival order.
      got.push_back(comm.recv_value<int>(ampi::kAnySource, 2));
      got.push_back(comm.recv_value<int>(ampi::kAnySource, 1));
      got.push_back(comm.recv_value<int>(3, ampi::kAnyTag));
    } else if (comm.rank() == 1) {
      comm.send_value(0, 1, 100);
    } else if (comm.rank() == 2) {
      comm.send_value(0, 2, 200);
    } else if (comm.rank() == 3) {
      comm.send_value(0, 7, 300);
    }
  });
  bool completed = false;
  h.rt.on_pe(0, [&] {
    world.start(Callback::to_function([&](ReductionResult&&) { completed = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(completed);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 200);
  EXPECT_EQ(got[1], 100);
  EXPECT_EQ(got[2], 300);
}

TEST(Integration, DeterministicEndToEnd) {
  // The whole stack — app + LB + reductions — must be bit-deterministic.
  auto run = [] {
    Harness h(8);
    leanmd::Params p;
    p.nx = p.ny = p.nz = 3;
    p.atoms_per_cell = 10;
    p.clustering = 1.0;
    leanmd::Simulation sim(h.rt, p);
    h.rt.lb().set_strategy(lb::make_greedy());
    h.rt.lb().set_period(2);
    h.rt.on_pe(0, [&] { sim.run(6, Callback::ignore()); });
    h.machine.run();
    return std::tuple<double, double, std::uint64_t>(
        h.machine.max_pe_clock(), sim.kinetic_energy(), h.rt.messages_sent());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

}  // namespace
