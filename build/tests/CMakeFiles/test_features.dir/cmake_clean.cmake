file(REMOVE_RECURSE
  "CMakeFiles/test_features.dir/features/test_ft.cpp.o"
  "CMakeFiles/test_features.dir/features/test_ft.cpp.o.d"
  "CMakeFiles/test_features.dir/features/test_lb.cpp.o"
  "CMakeFiles/test_features.dir/features/test_lb.cpp.o.d"
  "CMakeFiles/test_features.dir/features/test_power_tuning.cpp.o"
  "CMakeFiles/test_features.dir/features/test_power_tuning.cpp.o.d"
  "CMakeFiles/test_features.dir/features/test_tram_malleability.cpp.o"
  "CMakeFiles/test_features.dir/features/test_tram_malleability.cpp.o.d"
  "test_features"
  "test_features.pdb"
  "test_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
