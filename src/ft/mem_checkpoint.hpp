#pragma once
// Double in-memory checkpoint and restart (§III-B; Zheng, Shi & Kale,
// FTC-Charm++, Cluster'04).
//
// CkStartMemCheckpoint: each PE PUPs its chares into its own memory AND into
// a buddy PE's memory.  On a process failure, the buddy's copies restore the
// failed PE's chares onto the replacement, and every chare rolls back to the
// last checkpoint; the application then continues.
//
// Hardening against injected failures (sim::FaultInjector):
//   * Checkpoints stage into scratch stores and commit atomically on
//     completion; a failure mid-checkpoint aborts the staged copy and the
//     previous committed checkpoint stays authoritative.
//   * Every asynchronous protocol leg carries the epoch it was issued under;
//     a failure bumps the epoch, so stale legs (of an aborted checkpoint or
//     an interrupted restore) become no-ops.
//   * Multiple failures before recovery completes accumulate victims; the
//     detection timer restarts and one combined restore revives them all.
//   * After a successful restore the double copies lost with the victims are
//     re-replicated, so a later failure of the old victim's buddy is again
//     recoverable.  Losing a PE *and* its buddy between re-replications is
//     unrecoverable, as in the paper — reported as a clean std::runtime_error.
//
// Failure injection discards the victim PE's chares and drops its queued
// messages; the same PE slot then plays the role of the replacement process
// (DESIGN.md §1).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/callback.hpp"
#include "runtime/runtime.hpp"

namespace sim {
class FaultInjector;
}

namespace charm::ft {

struct MemCkptParams {
  double pack_bw = 6.0e9;        ///< local PUP/copy bandwidth (B/s)
  double detect_delay = 10e-3;   ///< failure detection time before recovery (s)
  double barrier_count = 3.0;    ///< restart barriers (paper: "several")
};

/// One completed recovery (possibly covering several coalesced failures).
struct RecoveryRecord {
  int ordinal = 0;
  double fail_time = 0;          ///< first failure of the burst
  double done_time = 0;          ///< restore complete, application resumes
  std::vector<int> victims;      ///< PEs revived by this recovery
};

class MemCheckpointer {
 public:
  explicit MemCheckpointer(Runtime& rt, MemCkptParams params = {});

  /// CkStartMemCheckpoint(callback).  Throws std::logic_error if called
  /// while a recovery is pending (the global state is not consistent).
  void checkpoint(Callback done);

  /// Kill PE `victim`, run the recovery protocol, roll every chare back to
  /// the last checkpoint, then invoke `done`.  Throws std::logic_error when
  /// no checkpoint has been committed yet.
  void fail_and_recover(int victim, Callback done);

  /// Registers this checkpointer as `fi`'s failure listener: every injected
  /// failure starts (or extends) a recovery automatically.
  void attach_injector(sim::FaultInjector& fi);

  /// Called synchronously when a failure is observed (before detection).
  void set_failure_observer(std::function<void(int victim)> fn) {
    failure_observer_ = std::move(fn);
  }
  /// Called when a recovery completes and the application may resume.
  void set_recovery_observer(std::function<void()> fn) {
    recovery_observer_ = std::move(fn);
  }

  std::uint64_t checkpoint_bytes() const { return total_bytes_; }
  int checkpoints_taken() const { return checkpoints_; }
  int checkpoints_aborted() const { return ckpt_aborted_; }
  bool recovery_pending() const { return !pending_victims_.empty(); }
  int recoveries_completed() const { return recoveries_; }

  const std::vector<RecoveryRecord>& recovery_log() const { return recovery_log_; }
  /// Canonical text form; byte-identical across same-seed runs.
  std::string format_recovery_log() const;

 private:
  struct Copy {
    CollectionId col = -1;
    ObjIndex idx{};
    int pe = 0;  ///< owner PE at checkpoint time
    std::vector<std::byte> bytes;
  };

  /// Common failure path (manual fail_and_recover and injected failures).
  void on_failure(int victim, Callback done);
  /// Revives all pending victims and runs the combined rollback + restore.
  void begin_restore();

  Runtime& rt_;
  MemCkptParams params_;
  // local_[p]: copies of p's elements held in p's memory.
  // buddy_[b]: copies of ((b-1+P)%P)'s elements held in b's memory.
  std::vector<std::vector<Copy>> local_;
  std::vector<std::vector<Copy>> buddy_;
  // Staging stores for the checkpoint in flight (committed atomically).
  std::vector<std::vector<Copy>> stage_local_;
  std::vector<std::vector<Copy>> stage_buddy_;
  /// buddy_[b] holds committed data (an empty store is valid when the owner
  /// had no elements; it turns invalid when b's process is lost).
  std::vector<char> buddy_valid_;
  std::uint64_t stage_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  int checkpoints_ = 0;
  int ckpt_aborted_ = 0;
  bool ckpt_in_progress_ = false;
  /// Bumped on every failure; stale async legs compare and bail.
  std::uint64_t epoch_ = 0;
  std::vector<int> pending_victims_;
  std::vector<Callback> recovery_done_cbs_;
  int recoveries_ = 0;
  std::vector<RecoveryRecord> recovery_log_;
  std::function<void(int)> failure_observer_;
  std::function<void()> recovery_observer_;
  double burst_begin_ = 0;  ///< first failure time, for the trace restore span
};

}  // namespace charm::ft
