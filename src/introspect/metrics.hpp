#pragma once
// Live introspection (DESIGN.md §11): an online metrics monitor that keeps
// incremental per-PE counters on the emulator's hot path and snapshots them
// at a configurable virtual-time cadence with ZERO virtual-time perturbation.
//
// The zero-perturbation contract is the tracer's (DESIGN.md §4), extended to
// sampling: the Monitor attaches to a sim::Machine by pointer, every hook is
// a plain counter update that never calls charge(), and sampling rides the
// existing Machine::step boundaries — the sampler injects NO events of its
// own, so the event order, every virtual clock, and every figure series are
// bit-identical with metrics on or off.  The detached cost is one pointer
// test per event.
//
// Three consumption surfaces:
//   * live queries (Runtime::metrics()): per-PE busy/exec/utilization, ready
//     and event-queue depths with high watermarks, per-(collection,entry)
//     EWMA grain, locally computed imbalance λ — the hook the autoscaling /
//     LB-trigger work consumes (ROADMAP);
//   * a timeline: fixed-size POD samples recorded at t = k·interval (plus a
//     decision journal of LB rounds, FT checkpoints/rollbacks, failures and
//     malleability reconfigurations on the same clock), exported as the
//     byte-deterministic "timeseries"/"journal" stats sections;
//   * an OPT-IN reduction-based cluster summary: per-PE busy gathered up the
//     PR-7 spanning tree as real counted control messages with per-level
//     (max, sum, count) combine — consumers that want a λ computed by real
//     traffic pay its (deterministic) virtual-time cost explicitly.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/paged_table.hpp"

namespace sim {
class Machine;
}
namespace charm {
class Runtime;
}
namespace stats {
struct MetricsMeta;
}

namespace introspect {

/// Decision-journal event kinds, tagged onto the sample timeline.
enum class JournalKind : std::uint8_t {
  kLbRound,     ///< an LB strategy ran; aux = migrations, value = round cost (s)
  kCheckpoint,  ///< FT checkpoint committed; value = checkpoint bytes
  kRestore,     ///< FT rollback completed; aux = victims, value = recovery (s)
  kFailure,     ///< a PE was quarantined; aux = victim PE
  kShrink,      ///< malleability reconfig down; aux = target PEs, value = old
  kExpand,      ///< malleability reconfig up; aux = target PEs, value = old
};

/// Stable wire name for a journal kind ("lb_round", "checkpoint", ...).
const char* journal_kind_name(JournalKind k);

struct JournalEvent {
  double t = 0;
  JournalKind kind{};
  int aux = 0;
  double value = 0;
};

/// Live cumulative counters for one PE (since attach).  `busy` counts entry-
/// method virtual time and `exec` handler virtual time, matching the
/// post-mortem stats::PeUsage definitions so the two reconcile on a run.
struct PeCounters {
  double busy = 0;
  double exec = 0;
  std::uint64_t execs = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint32_t ready = 0;      ///< instantaneous ready-queue depth
  std::uint32_t ready_hwm = 0;  ///< high watermark since attach
};

/// Per-(collection, entry) execution-grain statistics with an EWMA of the
/// invocation grain (the live analogue of the post-mortem grain columns).
struct EntryLoad {
  std::uint64_t calls = 0;
  double total = 0;
  double ewma = 0;
};

/// One timeline sample.  Fixed-size POD: recording one writes these fields
/// and touches nothing else, so steady-state sampling is allocation-free
/// (gated by the operator-new-counting test).  Cumulative fields are
/// since-attach totals; `*_hwm` are high watermarks over the sample window;
/// rates are window deltas divided by the interval.
struct Sample {
  double t = 0;
  double busy_max = 0;
  double busy_avg = 0;
  double lambda = 0;  ///< busy_max / busy_avg (0 while nothing ran)
  double busy = 0;
  double exec = 0;
  std::uint64_t execs = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t coll_msgs = 0;
  std::uint64_t coll_bytes = 0;
  double msg_rate = 0;
  double byte_rate = 0;
  std::uint64_t ready = 0;      ///< total ready depth at the sample boundary
  std::uint64_t ready_hwm = 0;  ///< max total ready depth in the window
  std::uint64_t evq = 0;        ///< global event-queue depth at the boundary
  std::uint64_t evq_hwm = 0;    ///< max event-queue depth in the window
};

/// Result of a tree-summary wave (request_summary).
struct ClusterSummary {
  double t = -1;  ///< virtual time the wave completed (-1: none yet)
  int pes = 0;
  double busy_max = 0;
  double busy_avg = 0;
  double lambda = 0;
};

class Monitor {
 public:
  Monitor() = default;
  ~Monitor() { detach(); }
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // ---- lifecycle -------------------------------------------------------

  /// Attaches to `m` (detaching from any previous machine) and resets all
  /// counters, samples, and journal entries.
  void attach(sim::Machine& m);
  void detach();
  bool attached() const { return machine_ != nullptr; }

  /// Sampling cadence in virtual seconds; 0 disables the timeline (counters
  /// stay live).  Takes effect from the next attach()/now, with boundaries
  /// always at exact multiples of the interval.
  void set_interval(double dt);
  double interval() const { return interval_; }

  /// Pre-sizes the sample buffer (default reserve kSampleReserve) so
  /// steady-state sampling never reallocates inside the measured window.
  void reserve_samples(std::size_t n) { samples_.reserve(n); }

  // ---- live queries ----------------------------------------------------

  int npes() const { return static_cast<int>(pes_.size()); }
  /// Reads untouched PEs as all-zero counters without materializing them.
  const PeCounters& pe(int i) const {
    return pes_.at_or_default(static_cast<std::size_t>(i));
  }
  /// PEs whose counters were ever written (first-touch census).
  std::size_t touched_pes() const { return pes_.touched(); }
  /// Host bytes held by the per-PE counter storage.
  std::size_t counter_bytes() const { return pes_.memory_bytes(); }
  /// Virtual time of the most recent machine step.
  double time() const { return last_time_; }
  /// exec fraction of the PE's elapsed virtual time so far.
  double utilization(int i) const {
    return last_time_ > 0 ? pe(i).exec / last_time_ : 0;
  }
  /// λ = max/avg over cumulative per-PE busy (local read, no messages).
  double imbalance() const;
  double total_busy() const { return busy_; }
  double total_exec() const { return exec_; }
  std::uint64_t total_execs() const { return execs_; }
  std::uint64_t total_msgs() const { return msgs_; }
  std::uint64_t total_bytes() const { return bytes_; }
  std::uint64_t collective_msgs() const { return coll_msgs_; }
  std::uint64_t collective_bytes() const { return coll_bytes_; }
  /// Total ready-queue population across PEs right now.
  std::uint64_t ready_depth() const { return cur_ready_; }
  /// Global event-queue depth as of the last step.
  std::uint64_t event_queue_depth() const { return last_evq_; }

  const std::map<std::pair<int, int>, EntryLoad>& entry_loads() const {
    return entry_loads_;
  }
  const std::vector<Sample>& samples() const { return samples_; }
  const std::vector<JournalEvent>& journal_events() const { return journal_; }
  /// Samples not recorded because the buffer hit kSampleCap.
  std::uint64_t dropped_samples() const { return dropped_samples_; }

  // ---- decision journal ------------------------------------------------

  void journal(JournalKind kind, double t, int aux, double value) {
    journal_.push_back(JournalEvent{t, kind, aux, value});
  }

  // ---- opt-in tree summary (real counted messages) ---------------------

  using SummaryFn = std::function<void(const ClusterSummary&)>;

  /// Gathers (max, sum, count) of per-PE busy up the k-ary spanning tree
  /// (arity = rt.config().tree_fanout, root 0, over active PEs) as real
  /// counted control messages with per-level combine; the root computes the
  /// global λ, stores it as last_summary(), and invokes `done`.  One wave at
  /// a time; throws std::logic_error if a wave is already in flight.
  void request_summary(charm::Runtime& rt, SummaryFn done = {});
  bool summary_in_flight() const { return summary_.active; }
  const ClusterSummary& last_summary() const { return last_summary_; }
  /// Partial-combine messages sent by summary waves so far.
  std::uint64_t summary_partials() const { return summary_partials_; }

  // ---- export ----------------------------------------------------------

  /// Fills the stats exporter's metrics block (interval, timeseries samples,
  /// journal rows) for the "timeseries"/"journal" JSON sections.
  void fill_export(stats::MetricsMeta& out) const;

  // ---- hot-path hooks (called by Machine / Runtime) --------------------
  // None of these charge virtual time; all are O(1) except the snapshot
  // scan (O(P), only at a crossed sample boundary).

  void on_send(int src, std::size_t bytes) {
    PeCounters& pc = pes_.ref(static_cast<std::size_t>(src));
    ++pc.msgs_sent;
    pc.bytes_sent += bytes;
    ++msgs_;
    bytes_ += bytes;
  }
  void on_collective(std::size_t bytes) {
    ++coll_msgs_;
    coll_bytes_ += bytes;
  }
  void on_arrive(int pe, std::size_t ready_depth) { note_ready(pe, ready_depth); }
  void on_exec(int pe, double span, std::size_t ready_depth) {
    PeCounters& pc = pes_.ref(static_cast<std::size_t>(pe));
    pc.exec += span;
    ++pc.execs;
    exec_ += span;
    ++execs_;
    note_ready(pe, ready_depth);
  }
  void on_queue_change(int pe, std::size_t ready_depth) { note_ready(pe, ready_depth); }
  void on_entry(int pe, int col, int ep, double dt);
  /// End of every Machine::step: refresh event-queue depth and record any
  /// crossed sample boundaries (timestamps are exact multiples of the
  /// interval, so the timeline is monotone and byte-deterministic).
  void on_step(double now, std::size_t evq_depth) {
    last_time_ = now;
    last_evq_ = evq_depth;
    if (evq_depth > evq_hwm_w_) evq_hwm_w_ = evq_depth;
    if (interval_ > 0 && now >= next_boundary_) sample_up_to(now);
  }
  /// Called by Machine's destructor so a longer-lived Monitor never touches
  /// a dead machine on the next attach().
  void machine_gone() { machine_ = nullptr; }

  static constexpr std::size_t kSampleReserve = 4096;
  static constexpr std::size_t kSampleCap = 1u << 17;
  static constexpr double kEwmaAlpha = 0.25;

 private:
  void reset(int npes);
  void note_ready(int pe, std::size_t depth) {
    PeCounters& pc = pes_.ref(static_cast<std::size_t>(pe));
    const std::uint32_t d = static_cast<std::uint32_t>(depth);
    cur_ready_ += d;
    cur_ready_ -= pc.ready;
    pc.ready = d;
    if (d > pc.ready_hwm) pc.ready_hwm = d;
    if (cur_ready_ > ready_hwm_w_) ready_hwm_w_ = cur_ready_;
  }
  void sample_up_to(double now);
  void record_sample(double t);

  // Tree-summary wave state (see metrics.cpp).
  struct SummaryWave {
    bool active = false;
    int npes = 0;
    int arity = 2;
    std::vector<double> max, sum;
    std::vector<int> cnt, pending;
    SummaryFn done;
  };
  void summary_ready(charm::Runtime& rt, int rank);
  void summary_arrive(charm::Runtime& rt, int rank, double mx, double sm, int ct);

  sim::Machine* machine_ = nullptr;
  double interval_ = 0;
  double next_boundary_ = 0;
  std::uint64_t sample_k_ = 0;

  /// Per-PE counters, paged on first touch: the Monitor's footprint follows
  /// the live touched-PE population, not the configured P (DESIGN.md §12).
  sim::PagedTable<PeCounters> pes_;
  std::map<std::pair<int, int>, EntryLoad> entry_loads_;
  double busy_ = 0;
  double exec_ = 0;
  std::uint64_t execs_ = 0;
  std::uint64_t msgs_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t coll_msgs_ = 0;
  std::uint64_t coll_bytes_ = 0;
  std::uint64_t last_msgs_ = 0;   ///< window baselines for the rate fields
  std::uint64_t last_bytes_ = 0;
  std::uint64_t cur_ready_ = 0;
  std::uint64_t ready_hwm_w_ = 0;
  std::uint64_t last_evq_ = 0;
  std::uint64_t evq_hwm_w_ = 0;
  double last_time_ = 0;

  std::vector<Sample> samples_;
  std::uint64_t dropped_samples_ = 0;
  std::vector<JournalEvent> journal_;

  SummaryWave summary_;
  ClusterSummary last_summary_;
  std::uint64_t summary_partials_ = 0;
};

}  // namespace introspect
