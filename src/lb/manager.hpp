#pragma once
// LB manager: the AtSync protocol (§III-A).
//
// Every element of each LB-registered collection calls at_sync() once per
// iteration.  When all have synced, the manager either releases them
// immediately (modeled barrier cost only) or runs a strategy round: gather
// stats, compute a new mapping, migrate chares, then resume everyone.
// Malleable shrink/expand (§III-D) and the power manager's temperature-aware
// rebalancing (§III-C) are implemented as externally triggered rounds.
//
// The manager keeps the chare load database (lb::LoadDb) continuously
// up to date — the runtime notifies it on every element add/remove (seed,
// migration, destroy, checkpoint-restore, shrink/expand) and each AtSync
// records the element's round load in O(1) — so a strategy round reads an
// incrementally-maintained snapshot instead of re-walking every chare
// (DESIGN.md §13).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "lb/load_db.hpp"
#include "lb/strategy.hpp"
#include "runtime/callback.hpp"
#include "runtime/types.hpp"

namespace charm {

class Runtime;
class Collection;
class ArrayElementBase;

namespace lb {

struct RoundInfo {
  int round = 0;
  Time completed_at = 0;
  double avg_work = 0;   ///< mean per-PE work this round
  double max_load = 0;   ///< max per-PE completion time this round
  double avg_load = 0;   ///< mean per-PE completion time this round
  bool did_lb = false;
  int migrations = 0;
  double lb_cost = 0;    ///< virtual seconds from barrier to resume
};

/// Decides whether to run the balancer this round (MetaLB plugs in here).
using Advisor = std::function<bool(const std::vector<RoundInfo>& history,
                                   const RoundInfo& current)>;

class Manager {
 public:
  explicit Manager(Runtime& rt);
  ~Manager();

  void register_collection(CollectionId col);

  void set_strategy(std::unique_ptr<Strategy> s);
  Strategy* strategy() const { return strategy_.get(); }

  /// Run the strategy every `rounds` AtSync rounds (0 = only when forced).
  void set_period(int rounds) { period_ = rounds; }
  void set_advisor(Advisor a) { advisor_ = std::move(a); }
  /// Grapevine-style fully distributed balancing instead of a central strategy.
  void use_distributed(bool on, std::uint64_t seed = 42) {
    distributed_ = on;
    dist_seed_ = seed;
  }

  /// Force a strategy run at the next AtSync round.
  void request_lb() { forced_ = true; }

  /// Malleable reconfiguration: at the next round, remap every chare onto
  /// `new_active_pes` PEs, charge `restart_delay` (process boot/reconnect
  /// model), then resume and invoke `done`.
  void request_reconfig(int new_active_pes, double restart_delay, Callback done);

  /// Called by ArrayElementBase::at_sync().
  void element_sync(ArrayElementBase& elem);

  /// Called by the runtime when an LB-initiated migration lands.
  void note_migration_arrival();

  /// Runtime lifecycle hooks keeping the load database current.  O(1) no-ops
  /// for elements of collections not registered for load balancing.
  void on_element_added(Collection& c, ArrayElementBase& e);
  void on_element_removed(ArrayElementBase& e);

  /// Aborts any in-flight AtSync round (checkpoint-restore rollback): a PE
  /// failure mid-round loses that round's messages for good, so recovery
  /// resets to collecting and lets the replayed elements sync afresh.
  void reset_round_state();

  /// Strategy input from the maintained database (O(dirty)); exposed for the
  /// incremental-vs-rebuild oracle tests and benchmarks.
  Stats snapshot_stats(int target_pes);
  /// The old from-scratch gather (walk every touched PE, sort), kept as the
  /// reference the database snapshot must match bit-for-bit.
  Stats rebuild_stats(int target_pes) const;

  const LoadDb::Counters& db_counters() const { return db_.counters(); }

  const std::vector<RoundInfo>& history() const { return history_; }
  int rounds_completed() const { return round_; }
  int lb_invocations() const { return lb_invocations_; }

  // Cost-model knobs.
  double stats_bytes_per_chare = 32.0;
  double strategy_cost_per_chare = 1.0e-6;
  double strategy_base_cost = 20e-6;
  double migrate_unpack_extra = 0;

 private:
  enum class Phase : std::uint8_t { kCollecting, kBalancing };

  void round_complete();
  void run_central(int target_pes);
  void run_distributed();
  void begin_migrations(const std::vector<Migration>& migs);
  void resume_all(double extra_delay);
  Stats collect_stats(int target_pes);
  std::int64_t registered_total() const;
  bool tracked(CollectionId col) const {
    return static_cast<std::size_t>(col) < tracked_.size() && tracked_[static_cast<std::size_t>(col)];
  }
  const SpeedMap& current_speeds();

  Runtime& rt_;
  std::vector<CollectionId> cols_;
  std::vector<char> tracked_;  ///< col id -> feeds the load database
  LoadDb db_;
  SpeedMap speeds_;  ///< scratch, refreshed from the machine each use
  std::unique_ptr<Strategy> strategy_;
  Advisor advisor_;
  int period_ = 0;
  bool forced_ = false;
  bool distributed_ = false;
  std::uint64_t dist_seed_ = 42;

  Phase phase_ = Phase::kCollecting;
  std::int64_t synced_ = 0;
  int round_ = 0;
  int lb_invocations_ = 0;
  Time round_started_ = 0;

  std::int64_t migrations_expected_ = 0;
  std::int64_t migrations_arrived_ = 0;
  bool migrations_dispatched_ = false;

  bool reconfig_pending_ = false;
  int reconfig_target_ = 0;
  double reconfig_delay_ = 0;
  Callback reconfig_done_;
  RoundInfo pending_;

  std::vector<RoundInfo> history_;
};

}  // namespace lb

using LbManager = lb::Manager;

}  // namespace charm
