#pragma once
// Temperature-aware DVFS control (§III-C, Fig 4).
//
// The manager samples per-chip utilization every control period, integrates
// the thermal model, and applies the selected policy:
//   kNone      — no DVFS (Base): chips run hot, no timing penalty from DVFS.
//   kNaiveDvfs — DVFS constrains temperature; the resulting frequency spread
//                creates load imbalance and a large timing penalty.
//   kDvfsLb    — DVFS plus periodic temperature-aware load balancing every
//                lb_period seconds (LB_10s / LB_5s in the paper).
//   kMetaTemp  — DVFS plus MetaLB-style triggering: rebalance only when the
//                measured benefit outweighs the cost.
//
// Frequency changes act through sim::Pe::set_freq, so hot, throttled chips
// really do run their chares slower in virtual time; the LB strategies are
// speed-aware and shift work accordingly.

#include <vector>

#include "power/thermal.hpp"
#include "runtime/runtime.hpp"

namespace charm::power {

enum class Policy { kNone, kNaiveDvfs, kDvfsLb, kMetaTemp };

struct DvfsParams {
  std::vector<double> levels{0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  double threshold_c = 50.0;  ///< throttle above this chip temperature
  double margin_c = 3.0;      ///< unthrottle below threshold - margin
};

class Manager {
 public:
  Manager(Runtime& rt, ThermalParams thermal, DvfsParams dvfs, double period_s);

  /// Begin periodic control.  For kDvfsLb, `lb_period_s` sets the fixed
  /// rebalance interval; for kMetaTemp install a MetaLB advisor on rt.lb()
  /// before starting.
  void start(Policy policy, double lb_period_s = 0);
  void stop() { running_ = false; }

  const ThermalModel& thermal() const { return model_; }
  double max_temp_seen() const { return model_.max_seen(); }
  int throttle_events() const { return throttles_; }
  int chip_of(int pe) const { return pe / pes_per_chip_; }
  int nchips() const { return model_.nchips(); }

 private:
  void tick();
  void apply_dvfs();

  Runtime& rt_;
  DvfsParams dvfs_;
  double period_;
  int pes_per_chip_;
  ThermalModel model_;
  Policy policy_ = Policy::kNone;
  double lb_period_ = 0;
  double last_lb_ = 0;
  bool running_ = false;
  std::vector<double> last_busy_;
  std::vector<int> level_;  ///< current DVFS level index per chip
  int throttles_ = 0;
};

}  // namespace charm::power
