#include "stats/json_export.hpp"

#include <cstdio>
#include <fstream>

#include "stats/json.hpp"

namespace stats {

namespace {

// Tiny append-only writer: the schema is emitted in one fixed order, so all
// we need is comma management and canonical scalars.
class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void raw(const char* s) { out_ += s; }
  void key(const char* k) {
    comma();
    out_.push_back('"');
    out_ += k;
    out_ += "\":";
    fresh_ = true;
  }
  void open_obj() { scope('{'); }
  void close_obj() { close('}'); }
  void open_arr() { scope('['); }
  void close_arr() { close(']'); }
  void num(double v) {
    comma();
    out_ += json::format_double(v);
  }
  void num(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void num(int v) {
    comma();
    out_ += std::to_string(v);
  }
  void str(const std::string& s) {
    comma();
    out_.push_back('"');
    out_ += json::escape(s);
    out_.push_back('"');
  }
  void boolean(bool b) {
    comma();
    out_ += b ? "true" : "false";
  }

 private:
  void comma() {
    if (!fresh_) out_.push_back(',');
    fresh_ = false;
  }
  void scope(char c) {
    comma();
    out_.push_back(c);
    fresh_ = true;
  }
  void close(char c) {
    out_.push_back(c);
    fresh_ = false;
  }

  std::string& out_;
  bool fresh_ = true;
};

void write_imbalance(Writer& w, const ImbalanceStats& im) {
  w.open_obj();
  w.key("busy_max");
  w.num(im.busy_max);
  w.key("busy_avg");
  w.num(im.busy_avg);
  w.key("sigma");
  w.num(im.busy_sigma);
  w.key("ratio");
  w.num(im.ratio);
  w.close_obj();
}

void write_hist(Writer& w, const Histogram& h) {
  w.open_arr();
  for (std::uint64_t b : h.buckets) w.num(b);
  w.close_arr();
}

std::string entry_label(const ExportMeta& meta, int col, int ep) {
  if (col < 0) return "runtime";
  if (meta.label) {
    const std::string s = meta.label(col, ep);
    if (!s.empty()) return s;
  }
  if (ep < 0) return "col" + std::to_string(col) + ".apply";
  return "col" + std::to_string(col) + ".ep" + std::to_string(ep);
}

}  // namespace

std::string to_json(const Report& r, const ExportMeta& meta) {
  std::string out;
  out.reserve(1 << 16);
  Writer w(out);

  w.open_obj();
  w.key("schema");
  w.str(kSchemaName);
  w.key("version");
  w.num(kSchemaVersion);
  w.key("bench");
  w.str(meta.bench);
  w.key("smoke");
  w.boolean(meta.smoke);
  w.key("npes");
  w.num(r.npes);
  w.key("makespan");
  w.num(r.makespan);
  w.key("events");
  w.num(r.events);

  w.key("series");
  w.open_arr();
  for (const SeriesTable& t : meta.series) {
    w.open_obj();
    w.key("title");
    w.str(t.title);
    w.key("columns");
    w.open_arr();
    for (const std::string& c : t.columns) w.str(c);
    w.close_arr();
    w.key("rows");
    w.open_arr();
    for (const auto& row : t.rows) {
      w.open_arr();
      for (double v : row) w.num(v);
      w.close_arr();
    }
    w.close_arr();
    w.close_obj();
  }
  w.close_arr();

  w.key("notes");
  w.open_arr();
  for (const std::string& n : meta.notes) w.str(n);
  w.close_arr();

  if (!meta.taskbench.empty()) {
    w.key("taskbench");
    w.open_arr();
    for (const TaskbenchCell& c : meta.taskbench) {
      w.open_obj();
      w.key("pattern");
      w.str(c.pattern);
      w.key("transport");
      w.str(c.transport);
      w.key("npes");
      w.num(c.npes);
      w.key("width");
      w.num(c.width);
      w.key("steps");
      w.num(c.steps);
      w.key("grain");
      w.num(c.grain);
      w.key("payload_doubles");
      w.num(c.payload_doubles);
      w.key("fanout");
      w.num(c.fanout);
      w.key("seed");
      w.num(c.seed);
      w.key("tasks");
      w.num(c.tasks);
      w.key("edges");
      w.num(c.edges);
      w.key("msgs");
      w.num(c.msgs);
      w.key("bytes");
      w.num(c.bytes);
      w.key("makespan");
      w.num(c.makespan);
      w.key("ideal");
      w.num(c.ideal);
      w.key("efficiency");
      w.num(c.efficiency);
      w.key("overhead_per_task");
      w.num(c.overhead_per_task);
      w.key("tram_aggregation");
      w.num(c.tram_aggregation);
      w.close_obj();
    }
    w.close_arr();
  }

  if (!meta.collectives.empty()) {
    w.key("collectives");
    w.open_arr();
    for (const CollectivesCell& c : meta.collectives) {
      w.open_obj();
      w.key("topology");
      w.str(c.topology);
      w.key("arity");
      w.num(c.arity);
      w.key("npes");
      w.num(c.npes);
      w.key("elements");
      w.num(c.elements);
      w.key("rounds");
      w.num(c.rounds);
      w.key("payload_doubles");
      w.num(c.payload_doubles);
      w.key("msgs");
      w.num(c.msgs);
      w.key("bytes");
      w.num(c.bytes);
      w.key("partial_sends");
      w.num(c.partial_sends);
      w.key("makespan");
      w.num(c.makespan);
      w.key("time_per_round");
      w.num(c.time_per_round);
      w.close_obj();
    }
    w.close_arr();
  }

  if (meta.metrics.enabled) {
    w.key("metrics_interval");
    w.num(meta.metrics.interval);
    w.key("timeseries");
    w.open_arr();
    for (const MetricsSample& s : meta.metrics.samples) {
      w.open_obj();
      w.key("t");
      w.num(s.t);
      w.key("busy_max");
      w.num(s.busy_max);
      w.key("busy_avg");
      w.num(s.busy_avg);
      w.key("lambda");
      w.num(s.lambda);
      w.key("busy");
      w.num(s.busy);
      w.key("exec");
      w.num(s.exec);
      w.key("execs");
      w.num(s.execs);
      w.key("msgs");
      w.num(s.msgs);
      w.key("bytes");
      w.num(s.bytes);
      w.key("coll_msgs");
      w.num(s.coll_msgs);
      w.key("coll_bytes");
      w.num(s.coll_bytes);
      w.key("msg_rate");
      w.num(s.msg_rate);
      w.key("byte_rate");
      w.num(s.byte_rate);
      w.key("ready");
      w.num(s.ready);
      w.key("ready_hwm");
      w.num(s.ready_hwm);
      w.key("evq");
      w.num(s.evq);
      w.key("evq_hwm");
      w.num(s.evq_hwm);
      w.close_obj();
    }
    w.close_arr();
    w.key("journal");
    w.open_arr();
    for (const MetricsJournalRow& j : meta.metrics.journal) {
      w.open_obj();
      w.key("t");
      w.num(j.t);
      w.key("kind");
      w.str(j.kind);
      w.key("aux");
      w.num(j.aux);
      w.key("value");
      w.num(j.value);
      w.close_obj();
    }
    w.close_arr();
  }

  w.key("totals");
  w.open_obj();
  w.key("busy");
  w.num(r.total_busy());
  w.key("exec");
  w.num(r.total_exec());
  w.key("overhead");
  w.num(r.total_exec() - r.total_busy());
  w.key("execs");
  w.num(r.total_execs());
  w.close_obj();

  w.key("pes");
  w.open_arr();
  for (int pe = 0; pe < r.npes; ++pe) {
    const PeUsage& p = r.pes[static_cast<std::size_t>(pe)];
    w.open_obj();
    w.key("pe");
    w.num(pe);
    w.key("busy");
    w.num(p.busy);
    w.key("exec");
    w.num(p.exec);
    w.key("overhead");
    w.num(p.overhead());
    w.key("idle");
    w.num(p.idle);
    w.key("execs");
    w.num(p.execs);
    w.key("queue_wait");
    w.num(p.queue_wait);
    w.key("msgs_sent");
    w.num(p.msgs_sent);
    w.key("bytes_sent");
    w.num(p.bytes_sent);
    w.key("msgs_recv");
    w.num(p.msgs_recv);
    w.key("bytes_recv");
    w.num(p.bytes_recv);
    w.close_obj();
  }
  w.close_arr();

  w.key("entries");
  w.open_arr();
  for (const EntryUsage& u : r.entries) {
    w.open_obj();
    w.key("pe");
    w.num(u.pe);
    w.key("col");
    w.num(u.col);
    w.key("ep");
    w.num(u.ep);
    w.key("name");
    w.str(entry_label(meta, u.col, u.ep));
    w.key("calls");
    w.num(u.calls);
    w.key("busy");
    w.num(u.busy);
    w.key("exec");
    w.num(u.exec);
    w.key("overhead");
    w.num(u.overhead());
    w.key("grain_min");
    w.num(u.grain_min);
    w.key("grain_avg");
    w.num(u.grain_avg());
    w.key("grain_max");
    w.num(u.grain_max);
    w.close_obj();
  }
  w.close_arr();

  w.key("comm");
  w.open_obj();
  w.key("sends");
  w.num(r.messages.sends);
  w.key("bytes");
  w.num(r.messages.bytes);
  w.key("hops");
  w.num(r.messages.hops);
  w.key("latency_total");
  w.num(r.messages.total_latency);
  w.key("latency_max");
  w.num(r.messages.max_latency);
  w.key("queue_wait_total");
  w.num(r.messages.total_queue_wait);
  w.key("size_log2");
  write_hist(w, r.messages.size_log2);
  w.key("hops_log2");
  write_hist(w, r.messages.hops_log2);
  w.key("entry_ns_log2");
  write_hist(w, r.entry_ns_log2);
  w.key("cells");
  w.open_arr();
  for (const CommCell& c : r.comm) {
    w.open_arr();
    w.num(c.src);
    w.num(c.dst);
    w.num(c.msgs);
    w.num(c.bytes);
    w.close_arr();
  }
  w.close_arr();
  w.close_obj();

  w.key("imbalance");
  write_imbalance(w, r.imbalance);

  w.key("phases");
  w.open_arr();
  for (const PhaseStats& ph : r.phases) {
    w.open_obj();
    w.key("name");
    w.str(ph.name);
    w.key("t0");
    w.num(ph.t0);
    w.key("t1");
    w.num(ph.t1);
    w.key("busy");
    w.num(ph.busy);
    w.key("exec");
    w.num(ph.exec);
    w.key("idle");
    w.num(ph.idle);
    w.key("imbalance");
    write_imbalance(w, ph.imbalance);
    w.close_obj();
  }
  w.close_arr();

  w.key("critical_path");
  w.open_obj();
  w.key("length");
  w.num(r.critical_path.length);
  w.key("work");
  w.num(r.critical_path.work);
  w.key("comm");
  w.num(r.critical_path.comm);
  w.key("nodes");
  w.num(r.critical_path.nodes);
  w.key("edges_matched");
  w.num(r.critical_path.edges_matched);
  w.key("makespan_ratio");
  w.num(r.makespan > 0 ? r.critical_path.length / r.makespan : 0);
  w.close_obj();

  w.close_obj();
  out.push_back('\n');
  return out;
}

bool write_json_file(const Report& r, const ExportMeta& meta, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return false;
  const std::string body = to_json(r, meta);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  return out.good();
}

}  // namespace stats
