file(REMOVE_RECURSE
  "CMakeFiles/micro_runtime.dir/micro_runtime.cpp.o"
  "CMakeFiles/micro_runtime.dir/micro_runtime.cpp.o.d"
  "micro_runtime"
  "micro_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
