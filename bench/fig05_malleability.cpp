// Fig 5: malleable LeanMD — shrink from P to P/2, then expand back.
//
// The iteration-time trace shows: ~2x per-step time after the shrink, the
// original time after the expand, and reconfiguration spikes at both events
// (dominated by the modeled process restart/reconnect, as in the paper:
// 2.7 s shrink, 7.2 s expand at 256 cores).

#include "bench_common.hpp"
#include "malleability/malleability.hpp"
#include "miniapps/leanmd/leanmd.hpp"

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  using namespace charm;
  bench::header("Figure 5", "LeanMD shrink 32->16 then expand 16->32 (Stampede-like run)");

  sim::Machine m(bench::machine_config(32, sim::NetworkParams::cray_gemini()));
  bench::attach_trace(m);
  Runtime rt(m);
  leanmd::Params p;
  p.nx = p.ny = p.nz = 6;
  p.atoms_per_cell = 24;
  p.pair_cost = 25e-9;
  p.epsilon = 1e-6;
  leanmd::Simulation sim(rt, p);
  rt.lb().set_strategy(lb::make_greedy());
  ccs::Server ccs(rt);

  const int phase_steps = bench::cap_steps(25, 6);
  bool all_done = false;
  rt.on_pe(0, [&] {
    sim.run(phase_steps, Callback::to_function([&](ReductionResult&&) {
      // External CCS shrink command arrives.
      ccs.request_shrink(16, Callback::ignore());
      sim.run(phase_steps, Callback::to_function([&](ReductionResult&&) {
        ccs.request_expand(32, Callback::ignore());
        sim.run(phase_steps, Callback::to_function([&](ReductionResult&&) {
          all_done = true;
          rt.exit();
        }));
      }));
    }));
  });
  m.run();
  if (!all_done) std::printf("   WARNING: run did not complete\n");

  bench::columns({"iteration", "step_time_s", "active_PEs_phase"});
  double prev = 0;
  int i = 0;
  for (const auto& r : rt.lb().history()) {
    const double dt = r.completed_at - prev;
    prev = r.completed_at;
    ++i;
    const int phase = i <= phase_steps ? 32 : (i <= 2 * phase_steps ? 16 : 32);
    if (i % 2 == 1 || r.did_lb)
      bench::row({static_cast<double>(i), dt, static_cast<double>(phase)});
  }
  bench::note("paper shape: step time ~doubles on shrink, recovers on expand;");
  bench::note("spikes at the shrink/expand iterations are the reconfiguration (process restart) cost");
  return bench::finish();
}
