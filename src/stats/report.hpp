#pragma once
// Post-mortem performance analytics over a trace log: the Projections-style
// views the paper's evaluation is built from (usage profiles, communication
// matrices, load-imbalance and phase breakdowns).  Everything here is derived
// from the tracer's event stream after the run — collection charges zero
// virtual time by construction, and the same event log always produces the
// same Report, so stats output is as deterministic as the simulation itself.
//
// The three consumers are the figure benches (--stats=FILE JSON emission),
// `tools/statsview` (human-readable reports and A-vs-B regression diffs), and
// the test suite's invariant checks.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace stats {

/// log2 histogram: bucket i counts values v with bit_width(v) == i, i.e.
/// bucket 0 holds v == 0 and bucket i >= 1 holds v in [2^(i-1), 2^i).
struct Histogram {
  std::vector<std::uint64_t> buckets;
  std::uint64_t total = 0;

  void add(std::uint64_t v);
  std::uint64_t count(std::size_t bucket) const {
    return bucket < buckets.size() ? buckets[bucket] : 0;
  }
};

/// One row of the Projections "usage profile": per (PE, collection, entry
/// method).  The synthetic key (col, ep) == (-1, -1) accumulates handler
/// executions that ran no entry method at all (pure runtime work: broadcast
/// forwarding, reduction combines, control traffic).
struct EntryUsage {
  int pe = -1;
  int col = -1;
  int ep = -1;
  std::uint64_t calls = 0;
  double busy = 0;       ///< Σ entry-span durations (application work)
  double exec = 0;       ///< attributed share of the containing exec spans
  double grain_min = 0;  ///< shortest single invocation
  double grain_max = 0;  ///< longest single invocation
  double overhead() const { return exec - busy; }
  double grain_avg() const { return calls ? busy / static_cast<double>(calls) : 0; }
};

/// Per-PE busy/exec/idle breakdown plus message totals.
struct PeUsage {
  std::uint64_t execs = 0;
  double busy = 0;   ///< time inside entry methods
  double exec = 0;   ///< total handler-execution time (busy ⊆ exec)
  double idle = 0;   ///< makespan − exec (includes post-completion tail)
  double queue_wait = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  double overhead() const { return exec - busy; }
};

/// One nonzero cell of the PE×PE communication matrix.
struct CommCell {
  int src = -1;
  int dst = -1;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
};

struct MessageStats {
  std::uint64_t sends = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hops = 0;
  double total_latency = 0;
  double max_latency = 0;
  double total_queue_wait = 0;
  Histogram size_log2;  ///< message payload bytes
  Histogram hops_log2;  ///< torus hops per message
};

/// max/avg/σ of per-PE busy time over an interval.  `ratio` is the classic
/// imbalance metric λ = max/avg (1.0 = perfectly balanced, 0 when idle).
struct ImbalanceStats {
  double busy_max = 0;
  double busy_avg = 0;
  double busy_sigma = 0;
  double ratio = 0;
};

/// One phase segment: the run is cut at the end of every recorded phase span
/// (LB step, checkpoint, restore, failure); with no phase events the whole
/// run is a single "run" segment.
struct PhaseStats {
  std::string name;  ///< phase span that *opened* this segment ("start" for the first)
  double t0 = 0;
  double t1 = 0;
  double busy = 0;  ///< Σ over PEs, clipped to [t0, t1)
  double exec = 0;
  double idle = 0;  ///< npes * (t1 - t0) − exec
  ImbalanceStats imbalance;
};

/// Longest-path estimate over the send→execute dependency DAG: each handler
/// execution depends on the message that triggered it, each message on the
/// point within its sender's execution where the send happened.  PE resource
/// serialization is deliberately *not* an edge, so `length` is the inherent
/// dependency chain — the floor no amount of PEs can beat — and
/// length ≤ makespan always holds.
struct CriticalPathStats {
  double length = 0;            ///< work + comm along the longest chain
  double work = 0;              ///< execution time on the chain
  double comm = 0;              ///< network latency on the chain
  std::uint64_t nodes = 0;      ///< exec spans on the chain
  std::uint64_t edges_matched = 0;  ///< sends matched to a triggering exec (diagnostic)
};

struct Report {
  int npes = 0;
  double makespan = 0;          ///< last exec-span end
  std::uint64_t events = 0;     ///< trace events consumed
  std::vector<PeUsage> pes;     ///< indexed by PE
  std::vector<EntryUsage> entries;  ///< sorted by (col, ep, pe)
  std::vector<CommCell> comm;       ///< nonzero cells, sorted by (src, dst)
  MessageStats messages;
  Histogram entry_ns_log2;      ///< entry-method durations in nanoseconds
  ImbalanceStats imbalance;     ///< whole-run
  std::vector<PhaseStats> phases;
  CriticalPathStats critical_path;

  double total_busy() const;
  double total_exec() const;
  std::uint64_t total_execs() const;
};

/// Builds the full report from a trace log.  Deterministic: same events, same
/// npes ⇒ identical Report (including double-for-double accumulation order).
Report collect(const std::vector<trace::Event>& events, int npes);

inline Report collect(const trace::Tracer& tracer, int npes) {
  return collect(tracer.events(), npes);
}

}  // namespace stats
