// Instrumentation helpers shared by the LB framework and benches: per-PE
// completion-time summaries from the automatic per-chare load measurements.

#include "lb/instrumentation.hpp"

#include <algorithm>
#include <numeric>

#include "runtime/runtime.hpp"

namespace charm::lb {

PeLoadSummary summarize_pe_loads(Runtime& rt, const std::vector<CollectionId>& cols) {
  PeLoadSummary s;
  s.per_pe.assign(static_cast<std::size_t>(rt.active_pes()), 0.0);
  for (CollectionId col : cols) {
    Collection& c = rt.collection(col);
    c.pe.for_each_touched([&](std::size_t pe, PeLocal& pl) {
      if (static_cast<int>(pe) >= rt.active_pes()) return;
      for (auto& [ix, obj] : pl.elems)
        s.per_pe[pe] += obj->measured_load();
    });
  }
  if (!s.per_pe.empty()) {
    s.max = *std::max_element(s.per_pe.begin(), s.per_pe.end());
    s.avg = std::accumulate(s.per_pe.begin(), s.per_pe.end(), 0.0) /
            static_cast<double>(s.per_pe.size());
  }
  return s;
}

}  // namespace charm::lb
