#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace sim {

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if (slot_count_ == (chunks_.size() << kChunkShift))
    chunks_.push_back(std::make_unique<Event[]>(std::size_t{1} << kChunkShift));
  return slot_count_++;
}

Event& EventQueue::emplace(Time time, std::uint64_t seq, Event::Kind kind,
                           int pe, int priority, std::size_t bytes) {
  // Park the event in an arena slot; only the 16-byte key takes part in the
  // sift, so the closure buffer inside the event's handler is never touched
  // again until the consumer moves it out.
  const std::uint32_t slot = acquire_slot();
  assert(slot <= kSlotMask && "event arena exceeded 2^24 pending events");
  assert(seq < (std::uint64_t{1} << (64 - kSlotBits)) &&
         "event sequence number exceeded 2^40");
  Event& e = slot_ref(slot);
  e.time = time;
  e.seq = seq;
  e.kind = kind;
  e.pe = pe;
  e.priority = priority;
  e.bytes = bytes;
  // e.fn is empty here: slots are recycled only through pop()/pop_top(),
  // both of which move out or destroy the handler.

  // Sift up with a hole: shift later parents down, then drop the key in.
  const Key key{time, (seq << kSlotBits) | slot};
  std::size_t i = heap_.size();
  heap_.push_back(Key{});
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(key, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = key;
  return e;
}

void EventQueue::push(Event e) {
  emplace(e.time, e.seq, e.kind, e.pe, e.priority, e.bytes).fn = std::move(e.fn);
}

void EventQueue::pop_top() {
  const auto slot =
      static_cast<std::uint32_t>(heap_.front().seq_slot & kSlotMask);
  slot_ref(slot).fn.reset();
  free_slots_.push_back(slot);

  const Key last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;

  // Sift the former last key down from the root, moving the earliest child
  // up into the hole at each level.
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

Event EventQueue::pop() {
  Event out = std::move(top_mutable());
  pop_top();
  return out;
}

void EventQueue::clear() {
  // Destroy the closures of events still pending (free slots are already
  // empty); the chunks themselves are kept for reuse.
  for (const Key& k : heap_)
    slot_ref(static_cast<std::uint32_t>(k.seq_slot & kSlotMask)).fn.reset();
  heap_.clear();
  free_slots_.clear();
  slot_count_ = 0;
}

void EventQueue::reserve(std::size_t n) {
  heap_.reserve(n);
  free_slots_.reserve(n);
  while ((chunks_.size() << kChunkShift) < n)
    chunks_.push_back(std::make_unique<Event[]>(std::size_t{1} << kChunkShift));
}

}  // namespace sim
