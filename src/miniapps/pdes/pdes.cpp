#include "miniapps/pdes/pdes.hpp"

#include <algorithm>
#include <limits>

namespace charm::pdes {

Callback Lp::window_cb;
std::optional<tram::Stream<&Lp::recv_event>> Lp::tram_stream;

namespace {
constexpr double kNoEvent = 1e30;  // "no pending event" sentinel (finite for kMin)
}  // namespace

Lp::Lp(const Params& p, ArrayProxy<Lp, std::int32_t> lps) : p_(p), lps_(lps) {}

void Lp::seed_events(const WindowMsg&) {
  rng_ = sim::Rng(sim::derive_seed(p_.seed, static_cast<std::uint64_t>(index())));
  for (int e = 0; e < p_.initial_events_per_lp; ++e) {
    heap_.push_back(rng_.next_exponential(p_.mean_delay));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  }
  contribute(next_ts(), ReduceOp::kMin, window_cb);
}

double Lp::next_ts() const { return heap_.empty() ? kNoEvent : heap_.front(); }

void Lp::recv_event(const EventMsg& m) {
  heap_.push_back(m.ts);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  charm::charge(0.1e-6);
}

void Lp::report_min(const WindowMsg&) { contribute(next_ts(), ReduceOp::kMin, window_cb); }

void Lp::emit(double ts) {
  const auto dest = static_cast<std::int32_t>(rng_.next_below(
      static_cast<std::uint64_t>(p_.nlps)));
  EventMsg m{ts};
  if (p_.use_tram && tram_stream.has_value()) {
    tram_stream->send(dest, m);
  } else {
    lps_[dest].send<&Lp::recv_event>(m);
  }
}

void Lp::execute_window(const WindowMsg& m) {
  // PHOLD: each executed event schedules one successor at
  // now + lookahead + Exp(mean) on a random LP.
  const double horizon = m.gvt + p_.lookahead;
  while (!heap_.empty() && heap_.front() < horizon) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const double ts = heap_.back();
    heap_.pop_back();
    ++executed_;
    charm::charge(p_.event_cost);
    emit(ts + p_.lookahead + rng_.next_exponential(p_.mean_delay));
  }
}

void Lp::pup(pup::Er& p) {
  ArrayElementBase::pup(p);
  p | p_;
  p | lps_;
  p | heap_;
  p | rng_;
  p | executed_;
}

// ---- Engine --------------------------------------------------------------------------

Engine::Engine(Runtime& rt, Params p) : rt_(rt), p_(p) {
  lps_ = ArrayProxy<Lp, std::int32_t>::create(rt);
  const int P = rt.active_pes();
  for (int i = 0; i < p.nlps; ++i) {
    lps_.seed(static_cast<std::int32_t>(i),
              static_cast<int>(static_cast<long>(i) * P / p.nlps), p_, lps_);
  }
  if (p.use_tram) {
    Lp::tram_stream.emplace(rt, lps_, tram::Params{p.tram_buffer, 8});
  }
}

Engine::~Engine() { Lp::tram_stream.reset(); }

void Engine::run_until(double end_time, Callback done) {
  end_time_ = end_time;
  done_ = std::move(done);
  Lp::window_cb = Callback::to_function(
      [this](ReductionResult&& r) { window_complete(r.num(0)); });
  lps_.broadcast<&Lp::seed_events>(WindowMsg{});
}

void Engine::window_complete(double gvt_min) {
  if (gvt_min >= end_time_ || gvt_min >= kNoEvent) {
    done_.invoke(rt_, ReductionResult{});
    return;
  }
  ++windows_;
  // Execute the window; once execution traffic quiesces, flush any items
  // still parked in TRAM buffers (with a cascading flush through intermediate
  // hops), quiesce again, then compute the next GVT.
  lps_.broadcast<&Lp::execute_window>(WindowMsg{gvt_min});
  rt_.start_quiescence(Callback::to_function([this](ReductionResult&&) {
    if (p_.use_tram && Lp::tram_stream.has_value()) {
      Lp::tram_stream->flush_all();
      rt_.start_quiescence(Callback::to_function([this](ReductionResult&&) {
        lps_.broadcast<&Lp::report_min>(WindowMsg{});
      }));
    } else {
      lps_.broadcast<&Lp::report_min>(WindowMsg{});
    }
  }));
}

std::uint64_t Engine::total_executed() const {
  std::uint64_t n = 0;
  Collection& c = rt_.collection(lps_.id());
  for (int pe = 0; pe < rt_.npes(); ++pe)
    for (auto& [ix, obj] : c.local(pe).elems) n += static_cast<Lp*>(obj.get())->executed();
  return n;
}

}  // namespace charm::pdes
