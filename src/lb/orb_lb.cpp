// OrbLB: orthogonal recursive bisection over chare spatial coordinates
// (§IV-C-3: Barnes-Hut balances TreePieces with ORB).  The chare set is
// recursively split along the widest coordinate dimension at the weighted
// median, with the PE range split proportionally to aggregate PE speed.

#include <algorithm>
#include <numeric>

#include "lb/strategy.hpp"

namespace charm::lb {

namespace {

class OrbLB final : public Strategy {
 public:
  std::string name() const override { return "OrbLB"; }

  std::vector<Migration> assign(const Stats& s) override {
    stats_ = &s;
    target_.assign(s.chares.size(), 0);
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < s.chares.size(); ++i) {
      if (s.chares[i].migratable)
        ids.push_back(i);
      else
        target_[i] = s.chares[i].pe;
    }
    bisect(ids, 0, s.npes);
    return collect();
  }

 private:
  void bisect(std::vector<std::size_t>& ids, int pe_lo, int pe_hi) {
    const Stats& s = *stats_;
    if (pe_hi - pe_lo <= 1 || ids.empty()) {
      for (std::size_t i : ids) target_[i] = pe_lo;
      return;
    }

    // Widest dimension of the bounding box.
    std::array<double, 3> lo{1e300, 1e300, 1e300}, hi{-1e300, -1e300, -1e300};
    for (std::size_t i : ids) {
      for (int d = 0; d < 3; ++d) {
        lo[static_cast<std::size_t>(d)] =
            std::min(lo[static_cast<std::size_t>(d)], s.chares[i].coords[static_cast<std::size_t>(d)]);
        hi[static_cast<std::size_t>(d)] =
            std::max(hi[static_cast<std::size_t>(d)], s.chares[i].coords[static_cast<std::size_t>(d)]);
      }
    }
    int dim = 0;
    for (int d = 1; d < 3; ++d)
      if (hi[static_cast<std::size_t>(d)] - lo[static_cast<std::size_t>(d)] >
          hi[static_cast<std::size_t>(dim)] - lo[static_cast<std::size_t>(dim)])
        dim = d;

    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      const double ca = s.chares[a].coords[static_cast<std::size_t>(dim)];
      const double cb = s.chares[b].coords[static_cast<std::size_t>(dim)];
      if (ca != cb) return ca < cb;
      return a < b;
    });

    // Split PEs by cumulative speed, chares by cumulative work at the same ratio.
    const int pe_mid = pe_lo + (pe_hi - pe_lo) / 2;
    double speed_left = 0, speed_total = 0;
    for (int pe = pe_lo; pe < pe_hi; ++pe) {
      speed_total += s.pe_speed[static_cast<std::size_t>(pe)];
      if (pe < pe_mid) speed_left += s.pe_speed[static_cast<std::size_t>(pe)];
    }
    double work_total = 0;
    for (std::size_t i : ids) work_total += s.chares[i].work;
    const double want_left = work_total * (speed_left / speed_total);

    double acc = 0;
    std::size_t split = 0;
    while (split < ids.size() && acc + s.chares[ids[split]].work / 2 < want_left)
      acc += s.chares[ids[split++]].work;
    split = std::min(std::max<std::size_t>(split, 1), ids.size() - 1);

    std::vector<std::size_t> left(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(split));
    std::vector<std::size_t> right(ids.begin() + static_cast<std::ptrdiff_t>(split), ids.end());
    bisect(left, pe_lo, pe_mid);
    bisect(right, pe_mid, pe_hi);
  }

  std::vector<Migration> collect() const {
    const Stats& s = *stats_;
    std::vector<Migration> out;
    for (std::size_t i = 0; i < s.chares.size(); ++i)
      if (s.chares[i].migratable && target_[i] != s.chares[i].pe)
        out.push_back(Migration{s.chares[i].col, s.chares[i].idx, s.chares[i].pe, target_[i]});
    return out;
  }

  const Stats* stats_ = nullptr;
  std::vector<int> target_;
};

}  // namespace

std::unique_ptr<Strategy> make_orb() { return std::make_unique<OrbLB>(); }

}  // namespace charm::lb
