file(REMOVE_RECURSE
  "CMakeFiles/histsort_demo.dir/histsort_demo.cpp.o"
  "CMakeFiles/histsort_demo.dir/histsort_demo.cpp.o.d"
  "histsort_demo"
  "histsort_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histsort_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
