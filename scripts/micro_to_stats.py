#!/usr/bin/env python3
"""Converts google-benchmark --benchmark_out JSON into a charmlike-microbench
stats record (bench_stats/BENCH_micro.json).

The figure benches emit byte-deterministic virtual-time analytics
("charmlike-stats"); the micro suite measures HOST wall-clock throughput of
the emulator itself, so its numbers change run to run.  This converter strips
google-benchmark's volatile context down to what a reader of the record needs
(cpu count, nominal MHz, build type), keeps per-benchmark rates and counters,
and writes the same single-line canonical byte form the other stats files use
so one validator front-end covers both schemas.

Optionally gates throughput: --gate NAME=MIN_ITEMS_PER_SEC fails (exit 1)
when the named benchmark's items_per_second falls below the floor.  CI uses
conservative floors (an order of magnitude under typical rates) so only a
real hot-path regression trips the gate, not shared-runner noise.

Counter ceilings gate costs: --gate-max NAME/COUNTER=MAX fails (exit 1) when
the named benchmark's counter exceeds the ceiling.  Two kinds are in use:
*structural byte accounting* (mem_bytes_per_idle_pe and friends from
BM_SparseFootprint) is deterministic across hosts, so those ceilings sit
close to the measured values; *host-time ceilings* (us_per_round from
BM_LbAssign_*) are as noisy as the rate floors and get the same order-of-
magnitude headroom.  Benchmark names may contain '/' arg suffixes — the
counter name is everything after the LAST '/'.

Ratio ceilings gate one benchmark against another from the same run:
--gate-ratio NAME/COUNTER,REF/COUNTER=MAX fails (exit 1) when the first
counter exceeds MAX times the second.  Both sides ran on the same host
moments apart, so the ratio is robust to runner speed — this is how the
"incremental LB round is >= 5x cheaper than the full-rebuild round" claim
is enforced (ratio <= 0.2) without hardcoding a machine-specific time.

Usage: micro_to_stats.py RAW.json OUT.json [--smoke] [--gate NAME=RATE]...
                         [--gate-max NAME/COUNTER=MAX]...
                         [--gate-ratio NAME/COUNTER,REF/COUNTER=MAX]...
"""
import json
import sys

SCHEMA = "charmlike-microbench"
VERSION = 1

# Per-benchmark keys worth keeping, in emission order.  Everything else in
# the google-benchmark record (run_name, repetitions, threads, ...) is noise
# for this suite's single-threaded, single-repetition runs.
RUN_KEYS = ["iterations", "real_time", "cpu_time", "time_unit",
            "items_per_second", "bytes_per_second"]


def convert(raw, smoke):
    ctx = raw.get("context", {})
    benchmarks = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # aggregates only appear with --benchmark_repetitions
        entry = {"name": b["name"]}
        for k in RUN_KEYS:
            if k in b:
                entry[k] = b[k]
        counters = {k: v for k, v in sorted(b.items())
                    if k not in entry and k not in
                    ("run_name", "run_type", "family_index",
                     "per_family_instance_index", "repetitions",
                     "repetition_index", "threads", "aggregate_name",
                     "aggregate_unit", "label")
                    and isinstance(v, (int, float)) and not isinstance(v, bool)}
        if counters:
            entry["counters"] = counters
        benchmarks.append(entry)
    return {
        "schema": SCHEMA,
        "version": VERSION,
        "bench": "micro_runtime",
        "smoke": smoke,
        "context": {
            "num_cpus": ctx.get("num_cpus", 0),
            "mhz_per_cpu": ctx.get("mhz_per_cpu", 0),
            "build_type": ctx.get("library_build_type", "unknown"),
        },
        "benchmarks": benchmarks,
    }


def apply_gates(doc, gates, max_gates, ratio_gates):
    rates = {b["name"]: b.get("items_per_second")
             for b in doc["benchmarks"]}
    counters = {b["name"]: b.get("counters", {}) for b in doc["benchmarks"]}
    bad = 0
    for name, floor in gates:
        rate = rates.get(name)
        if rate is None:
            print(f"gate {name}: benchmark missing or has no items_per_second",
                  file=sys.stderr)
            bad += 1
        elif rate < floor:
            print(f"gate {name}: {rate:.0f} items/s < floor {floor:.0f}",
                  file=sys.stderr)
            bad += 1
        else:
            print(f"gate {name}: {rate:.0f} items/s >= floor {floor:.0f} OK")
    for name, counter, ceiling in max_gates:
        value = counters.get(name, {}).get(counter)
        if value is None:
            print(f"gate-max {name}/{counter}: benchmark or counter missing",
                  file=sys.stderr)
            bad += 1
        elif value > ceiling:
            print(f"gate-max {name}/{counter}: {value:g} > ceiling {ceiling:g}",
                  file=sys.stderr)
            bad += 1
        else:
            print(f"gate-max {name}/{counter}: {value:g} <= ceiling "
                  f"{ceiling:g} OK")
    for (name, counter), (rname, rcounter), max_ratio in ratio_gates:
        value = counters.get(name, {}).get(counter)
        ref = counters.get(rname, {}).get(rcounter)
        if value is None or ref is None or ref == 0:
            print(f"gate-ratio {name}/{counter} vs {rname}/{rcounter}: "
                  f"benchmark or counter missing", file=sys.stderr)
            bad += 1
        elif value > max_ratio * ref:
            print(f"gate-ratio {name}/{counter}: {value:g} > "
                  f"{max_ratio:g} * {rname}/{rcounter} ({ref:g})",
                  file=sys.stderr)
            bad += 1
        else:
            print(f"gate-ratio {name}/{counter}: {value:g} <= {max_ratio:g} "
                  f"* {ref:g} OK ({value / ref:.3f}x)")
    return bad


def main(argv):
    paths, smoke, gates, max_gates, ratio_gates = [], False, [], [], []
    for arg in argv[1:]:
        if arg == "--smoke":
            smoke = True
        elif arg.startswith("--gate-ratio="):
            spec = arg.split("=", 1)[1]
            if "," not in spec or "=" not in spec:
                print("--gate-ratio expects "
                      "--gate-ratio=NAME/COUNTER,REF/COUNTER=MAX",
                      file=sys.stderr)
                return 2
            targets, max_ratio = spec.split("=", 1)
            left, right = targets.split(",", 1)
            if "/" not in left or "/" not in right:
                print("--gate-ratio targets need a /COUNTER suffix",
                      file=sys.stderr)
                return 2
            ratio_gates.append((tuple(left.rsplit("/", 1)),
                                tuple(right.rsplit("/", 1)),
                                float(max_ratio)))
        elif arg.startswith("--gate-max="):
            spec = arg.split("=", 1)[1]
            if "/" not in spec or "=" not in spec:
                print("--gate-max expects --gate-max=NAME/COUNTER=MAX",
                      file=sys.stderr)
                return 2
            target, ceiling = spec.split("=", 1)
            # Benchmark names can themselves contain '/' (arg suffixes like
            # BM_LbAssign_Refine/100000); the counter is the last component.
            name, counter = target.rsplit("/", 1)
            max_gates.append((name, counter, float(ceiling)))
        elif arg.startswith("--gate"):
            spec = arg.split("=", 1)[1] if arg.startswith("--gate=") else None
            if spec is None or "=" not in spec:
                print("--gate expects --gate=NAME=RATE", file=sys.stderr)
                return 2
            name, rate = spec.split("=", 1)
            gates.append((name, float(rate)))
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(paths[0]) as f:
        raw = json.load(f)
    doc = convert(raw, smoke)
    with open(paths[1], "w") as f:
        json.dump(doc, f, separators=(",", ":"))
        f.write("\n")
    print(f"{paths[1]}: {len(doc['benchmarks'])} benchmarks")
    return 1 if apply_gates(doc, gates, max_gates, ratio_gates) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
