#include "runtime/callback.hpp"

#include <memory>
#include <utility>

#include "runtime/runtime.hpp"

namespace charm {

void Callback::invoke(Runtime& rt, ReductionResult&& result) const {
  switch (kind_) {
    case Kind::kIgnore:
      break;
    case Kind::kFunction: {
      // The result moves into the (move-only) control handler directly.
      // Whatever buffers the consumer leaves behind go back to the pools,
      // closing the zero-allocation reduction cycle (DESIGN.md §10).
      rt.send_control(pe_, 64, [fn = fn_, result = std::move(result)]() mutable {
        (*fn)(std::move(result));
        Runtime::current().release_result_buffers(std::move(result));
      });
      break;
    }
    case Kind::kElement: {
      rt.send_point(col_, idx_, ep_, rt.pack_pooled(result), priority_);
      break;
    }
    case Kind::kBroadcast: {
      rt.broadcast(col_, ep_, pup::to_bytes(result), priority_);
      break;
    }
  }
}

}  // namespace charm
