// AMR3D tests: oct-tree index arithmetic, mesh invariants through
// restructuring, advection conservation, dynamic block counts, distributed
// memory bound, and LB/checkpoint interaction.

#include <gtest/gtest.h>

#include <cmath>

#include "ft/mem_checkpoint.hpp"
#include "miniapps/amr/amr.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;
using amr::Mesh;
using amr::Params;

using charmtest::Harness;

TEST(AmrIndex, CoordsRoundTrip) {
  for (int depth = 1; depth <= 4; ++depth) {
    const int n = 1 << depth;
    for (int x = 0; x < n; x += 3) {
      for (int y = 0; y < n; y += 2) {
        for (int z = 0; z < n; ++z) {
          const BitIndex ix = amr::index_at(depth, x, y, z);
          EXPECT_EQ(ix.depth, depth);
          const auto c = amr::coords_of(ix);
          EXPECT_EQ(c[0], x);
          EXPECT_EQ(c[1], y);
          EXPECT_EQ(c[2], z);
        }
      }
    }
  }
}

TEST(AmrIndex, FaceNeighborsWrapPeriodically) {
  const BitIndex ix = amr::index_at(3, 0, 2, 7);
  auto nb = amr::coords_of(amr::face_neighbor(ix, 0, -1));
  EXPECT_EQ(nb[0], 7);  // wrapped
  nb = amr::coords_of(amr::face_neighbor(ix, 2, +1));
  EXPECT_EQ(nb[2], 0);  // wrapped
  nb = amr::coords_of(amr::face_neighbor(ix, 1, +1));
  EXPECT_EQ(nb[1], 3);
}

TEST(AmrIndex, ParentChildConsistency) {
  const BitIndex root;
  const BitIndex c = root.child(5).child(2).child(7);
  EXPECT_EQ(c.depth, 3);
  EXPECT_EQ(c.parent().parent().octant_at(0), 5);
  const auto pc = amr::coords_of(c.parent());
  const auto cc = amr::coords_of(c);
  for (int d = 0; d < 3; ++d) EXPECT_EQ(cc[static_cast<std::size_t>(d)] / 2,
                                        pc[static_cast<std::size_t>(d)]);
}

Params small_params() {
  Params p;
  p.block = 4;
  p.min_depth = 1;
  p.max_depth = 3;
  return p;
}

TEST(Amr, UniformMeshAdvectionConservesMassExactly) {
  Harness h(4);
  Params p = small_params();
  p.refine_threshold = 99.0;  // never refine: uniform mesh
  Mesh mesh(h.rt, p);
  const double m0_expected = 0;
  (void)m0_expected;
  bool done = false;
  double m0 = -1;
  h.rt.on_pe(0, [&] {
    mesh.run(1, 6, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  // Mass before: field initialized lazily at begin; take mass after first run.
  h.machine.run();
  ASSERT_TRUE(done);
  m0 = mesh.total_mass();
  h.machine.resume();
  bool done2 = false;
  h.rt.on_pe(0, [&] {
    mesh.run(1, 6, Callback::to_function([&](ReductionResult&&) { done2 = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done2);
  EXPECT_NEAR(mesh.total_mass(), m0, std::abs(m0) * 1e-12)
      << "periodic upwind advection is conservative on a uniform mesh";
  EXPECT_EQ(mesh.nblocks(), 8);  // min_depth 1 => 8 blocks, no refinement
}

TEST(Amr, RefinementCreatesAndCoarseningDestroysBlocks) {
  Harness h(4);
  Params p = small_params();
  p.refine_threshold = 0.4;
  p.coarsen_threshold = 0.05;
  Mesh mesh(h.rt, p);
  bool done = false;
  h.rt.on_pe(0, [&] {
    mesh.run(4, 3, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  EXPECT_GT(mesh.restructures(), 0);
  // The Gaussian blob must have triggered refinement somewhere.
  EXPECT_GT(mesh.max_depth_present(), p.min_depth);
  EXPECT_GT(mesh.nblocks(), 8);
  EXPECT_LE(mesh.max_depth_present(), p.max_depth);
  EXPECT_GE(mesh.min_depth_present(), p.min_depth);
}

TEST(Amr, MassApproximatelyConservedThroughRestructuring) {
  Harness h(4);
  Params p = small_params();
  Mesh mesh(h.rt, p);
  bool done = false;
  double m0 = -1;
  h.rt.on_pe(0, [&] {
    mesh.run(1, 1, Callback::to_function([&](ReductionResult&&) {
      m0 = mesh.total_mass();
      mesh.run(5, 4, Callback::to_function([&](ReductionResult&&) { done = true; }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  // Prolongation/restriction and cross-level ghosts are not exactly
  // conservative; require the integral to stay in the right ballpark.
  EXPECT_NEAR(mesh.total_mass(), m0, std::abs(m0) * 0.2);
}

TEST(Amr, TwoToOneBalanceHolds) {
  Harness h(4);
  Params p = small_params();
  Mesh mesh(h.rt, p);
  bool done = false;
  h.rt.on_pe(0, [&] {
    mesh.run(4, 3, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  // Check depth gap across all faces by scanning block depths per region.
  Collection& c = h.rt.collection(mesh.blocks().id());
  std::map<std::uint64_t, int> depth_at;  // ident -> depth
  for (int pe = 0; pe < h.rt.npes(); ++pe) {
    for (auto& [ix, obj] : c.local(pe).elems) {
      auto* b = static_cast<amr::Block*>(obj.get());
      const BitIndex bi = b->index();
      depth_at[(static_cast<std::uint64_t>(bi.depth) << 56) | bi.bits] = bi.depth;
    }
  }
  for (int pe = 0; pe < h.rt.npes(); ++pe) {
    for (auto& [ix, obj] : c.local(pe).elems) {
      auto* b = static_cast<amr::Block*>(obj.get());
      const BitIndex bi = b->index();
      for (int dim = 0; dim < 3; ++dim) {
        for (int dir = -1; dir <= 1; dir += 2) {
          // A leaf must exist at depth-1, depth, or depth+1 covering the face.
          const BitIndex same = amr::face_neighbor(bi, dim, dir);
          const bool same_leaf =
              depth_at.count((static_cast<std::uint64_t>(same.depth) << 56) | same.bits) > 0;
          bool coarse_leaf = false;
          if (same.depth > 0) {
            const BitIndex par = same.parent();
            coarse_leaf =
                depth_at.count((static_cast<std::uint64_t>(par.depth) << 56) | par.bits) > 0;
          }
          bool fine_leaves = true;
          const int facing_bit = dir > 0 ? 0 : 1;
          for (int oct = 0; oct < 8; ++oct) {
            if (((oct >> dim) & 1) != facing_bit) continue;
            const BitIndex ch = same.child(oct);
            if (!depth_at.count((static_cast<std::uint64_t>(ch.depth) << 56) | ch.bits))
              fine_leaves = false;
          }
          EXPECT_TRUE(same_leaf || coarse_leaf || fine_leaves)
              << "face neighbor of depth-" << static_cast<int>(bi.depth)
              << " block violates 2:1 balance";
        }
      }
    }
  }
}

TEST(Amr, HomeTableMemoryStaysDistributed) {
  // O(#blocks/P) per PE (§IV-A-4), not O(#blocks).
  Harness h(16);
  Params p = small_params();
  p.min_depth = 2;  // 64 blocks
  Mesh mesh(h.rt, p);
  bool done = false;
  h.rt.on_pe(0, [&] {
    mesh.run(2, 2, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  const auto total = static_cast<std::size_t>(mesh.nblocks());
  std::size_t max_home = 0;
  Collection& c = h.rt.collection(mesh.blocks().id());
  for (int pe = 0; pe < 16; ++pe) max_home = std::max(max_home, c.local(pe).home.size());
  EXPECT_LT(max_home, total / 2) << "home records must stay distributed";
}

TEST(Amr, DistributedLbReducesMakespan) {
  auto run = [](bool with_lb) {
    Harness h(8);
    Params p;
    p.block = 4;
    p.min_depth = 2;
    p.max_depth = 3;
    p.cell_cost = 80e-9;
    Mesh mesh(h.rt, p);
    if (with_lb) {
      h.rt.lb().use_distributed(true);
      h.rt.lb().set_period(4);
    }
    bool done = false;
    h.rt.on_pe(0, [&] {
      mesh.run(3, 8, Callback::to_function([&](ReductionResult&&) { done = true; }));
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return h.machine.max_pe_clock();
  };
  // Refinement clusters blocks (and load) around the blob; distributed LB
  // should help once refinement has created imbalance.
  EXPECT_LT(run(true), run(false) * 1.05);
}

TEST(Amr, MemCheckpointRestoresMeshState) {
  Harness h(4);
  Params p = small_params();
  Mesh mesh(h.rt, p);
  ft::MemCheckpointer ckpt(h.rt);
  bool recovered = false;
  double mass_at_ckpt = -1;
  std::int64_t blocks_at_ckpt = -1;
  h.rt.on_pe(0, [&] {
    mesh.run(2, 3, Callback::to_function([&](ReductionResult&&) {
      mass_at_ckpt = mesh.total_mass();
      blocks_at_ckpt = mesh.nblocks();
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        mesh.run(2, 3, Callback::to_function([&](ReductionResult&&) {
          ckpt.fail_and_recover(2, Callback::to_function([&](ReductionResult&&) {
            recovered = true;
          }));
        }));
      }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(recovered);
  EXPECT_EQ(mesh.nblocks(), blocks_at_ckpt);
  EXPECT_NEAR(mesh.total_mass(), mass_at_ckpt, std::abs(mass_at_ckpt) * 1e-9);
}

}  // namespace
