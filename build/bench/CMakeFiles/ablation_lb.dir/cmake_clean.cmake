file(REMOVE_RECURSE
  "CMakeFiles/ablation_lb.dir/ablation_lb.cpp.o"
  "CMakeFiles/ablation_lb.dir/ablation_lb.cpp.o.d"
  "ablation_lb"
  "ablation_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
