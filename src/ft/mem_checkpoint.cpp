#include "ft/mem_checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "lb/manager.hpp"
#include "sim/fault_injector.hpp"
#include "trace/trace.hpp"

namespace charm::ft {

MemCheckpointer::MemCheckpointer(Runtime& rt, MemCkptParams params)
    : rt_(rt),
      params_(params),
      local_(static_cast<std::size_t>(rt.npes())),
      buddy_(static_cast<std::size_t>(rt.npes())),
      buddy_valid_(static_cast<std::size_t>(rt.npes()), 0) {}

void MemCheckpointer::checkpoint(Callback done) {
  if (recovery_pending())
    throw std::logic_error("ft::MemCheckpointer::checkpoint during pending recovery");
  const double begin = rt_.now();
  const int P = rt_.active_pes();
  if (sim::FaultInjector* fi = rt_.machine().fault_injector())
    fi->notify_checkpoint_begin(begin);

  // Stage into scratch stores; the committed checkpoint stays authoritative
  // until every PE has both copies in place.
  stage_local_.assign(local_.size(), {});
  stage_buddy_.assign(buddy_.size(), {});
  stage_bytes_ = 0;
  ckpt_in_progress_ = true;
  const std::uint64_t ep = epoch_;

  auto remaining = std::make_shared<int>(P);
  for (int pe = 0; pe < P; ++pe) {
    rt_.send_control(pe, 16, [this, ep, pe, P, remaining, done, begin]() {
      if (epoch_ != ep) return;  // aborted by a failure
      // Pack every local element of checkpointable collections.
      double bytes = 0;
      for (std::size_t ci = 0; ci < rt_.collection_count(); ++ci) {
        Collection& c = rt_.collection(static_cast<CollectionId>(ci));
        if (!c.checkpointable) continue;
        PeLocal* pl = c.local_if(pe);
        if (pl == nullptr) continue;  // PE hosts nothing of this collection
        for (auto& [ix, obj] : pl->elems) {
          Copy copy;
          copy.col = c.id;
          copy.idx = ix;
          copy.pe = pe;
          pup::Packer pk(copy.bytes);
          obj->pup(pk);
          bytes += static_cast<double>(copy.bytes.size());
          stage_local_[static_cast<std::size_t>(pe)].push_back(copy);
        }
      }
      stage_bytes_ += static_cast<std::uint64_t>(bytes);
      rt_.charge(bytes / params_.pack_bw);  // local copy

      // Ship the second copy to the buddy (real message cost).
      const int buddy = (pe + 1) % P;
      rt_.send_control(
          buddy, static_cast<std::size_t>(bytes),
          [this, ep, pe, buddy, bytes, remaining, done, begin]() {
            if (epoch_ != ep) return;
            stage_buddy_[static_cast<std::size_t>(buddy)] =
                stage_local_[static_cast<std::size_t>(pe)];
            rt_.charge(bytes / params_.pack_bw);  // copy-in
            if (--*remaining != 0) return;
            rt_.after(rt_.my_pe(), rt_.tree_wave_latency(), [this, ep, done, begin]() {
              if (epoch_ != ep) return;
              // Commit atomically.
              local_ = std::move(stage_local_);
              buddy_ = std::move(stage_buddy_);
              stage_local_.assign(local_.size(), {});
              stage_buddy_.assign(buddy_.size(), {});
              std::fill(buddy_valid_.begin(), buddy_valid_.end(), char{1});
              total_bytes_ = stage_bytes_;
              ++checkpoints_;
              ckpt_in_progress_ = false;
              if (trace::Tracer* tr = rt_.machine().tracer())
                tr->phase_span(trace::Phase::kCheckpoint, 0, begin, rt_.now());
              if (introspect::Monitor* mon = rt_.metrics())
                mon->journal(introspect::JournalKind::kCheckpoint, rt_.now(), 0,
                             static_cast<double>(total_bytes_));
              done.invoke(rt_, ReductionResult{});
            });
          });
    });
  }
}

void MemCheckpointer::fail_and_recover(int victim, Callback done) {
  if (checkpoints_ == 0)
    throw std::logic_error("fail_and_recover: no checkpoint taken yet");
  on_failure(victim, done);
}

void MemCheckpointer::attach_injector(sim::FaultInjector& fi) {
  fi.set_listener([this](const sim::FaultRecord& rec) {
    on_failure(rec.pe, Callback::ignore());
  });
}

void MemCheckpointer::on_failure(int victim, Callback done) {
  if (checkpoints_ == 0)
    throw std::logic_error(
        "ft::MemCheckpointer: PE failure with no committed checkpoint");
  for (int v : pending_victims_) {
    if (v == victim) {  // duplicate report of an already-pending victim
      if (done.valid()) recovery_done_cbs_.push_back(done);
      return;
    }
  }
  ++epoch_;  // invalidates every in-flight checkpoint/restore leg
  if (ckpt_in_progress_) {
    ckpt_in_progress_ = false;
    ++ckpt_aborted_;
  }
  rt_.set_pe_dead(victim, true);
  // Injector-driven failures are journaled by Machine::fail_pe; a direct
  // fail_and_recover() only marks the runtime dead mask, so journal it here.
  if (!rt_.machine().pe_failed(victim)) {
    if (introspect::Monitor* mon = rt_.metrics())
      mon->journal(introspect::JournalKind::kFailure, rt_.now(), victim, 0.0);
  }
  // The victim's in-memory state (its local copies and the buddy copies it
  // held for its predecessor) is lost with the process.
  local_[static_cast<std::size_t>(victim)].clear();
  buddy_[static_cast<std::size_t>(victim)].clear();
  buddy_valid_[static_cast<std::size_t>(victim)] = 0;
  if (pending_victims_.empty()) burst_begin_ = rt_.now();
  pending_victims_.push_back(victim);
  if (done.valid()) recovery_done_cbs_.push_back(done);
  if (failure_observer_) failure_observer_(victim);

  // Every pending victim must still have a live buddy store; losing a PE and
  // its buddy between re-replications defeats double checkpointing.
  const int P = rt_.active_pes();
  for (int v : pending_victims_) {
    if (buddy_valid_[static_cast<std::size_t>((v + 1) % P)] == 0)
      throw std::runtime_error(
          "ft::MemCheckpointer: unrecoverable failure: buddy checkpoint of PE " +
          std::to_string(v) + " was lost");
  }

  // (Re)start the detection timer on a surviving PE; a further failure bumps
  // the epoch and the stale timer becomes a no-op, so recovery begins
  // detect_delay after the *last* failure of a burst.
  int watcher = 0;
  for (int p = 0; p < P; ++p) {
    if (rt_.pe_alive(p)) {
      watcher = p;
      break;
    }
  }
  const std::uint64_t ep = epoch_;
  rt_.after(watcher, params_.detect_delay, [this, ep]() {
    if (epoch_ != ep || pending_victims_.empty()) return;
    begin_restore();
  });
}

void MemCheckpointer::begin_restore() {
  const std::uint64_t ep = epoch_;
  const int P = rt_.active_pes();

  // Replacement processes take over the victims' slots.
  for (int v : pending_victims_) {
    rt_.set_pe_dead(v, false);
    rt_.machine().revive_pe(v);
  }

  // A failure mid-AtSync-round loses that round's messages for good; abort it
  // so the replayed elements can sync afresh.
  rt_.lb().reset_round_state();

  // Phase 1: every PE discards its live elements (rollback).
  for (std::size_t ci = 0; ci < rt_.collection_count(); ++ci) {
    Collection& c = rt_.collection(static_cast<CollectionId>(ci));
    if (!c.checkpointable) continue;
    rt_.clear_reductions(c.id);
    // Touched-only rollback sweep; extract_local mutates the visited block's
    // maps but never materializes new blocks, so iteration stays safe.
    c.pe.for_each_touched([&](std::size_t pe, PeLocal& pl) {
      std::vector<ObjIndex> ids;
      ids.reserve(pl.elems.size());
      for (auto& [ix, obj] : pl.elems) ids.push_back(ix);
      for (const ObjIndex& ix : ids)
        rt_.extract_local(c.id, ix, static_cast<int>(pe));
    });
  }

  // Phase 2: restore.  Live PEs restore from their local copies; each
  // replacement gets the failed PE's copies from its buddy.  One extra leg
  // per victim models re-replicating the double copies lost with it.
  auto remaining =
      std::make_shared<int>(P + static_cast<int>(pending_victims_.size()));
  auto finish = [this, ep, remaining]() {
    if (epoch_ != ep) return;  // a new failure interrupted this restore
    if (--*remaining != 0) return;
    const int P2 = rt_.active_pes();
    // Re-replicate: restored victims regain their local stores and the buddy
    // copies they held for their predecessors.  Ascending victim order makes
    // chains of sequentially-failed adjacent PEs come out right.
    std::vector<int> vs = pending_victims_;
    std::sort(vs.begin(), vs.end());
    for (int v : vs)
      local_[static_cast<std::size_t>(v)] =
          buddy_[static_cast<std::size_t>((v + 1) % P2)];
    for (int v : vs) {
      buddy_[static_cast<std::size_t>(v)] =
          local_[static_cast<std::size_t>((v - 1 + P2) % P2)];
      buddy_valid_[static_cast<std::size_t>(v)] = 1;
    }
    rt_.rebuild_location_tables();
    rt_.after(rt_.my_pe(), params_.barrier_count * 2.0 * rt_.tree_wave_latency(),
              [this, ep, vs]() {
                if (epoch_ != ep) return;
                if (trace::Tracer* tr = rt_.machine().tracer())
                  tr->phase_span(trace::Phase::kRestore, 0, burst_begin_, rt_.now());
                if (introspect::Monitor* mon = rt_.metrics())
                  mon->journal(introspect::JournalKind::kRestore, rt_.now(),
                               static_cast<int>(vs.size()),
                               rt_.now() - burst_begin_);
                RecoveryRecord rec;
                rec.ordinal = recoveries_;
                rec.fail_time = burst_begin_;
                rec.done_time = rt_.now();
                rec.victims = vs;
                recovery_log_.push_back(std::move(rec));
                ++recoveries_;
                pending_victims_.clear();
                std::vector<Callback> cbs = std::move(recovery_done_cbs_);
                recovery_done_cbs_.clear();
                for (const Callback& cb : cbs) cb.invoke(rt_, ReductionResult{});
                if (recovery_observer_) recovery_observer_();
              });
  };

  for (int pe = 0; pe < P; ++pe) {
    const bool is_victim =
        std::find(pending_victims_.begin(), pending_victims_.end(), pe) !=
        pending_victims_.end();
    const int source_store = is_victim ? (pe + 1) % P : pe;
    const std::vector<Copy>* store =
        is_victim ? &buddy_[static_cast<std::size_t>(source_store)]
                  : &local_[static_cast<std::size_t>(pe)];
    double bytes = 0;
    for (const Copy& copy : *store) bytes += static_cast<double>(copy.bytes.size());

    auto restore_here = [this, ep, pe, store, bytes, finish]() {
      if (epoch_ != ep) return;
      rt_.charge(bytes / params_.pack_bw);  // unpack
      for (const Copy& copy : *store) {
        Collection& c = rt_.collection(copy.col);
        const ChareTypeInfo& info = Registry::instance().type(c.type);
        std::unique_ptr<ArrayElementBase> obj(info.create_default());
        pup::Unpacker u(copy.bytes);
        obj->pup(u);
        rt_.seed_element(copy.col, copy.idx, std::move(obj), pe);
      }
      finish();
    };

    if (is_victim) {
      // Buddy ships the copies across the network first.
      rt_.send_control(source_store, 16, [this, ep, pe, bytes, restore_here]() {
        if (epoch_ != ep) return;
        rt_.send_control(pe, static_cast<std::size_t>(bytes), restore_here);
      });
    } else {
      rt_.send_control(pe, 16, restore_here);
    }
  }

  // Re-replication traffic: each victim's predecessor ships its local copies
  // back so the victim again holds its buddy's data.
  for (int v : pending_victims_) {
    const int pred = (v - 1 + P) % P;
    double bytes = 0;
    for (const Copy& copy : local_[static_cast<std::size_t>(pred)])
      bytes += static_cast<double>(copy.bytes.size());
    rt_.send_control(pred, 16, [this, ep, v, bytes, finish]() {
      if (epoch_ != ep) return;
      rt_.send_control(v, static_cast<std::size_t>(bytes), finish);
    });
  }
}

std::string MemCheckpointer::format_recovery_log() const {
  std::string out;
  char buf[128];
  for (const RecoveryRecord& r : recovery_log_) {
    std::snprintf(buf, sizeof(buf), "#%d fail=%.17g done=%.17g victims=[",
                  r.ordinal, r.fail_time, r.done_time);
    out += buf;
    for (std::size_t i = 0; i < r.victims.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(r.victims[i]);
    }
    out += "]\n";
  }
  return out;
}

}  // namespace charm::ft
