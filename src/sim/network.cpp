#include "sim/network.hpp"

namespace sim {

NetworkParams NetworkParams::bluegene_q() {
  NetworkParams p;
  p.alpha_send = 0.5e-6;
  p.alpha_recv = 0.5e-6;
  p.latency = 1.0e-6;
  p.bandwidth = 1.8e9;
  p.per_hop = 40e-9;
  return p;
}

NetworkParams NetworkParams::cray_gemini() {
  NetworkParams p;
  p.alpha_send = 0.4e-6;
  p.alpha_recv = 0.4e-6;
  p.latency = 1.4e-6;
  p.bandwidth = 5.0e9;
  p.per_hop = 60e-9;
  return p;
}

NetworkParams NetworkParams::cray_seastar() {
  NetworkParams p;
  p.alpha_send = 0.8e-6;
  p.alpha_recv = 0.8e-6;
  p.latency = 4.0e-6;
  p.bandwidth = 1.6e9;
  p.per_hop = 120e-9;
  return p;
}

NetworkParams NetworkParams::cloud_ethernet() {
  NetworkParams p;
  p.alpha_send = 4.0e-6;
  p.alpha_recv = 4.0e-6;
  p.latency = 40e-6;
  p.bandwidth = 0.12e9;
  p.per_hop = 0;
  p.use_topology = false;
  return p;
}

double NetworkModel::transit_time(int src, int dst, std::size_t bytes) const {
  if (src == dst) return params_.self_overhead;
  double t = params_.latency + static_cast<double>(bytes) / params_.bandwidth;
  if (params_.use_topology) t += params_.per_hop * topo_->hops(src, dst);
  return t;
}

}  // namespace sim
