// Fig 15a: PHOLD weak scaling — event rate vs PE count for 64/128/256 LPs
// per PE with 32 initial events per LP.  Over-decomposition keeps PEs busy
// inside each YAWNS window, so more LPs per PE yields a higher event rate.

#include "bench_common.hpp"
#include "miniapps/pdes/pdes.hpp"

namespace {

double event_rate(int npes, int lps_per_pe, int events_per_lp) {
  using namespace charm;
  sim::Machine m(bench::machine_config(npes));
  bench::attach_trace(m);
  Runtime rt(m);
  pdes::Params p;
  p.nlps = npes * lps_per_pe;
  p.initial_events_per_lp = events_per_lp;
  pdes::Engine eng(rt, p);
  rt.on_pe(0, [&] { eng.run_until(bench::smoke() ? 1.0 : 4.0, Callback::ignore()); });
  m.run();
  return static_cast<double>(eng.total_executed()) / m.max_pe_clock();
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  // Scaled from the paper's 64/128/256 LPs per PE at 1K-4K PEs: the same 4x
  // over-decomposition range at emulator-friendly sizes.
  bench::header("Figure 15a", "PHOLD weak scaling, 32 events/LP, varying LPs per PE");
  bench::columns({"PEs", "16 LPs/PE", "32 LPs/PE", "64 LPs/PE"});
  for (int p : bench::pe_series({8, 16, 32})) {
    bench::row({static_cast<double>(p), event_rate(p, 16, 32), event_rate(p, 32, 32),
                event_rate(p, 64, 32)});
  }
  bench::note("rates in events/second of virtual time");
  bench::note("paper shape: rate grows with PEs (weak scaling) and with LPs/PE (over-decomposition)");
  return bench::finish();
}
