file(REMOVE_RECURSE
  "CMakeFiles/ampi_pi.dir/ampi_pi.cpp.o"
  "CMakeFiles/ampi_pi.dir/ampi_pi.cpp.o.d"
  "ampi_pi"
  "ampi_pi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampi_pi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
