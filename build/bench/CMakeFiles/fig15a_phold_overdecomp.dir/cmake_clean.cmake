file(REMOVE_RECURSE
  "CMakeFiles/fig15a_phold_overdecomp.dir/fig15a_phold_overdecomp.cpp.o"
  "CMakeFiles/fig15a_phold_overdecomp.dir/fig15a_phold_overdecomp.cpp.o.d"
  "fig15a_phold_overdecomp"
  "fig15a_phold_overdecomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15a_phold_overdecomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
