// Fig 10: LeanMD double in-memory checkpoint and restart times for two
// system sizes vs PE count (paper: 2.8M / 1.6M atoms; checkpoint falls with
// PEs, restart grows slightly with PEs due to recovery barriers).

#include "bench_common.hpp"
#include "ft/mem_checkpoint.hpp"
#include "miniapps/leanmd/leanmd.hpp"

namespace {

using namespace charm;

std::pair<double, double> times(int npes, int cells_per_dim) {
  sim::Machine m(bench::machine_config(npes));
  bench::attach_trace(m);
  Runtime rt(m);
  leanmd::Params p;
  p.nx = p.ny = p.nz = static_cast<std::int16_t>(cells_per_dim);
  p.atoms_per_cell = 24;
  p.epsilon = 1e-6;
  leanmd::Simulation sim(rt, p);
  ft::MemCheckpointer ckpt(rt);
  double t_ckpt = -1, t_restart = -1;
  rt.on_pe(0, [&] {
    sim.run(2, Callback::to_function([&](ReductionResult&&) {
      const double t0 = charm::now();
      ckpt.checkpoint(Callback::to_function([&, t0](ReductionResult&&) {
        t_ckpt = charm::now() - t0;
        const double t1 = charm::now();
        ckpt.fail_and_recover(npes - 1, Callback::to_function([&, t1](ReductionResult&&) {
          t_restart = charm::now() - t1;
          rt.exit();
        }));
      }));
    }));
  });
  m.run();
  return {t_ckpt, t_restart};
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 10", "LeanMD in-memory checkpoint/restart, two system sizes");
  bench::columns({"PEs", "big_ckpt_ms", "small_ckpt_ms", "big_restart_ms", "small_restart_ms"});
  for (int p : bench::pe_series({8, 16, 32, 64})) {
    auto [cb, rb] = times(p, 8);  // "2.8M-atom" analogue
    auto [cs, rs] = times(p, 6);  // "1.6M-atom" analogue
    bench::row({static_cast<double>(p), cb * 1e3, cs * 1e3, rb * 1e3, rs * 1e3});
  }
  bench::note("paper shape: checkpoint time falls with PEs (less data per PE, 43ms->33ms);");
  bench::note("restart time creeps up with PEs (recovery barriers, 66ms->139ms)");
  return bench::finish();
}
