#include "malleability/malleability.hpp"

#include <stdexcept>

#include "lb/manager.hpp"

namespace charm::ccs {

// Both CCS entry points funnel into lb::Manager::request_reconfig, whose
// barrier-synchronized commit is the single point where the reconfiguration
// actually takes effect — that is where the introspection decision journal
// records the kShrink/kExpand event (with the old PE count), so direct
// request_reconfig callers and CCS-driven ones land on the same timeline.

void Server::request_shrink(int target_pes, Callback done) {
  if (target_pes <= 0 || target_pes > rt_.active_pes())
    throw std::invalid_argument("request_shrink: bad target PE count");
  ++served_;
  const double delay = costs_.shrink_base_s + costs_.per_pe_s * target_pes;
  rt_.lb().request_reconfig(target_pes, delay, std::move(done));
}

void Server::request_expand(int target_pes, Callback done) {
  if (target_pes < rt_.active_pes() || target_pes > rt_.npes())
    throw std::invalid_argument("request_expand: bad target PE count");
  ++served_;
  const double delay = costs_.expand_base_s + costs_.per_pe_s * target_pes;
  rt_.lb().request_reconfig(target_pes, delay, std::move(done));
}

}  // namespace charm::ccs
