#include "trace/time_profile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trace {

namespace {

using Interval = std::pair<double, double>;

// Sorts, clips to [t0, t1], and merges overlapping/touching intervals.
void normalize(std::vector<Interval>& iv, double t0, double t1) {
  for (Interval& i : iv) {
    i.first = std::max(i.first, t0);
    i.second = std::min(i.second, t1);
  }
  iv.erase(std::remove_if(iv.begin(), iv.end(),
                          [](const Interval& i) { return i.second <= i.first; }),
           iv.end());
  std::sort(iv.begin(), iv.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < iv.size(); ++i) {
    if (out > 0 && iv[i].first <= iv[out - 1].second) {
      iv[out - 1].second = std::max(iv[out - 1].second, iv[i].second);
    } else {
      iv[out++] = iv[i];
    }
  }
  iv.resize(out);
}

// Adds each interval's overlap with every bin into `acc` (seconds per bin).
void accumulate(const std::vector<Interval>& iv, double t0, double width, int nbins,
                std::vector<double>& acc) {
  for (const Interval& i : iv) {
    int b = std::min(nbins - 1, std::max(0, static_cast<int>((i.first - t0) / width)));
    for (; b < nbins; ++b) {
      const double lo = t0 + b * width;
      const double hi = lo + width;
      if (i.first >= hi) continue;
      if (i.second <= lo) break;
      acc[static_cast<std::size_t>(b)] +=
          std::min(i.second, hi) - std::max(i.first, lo);
    }
  }
}

}  // namespace

TimeProfile build_time_profile(const std::vector<Event>& events, int npes, int nbins,
                               double t_end) {
  if (npes <= 0 || nbins <= 0)
    throw std::invalid_argument("build_time_profile: npes and nbins must be positive");

  TimeProfile p;
  p.npes = npes;
  p.nbins = nbins;
  if (t_end < 0) {
    for (const Event& e : events)
      if (e.kind == Kind::kExec) t_end = std::max(t_end, e.end);
    if (t_end <= 0) t_end = 1.0;  // empty trace: one all-idle profile
  }
  p.t1 = t_end;
  p.bin_width = (p.t1 - p.t0) / nbins;
  p.pe_bins.assign(static_cast<std::size_t>(npes) * static_cast<std::size_t>(nbins), {});
  p.mean.assign(static_cast<std::size_t>(nbins), {});

  std::vector<Interval> execs, entries;
  std::vector<double> exec_acc(static_cast<std::size_t>(nbins));
  std::vector<double> entry_acc(static_cast<std::size_t>(nbins));

  for (int pe = 0; pe < npes; ++pe) {
    execs.clear();
    entries.clear();
    for (const Event& e : events) {
      if (e.pe != pe) continue;
      if (e.kind == Kind::kExec) execs.emplace_back(e.begin, e.end);
      else if (e.kind == Kind::kEntry) entries.emplace_back(e.begin, e.end);
    }
    normalize(execs, p.t0, p.t1);
    normalize(entries, p.t0, p.t1);
    std::fill(exec_acc.begin(), exec_acc.end(), 0.0);
    std::fill(entry_acc.begin(), entry_acc.end(), 0.0);
    accumulate(execs, p.t0, p.bin_width, nbins, exec_acc);
    accumulate(entries, p.t0, p.bin_width, nbins, entry_acc);

    for (int b = 0; b < nbins; ++b) {
      ProfileBin& bin =
          p.pe_bins[static_cast<std::size_t>(pe) * static_cast<std::size_t>(nbins) +
                    static_cast<std::size_t>(b)];
      const double exec_f =
          std::min(1.0, exec_acc[static_cast<std::size_t>(b)] / p.bin_width);
      // Entry spans are nested in exec spans, but clamp anyway so fp noise
      // can never produce a negative overhead.
      const double busy_f =
          std::min(exec_f, entry_acc[static_cast<std::size_t>(b)] / p.bin_width);
      bin.busy = busy_f;
      bin.overhead = exec_f - busy_f;
      bin.idle = 1.0 - exec_f;
    }
  }

  for (int b = 0; b < nbins; ++b) {
    ProfileBin& m = p.mean[static_cast<std::size_t>(b)];
    for (int pe = 0; pe < npes; ++pe) {
      const ProfileBin& bin = p.at(pe, b);
      m.busy += bin.busy;
      m.overhead += bin.overhead;
      m.idle += bin.idle;
    }
    m.busy /= npes;
    m.overhead /= npes;
    m.idle /= npes;
  }
  return p;
}

}  // namespace trace
