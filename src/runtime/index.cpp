#include "runtime/index.hpp"

#include <sstream>

namespace charm {

std::string to_string(const ObjIndex& i) {
  std::ostringstream os;
  os << "[" << i.a << ":" << i.b << "]";
  return os.str();
}

}  // namespace charm
