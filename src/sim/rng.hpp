#pragma once
// Deterministic, puppable random number generation.  Every stochastic actor
// (chare, LP, workload generator) owns its own stream seeded from a stable
// identity, so results are independent of PE count and message ordering.

#include <cmath>
#include <cstdint>

#include "pup/pup.hpp"

namespace sim {

/// splitmix64-based generator: tiny state (one u64), good quality for
/// workload generation, trivially puppable for migration/checkpoint.
class Rng {
 public:
  Rng() = default;
  explicit Rng(std::uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ull + 1) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n ? next_u64() % n : 0; }

  /// Exponential with the given mean (> 0).
  double next_exponential(double mean);

  /// Standard normal via Box-Muller (one value per call, no caching so the
  /// state stays a single u64).
  double next_normal();

  void pup(pup::Er& p) { p | state_; }

 private:
  std::uint64_t state_ = 0x853C49E6748FEA9Bull;
};

inline double Rng::next_exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

inline double Rng::next_normal() {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

/// Stable per-object seed derivation.
inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b = 0) {
  std::uint64_t h = base ^ 0xD6E8FEB86659FD93ull;
  h ^= a + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDull;
  h ^= b + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0xC4CEB9FE1A85EC53ull;
  return h ^ (h >> 33);
}

}  // namespace sim
