#pragma once
// First-touch paged storage for per-PE state (DESIGN.md §12).
//
// A PagedTable<T> presents a fixed logical size (the configured PE count) but
// allocates backing storage in fixed-size pages only when a slot is first
// touched through `ref()`.  Untouched slots cost zero bytes beyond one page
// pointer per 64 slots and read as default-constructed T through `probe()` /
// `at_or_default()`, which never materialize.  This is what lets a
// 1M-virtual-PE machine whose workload touches a few thousand PEs run in a
// few MB instead of materializing a dense vector up front.
//
// Determinism contract: paging is a host-memory concern only.  A slot's
// logical value is identical whether it was materialized eagerly or lazily
// (default T until first mutation), `for_each_touched` visits slots in
// ascending index order, and nothing here feeds virtual time — so a lazy run
// and an eagerly materialized run (`materialize_all()`) are observationally
// byte-identical (tests/core/test_paged_state.cpp fuzzes exactly this).
//
// The hot-path accessor is branch-cheap: one shift, one page-pointer load +
// null test, and a touched-bit check.  The per-page `touched` mask keeps an
// exact touched-slot census (not just touched pages) for the
// population-driven sizing and the memory accounting layer.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace sim {

template <typename T>
class PagedTable {
 public:
  static constexpr std::size_t kPageShift = 6;
  static constexpr std::size_t kPageSlots = std::size_t{1} << kPageShift;
  static constexpr std::size_t kSlotMask = kPageSlots - 1;

  struct Page {
    std::uint64_t touched = 0;  ///< bit i set once slots[i] was ref()'d
    T slots[kPageSlots];
  };

  PagedTable() = default;
  explicit PagedTable(std::size_t n) { reset(n); }

  /// Sets the logical size and drops every page (all slots back to default).
  void reset(std::size_t n) {
    size_ = n;
    touched_ = 0;
    pages_.clear();
    pages_.resize((n + kPageSlots - 1) >> kPageShift);
  }

  std::size_t size() const { return size_; }
  /// Exact number of slots ever handed out mutably.
  std::size_t touched() const { return touched_; }
  std::size_t pages_allocated() const { return live_pages_; }

  /// Mutable access; materializes the slot's page on first touch.
  T& ref(std::size_t i) {
    check(i);
    std::unique_ptr<Page>& page = pages_[i >> kPageShift];
    if (page == nullptr) {
      page = std::make_unique<Page>();
      ++live_pages_;
    }
    const std::uint64_t bit = std::uint64_t{1} << (i & kSlotMask);
    if ((page->touched & bit) == 0) {
      page->touched |= bit;
      ++touched_;
    }
    return page->slots[i & kSlotMask];
  }

  /// Touched slot or nullptr; never materializes.  The mutable overload also
  /// returns nullptr for never-touched slots (their page may exist for a
  /// neighbour) so callers cannot mutate state the touched census misses.
  T* probe(std::size_t i) {
    return const_cast<T*>(static_cast<const PagedTable*>(this)->probe(i));
  }
  const T* probe(std::size_t i) const {
    check(i);
    const Page* page = pages_[i >> kPageShift].get();
    if (page == nullptr) return nullptr;
    const std::uint64_t bit = std::uint64_t{1} << (i & kSlotMask);
    if ((page->touched & bit) == 0) return nullptr;
    return &page->slots[i & kSlotMask];
  }

  /// Read-only view of any slot: the live value for touched slots, the shared
  /// default-constructed T otherwise.  Never materializes.
  const T& at_or_default(std::size_t i) const {
    const T* p = probe(i);
    return p != nullptr ? *p : default_slot();
  }

  /// Visits every touched slot in ascending index order (the deterministic
  /// replacement for dense iteration: untouched slots hold default T, so any
  /// fold whose default contribution is neutral is unchanged).
  template <typename F>
  void for_each_touched(F&& f) {
    for_each_impl(*this, f);
  }
  template <typename F>
  void for_each_touched(F&& f) const {
    for_each_impl(*this, f);
  }

  /// Eagerly touches every slot — the "dense" half of the dense-vs-lazy
  /// equivalence fuzz, and a fallback for callers that really want vector
  /// semantics.
  void materialize_all() {
    for (std::size_t i = 0; i < size_; ++i) ref(i);
  }

  /// Host bytes resident in the table (pages + the page-pointer spine).
  std::size_t memory_bytes() const {
    return live_pages_ * sizeof(Page) + pages_.capacity() * sizeof(pages_[0]);
  }

 private:
  template <typename Self, typename F>
  static void for_each_impl(Self& self, F& f) {
    for (std::size_t pi = 0; pi < self.pages_.size(); ++pi) {
      auto* page = self.pages_[pi].get();
      if (page == nullptr) continue;
      std::uint64_t mask = page->touched;
      while (mask != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(mask));
        mask &= mask - 1;
        f((pi << kPageShift) + bit, page->slots[bit]);
      }
    }
  }

  static const T& default_slot() {
    static const T kDefault{};
    return kDefault;
  }

  void check(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("sim::PagedTable: index out of range");
  }

  std::size_t size_ = 0;
  std::size_t touched_ = 0;
  std::size_t live_pages_ = 0;
  std::vector<std::unique_ptr<Page>> pages_;
};

/// Chunk-allocated bitset over a fixed logical size: `test` on a never-set
/// chunk reads false without allocating, `set` materializes 4096-bit chunks
/// on demand.  Returns plain bool (no std::vector<bool> proxy references), so
/// it composes with structured bindings and range-for without surprises.
class ChunkedBitset {
 public:
  static constexpr std::size_t kChunkShift = 12;  // 4096 bits = 512 B / chunk
  static constexpr std::size_t kChunkBits = std::size_t{1} << kChunkShift;

  ChunkedBitset() = default;
  explicit ChunkedBitset(std::size_t n) { reset(n); }

  void reset(std::size_t n) {
    size_ = n;
    chunks_.clear();
    chunks_.resize((n + kChunkBits - 1) >> kChunkShift);
  }

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    check(i);
    const Chunk* c = chunks_[i >> kChunkShift].get();
    if (c == nullptr) return false;
    return (c->words[(i & (kChunkBits - 1)) >> 6] &
            (std::uint64_t{1} << (i & 63))) != 0;
  }

  void set(std::size_t i, bool value) {
    check(i);
    std::unique_ptr<Chunk>& c = chunks_[i >> kChunkShift];
    if (c == nullptr) {
      if (!value) return;  // clearing an absent chunk is a no-op
      c = std::make_unique<Chunk>();
    }
    std::uint64_t& word = c->words[(i & (kChunkBits - 1)) >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if (value)
      word |= bit;
    else
      word &= ~bit;
  }

  std::size_t memory_bytes() const {
    std::size_t live = 0;
    for (const auto& c : chunks_)
      if (c != nullptr) ++live;
    return live * sizeof(Chunk) + chunks_.capacity() * sizeof(chunks_[0]);
  }

 private:
  struct Chunk {
    std::uint64_t words[kChunkBits / 64] = {};
  };

  void check(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("sim::ChunkedBitset: index out of range");
  }

  std::size_t size_ = 0;
  std::vector<std::unique_ptr<Chunk>> chunks_;
};

}  // namespace sim
