#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "stats/critical_path.hpp"
#include "stats/report.hpp"

namespace stats {

void Histogram::add(std::uint64_t v) {
  std::size_t bucket = 0;
  while (v != 0) {
    ++bucket;
    v >>= 1;
  }
  if (bucket >= buckets.size()) buckets.resize(bucket + 1, 0);
  ++buckets[bucket];
  ++total;
}

double Report::total_busy() const {
  double t = 0;
  for (const PeUsage& p : pes) t += p.busy;
  return t;
}

double Report::total_exec() const {
  double t = 0;
  for (const PeUsage& p : pes) t += p.exec;
  return t;
}

std::uint64_t Report::total_execs() const {
  std::uint64_t n = 0;
  for (const PeUsage& p : pes) n += p.execs;
  return n;
}

namespace {

ImbalanceStats imbalance_of(const std::vector<double>& busy) {
  ImbalanceStats im;
  if (busy.empty()) return im;
  double sum = 0;
  for (double b : busy) {
    im.busy_max = std::max(im.busy_max, b);
    sum += b;
  }
  im.busy_avg = sum / static_cast<double>(busy.size());
  double var = 0;
  for (double b : busy) var += (b - im.busy_avg) * (b - im.busy_avg);
  im.busy_sigma = std::sqrt(var / static_cast<double>(busy.size()));
  im.ratio = im.busy_avg > 0 ? im.busy_max / im.busy_avg : 0;
  return im;
}

const char* phase_label(trace::Phase p) {
  switch (p) {
    case trace::Phase::kLbStep: return "lb_step";
    case trace::Phase::kCheckpoint: return "checkpoint";
    case trace::Phase::kRestore: return "restore";
    case trace::Phase::kFailure: return "failure";
    case trace::Phase::kCustom: break;
  }
  return "phase";
}

}  // namespace

Report collect(const std::vector<trace::Event>& events, int npes) {
  Report r;
  r.npes = std::max(npes, 0);
  r.events = events.size();
  r.pes.resize(static_cast<std::size_t>(r.npes));

  // ---- pass A: makespan and phase boundaries --------------------------------
  for (const trace::Event& e : events) {
    if (e.kind == trace::Kind::kExec) r.makespan = std::max(r.makespan, e.end);
  }
  // The run is segmented at the end of every phase span; each boundary
  // carries the name of the phase that produced it.
  std::map<double, std::string> boundary_names;
  for (const trace::Event& e : events) {
    if (e.kind != trace::Kind::kPhase) continue;
    if (e.end <= 0 || e.end >= r.makespan) continue;
    boundary_names.emplace(e.end, phase_label(e.phase));  // first writer wins
  }
  std::vector<double> bounds;  // segment start times
  bounds.push_back(0);
  r.phases.emplace_back();
  r.phases.back().name = "start";
  r.phases.back().t0 = 0;
  for (const auto& [t, name] : boundary_names) {
    r.phases.back().t1 = t;
    bounds.push_back(t);
    r.phases.emplace_back();
    r.phases.back().name = name;
    r.phases.back().t0 = t;
  }
  r.phases.back().t1 = r.makespan;
  if (r.phases.size() == 1) r.phases.front().name = "run";
  const std::size_t nseg = r.phases.size();

  // Distributes [begin, end) over the segments via `fn(seg, overlap)`.
  auto clip = [&](double begin, double end, auto&& fn) {
    if (end <= begin) return;
    auto it = std::upper_bound(bounds.begin(), bounds.end(), begin);
    std::size_t seg = static_cast<std::size_t>(it - bounds.begin()) - 1;
    double lo = begin;
    while (true) {
      const bool last = seg + 1 >= nseg;
      const double s1 = last ? end : bounds[seg + 1];  // last segment is open-ended
      const double top = std::min(end, s1);
      if (top > lo) fn(seg, top - lo);
      if (last || end <= s1) break;
      lo = s1;
      ++seg;
    }
  };

  std::vector<double> seg_busy(static_cast<std::size_t>(r.npes) * nseg, 0);
  std::vector<double> seg_exec(static_cast<std::size_t>(r.npes) * nseg, 0);

  // ---- pass B: everything else ----------------------------------------------
  std::map<std::tuple<int, int, int>, EntryUsage> entries;  // (col, ep, pe)
  std::map<std::pair<int, int>, CommCell> comm;             // (src, dst)
  // Entries recorded since the last exec span on each PE, for overhead
  // attribution (the machine logs a span's entries before the span itself).
  struct PendingEntry {
    int col, ep;
    double dur;
  };
  std::vector<std::vector<PendingEntry>> pending(static_cast<std::size_t>(r.npes));

  for (const trace::Event& e : events) {
    switch (e.kind) {
      case trace::Kind::kEntry: {
        const double dt = e.end - e.begin;
        EntryUsage& u = entries[{e.a, e.b, e.pe}];
        if (u.calls == 0) {
          u.pe = e.pe;
          u.col = e.a;
          u.ep = e.b;
          u.grain_min = dt;
          u.grain_max = dt;
        } else {
          u.grain_min = std::min(u.grain_min, dt);
          u.grain_max = std::max(u.grain_max, dt);
        }
        ++u.calls;
        u.busy += dt;
        r.entry_ns_log2.add(static_cast<std::uint64_t>(std::llround(dt * 1e9)));
        if (e.pe >= 0 && e.pe < r.npes) {
          r.pes[static_cast<std::size_t>(e.pe)].busy += dt;
          pending[static_cast<std::size_t>(e.pe)].push_back(PendingEntry{e.a, e.b, dt});
          clip(e.begin, e.end, [&](std::size_t seg, double dt_seg) {
            seg_busy[static_cast<std::size_t>(e.pe) * nseg + seg] += dt_seg;
          });
        }
        break;
      }
      case trace::Kind::kExec: {
        if (e.pe < 0 || e.pe >= r.npes) break;
        const std::size_t pe = static_cast<std::size_t>(e.pe);
        const double span = e.end - e.begin;
        PeUsage& p = r.pes[pe];
        ++p.execs;
        p.exec += span;
        clip(e.begin, e.end, [&](std::size_t seg, double dt_seg) {
          seg_exec[pe * nseg + seg] += dt_seg;
        });
        // Attribute the span to the entry methods that ran inside it; the
        // busy/exec gap (scheduling, sends, runtime bookkeeping) is split
        // evenly across them.  Entry-less spans land on the (-1, -1) key.
        std::vector<PendingEntry>& pend = pending[pe];
        if (pend.empty()) {
          EntryUsage& u = entries[{-1, -1, e.pe}];
          if (u.calls == 0) {
            u.pe = e.pe;
            u.grain_min = span;
            u.grain_max = span;
          } else {
            u.grain_min = std::min(u.grain_min, span);
            u.grain_max = std::max(u.grain_max, span);
          }
          ++u.calls;
          u.busy += 0;
          u.exec += span;
        } else {
          double inside = 0;
          for (const PendingEntry& pe_ent : pend) inside += pe_ent.dur;
          const double share = (span - inside) / static_cast<double>(pend.size());
          for (const PendingEntry& pe_ent : pend) {
            entries[{pe_ent.col, pe_ent.ep, e.pe}].exec += pe_ent.dur + share;
          }
          pend.clear();
        }
        break;
      }
      case trace::Kind::kSend: {
        ++r.messages.sends;
        r.messages.bytes += e.bytes;
        const int hops = e.b > 0 ? e.b : 0;
        r.messages.hops += static_cast<std::uint64_t>(hops);
        const double lat = e.end - e.begin;
        r.messages.total_latency += lat;
        r.messages.max_latency = std::max(r.messages.max_latency, lat);
        r.messages.size_log2.add(e.bytes);
        r.messages.hops_log2.add(static_cast<std::uint64_t>(hops));
        if (e.pe >= 0 && e.pe < r.npes) {
          PeUsage& p = r.pes[static_cast<std::size_t>(e.pe)];
          ++p.msgs_sent;
          p.bytes_sent += e.bytes;
        }
        if (e.pe >= 0 && e.pe < r.npes && e.a >= 0 && e.a < r.npes) {
          CommCell& c = comm[{e.pe, e.a}];
          c.src = e.pe;
          c.dst = e.a;
          ++c.msgs;
          c.bytes += e.bytes;
        }
        break;
      }
      case trace::Kind::kRecv: {
        const double wait = e.end - e.begin;
        r.messages.total_queue_wait += wait;
        if (e.pe >= 0 && e.pe < r.npes) {
          PeUsage& p = r.pes[static_cast<std::size_t>(e.pe)];
          ++p.msgs_recv;
          p.bytes_recv += e.bytes;
          p.queue_wait += wait;
        }
        break;
      }
      case trace::Kind::kIdle:
      case trace::Kind::kPhase:
        break;
    }
  }

  for (PeUsage& p : r.pes) p.idle = std::max(0.0, r.makespan - p.exec);

  r.entries.reserve(entries.size());
  for (auto& [key, u] : entries) r.entries.push_back(u);
  r.comm.reserve(comm.size());
  for (auto& [key, c] : comm) r.comm.push_back(c);

  // ---- imbalance: whole run and per phase -----------------------------------
  {
    std::vector<double> busy(static_cast<std::size_t>(r.npes), 0);
    for (int pe = 0; pe < r.npes; ++pe) busy[static_cast<std::size_t>(pe)] = r.pes[static_cast<std::size_t>(pe)].busy;
    r.imbalance = imbalance_of(busy);
    for (std::size_t seg = 0; seg < nseg; ++seg) {
      PhaseStats& ph = r.phases[seg];
      for (int pe = 0; pe < r.npes; ++pe) {
        busy[static_cast<std::size_t>(pe)] = seg_busy[static_cast<std::size_t>(pe) * nseg + seg];
        ph.busy += seg_busy[static_cast<std::size_t>(pe) * nseg + seg];
        ph.exec += seg_exec[static_cast<std::size_t>(pe) * nseg + seg];
      }
      ph.idle = std::max(0.0, static_cast<double>(r.npes) * (ph.t1 - ph.t0) - ph.exec);
      ph.imbalance = imbalance_of(busy);
    }
  }

  r.critical_path = critical_path(events, r.npes);
  return r;
}

}  // namespace stats
