// Core runtime behaviour: entry-method invocation, argument delivery,
// chare-to-chare messaging, broadcasts, dynamic insertion/destruction,
// message priorities, and virtual-time accounting.

#include <gtest/gtest.h>

#include "runtime/charm.hpp"

#include "test_util.hpp"

namespace {

using charm::ArrayProxy;
using charm::Callback;
using charm::ReductionResult;

struct PingMsg {
  int value = 0;
  int from = -1;
  void pup(pup::Er& p) {
    p | value;
    p | from;
  }
};

class Counter : public charm::ArrayElement<Counter, std::int32_t> {
 public:
  int received = 0;
  int last = 0;
  std::vector<int> seen;

  void recv(const PingMsg& m) {
    ++received;
    last = m.value;
    seen.push_back(m.value);
    charm::charge(1e-6);
  }
  void bump() { ++received; }

  void forward(const PingMsg& m) {
    // Relay to the next element (tests element-to-element sends).
    ++received;
    if (m.value > 0) {
      ArrayProxy<Counter> peers(collection_id());
      PingMsg next{m.value - 1, static_cast<int>(index())};
      peers[(index() + 1) % 8].send<&Counter::forward>(next);
    }
  }

  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | received;
    p | last;
    p | seen;
  }
};

using charmtest::Harness;

Counter* find_counter(Harness& h, charm::CollectionId col, std::int32_t ix) {
  for (int pe = 0; pe < h.rt.npes(); ++pe) {
    auto* found = h.rt.collection(col).find(pe, charm::IndexTraits<std::int32_t>::encode(ix));
    if (found) return static_cast<Counter*>(found);
  }
  return nullptr;
}

TEST(RuntimeBasic, PointSendInvokesEntryWithArgument) {
  Harness h(4);
  auto arr = ArrayProxy<Counter>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i % 4);
  h.rt.on_pe(0, [&] { arr[5].send<&Counter::recv>(PingMsg{42, 0}); });
  h.machine.run();
  Counter* c = find_counter(h, arr.id(), 5);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->received, 1);
  EXPECT_EQ(c->last, 42);
}

TEST(RuntimeBasic, NoArgEntry) {
  Harness h(2);
  auto arr = ArrayProxy<Counter>::create(h.rt);
  arr.seed(0, 0);
  h.rt.on_pe(0, [&] { arr[0].send<&Counter::bump>(); });
  h.machine.run();
  EXPECT_EQ(find_counter(h, arr.id(), 0)->received, 1);
}

TEST(RuntimeBasic, ChareToChareRelayChain) {
  Harness h(4);
  auto arr = ArrayProxy<Counter>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i % 4);
  h.rt.on_pe(0, [&] { arr[0].send<&Counter::forward>(PingMsg{16, -1}); });
  h.machine.run();
  int total = 0;
  for (int i = 0; i < 8; ++i) total += find_counter(h, arr.id(), i)->received;
  EXPECT_EQ(total, 17);  // initial + 16 relays
}

TEST(RuntimeBasic, BroadcastReachesEveryElement) {
  Harness h(4);
  auto arr = ArrayProxy<Counter>::create(h.rt);
  for (int i = 0; i < 20; ++i) arr.seed(i, i % 4);
  h.rt.on_pe(0, [&] { arr.broadcast<&Counter::recv>(PingMsg{7, -1}); });
  h.machine.run();
  for (int i = 0; i < 20; ++i) {
    Counter* c = find_counter(h, arr.id(), i);
    EXPECT_EQ(c->received, 1) << i;
    EXPECT_EQ(c->last, 7) << i;
  }
}

TEST(RuntimeBasic, VirtualTimeAdvancesWithChargedWork) {
  Harness h(1);
  auto arr = ArrayProxy<Counter>::create(h.rt);
  arr.seed(0, 0);
  h.rt.on_pe(0, [&] {
    for (int i = 0; i < 100; ++i) arr[0].send<&Counter::recv>(PingMsg{i, -1});
  });
  h.machine.run();
  // 100 messages x 1us of charged work each, plus overheads.
  EXPECT_GE(h.machine.pe(0).busy_time(), 100e-6);
  EXPECT_GE(h.machine.max_pe_clock(), 100e-6);
}

TEST(RuntimeBasic, MessagesCountedAndQuiesce) {
  Harness h(4);
  auto arr = ArrayProxy<Counter>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i % 4);
  bool qd_fired = false;
  h.rt.on_pe(0, [&] {
    arr[0].send<&Counter::forward>(PingMsg{30, -1});
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      qd_fired = true;
      // At quiescence every relay must have been processed.
      int total = 0;
      for (int i = 0; i < 8; ++i) total += find_counter(h, arr.id(), i)->received;
      EXPECT_EQ(total, 31);
    }));
  });
  h.machine.run();
  EXPECT_TRUE(qd_fired);
  EXPECT_EQ(h.rt.outstanding(), 0);
}

class Spawnable : public charm::ArrayElement<Spawnable, std::int32_t> {
 public:
  Spawnable() = default;
  explicit Spawnable(const PingMsg& m) : tag(m.value) {}
  int tag = -1;
  int received = 0;
  void recv(const PingMsg& m) {
    ++received;
    tag = m.value;
  }
  void die() { charm::Runtime::current().destroy_self(); }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | tag;
    p | received;
  }
};

TEST(RuntimeBasic, InsertCreatesElementAndDeliversLaterSends) {
  Harness h(4);
  auto arr = ArrayProxy<Spawnable>::create(h.rt);
  arr.seed(0, 0);
  h.rt.on_pe(0, [&] {
    arr.insert(42, PingMsg{1234, 0});
    // This send races the creation; the home PE must buffer and deliver it.
    arr[42].send<&Spawnable::recv>(PingMsg{5, -1});
  });
  h.machine.run();
  Spawnable* s = nullptr;
  for (int pe = 0; pe < 4; ++pe) {
    auto* found = h.rt.collection(arr.id()).find(pe, charm::IndexTraits<std::int32_t>::encode(42));
    if (found) s = static_cast<Spawnable*>(found);
  }
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->received, 1);
  EXPECT_EQ(s->tag, 5);
  EXPECT_EQ(h.rt.collection(arr.id()).total_elements, 2);
}

TEST(RuntimeBasic, DestroySelfRemovesElement) {
  Harness h(2);
  auto arr = ArrayProxy<Spawnable>::create(h.rt);
  arr.seed(0, 0);
  arr.seed(1, 1);
  h.rt.on_pe(0, [&] { arr[1].send<&Spawnable::die>(); });
  h.machine.run();
  EXPECT_EQ(h.rt.collection(arr.id()).total_elements, 1);
  EXPECT_EQ(h.rt.collection(arr.id()).find(1, charm::IndexTraits<std::int32_t>::encode(1)),
            nullptr);
}

class PrioObserver : public charm::ArrayElement<PrioObserver, std::int32_t> {
 public:
  std::vector<int> order;
  void busy() { charm::charge(1e-3); }
  void tag(const PingMsg& m) { order.push_back(m.value); }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | order;
  }
};

TEST(RuntimeBasic, PrioritizedMessagesJumpTheQueue) {
  Harness h(1);
  auto arr = ArrayProxy<PrioObserver>::create(h.rt);
  arr.seed(0, 0);
  h.rt.on_pe(0, [&] {
    arr[0].send<&PrioObserver::busy>();  // occupy the PE
    arr[0].send<&PrioObserver::tag>(PingMsg{1, -1}, charm::kLowPriority);
    arr[0].send<&PrioObserver::tag>(PingMsg{2, -1}, charm::kHighPriority);
  });
  h.machine.run();
  auto* o = static_cast<PrioObserver*>(
      h.rt.collection(arr.id()).find(0, charm::IndexTraits<std::int32_t>::encode(0)));
  ASSERT_EQ(o->order.size(), 2u);
  EXPECT_EQ(o->order[0], 2);
  EXPECT_EQ(o->order[1], 1);
}

TEST(RuntimeBasic, GroupHasOneElementPerPe) {
  Harness h(6);
  struct G : charm::Group<G> {
    int pokes = 0;
    void poke() { ++pokes; }
  };
  auto grp = charm::GroupProxy<G>::create(h.rt);
  h.rt.on_pe(0, [&] {
    grp.broadcast<&G::poke>();
    grp.on(3).send<&G::poke>();
  });
  h.machine.run();
  EXPECT_EQ(h.rt.collection(grp.id()).total_elements, 6);
  for (int pe = 0; pe < 6; ++pe) {
    auto* g = static_cast<G*>(
        h.rt.collection(grp.id()).find(pe, charm::IndexTraits<std::int32_t>::encode(pe)));
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->pokes, pe == 3 ? 2 : 1);
  }
}

}  // namespace
