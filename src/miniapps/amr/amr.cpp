#include "miniapps/amr/amr.hpp"

#include <algorithm>
#include <cmath>

namespace charm::amr {

Callback Block::chunk_cb;

// ---- oct-tree index arithmetic (all local bit operations, §IV-A-1) -----------------

std::array<int, 3> coords_of(const BitIndex& ix) {
  std::array<int, 3> c{0, 0, 0};
  for (int l = 0; l < ix.depth; ++l) {
    const int oct = ix.octant_at(l);
    const int shift = ix.depth - 1 - l;
    c[0] |= ((oct >> 0) & 1) << shift;
    c[1] |= ((oct >> 1) & 1) << shift;
    c[2] |= ((oct >> 2) & 1) << shift;
  }
  return c;
}

BitIndex index_at(int depth, int x, int y, int z) {
  BitIndex ix;
  for (int l = 0; l < depth; ++l) {
    const int shift = depth - 1 - l;
    const int oct = ((x >> shift) & 1) | (((y >> shift) & 1) << 1) |
                    (((z >> shift) & 1) << 2);
    ix = ix.child(oct);
  }
  return ix;
}

BitIndex face_neighbor(const BitIndex& ix, int dim, int dir) {
  auto c = coords_of(ix);
  const int n = 1 << ix.depth;
  c[static_cast<std::size_t>(dim)] =
      (c[static_cast<std::size_t>(dim)] + dir + n) % n;
  return index_at(ix.depth, c[0], c[1], c[2]);
}

namespace {

std::uint64_t ident(std::uint8_t depth, std::uint64_t bits) {
  return (static_cast<std::uint64_t>(depth) << 56) | bits;
}

/// Cross dims for a face on axis `dim` (plane index = c1 + n*c2).
std::pair<int, int> cross_dims(int dim) {
  switch (dim) {
    case 0: return {1, 2};
    case 1: return {0, 2};
    default: return {0, 1};
  }
}

}  // namespace

// ---- Block: construction & field ----------------------------------------------------

Block::Block(const ChildCtorMsg& m)
    : p_(m.params), blocks_(m.col), field_(m.field), face_rel_(m.face_rel), step_(m.step) {
  target_ = step_;
}

void Block::init_field() {
  const int B = p_.block;
  const int d = depth();
  const auto c = coords_of(index());
  const double h = 1.0 / (B * (1 << d));
  field_.assign(static_cast<std::size_t>(B * B * B), 0.0);
  for (int k = 0; k < B; ++k) {
    for (int j = 0; j < B; ++j) {
      for (int i = 0; i < B; ++i) {
        const double x = (c[0] * B + i + 0.5) * h;
        const double y = (c[1] * B + j + 0.5) * h;
        const double z = (c[2] * B + k + 0.5) * h;
        const double dx = x - 0.3, dy = y - 0.3, dz = z - 0.3;
        const double r2 = dx * dx + dy * dy + dz * dz;
        field_[static_cast<std::size_t>((k * B + j) * B + i)] =
            std::exp(-r2 / (2 * 0.1 * 0.1));
      }
    }
  }
}

double Block::mass() const {
  const int B = p_.block;
  const double h = 1.0 / (B * (1 << depth()));
  double m = 0;
  for (double v : field_) m += v;
  return m * h * h * h;
}

double Block::max_gradient() const {
  const int B = p_.block;
  double g = 0;
  auto at = [&](int i, int j, int k) {
    return field_[static_cast<std::size_t>((k * B + j) * B + i)];
  };
  for (int k = 0; k < B; ++k)
    for (int j = 0; j < B; ++j)
      for (int i = 0; i + 1 < B; ++i) g = std::max(g, std::abs(at(i + 1, j, k) - at(i, j, k)));
  return g;
}

std::array<double, 3> Block::lb_coords() const {
  const auto c = coords_of(index());
  const double w = 1.0 / (1 << depth());
  return {(c[0] + 0.5) * w, (c[1] + 0.5) * w, (c[2] + 0.5) * w};
}

// ---- stepping -----------------------------------------------------------------------

std::vector<BitIndex> Block::face_targets(int dim, int dir) const {
  return face_targets_under(dim, dir, face_rel_);
}

std::vector<BitIndex> Block::face_targets_under(
    int dim, int dir, const std::array<std::int8_t, 6>& relmap) const {
  const int f = 2 * dim + (dir > 0 ? 1 : 0);
  const BitIndex same = face_neighbor(index(), dim, dir);
  const int rel = relmap[static_cast<std::size_t>(f)];
  if (rel == 0) return {same};
  if (rel == -1) return {same.parent()};
  // rel == +1: the 4 children of `same` on the face toward us.
  std::vector<BitIndex> out;
  const int facing_bit = dir > 0 ? 0 : 1;  // their low side faces our high side
  for (int oct = 0; oct < 8; ++oct) {
    if (((oct >> dim) & 1) == facing_bit) out.push_back(same.child(oct));
  }
  return out;
}

int Block::expected_faces(int dim) const {
  return face_rel_[static_cast<std::size_t>(2 * dim)] == 1 ? 4 : 1;
}

void Block::begin(const StepMsg& m) {
  if (field_.empty()) init_field();
  target_ = step_ + m.steps;
  start_step();
}

void Block::start_step() {
  const int B = p_.block;
  faces_expected_ = 0;
  faces_seen_ = 0;
  for (auto& g : ghost_) g.assign(static_cast<std::size_t>(B * B), 0.0);
  for (int dim = 0; dim < 3; ++dim) faces_expected_ += expected_faces(dim);

  // Send our high faces to the +direction neighbors (their inflow ghosts).
  for (int dim = 0; dim < 3; ++dim) {
    FaceMsg msg;
    msg.step = step_;
    msg.dim = dim;
    msg.sender_depth = static_cast<std::uint8_t>(depth());
    msg.sender_bits = index().bits;
    msg.n = B;
    msg.plane.resize(static_cast<std::size_t>(B * B));
    const auto [c1, c2] = cross_dims(dim);
    for (int b = 0; b < B; ++b) {
      for (int a = 0; a < B; ++a) {
        int ijk[3];
        ijk[dim] = B - 1;
        ijk[c1] = a;
        ijk[c2] = b;
        msg.plane[static_cast<std::size_t>(b * B + a)] =
            field_[static_cast<std::size_t>((ijk[2] * B + ijk[1]) * B + ijk[0])];
      }
    }
    for (const BitIndex& t : face_targets(dim, +1)) blocks_[t].send<&Block::face>(msg);
  }

  auto it = early_.find(step_);
  if (it != early_.end()) {
    auto msgs = std::move(it->second);
    early_.erase(it);
    for (const FaceMsg& m : msgs) face(m);
  }
}

void Block::face(const FaceMsg& m) {
  if (m.step != step_ || faces_expected_ == 0) {
    early_[m.step].push_back(m);
    return;
  }
  const int B = p_.block;
  auto& g = ghost_[static_cast<std::size_t>(m.dim)];
  const int sd = static_cast<int>(m.sender_depth);
  const auto [c1, c2] = cross_dims(m.dim);
  const BitIndex sender{m.sender_bits, m.sender_depth};
  const auto sc = coords_of(sender);
  const auto mc = coords_of(index());

  if (sd == depth()) {
    g = m.plane;
  } else if (sd < depth()) {
    // Coarser sender: take our quadrant of its face and upsample 2x.
    const int q1 = mc[static_cast<std::size_t>(c1)] & 1;
    const int q2 = mc[static_cast<std::size_t>(c2)] & 1;
    for (int b = 0; b < B; ++b) {
      for (int a = 0; a < B; ++a) {
        const int sa = q1 * B / 2 + a / 2;
        const int sb = q2 * B / 2 + b / 2;
        g[static_cast<std::size_t>(b * B + a)] =
            m.plane[static_cast<std::size_t>(sb * B + sa)];
      }
    }
  } else {
    // Finer sender: average its plane 2x into our quadrant.
    const int q1 = sc[static_cast<std::size_t>(c1)] & 1;
    const int q2 = sc[static_cast<std::size_t>(c2)] & 1;
    for (int b = 0; b < B / 2; ++b) {
      for (int a = 0; a < B / 2; ++a) {
        const double v = 0.25 * (m.plane[static_cast<std::size_t>(2 * b * B + 2 * a)] +
                                 m.plane[static_cast<std::size_t>(2 * b * B + 2 * a + 1)] +
                                 m.plane[static_cast<std::size_t>((2 * b + 1) * B + 2 * a)] +
                                 m.plane[static_cast<std::size_t>((2 * b + 1) * B + 2 * a + 1)]);
        g[static_cast<std::size_t>((q2 * B / 2 + b) * B + (q1 * B / 2 + a))] = v;
      }
    }
  }
  if (++faces_seen_ >= faces_expected_) sweep();
}

void Block::sweep() {
  const int B = p_.block;
  const double h = 1.0 / (B * (1 << depth()));
  const double h_finest = 1.0 / (B * (1 << p_.max_depth));
  const double vmax = std::max({p_.velocity[0], p_.velocity[1], p_.velocity[2]});
  const double dt = p_.cfl * h_finest / vmax;

  std::vector<double> out(field_.size());
  auto at = [&](int i, int j, int k) {
    return field_[static_cast<std::size_t>((k * B + j) * B + i)];
  };
  for (int k = 0; k < B; ++k) {
    for (int j = 0; j < B; ++j) {
      for (int i = 0; i < B; ++i) {
        const double u = at(i, j, k);
        const double ux = i > 0 ? at(i - 1, j, k) : ghost_[0][static_cast<std::size_t>(k * B + j)];
        const double uy = j > 0 ? at(i, j - 1, k) : ghost_[1][static_cast<std::size_t>(k * B + i)];
        const double uz = k > 0 ? at(i, j, k - 1) : ghost_[2][static_cast<std::size_t>(j * B + i)];
        out[static_cast<std::size_t>((k * B + j) * B + i)] =
            u - p_.velocity[0] * dt / h * (u - ux) - p_.velocity[1] * dt / h * (u - uy) -
            p_.velocity[2] * dt / h * (u - uz);
      }
    }
  }
  field_ = std::move(out);
  faces_expected_ = 0;
  charm::charge(p_.cell_cost * static_cast<double>(B) * B * B);
  ++step_;
  at_sync();
}

void Block::resume_from_sync() {
  if (step_ < target_) {
    start_step();
  } else if (target_ > 0) {
    contribute(mass(), ReduceOp::kSum, chunk_cb);
  }
}

// ---- restructuring -------------------------------------------------------------------

void Block::send_desires(int delta) {
  DesireMsg m;
  m.from_depth = static_cast<std::uint8_t>(depth());
  m.from_bits = index().bits;
  m.delta = delta;
  for (int dim = 0; dim < 3; ++dim) {
    for (int dir = -1; dir <= 1; dir += 2) {
      for (const BitIndex& t : face_targets_under(dim, dir, rel_at_decide_))
        blocks_[t].send<&Block::desire>(m);
    }
  }
}

void Block::decide() {
  nb_desire_.clear();
  coarsen_votes_ = 0;
  votes_seen_ = 0;
  my_delta_ = 0;
  sibling_veto_ = false;
  face_applied_.fill(false);
  children_received_ = 0;
  rel_at_decide_ = face_rel_;  // protocol messages address the pre-apply mesh
  const double mx = *std::max_element(field_.begin(), field_.end());
  my_desire_ = 0;
  if (mx > p_.refine_threshold && depth() < p_.max_depth) {
    my_desire_ = +1;
  } else if (mx < p_.coarsen_threshold && depth() > p_.min_depth) {
    my_desire_ = -1;
  }
  send_desires(my_desire_);
}

void Block::desire(const DesireMsg& m) {
  nb_desire_[ident(m.from_depth, m.from_bits)] = m.delta;
}

void Block::finalize() {
  bool nb_wants_refine = false;
  for (const auto& [id, d] : nb_desire_) {
    if (d > 0) nb_wants_refine = true;
  }
  const bool all_rel_ge0 = std::all_of(face_rel_.begin(), face_rel_.end(),
                                       [](std::int8_t r) { return r >= 0; });
  const bool all_rel_le0 = std::all_of(face_rel_.begin(), face_rel_.end(),
                                       [](std::int8_t r) { return r <= 0; });

  if (my_desire_ == +1 && all_rel_ge0) {
    my_delta_ = +1;
    DecisionMsg d;
    d.from_depth = static_cast<std::uint8_t>(depth());
    d.from_bits = index().bits;
    d.delta = +1;
    for (int dim = 0; dim < 3; ++dim)
      for (int dir = -1; dir <= 1; dir += 2)
        for (const BitIndex& t : face_targets_under(dim, dir, rel_at_decide_))
          blocks_[t].send<&Block::decision>(d);
  }

  if (depth() > p_.min_depth) {
    // Vote on octet coarsening: feasible only when this block wants it, has
    // no finer face, and no face neighbor plans to refine.
    const bool yes = my_desire_ == -1 && all_rel_le0 && !nb_wants_refine;
    DesireMsg v;
    v.from_depth = static_cast<std::uint8_t>(depth());
    v.from_bits = index().bits;
    v.delta = yes ? 1 : 0;
    const BitIndex leader = index().parent().child(0);
    blocks_[leader].send<&Block::vote>(v);
  }
}

void Block::vote(const DesireMsg& m) {
  if (m.delta > 0) ++coarsen_votes_;
  ++votes_seen_;
}

void Block::resolve_coarsen() {
  const bool is_leader =
      depth() > p_.min_depth && index().octant_at(depth() - 1) == 0;
  if (!is_leader) return;
  if (coarsen_votes_ < 8) return;  // some sibling (or sibling region) said no
  // The octet coarsens: tell the siblings.
  DesireMsg go;
  go.from_depth = static_cast<std::uint8_t>(depth());
  go.from_bits = index().bits;
  go.delta = -1;
  const BitIndex parent = index().parent();
  for (int oct = 1; oct < 8; ++oct) blocks_[parent.child(oct)].send<&Block::group_go>(go);
  group_go(go);
}

void Block::group_go(const DesireMsg&) {
  my_delta_ = -1;
  DecisionMsg d;
  d.from_depth = static_cast<std::uint8_t>(depth());
  d.from_bits = index().bits;
  d.delta = -1;
  for (int dim = 0; dim < 3; ++dim)
    for (int dir = -1; dir <= 1; dir += 2)
      for (const BitIndex& t : face_targets_under(dim, dir, rel_at_decide_))
        blocks_[t].send<&Block::decision>(d);
}

void Block::decision(const DecisionMsg& m) {
  // Find the face this neighbor sits on (under the pre-apply map — the
  // sender is an old block) and update the live relative level.
  for (int dim = 0; dim < 3; ++dim) {
    for (int dir = -1; dir <= 1; dir += 2) {
      const int f = 2 * dim + (dir > 0 ? 1 : 0);
      if (face_applied_[static_cast<std::size_t>(f)]) continue;
      for (const BitIndex& t : face_targets_under(dim, dir, rel_at_decide_)) {
        if (t.bits == m.from_bits && t.depth == m.from_depth) {
          face_rel_[static_cast<std::size_t>(f)] =
              static_cast<std::int8_t>(face_rel_[static_cast<std::size_t>(f)] + m.delta);
          face_applied_[static_cast<std::size_t>(f)] = true;
          return;
        }
      }
    }
  }
}

void Block::apply() {
  const int B = p_.block;
  if (my_delta_ == +1) {
    for (int oct = 0; oct < 8; ++oct) {
      ChildCtorMsg m;
      m.params = p_;
      m.col = blocks_.id();
      const BitIndex child = index().child(oct);
      m.depth = child.depth;
      m.bits = child.bits;
      m.step = step_;
      // Upsample this child's octant (nearest).
      m.field.resize(field_.size());
      const int ox = (oct >> 0) & 1, oy = (oct >> 1) & 1, oz = (oct >> 2) & 1;
      for (int k = 0; k < B; ++k)
        for (int j = 0; j < B; ++j)
          for (int i = 0; i < B; ++i) {
            const int si = (i + ox * B) / 2, sj = (j + oy * B) / 2, sk = (k + oz * B) / 2;
            m.field[static_cast<std::size_t>((k * B + j) * B + i)] =
                field_[static_cast<std::size_t>((sk * B + sj) * B + si)];
          }
      // Child face levels: internal faces see a same-level sibling; external
      // faces see our (updated) neighbor one level up from the child's view.
      for (int dim = 0; dim < 3; ++dim) {
        const int bit = (oct >> dim) & 1;
        const int lowf = 2 * dim, highf = 2 * dim + 1;
        if (bit == 0) {
          m.face_rel[static_cast<std::size_t>(lowf)] =
              static_cast<std::int8_t>(face_rel_[static_cast<std::size_t>(lowf)] - 1);
          m.face_rel[static_cast<std::size_t>(highf)] = 0;
        } else {
          m.face_rel[static_cast<std::size_t>(lowf)] = 0;
          m.face_rel[static_cast<std::size_t>(highf)] =
              static_cast<std::int8_t>(face_rel_[static_cast<std::size_t>(highf)] - 1);
        }
      }
      blocks_.insert(child, m, rt().my_pe());
    }
    rt().destroy_self();
    return;
  }
  if (my_delta_ == -1) {
    const BitIndex parent = index().parent();
    const int my_oct = index().octant_at(depth() - 1);
    if (my_oct == 0) {
      // Leader creates the (empty) parent; everyone ships their octant data.
      ChildCtorMsg m;
      m.params = p_;
      m.col = blocks_.id();
      m.depth = parent.depth;
      m.bits = parent.bits;
      m.step = step_;
      blocks_.insert(parent, m, rt().my_pe());
    }
    ChildDataMsg d;
    d.octant = my_oct;
    d.face_rel = face_rel_;
    d.field = field_;
    blocks_[parent].send<&Block::child_data>(d);
    rt().destroy_self();
  }
}

void Block::child_data(const ChildDataMsg& m) {
  const int B = p_.block;
  if (field_.empty()) field_.assign(static_cast<std::size_t>(B * B * B), 0.0);
  const int ox = (m.octant >> 0) & 1, oy = (m.octant >> 1) & 1, oz = (m.octant >> 2) & 1;
  // Average-downsample the child's B^3 into our octant.
  for (int k = 0; k < B / 2; ++k) {
    for (int j = 0; j < B / 2; ++j) {
      for (int i = 0; i < B / 2; ++i) {
        double s = 0;
        for (int dk = 0; dk < 2; ++dk)
          for (int dj = 0; dj < 2; ++dj)
            for (int di = 0; di < 2; ++di)
              s += m.field[static_cast<std::size_t>(((2 * k + dk) * B + 2 * j + dj) * B +
                                                    2 * i + di)];
        field_[static_cast<std::size_t>((k + oz * B / 2) * B * B + (j + oy * B / 2) * B +
                                        (i + ox * B / 2))] = s / 8.0;
      }
    }
  }
  // External child faces become our faces, one level shallower.
  for (int dim = 0; dim < 3; ++dim) {
    const int bit = (m.octant >> dim) & 1;
    const int f = bit == 0 ? 2 * dim : 2 * dim + 1;  // child's external side
    face_rel_[static_cast<std::size_t>(f)] =
        static_cast<std::int8_t>(m.face_rel[static_cast<std::size_t>(f)] + 1);
  }
  ++children_received_;
  charm::charge(1e-6);
}

void Block::pup(pup::Er& p) {
  ArrayElementBase::pup(p);
  p | p_;
  p | blocks_;
  p | field_;
  pup::PUParray(p, face_rel_.data(), 6);
  p | step_;
  p | target_;
  p | faces_expected_;
  p | faces_seen_;
  for (auto& g : ghost_) p | g;
  p | early_;
  p | my_desire_;
  p | my_delta_;
  p | coarsen_votes_;
  p | votes_seen_;
  p | children_received_;
  pup::PUParray(p, face_applied_.data(), 6);
  pup::PUParray(p, rel_at_decide_.data(), 6);
}

// ---- Mesh driver ----------------------------------------------------------------------

Mesh::Mesh(Runtime& rt, Params p) : rt_(rt), p_(p) {
  blocks_ = ArrayProxy<Block, BitIndex>::create(rt);
  const int n = 1 << p.min_depth;
  const int total = n * n * n;
  const int P = rt.active_pes();
  int linear = 0;
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      for (int z = 0; z < n; ++z, ++linear) {
        ChildCtorMsg m;
        m.params = p;
        m.col = blocks_.id();
        const BitIndex ix = index_at(p.min_depth, x, y, z);
        m.depth = ix.depth;
        m.bits = ix.bits;
        blocks_.seed(ix, static_cast<int>(static_cast<long>(linear) * P / total), m);
      }
    }
  }
  rt.lb().register_collection(blocks_.id());
}

std::int64_t Mesh::nblocks() const { return rt_.collection(blocks_.id()).total_elements; }

double Mesh::total_mass() const {
  double m = 0;
  Collection& c = rt_.collection(blocks_.id());
  for (int pe = 0; pe < rt_.npes(); ++pe)
    for (auto& [ix, obj] : c.local(pe).elems) m += static_cast<Block*>(obj.get())->mass();
  return m;
}

int Mesh::max_depth_present() const {
  int d = 0;
  Collection& c = rt_.collection(blocks_.id());
  for (int pe = 0; pe < rt_.npes(); ++pe)
    for (auto& [ix, obj] : c.local(pe).elems)
      d = std::max(d, static_cast<Block*>(obj.get())->depth());
  return d;
}

int Mesh::min_depth_present() const {
  int d = 64;
  Collection& c = rt_.collection(blocks_.id());
  for (int pe = 0; pe < rt_.npes(); ++pe)
    for (auto& [ix, obj] : c.local(pe).elems)
      d = std::min(d, static_cast<Block*>(obj.get())->depth());
  return d;
}

void Mesh::run(int chunks, int steps_per_chunk, Callback done) {
  chunks_left_ = chunks;
  steps_per_chunk_ = steps_per_chunk;
  done_ = std::move(done);
  Block::chunk_cb =
      Callback::to_function([this](ReductionResult&&) { chunk_finished(); });
  blocks_.broadcast<&Block::begin>(StepMsg{steps_per_chunk_});
}

void Mesh::chunk_finished() {
  if (--chunks_left_ <= 0) {
    done_.invoke(rt_, ReductionResult{});
    return;
  }
  restructure_then_continue();
}

void Mesh::restructure_then_continue() {
  ++restructures_;
  // Phase A: desires.
  blocks_.broadcast<&Block::decide>();
  rt_.start_quiescence(Callback::to_function([this](ReductionResult&&) {
    // Phase B1: finalize refines, cast coarsen votes.
    blocks_.broadcast<&Block::finalize>();
    rt_.start_quiescence(Callback::to_function([this](ReductionResult&&) {
      // Phase B2: octet leaders resolve coarsening.
      blocks_.broadcast<&Block::resolve_coarsen>();
      rt_.start_quiescence(Callback::to_function([this](ReductionResult&&) {
        // Phase C: apply refinements/coarsenings (insert + destroy).
        blocks_.broadcast<&Block::apply>();
        rt_.start_quiescence(Callback::to_function([this](ReductionResult&&) {
          blocks_.broadcast<&Block::begin>(StepMsg{steps_per_chunk_});
        }));
      }));
    }));
  }));
}

}  // namespace charm::amr
