#pragma once
// Aggregate statistics over a trace log: the Projections "usage profile"
// tables.  Per entry method: call count, total/max virtual time.  Per PE:
// busy/overhead split of executed time.  Messages: count, bytes, hop and
// latency totals.  Consumed by MetaLB's trace-aware advisor and the benches.

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace trace {

struct EntryStat {
  int col = -1;                ///< collection id
  int ep = -1;                 ///< entry id
  std::uint64_t calls = 0;
  double total_time = 0;       ///< virtual seconds across all calls
  double max_time = 0;         ///< longest single invocation
};

struct PeStat {
  std::uint64_t execs = 0;     ///< handler executions
  double busy = 0;             ///< time inside entry methods
  double exec = 0;             ///< total handler-execution time (busy ⊆ exec)
  double overhead() const { return exec - busy; }
};

struct MessageStat {
  std::uint64_t sends = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hops = 0;
  double total_latency = 0;    ///< network transit (send depart → arrive)
  double total_queue_wait = 0; ///< destination queueing (arrive → service)
  double max_latency = 0;
};

struct Summary {
  std::vector<EntryStat> entries;  ///< sorted by (col, ep)
  std::vector<PeStat> pes;         ///< indexed by PE
  MessageStat messages;
  double span = 0;                 ///< last exec end (makespan of the trace)

  double total_busy() const;
  double total_exec() const;
};

Summary summarize(const std::vector<Event>& events, int npes);

inline Summary summarize(const Tracer& tracer, int npes) {
  return summarize(tracer.events(), npes);
}

}  // namespace trace
