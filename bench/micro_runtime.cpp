// Micro-benchmarks (google-benchmark) for the runtime substrate itself:
// PUP throughput, emulator event rate, point-send + location-lookup paths,
// reduction latency growth with PE count, and TRAM aggregation ablation.
//
// These measure HOST performance of the emulator and runtime data paths
// (events/sec), plus virtual-time ablations (reduction latency, TRAM factor).

#include <benchmark/benchmark.h>

#include "runtime/charm.hpp"
#include "tram/tram.hpp"

namespace {

using namespace charm;

struct Payload {
  std::vector<double> values;
  std::map<std::string, int> table;
  void pup(pup::Er& p) {
    p | values;
    p | table;
  }
};

void BM_PupRoundTrip(benchmark::State& state) {
  Payload in;
  in.values.assign(static_cast<std::size_t>(state.range(0)), 3.14);
  in.table = {{"a", 1}, {"b", 2}};
  for (auto _ : state) {
    auto bytes = pup::to_bytes(in);
    Payload out;
    pup::from_bytes(bytes, out);
    benchmark::DoNotOptimize(out.values.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(state.range(0)) * 8);
}
BENCHMARK(BM_PupRoundTrip)->Arg(64)->Arg(1024)->Arg(16384);

void BM_MachineEventRate(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine m(sim::MachineConfig{8, {}, 4});
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      m.post(i % 8, 0.0, [&m, i] {
        if (i % 2 == 0) m.send((i + 3) % 8, 64, 0, [] {});
      });
    }
    m.run();
    benchmark::DoNotOptimize(m.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_MachineEventRate);

struct Msg {
  int v = 0;
  void pup(pup::Er& p) { p | v; }
};

class Sink : public ArrayElement<Sink, std::int32_t> {
 public:
  int n = 0;
  void take(const Msg&) { ++n; }
};

void BM_PointSendDelivery(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine m(sim::MachineConfig{8, {}, 4});
    Runtime rt(m);
    auto arr = ArrayProxy<Sink>::create(rt);
    for (int i = 0; i < 64; ++i) arr.seed(i, i % 8);
    state.ResumeTiming();
    rt.on_pe(0, [&] {
      for (int i = 0; i < 1000; ++i) arr[i % 64].send<&Sink::take>(Msg{i});
    });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PointSendDelivery);

void BM_PointSendDeliver(benchmark::State& state) {
  // Steady-state variant of BM_PointSendDelivery: one long-lived runtime, so
  // after the warm-up round every send→deliver runs entirely on recycled
  // resources (payload pool, closure block cache, event arena, ready rings).
  // This is the workload the zero-allocation guarantee covers.
  sim::Machine m(sim::MachineConfig{8, {}, 4});
  Runtime rt(m);
  auto arr = ArrayProxy<Sink>::create(rt);
  for (int i = 0; i < 64; ++i) arr.seed(i, i % 8);
  auto drive = [&] {
    rt.on_pe(0, [&] {
      for (int i = 0; i < 1000; ++i) arr[i % 64].send<&Sink::take>(Msg{i});
    });
    m.run();
  };
  drive();  // warm the pools and location caches
  for (auto _ : state) drive();
  state.SetItemsProcessed(state.iterations() * 1000);
  const PayloadPool& pool = rt.payload_pool();
  state.counters["payload_pool_hits"] =
      benchmark::Counter(static_cast<double>(pool.hits()));
  state.counters["payload_pool_misses"] =
      benchmark::Counter(static_cast<double>(pool.misses()));
}
BENCHMARK(BM_PointSendDeliver);

class Contrib : public ArrayElement<Contrib, std::int32_t> {
 public:
  void go() { contribute(1.0, ReduceOp::kSum, cb); }
  static Callback cb;
};
Callback Contrib::cb;

void BM_ReductionVirtualLatency(benchmark::State& state) {
  // Reports the VIRTUAL latency of one reduction at a given PE count; real
  // time measures the emulator overhead.
  const int npes = static_cast<int>(state.range(0));
  double virtual_latency = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine m(sim::MachineConfig{npes, {}, 4});
    Runtime rt(m);
    auto arr = ArrayProxy<Contrib>::create(rt);
    for (int i = 0; i < npes; ++i) arr.seed(i, i);
    double t_done = 0;
    Contrib::cb = Callback::to_function([&](ReductionResult&&) { t_done = charm::now(); });
    state.ResumeTiming();
    rt.on_pe(0, [&] { arr.broadcast<&Contrib::go>(); });
    m.run();
    virtual_latency = t_done;
  }
  state.counters["virtual_us"] = virtual_latency * 1e6;
}
BENCHMARK(BM_ReductionVirtualLatency)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_TramAggregationFactor(benchmark::State& state) {
  const std::size_t buffer = static_cast<std::size_t>(state.range(0));
  double aggregation = 0;
  double virtual_time = 0;
  for (auto _ : state) {
    sim::Machine m(sim::MachineConfig{27, {}, 4});
    Runtime rt(m);
    auto arr = ArrayProxy<Sink>::create(rt);
    for (int i = 0; i < 27; ++i) arr.seed(i, i);
    tram::Stream<&Sink::take> stream(rt, arr, {buffer, 8});
    rt.on_pe(0, [&] {
      sim::Rng rng(1);
      for (int k = 0; k < 4000; ++k)
        stream.send(static_cast<std::int32_t>(rng.next_below(27)), Msg{k});
      stream.flush_all();
    });
    m.run();
    aggregation = stream.core().aggregation();
    virtual_time = m.max_pe_clock();
  }
  state.counters["items_per_batch"] = aggregation;
  state.counters["virtual_ms"] = virtual_time * 1e3;
}
BENCHMARK(BM_TramAggregationFactor)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
