# Empty dependencies file for fig15a_phold_overdecomp.
# This may be replaced when dependencies are built.
