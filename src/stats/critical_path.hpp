#pragma once
// Longest-path estimator over the send→execute event DAG (see report.hpp for
// the definition).  Exposed separately from collect() so tests and tools can
// run it on synthetic event streams.

#include <vector>

#include "stats/report.hpp"
#include "trace/trace.hpp"

namespace stats {

/// Computes the critical path from a trace log.  Relies only on recording
/// order guarantees the Machine provides: each handler execution logs
/// kRecv, then its kSend/kEntry events, then its own kExec span, and exec
/// spans appear in global begin-time order.
CriticalPathStats critical_path(const std::vector<trace::Event>& events, int npes);

}  // namespace stats
