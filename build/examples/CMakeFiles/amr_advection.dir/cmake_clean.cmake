file(REMOVE_RECURSE
  "CMakeFiles/amr_advection.dir/amr_advection.cpp.o"
  "CMakeFiles/amr_advection.dir/amr_advection.cpp.o.d"
  "amr_advection"
  "amr_advection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_advection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
