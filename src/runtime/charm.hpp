#pragma once
// Umbrella header: everything an application needs.

#include "lb/manager.hpp"
#include "lb/strategy.hpp"
#include "pup/pup.hpp"
#include "runtime/callback.hpp"
#include "runtime/chare.hpp"
#include "runtime/index.hpp"
#include "runtime/proxy.hpp"
#include "runtime/runtime.hpp"
#include "sim/machine.hpp"
#include "sim/rng.hpp"
