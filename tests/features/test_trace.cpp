// Tracing subsystem tests: event recording against a hand-computed ping-pong,
// time-profile bin accounting, summary statistics, Chrome export shape, and —
// most importantly — that tracing never perturbs the simulation (results are
// bit-identical with tracing on, off, or absent).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "runtime/charm.hpp"
#include "trace/chrome_export.hpp"
#include "trace/summary.hpp"
#include "trace/time_profile.hpp"
#include "trace/trace.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;

struct PingMsg {
  int value = 0;
  void pup(pup::Er& p) { p | value; }
};

class Ponger : public charm::ArrayElement<Ponger, std::int32_t> {
 public:
  int received = 0;
  void recv(const PingMsg& m) {
    ++received;
    charge(2e-6);
    if (m.value > 0) {
      ArrayProxy<Ponger> peers(collection_id());
      peers[1 - index()].send<&Ponger::recv>(PingMsg{m.value - 1});
    }
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | received;
  }
};

using charmtest::Harness;

// Runs a 2-PE ping-pong with `hops` total entry invocations.
void run_pingpong(Harness& h, trace::Tracer* tracer, int hops) {
  if (tracer) h.machine.set_tracer(tracer);
  auto arr = ArrayProxy<Ponger>::create(h.rt);
  arr.seed(0, 0);
  arr.seed(1, 1);
  h.rt.on_pe(0, [&] { arr[0].send<&Ponger::recv>(PingMsg{hops - 1}); });
  h.machine.run();
}

std::size_t count_kind(const trace::Tracer& t, trace::Kind k) {
  return static_cast<std::size_t>(
      std::count_if(t.events().begin(), t.events().end(),
                    [k](const trace::Event& e) { return e.kind == k; }));
}

// ---- event recording ---------------------------------------------------------

TEST(Trace, PingPongEntryCountsAndOrdering) {
  Harness h(2);
  trace::Tracer tracer;
  run_pingpong(h, &tracer, 10);

  // Exactly one kEntry per entry-method invocation: the initial send plus the
  // nine relays.  Nothing else in the run (seeding, on_pe bootstrap, control
  // traffic) is an entry method.
  EXPECT_EQ(count_kind(tracer, trace::Kind::kEntry), 10u);

  // Every handler execution is bracketed: recv (queueing) before, exec after.
  EXPECT_EQ(count_kind(tracer, trace::Kind::kExec), count_kind(tracer, trace::Kind::kRecv));
  EXPECT_GE(count_kind(tracer, trace::Kind::kExec), 10u);

  // Events carry sane virtual-time spans and alternate between the two PEs.
  int expected_pe = 0;
  for (const auto& e : tracer.events()) {
    EXPECT_LE(e.begin, e.end);
    if (e.kind == trace::Kind::kEntry) {
      EXPECT_EQ(e.pe, expected_pe);
      expected_pe = 1 - expected_pe;
      // The span covers the 2us the method charged, plus (for all but the
      // final hop) the send overhead the method's own relay charged.
      EXPECT_GE(e.end - e.begin, 2e-6 - 1e-12);
      EXPECT_LE(e.end - e.begin, 2e-6 + 2e-6);
    }
  }

  // Each entry span nests inside the exec span recorded right after it.
  const auto& ev = tracer.events();
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind != trace::Kind::kEntry) continue;
    ASSERT_LT(i + 1, ev.size());
    EXPECT_EQ(ev[i + 1].kind, trace::Kind::kExec);
    EXPECT_EQ(ev[i + 1].pe, ev[i].pe);
    EXPECT_LE(ev[i + 1].begin, ev[i].begin);
    EXPECT_GE(ev[i + 1].end, ev[i].end);
  }
}

TEST(Trace, SendEventsCarryLatencyAndDestination) {
  Harness h(2);
  trace::Tracer tracer;
  run_pingpong(h, &tracer, 8);

  std::size_t cross = 0;
  for (const auto& e : tracer.events()) {
    if (e.kind != trace::Kind::kSend) continue;
    EXPECT_GE(e.a, 0);
    EXPECT_LT(e.a, 2);
    EXPECT_LE(e.begin, e.end);
    if (e.pe != e.a) {
      ++cross;
      EXPECT_GT(e.end, e.begin) << "cross-PE messages have network latency";
      EXPECT_GT(e.bytes, 0u);
    }
  }
  // At least the 7 relay hops cross between the PEs.
  EXPECT_GE(cross, 7u);
}

// ---- neutrality: tracing must not change the simulation ----------------------

TEST(Trace, ResultsBitIdenticalWithTracingOnOffAbsent) {
  struct Result {
    double clock = 0;
    double busy[2] = {0, 0};
    std::uint64_t executed[2] = {0, 0};
  };
  // Only one Runtime may exist at a time, so each run is scoped.
  auto measure = [](trace::Tracer* tracer) {
    Harness h(2);
    run_pingpong(h, tracer, 50);
    Result r;
    r.clock = h.machine.max_pe_clock();
    for (int pe = 0; pe < 2; ++pe) {
      r.busy[pe] = h.machine.pe(pe).busy_time();
      r.executed[pe] = h.machine.pe(pe).executed();
    }
    return r;
  };

  const Result plain = measure(nullptr);

  trace::Tracer on;
  const Result traced = measure(&on);
  EXPECT_GT(on.size(), 0u);

  trace::Tracer off;
  off.set_enabled(false);
  const Result disabled = measure(&off);
  EXPECT_EQ(off.size(), 0u) << "a disabled tracer records nothing";

  for (const Result* r : {&traced, &disabled}) {
    EXPECT_EQ(r->clock, plain.clock);
    for (int pe = 0; pe < 2; ++pe) {
      EXPECT_EQ(r->busy[pe], plain.busy[pe]);
      EXPECT_EQ(r->executed[pe], plain.executed[pe]);
    }
  }
}

TEST(Trace, BoundedTracerDropsAndCounts) {
  trace::Tracer t(/*reserve_events=*/4, /*max_events=*/8);
  for (int i = 0; i < 20; ++i) t.idle(0, i, i + 1);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

// ---- time profile ------------------------------------------------------------

TEST(TimeProfile, HandComputedBins) {
  // One exec span [0,1] on PE0 with an entry method covering [0.25,0.75].
  std::vector<trace::Event> ev;
  trace::Tracer t;
  t.exec(0, 0.0, 1.0, 0);
  t.entry(0, 0, 0, 0.25, 0.75);
  auto prof = trace::build_time_profile(t, /*npes=*/1, /*nbins=*/4, /*t_end=*/1.0);

  ASSERT_EQ(prof.nbins, 4);
  EXPECT_DOUBLE_EQ(prof.bin_width, 0.25);
  const double kBusy[4] = {0.0, 1.0, 1.0, 0.0};
  for (int b = 0; b < 4; ++b) {
    const auto& bin = prof.at(0, b);
    EXPECT_NEAR(bin.busy, kBusy[b], 1e-12) << "bin " << b;
    EXPECT_NEAR(bin.overhead, 1.0 - kBusy[b], 1e-12) << "bin " << b;
    EXPECT_NEAR(bin.idle, 0.0, 1e-12) << "bin " << b;
  }
}

TEST(TimeProfile, BinsSumToOneAndMatchPeBusyTime) {
  Harness h(2);
  trace::Tracer tracer;
  run_pingpong(h, &tracer, 40);

  const int nbins = 16;
  auto prof = trace::build_time_profile(tracer, 2, nbins);
  ASSERT_EQ(prof.npes, 2);
  ASSERT_GT(prof.bin_width, 0.0);

  for (int pe = 0; pe < 2; ++pe) {
    double exec_seconds = 0;
    for (int b = 0; b < nbins; ++b) {
      const auto& bin = prof.at(pe, b);
      EXPECT_NEAR(bin.busy + bin.overhead + bin.idle, 1.0, 1e-9)
          << "pe " << pe << " bin " << b;
      EXPECT_GE(bin.busy, 0.0);
      EXPECT_GE(bin.overhead, 0.0);
      EXPECT_GE(bin.idle, 0.0);
      exec_seconds += (bin.busy + bin.overhead) * prof.bin_width;
    }
    // busy+overhead integrates back to the PE's measured execution time.
    EXPECT_NEAR(exec_seconds, h.machine.pe(pe).busy_time(), 1e-9);
  }
  // The mean profile also keeps the invariant.
  for (int b = 0; b < nbins; ++b) {
    EXPECT_NEAR(prof.mean[b].busy + prof.mean[b].overhead + prof.mean[b].idle, 1.0, 1e-9);
  }
}

// ---- summary -----------------------------------------------------------------

TEST(TraceSummary, HandComputedStats) {
  trace::Tracer t;
  t.exec(0, 0.0, 1.0, 100);
  t.entry(0, /*col=*/3, /*ep=*/7, 0.0, 0.6);
  t.exec(1, 0.0, 0.5, 50);
  t.entry(1, 3, 7, 0.1, 0.3);
  t.entry(1, 3, 8, 0.3, 0.4);
  t.send(0, 1, 64, 2, 0.0, 0.25);
  t.recv(1, 0, 64, 0.25, 0.30);

  auto s = trace::summarize(t, 2);
  ASSERT_EQ(s.entries.size(), 2u);
  EXPECT_EQ(s.entries[0].col, 3);
  EXPECT_EQ(s.entries[0].ep, 7);
  EXPECT_EQ(s.entries[0].calls, 2u);
  EXPECT_NEAR(s.entries[0].total_time, 0.8, 1e-12);
  EXPECT_NEAR(s.entries[0].max_time, 0.6, 1e-12);
  EXPECT_EQ(s.entries[1].ep, 8);
  EXPECT_EQ(s.entries[1].calls, 1u);

  ASSERT_EQ(s.pes.size(), 2u);
  EXPECT_EQ(s.pes[0].execs, 1u);
  EXPECT_NEAR(s.pes[0].busy, 0.6, 1e-12);
  EXPECT_NEAR(s.pes[0].overhead(), 0.4, 1e-12);
  EXPECT_NEAR(s.pes[1].busy, 0.3, 1e-12);

  EXPECT_EQ(s.messages.sends, 1u);
  EXPECT_EQ(s.messages.bytes, 64u);
  EXPECT_EQ(s.messages.hops, 2u);
  EXPECT_NEAR(s.messages.total_latency, 0.25, 1e-12);
  EXPECT_NEAR(s.messages.total_queue_wait, 0.05, 1e-12);
  EXPECT_NEAR(s.span, 1.0, 1e-12);
}

TEST(TraceSummary, RealRunBusyMatchesEntryTotals) {
  Harness h(2);
  trace::Tracer tracer;
  run_pingpong(h, &tracer, 20);
  auto s = trace::summarize(tracer, 2);

  double entry_total = 0;
  std::uint64_t calls = 0;
  for (const auto& e : s.entries) {
    entry_total += e.total_time;
    calls += e.calls;
  }
  EXPECT_EQ(calls, 20u);
  EXPECT_NEAR(entry_total, s.total_busy(), 1e-12);
  // 20 charges of 2us each, plus the relay sends' charged overhead.
  EXPECT_GE(entry_total, 20 * 2e-6 - 1e-10);
  EXPECT_LE(entry_total, 20 * 4e-6);
  EXPECT_GT(s.total_exec(), s.total_busy()) << "scheduling overhead exists";
}

// ---- Chrome export -----------------------------------------------------------

TEST(ChromeExport, EmitsWellFormedEventStream) {
  trace::Tracer t;
  t.exec(0, 0.0, 1e-3, 128);
  t.entry(0, 2, 5, 1e-4, 9e-4);
  t.send(0, 1, 64, 1, 2e-4, 5e-4);
  t.recv(1, 0, 64, 5e-4, 6e-4);
  t.idle(1, 0.0, 5e-4);
  t.phase_span(trace::Phase::kLbStep, 0, 0.0, 1e-3, 3);

  std::ostringstream os;
  trace::write_chrome_trace(t.events(), os,
                            [](int col, int ep) {
                              return "c" + std::to_string(col) + ".e" + std::to_string(ep);
                            });
  const std::string j = os.str();

  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"c2.e5\""), std::string::npos) << "labeler applied";
  EXPECT_NE(j.find("\"ph\":\"s\""), std::string::npos) << "flow start for the send";
  EXPECT_NE(j.find("\"ph\":\"f\""), std::string::npos) << "flow finish for the send";
  EXPECT_NE(j.find("\"lb_step\""), std::string::npos);
  // Braces and brackets balance — a cheap structural sanity check.
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['), std::count(j.begin(), j.end(), ']'));
  EXPECT_EQ(j.find(",]"), std::string::npos) << "no trailing commas";

  const char* path = "test_trace_chrome_out.json";
  EXPECT_TRUE(trace::write_chrome_trace_file(t.events(), path, nullptr));
  std::remove(path);
}

// ---- runtime phase spans -----------------------------------------------------

struct IterMsg {
  int remaining = 0;
  void pup(pup::Er& p) { p | remaining; }
};

class SyncWorker : public charm::ArrayElement<SyncWorker, std::int32_t> {
 public:
  int pending = 0;
  void step(const IterMsg& m) {
    pending = m.remaining;
    charm::charge(1e-3);
    at_sync();
  }
  void resume_from_sync() override {
    if (pending > 0) {
      charm::ArrayProxy<SyncWorker> self(collection_id());
      self[index()].send<&SyncWorker::step>(IterMsg{pending - 1});
    }
  }
  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | pending;
  }
};

TEST(Trace, LbStepPhaseSpansRecorded) {
  Harness h(4);
  trace::Tracer tracer;
  h.machine.set_tracer(&tracer);
  auto arr = ArrayProxy<SyncWorker>::create(h.rt);
  for (int i = 0; i < 8; ++i) arr.seed(i, i % 4);
  h.rt.lb().register_collection(arr.id());
  h.rt.lb().set_strategy(lb::make_greedy());
  h.rt.lb().set_period(2);
  h.rt.on_pe(0, [&] { arr.broadcast<&SyncWorker::step>(IterMsg{4}); });
  h.machine.run();

  std::size_t phases = 0;
  for (const auto& e : tracer.events()) {
    if (e.kind != trace::Kind::kPhase) continue;
    EXPECT_EQ(e.phase, trace::Phase::kLbStep);
    EXPECT_LE(e.begin, e.end);
    ++phases;
  }
  // One phase span per completed AtSync round.
  EXPECT_EQ(phases, static_cast<std::size_t>(h.rt.lb().rounds_completed()));
}

// ---- quarantine disposal stays out of the trace ------------------------------

// Disposal of messages addressed to a failed PE runs their handlers in a
// zero-cost quarantine context so side effects (completion counters, refcount
// drops) still happen — but those executions are not real work and must not
// appear in the trace: no exec/busy time on the dead PE, and no sends
// attributed to it.

TEST(Trace, QuarantineDisposalRecordsNothing) {
  sim::Machine m(sim::MachineConfig{2, {}, 4});
  trace::Tracer tracer;
  m.set_tracer(&tracer);

  m.post(1, 0.0, [&m] {
    m.charge(1e-3);
    m.send(0, 64, 0, [] {});
  });
  m.fail_pe(1);  // quarantine before delivery: the message is disposed
  m.run();

  EXPECT_EQ(m.messages_dropped(), 1u);
  EXPECT_TRUE(tracer.enabled()) << "suppression must be restored after disposal";

  const trace::Summary s = trace::summarize(tracer, 2);
  EXPECT_EQ(s.pes[1].execs, 0u) << "disposed handler must not count as an execution";
  EXPECT_EQ(s.pes[1].exec, 0.0);
  EXPECT_EQ(s.pes[1].busy, 0.0);
  EXPECT_EQ(count_kind(tracer, trace::Kind::kSend), 0u)
      << "sends made during disposal must not be traced";
}

TEST(Trace, QuarantineDrainOfReadyQueueRecordsNothing) {
  sim::Machine m(sim::MachineConfig{2, {}, 4});
  trace::Tracer tracer;
  m.set_tracer(&tracer);

  // First message executes normally for 1s; the second arrives while PE 1 is
  // still busy and is waiting in the ready queue when PE 0 kills PE 1 at 0.5,
  // so it is disposed by the quarantine drain instead of executing.
  m.post(1, 0.0, [&m] { m.charge(1.0); });
  m.post(1, 0.1, [&m] {
    m.charge(5.0);
    m.send(0, 32, 0, [] {});
  });
  m.post(0, 0.5, [&m] { m.fail_pe(1); });
  m.run();

  EXPECT_EQ(m.messages_dropped(), 1u);
  const trace::Summary s = trace::summarize(tracer, 2);
  EXPECT_EQ(s.pes[1].execs, 1u) << "only the pre-failure handler really ran";
  // 1s of charged work plus per-delivery scheduling overhead — and none of
  // the disposed handler's 5s.
  EXPECT_NEAR(s.pes[1].exec, 1.0, 1e-4);
  EXPECT_EQ(count_kind(tracer, trace::Kind::kSend), 0u);
}

}  // namespace
