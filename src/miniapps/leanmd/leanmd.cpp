#include "miniapps/leanmd/leanmd.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace charm::leanmd {

Callback Cell::done_cb;

namespace {

Index3D wrap(const Params& p, int x, int y, int z) {
  auto w = [](int v, int n) { return ((v % n) + n) % n; };
  return Index3D{w(x, p.nx), w(y, p.ny), w(z, p.nz)};
}

Index6D pair_index(const Index3D& a, const Index3D& b) {
  const bool a_first = std::tie(a.x, a.y, a.z) <= std::tie(b.x, b.y, b.z);
  const Index3D& lo = a_first ? a : b;
  const Index3D& hi = a_first ? b : a;
  return Index6D{{static_cast<std::int16_t>(lo.x), static_cast<std::int16_t>(lo.y),
                  static_cast<std::int16_t>(lo.z), static_cast<std::int16_t>(hi.x),
                  static_cast<std::int16_t>(hi.y), static_cast<std::int16_t>(hi.z)}};
}

/// Minimum-image displacement on the periodic box.
void min_image(double& d, double extent) {
  if (d > 0.5 * extent) d -= extent;
  if (d < -0.5 * extent) d += extent;
}

struct Box {
  double lx, ly, lz;
};

Box box_of(const Params& p) {
  return Box{p.nx * p.cell_size, p.ny * p.cell_size, p.nz * p.cell_size};
}

/// LJ force magnitude over distance (f/r), cut off at `rc`.  The core is
/// softened (minimum interaction distance of sigma/2) so randomly seeded
/// overlapping atoms cannot produce unbounded forces; the clamp is symmetric,
/// so momentum conservation is unaffected.
double lj_over_r(const Params& p, double r2, double rc2) {
  if (r2 >= rc2) return 0.0;
  const double rmin2 = 0.25 * p.sigma * p.sigma;
  r2 = std::max(r2, rmin2);
  const double s2 = p.sigma * p.sigma / r2;
  const double s6 = s2 * s2 * s2;
  return 24.0 * p.epsilon * s6 * (2.0 * s6 - 1.0) / r2;
}

}  // namespace

int atoms_for_cell(const Params& p, int x, int y, int z) {
  (void)y;
  (void)z;
  // Density gradient along x: the high-x side is denser when clustering > 0.
  const double frac = p.nx > 1 ? static_cast<double>(x) / (p.nx - 1) : 0.0;
  const double factor = 1.0 + p.clustering * frac * frac;
  return std::max(1, static_cast<int>(std::lround(p.atoms_per_cell * factor)));
}

// ---- Cell --------------------------------------------------------------------------

Cell::Cell(const Params& p, CellProxy cells, ComputeProxy computes)
    : p_(p), cells_(cells), computes_(computes) {}

void Cell::populate() {
  const Index3D me = index();
  sim::Rng rng(sim::derive_seed(p_.seed, static_cast<std::uint64_t>(me.x),
                                static_cast<std::uint64_t>(me.y * 4096 + me.z)));
  const int n = atoms_for_cell(p_, me.x, me.y, me.z);
  atoms_.resize(static_cast<std::size_t>(n));
  for (Atom& a : atoms_) {
    a.x = (me.x + rng.next_double()) * p_.cell_size;
    a.y = (me.y + rng.next_double()) * p_.cell_size;
    a.z = (me.z + rng.next_double()) * p_.cell_size;
    a.vx = (rng.next_double() - 0.5) * 0.05;
    a.vy = (rng.next_double() - 0.5) * 0.05;
    a.vz = (rng.next_double() - 0.5) * 0.05;
  }
}

std::vector<Index6D> Cell::my_pairs() const {
  const Index3D me = index();
  std::set<std::array<std::int16_t, 6>> uniq;
  std::vector<Index6D> out;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        const Index3D nb = wrap(p_, me.x + dx, me.y + dy, me.z + dz);
        const Index6D pair = pair_index(me, nb);
        if (uniq.insert(pair.d).second) out.push_back(pair);
      }
    }
  }
  return out;
}

std::vector<Index3D> Cell::my_neighbors() const {
  const Index3D me = index();
  std::set<std::array<int, 3>> uniq;
  std::vector<Index3D> out;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        const Index3D nb = wrap(p_, me.x + dx, me.y + dy, me.z + dz);
        if (nb == me) continue;
        if (uniq.insert({nb.x, nb.y, nb.z}).second) out.push_back(nb);
      }
    }
  }
  return out;
}

void Cell::begin(const StartMsg& m) {
  target_steps_ = step_ + m.steps;
  start_step();
}

void Cell::start_step() {
  const auto pairs = my_pairs();
  forces_expected_ = static_cast<int>(pairs.size());
  forces_seen_ = 0;
  force_accum_.assign(atoms_.size() * 3, 0.0);

  PositionsMsg msg;
  const Index3D me = index();
  msg.from[0] = static_cast<std::int16_t>(me.x);
  msg.from[1] = static_cast<std::int16_t>(me.y);
  msg.from[2] = static_cast<std::int16_t>(me.z);
  msg.step = step_;
  msg.atoms = atoms_;
  for (const Index6D& pair : pairs) computes_[pair].send<&Compute::positions>(msg);

  // Consume forces that raced ahead of this step's bookkeeping.
  auto it = early_forces_.find(step_);
  if (it != early_forces_.end()) {
    auto msgs = std::move(it->second);
    early_forces_.erase(it);
    for (const ForcesMsg& f : msgs) accept_forces(f);
  }
}

void Cell::accept_forces(const ForcesMsg& m) {
  if (m.step != step_ || exchanging_ || forces_expected_ == 0) {
    early_forces_[m.step].push_back(m);
    return;
  }
  for (std::size_t i = 0; i < m.f.size() && i < force_accum_.size(); ++i)
    force_accum_[i] += m.f[i];
  if (++forces_seen_ >= forces_expected_) integrate_and_exchange();
}

void Cell::integrate_and_exchange() {
  exchanging_ = true;
  const Box box = box_of(p_);
  charm::charge(0.2e-6 + 20e-9 * static_cast<double>(atoms_.size()));

  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    Atom& a = atoms_[i];
    a.vx += force_accum_[3 * i + 0] * p_.dt;
    a.vy += force_accum_[3 * i + 1] * p_.dt;
    a.vz += force_accum_[3 * i + 2] * p_.dt;
    a.x += a.vx * p_.dt;
    a.y += a.vy * p_.dt;
    a.z += a.vz * p_.dt;
    auto pwrap = [](double v, double ext) {
      v = std::fmod(v, ext);
      if (v < 0) v += ext;
      return v;
    };
    a.x = pwrap(a.x, box.lx);
    a.y = pwrap(a.y, box.ly);
    a.z = pwrap(a.z, box.lz);
  }

  // Partition atoms: stay vs. move to a neighbor's box.
  const Index3D me = index();
  const auto neighbors = my_neighbors();
  std::map<std::array<int, 3>, std::vector<Atom>> outgoing;
  std::vector<Atom> staying;
  for (const Atom& a : atoms_) {
    Index3D dest{static_cast<std::int32_t>(a.x / p_.cell_size),
                 static_cast<std::int32_t>(a.y / p_.cell_size),
                 static_cast<std::int32_t>(a.z / p_.cell_size)};
    dest = wrap(p_, dest.x, dest.y, dest.z);
    if (dest == me) {
      staying.push_back(a);
      continue;
    }
    // Clamp multi-cell jumps to the adjacent cell toward the destination
    // (keeps the 26-neighbor exchange protocol exact; a sane dt never jumps
    // more than one box anyway).
    auto clamp_step = [](int from, int to, int n) {
      int d = to - from;
      if (d > n / 2) d -= n;
      if (d < -n / 2) d += n;
      return std::clamp(d, -1, 1);
    };
    const Index3D hop = wrap(p_, me.x + clamp_step(me.x, dest.x, p_.nx),
                             me.y + clamp_step(me.y, dest.y, p_.ny),
                             me.z + clamp_step(me.z, dest.z, p_.nz));
    outgoing[{hop.x, hop.y, hop.z}].push_back(a);
  }
  atoms_ = std::move(staying);

  transfers_expected_ = static_cast<int>(neighbors.size());
  transfers_seen_ = 0;
  for (const Index3D& nb : neighbors) {
    AtomsMsg m;
    m.step = step_;
    auto it = outgoing.find({nb.x, nb.y, nb.z});
    if (it != outgoing.end()) m.atoms = std::move(it->second);
    cells_[nb].send<&Cell::accept_atoms>(m);
  }

  auto it = early_atoms_.find(step_);
  if (it != early_atoms_.end()) {
    auto msgs = std::move(it->second);
    early_atoms_.erase(it);
    for (const AtomsMsg& m : msgs) accept_atoms(m);
  }
}

void Cell::accept_atoms(const AtomsMsg& m) {
  if (m.step != step_ || !exchanging_) {
    early_atoms_[m.step].push_back(m);
    return;
  }
  atoms_.insert(atoms_.end(), m.atoms.begin(), m.atoms.end());
  if (++transfers_seen_ >= transfers_expected_) finish_step();
}

void Cell::finish_step() {
  exchanging_ = false;
  forces_expected_ = 0;  // early next-step forces must buffer until resume
  ++step_;
  at_sync();
}

void Cell::resume_from_sync() {
  if (step_ < target_steps_) {
    start_step();
  } else if (target_steps_ > 0) {
    contribute(static_cast<double>(atoms_.size()), ReduceOp::kSum, done_cb);
  }
}

std::array<double, 3> Cell::lb_coords() const {
  const Index3D me = index();
  return {me.x * p_.cell_size, me.y * p_.cell_size, me.z * p_.cell_size};
}

void Cell::pup(pup::Er& p) {
  ArrayElementBase::pup(p);
  p | p_;
  p | cells_;
  p | computes_;
  p | atoms_;
  p | step_;
  p | target_steps_;
  p | forces_expected_;
  p | forces_seen_;
  p | force_accum_;
  p | transfers_expected_;
  p | transfers_seen_;
  p | exchanging_;
  p | early_forces_;
  p | early_atoms_;
}

// ---- Compute -----------------------------------------------------------------------

Compute::Compute(const Params& p, CellProxy cells) : p_(p), cells_(cells) {}

bool Compute::self_pair() const {
  const Index6D me = index();
  return me.d[0] == me.d[3] && me.d[1] == me.d[4] && me.d[2] == me.d[5];
}

void Compute::positions(const PositionsMsg& m) {
  auto& bucket = inputs_[m.step];
  bucket.push_back(m);
  const std::size_t need = self_pair() ? 1 : 2;
  if (bucket.size() >= need) evaluate(m.step);
}

void Compute::evaluate(int step) {
  auto node = inputs_.extract(step);
  auto& msgs = node.mapped();
  const Box box = box_of(p_);
  const double rc2 = p_.cell_size * p_.cell_size;

  if (self_pair()) {
    PositionsMsg& a = msgs[0];
    const std::size_t n = a.atoms.size();
    ForcesMsg out;
    out.step = step;
    out.f.assign(3 * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double dx = a.atoms[i].x - a.atoms[j].x;
        double dy = a.atoms[i].y - a.atoms[j].y;
        double dz = a.atoms[i].z - a.atoms[j].z;
        min_image(dx, box.lx);
        min_image(dy, box.ly);
        min_image(dz, box.lz);
        const double f = lj_over_r(p_, dx * dx + dy * dy + dz * dz, rc2);
        out.f[3 * i] += f * dx;
        out.f[3 * i + 1] += f * dy;
        out.f[3 * i + 2] += f * dz;
        out.f[3 * j] -= f * dx;
        out.f[3 * j + 1] -= f * dy;
        out.f[3 * j + 2] -= f * dz;
      }
    }
    pairs_ += n * (n - 1) / 2;
    charm::charge(p_.pair_cost * static_cast<double>(n * (n - 1) / 2));
    cells_[Index3D{a.from[0], a.from[1], a.from[2]}].send<&Cell::accept_forces>(out);
    at_sync();
    return;
  }

  PositionsMsg& a = msgs[0];
  PositionsMsg& b = msgs[1];
  const std::size_t na = a.atoms.size(), nb = b.atoms.size();
  ForcesMsg fa, fb;
  fa.step = fb.step = step;
  fa.f.assign(3 * na, 0.0);
  fb.f.assign(3 * nb, 0.0);
  for (std::size_t i = 0; i < na; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      double dx = a.atoms[i].x - b.atoms[j].x;
      double dy = a.atoms[i].y - b.atoms[j].y;
      double dz = a.atoms[i].z - b.atoms[j].z;
      min_image(dx, box.lx);
      min_image(dy, box.ly);
      min_image(dz, box.lz);
      const double f = lj_over_r(p_, dx * dx + dy * dy + dz * dz, rc2);
      fa.f[3 * i] += f * dx;
      fa.f[3 * i + 1] += f * dy;
      fa.f[3 * i + 2] += f * dz;
      fb.f[3 * j] -= f * dx;
      fb.f[3 * j + 1] -= f * dy;
      fb.f[3 * j + 2] -= f * dz;
    }
  }
  pairs_ += na * nb;
  charm::charge(p_.pair_cost * static_cast<double>(na * nb));
  cells_[Index3D{a.from[0], a.from[1], a.from[2]}].send<&Cell::accept_forces>(fa);
  cells_[Index3D{b.from[0], b.from[1], b.from[2]}].send<&Cell::accept_forces>(fb);
  at_sync();
}

std::array<double, 3> Compute::lb_coords() const {
  const Index6D me = index();
  return {0.5 * (me.d[0] + me.d[3]) * p_.cell_size, 0.5 * (me.d[1] + me.d[4]) * p_.cell_size,
          0.5 * (me.d[2] + me.d[5]) * p_.cell_size};
}

void Compute::pup(pup::Er& p) {
  ArrayElementBase::pup(p);
  p | p_;
  p | cells_;
  p | inputs_;
  p | pairs_;
}

// ---- Simulation ---------------------------------------------------------------------

Simulation::Simulation(Runtime& rt, Params p) : rt_(rt), p_(p) {
  cells_ = CellProxy::create(rt);
  computes_ = ComputeProxy::create(rt);

  const int P = rt.active_pes();
  const int ncell = p.nx * p.ny * p.nz;
  std::set<std::array<std::int16_t, 6>> created;

  for (int x = 0; x < p.nx; ++x) {
    for (int y = 0; y < p.ny; ++y) {
      for (int z = 0; z < p.nz; ++z) {
        const int linear = (x * p.ny + y) * p.nz + z;
        const int pe = static_cast<int>(static_cast<long>(linear) * P / ncell);
        cells_.seed(Index3D{x, y, z}, pe, p_, cells_, computes_);
        auto* cell = static_cast<Cell*>(rt.collection(cells_.id())
                                            .find(pe, IndexTraits<Index3D>::encode(Index3D{x, y, z})));
        cell->populate();
      }
    }
  }

  // One compute per unique adjacent pair, co-located with its first cell
  // (locality mapping: this is what makes the clustered-density case
  // imbalanced without LB).
  for (int x = 0; x < p.nx; ++x) {
    for (int y = 0; y < p.ny; ++y) {
      for (int z = 0; z < p.nz; ++z) {
        const Index3D me{x, y, z};
        for (int dx = -1; dx <= 1; ++dx) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dz = -1; dz <= 1; ++dz) {
              const Index3D nb = wrap(p, x + dx, y + dy, z + dz);
              const Index6D pair = pair_index(me, nb);
              if (!created.insert(pair.d).second) continue;
              const int linear = (pair.d[0] * p.ny + pair.d[1]) * p.nz + pair.d[2];
              const int pe = static_cast<int>(static_cast<long>(linear) * P / ncell);
              computes_.seed(pair, pe, p_, cells_);
            }
          }
        }
      }
    }
  }

  rt.lb().register_collection(cells_.id());
  rt.lb().register_collection(computes_.id());
}

int Simulation::ncells() const { return p_.nx * p_.ny * p_.nz; }
int Simulation::ncomputes() const {
  return static_cast<int>(rt_.collection(computes_.id()).total_elements);
}

void Simulation::run(int steps, Callback done) {
  Cell::done_cb = std::move(done);
  cells_.broadcast<&Cell::begin>(StartMsg{steps});
}

std::size_t Simulation::total_atoms() const {
  std::size_t n = 0;
  Collection& c = rt_.collection(cells_.id());
  for (int pe = 0; pe < rt_.npes(); ++pe)
    for (auto& [ix, obj] : c.local(pe).elems)
      n += static_cast<Cell*>(obj.get())->atoms().size();
  return n;
}

std::array<double, 3> Simulation::total_momentum() const {
  std::array<double, 3> m{0, 0, 0};
  Collection& c = rt_.collection(cells_.id());
  for (int pe = 0; pe < rt_.npes(); ++pe) {
    for (auto& [ix, obj] : c.local(pe).elems) {
      for (const Atom& a : static_cast<Cell*>(obj.get())->atoms()) {
        m[0] += a.vx;
        m[1] += a.vy;
        m[2] += a.vz;
      }
    }
  }
  return m;
}

double Simulation::kinetic_energy() const {
  double e = 0;
  Collection& c = rt_.collection(cells_.id());
  for (int pe = 0; pe < rt_.npes(); ++pe) {
    for (auto& [ix, obj] : c.local(pe).elems) {
      for (const Atom& a : static_cast<Cell*>(obj.get())->atoms())
        e += 0.5 * (a.vx * a.vx + a.vy * a.vy + a.vz * a.vz);
    }
  }
  return e;
}

}  // namespace charm::leanmd
