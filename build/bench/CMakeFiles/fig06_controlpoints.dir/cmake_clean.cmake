file(REMOVE_RECURSE
  "CMakeFiles/fig06_controlpoints.dir/fig06_controlpoints.cpp.o"
  "CMakeFiles/fig06_controlpoints.dir/fig06_controlpoints.cpp.o.d"
  "fig06_controlpoints"
  "fig06_controlpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_controlpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
