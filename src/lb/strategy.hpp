#pragma once
// Load balancing strategy interface and the built-in strategy suite
// (§III-A of the paper: centralized, distributed and hierarchical schemes).
//
// Strategies see normalized *work* per chare (measured virtual load scaled
// back by the source PE's frequency), plus per-PE speeds, so they remain
// correct under DVFS and heterogeneous-cloud frequency scaling (§III-C, §IV-F).

#include <array>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "runtime/index.hpp"
#include "runtime/types.hpp"

namespace charm::lb {

struct ChareInfo {
  CollectionId col = -1;
  ObjIndex idx{};
  int pe = 0;
  double work = 0;  ///< frequency-normalized load since the last LB round
  bool migratable = true;
  std::array<double, 3> coords{};  ///< spatial position (ORB)
};

/// Sparse per-PE frequency map with default 1.0.  Stores only PEs whose speed
/// differs from 1.0, so a million-virtual-PE Stats costs O(DVFS'd PEs), not
/// O(P) (DESIGN.md §12/§13).  Reads are bit-identical to the dense vector the
/// strategies used to index: an absent PE is exactly 1.0.
class SpeedMap {
 public:
  SpeedMap() = default;
  SpeedMap(std::initializer_list<double> dense) { assign_dense(dense.begin(), dense.end()); }
  SpeedMap(const std::vector<double>& dense) {  // NOLINT(google-explicit-constructor)
    assign_dense(dense.begin(), dense.end());
  }
  SpeedMap& operator=(const std::vector<double>& dense) {
    entries_.clear();
    assign_dense(dense.begin(), dense.end());
    return *this;
  }
  SpeedMap& operator=(std::initializer_list<double> dense) {
    entries_.clear();
    assign_dense(dense.begin(), dense.end());
    return *this;
  }

  double operator[](std::size_t pe) const {
    // Entries are sorted by PE and few (only non-unit speeds); a short scan
    // beats binary search at typical sizes and is exact either way.
    for (const auto& [p, f] : entries_) {
      if (static_cast<std::size_t>(p) == pe) return f;
      if (static_cast<std::size_t>(p) > pe) break;
    }
    return 1.0;
  }

  /// Records `pe`'s speed (1.0 erases the entry).
  void set(int pe, double f);

  /// Left-fold sum of speeds for PEs [0, npes) — bit-identical to
  /// `std::accumulate` over the dense vector.  Runs of default 1.0 on an
  /// integer-valued accumulator are shortcut (each +1.0 step is exact there);
  /// otherwise the fold steps one PE at a time.
  double sum_first(int npes) const;

  bool operator==(const SpeedMap&) const = default;
  const std::vector<std::pair<int, double>>& entries() const { return entries_; }

 private:
  template <class It>
  void assign_dense(It first, It last) {
    int pe = 0;
    for (It it = first; it != last; ++it, ++pe)
      if (*it != 1.0) entries_.emplace_back(pe, *it);
  }

  std::vector<std::pair<int, double>> entries_;  ///< (pe, speed != 1.0), pe ascending
};

/// Incrementally-maintained auxiliary indexes the load database attaches to a
/// snapshot (DESIGN.md §13).  Value-copied with the Stats, so a strategy
/// running after the modeled gather delay never references live DB storage.
/// Hand-built Stats (tests, gossip replays) leave `valid` false and the
/// strategies fall back to their from-scratch rebuild paths — which are the
/// pre-database algorithms kept verbatim, so both paths decide identically.
struct StatsAux {
  bool valid = false;
  double total_work = 0;       ///< canonical-order left-fold over all chares
  int max_hosting_pe = -1;     ///< largest PE hosting a chare (reconfig guard)
  /// Database snapshot generation (internal).  LoadDb::recycle uses it to
  /// prove a returned buffer is last round's snapshot, in which case the next
  /// snapshot patches only the chares that changed instead of re-copying all
  /// of them.  Zero for hand-built Stats — those always take the full copy.
  std::uint64_t db_gen = 0;
  std::vector<int> pes;        ///< hosting PEs, ascending
  std::vector<double> done_all;     ///< per hosting PE: sum(work/speed), bucket order
  std::vector<double> done_nonmig;  ///< same, non-migratable chares only
  std::vector<std::uint32_t> bucket_off;    ///< CSR offsets into bucket_ranks (pes.size()+1)
  std::vector<std::uint32_t> bucket_ranks;  ///< chare ranks grouped by PE, canonical within
  std::vector<std::uint32_t> desc_by_work;  ///< migratable ranks, (work desc, rank asc)
};

struct Stats {
  int npes = 0;        ///< active PEs (assignment targets are 0..npes-1)
  SpeedMap pe_speed;   ///< frequency scale per PE (sparse, default 1.0)
  std::vector<ChareInfo> chares;  ///< canonical (col, idx) order
  StatsAux aux;        ///< maintained indexes; invalid for hand-built Stats
};

struct Migration {
  CollectionId col = -1;
  ObjIndex idx{};
  int from = 0;
  int to = 0;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;
  virtual std::vector<Migration> assign(const Stats& stats) = 0;
};

/// Sort chares by descending work; assign each to the PE with the earliest
/// predicted completion time (work/speed).  O(n log n), ignores current
/// placement (may migrate heavily).  With a valid aux block the maintained
/// work-order index replaces the sort.
std::unique_ptr<Strategy> make_greedy();

/// Moves chares off overloaded PEs onto underloaded ones until the predicted
/// max is within `tolerance` of the mean; minimizes migrations.  With a valid
/// aux block a round costs O(moved log P) over indexed completion heaps
/// instead of O(8 P · objects) full scans.
std::unique_ptr<Strategy> make_refine(double tolerance = 1.05);

/// Two-level hierarchical scheme (HybridLB in the paper): PEs are split into
/// ~sqrt(P) groups; group loads are balanced first, then chares within each
/// group.
std::unique_ptr<Strategy> make_hybrid();

/// Orthogonal recursive bisection over chare spatial coordinates (Barnes-Hut).
std::unique_ptr<Strategy> make_orb();

/// Testing strategies.
std::unique_ptr<Strategy> make_rotate();
std::unique_ptr<Strategy> make_random(std::uint64_t seed);

/// Predicted max/avg completion ratio for a placement (used by tests/MetaLB).
double imbalance_of(const Stats& stats);

}  // namespace charm::lb
