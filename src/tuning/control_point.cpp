#include "tuning/control_point.hpp"

#include <algorithm>
#include <stdexcept>

namespace charm::tuning {

ControlPoint::ControlPoint(std::string name, int min_value, int max_value, int initial,
                           EffectHint hint)
    : name_(std::move(name)), min_(min_value), max_(max_value), value_(initial), hint_(hint) {
  if (min_ > max_ || initial < min_ || initial > max_)
    throw std::invalid_argument("ControlPoint: inconsistent range");
}

void ControlPoint::set_value(int v) { value_ = std::clamp(v, min_, max_); }

Tuner::Tuner(ControlPoint& cp, Params params)
    : cp_(cp), params_(params), best_value_(cp.value()), last_candidate_(cp.value()) {
  state_ = State::kWarmup;
  steps_left_ = params_.warmup_steps;
}

void Tuner::report(double step_metric) {
  switch (state_) {
    case State::kDone:
      return;
    case State::kWarmup:
      if (--steps_left_ <= 0) {
        state_ = State::kMeasure;
        steps_left_ = params_.window_steps;
        accum_ = 0;
        accum_n_ = 0;
      }
      return;
    case State::kMeasure:
      accum_ += step_metric;
      ++accum_n_;
      if (--steps_left_ <= 0) window_complete(accum_ / accum_n_);
      return;
  }
}

namespace {
int advance(int v, int dir, int lo, int hi) {
  int next = dir > 0 ? std::max(v + 1, v * 2) : std::min(v - 1, v / 2);
  return std::clamp(next, lo, hi);
}
}  // namespace

void Tuner::window_complete(double avg) {
  ++probes_;
  const int cur = cp_.value();

  auto settle = [this] {
    cp_.set_value(best_value_);
    state_ = State::kDone;
  };

  if (best_metric_ < 0) {
    // First measurement establishes the baseline; start probing upward.
    best_metric_ = avg;
    best_value_ = cur;
    const int next = advance(cur, direction_, cp_.min_value(), cp_.max_value());
    if (next == cur) {
      settle();
    } else {
      move_to(next);
    }
    return;
  }

  if (avg < best_metric_ * (1.0 - params_.improve_margin)) {
    // Keep moving in the improving direction.
    best_metric_ = avg;
    best_value_ = cur;
    const int next = advance(cur, direction_, cp_.min_value(), cp_.max_value());
    if (next == cur) {
      if (!tried_reverse_) {
        tried_reverse_ = true;
        direction_ = -direction_;
        const int back = advance(best_value_, direction_, cp_.min_value(), cp_.max_value());
        if (back == best_value_) {
          settle();
        } else {
          move_to(back);
        }
      } else {
        settle();
      }
    } else {
      move_to(next);
    }
    return;
  }

  // Current candidate is worse than the best seen.
  if (!tried_reverse_) {
    tried_reverse_ = true;
    direction_ = -direction_;
    const int back = advance(best_value_, direction_, cp_.min_value(), cp_.max_value());
    if (back != best_value_ && back != cur) {
      move_to(back);
      return;
    }
  }
  // Final refinement: probe the midpoint between the best value and the
  // nearest worse candidate once, then settle.
  const int mid = (best_value_ + cur) / 2;
  if (!refined_ && mid != best_value_ && mid != cur) {
    refined_ = true;
    move_to(mid);
    return;
  }
  settle();
}

void Tuner::move_to(int v) {
  last_candidate_ = v;
  cp_.set_value(v);
  state_ = State::kWarmup;
  steps_left_ = params_.warmup_steps;
}

}  // namespace charm::tuning
