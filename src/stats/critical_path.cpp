#include "stats/critical_path.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <utility>

namespace stats {

namespace {

// Path metrics accumulated *up to the start* of an exec span.
struct PathPrefix {
  double length = 0;  ///< work + comm up to the span's first instruction
  double work = 0;
  double comm = 0;
  std::uint64_t nodes = 0;  ///< predecessor exec spans on the chain
};

struct ExecNode {
  double begin = 0;
  double end = 0;
  PathPrefix at_start;
};

// Doubles are matched bit-exactly: the arrival time stored in a kSend event
// and in the corresponding kRecv event are the same double (both copied from
// the arrival event's timestamp), so bit-pattern equality is the right key.
std::uint64_t bits(double v) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct SendInfo {
  int src = -1;
  double depart = 0;
  double latency = 0;
};

}  // namespace

CriticalPathStats critical_path(const std::vector<trace::Event>& events, int npes) {
  CriticalPathStats cp;
  if (npes <= 0) return cp;

  // Per-PE exec spans in arrival order (== begin-time order: the machine is
  // sequential and logs each exec when it finishes dispatching it).
  std::vector<std::vector<ExecNode>> execs(static_cast<std::size_t>(npes));
  // In-flight sends keyed by (destination, arrival-time bits).  A deque keeps
  // simultaneous same-destination arrivals FIFO, matching delivery order.
  std::map<std::pair<int, std::uint64_t>, std::deque<SendInfo>> inflight;
  // Prefix carried from the kRecv that precedes the next kExec on each PE.
  std::vector<PathPrefix> pending(static_cast<std::size_t>(npes));
  std::vector<char> has_pending(static_cast<std::size_t>(npes), 0);

  double best_end = 0;
  auto consider = [&](const ExecNode& n) {
    const double len = n.at_start.length + (n.end - n.begin);
    if (len > best_end) {
      best_end = len;
      cp.length = len;
      cp.work = n.at_start.work + (n.end - n.begin);
      cp.comm = n.at_start.comm;
      cp.nodes = n.at_start.nodes + 1;
    }
  };

  for (const trace::Event& e : events) {
    switch (e.kind) {
      case trace::Kind::kSend: {
        if (e.a < 0 || e.a >= npes) break;
        inflight[{e.a, bits(e.end)}].push_back(SendInfo{e.pe, e.begin, e.end - e.begin});
        break;
      }
      case trace::Kind::kRecv: {
        if (e.pe < 0 || e.pe >= npes) break;
        const auto it = inflight.find({e.pe, bits(e.begin)});
        if (it == inflight.end() || it->second.empty()) break;  // post/timer: a DAG root
        const SendInfo m = it->second.front();
        it->second.pop_front();
        if (it->second.empty()) inflight.erase(it);
        if (m.src < 0 || m.src >= npes) break;
        // The sender's exec span containing the departure is already logged
        // (its kExec event-time precedes this delivery's).
        const auto& src_execs = execs[static_cast<std::size_t>(m.src)];
        auto pos = std::upper_bound(
            src_execs.begin(), src_execs.end(), m.depart,
            [](double t, const ExecNode& n) { return t < n.begin; });
        if (pos == src_execs.begin()) break;
        const ExecNode& sender = *std::prev(pos);
        if (m.depart > sender.end + 1e-18) break;  // sent outside any handler
        ++cp.edges_matched;
        PathPrefix p;
        const double into_sender = m.depart - sender.begin;
        p.work = sender.at_start.work + into_sender;
        p.comm = sender.at_start.comm + m.latency;
        p.length = sender.at_start.length + into_sender + m.latency;
        p.nodes = sender.at_start.nodes + 1;
        // Keep the longer chain if several deliveries race for the same exec
        // (cannot happen today — one kRecv per kExec — but cheap to be safe).
        const std::size_t pe = static_cast<std::size_t>(e.pe);
        if (!has_pending[pe] || p.length > pending[pe].length) pending[pe] = p;
        has_pending[pe] = 1;
        break;
      }
      case trace::Kind::kExec: {
        if (e.pe < 0 || e.pe >= npes) break;
        const std::size_t pe = static_cast<std::size_t>(e.pe);
        ExecNode n;
        n.begin = e.begin;
        n.end = e.end;
        if (has_pending[pe]) {
          n.at_start = pending[pe];
          has_pending[pe] = 0;
        }
        consider(n);
        execs[pe].push_back(n);
        break;
      }
      case trace::Kind::kEntry:
      case trace::Kind::kIdle:
      case trace::Kind::kPhase:
        break;
    }
  }
  return cp;
}

}  // namespace stats
