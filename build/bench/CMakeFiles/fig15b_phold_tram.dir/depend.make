# Empty dependencies file for fig15b_phold_tram.
# This may be replaced when dependencies are built.
