
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_collectives.cpp" "tests/CMakeFiles/test_core.dir/core/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_collectives.cpp.o.d"
  "/root/repo/tests/core/test_location.cpp" "tests/CMakeFiles/test_core.dir/core/test_location.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_location.cpp.o.d"
  "/root/repo/tests/core/test_pup.cpp" "tests/CMakeFiles/test_core.dir/core/test_pup.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pup.cpp.o.d"
  "/root/repo/tests/core/test_runtime_basic.cpp" "tests/CMakeFiles/test_core.dir/core/test_runtime_basic.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_runtime_basic.cpp.o.d"
  "/root/repo/tests/core/test_sim.cpp" "tests/CMakeFiles/test_core.dir/core/test_sim.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sim.cpp.o.d"
  "/root/repo/tests/core/test_topology.cpp" "tests/CMakeFiles/test_core.dir/core/test_topology.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/charmlike.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
