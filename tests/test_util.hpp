#pragma once
// Shared test fixture: a Machine + Runtime pair with the default test
// configuration, plus the element-scan helper most tests re-implemented.
// Include from tests/{core,features,apps}; keep assertions out of here so
// the fixture stays usable from any gtest file.

#include <cstdint>

#include "runtime/runtime.hpp"
#include "sim/machine.hpp"

namespace charmtest {

struct Harness {
  sim::Machine machine;
  charm::Runtime rt;
  explicit Harness(int npes, sim::NetworkParams net = {}, int pes_per_chip = 4,
                   charm::RuntimeConfig cfg = {})
      : machine(sim::MachineConfig{npes, net, pes_per_chip}), rt(machine, cfg) {}

  /// Tree-collectives fixture: CollectiveTopology::kTree with the given arity.
  static charm::RuntimeConfig tree_config(int arity) {
    charm::RuntimeConfig cfg;
    cfg.collectives = charm::CollectiveTopology::kTree;
    cfg.tree_fanout = arity;
    return cfg;
  }

  /// Scans every PE for element `ix` of `col`; reports the owner via
  /// `pe_out` when found.
  template <typename T, typename Ix = std::int32_t>
  T* find(charm::CollectionId col, Ix ix, int* pe_out = nullptr) {
    for (int pe = 0; pe < rt.npes(); ++pe) {
      auto* f = rt.collection(col).find(pe, charm::IndexTraits<Ix>::encode(ix));
      if (f != nullptr) {
        if (pe_out != nullptr) *pe_out = pe;
        return static_cast<T*>(f);
      }
    }
    return nullptr;
  }
};

}  // namespace charmtest
