// Fig 14: LULESH weak scaling on Hopper — native MPI vs AMPI at v=1, AMPI
// at v=8 (cache win), AMPI v=8 + load balancing, plus non-cubic PE counts.
//
// "Native MPI" is AMPI at v=1 with migratability off (how the paper frames
// the equal-footing comparison; DESIGN.md §1).  Virtualization v means the
// same total problem split into v x more (smaller) rank subdomains per PE:
// the per-rank working set shrinks below the modeled L2+L3 capacity and the
// kernels speed up — the paper's 2.4x.

#include "bench_common.hpp"
#include "miniapps/lulesh/lulesh.hpp"

namespace {

using namespace charm;

struct Variant {
  const char* name;
  int v;         ///< virtualization ratio (ranks per PE)
  bool lb;
};

double run_weak(int npes, int v, bool lb, int* nranks_out = nullptr) {
  sim::Machine m(bench::machine_config(npes, sim::NetworkParams::cray_gemini()));
  bench::attach_trace(m);
  Runtime rt(m);

  // Weak scaling: total elements proportional to PEs; v ranks per PE.
  // Per-PE working set ~ 24^3 elements * 1200 B ~ 16.6 MB vs 8 MB cache.
  const int elems_per_pe_dim = 24;
  int ranks_dim = 1;
  while (ranks_dim * ranks_dim * ranks_dim < npes * v) ++ranks_dim;
  const int nranks = ranks_dim * ranks_dim * ranks_dim;
  if (nranks_out) *nranks_out = nranks;
  const int elems_dim = std::max(
      2, static_cast<int>(elems_per_pe_dim /
                          std::cbrt(static_cast<double>(nranks) / npes)));

  lulesh::Config cfg;
  cfg.ranks_per_dim = ranks_dim;
  cfg.elems_per_dim = elems_dim;
  cfg.iterations = bench::cap_steps(10, 3);
  cfg.migrate_every = lb ? 3 : 0;
  cfg.region_factor = 2.5;
  ampi::Options opts;
  opts.cache_bytes = 8e6;

  if (lb) {
    rt.lb().set_strategy(lb::make_greedy());
    rt.lb().set_period(3);
  }
  lulesh::Stats out;
  bool done = false;
  lulesh::run(rt, cfg, opts, [&](const lulesh::Stats& s) {
    out = s;
    done = true;
    rt.exit();
  });
  m.run();
  if (!done) std::printf("   WARNING: LULESH run did not complete (P=%d v=%d)\n", npes, v);
  return out.time_per_iter;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 14", "LULESH weak scaling: MPI vs AMPI virtualization (s/iteration)");
  bench::columns({"PEs", "MPI(v=1)", "AMPI(v=1)", "AMPI(v=8)", "AMPI(v=8)+LB"});
  for (int p : bench::pe_series({8, 27, 64})) {
    // "Native MPI": AMPI ranks that never call MPI_Migrate (v=1, no LB).
    const double mpi = run_weak(p, 1, false);
    const double ampi_v1 = run_weak(p, 1, false);
    const double ampi_v8 = run_weak(p, 8, false);
    const double ampi_v8_lb = run_weak(p, 8, true);
    bench::row({static_cast<double>(p), mpi, ampi_v1, ampi_v8, ampi_v8_lb});
  }
  bench::header("Figure 14 (non-cubic)", "virtualization frees LULESH from cubic PE counts");
  bench::columns({"PEs", "AMPI(v~8)"});
  for (int p : bench::pe_series({10, 20}, 1)) {
    int nranks = 0;
    const double t = run_weak(p, 8, false, &nranks);
    std::printf("%16d%16.6g   (%d ranks on %d PEs)\n", p, t, nranks, p);
  }
  bench::note("paper shape: v=8 ~2.4x faster than v=1 (working set fits cache); +LB removes");
  bench::note("the region imbalance; non-cubic counts run with no major overhead");
  return bench::finish();
}
