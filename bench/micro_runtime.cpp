// Micro-benchmarks (google-benchmark) for the runtime substrate itself:
// PUP throughput, emulator event rate, point-send + location-lookup paths,
// reduction latency growth with PE count, and TRAM aggregation ablation.
//
// These measure HOST performance of the emulator and runtime data paths
// (events/sec), plus virtual-time ablations (reduction latency, TRAM factor).

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lb/load_db.hpp"
#include "runtime/charm.hpp"
#include "tram/tram.hpp"

namespace {

using namespace charm;

struct Payload {
  std::vector<double> values;
  std::map<std::string, int> table;
  template <class P>
  void pup(P& p) {
    p | values;
    p | table;
  }
};

struct Msg {
  int v = 0;
  template <class P>
  void pup(P& p) {
    p | v;
  }
};

/// Flat aggregate whose walk collapses to one memcpy (pup::mem_copyable).
struct MemMsg {
  double a = 0;
  double b = 0;
  std::int64_t c = 0;
  template <class P>
  void pup(P& p) {
    p | a;
    p | b;
    p | c;
  }
};

struct StringMsg {
  std::string name;
  std::vector<std::string> tags;
  template <class P>
  void pup(P& p) {
    p | name;
    p | tags;
  }
};

struct NestedMsg {
  std::vector<std::vector<double>> rows;
  template <class P>
  void pup(P& p) {
    p | rows;
  }
};

}  // namespace

namespace pup {
template <>
struct MemCopyable<Msg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(int);
};
template <>
struct MemCopyable<MemMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = 2 * sizeof(double) + sizeof(std::int64_t);
};
}  // namespace pup

namespace {

void BM_PupRoundTrip(benchmark::State& state) {
  Payload in;
  in.values.assign(static_cast<std::size_t>(state.range(0)), 3.14);
  in.table = {{"a", 1}, {"b", 2}};
  for (auto _ : state) {
    auto bytes = pup::to_bytes(in);
    Payload out;
    pup::from_bytes(bytes, out);
    benchmark::DoNotOptimize(out.values.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(state.range(0)) * 8);
}
BENCHMARK(BM_PupRoundTrip)->Arg(64)->Arg(1024)->Arg(16384);

void BM_PupPackUnpack_Mem(benchmark::State& state) {
  // mem_copyable aggregate: single-pass pack is one constexpr-sized memcpy.
  MemMsg in{1.5, 2.5, 42};
  std::vector<std::byte> buf;
  for (auto _ : state) {
    buf.clear();
    pup::pack_append(buf, in);
    MemMsg out;
    pup::from_bytes(buf.data(), buf.size(), out);
    benchmark::DoNotOptimize(out.c);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sizeof(MemMsg)));
}
BENCHMARK(BM_PupPackUnpack_Mem);

void BM_PupPackUnpack_Strings(benchmark::State& state) {
  // Length-prefixed variable-size fields: the devirtualized walk still packs
  // in one pass (no separate Sizer traversal).
  StringMsg in;
  in.name = "a-reasonably-long-entry-method-label";
  for (int i = 0; i < 8; ++i) in.tags.push_back("tag-" + std::to_string(i));
  std::vector<std::byte> buf;
  for (auto _ : state) {
    buf.clear();
    pup::pack_append(buf, in);
    StringMsg out;
    pup::from_bytes(buf.data(), buf.size(), out);
    benchmark::DoNotOptimize(out.tags.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PupPackUnpack_Strings);

void BM_PupPackUnpack_Nested(benchmark::State& state) {
  NestedMsg in;
  in.rows.assign(16, std::vector<double>(static_cast<std::size_t>(state.range(0)), 2.5));
  std::vector<std::byte> buf;
  for (auto _ : state) {
    buf.clear();
    pup::pack_append(buf, in);
    NestedMsg out;
    pup::from_bytes(buf.data(), buf.size(), out);
    benchmark::DoNotOptimize(out.rows.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          static_cast<std::int64_t>(state.range(0)) * 8);
}
BENCHMARK(BM_PupPackUnpack_Nested)->Arg(16)->Arg(256);

void BM_MachineEventRate(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine m(sim::MachineConfig{8, {}, 4});
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      m.post(i % 8, 0.0, [&m, i] {
        if (i % 2 == 0) m.send((i + 3) % 8, 64, 0, [] {});
      });
    }
    m.run();
    benchmark::DoNotOptimize(m.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_MachineEventRate);

class Sink : public ArrayElement<Sink, std::int32_t> {
 public:
  int n = 0;
  void take(const Msg&) { ++n; }
};

void BM_PointSendDelivery(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine m(sim::MachineConfig{8, {}, 4});
    Runtime rt(m);
    auto arr = ArrayProxy<Sink>::create(rt);
    for (int i = 0; i < 64; ++i) arr.seed(i, i % 8);
    state.ResumeTiming();
    rt.on_pe(0, [&] {
      for (int i = 0; i < 1000; ++i) arr[i % 64].send<&Sink::take>(Msg{i});
    });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PointSendDelivery);

void BM_PointSendDeliver(benchmark::State& state) {
  // Steady-state variant of BM_PointSendDelivery: one long-lived runtime, so
  // after the warm-up round every send→deliver runs entirely on recycled
  // resources (payload pool, closure block cache, event arena, ready rings).
  // This is the workload the zero-allocation guarantee covers.
  sim::Machine m(sim::MachineConfig{8, {}, 4});
  Runtime rt(m);
  auto arr = ArrayProxy<Sink>::create(rt);
  for (int i = 0; i < 64; ++i) arr.seed(i, i % 8);
  auto drive = [&] {
    rt.on_pe(0, [&] {
      for (int i = 0; i < 1000; ++i) arr[i % 64].send<&Sink::take>(Msg{i});
    });
    m.run();
  };
  drive();  // warm the pools and location caches
  for (auto _ : state) drive();
  state.SetItemsProcessed(state.iterations() * 1000);
  const PayloadPool& pool = rt.payload_pool();
  state.counters["payload_pool_hits"] =
      benchmark::Counter(static_cast<double>(pool.hits()));
  state.counters["payload_pool_misses"] =
      benchmark::Counter(static_cast<double>(pool.misses()));
}
BENCHMARK(BM_PointSendDeliver);

void BM_LocalSendDeliver(benchmark::State& state) {
  // Same-PE steady state: every send takes the typed fast path — the
  // argument moves through an in-flight slot, nothing is packed or unpacked,
  // and no heap allocation happens after warm-up.  Virtual-time charges and
  // reported byte counts are identical to the packed path.
  sim::Machine m(sim::MachineConfig{1, {}, 4});
  Runtime rt(m);
  auto arr = ArrayProxy<Sink>::create(rt);
  for (int i = 0; i < 64; ++i) arr.seed(i, 0);
  auto drive = [&] {
    rt.on_pe(0, [&] {
      for (int i = 0; i < 1000; ++i) arr[i % 64].send<&Sink::take>(Msg{i});
    });
    m.run();
  };
  drive();  // warm the event arena and closure block cache
  for (auto _ : state) drive();
  state.SetItemsProcessed(state.iterations() * 1000);
  const PayloadPool& pool = rt.payload_pool();
  state.counters["payload_pool_hits"] =
      benchmark::Counter(static_cast<double>(pool.hits()));
  state.counters["payload_pool_misses"] =
      benchmark::Counter(static_cast<double>(pool.misses()));
}
BENCHMARK(BM_LocalSendDeliver);

void BM_SparseFootprint(benchmark::State& state) {
  // Structural memory of a million-virtual-PE machine whose workload touches
  // ~1K PEs (DESIGN.md §12).  The counters are byte-accounting over the
  // runtime's own structures (PagedTable pages, ready rings, event arena,
  // collection tables), so they are deterministic across hosts and gated
  // hard by check_stats_schema.py: a change that makes per-PE state dense
  // again blows the per-idle-PE ceiling and fails the schema gate.
  constexpr int kVirtualPes = 1 << 20;
  constexpr int kTouched = 1024;
  double idle_bytes_per_pe = 0;
  double touched_bytes_per_pe = 0;
  for (auto _ : state) {
    sim::Machine m(sim::MachineConfig{kVirtualPes, {}, 4});
    Runtime rt(m);
    // Configured-but-idle cost: nothing has touched any PE yet, so this is
    // the fixed overhead (table spines, initial event reserve) over all P.
    idle_bytes_per_pe = static_cast<double>(rt.memory_footprint().total()) /
                        static_cast<double>(kVirtualPes);
    auto arr = ArrayProxy<Sink>::create(rt);
    for (int i = 0; i < kTouched; ++i) arr.seed(i, i);
    rt.on_pe(0, [&] {
      for (int i = 0; i < kTouched; ++i) arr[i].send<&Sink::take>(Msg{i});
    });
    m.run();
    const Runtime::MemoryFootprint f = rt.memory_footprint();
    touched_bytes_per_pe = static_cast<double>(f.total()) /
                           static_cast<double>(f.touched_pes);
    benchmark::DoNotOptimize(touched_bytes_per_pe);
  }
  state.SetItemsProcessed(state.iterations() * kTouched);
  state.counters["mem_bytes_per_idle_pe"] = idle_bytes_per_pe;
  state.counters["mem_bytes_per_touched_pe"] = touched_bytes_per_pe;
  // Whole-process high-water mark (host-dependent; reported, not gated).
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  state.counters["mem_peak_rss_kb"] = static_cast<double>(ru.ru_maxrss);
}
BENCHMARK(BM_SparseFootprint);

class Contrib : public ArrayElement<Contrib, std::int32_t> {
 public:
  void go() { contribute(1.0, ReduceOp::kSum, cb); }
  static Callback cb;
};
Callback Contrib::cb;

void BM_ReductionVirtualLatency(benchmark::State& state) {
  // Reports the VIRTUAL latency of one reduction at a given PE count; real
  // time measures the emulator overhead.
  const int npes = static_cast<int>(state.range(0));
  double virtual_latency = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine m(sim::MachineConfig{npes, {}, 4});
    Runtime rt(m);
    auto arr = ArrayProxy<Contrib>::create(rt);
    for (int i = 0; i < npes; ++i) arr.seed(i, i);
    double t_done = 0;
    Contrib::cb = Callback::to_function([&](ReductionResult&&) { t_done = charm::now(); });
    state.ResumeTiming();
    rt.on_pe(0, [&] { arr.broadcast<&Contrib::go>(); });
    m.run();
    virtual_latency = t_done;
  }
  state.counters["virtual_us"] = virtual_latency * 1e6;
}
BENCHMARK(BM_ReductionVirtualLatency)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_TramAggregationFactor(benchmark::State& state) {
  const std::size_t buffer = static_cast<std::size_t>(state.range(0));
  double aggregation = 0;
  double virtual_time = 0;
  for (auto _ : state) {
    sim::Machine m(sim::MachineConfig{27, {}, 4});
    Runtime rt(m);
    auto arr = ArrayProxy<Sink>::create(rt);
    for (int i = 0; i < 27; ++i) arr.seed(i, i);
    tram::Stream<&Sink::take> stream(rt, arr, {buffer, 8});
    rt.on_pe(0, [&] {
      sim::Rng rng(1);
      for (int k = 0; k < 4000; ++k)
        stream.send(static_cast<std::int32_t>(rng.next_below(27)), Msg{k});
      stream.flush_all();
    });
    m.run();
    aggregation = stream.core().aggregation();
    virtual_time = m.max_pe_clock();
  }
  state.counters["items_per_batch"] = aggregation;
  state.counters["virtual_ms"] = virtual_time * 1e3;
}
BENCHMARK(BM_TramAggregationFactor)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

// ---- LB decision loop (DESIGN.md §13) --------------------------------------
//
// One "round" is what the runtime does between the AtSync barrier and the
// migration broadcast: refresh every chare's measured load, produce the
// strategy input, run the strategy, and apply its decisions.  BM_LbAssign_*
// drives the persistent load database (O(dirty) snapshot + the indexed
// strategy paths); BM_LbAssignRebuild_* replays the pre-database cost model
// on the same workload — regroup every chare from the per-PE element tables,
// canonical-sort them, and hand the strategy an index-less Stats so it takes
// its from-scratch scan path.  Decisions are bit-identical between the two
// (the oracle fuzz in tests/features/test_lb_incremental.cpp proves it), so
// the us_per_round ratio isolates the decision-loop overhead the database
// removes.  The workload models the paper's persistence principle (§III-A):
// after a warm-up converges placement, ~1% of loads drift per round and each
// round's migrations feed back into the next.

std::uint64_t lb_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr int kLbPes = 64;

double lb_load(int i, int generation) {
  const std::uint64_t h =
      lb_mix(static_cast<std::uint64_t>(i) * 0x51ull + static_cast<std::uint64_t>(generation));
  return (1.0 + static_cast<double>(h % 1024) / 1024.0) * 1e-3;
}

/// Per-round load drift: ~1% of chares report a different measurement.
void lb_perturb(std::vector<double>& load, int round) {
  const int n = static_cast<int>(load.size());
  const int changed = n / 100 + 1;
  for (int j = 0; j < changed; ++j) {
    const int i = static_cast<int>((static_cast<std::uint64_t>(round) * 9973ull +
                                    static_cast<std::uint64_t>(j) * 101ull) %
                                   static_cast<std::uint64_t>(n));
    load[i] = lb_load(i, round + 1);
  }
}

std::unique_ptr<lb::Strategy> lb_make(const std::string& which) {
  return which == "greedy" ? lb::make_greedy() : lb::make_refine(1.05);
}

template <class RunRound>
void lb_assign_loop(benchmark::State& state, int n, RunRound&& run_round) {
  for (int w = 0; w < 4; ++w) run_round();  // converge to the steady state
  std::int64_t moved = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) moved += run_round();
  const auto t1 = std::chrono::steady_clock::now();
  const double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["us_per_round"] = us / static_cast<double>(state.iterations());
  state.counters["moved_per_round"] =
      static_cast<double>(moved) / static_cast<double>(state.iterations());
}

void lb_assign_db(benchmark::State& state, const std::string& which) {
  const int n = static_cast<int>(state.range(0));
  auto strat = lb_make(which);
  lb::LoadDb db;
  lb::SpeedMap speed;
  std::vector<double> load(static_cast<std::size_t>(n));
  std::vector<int> pe(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> slot(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pe[i] = static_cast<int>(static_cast<std::int64_t>(i) * kLbPes / n);
    load[i] = lb_load(i, 0);
    slot[i] = db.add(0, ObjIndex{static_cast<std::uint64_t>(i), 0}, pe[i], load[i], true, true,
                     std::array<double, 3>{}, nullptr);
  }
  int round = 0;
  auto run_round = [&]() -> std::int64_t {
    lb_perturb(load, round);
    for (int i = 0; i < n; ++i) db.update_load(slot[i], load[i]);
    lb::Stats st = db.snapshot(kLbPes, speed);
    const std::vector<lb::Migration> migs = strat->assign(st);
    db.recycle(std::move(st));  // as the manager does after the strategy runs
    for (const lb::Migration& mg : migs) {
      const int i = static_cast<int>(mg.idx.a);
      db.remove(slot[i]);
      pe[i] = mg.to;
      slot[i] = db.add(0, mg.idx, mg.to, load[i], true, true, std::array<double, 3>{}, nullptr);
    }
    ++round;
    return static_cast<std::int64_t>(migs.size());
  };
  lb_assign_loop(state, n, run_round);
  state.counters["db_dirty_reads"] = static_cast<double>(db.counters().dirty_flushed);
  state.counters["db_full_sorts"] = static_cast<double>(db.counters().index_full_sorts);
}

void lb_assign_rebuild(benchmark::State& state, const std::string& which) {
  const int n = static_cast<int>(state.range(0));
  auto strat = lb_make(which);
  std::vector<double> load(static_cast<std::size_t>(n));
  std::vector<int> pe(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pe[i] = static_cast<int>(static_cast<std::int64_t>(i) * kLbPes / n);
    load[i] = lb_load(i, 0);
  }
  std::vector<int> off(kLbPes + 1, 0);
  // The old collect walked each PE's unordered element table, so within a PE
  // the chares arrive in hash order, not index order; emulate that with a
  // fixed permutation or the canonical sort below gets artificially easy
  // presorted runs.
  std::vector<int> walk(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) walk[i] = i;
  for (int i = n - 1; i > 0; --i)
    std::swap(walk[i], walk[lb_mix(0xabcdull + static_cast<std::uint64_t>(i)) %
                            static_cast<std::uint64_t>(i + 1)]);
  int round = 0;
  auto run_round = [&]() -> std::int64_t {
    lb_perturb(load, round);
    // A fresh Stats per round, as the old rebuild built one: regroup by
    // hosting PE first — the shape the per-PE element tables hand back —
    // then canonical-sort, exactly as the pre-database collect did.
    lb::Stats st;
    st.npes = kLbPes;
    std::fill(off.begin(), off.end(), 0);
    for (int i = 0; i < n; ++i) ++off[pe[i] + 1];
    for (int p = 0; p < kLbPes; ++p) off[p + 1] += off[p];
    st.chares.resize(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      const int i = walk[k];
      lb::ChareInfo& info = st.chares[off[pe[i]]++];
      info.col = 0;
      info.idx = ObjIndex{static_cast<std::uint64_t>(i), 0};
      info.pe = pe[i];
      info.work = load[i];
      info.migratable = true;
    }
    std::sort(st.chares.begin(), st.chares.end(), [](const lb::ChareInfo& a, const lb::ChareInfo& b) {
      if (a.col != b.col) return a.col < b.col;
      if (a.idx.a != b.idx.a) return a.idx.a < b.idx.a;
      return a.idx.b < b.idx.b;
    });
    st.aux = lb::StatsAux{};  // index-less: strategies take the rebuild path
    const std::vector<lb::Migration> migs = strat->assign(st);
    for (const lb::Migration& mg : migs) pe[static_cast<int>(mg.idx.a)] = mg.to;
    ++round;
    return static_cast<std::int64_t>(migs.size());
  };
  lb_assign_loop(state, n, run_round);
}

void BM_LbAssign_Greedy(benchmark::State& state) { lb_assign_db(state, "greedy"); }
BENCHMARK(BM_LbAssign_Greedy)->Arg(10000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_LbAssign_Refine(benchmark::State& state) { lb_assign_db(state, "refine"); }
BENCHMARK(BM_LbAssign_Refine)->Arg(10000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_LbAssignRebuild_Greedy(benchmark::State& state) { lb_assign_rebuild(state, "greedy"); }
BENCHMARK(BM_LbAssignRebuild_Greedy)
    ->Arg(10000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_LbAssignRebuild_Refine(benchmark::State& state) { lb_assign_rebuild(state, "refine"); }
BENCHMARK(BM_LbAssignRebuild_Refine)
    ->Arg(10000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), but also accepts the figure benches' --smoke flag
// (mapped to a minimal-time run) so CI can invoke every bench uniformly.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.01";
  for (char*& a : args)
    if (std::string_view(a) == "--smoke") a = min_time.data();
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
