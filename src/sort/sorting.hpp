#pragma once
// Parallel sorting library (§III-G, Fig 7).
//
// Two algorithms over the same per-PE key blocks:
//
//  * hist_sort — Charm++-style asynchronous histogram sort (Solomonik & Kale,
//    IPDPS'10): iterative splitter probing via tree reductions, then an
//    all-to-all exchange and local merge.  Every coordination step is a
//    logarithmic collective; nothing is centralized.
//
//  * merge_sort — the bulk-synchronous "MPI multiway-merge" baseline from the
//    paper's CHARM interop study: every PE ships samples to rank 0, rank 0
//    sorts them and picks splitters, barriers separate each phase.  The root
//    sample processing and P point-to-point arrivals at one PE are the
//    scalability bottleneck Fig 7 exposes.
//
// The Library facade doubles as the paper's interop interface function: an
// AMPI program can hand its keys to the charm module, run the async sort,
// and get control back (CharmLibInit-style; see tests/apps/test_sort.cpp).

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/charm.hpp"

namespace charm::sortlib {

struct SortParams {
  double cmp_cost = 3e-9;       ///< cost per comparison-ish operation (s)
  int probe_rounds = 3;         ///< histsort splitter refinement rounds
  int samples_per_pe = 32;      ///< baseline keys shipped to root (0 = all)
};

struct StartMsg {
  int dummy = 0;
  template <class P>
  void pup(P& p) {
    p | dummy;
  }
};

struct KeysMsg {
  int from = 0;
  std::vector<std::uint64_t> keys;
  template <class P>
  void pup(P& p) {
    p | from;
    p | keys;
  }
};

struct SplitterMsg {
  std::vector<std::uint64_t> splitters;
  template <class P>
  void pup(P& p) {
    p | splitters;
  }
};

class Library;
class Sorter;

namespace detail {
/// Shared driver state for an in-flight sort (root-side probing bookkeeping).
struct SortState {
  SortParams params;
  CollectionId col = -1;
  int npes = 0;
  Callback done;           ///< user completion callback
  Callback done_internal;  ///< next phase transition

  // Histogram probing (root-side).
  int rounds_left = 0;
  std::vector<std::uint64_t> splitters;
  std::vector<std::uint64_t> lo, hi;  ///< bisection bracket per splitter
  double total_keys = 0;

  // Baseline sample collection (root-side).
  std::vector<std::uint64_t> samples;
  int sample_chunks = 0;

  GroupProxy<Sorter> proxy() const { return GroupProxy<Sorter>(col); }
};
}  // namespace detail

/// Per-PE sorter: owns this PE's block of keys.
class Sorter : public charm::Group<Sorter> {
 public:
  Sorter() = default;
  explicit Sorter(std::shared_ptr<detail::SortState> state) : state_(std::move(state)) {}

  std::vector<std::uint64_t> keys;

  // histsort phases
  void local_sort(const StartMsg&);
  void count(const SplitterMsg& m);
  void exchange(const SplitterMsg& m);
  void accept(const KeysMsg& m);
  // baseline phases
  void send_samples(const StartMsg&);
  void collect_samples(const KeysMsg& m);  // root only

 private:
  friend class Library;
  void finish_exchange_if_done();

  std::shared_ptr<detail::SortState> state_;
  std::vector<std::vector<std::uint64_t>> incoming_;
  int chunks_received_ = 0;
  bool exchange_sent_ = false;  ///< guards against early-arriving chunks
};

class Library {
 public:
  explicit Library(Runtime& rt, SortParams params = {});

  /// Deterministically fills each PE's block (keys < 2^48 so double-encoded
  /// reductions stay exact).
  void fill_random(std::uint64_t seed, std::size_t keys_per_pe);

  /// Asynchronous histogram sort; `done` fires when every PE's block is the
  /// sorted slice of the global key set.
  void hist_sort(Callback done);

  /// Bulk-synchronous sample/merge sort baseline with a centralized root.
  void merge_sort(Callback done);

  /// Post-conditions: globally sorted across PE blocks, same multiset size.
  bool validate() const;
  std::uint64_t total_keys() const;
  const std::vector<std::uint64_t>& keys_on(int pe) const;

  GroupProxy<Sorter> sorters() const { return proxy_; }

 private:
  Runtime& rt_;
  GroupProxy<Sorter> proxy_;
  std::shared_ptr<detail::SortState> state_;
};

}  // namespace charm::sortlib

namespace pup {
template <>
struct MemCopyable<charm::sortlib::StartMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(int);
};
}  // namespace pup
