#pragma once
// Free-list pools recycling std::vector capacity across messages.
//
// Every point send packs its argument into a payload vector, ships it inside
// an Envelope, and unpacks it at the destination — after which the vector
// dies.  Without pooling that is one allocation and one free per message.
// A pool keeps dead buffers (their capacity, not their contents) on a LIFO
// free list; the next acquire reuses the hottest buffer, so the steady state
// allocates nothing as long as payloads fit the retained capacity.
//
// Pools never shrink a buffer and never zero memory — callers receive an
// *empty* vector with capacity >= their reservation and append into it.
//
// VecPool is the shared mechanism; PayloadPool (bytes, message payloads) and
// NumsPool (doubles, reduction contribution buffers) are its instantiations.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace charm {

/// Free-list pool over std::vector<T>.  `kSmall` is the documented "small
/// size class" callers reserve for variable-size payloads (see pack_pooled);
/// buffers above `kMaxRetained` elements are freed rather than retained; at
/// most `kMaxFree` buffers are kept.
template <class T, std::size_t kSmall, std::size_t kMaxRetained,
          std::size_t kMaxFree>
class VecPool {
 public:
  /// Returns an empty vector with capacity >= reserve_elems.
  std::vector<T> acquire(std::size_t reserve_elems) {
    if (!free_.empty()) {
      std::vector<T> buf = std::move(free_.back());
      free_.pop_back();
      if (buf.capacity() < reserve_elems) {
        ++grows_;
        buf.reserve(reserve_elems);
      } else {
        ++hits_;
      }
      return buf;
    }
    ++misses_;
    std::vector<T> buf;
    buf.reserve(reserve_elems);
    return buf;
  }

  /// Hands a dead buffer's capacity back to the pool.  The capacity is kept
  /// as-is, never rounded up to kSmall: retained capacity converges to what
  /// the workload actually packs, and an acquire that needs more grows on
  /// demand.  Eagerly inflating every recycled buffer looks free at small
  /// scale but pins kSmall bytes behind each in-flight message — at a million
  /// 16-byte ghost payloads that is a gigabyte of dead capacity (DESIGN.md
  /// §12).
  void release(std::vector<T>&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > kMaxRetained ||
        free_.size() >= kMaxFree) {
      return;  // let the vector free itself
    }
    buf.clear();
    free_.push_back(std::move(buf));
  }

  // Diagnostics (tests assert the steady state stops missing).
  std::size_t free_buffers() const { return free_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t grows() const { return grows_; }

 private:
  std::vector<std::vector<T>> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t grows_ = 0;
};

/// Message payload buffers.  Worst case pinned memory:
/// kMaxFreeBuffers * kSmallBytes = 4 MiB — sized for a burst handler whose
/// few thousand in-flight sends all hold buffers before the first delivery
/// releases one.  kMaxRetainedBytes keeps one giant checkpoint payload from
/// pinning memory forever.
class PayloadPool : public VecPool<std::byte, 1024, (1u << 16), 4096> {
 public:
  static constexpr std::size_t kSmallBytes = 1024;
  static constexpr std::size_t kMaxRetainedBytes = 1 << 16;
  static constexpr std::size_t kMaxFreeBuffers = 4096;
};

/// Reduction contribution buffers (vectors of doubles): per-contribution and
/// per-level partial-combine values cycle through here so steady-state POD
/// reductions allocate nothing (DESIGN.md §10).
using NumsPool = VecPool<double, 256, (1u << 13), 1024>;

}  // namespace charm
