file(REMOVE_RECURSE
  "CMakeFiles/fig10_leanmd_ckpt.dir/fig10_leanmd_ckpt.cpp.o"
  "CMakeFiles/fig10_leanmd_ckpt.dir/fig10_leanmd_ckpt.cpp.o.d"
  "fig10_leanmd_ckpt"
  "fig10_leanmd_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_leanmd_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
