// PUP framework unit tests: round-trips for scalars, strings, containers,
// nested user types, and the sizer/packer agreement invariant.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "pup/pup.hpp"
#include "runtime/index.hpp"
#include "sim/rng.hpp"

namespace {

struct Inner {
  int a = 0;
  double b = 0;
  std::string s;
  void pup(pup::Er& p) {
    p | a;
    p | b;
    p | s;
  }
  bool operator==(const Inner&) const = default;
};

struct Outer {
  std::vector<Inner> inners;
  std::map<std::string, int> table;
  std::array<float, 4> arr{};
  std::optional<Inner> maybe;
  void pup(pup::Er& p) {
    p | inners;
    p | table;
    p | arr;
    p | maybe;
  }
  bool operator==(const Outer&) const = default;
};

template <class T>
T round_trip(T& v) {
  auto bytes = pup::to_bytes(v);
  EXPECT_EQ(bytes.size(), pup::size_of(v)) << "sizer and packer disagree";
  T out{};
  pup::from_bytes(bytes, out);
  return out;
}

TEST(Pup, Scalars) {
  int i = -42;
  double d = 3.25;
  bool b = true;
  std::uint64_t u = 0xDEADBEEFCAFEull;
  EXPECT_EQ(round_trip(i), -42);
  EXPECT_EQ(round_trip(d), 3.25);
  EXPECT_EQ(round_trip(b), true);
  EXPECT_EQ(round_trip(u), 0xDEADBEEFCAFEull);
}

TEST(Pup, EnumsAndString) {
  enum class Color { kRed = 7, kBlue = 9 };
  Color c = Color::kBlue;
  EXPECT_EQ(round_trip(c), Color::kBlue);
  std::string s = "hello pup";
  EXPECT_EQ(round_trip(s), "hello pup");
  std::string empty;
  EXPECT_EQ(round_trip(empty), "");
}

TEST(Pup, Vectors) {
  std::vector<int> v{1, 2, 3, 4, 5};
  EXPECT_EQ(round_trip(v), v);
  std::vector<std::string> vs{"a", "", "long string with spaces"};
  EXPECT_EQ(round_trip(vs), vs);
  std::vector<bool> vb{true, false, true, true};
  EXPECT_EQ(round_trip(vb), vb);
  std::vector<int> ve;
  EXPECT_TRUE(round_trip(ve).empty());
}

TEST(Pup, AssociativeContainers) {
  std::map<int, std::string> m{{1, "one"}, {2, "two"}};
  EXPECT_EQ(round_trip(m), m);
  std::unordered_map<std::string, double> um{{"pi", 3.14}, {"e", 2.71}};
  EXPECT_EQ(round_trip(um), um);
  std::set<int> s{5, 3, 1};
  EXPECT_EQ(round_trip(s), s);
}

TEST(Pup, DequeOptionalPair) {
  std::deque<int> d{9, 8, 7};
  EXPECT_EQ(round_trip(d), d);
  std::optional<int> some = 5;
  EXPECT_EQ(round_trip(some), some);
  std::optional<int> none;
  EXPECT_EQ(round_trip(none), none);
  std::pair<int, std::string> pr{3, "x"};
  EXPECT_EQ(round_trip(pr), pr);
}

TEST(Pup, NestedUserTypes) {
  Outer o;
  o.inners = {{1, 1.5, "a"}, {2, 2.5, "bb"}};
  o.table = {{"k1", 10}, {"k2", 20}};
  o.arr = {1.f, 2.f, 3.f, 4.f};
  o.maybe = Inner{7, 7.5, "opt"};
  EXPECT_EQ(round_trip(o), o);
}

TEST(Pup, PUParrayRawAndObjects) {
  int raw[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::byte> buf;
  {
    pup::Packer pk(buf);
    pup::PUParray(pk, raw, 8);
  }
  int out[8] = {};
  pup::Unpacker u(buf);
  pup::PUParray(u, out, 8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], raw[i]);
}

TEST(Pup, UnderrunThrows) {
  std::vector<std::byte> small(2);
  pup::Unpacker u(small);
  double d;
  EXPECT_THROW(u | d, std::out_of_range);
}

TEST(Pup, RngStateSurvivesMigrationRoundTrip) {
  sim::Rng r(123);
  (void)r.next_u64();
  (void)r.next_u64();
  sim::Rng copy = round_trip(r);
  EXPECT_EQ(copy.next_u64(), r.next_u64());
  EXPECT_EQ(copy.next_double(), r.next_double());
}

TEST(Pup, ObjIndexRoundTrip) {
  charm::ObjIndex ix{12345, 67890};
  EXPECT_EQ(round_trip(ix), ix);
}

TEST(Pup, IndexEncodingIsBijective) {
  using namespace charm;
  Index3D a{3, -7, 11};
  EXPECT_EQ(IndexTraits<Index3D>::decode(IndexTraits<Index3D>::encode(a)), a);
  Index6D b{{1, 2, 3, 4, 5, 6}};
  EXPECT_EQ(IndexTraits<Index6D>::decode(IndexTraits<Index6D>::encode(b)), b);
  BitIndex c;
  c = c.child(5).child(3).child(7);
  EXPECT_EQ(IndexTraits<BitIndex>::decode(IndexTraits<BitIndex>::encode(c)), c);
  EXPECT_EQ(c.depth, 3);
  EXPECT_EQ(c.octant_at(0), 5);
  EXPECT_EQ(c.octant_at(2), 7);
  EXPECT_EQ(c.parent().parent().octant_at(0), 5);
}

// Property sweep: packed size must match sizer prediction for random payloads.
class PupSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(PupSizeProperty, SizerMatchesPacker) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Outer o;
  const int n = static_cast<int>(rng.next_below(20));
  for (int i = 0; i < n; ++i) {
    Inner in;
    in.a = static_cast<int>(rng.next_u64());
    in.b = rng.next_double();
    in.s = std::string(rng.next_below(32), 'x');
    o.inners.push_back(in);
    o.table[std::to_string(i)] = i;
  }
  EXPECT_EQ(pup::to_bytes(o).size(), pup::size_of(o));
  EXPECT_EQ(round_trip(o), o);
}

INSTANTIATE_TEST_SUITE_P(RandomPayloads, PupSizeProperty, ::testing::Range(0, 12));

// ---- deep-nesting property sweep --------------------------------------------
//
// Randomized structures exercising every container adapter at once, nested
// several levels deep.  For each seed: sizing == packing, and a pack→unpack
// round trip reproduces the value exactly.

struct DeepNest {
  std::map<std::string, std::vector<double>> series;
  std::vector<std::optional<Inner>> sparse;
  std::unordered_map<int, std::deque<std::string>> logs;
  std::set<std::int64_t> ids;
  std::optional<std::vector<std::string>> tags;
  std::vector<std::map<int, std::pair<int, double>>> layers;

  void pup(pup::Er& p) {
    p | series;
    p | sparse;
    p | logs;
    p | ids;
    p | tags;
    p | layers;
  }
  bool operator==(const DeepNest&) const = default;
};

std::string random_string(sim::Rng& rng, std::size_t max_len) {
  std::string s(rng.next_below(max_len + 1), '\0');
  for (char& c : s)
    c = static_cast<char>('a' + static_cast<char>(rng.next_below(26)));
  return s;
}

DeepNest random_deep_nest(sim::Rng& rng) {
  DeepNest d;
  const std::size_t n_series = rng.next_below(5);
  for (std::size_t i = 0; i < n_series; ++i) {
    std::vector<double> v(rng.next_below(9));
    for (double& x : v) x = rng.next_double() * 1e6 - 5e5;
    d.series[random_string(rng, 12)] = std::move(v);
  }
  const std::size_t n_sparse = rng.next_below(8);
  for (std::size_t i = 0; i < n_sparse; ++i) {
    if (rng.next_below(3) == 0) {
      d.sparse.emplace_back(std::nullopt);
    } else {
      d.sparse.emplace_back(Inner{static_cast<int>(rng.next_u64()),
                                  rng.next_double(), random_string(rng, 20)});
    }
  }
  const std::size_t n_logs = rng.next_below(4);
  for (std::size_t i = 0; i < n_logs; ++i) {
    std::deque<std::string> q;
    const std::size_t m = rng.next_below(6);
    for (std::size_t j = 0; j < m; ++j) q.push_back(random_string(rng, 15));
    d.logs[static_cast<int>(rng.next_below(1000))] = std::move(q);
  }
  const std::size_t n_ids = rng.next_below(16);
  for (std::size_t i = 0; i < n_ids; ++i)
    d.ids.insert(static_cast<std::int64_t>(rng.next_u64()));
  if (rng.next_below(2) == 0) {
    std::vector<std::string> tags(rng.next_below(5));
    for (auto& t : tags) t = random_string(rng, 8);
    d.tags = std::move(tags);
  }
  const std::size_t n_layers = rng.next_below(4);
  for (std::size_t i = 0; i < n_layers; ++i) {
    std::map<int, std::pair<int, double>> layer;
    const std::size_t m = rng.next_below(7);
    for (std::size_t j = 0; j < m; ++j)
      layer[static_cast<int>(rng.next_below(100))] = {
          static_cast<int>(rng.next_u64()), rng.next_double()};
    d.layers.push_back(std::move(layer));
  }
  return d;
}

class PupDeepNestProperty : public ::testing::TestWithParam<int> {};

TEST_P(PupDeepNestProperty, SizingPackingRoundTripAgree) {
  sim::Rng rng(0x9E3779B97F4A7C15ull ^ static_cast<std::uint64_t>(GetParam()));
  DeepNest d = random_deep_nest(rng);
  const auto bytes = pup::to_bytes(d);
  ASSERT_EQ(bytes.size(), pup::size_of(d)) << "sizer and packer disagree";
  DeepNest out;
  pup::from_bytes(bytes, out);
  EXPECT_EQ(out, d);
  // Packing is a pure function of the value: packing the same object twice
  // gives the identical byte stream.  (The unpacked copy may legitimately
  // re-pack differently — unordered_map iteration order can change after a
  // rebuild by insertion — but it must still round-trip to an equal value.)
  EXPECT_EQ(pup::to_bytes(d), bytes);
  DeepNest out2;
  pup::from_bytes(pup::to_bytes(out), out2);
  EXPECT_EQ(out2, out);
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, PupDeepNestProperty, ::testing::Range(0, 30));

}  // namespace
